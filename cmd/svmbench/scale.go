package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"ftsvm/internal/harness"
	"ftsvm/internal/model"
	"ftsvm/internal/svm"
)

// The scaling benchmark: the paper's grid stops at 8 nodes, where a flat
// release broadcast and full vector times are cheap. These cells sweep the
// micro workloads across 8/64/256 nodes with the scale-out machinery off
// ("flat") and on ("tree", the large/huge tier presets: spanning-tree
// broadcast + delta vector times), recording the msgs/bytes/wall scaling
// curves. The headline acceptance metric is bytes-per-node: flat broadcast
// and full vectors make it grow linearly with N, the tree+delta tier keeps
// it sub-linear.

// scaleCell is one scaling measurement.
type scaleCell struct {
	App   string `json:"app"`
	Mode  string `json:"mode"`
	Nodes int    `json:"nodes"`
	// Topo is "flat" (legacy broadcast, full vectors) or "tree" (the
	// tier preset for this node count).
	Topo         string  `json:"topo"`
	VirtualMs    float64 `json:"vms"`
	Msgs         int64   `json:"msgs"`
	Bytes        int64   `json:"bytes"`
	BytesPerNode int64   `json:"bytes_per_node"`
	WallMs       float64 `json:"wall_ms"`
}

// scaleReport is the artifact written by -scale and replayed by
// -scalecompare.
type scaleReport struct {
	Size        string      `json:"size"`
	GoMaxProcs  int         `json:"gomaxprocs"`
	TotalWallMs float64     `json:"total_wall_ms"`
	Cells       []scaleCell `json:"cells"`
}

// scaleTierFor maps a node count to its scale-out preset.
func scaleTierFor(nodes int) harness.Tier {
	switch nodes {
	case 64:
		return harness.TierLarge
	case 256:
		return harness.TierHuge
	}
	return harness.TierPaper
}

// scaleCellConfig builds the harness cell for one scaling measurement.
// Flat cells past 8 nodes still get the tier's contention-scaled lock
// backoff (harness.ScaledLockBackoffMaxNs): with the paper's 40 µs
// window a 64-way contended polling lock live-locks regardless of
// topology, and giving both topologies the same window makes the
// flat-vs-tree columns isolate exactly the broadcast + vector-time
// encoding, which is what this grid measures.
func scaleCellConfig(app string, sz harness.Size, mode svm.Mode, nodes int, topo string) harness.Config {
	c := harness.Config{
		App: app, Size: sz, Mode: mode, Nodes: nodes, ThreadsPerNode: 1,
	}
	if topo == "tree" {
		c.Tier = scaleTierFor(nodes)
	} else if nodes > 8 {
		backoff := harness.ScaledLockBackoffMaxNs(nodes)
		c.Overrides = func(cfg *model.Config) { cfg.LockBackoffMaxNs = backoff }
	}
	return c
}

// scaleGrid is the scaling sweep: micro workloads, both protocols, three
// cluster sizes, flat vs tree. 8 nodes has no tree cell — the tiers start
// where the paper grid ends, and the flat 8-node row doubles as the
// bit-identity anchor to the legacy benchmarks.
func scaleGrid(sz harness.Size) []harness.Config {
	var cells []harness.Config
	for _, app := range []string{"counter", "falseshare"} {
		for _, mode := range []svm.Mode{svm.ModeBase, svm.ModeFT} {
			for _, nodes := range []int{8, 64, 256} {
				cells = append(cells, scaleCellConfig(app, sz, mode, nodes, "flat"))
				if nodes > 8 {
					cells = append(cells, scaleCellConfig(app, sz, mode, nodes, "tree"))
				}
			}
		}
	}
	return cells
}

func scaleTopo(c harness.Config) string {
	if c.Tier != harness.TierPaper {
		return "tree"
	}
	return "flat"
}

// runScaleJSON runs the scaling grid and writes the report.
func runScaleJSON(path string, sz harness.Size) error {
	cells := scaleGrid(sz)
	start := time.Now()
	results := harness.RunGrid(cells)
	wall := time.Since(start)
	rep := scaleReport{
		Size:        string(sz),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		TotalWallMs: float64(wall) / 1e6,
	}
	for i, r := range results {
		if r.Err != nil {
			return fmt.Errorf("%s/%s n=%d %s: %w", cells[i].App, cells[i].Mode, cells[i].Nodes, scaleTopo(cells[i]), r.Err)
		}
		rep.Cells = append(rep.Cells, scaleCell{
			App:          r.App,
			Mode:         r.Mode.String(),
			Nodes:        r.Nodes,
			Topo:         scaleTopo(r.Config),
			VirtualMs:    float64(r.ExecNs) / 1e6,
			Msgs:         r.MsgsSent,
			Bytes:        r.BytesSent,
			BytesPerNode: r.BytesSent / int64(r.Nodes),
			WallMs:       float64(r.WallNs) / 1e6,
		})
	}
	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return err
	}
	printScaleTable(rep)
	fmt.Printf("wrote %s: %d cells, total wall %.1f ms\n", path, len(rep.Cells), rep.TotalWallMs)
	return nil
}

func printScaleTable(rep scaleReport) {
	fmt.Printf("Scaling grid (size=%s): per-node wire bytes, flat vs tree+delta\n", rep.Size)
	fmt.Printf("%-12s %-9s %6s %-5s %12s %12s %14s %10s\n",
		"app", "protocol", "nodes", "topo", "vms", "msgs", "bytes/node", "wall ms")
	for _, c := range rep.Cells {
		fmt.Printf("%-12s %-9s %6d %-5s %12.1f %12d %14d %10.1f\n",
			c.App, c.Mode, c.Nodes, c.Topo, c.VirtualMs, c.Msgs, c.BytesPerNode, c.WallMs)
	}
}

// runScaleCompare re-runs the grid recorded in oldPath and fails on any
// virtual-metric drift — the repeat-run bit-identity gate for the scaling
// tiers, exactly parallel to -compare for the paper grid.
func runScaleCompare(oldPath string) error {
	blob, err := os.ReadFile(oldPath)
	if err != nil {
		return err
	}
	var old scaleReport
	if err := json.Unmarshal(blob, &old); err != nil {
		return fmt.Errorf("%s: %w", oldPath, err)
	}
	cells := make([]harness.Config, len(old.Cells))
	for i, c := range old.Cells {
		mode := svm.ModeBase
		if c.Mode != svm.ModeBase.String() {
			mode = svm.ModeFT
		}
		cells[i] = scaleCellConfig(c.App, harness.Size(old.Size), mode, c.Nodes, c.Topo)
	}
	start := time.Now()
	results := harness.RunGrid(cells)
	wall := time.Since(start)
	fmt.Printf("Scaling comparison vs %s (size=%s)\n", oldPath, old.Size)
	drift := 0
	for i, r := range results {
		o := old.Cells[i]
		if r.Err != nil {
			fmt.Printf("%-12s %-9s %6d %-5s ERROR: %v\n", o.App, o.Mode, o.Nodes, o.Topo, r.Err)
			drift++
			continue
		}
		dvms := float64(r.ExecNs)/1e6 - o.VirtualMs
		dmsgs := r.MsgsSent - o.Msgs
		dbytes := r.BytesSent - o.Bytes
		if dvms != 0 || dmsgs != 0 || dbytes != 0 {
			drift++
		}
		fmt.Printf("%-12s %-9s %6d %-5s %+10.3f vms %+10d msgs %+12d bytes\n",
			o.App, o.Mode, o.Nodes, o.Topo, dvms, dmsgs, dbytes)
	}
	fmt.Printf("total wall: %.1f ms old, %.1f ms new\n", old.TotalWallMs, float64(wall)/1e6)
	if drift != 0 {
		return fmt.Errorf("%d cell(s) changed virtual metrics — scaling behavior drifted", drift)
	}
	fmt.Println("virtual metrics identical in every cell")
	return nil
}

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"ftsvm/internal/harness"
	"ftsvm/internal/model"
	"ftsvm/internal/svm"
)

// benchCell is one app x mode x topology measurement. The virtual metrics
// (vms, msgs, bytes) are deterministic protocol outputs; wall_ms measures
// the simulator itself on this host.
type benchCell struct {
	App            string  `json:"app"`
	Mode           string  `json:"mode"`
	Nodes          int     `json:"nodes"`
	ThreadsPerNode int     `json:"threads_per_node"`
	VirtualMs      float64 `json:"vms"`
	Msgs           int64   `json:"msgs"`
	Bytes          int64   `json:"bytes"`
	WallMs         float64 `json:"wall_ms"`
	// Metrics is the unified obs registry snapshot (svm.*, ckpt.*,
	// vmmc.* counters) — deterministic like vms/msgs, but informational:
	// -compare diffs only the headline virtual metrics.
	Metrics map[string]int64 `json:"metrics,omitempty"`
}

// benchReport is the machine-readable artifact written by -json and read
// back by -compare.
type benchReport struct {
	Size  string `json:"size"`
	Nodes int    `json:"nodes"`
	// Detection is the failure-detector mode the grid ran with; absent
	// (older reports) means oracle.
	Detection   string      `json:"detection,omitempty"`
	GoMaxProcs  int         `json:"gomaxprocs"`
	TotalWallMs float64     `json:"total_wall_ms"`
	AllocBytes  uint64      `json:"alloc_bytes"`
	Allocs      uint64      `json:"allocs"`
	// Reps is how many times the grid ran (-benchwall); wall figures are
	// the fastest repetition. Absent (older reports) means 1.
	Reps int `json:"reps,omitempty"`
	// FullTwins records that the grid ran with tracked diffing disabled.
	FullTwins bool        `json:"full_twins,omitempty"`
	Cells     []benchCell `json:"cells"`
}

// benchGrid is the app x mode x {1,2 threads} grid the figures run.
func benchGrid(sz harness.Size, nodes int, det model.DetectionMode, fullTwins bool) []harness.Config {
	var cells []harness.Config
	for _, tpn := range []int{1, 2} {
		for _, app := range harness.AppNames {
			for _, mode := range []svm.Mode{svm.ModeBase, svm.ModeFT} {
				cells = append(cells, harness.Config{
					App: app, Size: sz, Mode: mode, Nodes: nodes, ThreadsPerNode: tpn,
					Detection: det, FullTwins: fullTwins,
				})
			}
		}
	}
	return cells
}

// runBenchJSON runs the figure grid (reps times, keeping the fastest
// repetition's wall figures — the standard defense against host noise)
// and writes the report to path.
func runBenchJSON(path string, sz harness.Size, nodes int, det model.DetectionMode, reps int, fullTwins bool) error {
	if reps < 1 {
		reps = 1
	}
	cells := benchGrid(sz, nodes, det, fullTwins)
	var results []harness.Result
	var wall time.Duration
	var allocBytes, allocs uint64
	for rep := 0; rep < reps; rep++ {
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start := time.Now()
		res := harness.RunGrid(cells)
		w := time.Since(start)
		runtime.ReadMemStats(&m1)
		if reps > 1 {
			fmt.Printf("  rep %d/%d: %.1f ms\n", rep+1, reps, float64(w)/1e6)
		}
		if results == nil || w < wall {
			results, wall = res, w
			allocBytes = m1.TotalAlloc - m0.TotalAlloc
			allocs = m1.Mallocs - m0.Mallocs
		}
	}

	rep := benchReport{
		Size:        string(sz),
		Nodes:       nodes,
		Detection:   det.String(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		TotalWallMs: float64(wall) / 1e6,
		AllocBytes:  allocBytes,
		Allocs:      allocs,
		Reps:        reps,
		FullTwins:   fullTwins,
	}
	for i, r := range results {
		if r.Err != nil {
			return fmt.Errorf("%s/%s (tpn=%d): %w", cells[i].App, cells[i].Mode, cells[i].ThreadsPerNode, r.Err)
		}
		rep.Cells = append(rep.Cells, benchCell{
			App:            r.App,
			Mode:           r.Mode.String(),
			Nodes:          r.Nodes,
			ThreadsPerNode: r.ThreadsPerNode,
			VirtualMs:      float64(r.ExecNs) / 1e6,
			Msgs:           r.MsgsSent,
			Bytes:          r.BytesSent,
			WallMs:         float64(r.WallNs) / 1e6,
			Metrics:        r.Metrics.Map(),
		})
	}
	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d cells, total wall %.1f ms, %.1f MB allocated (%d allocs), GOMAXPROCS=%d\n",
		path, len(rep.Cells), rep.TotalWallMs, float64(rep.AllocBytes)/1e6, rep.Allocs, rep.GoMaxProcs)
	return nil
}

// runBenchCompare re-runs every cell recorded in oldPath and prints the
// per-cell deltas. The virtual metrics must not move (they are deterministic
// protocol outputs — any delta flags a behavior change); wall time is the
// simulator speedup/regression.
func runBenchCompare(oldPath string, fullTwins bool) error {
	blob, err := os.ReadFile(oldPath)
	if err != nil {
		return err
	}
	var old benchReport
	if err := json.Unmarshal(blob, &old); err != nil {
		return fmt.Errorf("%s: %w", oldPath, err)
	}
	det := model.DetectOracle
	if old.Detection != "" {
		if det, err = model.ParseDetection(old.Detection); err != nil {
			return fmt.Errorf("%s: %w", oldPath, err)
		}
	}
	cells := make([]harness.Config, len(old.Cells))
	for i, c := range old.Cells {
		mode := svm.ModeBase
		if c.Mode != svm.ModeBase.String() {
			mode = svm.ModeFT
		}
		cells[i] = harness.Config{
			App: c.App, Size: harness.Size(old.Size), Mode: mode,
			Nodes: c.Nodes, ThreadsPerNode: c.ThreadsPerNode,
			Detection: det, FullTwins: fullTwins,
		}
	}
	start := time.Now()
	results := harness.RunGrid(cells)
	wall := time.Since(start)

	fmt.Printf("Comparison vs %s (size=%s, %d nodes)\n", oldPath, old.Size, old.Nodes)
	fmt.Printf("%-14s %-9s %4s %12s %12s %10s %12s\n",
		"app", "protocol", "tpn", "vms delta", "msgs delta", "wall old", "wall new")
	drift := 0
	for i, r := range results {
		o := old.Cells[i]
		if r.Err != nil {
			fmt.Printf("%-14s %-9s %4d ERROR: %v\n", o.App, o.Mode, o.ThreadsPerNode, r.Err)
			drift++
			continue
		}
		dvms := float64(r.ExecNs)/1e6 - o.VirtualMs
		dmsgs := r.MsgsSent - o.Msgs
		if dvms != 0 || dmsgs != 0 {
			drift++
		}
		fmt.Printf("%-14s %-9s %4d %+12.3f %+12d %9.1fms %11.1fms\n",
			o.App, o.Mode, o.ThreadsPerNode, dvms, dmsgs, o.WallMs, float64(r.WallNs)/1e6)
	}
	fmt.Printf("total wall: %.1f ms old, %.1f ms new (%+.0f%%)\n",
		old.TotalWallMs, float64(wall)/1e6,
		100*(float64(wall)/1e6-old.TotalWallMs)/old.TotalWallMs)
	if drift != 0 {
		return fmt.Errorf("%d cell(s) changed virtual metrics — protocol behavior drifted", drift)
	}
	fmt.Println("virtual metrics identical in every cell")
	return nil
}

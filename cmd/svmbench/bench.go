package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"ftsvm/internal/explore"
	"ftsvm/internal/harness"
	"ftsvm/internal/model"
	"ftsvm/internal/svm"
)

// benchCell is one app x mode x topology measurement. The virtual metrics
// (vms, msgs, bytes) are deterministic protocol outputs; wall_ms measures
// the simulator itself on this host.
type benchCell struct {
	App            string  `json:"app"`
	Mode           string  `json:"mode"`
	Nodes          int     `json:"nodes"`
	ThreadsPerNode int     `json:"threads_per_node"`
	VirtualMs      float64 `json:"vms"`
	Msgs           int64   `json:"msgs"`
	Bytes          int64   `json:"bytes"`
	WallMs         float64 `json:"wall_ms"`
	// EngineWorkers is the number of engine workers the cell actually
	// used (1 = serial engine; absent in older reports).
	EngineWorkers int `json:"engine_workers,omitempty"`
	// Metrics is the unified obs registry snapshot (svm.*, ckpt.*,
	// vmmc.* counters) — deterministic like vms/msgs, but informational:
	// -compare diffs only the headline virtual metrics.
	Metrics map[string]int64 `json:"metrics,omitempty"`
}

// benchSweep is one timed svmfi-style sweep (explore.Record once, then
// explore.Sweep over every boundary on a worker pool) — the sweep
// scheduler's wall measurement. Informational; -compare ignores it.
type benchSweep struct {
	Apps       string  `json:"apps"`
	Boundaries int     `json:"boundaries"`
	Workers    int     `json:"workers"`
	WallMs     float64 `json:"wall_ms"`
	// SpeedupVsSerial is this run's serial wall over its own; only
	// meaningful when the host has cores to spare (see NumCPU).
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
}

// benchReport is the machine-readable artifact written by -json and read
// back by -compare.
type benchReport struct {
	Size  string `json:"size"`
	Nodes int    `json:"nodes"`
	// Detection is the failure-detector mode the grid ran with; absent
	// (older reports) means oracle.
	Detection  string `json:"detection,omitempty"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// NumCPU is the host's usable CPU count — wall figures (and any
	// parallel speedup) are only interpretable against it.
	NumCPU      int     `json:"num_cpu,omitempty"`
	TotalWallMs float64 `json:"total_wall_ms"`
	AllocBytes  uint64  `json:"alloc_bytes"`
	Allocs      uint64  `json:"allocs"`
	// Reps is how many times the grid ran (-benchwall); wall figures are
	// the fastest repetition. Absent (older reports) means 1.
	Reps int `json:"reps,omitempty"`
	// FullTwins records that the grid ran with tracked diffing disabled.
	FullTwins bool `json:"full_twins,omitempty"`
	// EngineMode and EngineWorkers record the simulation engine the grid
	// requested: "serial" (absent in older reports), "parallel" with the
	// per-simulation lane worker count, or "mixed" when -workers listed
	// several counts (each cell then carries its own engine_workers).
	EngineMode    string `json:"engine_mode,omitempty"`
	EngineWorkers int    `json:"engine_workers,omitempty"`
	// Sweeps holds timed failure-point sweeps (-sweep), one entry per
	// worker count.
	Sweeps []benchSweep `json:"sweeps,omitempty"`
	Cells  []benchCell  `json:"cells"`
}

// benchGrid is the app x mode x {1,2 threads} grid the figures run.
func benchGrid(sz harness.Size, nodes int, det model.DetectionMode, fullTwins bool, workers int) []harness.Config {
	var cells []harness.Config
	for _, tpn := range []int{1, 2} {
		for _, app := range harness.AppNames {
			for _, mode := range []svm.Mode{svm.ModeBase, svm.ModeFT} {
				cells = append(cells, harness.Config{
					App: app, Size: sz, Mode: mode, Nodes: nodes, ThreadsPerNode: tpn,
					Detection: det, FullTwins: fullTwins, Workers: workers,
				})
			}
		}
	}
	return cells
}

// runBenchJSON runs the figure grid (reps times, keeping the fastest
// repetition's wall figures — the standard defense against host noise)
// once per entry in workersList, and writes one report covering every
// engine configuration to path. sweepApps, when non-empty, additionally
// times a full failure-point sweep of those apps at each worker count.
func runBenchJSON(path string, sz harness.Size, nodes int, det model.DetectionMode, reps int, fullTwins bool, workersList []int, sweepApps string) error {
	if reps < 1 {
		reps = 1
	}
	var cells []harness.Config
	for _, w := range workersList {
		cells = append(cells, benchGrid(sz, nodes, det, fullTwins, w)...)
	}
	var results []harness.Result
	var wall time.Duration
	var allocBytes, allocs uint64
	for rep := 0; rep < reps; rep++ {
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start := time.Now()
		res := harness.RunGrid(cells)
		w := time.Since(start)
		runtime.ReadMemStats(&m1)
		if reps > 1 {
			fmt.Printf("  rep %d/%d: %.1f ms\n", rep+1, reps, float64(w)/1e6)
		}
		if results == nil || w < wall {
			results, wall = res, w
			allocBytes = m1.TotalAlloc - m0.TotalAlloc
			allocs = m1.Mallocs - m0.Mallocs
		}
	}

	rep := benchReport{
		Size:        string(sz),
		Nodes:       nodes,
		Detection:   det.String(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		TotalWallMs: float64(wall) / 1e6,
		AllocBytes:  allocBytes,
		Allocs:      allocs,
		Reps:        reps,
		FullTwins:   fullTwins,
	}
	switch {
	case len(workersList) > 1:
		rep.EngineMode = "mixed"
	case workersList[0] > 1:
		rep.EngineMode, rep.EngineWorkers = "parallel", workersList[0]
	default:
		rep.EngineMode, rep.EngineWorkers = "serial", 1
	}
	if sweepApps != "" {
		sweeps, err := runTimedSweeps(sweepApps, workersList)
		if err != nil {
			return err
		}
		rep.Sweeps = sweeps
	}
	for i, r := range results {
		if r.Err != nil {
			return fmt.Errorf("%s/%s (tpn=%d): %w", cells[i].App, cells[i].Mode, cells[i].ThreadsPerNode, r.Err)
		}
		rep.Cells = append(rep.Cells, benchCell{
			App:            r.App,
			Mode:           r.Mode.String(),
			Nodes:          r.Nodes,
			ThreadsPerNode: r.ThreadsPerNode,
			VirtualMs:      float64(r.ExecNs) / 1e6,
			Msgs:           r.MsgsSent,
			Bytes:          r.BytesSent,
			WallMs:         float64(r.WallNs) / 1e6,
			EngineWorkers:  r.EngineWorkers,
			Metrics:        r.Metrics.Map(),
		})
	}
	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d cells, total wall %.1f ms, %.1f MB allocated (%d allocs), GOMAXPROCS=%d\n",
		path, len(rep.Cells), rep.TotalWallMs, float64(rep.AllocBytes)/1e6, rep.Allocs, rep.GoMaxProcs)
	return nil
}

// runTimedSweeps times the svmfi sweep scheduler: each app's workload is
// recorded once, then the full boundary set is swept (one injection run
// per boundary, serial engine inside each run) on a pool of each listed
// worker count. A serial pass is always included as the speedup
// reference. The sweep cluster is pinned to the svmfi acceptance shape
// (small, 4 nodes) rather than inheriting the grid's -nodes, so the
// boundary count matches the exhaustive sweep documented in DESIGN §8.
func runTimedSweeps(appsCSV string, workersList []int) ([]benchSweep, error) {
	counts := []int{1}
	for _, w := range workersList {
		if w > 1 {
			counts = append(counts, w)
		}
	}
	type rec struct {
		sp explore.Spec
		bs []explore.Boundary
		bg int64
	}
	var recs []rec
	total := 0
	for _, app := range strings.Split(appsCSV, ",") {
		app = strings.TrimSpace(app)
		if app == "" {
			continue
		}
		sp := harness.ExploreSpec(harness.Config{
			App: app, Size: harness.SizeSmall, Nodes: 4, ThreadsPerNode: 1,
		})
		tr, err := explore.Record(sp)
		if err != nil {
			return nil, fmt.Errorf("sweep %s: %w", app, err)
		}
		recs = append(recs, rec{sp, tr.Boundaries, tr.Budget()})
		total += len(tr.Boundaries)
	}
	var out []benchSweep
	var serialMs float64
	for _, workers := range counts {
		start := time.Now()
		for _, r := range recs {
			vs := explore.Sweep(r.sp, r.bs, r.bg, workers, nil)
			for i, v := range vs {
				if !v.Pass {
					return nil, fmt.Errorf("sweep %s at %s: %s", r.sp.Name, r.bs[i].ID(), v.Err)
				}
			}
		}
		wallMs := float64(time.Since(start)) / 1e6
		s := benchSweep{Apps: appsCSV, Boundaries: total, Workers: workers, WallMs: wallMs}
		if workers == 1 {
			serialMs = wallMs
		} else if serialMs > 0 {
			s.SpeedupVsSerial = serialMs / wallMs
		}
		out = append(out, s)
		fmt.Printf("  sweep %s: %d boundaries, %d worker(s), %.1f s\n",
			appsCSV, total, workers, wallMs/1e3)
	}
	return out, nil
}

// runBenchCompare re-runs every cell recorded in oldPath and prints the
// per-cell deltas. The virtual metrics must not move (they are deterministic
// protocol outputs — any delta flags a behavior change); wall time is the
// simulator speedup/regression.
func runBenchCompare(oldPath string, fullTwins bool, workers int) error {
	blob, err := os.ReadFile(oldPath)
	if err != nil {
		return err
	}
	var old benchReport
	if err := json.Unmarshal(blob, &old); err != nil {
		return fmt.Errorf("%s: %w", oldPath, err)
	}
	det := model.DetectOracle
	if old.Detection != "" {
		if det, err = model.ParseDetection(old.Detection); err != nil {
			return fmt.Errorf("%s: %w", oldPath, err)
		}
	}
	cells := make([]harness.Config, len(old.Cells))
	for i, c := range old.Cells {
		mode := svm.ModeBase
		if c.Mode != svm.ModeBase.String() {
			mode = svm.ModeFT
		}
		// -workers > 1 overrides the recorded engine (checking parallel
		// bit-identity against a serial recording); otherwise each cell
		// replays on the engine it was recorded with.
		w := workers
		if w <= 1 {
			w = c.EngineWorkers
		}
		cells[i] = harness.Config{
			App: c.App, Size: harness.Size(old.Size), Mode: mode,
			Nodes: c.Nodes, ThreadsPerNode: c.ThreadsPerNode,
			Detection: det, FullTwins: fullTwins, Workers: w,
		}
	}
	start := time.Now()
	results := harness.RunGrid(cells)
	wall := time.Since(start)

	fmt.Printf("Comparison vs %s (size=%s, %d nodes)\n", oldPath, old.Size, old.Nodes)
	fmt.Printf("%-14s %-9s %4s %12s %12s %10s %12s\n",
		"app", "protocol", "tpn", "vms delta", "msgs delta", "wall old", "wall new")
	drift := 0
	for i, r := range results {
		o := old.Cells[i]
		if r.Err != nil {
			fmt.Printf("%-14s %-9s %4d ERROR: %v\n", o.App, o.Mode, o.ThreadsPerNode, r.Err)
			drift++
			continue
		}
		dvms := float64(r.ExecNs)/1e6 - o.VirtualMs
		dmsgs := r.MsgsSent - o.Msgs
		if dvms != 0 || dmsgs != 0 {
			drift++
		}
		fmt.Printf("%-14s %-9s %4d %+12.3f %+12d %9.1fms %11.1fms\n",
			o.App, o.Mode, o.ThreadsPerNode, dvms, dmsgs, o.WallMs, float64(r.WallNs)/1e6)
	}
	fmt.Printf("total wall: %.1f ms old, %.1f ms new (%+.0f%%)\n",
		old.TotalWallMs, float64(wall)/1e6,
		100*(float64(wall)/1e6-old.TotalWallMs)/old.TotalWallMs)
	if drift != 0 {
		return fmt.Errorf("%d cell(s) changed virtual metrics — protocol behavior drifted", drift)
	}
	fmt.Println("virtual metrics identical in every cell")
	return nil
}

// Command svmbench regenerates the paper's evaluation: the execution-time
// breakdown figures (7-10), the headline overhead summary, and the
// ablation studies discussed in §4.3 and §5.3.
//
// Usage:
//
//	svmbench -figure 7            # Figure 7 (8x1, 4-component breakdown)
//	svmbench -figure all          # Figures 7-10 + overhead summary
//	svmbench -ablation locks      # queue vs polling lock
//	svmbench -ablation postqueue  # NIC post-queue depth sweep
//	svmbench -ablation checkpoint # checkpoint stack-size sweep
//	svmbench -ablation serial     # release serialization cost
//	svmbench -ablation recovery   # failure injection per app
//	svmbench -ablation pagesize   # coherence-granularity sweep
//	svmbench -ablation detection  # failure-detection timeout sweep
//	svmbench -ablation slo        # serving tail latency vs offered load
//	svmbench -size small|medium|paper
//	svmbench -json out.json       # machine-readable figure-grid report
//	svmbench -compare old.json    # re-run a report's grid, print deltas
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"ftsvm/internal/apps"
	"ftsvm/internal/harness"
	"ftsvm/internal/model"
	"ftsvm/internal/serve"
	"ftsvm/internal/svm"
)

func main() {
	figure := flag.String("figure", "", "figure to regenerate: 7, 8, 9, 10, overhead, diffs, scaling, all")
	ablation := flag.String("ablation", "", "ablation to run: locks, postqueue, checkpoint, serial, recovery, aggregate, twophase, pagesize, detection, slo")
	size := flag.String("size", "medium", "problem size: small, medium, paper")
	nodes := flag.Int("nodes", 8, "cluster nodes")
	jsonOut := flag.String("json", "", "run the figure grid and write a machine-readable report to this file")
	compare := flag.String("compare", "", "re-run the grid recorded in this report and print per-cell deltas")
	detect := flag.String("detect", "oracle", "failure detection for -json grids and the detection ablation's clean runs: oracle, probe")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the workload to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	benchwall := flag.Int("benchwall", 1, "repetitions of the -json grid; the report records the fastest")
	fulltwins := flag.Bool("fulltwins", false, "disable write-set tracked diffing (full-page twins and scans)")
	workers := flag.String("workers", "1", "engine workers per simulation: 1 serial, >1 conservative parallel lanes; -json accepts a comma list (e.g. 1,4) covering each engine in one report")
	sweep := flag.String("sweep", "", "with -json: also time a full failure-point sweep of these apps (comma-separated) at each -workers count")
	scaleOut := flag.String("scale", "", "run the 8/64/256-node scaling grid (flat vs tree+delta tiers) and write a report to this file")
	scaleCompare := flag.String("scalecompare", "", "re-run the scaling grid recorded in this report and fail on any virtual-metric drift")
	dirScaleOut := flag.String("dirscale", "", "run the 8-512-node flat-vs-hashed directory grid (healthy + mid-run kill) and write a report to this file")
	dirScaleCompare := flag.String("dirscalecompare", "", "re-run the directory grid recorded in this report and fail on any deterministic-metric drift")
	flag.Parse()

	sz := harness.Size(*size)
	out := os.Stdout
	det, err := model.ParseDetection(*detect)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svmbench: %v\n", err)
		os.Exit(2)
	}
	var workersList []int
	for _, f := range strings.Split(*workers, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 {
			fmt.Fprintf(os.Stderr, "svmbench: bad -workers %q\n", *workers)
			os.Exit(2)
		}
		workersList = append(workersList, w)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "svmbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "svmbench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "svmbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "svmbench: %v\n", err)
			}
		}()
	}

	if *scaleOut != "" {
		if err := runScaleJSON(*scaleOut, sz); err != nil {
			fmt.Fprintf(os.Stderr, "svmbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *scaleCompare != "" {
		if err := runScaleCompare(*scaleCompare); err != nil {
			fmt.Fprintf(os.Stderr, "svmbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *dirScaleOut != "" {
		if err := runDirScaleJSON(*dirScaleOut, sz); err != nil {
			fmt.Fprintf(os.Stderr, "svmbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *dirScaleCompare != "" {
		if err := runDirScaleCompare(*dirScaleCompare); err != nil {
			fmt.Fprintf(os.Stderr, "svmbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *jsonOut != "" {
		if err := runBenchJSON(*jsonOut, sz, *nodes, det, *benchwall, *fulltwins, workersList, *sweep); err != nil {
			fmt.Fprintf(os.Stderr, "svmbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *compare != "" {
		if len(workersList) != 1 {
			fmt.Fprintf(os.Stderr, "svmbench: -compare takes a single -workers count\n")
			os.Exit(2)
		}
		if err := runBenchCompare(*compare, *fulltwins, workersList[0]); err != nil {
			fmt.Fprintf(os.Stderr, "svmbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *figure == "" && *ablation == "" {
		*figure = "all"
	}

	switch *figure {
	case "":
	case "7":
		harness.FigureBreakdown(out, sz, *nodes, 1, false)
	case "8":
		harness.FigureBreakdown(out, sz, *nodes, 1, true)
	case "9":
		harness.FigureBreakdown(out, sz, *nodes, 2, false)
	case "10":
		harness.FigureBreakdown(out, sz, *nodes, 2, true)
	case "overhead":
		harness.OverheadSummary(out, sz, *nodes)
	case "diffs":
		harness.DiffAnalysis(out, sz, *nodes)
	case "scaling":
		harness.ScalingSummary(out, sz, []string{"fft", "waternsq", "radix"})
	case "all":
		harness.FigureBreakdown(out, sz, *nodes, 1, false)
		fmt.Fprintln(out)
		harness.FigureBreakdown(out, sz, *nodes, 1, true)
		fmt.Fprintln(out)
		harness.FigureBreakdown(out, sz, *nodes, 2, false)
		fmt.Fprintln(out)
		harness.FigureBreakdown(out, sz, *nodes, 2, true)
		fmt.Fprintln(out)
		harness.OverheadSummary(out, sz, *nodes)
		fmt.Fprintln(out)
		harness.DiffAnalysis(out, sz, *nodes)
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *figure)
		os.Exit(2)
	}

	switch *ablation {
	case "":
	case "locks":
		ablationLocks(sz, *nodes)
	case "postqueue":
		ablationPostQueue(sz, *nodes)
	case "checkpoint":
		ablationCheckpoint(sz, *nodes)
	case "serial":
		ablationSerial(sz, *nodes)
	case "recovery":
		ablationRecovery(sz, *nodes)
	case "aggregate":
		ablationAggregate(sz, *nodes)
	case "twophase":
		ablationTwoPhase(sz, *nodes)
	case "pagesize":
		ablationPageSize(sz, *nodes)
	case "detection":
		ablationDetection(sz, *nodes)
	case "slo":
		ablationSLO(sz, *nodes)
	default:
		fmt.Fprintf(os.Stderr, "unknown ablation %q\n", *ablation)
		os.Exit(2)
	}
}

// ablationLocks compares GeNIMA's distributed queue lock against the
// paper's centralized polling lock (§4.3: "the centralized algorithm
// performs at least as well as the distributed queuing lock").
func ablationLocks(sz harness.Size, nodes int) {
	fmt.Printf("Ablation: lock algorithm (base protocol, %d nodes, size=%s)\n", nodes, sz)
	fmt.Printf("%-14s %-9s %12s %12s\n", "app", "lock", "total ms", "lock ms")
	for _, app := range []string{"waternsq", "watersp", "radix", "volrend"} {
		for _, algo := range []svm.LockAlgo{svm.LockQueue, svm.LockPolling, svm.LockNIC} {
			r := harness.Run(harness.Config{
				App: app, Size: sz, Mode: svm.ModeBase,
				Nodes: nodes, ThreadsPerNode: 1, LockAlgo: algo,
			})
			if r.Err != nil {
				fmt.Printf("%-14s %-9s ERROR: %v\n", app, algo, r.Err)
				continue
			}
			_, _, lock, _ := r.Breakdown.FourWay()
			fmt.Printf("%-14s %-9s %12.1f %12.1f\n", app, algo,
				float64(r.ExecNs)/1e6, float64(lock)/1e6)
		}
	}
}

// ablationPostQueue sweeps the NIC post-queue depth, the parameter the
// paper found critical (§5.3.2): diff bursts at releases overflow short
// queues and block the sending processor.
func ablationPostQueue(sz harness.Size, nodes int) {
	fmt.Printf("Ablation: NIC post-queue depth (extended protocol, FFT, %d nodes x 2, size=%s)\n", nodes, sz)
	fmt.Printf("%8s %12s %14s\n", "depth", "total ms", "post stalls ms")
	for _, depth := range []int{8, 16, 32, 64, 128, 256} {
		depth := depth
		r := harness.Run(harness.Config{
			App: "fft", Size: sz, Mode: svm.ModeFT, Nodes: nodes, ThreadsPerNode: 2,
			Overrides: func(c *model.Config) { c.PostQueueDepth = depth },
		})
		if r.Err != nil {
			fmt.Printf("%8d ERROR: %v\n", depth, r.Err)
			continue
		}
		fmt.Printf("%8d %12.1f %14.1f\n", depth, float64(r.ExecNs)/1e6, float64(r.PostStallNs)/1e6)
	}
}

// ablationCheckpoint sweeps the thread stack (checkpoint blob floor) size;
// the paper reports checkpoint overhead proportional to stack size and
// release count.
func ablationCheckpoint(sz harness.Size, nodes int) {
	fmt.Printf("Ablation: checkpoint stack size (extended protocol, WaterNsq, %d nodes x 1, size=%s)\n", nodes, sz)
	fmt.Printf("%10s %12s %12s %12s\n", "stack B", "total ms", "ckpt ms", "ckpts")
	for _, stack := range []int{1024, 2048, 4096, 8192, 16384} {
		stack := stack
		r := harness.Run(harness.Config{
			App: "waternsq", Size: sz, Mode: svm.ModeFT, Nodes: nodes, ThreadsPerNode: 1,
			Overrides: func(c *model.Config) { c.MinCheckpointBytes = stack },
		})
		if r.Err != nil {
			fmt.Printf("%10d ERROR: %v\n", stack, r.Err)
			continue
		}
		fmt.Printf("%10d %12.1f %12.1f %12d\n", stack,
			float64(r.ExecNs)/1e6, float64(r.Breakdown.Comp[svm.CompCheckpoint])/1e6, r.Checkpoints)
	}
}

// ablationSerial quantifies the extended protocol's release serialization
// (§4.4) by imposing it on the base protocol.
func ablationSerial(sz harness.Size, nodes int) {
	fmt.Printf("Ablation: release serialization (base protocol, %d nodes x 2, size=%s)\n", nodes, sz)
	fmt.Printf("%-14s %10s %10s %9s\n", "app", "parallel", "serial", "delta")
	for _, app := range []string{"waternsq", "watersp", "radix"} {
		par := harness.Run(harness.Config{App: app, Size: sz, Mode: svm.ModeBase, Nodes: nodes, ThreadsPerNode: 2})
		// SerialReleases is an svm option, not a model one; run directly.
		serR := runSerial(app, sz, nodes)
		if par.Err != nil || serR.Err != nil {
			fmt.Printf("%-14s ERROR par=%v ser=%v\n", app, par.Err, serR.Err)
			continue
		}
		fmt.Printf("%-14s %10.1f %10.1f %+8.1f%%\n", app,
			float64(par.ExecNs)/1e6, float64(serR.ExecNs)/1e6,
			100*float64(serR.ExecNs-par.ExecNs)/float64(par.ExecNs))
	}
}

func runSerial(app string, sz harness.Size, nodes int) harness.Result {
	cfg := model.Default()
	cfg.Nodes = nodes
	cfg.ThreadsPerNode = 2
	s := apps.Shape{Nodes: nodes, ThreadsPerNode: 2, PageSize: cfg.PageSize}
	w, err := harness.Build(app, sz, s)
	if err != nil {
		return harness.Result{Err: err}
	}
	cl, err := svm.New(svm.Options{
		Config: cfg, Mode: svm.ModeBase, Pages: w.Pages, Locks: w.Locks,
		HomeAssign: w.HomeAssign, Body: w.Body, SerialReleases: true,
	})
	if err != nil {
		return harness.Result{Err: err}
	}
	if err := cl.Run(); err != nil {
		return harness.Result{Err: err}
	}
	if err := w.Err(); err != nil {
		return harness.Result{Err: err}
	}
	return harness.Result{ExecNs: cl.ExecTime(), Breakdown: cl.AvgBreakdown()}
}

// ablationAggregate measures the paper's §6 suggestion of propagating
// fewer, larger diff messages: all of a release's diffs for one home ride
// in one message.
func ablationAggregate(sz harness.Size, nodes int) {
	fmt.Printf("Ablation: aggregated diff propagation (extended protocol, %d nodes x 2, size=%s)\n", nodes, sz)
	fmt.Printf("%-14s %-12s %12s %12s %12s\n", "app", "diffs", "total ms", "diff ms", "messages")
	for _, app := range []string{"fft", "lu", "waternsq"} {
		for _, agg := range []bool{false, true} {
			r := harness.Run(harness.Config{
				App: app, Size: sz, Mode: svm.ModeFT, Nodes: nodes, ThreadsPerNode: 2,
				AggregateDiffs: agg,
			})
			if r.Err != nil {
				fmt.Printf("%-14s %-12v ERROR: %v\n", app, agg, r.Err)
				continue
			}
			label := "per-page"
			if agg {
				label = "aggregated"
			}
			fmt.Printf("%-14s %-12s %12.1f %12.1f %12d\n", app, label,
				float64(r.ExecNs)/1e6, float64(r.Breakdown.Comp[svm.CompDiff])/1e6, r.MsgsSent)
		}
	}
}

// ablationTwoPhase measures what the two-phase diff propagation's
// ordering guarantee costs, by comparing against the deliberately unsafe
// single-phase variant (both copies updated under one fence). The delta
// is the price of being able to roll an interrupted release forward or
// backward.
func ablationTwoPhase(sz harness.Size, nodes int) {
	fmt.Printf("Ablation: two-phase vs (unsafe) single-phase propagation (extended, %d nodes x 1, size=%s)\n", nodes, sz)
	fmt.Printf("%-14s %-14s %12s %12s\n", "app", "propagation", "total ms", "diff ms")
	for _, app := range []string{"fft", "lu", "waternsq"} {
		for _, unsafe := range []bool{false, true} {
			r := harness.Run(harness.Config{
				App: app, Size: sz, Mode: svm.ModeFT, Nodes: nodes, ThreadsPerNode: 1,
				UnsafeSinglePhase: unsafe,
			})
			if r.Err != nil {
				fmt.Printf("%-14s %-14v ERROR: %v\n", app, unsafe, r.Err)
				continue
			}
			label := "two-phase"
			if unsafe {
				label = "single-phase"
			}
			fmt.Printf("%-14s %-14s %12.1f %12.1f\n", app, label,
				float64(r.ExecNs)/1e6, float64(r.Breakdown.Comp[svm.CompDiff])/1e6)
		}
	}
}

// ablationPageSize sweeps the virtual page size, SVM's coherence
// granularity. Larger pages amortize fetch latency for apps with coarse
// sharing (FFT) but amplify false sharing and diff volume for apps with
// fine-grained writes (Water-Nsquared) — and the extended protocol pays
// the diff price twice, so its overhead grows faster with the page size.
func ablationPageSize(sz harness.Size, nodes int) {
	fmt.Printf("Ablation: page size (coherence granularity, %d nodes x 1, size=%s)\n", nodes, sz)
	fmt.Printf("%-14s %8s %10s %10s %9s %12s\n", "app", "page B", "base ms", "ext ms", "overhead", "ext diff ms")
	for _, app := range []string{"fft", "waternsq", "radix"} {
		for _, page := range []int{1024, 4096, 16384} {
			page := page
			ov := func(c *model.Config) { c.PageSize = page }
			base := harness.Run(harness.Config{
				App: app, Size: sz, Mode: svm.ModeBase, Nodes: nodes, ThreadsPerNode: 1, Overrides: ov,
			})
			ext := harness.Run(harness.Config{
				App: app, Size: sz, Mode: svm.ModeFT, Nodes: nodes, ThreadsPerNode: 1, Overrides: ov,
			})
			if base.Err != nil || ext.Err != nil {
				fmt.Printf("%-14s %8d ERROR base=%v ext=%v\n", app, page, base.Err, ext.Err)
				continue
			}
			fmt.Printf("%-14s %8d %10.1f %10.1f %+8.0f%% %12.1f\n", app, page,
				float64(base.ExecNs)/1e6, float64(ext.ExecNs)/1e6,
				harness.Overhead(base, ext), float64(ext.Breakdown.Comp[svm.CompDiff])/1e6)
		}
	}
}

// ablationDetection sweeps the failure-detection (heartbeat probe)
// timeout under both detector implementations. Oracle mode measures only
// the timeout constant (detection is free and instantaneous once a wait
// expires); probe mode pays for real probe/ack traffic and needs
// ProbeMissLimit consecutive misses before recovery may start, so it
// reports the actual probe message count, the measured kill-to-recovery
// detection latency, and the detector's false-suspicion margin.
func ablationDetection(sz harness.Size, nodes int) {
	fmt.Printf("Ablation: failure detection (extended protocol, FFT + mid-run failure, %d nodes x 1, size=%s)\n", nodes, sz)
	fmt.Printf("%-8s %12s %14s %14s %11s %8s %8s %11s\n",
		"detect", "timeout ms", "no-failure ms", "failure ms", "detect ms", "probes", "acks", "false susp")
	for _, det := range []model.DetectionMode{model.DetectOracle, model.DetectProbe} {
		for _, tmo := range []int64{500_000, 2_000_000, 8_000_000, 32_000_000} {
			tmo := tmo
			ov := func(c *model.Config) { c.HeartbeatTimeoutNs = tmo }
			clean := harness.Run(harness.Config{
				App: "fft", Size: sz, Mode: svm.ModeFT, Nodes: nodes, ThreadsPerNode: 1,
				Detection: det, Overrides: ov,
			})
			if clean.Err != nil {
				fmt.Printf("%-8s %12.1f ERROR: %v\n", det, float64(tmo)/1e6, clean.Err)
				continue
			}
			failed, ks := runWithKill("fft", sz, nodes, clean.ExecNs/3, det, ov)
			if failed.Err != nil {
				fmt.Printf("%-8s %12.1f %14.1f ERROR: %v\n", det, float64(tmo)/1e6, float64(clean.ExecNs)/1e6, failed.Err)
				continue
			}
			fmt.Printf("%-8s %12.1f %14.1f %14.1f %11.2f %8d %8d %11d\n",
				det, float64(tmo)/1e6, float64(clean.ExecNs)/1e6, float64(failed.ExecNs)/1e6,
				float64(ks.detectNs-ks.killNs)/1e6, ks.probes, ks.acks, ks.falseSusp)
		}
	}
}

// ablationRecovery injects a mid-run failure into every application under
// the extended protocol and reports completion, verification, and the cost
// relative to the failure-free run.
func ablationRecovery(sz harness.Size, nodes int) {
	fmt.Printf("Ablation: single-node failure + recovery (extended protocol, %d nodes x 1, size=%s)\n", nodes, sz)
	fmt.Printf("%-14s %14s %14s %10s\n", "app", "no-failure ms", "failure ms", "verified")
	for _, app := range harness.AppNames {
		clean := harness.Run(harness.Config{App: app, Size: sz, Mode: svm.ModeFT, Nodes: nodes, ThreadsPerNode: 1})
		if clean.Err != nil {
			fmt.Printf("%-14s ERROR: %v\n", app, clean.Err)
			continue
		}
		failed, _ := runWithKill(app, sz, nodes, clean.ExecNs/3, model.DetectOracle, nil)
		if failed.Err != nil {
			fmt.Printf("%-14s %14.1f ERROR: %v\n", app, float64(clean.ExecNs)/1e6, failed.Err)
			continue
		}
		fmt.Printf("%-14s %14.1f %14.1f %10s\n", app,
			float64(clean.ExecNs)/1e6, float64(failed.ExecNs)/1e6, "yes")
	}
}

// killStats captures what the failure-injection run revealed about the
// detector: the virtual kill and recovery-start times plus the probe
// traffic the detection cost on the wire.
type killStats struct {
	killNs    int64
	detectNs  int64 // virtual time recovery started (0: never)
	probes    int64
	acks      int64
	falseSusp int64
}

// recoveryClock is a tracer stamping the kill and the first recovery.start
// with virtual time.
type recoveryClock struct {
	cl      *svm.Cluster
	killNs  int64
	startNs int64
}

func (r *recoveryClock) Event(e svm.TraceEvent) {
	switch e.Kind {
	case "kill":
		if r.killNs == 0 {
			r.killNs = r.cl.Engine().Now()
		}
	case "recovery.start":
		if r.startNs == 0 {
			r.startNs = r.cl.Engine().Now()
		}
	}
}

func runWithKill(app string, sz harness.Size, nodes int, killAt int64, det model.DetectionMode, override func(*model.Config)) (harness.Result, killStats) {
	cfg := model.Default()
	cfg.Nodes = nodes
	cfg.ThreadsPerNode = 1
	cfg.Detection = det
	if override != nil {
		override(&cfg)
	}
	s := apps.Shape{Nodes: nodes, ThreadsPerNode: 1, PageSize: cfg.PageSize}
	w, err := harness.Build(app, sz, s)
	if err != nil {
		return harness.Result{Err: err}, killStats{}
	}
	clock := &recoveryClock{}
	cl, err := svm.New(svm.Options{
		Config: cfg, Mode: svm.ModeFT, Pages: w.Pages, Locks: w.Locks,
		HomeAssign: w.HomeAssign, Body: w.Body, Tracer: clock,
	})
	if err != nil {
		return harness.Result{Err: err}, killStats{}
	}
	clock.cl = cl
	ks := func() killStats {
		return killStats{
			killNs: clock.killNs, detectNs: clock.startNs,
			probes: cl.Network().ProbesSent, acks: cl.Network().ProbeAcks,
			falseSusp: cl.Network().FalseSuspicions,
		}
	}
	cl.Engine().At(killAt, func() { cl.KillNode(1 + int(killAt)%(nodes-1)) })
	if err := cl.Run(); err != nil {
		return harness.Result{Err: err}, ks()
	}
	if !cl.Finished() {
		return harness.Result{Err: fmt.Errorf("did not finish after failure")}, ks()
	}
	if err := w.Err(); err != nil {
		return harness.Result{Err: fmt.Errorf("verification failed: %w", err)}, ks()
	}
	return harness.Result{ExecNs: cl.ExecTime()}, ks()
}

// ablationSLO sweeps the open-loop serving workload's offered load under
// the combined storm chaos scenario with a mid-run node kill, for both
// failure detectors: where does each detector keep the tail inside a
// latency SLO, and how long does the store take to re-warm after
// recovery? Rates above the knee saturate the store — open-loop arrivals
// keep coming during the outage, so the backlog (and the tail) grows
// with the offered rate, which is exactly what this sweep exposes.
func ablationSLO(sz harness.Size, nodes int) {
	reqs := map[harness.Size]int{harness.SizeSmall: 200, harness.SizeMedium: 400, harness.SizePaper: 1000}[sz]
	storm, err := harness.ChaosByName("storm")
	if err != nil {
		panic(err)
	}
	fmt.Printf("Ablation: serving tail latency vs offered load (kvserve, storm chaos + mid-run kill, %d nodes x 1, size=%s)\n", nodes, sz)
	fmt.Printf("%-8s %10s %9s %10s %10s %10s %10s %10s\n",
		"detect", "gap us", "kreq/s", "p50 ms", "p99 ms", "p999 ms", "recov ms", "rewarm ms")
	for _, det := range []model.DetectionMode{model.DetectOracle, model.DetectProbe} {
		for _, gap := range []int64{200_000, 400_000, 800_000, 1_600_000} {
			sp := serve.DefaultSpec()
			sp.Scenario = "storm"
			sp.Chaos = storm.Chaos
			sp.Detect = det
			sp.Nodes = nodes
			sp.Requests = reqs
			sp.MeanGapNs = gap
			sp.KillAtNs = int64(reqs) * gap * 2 / 5
			r := serve.RunCell(sp)
			if r.Err != nil {
				fmt.Printf("%-8s %10.0f ERROR: %v\n", det, float64(gap)/1e3, r.Err)
				continue
			}
			tput := float64(r.Completed) / (float64(r.ExecNs) / 1e9) / 1000
			fmt.Printf("%-8s %10.0f %9.1f %10.2f %10.2f %10.2f %10.2f %10.2f\n",
				det, float64(gap)/1e3, tput,
				float64(r.Hist.Percentile(0.5))/1e6, float64(r.Hist.Percentile(0.99))/1e6,
				float64(r.Hist.Percentile(0.999))/1e6,
				float64(r.Phases.RecoveryNs)/1e6, float64(r.Phases.RewarmNs)/1e6)
		}
	}
}

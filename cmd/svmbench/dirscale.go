package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"ftsvm/internal/harness"
	"ftsvm/internal/model"
	"ftsvm/internal/svm"
)

// The directory benchmark: flat-vs-hashed home directories across the
// tier node counts, healthy and through a mid-run failure. The healthy
// rows demonstrate the placement guarantee (identical virtual metrics —
// the hashed directory puts every item exactly where the flat map
// does), the kill rows record what the hashed directory buys and costs
// at each scale: directory resident bytes, rehoming wall time
// (O(items-on-failed) vs the flat map's full-table rewrite), and the
// virtual recovery window. Every cell runs the full tier preset for its
// node count so the two directory columns isolate exactly the
// directory.

// dirCell is one directory-scaling measurement.
type dirCell struct {
	App   string `json:"app"`
	Nodes int    `json:"nodes"`
	// Dir is "flat" or "hashed".
	Dir string `json:"dir"`
	// Kill is true for the mid-run-failure row of the pair.
	Kill      bool    `json:"kill"`
	VirtualMs float64 `json:"vms"`
	Msgs      int64   `json:"msgs"`
	Bytes     int64   `json:"bytes"`
	// DirBytes is the resident directory footprint (pages + locks) at
	// the end of the run — deterministic, part of the compare gate.
	DirBytes int64 `json:"dir_bytes"`
	// RecoverMs is the virtual time from the kill to recovery.done
	// (zero on healthy rows).
	RecoverMs float64 `json:"recover_ms"`
	// RehomeWallUs is host wall time spent inside Directory.Rehome
	// during recovery — the measured O(affected) claim. Host-dependent:
	// reported, never gated.
	RehomeWallUs float64 `json:"rehome_wall_us"`
	WallMs       float64 `json:"wall_ms"`
}

// dirReport is the artifact written by -dirscale and replayed by
// -dirscalecompare (BENCH_PR9.json).
type dirReport struct {
	Size        string    `json:"size"`
	GoMaxProcs  int       `json:"gomaxprocs"`
	TotalWallMs float64   `json:"total_wall_ms"`
	Cells       []dirCell `json:"cells"`
}

// dirTierFor maps a node count to its scale preset. Unlike the scaling
// grid's flat-vs-tree split, every directory cell gets the full tier —
// both directory columns run the same topology, vector-time codec, and
// lock backoff, so the columns differ only in the directory.
func dirTierFor(nodes int) harness.Tier {
	switch nodes {
	case 64:
		return harness.TierLarge
	case 256:
		return harness.TierHuge
	case 512:
		return harness.TierXLarge
	}
	return harness.TierPaper
}

// dirCellConfig builds the harness cell for one directory measurement.
// The directory mode is forced through Overrides after the tier preset,
// so a flat 512-node cell overrides the xlarge tier's hashed default
// and a hashed 8-node cell upgrades the paper tier.
func dirCellConfig(app string, sz harness.Size, nodes int, dir model.DirectoryMode, kill bool) harness.Config {
	c := harness.Config{
		App: app, Size: sz, Mode: svm.ModeFT, ThreadsPerNode: 1,
		Tier:      dirTierFor(nodes),
		Overrides: func(cfg *model.Config) { cfg.Directory = dir },
	}
	if kill {
		c.KillKind, c.KillVictim, c.KillSeq = "release.done", nodes/2, 2
	}
	return c
}

// dirGrid is the directory sweep: micro workloads, FT protocol, four
// cluster sizes, flat vs hashed, healthy and killed.
func dirGrid(sz harness.Size) []harness.Config {
	var cells []harness.Config
	for _, app := range []string{"counter", "falseshare"} {
		for _, nodes := range []int{8, 64, 256, 512} {
			for _, kill := range []bool{false, true} {
				cells = append(cells, dirCellConfig(app, sz, nodes, model.DirFlat, kill))
				cells = append(cells, dirCellConfig(app, sz, nodes, model.DirHashed, kill))
			}
		}
	}
	return cells
}

func dirCellOf(c harness.Config, r harness.Result) dirCell {
	cell := dirCell{
		App:          c.App,
		Nodes:        0,
		Dir:          "flat",
		Kill:         c.KillKind != "",
		VirtualMs:    float64(r.ExecNs) / 1e6,
		Msgs:         r.MsgsSent,
		Bytes:        r.BytesSent,
		DirBytes:     r.DirBytes,
		RehomeWallUs: float64(r.RehomeWallNs) / 1e3,
		WallMs:       float64(r.WallNs) / 1e6,
	}
	cfg, _ := c.ModelConfig()
	cell.Nodes = cfg.Nodes
	cell.Dir = cfg.Directory.String()
	if r.Phase.KillNs > 0 && r.Phase.RecoverNs > 0 {
		cell.RecoverMs = float64(r.Phase.RecoverNs-r.Phase.KillNs) / 1e6
	}
	return cell
}

// runDirScaleJSON runs the directory grid and writes the report.
func runDirScaleJSON(path string, sz harness.Size) error {
	cells := dirGrid(sz)
	start := time.Now()
	results := harness.RunGrid(cells)
	wall := time.Since(start)
	rep := dirReport{
		Size:        string(sz),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		TotalWallMs: float64(wall) / 1e6,
	}
	for i, r := range results {
		if r.Err != nil {
			cell := dirCellOf(cells[i], r)
			return fmt.Errorf("%s n=%d %s kill=%v: %w", cell.App, cell.Nodes, cell.Dir, cell.Kill, r.Err)
		}
		rep.Cells = append(rep.Cells, dirCellOf(cells[i], r))
	}
	if err := dirCheckIdentity(rep); err != nil {
		return err
	}
	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return err
	}
	printDirTable(rep)
	fmt.Printf("wrote %s: %d cells, total wall %.1f ms\n", path, len(rep.Cells), rep.TotalWallMs)
	return nil
}

// dirCheckIdentity asserts the healthy flat/hashed pairs are
// bit-identical in every virtual metric — the placement guarantee the
// paper-grid BENCH gates rest on, checked at every node count before
// the report is written.
func dirCheckIdentity(rep dirReport) error {
	type key struct {
		app   string
		nodes int
	}
	flat := map[key]dirCell{}
	for _, c := range rep.Cells {
		if c.Kill {
			continue
		}
		k := key{c.App, c.Nodes}
		if c.Dir == "flat" {
			flat[k] = c
			continue
		}
		f, ok := flat[k]
		if !ok {
			return fmt.Errorf("dirscale: hashed healthy cell %v has no flat twin", k)
		}
		if f.VirtualMs != c.VirtualMs || f.Msgs != c.Msgs || f.Bytes != c.Bytes {
			return fmt.Errorf("dirscale: %s n=%d healthy runs differ: flat (%.3f vms, %d msgs, %d bytes) vs hashed (%.3f vms, %d msgs, %d bytes)",
				c.App, c.Nodes, f.VirtualMs, f.Msgs, f.Bytes, c.VirtualMs, c.Msgs, c.Bytes)
		}
	}
	return nil
}

func printDirTable(rep dirReport) {
	fmt.Printf("Directory grid (size=%s): flat vs hashed home directories\n", rep.Size)
	fmt.Printf("%-12s %6s %-7s %-5s %12s %12s %10s %11s %13s %9s\n",
		"app", "nodes", "dir", "kill", "vms", "msgs", "dir bytes", "recover ms", "rehome us", "wall ms")
	for _, c := range rep.Cells {
		fmt.Printf("%-12s %6d %-7s %-5v %12.1f %12d %10d %11.2f %13.1f %9.1f\n",
			c.App, c.Nodes, c.Dir, c.Kill, c.VirtualMs, c.Msgs, c.DirBytes, c.RecoverMs, c.RehomeWallUs, c.WallMs)
	}
}

// runDirScaleCompare re-runs the grid recorded in oldPath and fails on
// any drift in the deterministic fields (virtual metrics and directory
// bytes) — the repeat-run bit-identity gate for BENCH_PR9. Wall-clock
// fields (wall_ms, rehome_wall_us) are host-dependent and not gated.
func runDirScaleCompare(oldPath string) error {
	blob, err := os.ReadFile(oldPath)
	if err != nil {
		return err
	}
	var old dirReport
	if err := json.Unmarshal(blob, &old); err != nil {
		return fmt.Errorf("%s: %w", oldPath, err)
	}
	cells := make([]harness.Config, len(old.Cells))
	for i, c := range old.Cells {
		dir, err := model.ParseDirectory(c.Dir)
		if err != nil {
			return fmt.Errorf("%s cell %d: %w", oldPath, i, err)
		}
		cells[i] = dirCellConfig(c.App, harness.Size(old.Size), c.Nodes, dir, c.Kill)
	}
	start := time.Now()
	results := harness.RunGrid(cells)
	wall := time.Since(start)
	fmt.Printf("Directory comparison vs %s (size=%s)\n", oldPath, old.Size)
	drift := 0
	for i, r := range results {
		o := old.Cells[i]
		if r.Err != nil {
			fmt.Printf("%-12s %6d %-7s kill=%-5v ERROR: %v\n", o.App, o.Nodes, o.Dir, o.Kill, r.Err)
			drift++
			continue
		}
		n := dirCellOf(cells[i], r)
		dvms := n.VirtualMs - o.VirtualMs
		dmsgs := n.Msgs - o.Msgs
		dbytes := n.Bytes - o.Bytes
		ddir := n.DirBytes - o.DirBytes
		drec := n.RecoverMs - o.RecoverMs
		if dvms != 0 || dmsgs != 0 || dbytes != 0 || ddir != 0 || drec != 0 {
			drift++
		}
		fmt.Printf("%-12s %6d %-7s kill=%-5v %+10.3f vms %+8d msgs %+10d bytes %+8d dir %+8.3f rec\n",
			o.App, o.Nodes, o.Dir, o.Kill, dvms, dmsgs, dbytes, ddir, drec)
	}
	fmt.Printf("total wall: %.1f ms old, %.1f ms new\n", old.TotalWallMs, float64(wall)/1e6)
	if drift != 0 {
		return fmt.Errorf("%d cell(s) changed deterministic metrics — directory behavior drifted", drift)
	}
	fmt.Println("deterministic metrics identical in every cell")
	return nil
}

// Command svmfi is the exhaustive failure-point explorer: it runs a
// workload once to enumerate every protocol-step boundary, then
// re-executes it once per boundary with a fail-stop injected exactly
// there, holding each run to the invariant auditor, the workload's own
// result check, the replica/availability invariants, and the
// memory-consistency oracle's causal replay of the commit log.
//
// Usage:
//
//	svmfi -app counter,falseshare -size small -nodes 4
//	svmfi -app counter -budget 200 -workers 8 -json
//	svmfi -app counter -shard 1/4 -json     # machine 2 of 4
//	svmfi -app counter -kinds release.phase1,ckpt.A
//	svmfi -app counter -boundary 'release.phase1@n2#3'
//	svmfi -app counter -nodes 6 -degree 3 -pairs -budget 16 -seconds 9
//
// The workload is recorded once per app; the sweep then re-executes it
// on a pool of -workers goroutines, each injection run owning a fresh
// engine. NDJSON verdicts are emitted in boundary order regardless of
// completion order. -shard i/n keeps only every n-th boundary starting
// at i, so n machines running the same command with shards 0/n..n-1/n
// together cover the full sweep.
//
// -pairs explores ordered failure-point pairs: each swept boundary
// becomes a first kill, a discovery run enumerates the boundaries of
// the re-execution that follows it (mid-recovery ones included), and up
// to -seconds of them are re-executed as two-kill schedules. At
// -degree k >= 3 the second kill is genuinely injected and the run held
// to the full invariant set; at the default degree 2 second kills are
// refused by the failure model.
//
// Every failing verdict is reproducible from (app config, schedule,
// seed): rerun it with -boundary 'id' or -boundary 'id1,id2'.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ftsvm/internal/explore"
	"ftsvm/internal/harness"
	"ftsvm/internal/model"
	"ftsvm/internal/svm"
)

func main() {
	appsFlag := flag.String("app", "counter,falseshare", "comma-separated applications to sweep")
	size := flag.String("size", "small", "problem size: small, medium, paper")
	nodes := flag.Int("nodes", 4, "cluster nodes")
	tierFlag := flag.String("tier", "", "scale tier preset: paper, large (64 nodes), huge (256 nodes), xlarge (512 nodes, hashed directory); overrides -nodes")
	threads := flag.Int("threads", 1, "compute threads per node")
	lock := flag.String("lock", "polling", "lock algorithm: polling (the queue lock has no FT variant)")
	detect := flag.String("detect", "oracle", "failure detection: oracle, probe")
	seed := flag.Int64("seed", 1, "simulation seed")
	budget := flag.Int("budget", 0, "cap the sweep at this many boundaries, evenly sampled (0: exhaustive)")
	stride := flag.Int("audit-stride", 0, "invariant-auditor page-sweep stride (0: every event; large clusters want a sampled stride)")
	workers := flag.Int("workers", 0, "parallel injection runs (0: GOMAXPROCS)")
	shard := flag.String("shard", "", "multi-machine split i/n: sweep only boundaries with index = i mod n")
	kinds := flag.String("kinds", "", "restrict to these boundary kinds (comma-separated)")
	boundary := flag.String("boundary", "", "explore one schedule: a boundary id (kind@nN#occ) or a comma-separated list, and print its verdict")
	pairs := flag.Bool("pairs", false, "sweep ordered failure-point pairs: every swept boundary as a first kill, -seconds second kills each")
	seconds := flag.Int("seconds", 8, "with -pairs: second kills per first boundary, evenly sampled from the post-failure re-execution (0: all)")
	degree := flag.Int("degree", 2, "home-replication degree k: k-1 overlapping failures tolerated (2 = the paper's primary/secondary)")
	jsonOut := flag.Bool("json", false, "emit one JSON verdict per line instead of a summary")
	verbose := flag.Bool("v", false, "print per-boundary progress and the kind histogram")
	flag.Parse()

	if *lock != "polling" {
		fmt.Fprintln(os.Stderr, "svmfi: only the polling lock has a fault-tolerant variant (§4.3)")
		os.Exit(2)
	}
	det := model.DetectionMode(0)
	if *detect == "probe" {
		det = model.DetectProbe
	}
	shardI, shardN, err := parseShard(*shard)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svmfi: %v\n", err)
		os.Exit(2)
	}
	tier, err := harness.ParseTier(*tierFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svmfi: %v\n", err)
		os.Exit(2)
	}
	cellNodes := *nodes
	if tier != harness.TierPaper {
		// The tier fixes the cluster shape; -nodes keeps its default role
		// only on the paper tier.
		cellNodes = 0
	}

	// Non-default spec-shaping flags, echoed into reproduce hints so a
	// pasted command rebuilds the exact cluster the failure needs.
	repro := ""
	if *size != "small" {
		repro += " -size " + *size
	}
	if *tierFlag != "" {
		repro += " -tier " + *tierFlag
	} else if *nodes != 4 {
		repro += fmt.Sprintf(" -nodes %d", *nodes)
	}
	if *threads != 1 {
		repro += fmt.Sprintf(" -threads %d", *threads)
	}
	if *detect != "oracle" {
		repro += " -detect " + *detect
	}
	if *seed != 1 {
		repro += fmt.Sprintf(" -seed %d", *seed)
	}
	if *stride != 0 {
		repro += fmt.Sprintf(" -audit-stride %d", *stride)
	}
	if *degree != 2 {
		repro += fmt.Sprintf(" -degree %d", *degree)
	}

	failed := 0
	for _, app := range strings.Split(*appsFlag, ",") {
		app = strings.TrimSpace(app)
		if app == "" {
			continue
		}
		sp := harness.ExploreSpec(harness.Config{
			App: app, Size: harness.Size(*size), Tier: tier,
			Nodes: cellNodes, ThreadsPerNode: *threads,
			LockAlgo: svm.LockPolling, Detection: det,
			AuditStride: *stride,
			Overrides: func(cfg *model.Config) {
				cfg.Seed = *seed
				cfg.ReplicaDegree = *degree
			},
		})
		if *pairs && *boundary == "" {
			failed += sweepPairs(sp, repro, *budget, *seconds, *workers, shardI, shardN, *kinds, *jsonOut, *verbose)
		} else {
			failed += sweepApp(sp, repro, *boundary, *budget, *workers, shardI, shardN, *kinds, *jsonOut, *verbose)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// parseShard parses the -shard value "i/n" (empty: no split).
func parseShard(s string) (i, n int, err error) {
	if s == "" {
		return 0, 1, nil
	}
	if _, err := fmt.Sscanf(s, "%d/%d", &i, &n); err != nil {
		return 0, 0, fmt.Errorf("bad -shard %q: want i/n, e.g. 0/4", s)
	}
	if n < 1 || i < 0 || i >= n {
		return 0, 0, fmt.Errorf("bad -shard %q: need 0 <= i < n", s)
	}
	return i, n, nil
}

// sweepApp records one workload's boundaries and explores them,
// returning the number of failed verdicts.
func sweepApp(sp explore.Spec, repro, boundary string, budget, workers, shardI, shardN int, kinds string, jsonOut, verbose bool) int {
	t0 := time.Now()
	tr, err := explore.Record(sp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svmfi: %s: baseline recording failed: %v\n", sp.Name, err)
		return 1
	}

	if boundary != "" {
		var schedule []explore.Boundary
		for _, id := range strings.Split(boundary, ",") {
			b, err := explore.ParseID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintf(os.Stderr, "svmfi: %v\n", err)
				return 1
			}
			schedule = append(schedule, b)
		}
		v := explore.ExploreSchedule(sp, schedule, tr.Budget())
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(v)
		if v.Pass {
			return 0
		}
		return 1
	}

	bs := tr.Boundaries
	if kinds != "" {
		bs, err = explore.FilterKinds(bs, strings.Split(kinds, ","))
		if err != nil {
			fmt.Fprintf(os.Stderr, "svmfi: %v\n", err)
			return 1
		}
	}
	bs = explore.Shard(bs, shardI, shardN)
	total := len(bs)
	if budget > 0 && budget < total {
		bs = explore.Sample(bs, budget)
	}

	progress := func(done int, v explore.Verdict) {}
	if verbose && !jsonOut {
		progress = func(done int, v explore.Verdict) {
			status := "pass"
			if !v.Pass {
				status = "FAIL: " + v.Err
			}
			fmt.Printf("  [%d/%d] %s %s\n", done, len(bs), strings.Join(v.Schedule, ","), status)
		}
	}
	vs := explore.Sweep(sp, bs, tr.Budget(), workers, progress)

	failed := 0
	enc := json.NewEncoder(os.Stdout)
	for i, v := range vs {
		if !v.Pass {
			failed++
		}
		if jsonOut {
			enc.Encode(v)
		} else if !v.Pass {
			fmt.Printf("FAIL %s at %s: %s\n", sp.Name, bs[i].ID(), v.Err)
			fmt.Printf("  reproduce: svmfi -app %s%s -boundary '%s'\n", strings.SplitN(sp.Name, "/", 2)[0], repro, bs[i].ID())
		}
	}
	if !jsonOut {
		fmt.Printf("%s: %d/%d boundaries pass (%d recorded, %d eligible, %d swept, %.1fs)\n",
			sp.Name, len(vs)-failed, len(vs), len(tr.Boundaries), total, len(vs), time.Since(t0).Seconds())
		if verbose {
			fmt.Printf("  kinds: %s\n", explore.KindHistogram(tr.Boundaries))
		}
	}
	return failed
}

// sweepPairs records one workload's boundaries and explores ordered
// failure-point pairs rooted at each swept boundary, returning the
// number of failed verdicts.
func sweepPairs(sp explore.Spec, repro string, budget, secondsPer, workers, shardI, shardN int, kinds string, jsonOut, verbose bool) int {
	t0 := time.Now()
	tr, err := explore.Record(sp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svmfi: %s: baseline recording failed: %v\n", sp.Name, err)
		return 1
	}
	firsts := tr.Boundaries
	if kinds != "" {
		firsts, err = explore.FilterKinds(firsts, strings.Split(kinds, ","))
		if err != nil {
			fmt.Fprintf(os.Stderr, "svmfi: %v\n", err)
			return 1
		}
	}
	firsts = explore.Shard(firsts, shardI, shardN)
	if budget > 0 && budget < len(firsts) {
		firsts = explore.Sample(firsts, budget)
	}

	progress := func(done int, v explore.Verdict) {}
	if verbose && !jsonOut {
		progress = func(done int, v explore.Verdict) {
			status := "pass"
			if !v.Pass {
				status = "FAIL: " + v.Err
			}
			fmt.Printf("  [%d] %s %s\n", done, strings.Join(v.Schedule, ","), status)
		}
	}
	pairs, vs, err := explore.ExplorePairs(sp, firsts, secondsPer, tr.Budget(), workers, progress)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svmfi: %s: pair discovery failed: %v\n", sp.Name, err)
		return 1
	}

	failed, injectedBoth := 0, 0
	enc := json.NewEncoder(os.Stdout)
	for i, v := range vs {
		if !v.Pass {
			failed++
		}
		if len(v.Injected) == 2 {
			injectedBoth++
		}
		if jsonOut {
			enc.Encode(v)
		} else if !v.Pass {
			fmt.Printf("FAIL %s at %s: %s\n", sp.Name, pairs[i].ID(), v.Err)
			fmt.Printf("  reproduce: svmfi -app %s%s -boundary '%s,%s'\n",
				strings.SplitN(sp.Name, "/", 2)[0], repro, pairs[i].First.ID(), pairs[i].Second.ID())
		}
	}
	if !jsonOut {
		fmt.Printf("%s: %d/%d pairs pass (%d firsts, %d with both kills injected, %.1fs)\n",
			sp.Name, len(vs)-failed, len(vs), len(firsts), injectedBoth, time.Since(t0).Seconds())
	}
	return failed
}

// Command svmfi is the exhaustive failure-point explorer: it runs a
// workload once to enumerate every protocol-step boundary, then
// re-executes it once per boundary with a fail-stop injected exactly
// there, holding each run to the invariant auditor, the workload's own
// result check, the replica/availability invariants, and the
// memory-consistency oracle's causal replay of the commit log.
//
// Usage:
//
//	svmfi -app counter,falseshare -size small -nodes 4
//	svmfi -app counter -budget 200 -workers 8 -json
//	svmfi -app counter -shard 1/4 -json     # machine 2 of 4
//	svmfi -app counter -kinds release.phase1,ckpt.A
//	svmfi -app counter -boundary 'release.phase1@n2#3'
//
// The workload is recorded once per app; the sweep then re-executes it
// on a pool of -workers goroutines, each injection run owning a fresh
// engine. NDJSON verdicts are emitted in boundary order regardless of
// completion order. -shard i/n keeps only every n-th boundary starting
// at i, so n machines running the same command with shards 0/n..n-1/n
// together cover the full sweep.
//
// Every failing verdict is reproducible from (app config, boundary id,
// seed): rerun it with -boundary.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ftsvm/internal/explore"
	"ftsvm/internal/harness"
	"ftsvm/internal/model"
	"ftsvm/internal/svm"
)

func main() {
	appsFlag := flag.String("app", "counter,falseshare", "comma-separated applications to sweep")
	size := flag.String("size", "small", "problem size: small, medium, paper")
	nodes := flag.Int("nodes", 4, "cluster nodes")
	tierFlag := flag.String("tier", "", "scale tier preset: paper, large (64 nodes), huge (256 nodes), xlarge (512 nodes, hashed directory); overrides -nodes")
	threads := flag.Int("threads", 1, "compute threads per node")
	lock := flag.String("lock", "polling", "lock algorithm: polling (the queue lock has no FT variant)")
	detect := flag.String("detect", "oracle", "failure detection: oracle, probe")
	seed := flag.Int64("seed", 1, "simulation seed")
	budget := flag.Int("budget", 0, "cap the sweep at this many boundaries, evenly sampled (0: exhaustive)")
	stride := flag.Int("audit-stride", 0, "invariant-auditor page-sweep stride (0: every event; large clusters want a sampled stride)")
	workers := flag.Int("workers", 0, "parallel injection runs (0: GOMAXPROCS)")
	shard := flag.String("shard", "", "multi-machine split i/n: sweep only boundaries with index = i mod n")
	kinds := flag.String("kinds", "", "restrict to these boundary kinds (comma-separated)")
	boundary := flag.String("boundary", "", "explore a single boundary id (kind@nN#occ) and print its verdict")
	jsonOut := flag.Bool("json", false, "emit one JSON verdict per line instead of a summary")
	verbose := flag.Bool("v", false, "print per-boundary progress and the kind histogram")
	flag.Parse()

	if *lock != "polling" {
		fmt.Fprintln(os.Stderr, "svmfi: only the polling lock has a fault-tolerant variant (§4.3)")
		os.Exit(2)
	}
	det := model.DetectionMode(0)
	if *detect == "probe" {
		det = model.DetectProbe
	}
	shardI, shardN, err := parseShard(*shard)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svmfi: %v\n", err)
		os.Exit(2)
	}
	tier, err := harness.ParseTier(*tierFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svmfi: %v\n", err)
		os.Exit(2)
	}
	cellNodes := *nodes
	if tier != harness.TierPaper {
		// The tier fixes the cluster shape; -nodes keeps its default role
		// only on the paper tier.
		cellNodes = 0
	}

	failed := 0
	for _, app := range strings.Split(*appsFlag, ",") {
		app = strings.TrimSpace(app)
		if app == "" {
			continue
		}
		sp := harness.ExploreSpec(harness.Config{
			App: app, Size: harness.Size(*size), Tier: tier,
			Nodes: cellNodes, ThreadsPerNode: *threads,
			LockAlgo: svm.LockPolling, Detection: det,
			AuditStride: *stride,
			Overrides:   func(cfg *model.Config) { cfg.Seed = *seed },
		})
		failed += sweepApp(sp, *boundary, *budget, *workers, shardI, shardN, *kinds, *jsonOut, *verbose)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// parseShard parses the -shard value "i/n" (empty: no split).
func parseShard(s string) (i, n int, err error) {
	if s == "" {
		return 0, 1, nil
	}
	if _, err := fmt.Sscanf(s, "%d/%d", &i, &n); err != nil {
		return 0, 0, fmt.Errorf("bad -shard %q: want i/n, e.g. 0/4", s)
	}
	if n < 1 || i < 0 || i >= n {
		return 0, 0, fmt.Errorf("bad -shard %q: need 0 <= i < n", s)
	}
	return i, n, nil
}

// sweepApp records one workload's boundaries and explores them,
// returning the number of failed verdicts.
func sweepApp(sp explore.Spec, boundary string, budget, workers, shardI, shardN int, kinds string, jsonOut, verbose bool) int {
	t0 := time.Now()
	tr, err := explore.Record(sp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svmfi: %s: baseline recording failed: %v\n", sp.Name, err)
		return 1
	}

	if boundary != "" {
		b, err := explore.ParseID(boundary)
		if err != nil {
			fmt.Fprintf(os.Stderr, "svmfi: %v\n", err)
			return 1
		}
		v := explore.Explore(sp, b, tr.Budget())
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(v)
		if v.Pass {
			return 0
		}
		return 1
	}

	bs := tr.Boundaries
	if kinds != "" {
		bs, err = explore.FilterKinds(bs, strings.Split(kinds, ","))
		if err != nil {
			fmt.Fprintf(os.Stderr, "svmfi: %v\n", err)
			return 1
		}
	}
	bs = explore.Shard(bs, shardI, shardN)
	total := len(bs)
	if budget > 0 && budget < total {
		bs = explore.Sample(bs, budget)
	}

	progress := func(done int, v explore.Verdict) {}
	if verbose && !jsonOut {
		progress = func(done int, v explore.Verdict) {
			status := "pass"
			if !v.Pass {
				status = "FAIL: " + v.Err
			}
			fmt.Printf("  [%d/%d] %s %s\n", done, len(bs), strings.Join(v.Schedule, ","), status)
		}
	}
	vs := explore.Sweep(sp, bs, tr.Budget(), workers, progress)

	failed := 0
	enc := json.NewEncoder(os.Stdout)
	for i, v := range vs {
		if !v.Pass {
			failed++
		}
		if jsonOut {
			enc.Encode(v)
		} else if !v.Pass {
			fmt.Printf("FAIL %s at %s: %s\n", sp.Name, bs[i].ID(), v.Err)
			fmt.Printf("  reproduce: svmfi -app %s -boundary '%s'\n", strings.SplitN(sp.Name, "/", 2)[0], bs[i].ID())
		}
	}
	if !jsonOut {
		fmt.Printf("%s: %d/%d boundaries pass (%d recorded, %d eligible, %d swept, %.1fs)\n",
			sp.Name, len(vs)-failed, len(vs), len(tr.Boundaries), total, len(vs), time.Since(t0).Seconds())
		if verbose {
			fmt.Printf("  kinds: %s\n", explore.KindHistogram(tr.Boundaries))
		}
	}
	return failed
}

// Command svmrun executes a single application on the simulated SVM
// cluster and prints its execution-time breakdown, traffic statistics, and
// verification result. Optionally injects a node failure.
//
// Usage:
//
//	svmrun -app fft -mode extended -nodes 8 -threads 2 -size medium
//	svmrun -app waternsq -mode extended -kill 2 -killat 5ms
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"ftsvm/internal/apps"
	"ftsvm/internal/harness"
	"ftsvm/internal/model"
	"ftsvm/internal/svm"
)

func main() {
	app := flag.String("app", "fft", "application: fft, lu, waternsq, watersp, radix, volrend")
	mode := flag.String("mode", "extended", "protocol: base, extended")
	lock := flag.String("lock", "polling", "lock algorithm: polling, queue")
	size := flag.String("size", "medium", "problem size: small, medium, paper")
	nodes := flag.Int("nodes", 8, "cluster nodes")
	threads := flag.Int("threads", 1, "compute threads per node")
	kill := flag.Int("kill", -1, "node to fail mid-run (-1: no failure)")
	killAt := flag.Duration("killat", 5*time.Millisecond, "virtual time of the failure")
	seed := flag.Int64("seed", 1, "simulation seed")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	benchwall := flag.Int("benchwall", 1, "run the simulation this many times and report the fastest wall time")
	fulltwins := flag.Bool("fulltwins", false, "disable write-set tracked diffing (full-page twins and scans)")
	flag.Parse()

	cfg := model.Default()
	cfg.Nodes = *nodes
	cfg.ThreadsPerNode = *threads
	cfg.Seed = *seed

	m := svm.ModeFT
	if *mode == "base" {
		m = svm.ModeBase
	}
	la := svm.LockPolling
	if *lock == "queue" {
		la = svm.LockQueue
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	// The cluster and workload are one-shot; -benchwall rebuilds both per
	// repetition and reports the fastest wall time (host-noise defense).
	reps := *benchwall
	if reps < 1 {
		reps = 1
	}
	var cl *svm.Cluster
	var w *apps.Workload
	var bestWall time.Duration
	for rep := 0; rep < reps; rep++ {
		s := apps.Shape{Nodes: cfg.Nodes, ThreadsPerNode: cfg.ThreadsPerNode, PageSize: cfg.PageSize}
		var err error
		w, err = harness.Build(*app, harness.Size(*size), s)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}

		cl, err = svm.New(svm.Options{
			Config:     cfg,
			Mode:       m,
			LockAlgo:   la,
			Pages:      w.Pages,
			Locks:      w.Locks,
			HomeAssign: w.HomeAssign,
			Body:       w.Body,
			FullTwins:  *fulltwins,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if *kill >= 0 {
			cl.Engine().At(killAt.Nanoseconds(), func() { cl.KillNode(*kill) })
			if rep == 0 {
				fmt.Printf("will fail node %d at t=%v\n", *kill, *killAt)
			}
		}

		start := time.Now()
		if err := cl.Run(); err != nil {
			fmt.Fprintln(os.Stderr, "simulation error:", err)
			os.Exit(1)
		}
		wall := time.Since(start)
		if rep == 0 || wall < bestWall {
			bestWall = wall
		}
		if reps > 1 {
			fmt.Printf("  rep %d/%d: %.1f ms wall\n", rep+1, reps, float64(wall)/1e6)
		}
		if !cl.Finished() {
			fmt.Fprintln(os.Stderr, "threads did not finish")
			os.Exit(1)
		}
		if err := w.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "VERIFICATION FAILED:", err)
			os.Exit(1)
		}
	}

	fmt.Printf("%s  protocol=%s  lock=%s  %d nodes x %d threads  size=%s\n",
		w.Name, m, la, cfg.Nodes, cfg.ThreadsPerNode, *size)
	fmt.Printf("verification: OK\n")
	fmt.Printf("execution time: %.2f ms (virtual), %.2f ms (wall)\n",
		float64(cl.ExecTime())/1e6, float64(bestWall)/1e6)

	bd := cl.AvgBreakdown()
	fmt.Println("breakdown (avg per thread, ms):")
	for _, c := range svm.Components() {
		fmt.Printf("  %-12s %10.2f\n", c, float64(bd.Comp[c])/1e6)
	}
	var msgs, bytes, stalls int64
	for i := 0; i < cfg.Nodes; i++ {
		st := cl.Network().Endpoint(i).Stats()
		msgs += st.MsgsSent
		bytes += st.BytesSent
		stalls += st.PostStallsNs
	}
	fmt.Printf("traffic: %d messages, %.1f MB, post-queue stalls %.2f ms\n",
		msgs, float64(bytes)/1e6, float64(stalls)/1e6)
	fmt.Printf("checkpoints: %d\n", cl.CheckpointCount())

	ps := cl.ProtoStats()
	fmt.Println("protocol events:")
	fmt.Printf("  read faults  %8d   remote fetches %8d   local fetches %8d\n",
		ps.ReadFaults, ps.RemoteFetches, ps.LocalFetches)
	fmt.Printf("  write faults %8d   intervals      %8d   invalidations %8d\n",
		ps.WriteFaults, ps.Intervals, ps.Invalidations)
	fmt.Printf("  pages diffed %8d   home pages     %8d   (%.0f%% home)\n",
		ps.PagesDiffed, ps.HomePagesDiffed, 100*ps.HomeDiffFraction())
	fmt.Printf("  diff msgs    %8d   diff bytes     %8d   deferred words %6d\n",
		ps.DiffMsgs, ps.DiffBytes, ps.DeferredWords)
	fmt.Printf("  lock acquires %7d   intra-node     %8d   barriers      %8d\n",
		ps.RemoteAcquires, ps.IntraNodeHandoffs, ps.BarrierEpisodes)
	if ps.Recoveries > 0 {
		fmt.Printf("  recoveries   %8d   migrated threads %6d\n", ps.Recoveries, ps.MigratedThreads)
	}
}

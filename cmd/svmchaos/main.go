// Command svmchaos sweeps the application suite across the deterministic
// network-chaos scenarios (latency jitter, bandwidth degradation windows,
// burst loss, gray nodes) under both protocols, with honest probe-based
// failure detection on by default. Every run executes under the online
// invariant auditor; on any failure the auditor's verdict plus each node's
// last flight-recorder events are dumped. A scenario passes only if the
// application's own result verification, the replica audit (extended
// protocol), and the auditor all stay clean — i.e. chaos may only ever
// cost time, never correctness.
//
// Usage:
//
//	svmchaos                              # full sweep: 8 apps x 6 scenarios x 2 modes
//	svmchaos -apps fft,kvstore -scenarios burst,gray
//	svmchaos -size medium -nodes 8 -detect oracle
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ftsvm/internal/apps"
	"ftsvm/internal/harness"
	"ftsvm/internal/model"
	"ftsvm/internal/svm"
)

// chaosApps is the full suite: the paper's six SPLASH-2 workloads plus the
// two extension applications.
var chaosApps = append(append([]string{}, harness.AppNames...), "ocean", "kvstore", "kvserve")

func main() {
	appsFlag := flag.String("apps", strings.Join(chaosApps, ","), "comma-separated applications")
	scenariosFlag := flag.String("scenarios", "", "comma-separated chaos scenarios (default: all)")
	size := flag.String("size", "small", "problem size: small, medium, paper")
	nodes := flag.Int("nodes", 4, "cluster nodes")
	tpn := flag.Int("threads", 1, "threads per node")
	detect := flag.String("detect", "probe", "failure detection: probe (honest), oracle")
	stride := flag.Int("audit-stride", 16, "invariant-auditor page-sweep stride")
	ring := flag.Int("ring", 64, "flight-recorder ring size per node")
	verbose := flag.Bool("v", false, "print every cell, not just failures")
	flag.Parse()

	det, err := model.ParseDetection(*detect)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var scenarios []harness.ChaosScenario
	if *scenariosFlag == "" {
		scenarios = harness.ChaosScenarios()
	} else {
		for _, name := range strings.Split(*scenariosFlag, ",") {
			sc, err := harness.ChaosByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			scenarios = append(scenarios, sc)
		}
	}
	appList := strings.Split(*appsFlag, ",")

	fmt.Printf("svmchaos: %d apps x %d scenarios x 2 modes, size=%s, %d nodes x %d thread(s), detect=%s\n",
		len(appList), len(scenarios), *size, *nodes, *tpn, det)

	ran, failed := 0, 0
	for _, sc := range scenarios {
		for _, app := range appList {
			app = strings.TrimSpace(app)
			for _, mode := range []svm.Mode{svm.ModeBase, svm.ModeFT} {
				name := fmt.Sprintf("%-8s %-10s %-9s", sc.Name, app, mode)
				cell := cell{app: app, size: harness.Size(*size), nodes: *nodes, tpn: *tpn,
					mode: mode, det: det, chaos: sc.Chaos, stride: *stride, ring: *ring}
				line, err := cell.run()
				ran++
				if err != nil {
					failed++
					fmt.Printf("FAIL %s: %v\n", name, err)
					continue
				}
				if *verbose {
					fmt.Printf("  ok %s %s\n", name, line)
				}
			}
		}
	}
	fmt.Printf("svmchaos: %d cells, %d FAILED\n", ran, failed)
	if failed > 0 {
		os.Exit(1)
	}
}

type cell struct {
	app    string
	size   harness.Size
	nodes  int
	tpn    int
	mode   svm.Mode
	det    model.DetectionMode
	chaos  model.Chaos
	stride int
	ring   int
}

// run executes one app x scenario x mode cell under the auditor and
// returns a one-line traffic summary, or the first correctness failure.
func (c cell) run() (string, error) {
	cfg := model.Default()
	cfg.Nodes = c.nodes
	cfg.ThreadsPerNode = c.tpn
	cfg.Detection = c.det
	cfg.Chaos = c.chaos
	shape := apps.Shape{Nodes: c.nodes, ThreadsPerNode: c.tpn, PageSize: cfg.PageSize}
	w, err := harness.Build(c.app, c.size, shape)
	if err != nil {
		return "", err
	}
	cl, err := svm.New(svm.Options{
		Config: cfg, Mode: c.mode, Pages: w.Pages, Locks: w.Locks,
		HomeAssign: w.HomeAssign, Body: w.Body,
	})
	if err != nil {
		return "", err
	}
	rec := cl.EnableFlightRecorder(c.ring)
	cl.EnableAuditor(c.stride)
	dump := func(err error) (string, error) {
		fmt.Printf("flight recorder, %s/%s scenario chaos:\n", c.app, c.mode)
		rec.Dump(os.Stdout, 8)
		return "", err
	}
	if err := cl.Run(); err != nil {
		return dump(fmt.Errorf("simulation error: %w", err))
	}
	if !cl.Finished() {
		return dump(fmt.Errorf("threads did not finish"))
	}
	if err := w.Err(); err != nil {
		return dump(fmt.Errorf("result verification: %w", err))
	}
	if c.mode == svm.ModeFT {
		if err := cl.VerifyReplicas(); err != nil {
			return dump(fmt.Errorf("replica audit: %w", err))
		}
	}
	net := cl.Network()
	return fmt.Sprintf("vms=%.1f retx=%d retxB=%d probes=%d acks=%d falsesusp=%d",
		float64(cl.ExecTime())/1e6, net.Retransmits, net.RetxBytes,
		net.ProbesSent, net.ProbeAcks, net.FalseSuspicions), nil
}

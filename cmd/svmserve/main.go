// Command svmserve runs the open-loop serving benchmark: a Zipfian
// GET/PUT request stream against the SVM key-value store at a fixed
// arrival rate, swept across the deterministic chaos scenarios and both
// failure-detection modes, with a node killed mid-run. For every cell
// it reports throughput, virtual latency percentiles (p50/p99/p999),
// and the per-phase availability timeline — healthy, undetected
// failure, probe detection, recovery, re-warm, restored — derived from
// the cluster's failure-lifecycle milestones.
//
// Every quantity is virtual time from a deterministic simulation: the
// same flags produce a byte-identical report, which -compare gates.
//
// Usage:
//
//	svmserve                              # 6 scenarios x {oracle, probe}
//	svmserve -scenarios none,storm -detect probe
//	svmserve -no-kill                     # healthy baseline sweep
//	svmserve -json BENCH_PR7.json         # write the report
//	svmserve -compare BENCH_PR7.json      # re-run and diff (CI gate)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ftsvm/internal/harness"
	"ftsvm/internal/model"
	"ftsvm/internal/serve"
)

func main() {
	scenariosFlag := flag.String("scenarios", "", "comma-separated chaos scenarios (default: all)")
	detectFlag := flag.String("detect", "oracle,probe", "comma-separated detection modes")
	nodes := flag.Int("nodes", 4, "cluster nodes")
	tpn := flag.Int("threads", 1, "serving threads per node")
	requests := flag.Int("requests", 400, "requests per serving thread")
	gap := flag.Int64("gap", 400_000, "mean inter-arrival gap per thread (virtual ns)")
	zipf := flag.Float64("zipf", 0.99, "key-popularity Zipf exponent (0: uniform)")
	readPct := flag.Int("readpct", 70, "GET percentage of the request mix")
	service := flag.Int64("service", 2_000, "per-request CPU cost (virtual ns)")
	seed := flag.Int64("seed", 1, "simulation-engine seed")
	arrivalSeed := flag.Uint64("arrival-seed", 7, "arrival/request stream seed")
	killAt := flag.Int64("kill-at", 0, "failure injection time (virtual ns; 0: 40% into the nominal stream)")
	noKill := flag.Bool("no-kill", false, "skip failure injection (healthy baseline)")
	victim := flag.Int("victim", 1, "node to kill")
	rewarm := flag.Float64("rewarm-factor", 2, "re-warm exit threshold, x healthy p99")
	jsonOut := flag.String("json", "", "write the report to this file")
	compare := flag.String("compare", "", "re-run and diff against this saved report (exit 1 on drift)")
	flag.Parse()

	var scenarios []harness.ChaosScenario
	if *scenariosFlag == "" {
		scenarios = harness.ChaosScenarios()
	} else {
		for _, name := range strings.Split(*scenariosFlag, ",") {
			sc, err := harness.ChaosByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			scenarios = append(scenarios, sc)
		}
	}
	var detects []model.DetectionMode
	for _, name := range strings.Split(*detectFlag, ",") {
		det, err := model.ParseDetection(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		detects = append(detects, det)
	}

	base := serve.DefaultSpec()
	base.Nodes = *nodes
	base.ThreadsPerNode = *tpn
	base.Requests = *requests
	base.MeanGapNs = *gap
	base.ZipfS = *zipf
	base.ReadPct = *readPct
	base.ServiceNs = *service
	base.Seed = *seed
	base.ArrivalSeed = *arrivalSeed
	base.Victim = *victim
	base.RewarmFactor = *rewarm
	switch {
	case *noKill:
		base.KillAtNs = 0
	case *killAt > 0:
		base.KillAtNs = *killAt
	default:
		base.KillAtNs = int64(*requests) * *gap * 2 / 5
	}

	var specs []serve.Spec
	for _, sc := range scenarios {
		for _, det := range detects {
			sp := base
			sp.Scenario = sc.Name
			sp.Chaos = sc.Chaos
			sp.Detect = det
			specs = append(specs, sp)
		}
	}

	fmt.Printf("svmserve: %d scenarios x %d detection modes, %d nodes x %d thread(s), %d req/thread @ %s mean gap",
		len(scenarios), len(detects), *nodes, *tpn, *requests, ms(*gap))
	if base.KillAtNs > 0 {
		fmt.Printf(", kill node %d @ %s", *victim, ms(base.KillAtNs))
	}
	fmt.Println()

	start := time.Now()
	rs := serve.RunCells(specs)
	wall := time.Since(start)

	rep := serve.Report{
		Grid: serve.Grid{
			Nodes: base.Nodes, ThreadsPerNode: base.ThreadsPerNode,
			Buckets: base.Buckets, SlotsPerBucket: base.SlotsPerBucket, Keys: base.Keys,
			ZipfS: base.ZipfS, ReadPct: base.ReadPct, Requests: base.Requests,
			MeanGapNs: base.MeanGapNs, ServiceNs: base.ServiceNs,
			Seed: base.Seed, ArrivalSeed: base.ArrivalSeed,
			KillAtNs: base.KillAtNs, Victim: base.Victim, RewarmFactor: base.RewarmFactor,
		},
		WallMs: float64(wall.Microseconds()) / 1000,
	}
	failed := 0
	fmt.Printf("%-8s %-6s  %9s %8s %8s %8s %8s  %s\n",
		"scenario", "detect", "kreq/s", "p50", "p99", "p999", "max", "timeline (healthy|undet|detect|recov|rewarm|restored)")
	for _, r := range rs {
		if r.Err != nil {
			failed++
			fmt.Printf("FAIL %s/%s: %v\n", r.Spec.Scenario, r.Spec.Detect, r.Err)
			continue
		}
		c := r.Report()
		rep.Cells = append(rep.Cells, c)
		tput := float64(c.Completed) / (float64(c.ExecNs) / 1e9) / 1000
		ph := c.Phases
		fmt.Printf("%-8s %-6s  %9.1f %8s %8s %8s %8s  %s|%s|%s|%s|%s|%s\n",
			c.Scenario, c.Detect, tput,
			ms(c.P50Ns), ms(c.P99Ns), ms(c.P999Ns), ms(c.MaxNs),
			ms(ph.HealthyNs), ms(ph.UndetectedNs), ms(ph.DetectingNs),
			ms(ph.RecoveryNs), ms(ph.RewarmNs), ms(ph.RestoredNs))
	}
	fmt.Printf("svmserve: %d cells in %.1fms wall, %d FAILED\n", len(rs), rep.WallMs, failed)
	if failed > 0 {
		os.Exit(1)
	}

	if *jsonOut != "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonOut, append(b, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	if *compare != "" {
		b, err := os.ReadFile(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var saved serve.Report
		if err := json.Unmarshal(b, &saved); err != nil {
			fmt.Fprintf(os.Stderr, "svmserve: parse %s: %v\n", *compare, err)
			os.Exit(1)
		}
		if diffs := serve.Diff(saved, rep); len(diffs) > 0 {
			fmt.Printf("svmserve: DRIFT against %s:\n", *compare)
			for _, d := range diffs {
				fmt.Println("  " + d)
			}
			os.Exit(1)
		}
		fmt.Printf("svmserve: bit-identical to %s\n", *compare)
	}
}

// ms renders a virtual-ns duration compactly (µs under 10ms, ms above).
func ms(ns int64) string {
	switch {
	case ns == 0:
		return "0"
	case ns < 10_000_000:
		return fmt.Sprintf("%.0fus", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	}
}

// Command svmcheck systematically verifies the extended protocol's
// fault-tolerance guarantee on a real workload: it re-runs the
// application many times, each run fail-stopping one node inside a
// different protocol window (§4.5's failure cases), and checks that the
// run completes, the application's own result verification passes, and
// the surviving replicas of every page agree byte for byte. Every
// schedule additionally runs under the online invariant auditor
// (internal/obs), so a single-holder or replication violation aborts the
// run at the faulting event instead of surfacing as a corrupt result;
// on any failure each node's last flight-recorder events are dumped.
//
// Usage:
//
//	svmcheck -app waternsq -size small -nodes 4
//	svmcheck -app kvstore -seqs 1,2,3,4 -milestones release.savets,release.phase2
//	svmcheck -app waternsq -lock nic -milestones lock.grant -seqs 0
//
// Each schedule is deterministic: a reported failure reproduces exactly
// under the same flags.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ftsvm/internal/apps"
	"ftsvm/internal/harness"
	"ftsvm/internal/model"
	"ftsvm/internal/svm"
)

var defaultMilestones = []string{
	"release.commit", "release.phase1", "release.savets",
	"release.ckptB", "release.phase2", "release.done",
	"barrier.arrive",
}

// killer fail-stops one node at the first matching trace event.
type killer struct {
	cl   *svm.Cluster
	kind string
	node int
	seq  int64
	done bool
}

func (k *killer) Event(e svm.TraceEvent) {
	if k.done || e.Kind != k.kind || e.Node != k.node {
		return
	}
	if k.seq != 0 && e.Seq != k.seq {
		return
	}
	k.done = true
	k.cl.KillNode(k.node)
}

func main() {
	app := flag.String("app", "waternsq", "application (see svmrun -list)")
	size := flag.String("size", "small", "problem size: small, medium, paper")
	nodes := flag.Int("nodes", 4, "cluster nodes")
	tierFlag := flag.String("tier", "", "scale tier preset: paper, large (64 nodes), huge (256 nodes), xlarge (512 nodes, hashed directory); overrides -nodes")
	tpn := flag.Int("threads", 1, "threads per node")
	lock := flag.String("lock", "polling", "lock algorithm: polling, nic")
	detect := flag.String("detect", "probe", "failure detection: probe (honest probe/ack traffic), oracle")
	seqsFlag := flag.String("seqs", "1,3,5", "comma-separated release/barrier sequence numbers to target (0: any)")
	milestonesFlag := flag.String("milestones", strings.Join(defaultMilestones, ","), "comma-separated protocol milestones")
	stride := flag.Int("audit-stride", 16, "invariant-auditor page-sweep stride (1: every event)")
	ring := flag.Int("ring", 64, "flight-recorder ring size per node")
	verbose := flag.Bool("v", false, "print every schedule, not just failures")
	flag.Parse()

	var algo svm.LockAlgo
	switch *lock {
	case "polling":
		algo = svm.LockPolling
	case "nic":
		algo = svm.LockNIC
	default:
		fmt.Fprintf(os.Stderr, "bad -lock %q: the extended protocol supports polling and nic\n", *lock)
		os.Exit(2)
	}
	det, err := model.ParseDetection(*detect)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	tier, err := harness.ParseTier(*tierFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if tier != harness.TierPaper {
		// The tier fixes the cluster shape; resolve the node count so the
		// victim loop and the banner see the real cluster size.
		scratch := model.Default()
		if err := tier.Apply(&scratch); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		*nodes = scratch.Nodes
	}
	var seqs []int64
	for _, f := range strings.Split(*seqsFlag, ",") {
		n, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -seqs entry %q: %v\n", f, err)
			os.Exit(2)
		}
		seqs = append(seqs, n)
	}
	milestones := strings.Split(*milestonesFlag, ",")

	fmt.Printf("svmcheck: %s size=%s, %d nodes x %d thread(s), %s lock, %s detection; %d milestones x %d victims x %d seqs\n",
		*app, *size, *nodes, *tpn, *lock, det, len(milestones), *nodes, len(seqs))

	sch := schedule{app: *app, size: harness.Size(*size), tier: tier, nodes: *nodes, tpn: *tpn,
		algo: algo, det: det, stride: *stride, ring: *ring}
	ran, unreachable, failed := 0, 0, 0
	for _, kind := range milestones {
		kind = strings.TrimSpace(kind)
		for victim := 0; victim < *nodes; victim++ {
			for _, seq := range seqs {
				name := fmt.Sprintf("%-16s victim=%d seq=%d", kind, victim, seq)
				status, err := sch.run(kind, victim, seq)
				switch {
				case err != nil:
					failed++
					fmt.Printf("FAIL %s: %v\n", name, err)
				case !status:
					unreachable++
					if *verbose {
						fmt.Printf("  -- %s: milestone never reached\n", name)
					}
				default:
					ran++
					if *verbose {
						fmt.Printf("  ok %s\n", name)
					}
				}
			}
		}
	}
	fmt.Printf("svmcheck: %d schedules verified, %d unreachable, %d FAILED\n", ran, unreachable, failed)
	if failed > 0 {
		os.Exit(1)
	}
}

type schedule struct {
	app    string
	size   harness.Size
	tier   harness.Tier
	nodes  int
	tpn    int
	algo   svm.LockAlgo
	det    model.DetectionMode
	stride int
	ring   int
}

// run executes one failure schedule. The bool reports whether the kill
// point was actually reached; unreached schedules verify nothing. On any
// failure the last flight-recorder events of every node are dumped.
func (s schedule) run(kind string, victim int, seq int64) (reached bool, err error) {
	cfg := model.Default()
	if err := s.tier.Apply(&cfg); err != nil {
		return false, err
	}
	cfg.Nodes = s.nodes
	cfg.ThreadsPerNode = s.tpn
	cfg.Detection = s.det
	shape := apps.Shape{Nodes: s.nodes, ThreadsPerNode: s.tpn, PageSize: cfg.PageSize}
	w, err := harness.Build(s.app, s.size, shape)
	if err != nil {
		return false, err
	}
	k := &killer{kind: kind, node: victim, seq: seq}
	cl, err := svm.New(svm.Options{
		Config: cfg, Mode: svm.ModeFT, LockAlgo: s.algo, Pages: w.Pages, Locks: w.Locks,
		HomeAssign: w.HomeAssign, Body: w.Body, Tracer: k,
	})
	if err != nil {
		return false, err
	}
	k.cl = cl
	rec := cl.EnableFlightRecorder(s.ring)
	cl.EnableAuditor(s.stride)
	defer func() {
		if err != nil && reached {
			fmt.Printf("flight recorder, schedule %s victim=%d seq=%d:\n", kind, victim, seq)
			rec.Dump(os.Stdout, 8)
		}
	}()
	if err := cl.Run(); err != nil {
		return k.done, fmt.Errorf("simulation error: %w", err)
	}
	if !k.done {
		return false, nil
	}
	if !cl.Finished() {
		return true, fmt.Errorf("threads did not finish")
	}
	if err := w.Err(); err != nil {
		return true, fmt.Errorf("result verification: %w", err)
	}
	if err := cl.VerifyReplicas(); err != nil {
		return true, fmt.Errorf("replica audit: %w", err)
	}
	return true, nil
}

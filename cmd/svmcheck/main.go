// Command svmcheck systematically verifies the extended protocol's
// fault-tolerance guarantee on a real workload: it re-runs the
// application many times, each run fail-stopping one node inside a
// different protocol window (§4.5's failure cases), and checks that the
// run completes, the application's own result verification passes, and
// the surviving replicas of every page agree byte for byte.
//
// Usage:
//
//	svmcheck -app waternsq -size small -nodes 4
//	svmcheck -app kvstore -seqs 1,2,3,4 -milestones release.savets,release.phase2
//
// Each schedule is deterministic: a reported failure reproduces exactly
// under the same flags.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ftsvm/internal/apps"
	"ftsvm/internal/harness"
	"ftsvm/internal/model"
	"ftsvm/internal/svm"
)

var defaultMilestones = []string{
	"release.commit", "release.phase1", "release.savets",
	"release.ckptB", "release.phase2", "release.done",
	"barrier.arrive",
}

// killer fail-stops one node at the first matching trace event.
type killer struct {
	cl   *svm.Cluster
	kind string
	node int
	seq  int64
	done bool
}

func (k *killer) Event(e svm.TraceEvent) {
	if k.done || e.Kind != k.kind || e.Node != k.node {
		return
	}
	if k.seq != 0 && e.Seq != k.seq {
		return
	}
	k.done = true
	k.cl.KillNode(k.node)
}

func main() {
	app := flag.String("app", "waternsq", "application (see svmrun -list)")
	size := flag.String("size", "small", "problem size: small, medium, paper")
	nodes := flag.Int("nodes", 4, "cluster nodes")
	tpn := flag.Int("threads", 1, "threads per node")
	seqsFlag := flag.String("seqs", "1,3,5", "comma-separated release/barrier sequence numbers to target")
	milestonesFlag := flag.String("milestones", strings.Join(defaultMilestones, ","), "comma-separated protocol milestones")
	verbose := flag.Bool("v", false, "print every schedule, not just failures")
	flag.Parse()

	var seqs []int64
	for _, f := range strings.Split(*seqsFlag, ",") {
		n, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -seqs entry %q: %v\n", f, err)
			os.Exit(2)
		}
		seqs = append(seqs, n)
	}
	milestones := strings.Split(*milestonesFlag, ",")

	fmt.Printf("svmcheck: %s size=%s, %d nodes x %d thread(s); %d milestones x %d victims x %d seqs\n",
		*app, *size, *nodes, *tpn, len(milestones), *nodes, len(seqs))

	ran, unreachable, failed := 0, 0, 0
	for _, kind := range milestones {
		kind = strings.TrimSpace(kind)
		for victim := 0; victim < *nodes; victim++ {
			for _, seq := range seqs {
				name := fmt.Sprintf("%-16s victim=%d seq=%d", kind, victim, seq)
				status, err := runSchedule(*app, harness.Size(*size), *nodes, *tpn, kind, victim, seq)
				switch {
				case err != nil:
					failed++
					fmt.Printf("FAIL %s: %v\n", name, err)
				case !status:
					unreachable++
					if *verbose {
						fmt.Printf("  -- %s: milestone never reached\n", name)
					}
				default:
					ran++
					if *verbose {
						fmt.Printf("  ok %s\n", name)
					}
				}
			}
		}
	}
	fmt.Printf("svmcheck: %d schedules verified, %d unreachable, %d FAILED\n", ran, unreachable, failed)
	if failed > 0 {
		os.Exit(1)
	}
}

// runSchedule executes one failure schedule. The bool reports whether the
// kill point was actually reached; unreached schedules verify nothing.
func runSchedule(app string, size harness.Size, nodes, tpn int, kind string, victim int, seq int64) (bool, error) {
	cfg := model.Default()
	cfg.Nodes = nodes
	cfg.ThreadsPerNode = tpn
	s := apps.Shape{Nodes: nodes, ThreadsPerNode: tpn, PageSize: cfg.PageSize}
	w, err := harness.Build(app, size, s)
	if err != nil {
		return false, err
	}
	k := &killer{kind: kind, node: victim, seq: seq}
	cl, err := svm.New(svm.Options{
		Config: cfg, Mode: svm.ModeFT, Pages: w.Pages, Locks: w.Locks,
		HomeAssign: w.HomeAssign, Body: w.Body, Tracer: k,
	})
	if err != nil {
		return false, err
	}
	k.cl = cl
	if err := cl.Run(); err != nil {
		return k.done, fmt.Errorf("simulation error: %w", err)
	}
	if !k.done {
		return false, nil
	}
	if !cl.Finished() {
		return true, fmt.Errorf("threads did not finish")
	}
	if err := w.Err(); err != nil {
		return true, fmt.Errorf("result verification: %w", err)
	}
	if err := cl.VerifyReplicas(); err != nil {
		return true, fmt.Errorf("replica audit: %w", err)
	}
	return true, nil
}

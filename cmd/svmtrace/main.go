// Command svmtrace runs an application and streams the protocol's
// flight-recorder events (releases, phases, checkpoints, barriers, lock
// traffic, failures, recovery milestones) with virtual timestamps — the
// tool for inspecting protocol behaviour around an injected failure.
//
// The stream is the per-node flight recorder of internal/obs: svmtrace
// attaches a sink to the recorder and filters the live event stream; the
// same ring buffers keep the last -ring events per node, dumped after the
// run with -dump.
//
// Usage:
//
//	svmtrace -app radix -size small -kill 2 -killat 3ms
//	svmtrace -app fft -filter recovery            # only recovery events
//	svmtrace -app lu -filter "release.phase1,kill" -node 1
//	svmtrace -app waternsq -filter lock -limit 50 -dump
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ftsvm/internal/apps"
	"ftsvm/internal/harness"
	"ftsvm/internal/model"
	"ftsvm/internal/obs"
	"ftsvm/internal/svm"
)

type printer struct {
	kinds   map[string]bool
	node    int
	emitted int
	limit   int
}

func (p *printer) event(e obs.Event) {
	if p.limit > 0 && p.emitted >= p.limit {
		return
	}
	kind := e.Kind.String()
	if len(p.kinds) > 0 {
		match := false
		for k := range p.kinds {
			if strings.HasPrefix(kind, k) {
				match = true
				break
			}
		}
		if !match {
			return
		}
	}
	if p.node >= 0 && int(e.Node) != p.node {
		return
	}
	p.emitted++
	fmt.Printf("%12.3fms  %-18s node=%d thread=%d seq=%d\n",
		float64(e.TimeNs)/1e6, kind, e.Node, e.Thread, e.Seq)
}

func main() {
	app := flag.String("app", "radix", "application (fft, lu, waternsq, watersp, radix, volrend, kvstore)")
	size := flag.String("size", "small", "problem size: small, medium, paper")
	mode := flag.String("mode", "extended", "protocol: base, extended")
	nodes := flag.Int("nodes", 4, "cluster nodes")
	threads := flag.Int("threads", 1, "threads per node")
	kill := flag.Int("kill", -1, "node to fail (-1: none)")
	killAt := flag.Duration("killat", 3*time.Millisecond, "virtual failure time")
	filter := flag.String("filter", "", "comma-separated event-kind prefixes (empty: all)")
	node := flag.Int("node", -1, "only events from this node (-1: all)")
	limit := flag.Int("limit", 2000, "maximum events to print (0: unlimited)")
	ring := flag.Int("ring", 64, "flight-recorder ring size per node")
	dump := flag.Bool("dump", false, "dump each node's flight-recorder ring after the run")
	audit := flag.Bool("audit", false, "enable the online invariant auditor (stride 1)")
	flag.Parse()

	cfg := model.Default()
	cfg.Nodes = *nodes
	cfg.ThreadsPerNode = *threads

	m := svm.ModeFT
	if *mode == "base" {
		m = svm.ModeBase
	}
	s := apps.Shape{Nodes: cfg.Nodes, ThreadsPerNode: cfg.ThreadsPerNode, PageSize: cfg.PageSize}
	w, err := harness.Build(*app, harness.Size(*size), s)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	pr := &printer{node: *node, limit: *limit, kinds: map[string]bool{}}
	for _, k := range strings.Split(*filter, ",") {
		if k = strings.TrimSpace(k); k != "" {
			pr.kinds[k] = true
		}
	}

	cl, err := svm.New(svm.Options{
		Config: cfg, Mode: m, Pages: w.Pages, Locks: w.Locks,
		HomeAssign: w.HomeAssign, Body: w.Body,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	rec := cl.EnableFlightRecorder(*ring)
	rec.SetSink(pr.event)
	if *audit {
		cl.EnableAuditor(1)
	}
	if *kill >= 0 {
		cl.Engine().At(killAt.Nanoseconds(), func() { cl.KillNode(*kill) })
	}
	if err := cl.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "simulation error:", err)
		if *dump {
			rec.Dump(os.Stderr, *ring)
		}
		os.Exit(1)
	}
	status := "verified OK"
	if err := w.Err(); err != nil {
		status = "VERIFICATION FAILED: " + err.Error()
	}
	fmt.Printf("--- %s finished in %.2f ms virtual; %s; %d events printed\n",
		w.Name, float64(cl.ExecTime())/1e6, status, pr.emitted)
	if *dump {
		rec.Dump(os.Stdout, *ring)
	}
}

// Command svmtrace runs an application and streams the protocol's trace
// events (releases, phases, checkpoints, barriers, failures, recovery
// milestones) with virtual timestamps — the tool for inspecting protocol
// behaviour around an injected failure.
//
// Usage:
//
//	svmtrace -app radix -size small -kill 2 -killat 3ms
//	svmtrace -app fft -filter recovery            # only recovery events
//	svmtrace -app lu -filter "release.phase1,kill" -node 1
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ftsvm/internal/apps"
	"ftsvm/internal/harness"
	"ftsvm/internal/model"
	"ftsvm/internal/svm"
)

type printer struct {
	cl      *svm.Cluster
	kinds   map[string]bool
	node    int
	emitted int
	limit   int
}

func (p *printer) Event(e svm.TraceEvent) {
	if p.limit > 0 && p.emitted >= p.limit {
		return
	}
	if len(p.kinds) > 0 {
		match := false
		for k := range p.kinds {
			if strings.HasPrefix(e.Kind, k) {
				match = true
				break
			}
		}
		if !match {
			return
		}
	}
	if p.node >= 0 && e.Node != p.node {
		return
	}
	p.emitted++
	fmt.Printf("%12.3fms  %-18s node=%d thread=%d seq=%d\n",
		float64(p.cl.Engine().Now())/1e6, e.Kind, e.Node, e.Thread, e.Seq)
}

func main() {
	app := flag.String("app", "radix", "application (fft, lu, waternsq, watersp, radix, volrend, kvstore)")
	size := flag.String("size", "small", "problem size: small, medium, paper")
	mode := flag.String("mode", "extended", "protocol: base, extended")
	nodes := flag.Int("nodes", 4, "cluster nodes")
	threads := flag.Int("threads", 1, "threads per node")
	kill := flag.Int("kill", -1, "node to fail (-1: none)")
	killAt := flag.Duration("killat", 3*time.Millisecond, "virtual failure time")
	filter := flag.String("filter", "", "comma-separated event-kind prefixes (empty: all)")
	node := flag.Int("node", -1, "only events from this node (-1: all)")
	limit := flag.Int("limit", 2000, "maximum events to print (0: unlimited)")
	flag.Parse()

	cfg := model.Default()
	cfg.Nodes = *nodes
	cfg.ThreadsPerNode = *threads

	m := svm.ModeFT
	if *mode == "base" {
		m = svm.ModeBase
	}
	s := apps.Shape{Nodes: cfg.Nodes, ThreadsPerNode: cfg.ThreadsPerNode, PageSize: cfg.PageSize}
	w, err := harness.Build(*app, harness.Size(*size), s)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	pr := &printer{node: *node, limit: *limit, kinds: map[string]bool{}}
	for _, k := range strings.Split(*filter, ",") {
		if k = strings.TrimSpace(k); k != "" {
			pr.kinds[k] = true
		}
	}

	cl, err := svm.New(svm.Options{
		Config: cfg, Mode: m, Pages: w.Pages, Locks: w.Locks,
		HomeAssign: w.HomeAssign, Body: w.Body, Tracer: pr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pr.cl = cl
	if *kill >= 0 {
		cl.Engine().At(killAt.Nanoseconds(), func() { cl.KillNode(*kill) })
	}
	if err := cl.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "simulation error:", err)
		os.Exit(1)
	}
	status := "verified OK"
	if err := w.Err(); err != nil {
		status = "VERIFICATION FAILED: " + err.Error()
	}
	fmt.Printf("--- %s finished in %.2f ms virtual; %s; %d events printed\n",
		w.Name, float64(cl.ExecTime())/1e6, status, pr.emitted)
}

package oracle

import (
	"strings"
	"testing"

	"ftsvm/internal/mem"
	"ftsvm/internal/proto"
)

// wdiff builds a diff writing val at byte offset off of page p.
func wdiff(p, off int, val byte) *mem.Diff {
	return &mem.Diff{Page: p, Runs: []mem.Run{{Off: off, Data: []byte{val}}}}
}

// rec builds a commit record for node n's interval itv with the given
// foreign vector entries (own entry is forced to itv, as at commit).
func rec(n int, itv int32, vt proto.VectorTime, diffs ...*mem.Diff) Record {
	v := vt.Clone()
	v[n] = itv
	return Record{Node: n, Interval: itv, VT: v, Diffs: diffs}
}

// TestReplayTable exercises the replay edge cases that the protocol's
// failure paths actually produce: empty intervals, duplicated records
// (an interval replayed twice during roll-forward), out-of-order commit
// logs, rolled-back tails, and genuinely broken (gapped) logs.
func TestReplayTable(t *testing.T) {
	const nodes, pages, psz = 3, 2, 16
	cases := []struct {
		name    string
		recs    []Record
		upTo    proto.VectorTime
		wantErr string           // substring of the Replay error, "" for success
		want    map[int][]int    // page -> offsets expected non-zero
		wantVal map[[2]int]byte  // {page,off} -> expected byte
		applied proto.VectorTime // expected frontier after replay
	}{
		{
			name: "empty interval advances the frontier",
			recs: []Record{
				rec(0, 1, proto.VectorTime{0, 0, 0}), // no diffs at all
				rec(0, 2, proto.VectorTime{0, 0, 0}, wdiff(0, 0, 7)),
			},
			wantVal: map[[2]int]byte{{0, 0}: 7},
			applied: proto.VectorTime{2, 0, 0},
		},
		{
			name: "interval replayed twice is applied once",
			recs: []Record{
				rec(1, 1, proto.VectorTime{0, 0, 0}, wdiff(0, 4, 9)),
				rec(1, 1, proto.VectorTime{0, 0, 0}, wdiff(0, 4, 9)), // roll-forward duplicate
				rec(1, 2, proto.VectorTime{0, 0, 0}, wdiff(0, 5, 3)),
			},
			wantVal: map[[2]int]byte{{0, 4}: 9, {0, 5}: 3},
			applied: proto.VectorTime{0, 2, 0},
		},
		{
			name: "out-of-order commit records sort causally",
			recs: []Record{
				// Node 1's interval 1 observed node 0's intervals 1..2, yet
				// arrives first in the slice; replay must defer it.
				rec(1, 1, proto.VectorTime{2, 0, 0}, wdiff(1, 0, 5)),
				rec(0, 2, proto.VectorTime{0, 0, 0}, wdiff(0, 8, 2)),
				rec(0, 1, proto.VectorTime{0, 0, 0}, wdiff(0, 8, 1)),
			},
			// Causal order forces n0#1 then n0#2 onto page 0 byte 8.
			wantVal: map[[2]int]byte{{0, 8}: 2, {1, 0}: 5},
			applied: proto.VectorTime{2, 1, 0},
		},
		{
			name: "rolled-back tail beyond upTo is skipped",
			recs: []Record{
				rec(2, 1, proto.VectorTime{0, 0, 0}, wdiff(1, 2, 4)),
				rec(2, 2, proto.VectorTime{0, 0, 0}, wdiff(1, 2, 8)), // rolled back
			},
			upTo:    proto.VectorTime{0, 0, 1},
			wantVal: map[[2]int]byte{{1, 2}: 4},
			applied: proto.VectorTime{0, 0, 1},
		},
		{
			name: "causal gap is an error",
			recs: []Record{
				rec(0, 2, proto.VectorTime{0, 0, 0}, wdiff(0, 0, 1)), // interval 1 missing
			},
			wantErr: "stuck",
		},
		{
			name: "foreign dependency never satisfied is an error",
			recs: []Record{
				rec(0, 1, proto.VectorTime{0, 5, 0}, wdiff(0, 0, 1)),
			},
			wantErr: "stuck",
		},
		{
			name:    "record naming an unknown node is an error",
			recs:    []Record{{Node: 7, Interval: 1, VT: proto.VectorTime{0, 0, 0}}},
			wantErr: "outside",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewStore(pages, psz, nodes)
			err := s.Replay(tc.recs, tc.upTo)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("Replay error = %v, want containing %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("Replay: %v", err)
			}
			if tc.applied != nil && !s.Applied().Equal(tc.applied) {
				t.Fatalf("applied frontier = %v, want %v", s.Applied(), tc.applied)
			}
			for k, v := range tc.wantVal {
				if got := s.Page(k[0])[k[1]]; got != v {
					t.Fatalf("page %d byte %d = %#02x, want %#02x", k[0], k[1], got, v)
				}
			}
		})
	}
}

// TestReplayIdempotentAcrossCalls replays the same log twice into one
// store — the whole log is a duplicate the second time — and checks the
// store is unchanged: the oracle's own roll-forward idempotence.
func TestReplayIdempotentAcrossCalls(t *testing.T) {
	s := NewStore(1, 8, 2)
	recs := []Record{
		rec(0, 1, proto.VectorTime{0, 0}, wdiff(0, 0, 11)),
		rec(1, 1, proto.VectorTime{1, 0}, wdiff(0, 1, 22)),
	}
	for pass := 0; pass < 2; pass++ {
		if err := s.Replay(recs, nil); err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
	}
	if got := s.Page(0)[0]; got != 11 {
		t.Fatalf("byte 0 = %d, want 11", got)
	}
	if got := s.Page(0)[1]; got != 22 {
		t.Fatalf("byte 1 = %d, want 22", got)
	}
	if !s.Applied().Equal(proto.VectorTime{1, 1}) {
		t.Fatalf("applied = %v, want [1 1]", s.Applied())
	}
}

// TestCheckReportsDivergence covers the final comparison: matching
// frames pass, short/nil frames compare as zeros, and a flipped byte is
// reported with its page.
func TestCheckReportsDivergence(t *testing.T) {
	s := NewStore(2, 8, 1)
	if err := s.Replay([]Record{rec(0, 1, proto.VectorTime{0}, wdiff(1, 3, 5))}, nil); err != nil {
		t.Fatal(err)
	}
	good := func(p int) []byte {
		if p == 1 {
			return []byte{0, 0, 0, 5, 0, 0, 0, 0}
		}
		return nil // never-touched page: nil frame reads as zeros
	}
	if err := s.Check(good); err != nil {
		t.Fatalf("Check(good): %v", err)
	}
	bad := func(p int) []byte { return make([]byte, 8) }
	err := s.Check(bad)
	if err == nil || !strings.Contains(err.Error(), "page 1") {
		t.Fatalf("Check(bad) = %v, want page 1 divergence", err)
	}
}

// TestLogCommitClones verifies the sink snapshot semantics: mutating
// the caller's vector time and diff after Commit must not alter the
// recorded log.
func TestLogCommitClones(t *testing.T) {
	var l Log
	vt := proto.VectorTime{1, 0}
	d := wdiff(0, 0, 9)
	l.Commit(0, 1, vt, []*mem.Diff{d})
	vt[1] = 99
	d.Runs[0].Data[0] = 99
	r := l.Records[0]
	if r.VT[1] != 0 {
		t.Fatalf("logged VT mutated: %v", r.VT)
	}
	if r.Diffs[0].Runs[0].Data[0] != 9 {
		t.Fatalf("logged diff mutated: %v", r.Diffs[0].Runs[0].Data)
	}
}

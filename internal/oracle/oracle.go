// Package oracle is a memory-consistency oracle for the SVM protocols:
// it replays the committed interval log against a reference sequential
// store and checks that the cluster's final page frames equal the
// reference.
//
// The soundness argument mirrors the paper's §4.5 arbitration. Every
// interval that ever becomes visible to another node is committed first
// (the commit advances the owner's vector entry before phase 1 ships a
// byte), so the log is a superset of the visible history. After a
// failure, recovery clamps the dead node's entry in every survivor's
// vector time to the saved timestamp — intervals beyond it were rolled
// back and provably never observed (a lock grant or barrier release
// carrying them would require the timestamp save to have completed).
// Replaying the log in causal (vector-timestamp) order up to the final
// frontier therefore reconstructs exactly the state a correct
// roll-forward/roll-back must land on: a prefix-consistent image of the
// committed history. Any divergence between the replayed store and the
// cluster's authoritative committed copies — a lost update, a
// half-applied diff, a resurrected rolled-back interval — is a protocol
// bug, whether or not it tripped an invariant or a panic.
//
// Concurrent intervals (neither vector time covers the other) may touch
// the same page only at disjoint words (data-race-free applications
// under lock/barrier synchronization), so their application order does
// not affect the result; the replay still fixes a deterministic order
// (lowest node first) so the oracle itself is reproducible.
package oracle

import (
	"bytes"
	"fmt"
	"sort"

	"ftsvm/internal/mem"
	"ftsvm/internal/proto"
)

// Record is one committed interval: the committing node, the 1-based
// interval index, the node's vector time at commit (VT[Node] ==
// Interval), and the interval's page diffs.
type Record struct {
	Node     int
	Interval int32
	VT       proto.VectorTime
	Diffs    []*mem.Diff
}

// Log accumulates commit records. Its Commit method matches
// svm.CommitSink, so a cluster streams records with
// cl.SetCommitSink(log.Commit).
type Log struct {
	Records []Record
}

// Commit appends one interval. The diffs and vector time are cloned:
// the sink contract says the arguments are live protocol objects.
func (l *Log) Commit(node int, interval int32, vt proto.VectorTime, diffs []*mem.Diff) {
	ds := make([]*mem.Diff, len(diffs))
	for i, d := range diffs {
		ds[i] = d.Clone()
	}
	l.Records = append(l.Records, Record{Node: node, Interval: interval, VT: vt.Clone(), Diffs: ds})
}

// Store is the reference sequential memory: one flat buffer per page,
// plus the frontier of intervals already applied.
type Store struct {
	pageSize int
	pages    [][]byte
	applied  proto.VectorTime
}

// NewStore builds a zeroed reference store for pages pages of pageSize
// bytes across nodes nodes — shared memory starts zero-filled, exactly
// like the cluster's never-touched committed copies read back as zeros.
func NewStore(pages, pageSize, nodes int) *Store {
	s := &Store{pageSize: pageSize, pages: make([][]byte, pages), applied: proto.NewVector(nodes)}
	for i := range s.pages {
		s.pages[i] = make([]byte, pageSize)
	}
	return s
}

// Page returns page p's reference contents.
func (s *Store) Page(p int) []byte { return s.pages[p] }

// Applied returns the frontier of intervals replayed so far.
func (s *Store) Applied() proto.VectorTime { return s.applied }

// Replay applies recs onto the store in causal order, up to the upTo
// frontier (nil: no bound). The input order carries no meaning: records
// may arrive out of order, duplicated (an interval replayed twice — the
// roll-forward case — is applied once; diffs carry absolute words, so
// this also matches the protocol's idempotent re-propagation), or
// beyond upTo (rolled-back tails of a failed node — skipped). A record
// is ready once it is the node's next interval and every foreign entry
// of its commit-time vector is already applied; ties break lowest node
// first, so the replay is deterministic. An exhausted pass with records
// still pending means the log itself is causally inconsistent (a gap or
// a cycle) and is reported as an error.
func (s *Store) Replay(recs []Record, upTo proto.VectorTime) error {
	rem := make([]Record, 0, len(recs))
	for _, r := range recs {
		if r.Node < 0 || r.Node >= len(s.applied) {
			return fmt.Errorf("oracle: record names node %d outside the %d-node cluster", r.Node, len(s.applied))
		}
		if upTo != nil && r.Interval > upTo[r.Node] {
			continue // beyond the final frontier: rolled back, never visible
		}
		rem = append(rem, r)
	}
	for len(rem) > 0 {
		best := -1
		dropped := false
		for i := 0; i < len(rem); i++ {
			r := &rem[i]
			if r.Interval <= s.applied[r.Node] {
				// Duplicate of an applied interval: idempotent, drop it.
				rem[i] = rem[len(rem)-1]
				rem = rem[:len(rem)-1]
				i--
				dropped = true
				continue
			}
			if !s.ready(r) {
				continue
			}
			if best < 0 || r.Node < rem[best].Node ||
				(r.Node == rem[best].Node && r.Interval < rem[best].Interval) {
				best = i
			}
		}
		if best < 0 {
			if dropped {
				continue
			}
			return fmt.Errorf("oracle: replay stuck at %v with %d records pending (first: %s) — causal gap in the commit log",
				s.applied, len(rem), describe(rem))
		}
		r := rem[best]
		for _, d := range r.Diffs {
			if d.Page < 0 || d.Page >= len(s.pages) {
				return fmt.Errorf("oracle: node %d interval %d diffs page %d outside the %d-page space",
					r.Node, r.Interval, d.Page, len(s.pages))
			}
			d.Apply(s.pages[d.Page])
		}
		s.applied[r.Node] = r.Interval
		rem[best] = rem[len(rem)-1]
		rem = rem[:len(rem)-1]
	}
	return nil
}

// ready reports whether r's causal dependencies are satisfied: it is the
// node's next interval and every interval of another node that r's
// committer had observed is already in the store.
func (s *Store) ready(r *Record) bool {
	if r.Interval != s.applied[r.Node]+1 {
		return false
	}
	for m, v := range r.VT {
		if m != r.Node && v > s.applied[m] {
			return false
		}
	}
	return true
}

// describe summarizes pending records for the stuck-replay error,
// sorted for a stable message.
func describe(rem []Record) string {
	keys := make([]string, len(rem))
	for i, r := range rem {
		keys[i] = fmt.Sprintf("n%d#%d", r.Node, r.Interval)
	}
	sort.Strings(keys)
	if len(keys) > 6 {
		keys = keys[:6]
	}
	return fmt.Sprintf("%v", keys)
}

// Check compares every reference page against the actual frame returned
// by actual(page) — for an SVM cluster, the primary home's committed
// copy (svm.Cluster.PeekBytes). A nil or short actual frame is compared
// as zero-filled, matching never-allocated committed copies. Returns an
// error naming the first diverging page and byte.
func (s *Store) Check(actual func(page int) []byte) error {
	for p, ref := range s.pages {
		got := actual(p)
		if len(got) < len(ref) {
			g := make([]byte, len(ref))
			copy(g, got)
			got = g
		}
		if !bytes.Equal(ref, got[:len(ref)]) {
			off := 0
			for ; off < len(ref) && ref[off] == got[off]; off++ {
			}
			return fmt.Errorf("oracle: page %d diverges from the reference at byte %d: committed %#02x, reference %#02x (applied frontier %v)",
				p, off, got[off], ref[off], s.applied)
		}
	}
	return nil
}

// Package checkpoint implements thread-state checkpointing for the
// extended SVM protocol: serialization of a thread's resumable state and
// the double-buffered remote store that holds it on a backup node.
//
// The paper checkpoints a thread's context and stack. Go cannot copy
// goroutine stacks, so a thread's resumable state is a gob-serializable
// struct the application registers (see DESIGN.md, substitutions). Two
// copies per thread are kept on the backup node and updated alternately,
// so a failure *during* checkpointing always leaves the previous complete
// checkpoint intact — exactly the paper's scheme.
package checkpoint

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"sync"

	"ftsvm/internal/proto"
)

// Snapshot is one saved thread state.
type Snapshot struct {
	// Seq is the release sequence number at which the snapshot was taken;
	// higher is newer.
	Seq int64
	// VT is the node's vector time at the snapshot, used during recovery
	// to position the restored thread in the partial order.
	VT proto.VectorTime
	// BarSeq is the number of global barriers the thread had completed at
	// the snapshot, so a restored thread re-joins the correct barrier
	// episode.
	BarSeq int64
	// Blob is the gob-encoded application state.
	Blob []byte
}

// encBufs recycles encode scratch buffers. The encoder itself is NOT
// reused: a fresh encoder re-sends type descriptors, and the blob must be
// byte-for-byte what a standalone encode would produce (its length is a
// modeled checkpoint cost). Only the scratch allocation is amortized.
var encBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// Encode serializes an application state value (typically a pointer to a
// struct) for checkpointing.
func Encode(state any) ([]byte, error) {
	buf := encBufs.Get().(*bytes.Buffer)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(state); err != nil {
		encBufs.Put(buf)
		return nil, fmt.Errorf("checkpoint: encode: %w", err)
	}
	blob := make([]byte, buf.Len())
	copy(blob, buf.Bytes())
	encBufs.Put(buf)
	return blob, nil
}

// Decode restores an application state value encoded by Encode. The
// destination is zeroed first: gob omits zero-valued fields at encode and
// leaves them untouched at decode, so decoding into a struct that was
// pre-initialized with sentinels would silently resurrect the sentinels
// for every field that happened to be zero when the checkpoint was taken.
func Decode(blob []byte, into any) error {
	if v := reflect.ValueOf(into); v.Kind() == reflect.Pointer && !v.IsNil() {
		v.Elem().SetZero()
	}
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(into); err != nil {
		return fmt.Errorf("checkpoint: decode: %w", err)
	}
	return nil
}

// Store holds checkpoints for threads backed up on this node. Each thread
// has two alternating slots; Latest always returns the newest complete one.
type Store struct {
	slots map[int]*threadSlots
}

type threadSlots struct {
	snaps [2]Snapshot
	valid [2]bool
	next  int // slot the next Put writes
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{slots: make(map[int]*threadSlots)} }

// Put saves a snapshot for thread tid into the alternate slot. Writes with
// a Seq not newer than the newest stored snapshot are ignored (a stale
// checkpoint arriving late must never regress the store).
func (s *Store) Put(tid int, snap Snapshot) {
	ts := s.slots[tid]
	if ts == nil {
		ts = &threadSlots{}
		s.slots[tid] = ts
	}
	if cur, ok := s.latest(ts); ok && snap.Seq <= cur.Seq {
		return
	}
	ts.snaps[ts.next] = snap
	ts.valid[ts.next] = true
	ts.next = 1 - ts.next
}

// Latest returns the newest complete snapshot for thread tid.
func (s *Store) Latest(tid int) (Snapshot, bool) {
	ts := s.slots[tid]
	if ts == nil {
		return Snapshot{}, false
	}
	return s.latest(ts)
}

func (s *Store) latest(ts *threadSlots) (Snapshot, bool) {
	best := -1
	for i := 0; i < 2; i++ {
		if ts.valid[i] && (best < 0 || ts.snaps[i].Seq > ts.snaps[best].Seq) {
			best = i
		}
	}
	if best < 0 {
		return Snapshot{}, false
	}
	return ts.snaps[best], true
}

// LatestValid returns the newest stored snapshot satisfying ok. Recovery
// uses it to skip a snapshot tied to an interval that rolled back: a
// point-A sibling snapshot taken at a release whose timestamp was never
// saved pairs with state the roll-back erased, so the previous buffered
// snapshot (or none) is the consistent one.
func (s *Store) LatestValid(tid int, ok func(Snapshot) bool) (Snapshot, bool) {
	ts := s.slots[tid]
	if ts == nil {
		return Snapshot{}, false
	}
	best := -1
	for i := 0; i < 2; i++ {
		if ts.valid[i] && ok(ts.snaps[i]) && (best < 0 || ts.snaps[i].Seq > ts.snaps[best].Seq) {
			best = i
		}
	}
	if best < 0 {
		return Snapshot{}, false
	}
	return ts.snaps[best], true
}

// Threads returns the ids of all threads with at least one snapshot.
func (s *Store) Threads() []int {
	var out []int
	for tid := range s.slots {
		out = append(out, tid)
	}
	return out
}

// Drop removes all snapshots for thread tid (after a successful migration).
func (s *Store) Drop(tid int) { delete(s.slots, tid) }

package checkpoint

import (
	"testing"
	"testing/quick"

	"ftsvm/internal/proto"
)

type demoState struct {
	Phase   int
	I, J    int
	Partial []float64
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := &demoState{Phase: 2, I: 17, J: 4, Partial: []float64{1.5, 2.5}}
	blob, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	var out demoState
	if err := Decode(blob, &out); err != nil {
		t.Fatal(err)
	}
	if out.Phase != 2 || out.I != 17 || out.J != 4 || len(out.Partial) != 2 || out.Partial[1] != 2.5 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestStoreLatest(t *testing.T) {
	s := NewStore()
	if _, ok := s.Latest(5); ok {
		t.Fatal("empty store returned a snapshot")
	}
	s.Put(5, Snapshot{Seq: 1, Blob: []byte("a")})
	s.Put(5, Snapshot{Seq: 2, Blob: []byte("b")})
	snap, ok := s.Latest(5)
	if !ok || snap.Seq != 2 || string(snap.Blob) != "b" {
		t.Fatalf("Latest = %+v, %v", snap, ok)
	}
}

func TestStoreDoubleBufferKeepsPrevious(t *testing.T) {
	// The slot being overwritten is always the *older* one: if a failure
	// interrupts the k-th checkpoint, checkpoint k-1 must still be intact.
	s := NewStore()
	s.Put(1, Snapshot{Seq: 1, Blob: []byte("one")})
	s.Put(1, Snapshot{Seq: 2, Blob: []byte("two")})
	// Simulate a torn third checkpoint: it would target the slot holding
	// seq 1, never the slot holding seq 2. Verify seq 2 survives a Put.
	s.Put(1, Snapshot{Seq: 3, Blob: []byte("three")})
	ts := s.slots[1]
	seqs := map[int64]bool{}
	for i := 0; i < 2; i++ {
		if ts.valid[i] {
			seqs[ts.snaps[i].Seq] = true
		}
	}
	if !seqs[3] || !seqs[2] {
		t.Fatalf("slots hold %v, want {2,3}", seqs)
	}
}

func TestStoreIgnoresStale(t *testing.T) {
	s := NewStore()
	s.Put(1, Snapshot{Seq: 5, Blob: []byte("new")})
	s.Put(1, Snapshot{Seq: 3, Blob: []byte("old")})
	snap, _ := s.Latest(1)
	if snap.Seq != 5 {
		t.Fatalf("stale Put regressed store to seq %d", snap.Seq)
	}
}

func TestStoreDropAndThreads(t *testing.T) {
	s := NewStore()
	s.Put(1, Snapshot{Seq: 1})
	s.Put(2, Snapshot{Seq: 1})
	if got := len(s.Threads()); got != 2 {
		t.Fatalf("Threads = %d", got)
	}
	s.Drop(1)
	if _, ok := s.Latest(1); ok {
		t.Fatal("dropped thread still has snapshot")
	}
	if got := len(s.Threads()); got != 1 {
		t.Fatalf("Threads after drop = %d", got)
	}
}

// Property: after any sequence of monotonically-sequenced Puts, Latest
// returns the highest Seq, and both slots hold the two highest distinct
// checkpoints once at least two were written.
func TestStoreProperty(t *testing.T) {
	f := func(n uint8) bool {
		s := NewStore()
		count := int(n%20) + 2
		for i := 1; i <= count; i++ {
			s.Put(9, Snapshot{Seq: int64(i), VT: proto.VectorTime{int32(i)}})
		}
		snap, ok := s.Latest(9)
		if !ok || snap.Seq != int64(count) {
			return false
		}
		ts := s.slots[9]
		have := map[int64]bool{}
		for i := 0; i < 2; i++ {
			if ts.valid[i] {
				have[ts.snaps[i].Seq] = true
			}
		}
		return have[int64(count)] && have[int64(count-1)]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeZeroesSentinels is the regression for the gob zero-field
// pitfall: a field that was zero at encode time must decode as zero even
// when the destination struct was pre-initialized with a sentinel.
func TestDecodeZeroesSentinels(t *testing.T) {
	type st struct {
		A int
		B int
	}
	blob, err := Encode(&st{A: 7, B: 0})
	if err != nil {
		t.Fatal(err)
	}
	dst := &st{A: -1, B: -1}
	if err := Decode(blob, dst); err != nil {
		t.Fatal(err)
	}
	if dst.A != 7 || dst.B != 0 {
		t.Fatalf("decoded %+v, want {7 0}", dst)
	}
}

// TestLatestValid exercises roll-decision-aware snapshot selection: the
// newest snapshot is skipped when the predicate rejects it, falling back
// to the older buffered one, and reports absence when both fail.
func TestLatestValid(t *testing.T) {
	st := NewStore()
	st.Put(7, Snapshot{Seq: 1, VT: []int32{0, 3}, Blob: []byte("a")})
	st.Put(7, Snapshot{Seq: 2, VT: []int32{0, 5}, Blob: []byte("b")})

	atMost := func(ts int32) func(Snapshot) bool {
		return func(s Snapshot) bool { return s.VT[1] <= ts }
	}
	if snap, ok := st.LatestValid(7, atMost(5)); !ok || snap.Seq != 2 {
		t.Fatalf("want newest snapshot, got %+v ok=%v", snap, ok)
	}
	if snap, ok := st.LatestValid(7, atMost(4)); !ok || snap.Seq != 1 {
		t.Fatalf("want fallback to older snapshot, got %+v ok=%v", snap, ok)
	}
	if _, ok := st.LatestValid(7, atMost(2)); ok {
		t.Fatal("want no valid snapshot")
	}
	if _, ok := st.LatestValid(8, atMost(99)); ok {
		t.Fatal("want no snapshot for unknown thread")
	}
}

type benchState struct {
	Phase   int
	Arrived bool
	Flush   int
	Scratch [32]float64
}

// BenchmarkEncodeDecode measures the per-checkpoint serialization cost —
// paid at every point-A/point-B checkpoint, thousands of times per run.
func BenchmarkEncodeDecode(b *testing.B) {
	src := &benchState{Phase: 7, Arrived: true, Flush: 1234}
	for i := range src.Scratch {
		src.Scratch[i] = float64(i) * 1.5
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		blob, err := Encode(src)
		if err != nil {
			b.Fatal(err)
		}
		var dst benchState
		if err := Decode(blob, &dst); err != nil {
			b.Fatal(err)
		}
		if dst.Flush != src.Flush {
			b.Fatal("round-trip mismatch")
		}
	}
}

// BenchmarkStorePut measures the double-buffered deposit path.
func BenchmarkStorePut(b *testing.B) {
	st := NewStore()
	blob := make([]byte, 2048)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st.Put(3, Snapshot{Seq: int64(i + 1), VT: []int32{1, 2, 3}, Blob: blob})
	}
	if _, ok := st.Latest(3); !ok {
		b.Fatal("no snapshot stored")
	}
}

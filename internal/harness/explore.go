package harness

import (
	"fmt"

	"ftsvm/internal/apps"
	"ftsvm/internal/explore"
	"ftsvm/internal/svm"
)

// ExploreSpec adapts one experiment cell to the failure-point explorer:
// a Spec whose New builds a fresh, deterministic instance of the cell's
// workload and cluster. The cell's mode is forced to the extended
// protocol — injecting fail-stops into the base protocol is asking a
// non-fault-tolerant system to tolerate faults.
func ExploreSpec(c Config) explore.Spec {
	if c.Mode != svm.ModeFT {
		c.Mode = svm.ModeFT
	}
	name := fmt.Sprintf("%s/%s/n%d/t%d", c.App, c.Size, c.Nodes, c.ThreadsPerNode)
	if c.Tier != TierPaper {
		name = fmt.Sprintf("%s/%s/%s/t%d", c.App, c.Size, c.Tier, c.ThreadsPerNode)
	}
	return explore.Spec{
		Name:        name,
		AuditStride: c.AuditStride,
		New: func() (explore.Instance, error) {
			cfg, err := c.ModelConfig()
			if err != nil {
				return explore.Instance{}, err
			}
			s := apps.Shape{Nodes: cfg.Nodes, ThreadsPerNode: cfg.ThreadsPerNode, PageSize: cfg.PageSize}
			w, err := Build(c.App, c.Size, s)
			if err != nil {
				return explore.Instance{}, err
			}
			cl, err := svm.New(svm.Options{
				Config:            cfg,
				Mode:              c.Mode,
				LockAlgo:          c.LockAlgo,
				Pages:             w.Pages,
				Locks:             w.Locks,
				HomeAssign:        w.HomeAssign,
				Body:              w.Body,
				AggregateDiffs:    c.AggregateDiffs,
				UnsafeSinglePhase: c.UnsafeSinglePhase,
				FullTwins:         c.FullTwins,
			})
			if err != nil {
				return explore.Instance{}, err
			}
			return explore.Instance{Cluster: cl, Check: w.Err}, nil
		},
	}
}

package harness

import (
	"fmt"

	"ftsvm/internal/model"
)

// ChaosScenario is one named, deterministic fault profile of the simulated
// network. Scenarios are self-contained model.Chaos blocks: plug one into
// Config.Chaos (or model.Config.Chaos directly) and the same seed replays
// the same jitter, degradation windows, bursts, and gray nodes every run.
type ChaosScenario struct {
	Name  string
	Desc  string
	Chaos model.Chaos
}

// ChaosScenarios returns the standard sweep the chaos harness runs. The
// time constants are sized against the default cost model (8 µs link
// latency, 2 ms heartbeat period, 200 µs probe timeout): severe enough to
// stress retransmission, FIFO recovery, and the probe detector's
// false-suspicion margin, but bounded so every window heals and the run
// terminates.
func ChaosScenarios() []ChaosScenario {
	return []ChaosScenario{
		{
			Name: "none", Desc: "fault-free network (control)",
			Chaos: model.Chaos{BurstSrc: -1, BurstDst: -1},
		},
		{
			Name: "jitter", Desc: "uniform 0-20us latency jitter on every link",
			Chaos: model.Chaos{Enabled: true, Seed: 11, JitterNs: 20_000,
				BurstSrc: -1, BurstDst: -1},
		},
		{
			Name: "degrade", Desc: "4x bandwidth degradation 0.5ms out of every 2ms",
			Chaos: model.Chaos{Enabled: true, Seed: 12,
				DegradePeriodNs: 2_000_000, DegradeLenNs: 500_000, DegradeFactor: 4,
				BurstSrc: -1, BurstDst: -1},
		},
		{
			Name: "burst", Desc: "150us full-loss burst every 5ms on every link",
			Chaos: model.Chaos{Enabled: true, Seed: 13,
				BurstStartNs: 1_000_000, BurstLenNs: 150_000, BurstPeriodNs: 5_000_000,
				BurstSrc: -1, BurstDst: -1},
		},
		{
			Name: "gray", Desc: "node 1 has a 6x slower NIC (gray node)",
			Chaos: model.Chaos{Enabled: true, Seed: 14,
				GrayNodes: []int{1}, GrayFactor: 6,
				BurstSrc: -1, BurstDst: -1},
		},
		{
			Name: "storm", Desc: "jitter + degradation + bursts + a gray node at once",
			Chaos: model.Chaos{Enabled: true, Seed: 15, JitterNs: 20_000,
				DegradePeriodNs: 2_000_000, DegradeLenNs: 500_000, DegradeFactor: 4,
				BurstStartNs: 1_000_000, BurstLenNs: 150_000, BurstPeriodNs: 5_000_000,
				BurstSrc: -1, BurstDst: -1,
				GrayNodes: []int{1}, GrayFactor: 6},
		},
	}
}

// ChaosByName returns the named scenario.
func ChaosByName(name string) (ChaosScenario, error) {
	for _, sc := range ChaosScenarios() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return ChaosScenario{}, fmt.Errorf("harness: unknown chaos scenario %q", name)
}

// Package harness runs the paper's experiments: each SPLASH-2 workload
// under the base and extended protocols, on the paper's configurations
// (8 nodes with 1 or 2 compute threads per node), collecting the
// execution-time breakdowns of Figures 7-10 plus ablation sweeps.
package harness

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ftsvm/internal/apps"
	"ftsvm/internal/model"
	"ftsvm/internal/obs"
	"ftsvm/internal/serve"
	"ftsvm/internal/svm"
)

// AppNames lists the application suite in the paper's order.
var AppNames = []string{"fft", "lu", "waternsq", "watersp", "radix", "volrend"}

// Size selects problem scale.
type Size string

const (
	// SizeSmall is for tests: seconds of virtual time, milliseconds of
	// wall time.
	SizeSmall Size = "small"
	// SizeMedium is a quarter-scale run for quick experiments.
	SizeMedium Size = "medium"
	// SizePaper matches the paper's §5.1 problem sizes (FFT 1M points,
	// LU 1024x1024, Water 4096 molecules, Radix 4M keys, Volrend head-
	// scale).
	SizePaper Size = "paper"
)

// Build constructs the named workload at the given size for a cluster
// shape.
func Build(app string, size Size, s apps.Shape) (*apps.Workload, error) {
	switch app {
	case "fft":
		n := map[Size]int{SizeSmall: 4096, SizeMedium: 65536, SizePaper: 1 << 20}[size]
		return apps.FFT(s, n), nil
	case "lu":
		n := map[Size]int{SizeSmall: 128, SizeMedium: 512, SizePaper: 1024}[size]
		return apps.LU(s, n, 16), nil
	case "waternsq":
		n := map[Size]int{SizeSmall: 256, SizeMedium: 1024, SizePaper: 4096}[size]
		return apps.WaterNsq(s, n, 2), nil
	case "watersp":
		n := map[Size]int{SizeSmall: 256, SizeMedium: 1024, SizePaper: 4096}[size]
		return apps.WaterSp(s, n, 2), nil
	case "radix":
		n := map[Size]int{SizeSmall: 1 << 16, SizeMedium: 1 << 20, SizePaper: 4 << 20}[size]
		return apps.Radix(s, n), nil
	case "volrend":
		v := map[Size]int{SizeSmall: 32, SizeMedium: 64, SizePaper: 128}[size]
		i := map[Size]int{SizeSmall: 64, SizeMedium: 128, SizePaper: 256}[size]
		return apps.Volrend(s, v, i), nil
	case "ocean":
		// Nearest-neighbour stencil extension (not in the paper's
		// figures).
		n := map[Size]int{SizeSmall: 64, SizeMedium: 258, SizePaper: 514}[size]
		return apps.Ocean(s, n, 6), nil
	case "counter":
		// Micro workload for exhaustive failure-point sweeps (svmfi): a
		// lock-protected shared counter.
		n := map[Size]int{SizeSmall: 6, SizeMedium: 24, SizePaper: 96}[size]
		return apps.Counter(s, n), nil
	case "falseshare":
		// Micro workload for sweeps: barrier-phased multi-writer page.
		n := map[Size]int{SizeSmall: 8, SizeMedium: 32, SizePaper: 128}[size]
		return apps.FalseShare(s, n), nil
	case "kvstore":
		// The §6 "broader application domain" extension: a transactional
		// key-value server (not part of the paper's figures).
		b := map[Size]int{SizeSmall: 32, SizeMedium: 128, SizePaper: 512}[size]
		ops := map[Size]int{SizeSmall: 100, SizeMedium: 1000, SizePaper: 5000}[size]
		return apps.KVStore(s, b, 32, ops), nil
	case "kvmicro":
		// Micro-scale KV store for exhaustive failure-point sweeps
		// (svmfi/explore): few buckets, few ops, every interleaving cheap.
		ops := map[Size]int{SizeSmall: 4, SizeMedium: 8, SizePaper: 16}[size]
		return apps.KVStore(s, 4, 8, ops), nil
	case "kvserve":
		// Open-loop serving workload (internal/serve): Zipfian GET/PUT
		// requests on a fixed arrival schedule, latency recorded per
		// request. Here it rides the generic harness for chaos/ablation
		// sweeps; cmd/svmserve owns the latency/timeline reporting.
		sp := serve.DefaultSpec()
		sp.Nodes = s.Nodes
		sp.ThreadsPerNode = s.ThreadsPerNode
		sp.Requests = map[Size]int{SizeSmall: 100, SizeMedium: 400, SizePaper: 2000}[size]
		d, err := serve.NewDriver(sp, s.PageSize)
		if err != nil {
			return nil, err
		}
		return d.Workload(), nil
	}
	return nil, fmt.Errorf("harness: unknown app %q", app)
}

// Tier names a cluster-scale preset. The paper's grid stops at 8 nodes;
// the larger tiers turn on the scale-out machinery (spanning-tree release
// broadcast, delta-encoded vector times, bounded rotating probe windows)
// that keeps per-node protocol cost sub-linear past it.
type Tier string

const (
	// TierPaper is the zero value: whatever the cell's Nodes field says,
	// with every scale-out knob off — the paper's behavior, bit-identical
	// to the seed.
	TierPaper Tier = ""
	// TierLarge is a 64-node cluster: arity-4 release tree (depth 3),
	// delta vector times, 3-neighbor rotating probes, and a lock backoff
	// window widened for 64-way contention.
	TierLarge Tier = "large"
	// TierHuge is a 256-node cluster: arity-8 release tree (depth 3),
	// delta vector times, 3-neighbor rotating probes, and a lock backoff
	// window widened for 256-way contention.
	TierHuge Tier = "huge"
	// TierXLarge is a 512-node cluster: the huge tier's knobs (arity-8
	// tree, now depth 4; delta vector times; rotating probes; scaled
	// backoff) plus the consistent-hashed home directory — at this size
	// the flat directory's full-scan rehoming and fully materialized
	// home arrays are the dominant recovery-path cost.
	TierXLarge Tier = "xlarge"
)

// ParseTier maps a flag string to a Tier.
func ParseTier(s string) (Tier, error) {
	switch s {
	case "", "paper":
		return TierPaper, nil
	case "large":
		return TierLarge, nil
	case "huge":
		return TierHuge, nil
	case "xlarge":
		return TierXLarge, nil
	}
	return TierPaper, fmt.Errorf("harness: unknown tier %q (want paper, large, huge, or xlarge)", s)
}

// Apply sets the tier's cluster shape and scale-out knobs on cfg. A cell
// that also sets Nodes explicitly overrides the tier's node count (e.g. a
// 64-node run with the huge tier's knobs).
func (t Tier) Apply(cfg *model.Config) error {
	switch t {
	case TierPaper:
	case TierLarge:
		cfg.Nodes = 64
		cfg.FanoutArity = 4
		cfg.VTCodec = model.VTDelta
		cfg.ProbeNeighbors = 3
		cfg.LockBackoffMaxNs = ScaledLockBackoffMaxNs(64)
	case TierHuge:
		cfg.Nodes = 256
		cfg.FanoutArity = 8
		cfg.VTCodec = model.VTDelta
		cfg.ProbeNeighbors = 3
		cfg.LockBackoffMaxNs = ScaledLockBackoffMaxNs(256)
	case TierXLarge:
		cfg.Nodes = 512
		cfg.FanoutArity = 8
		cfg.VTCodec = model.VTDelta
		cfg.ProbeNeighbors = 3
		cfg.LockBackoffMaxNs = ScaledLockBackoffMaxNs(512)
		cfg.Directory = model.DirHashed
	default:
		return fmt.Errorf("harness: unknown tier %q", string(t))
	}
	return nil
}

// ScaledLockBackoffMaxNs is the polling-lock backoff ceiling for an
// n-node cluster. The paper's 40 µs window (model.Default) is tuned for
// at most 7 contenders: each polling round costs the lock home ~4
// messages plus a reply whose vector timestamp grows with N, so once
// N-1 contenders re-poll faster than the home NIC can serve them the
// home's queue — and with it the virtual time per lock handoff —
// diverges; the paper-grid window live-locks a 64-way contended lock.
// Both the contender count and the per-round service time grow with N,
// so the window scales quadratically, keeping home occupancy per
// backoff window roughly constant as the cluster grows.
func ScaledLockBackoffMaxNs(nodes int) int64 {
	return 40_000 * int64(nodes) * int64(nodes) / 64
}

// Config is one experiment cell.
type Config struct {
	App  string
	Size Size
	Mode svm.Mode
	// Tier applies a scale preset before Nodes/Overrides; the zero value
	// is the paper grid (no scale-out knobs).
	Tier           Tier
	Nodes          int
	ThreadsPerNode int
	LockAlgo       svm.LockAlgo
	// AggregateDiffs enables the §6 batched diff propagation.
	AggregateDiffs bool
	// UnsafeSinglePhase collapses the two propagation phases (ablation:
	// the price of failure atomicity).
	UnsafeSinglePhase bool
	// FullTwins disables write-set tracked diffing (ablation: full-page
	// twin copies and full-page diff scans, the pre-tracking behavior).
	// Protocol outputs are identical either way; only host time moves.
	FullTwins bool
	// Detection selects the failure detector: the zero value is the free
	// oracle (seed behavior); model.DetectProbe pays for real probe/ack
	// traffic.
	Detection model.DetectionMode
	// Chaos, when non-nil, replaces the cost model's (disabled) chaos
	// block — usually one of ChaosScenarios.
	Chaos *model.Chaos
	// Overrides tweaks the cost model before the run (ablations).
	Overrides func(*model.Config)
	// AuditStride, when > 0, attaches the online invariant auditor with
	// that page-sweep stride (1: audit every event). Auditing is a
	// host-side check: virtual metrics are unchanged, only wall time
	// grows.
	AuditStride int
	// Workers selects the simulation engine: <= 1 runs the serial engine
	// (the default), > 1 the conservative parallel engine with that many
	// lane workers. Virtual metrics are bit-identical either way.
	Workers int
	// KillKind, when non-empty, injects a node failure: KillVictim is
	// fail-stopped the KillSeq'th time it emits this trace-event kind
	// (e.g. "release.done"; 0 matches the first occurrence). Requires
	// Mode == svm.ModeFT; tracer-driven cells always run serially.
	KillKind   string
	KillVictim int
	KillSeq    int64
}

// Result is one experiment outcome.
type Result struct {
	Config
	ExecNs    int64
	Breakdown svm.Breakdown
	MsgsSent  int64
	BytesSent int64
	// PostStallNs is total sender time blocked on full post queues.
	PostStallNs int64
	// Checkpoints is the total number of thread-state checkpoints taken.
	Checkpoints int64
	// Proto carries the cluster's protocol event counters.
	Proto svm.ProtoStats
	// Metrics is the unified registry snapshot (svm.*, ckpt.*, vmmc.*
	// counters) the cluster exposes through the obs layer.
	Metrics obs.Snapshot
	// WallNs is the host wall-clock time the simulation took (a simulator
	// performance metric; everything else above is virtual).
	WallNs int64
	// DirBytes is the resident footprint of the page + lock home
	// directories at the end of the run.
	DirBytes int64
	// RehomeWallNs is the host wall time spent inside directory Rehome
	// calls (zero when no failure was injected).
	RehomeWallNs int64
	// Phase holds the failure-lifecycle milestones (virtual times; zero
	// fields when no failure happened).
	Phase svm.PhaseTimes
	// EngineWorkers is the number of engine workers the run actually used
	// (1 when Config.Workers <= 1 or the run fell back to serial);
	// SerialFallback is the reason for a fallback, "" otherwise.
	EngineWorkers  int
	SerialFallback string
	Err            error
}

// Run executes one experiment cell.
func Run(c Config) Result {
	r, _ := runWithStats(c)
	return r
}

// RunGrid executes the cells concurrently on up to GOMAXPROCS workers and
// returns the results in input order. Each simulation is deterministic and
// fully independent (own engine, own page pool, own workload instance), so
// the results are identical to running the cells serially — only the
// wall-clock time changes.
func RunGrid(cells []Config) []Result {
	out := make([]Result, len(cells))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers <= 1 {
		for i, c := range cells {
			out[i] = Run(c)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				out[i] = Run(cells[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// runWithStats executes one cell and also returns the protocol counters.
func runWithStats(c Config) (Result, svm.ProtoStats) {
	start := time.Now()
	r, st := runCell(c)
	r.WallNs = int64(time.Since(start))
	r.Proto = st
	return r, st
}

// ModelConfig assembles the cell's cost-model configuration: defaults,
// then the tier preset, then the cell's explicit shape fields, then the
// ablation override hook. Shared by the benchmark runner and the failure
// explorer so a cell means the same cluster everywhere.
func (c Config) ModelConfig() (model.Config, error) {
	cfg := model.Default()
	if err := c.Tier.Apply(&cfg); err != nil {
		return cfg, err
	}
	if c.Nodes != 0 {
		cfg.Nodes = c.Nodes
	}
	if c.ThreadsPerNode != 0 {
		cfg.ThreadsPerNode = c.ThreadsPerNode
	}
	cfg.Detection = c.Detection
	if c.Chaos != nil {
		cfg.Chaos = *c.Chaos
	}
	if c.Overrides != nil {
		c.Overrides(&cfg)
	}
	return cfg, nil
}

func runCell(c Config) (Result, svm.ProtoStats) {
	cfg, err := c.ModelConfig()
	if err != nil {
		return Result{Config: c, Err: err}, svm.ProtoStats{}
	}
	s := apps.Shape{Nodes: cfg.Nodes, ThreadsPerNode: cfg.ThreadsPerNode, PageSize: cfg.PageSize}
	w, err := Build(c.App, c.Size, s)
	if err != nil {
		return Result{Config: c, Err: err}, svm.ProtoStats{}
	}
	opt := svm.Options{
		Config:            cfg,
		Mode:              c.Mode,
		LockAlgo:          c.LockAlgo,
		Pages:             w.Pages,
		Locks:             w.Locks,
		HomeAssign:        w.HomeAssign,
		Body:              w.Body,
		AggregateDiffs:    c.AggregateDiffs,
		UnsafeSinglePhase: c.UnsafeSinglePhase,
		FullTwins:         c.FullTwins,
		Workers:           c.Workers,
	}
	var kt *killTracer
	if c.KillKind != "" {
		kt = &killTracer{kind: c.KillKind, node: c.KillVictim, seq: c.KillSeq}
		opt.Tracer = kt
	}
	cl, err := svm.New(opt)
	if err != nil {
		return Result{Config: c, Err: err}, svm.ProtoStats{}
	}
	if kt != nil {
		kt.cl = cl
	}
	if c.AuditStride > 0 {
		cl.EnableAuditor(c.AuditStride)
	}
	if err := cl.Run(); err != nil {
		return Result{Config: c, Err: err}, svm.ProtoStats{}
	}
	if !cl.Finished() {
		return Result{Config: c, Err: fmt.Errorf("harness: %s did not finish", c.App)}, svm.ProtoStats{}
	}
	if err := w.Err(); err != nil {
		return Result{Config: c, Err: err}, svm.ProtoStats{}
	}
	r := Result{
		Config:         c,
		ExecNs:         cl.ExecTime(),
		Breakdown:      cl.AvgBreakdown(),
		EngineWorkers:  cl.EngineWorkers(),
		SerialFallback: cl.SerialFallbackReason(),
	}
	for i := 0; i < cfg.Nodes; i++ {
		st := cl.Network().Endpoint(i).Stats()
		r.MsgsSent += st.MsgsSent
		r.BytesSent += st.BytesSent
		r.PostStallNs += st.PostStallsNs
	}
	r.Checkpoints = cl.CheckpointCount()
	r.Metrics = cl.Metrics()
	r.DirBytes = cl.DirectoryBytes()
	r.RehomeWallNs = cl.RehomeWallNs()
	r.Phase = cl.PhaseTimes()
	return r, cl.ProtoStats()
}

// killTracer fail-stops a node the seq'th time it emits the configured
// trace-event kind (seq 0: the first occurrence) — the harness-level
// form of the failure injection the svm tests and svmfi drive directly.
type killTracer struct {
	cl   *svm.Cluster
	kind string
	node int
	seq  int64
	done bool
}

func (k *killTracer) Event(e svm.TraceEvent) {
	if k.done || e.Kind != k.kind || e.Node != k.node {
		return
	}
	if k.seq != 0 && e.Seq != k.seq {
		return
	}
	k.done = true
	k.cl.KillNode(k.node)
}

// RunPair runs a base/extended pair for one app and configuration, using
// both cores when available.
func RunPair(app string, size Size, nodes, tpn int) (base, ext Result) {
	rs := RunGrid(pairCells(app, size, nodes, tpn))
	return rs[0], rs[1]
}

// pairCells returns the base/extended cell pair for one configuration.
func pairCells(app string, size Size, nodes, tpn int) []Config {
	return []Config{
		{App: app, Size: size, Mode: svm.ModeBase, Nodes: nodes, ThreadsPerNode: tpn},
		{App: app, Size: size, Mode: svm.ModeFT, Nodes: nodes, ThreadsPerNode: tpn},
	}
}

// ms renders nanoseconds as milliseconds with one decimal.
func ms(ns int64) string { return fmt.Sprintf("%.1f", float64(ns)/1e6) }

// Overhead returns the extended-over-base execution overhead in percent.
func Overhead(base, ext Result) float64 {
	if base.ExecNs == 0 {
		return 0
	}
	return 100 * float64(ext.ExecNs-base.ExecNs) / float64(base.ExecNs)
}

// FigureBreakdown renders the paper's Figure 7/9 (4-component) or 8/10
// (6-component) table for the given thread count.
func FigureBreakdown(out io.Writer, size Size, nodes, tpn int, six bool) {
	kind, cols := "Figure 7", "compute data lock barrier"
	switch {
	case six && tpn == 1:
		kind, cols = "Figure 8", "compute data sync diffs proto ckpt"
	case !six && tpn == 2:
		kind = "Figure 9"
	case six && tpn == 2:
		kind, cols = "Figure 10", "compute data sync diffs proto ckpt"
	}
	fmt.Fprintf(out, "%s: execution time breakdown (ms/thread), %d nodes x %d thread(s)/node, size=%s\n",
		kind, nodes, tpn, size)
	fmt.Fprintf(out, "%-14s %-9s %9s  %s\n", "app", "protocol", "total", columnHeader(cols))
	var cells []Config
	for _, app := range AppNames {
		cells = append(cells, pairCells(app, size, nodes, tpn)...)
	}
	results := RunGrid(cells)
	for i, app := range AppNames {
		base, ext := results[2*i], results[2*i+1]
		for _, r := range []Result{base, ext} {
			if r.Err != nil {
				fmt.Fprintf(out, "%-14s %-9s ERROR: %v\n", app, r.Mode, r.Err)
				continue
			}
			fmt.Fprintf(out, "%-14s %-9s %9s  %s\n", app, r.Mode, ms(r.ExecNs), breakdownCells(r.Breakdown, six))
		}
		if base.Err == nil && ext.Err == nil {
			fmt.Fprintf(out, "%-14s overhead %+8.0f%%\n", app, Overhead(base, ext))
		}
	}
}

func columnHeader(cols string) string {
	var b strings.Builder
	for _, c := range strings.Fields(cols) {
		fmt.Fprintf(&b, "%9s", c)
	}
	return b.String()
}

func breakdownCells(bd svm.Breakdown, six bool) string {
	var vals []int64
	if six {
		c, d, s, df, p, k := bd.SixWay()
		vals = []int64{c, d, s, df, p, k}
	} else {
		c, d, l, b := bd.FourWay()
		vals = []int64{c, d, l, b}
	}
	var b strings.Builder
	for _, v := range vals {
		fmt.Fprintf(&b, "%9s", ms(v))
	}
	return b.String()
}

// OverheadSummary prints the headline numbers (paper: 20-67% at 1 thread,
// 24-100% at 2 threads).
func OverheadSummary(out io.Writer, size Size, nodes int) {
	for _, tpn := range []int{1, 2} {
		lo, hi := 1e18, -1e18
		fmt.Fprintf(out, "Overhead, %d nodes x %d thread(s)/node, size=%s\n", nodes, tpn, size)
		var cells []Config
		for _, app := range AppNames {
			cells = append(cells, pairCells(app, size, nodes, tpn)...)
		}
		results := RunGrid(cells)
		for i, app := range AppNames {
			base, ext := results[2*i], results[2*i+1]
			if base.Err != nil || ext.Err != nil {
				fmt.Fprintf(out, "  %-12s ERROR base=%v ext=%v\n", app, base.Err, ext.Err)
				continue
			}
			ov := Overhead(base, ext)
			if ov < lo {
				lo = ov
			}
			if ov > hi {
				hi = ov
			}
			fmt.Fprintf(out, "  %-12s base %8s ms  extended %8s ms  overhead %+5.0f%%\n",
				app, ms(base.ExecNs), ms(ext.ExecNs), ov)
		}
		fmt.Fprintf(out, "  range: %+.0f%% .. %+.0f%%\n", lo, hi)
	}
}

// DiffAnalysis renders the §5.3.1 diff/checkpoint analysis table: how many
// pages each application diffs, the fraction landing on the committer's
// own home pages (the base protocol never diffs those; the extension ships
// them twice), and the checkpoint count.
func DiffAnalysis(out io.Writer, size Size, nodes int) {
	fmt.Fprintf(out, "Diff analysis (extended protocol, %d nodes x 1 thread, size=%s)\n", nodes, size)
	fmt.Fprintf(out, "%-14s %12s %12s %10s %12s\n", "app", "pages diffed", "home pages", "home frac", "checkpoints")
	cells := make([]Config, len(AppNames))
	for i, app := range AppNames {
		cells[i] = Config{App: app, Size: size, Mode: svm.ModeFT, Nodes: nodes, ThreadsPerNode: 1}
	}
	for i, r := range RunGrid(cells) {
		app := AppNames[i]
		if r.Err != nil {
			fmt.Fprintf(out, "%-14s ERROR: %v\n", app, r.Err)
			continue
		}
		st := r.Proto
		fmt.Fprintf(out, "%-14s %12d %12d %9.0f%% %12d\n",
			app, st.PagesDiffed, st.HomePagesDiffed, 100*st.HomeDiffFraction(), r.Checkpoints)
	}
}

// ScalingSummary sweeps the cluster size: the paper evaluates only 8
// nodes, but the protocol's costs (dual-home diffs, replicated locks,
// backup checkpoints) shift with scale — at 2 nodes every page's two
// replicas cover the whole machine, while larger clusters localize the
// replication traffic.
func ScalingSummary(out io.Writer, size Size, apps []string) {
	fmt.Fprintf(out, "Scaling: extended-protocol overhead vs cluster size (1 thread/node, size=%s)\n", size)
	fmt.Fprintf(out, "%-14s %8s %12s %12s %10s\n", "app", "nodes", "base ms", "extended ms", "overhead")
	nodeCounts := []int{2, 4, 8, 16}
	var cells []Config
	for _, app := range apps {
		for _, nodes := range nodeCounts {
			cells = append(cells, pairCells(app, size, nodes, 1)...)
		}
	}
	results := RunGrid(cells)
	for i, app := range apps {
		for j, nodes := range nodeCounts {
			k := 2 * (i*len(nodeCounts) + j)
			base, ext := results[k], results[k+1]
			if base.Err != nil || ext.Err != nil {
				fmt.Fprintf(out, "%-14s %8d ERROR base=%v ext=%v\n", app, nodes, base.Err, ext.Err)
				continue
			}
			fmt.Fprintf(out, "%-14s %8d %12.1f %12.1f %+9.0f%%\n",
				app, nodes, float64(base.ExecNs)/1e6, float64(ext.ExecNs)/1e6, Overhead(base, ext))
		}
	}
}

package harness

import (
	"bytes"
	"strings"
	"testing"

	"ftsvm/internal/apps"
	"ftsvm/internal/svm"
)

func TestBuildAllApps(t *testing.T) {
	s := apps.Shape{Nodes: 4, ThreadsPerNode: 1, PageSize: 4096}
	for _, app := range AppNames {
		w, err := Build(app, SizeSmall, s)
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		if w.Pages <= 0 || w.Body == nil {
			t.Fatalf("%s: malformed workload", app)
		}
	}
	if _, err := Build("nosuch", SizeSmall, s); err == nil {
		t.Fatal("unknown app did not error")
	}
}

func TestRunPairSmall(t *testing.T) {
	base, ext := RunPair("radix", SizeSmall, 4, 1)
	if base.Err != nil || ext.Err != nil {
		t.Fatalf("base=%v ext=%v", base.Err, ext.Err)
	}
	if base.ExecNs <= 0 || ext.ExecNs <= base.ExecNs {
		t.Fatalf("exec times base=%d ext=%d: extended must cost more", base.ExecNs, ext.ExecNs)
	}
	if ext.Checkpoints == 0 {
		t.Fatal("extended run took no checkpoints")
	}
	if base.Checkpoints != 0 {
		t.Fatal("base run took checkpoints")
	}
	if ext.MsgsSent <= base.MsgsSent {
		t.Fatal("extended protocol should send more messages (dual homes)")
	}
}

func TestFigureBreakdownRenders(t *testing.T) {
	var buf bytes.Buffer
	FigureBreakdown(&buf, SizeSmall, 4, 1, false)
	out := buf.String()
	if !strings.Contains(out, "Figure 7") || !strings.Contains(out, "fft") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	if strings.Contains(out, "ERROR") {
		t.Fatalf("figure contains errors:\n%s", out)
	}
}

func TestOverheadPositiveAcrossApps(t *testing.T) {
	for _, app := range AppNames {
		base, ext := RunPair(app, SizeSmall, 4, 1)
		if base.Err != nil || ext.Err != nil {
			t.Fatalf("%s: base=%v ext=%v", app, base.Err, ext.Err)
		}
		if ov := Overhead(base, ext); ov <= 0 {
			t.Errorf("%s: overhead %.1f%%, want positive", app, ov)
		}
	}
}

var _ = svm.ModeBase

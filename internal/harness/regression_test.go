package harness

import (
	"fmt"
	"testing"

	"ftsvm/internal/apps"
	"ftsvm/internal/model"
	"ftsvm/internal/svm"
)

// eventKiller fail-stops victim at the first matching trace event. Unlike
// the svm package's killTracer, the victim may differ from the node the
// event fires on — needed to kill a bystander home inside another node's
// release window.
type eventKiller struct {
	cl     *svm.Cluster
	kind   string
	node   int // node the event fires on
	victim int // node to kill
	seq    int64
	done   bool
}

func (k *eventKiller) Event(e svm.TraceEvent) {
	if k.done || e.Kind != k.kind || e.Node != k.node || (k.seq != 0 && e.Seq != k.seq) {
		return
	}
	k.done = true
	k.cl.KillNode(k.victim)
}

// runAppWithKill executes app (small size, 4 nodes, extended protocol)
// with the given kill schedule and verifies completion, the app's own
// result check, and the replica audit.
func runAppWithKill(t *testing.T, app, kind string, node, victim int, seq int64) {
	t.Helper()
	runAppWithKillTPN(t, app, kind, node, victim, seq, 1)
}

func runAppWithKillTPN(t *testing.T, app, kind string, node, victim int, seq int64, tpn int) {
	t.Helper()
	cfg := model.Default()
	cfg.Nodes = 4
	cfg.ThreadsPerNode = tpn
	s := apps.Shape{Nodes: 4, ThreadsPerNode: tpn, PageSize: cfg.PageSize}
	w, err := Build(app, SizeSmall, s)
	if err != nil {
		t.Fatal(err)
	}
	k := &eventKiller{kind: kind, node: node, victim: victim, seq: seq}
	cl, err := svm.New(svm.Options{
		Config: cfg, Mode: svm.ModeFT, Pages: w.Pages, Locks: w.Locks,
		HomeAssign: w.HomeAssign, Body: w.Body, Tracer: k,
	})
	if err != nil {
		t.Fatal(err)
	}
	k.cl = cl
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if !k.done {
		t.Skip("kill point never reached")
	}
	if !cl.Finished() {
		t.Fatal("threads did not finish")
	}
	if err := w.Err(); err != nil {
		t.Fatalf("result verification: %v", err)
	}
	if err := cl.VerifyReplicas(); err != nil {
		t.Fatalf("replica audit: %v", err)
	}
}

// TestBystanderHomeFailure is the regression for the in-flight-release
// re-propagation bug: node 0 (a secondary home of pages being released by
// live nodes) dies at its own first commit; a live releaser's phase 1 had
// already landed on node 0, recovery rebuilt the new secondary from the
// primary's committed copy *before* the releaser's local phase 2 ran, and
// without the post-recovery re-propagation the interval existed only in
// the committed replica. Found by cmd/svmcheck; verified byte-for-byte by
// VerifyReplicas.
func TestBystanderHomeFailure(t *testing.T) {
	runAppWithKill(t, "waternsq", "release.commit", 0, 0, 1)
}

// TestBystanderHomeFailureSweep widens the regression to every victim at
// two milestones across the lock-based apps.
func TestBystanderHomeFailureSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, app := range []string{"waternsq", "kvstore"} {
		for victim := 0; victim < 4; victim++ {
			for _, kind := range []string{"release.commit", "release.savets"} {
				t.Run(app+"/"+kind, func(t *testing.T) {
					runAppWithKill(t, app, kind, victim, victim, 2)
				})
			}
		}
	}
}

// TestOceanReplayCarry is the regression for the Ocean resumability bug:
// the red half-sweep's residual carry must live in the checkpointed
// thread state, or a migrated thread replaying the black half-sweep
// records a zeroed carry and the monotone-residual verification fails.
func TestOceanReplayCarry(t *testing.T) {
	runAppWithKill(t, "ocean", "release.commit", 0, 0, 5)
}

// TestSMPReplayExactness covers the three mechanisms that make replay
// exact with 2 threads/node (see DESIGN.md substitution contracts):
// commit-time deferral of a sibling's mid-critical-section words, the
// matching point-A checkpoint skip, and roll-decision-aware snapshot
// selection at migration. Each named schedule was an observed failure of
// one mechanism before it existed:
//   - waternsq savets/ckptB kills: roll-forward double-apply (deferral)
//     and lost-flush (point-A skip);
//   - fft/radix phase1 kills: roll-back restoring a too-new sibling
//     point-A snapshot (LatestValid).
func TestSMPReplayExactness(t *testing.T) {
	cases := []struct {
		app, kind string
		seq       int64
	}{
		{"waternsq", "release.commit", 5},
		{"waternsq", "release.savets", 5},
		{"waternsq", "release.ckptB", 3},
		{"fft", "release.phase1", 1},
		{"fft", "release.phase1", 3},
		{"radix", "release.phase1", 1},
		{"lu", "release.phase1", 1},
		{"volrend", "release.phase1", 1},
	}
	for _, c := range cases {
		for victim := 0; victim < 4; victim++ {
			t.Run(fmt.Sprintf("%s/%s/n%d/s%d", c.app, c.kind, victim, c.seq), func(t *testing.T) {
				runAppWithKillTPN(t, c.app, c.kind, victim, victim, c.seq, 2)
			})
		}
	}
}

// TestDeferredWordsContract pins the deferral machinery's activation
// contract: inactive with one thread per node (identical behavior to the
// pre-SMP protocol), active under SMP lock contention.
func TestDeferredWordsContract(t *testing.T) {
	run := func(tpn int) int64 {
		cfg := model.Default()
		cfg.Nodes = 4
		cfg.ThreadsPerNode = tpn
		s := apps.Shape{Nodes: 4, ThreadsPerNode: tpn, PageSize: cfg.PageSize}
		w, err := Build("waternsq", SizeSmall, s)
		if err != nil {
			t.Fatal(err)
		}
		cl, err := svm.New(svm.Options{
			Config: cfg, Mode: svm.ModeFT, Pages: w.Pages, Locks: w.Locks,
			HomeAssign: w.HomeAssign, Body: w.Body,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Run(); err != nil {
			t.Fatal(err)
		}
		if err := w.Err(); err != nil {
			t.Fatal(err)
		}
		return cl.ProtoStats().DeferredWords
	}
	if d := run(1); d != 0 {
		t.Fatalf("1 thread/node deferred %d words, want 0", d)
	}
	if d := run(2); d == 0 {
		t.Fatal("2 threads/node deferred nothing; tracking inactive?")
	}
}

// TestCrossRunDeterminism runs every application twice at every
// configuration axis that has bitten before (SMP, both modes) and demands
// identical virtual-time results. (Water-SpatialFL once differed between
// runs: a fetch loop ranged over a map, and Go's randomized iteration
// perturbed the fetch interleaving.)
func TestCrossRunDeterminism(t *testing.T) {
	for _, app := range AppNames {
		for _, mode := range []svm.Mode{svm.ModeBase, svm.ModeFT} {
			r1 := Run(Config{App: app, Size: SizeSmall, Mode: mode, Nodes: 4, ThreadsPerNode: 2})
			r2 := Run(Config{App: app, Size: SizeSmall, Mode: mode, Nodes: 4, ThreadsPerNode: 2})
			if r1.Err != nil || r2.Err != nil {
				t.Fatalf("%s/%s: %v / %v", app, mode, r1.Err, r2.Err)
			}
			if r1.ExecNs != r2.ExecNs || r1.MsgsSent != r2.MsgsSent {
				t.Errorf("%s/%s: runs differ: %d vs %d ns, %d vs %d msgs",
					app, mode, r1.ExecNs, r2.ExecNs, r1.MsgsSent, r2.MsgsSent)
			}
		}
	}
}

package harness

import (
	"bytes"
	"strings"
	"testing"

	"ftsvm/internal/svm"
)

// TestSixWayFigureRenders covers the Figure 8/10 rendering path.
func TestSixWayFigureRenders(t *testing.T) {
	var buf bytes.Buffer
	FigureBreakdown(&buf, SizeSmall, 4, 2, true)
	out := buf.String()
	if !strings.Contains(out, "Figure 10") || !strings.Contains(out, "ckpt") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	if strings.Contains(out, "ERROR") {
		t.Fatalf("figure contains errors:\n%s", out)
	}
}

// TestDiffAnalysisRenders covers the §5.3.1 analysis table.
func TestDiffAnalysisRenders(t *testing.T) {
	var buf bytes.Buffer
	DiffAnalysis(&buf, SizeSmall, 4)
	out := buf.String()
	if !strings.Contains(out, "home frac") || !strings.Contains(out, "waternsq") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	if strings.Contains(out, "ERROR") {
		t.Fatalf("analysis contains errors:\n%s", out)
	}
}

// TestScalingSummaryRenders covers the scaling sweep on a pair of tiny
// configurations.
func TestScalingSummaryRenders(t *testing.T) {
	var buf bytes.Buffer
	ScalingSummary(&buf, SizeSmall, []string{"volrend"})
	out := buf.String()
	if !strings.Contains(out, "Scaling") || strings.Contains(out, "ERROR") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

// TestKVStoreViaHarness exercises the §6 workload through Build/Run.
func TestKVStoreViaHarness(t *testing.T) {
	base, ext := RunPair("kvstore", SizeSmall, 4, 1)
	if base.Err != nil || ext.Err != nil {
		t.Fatalf("base=%v ext=%v", base.Err, ext.Err)
	}
	if Overhead(base, ext) <= 0 {
		t.Fatal("kvstore extended run not slower than base")
	}
}

// TestOverheadSummaryRenders covers the headline table (both thread
// counts) and checks the computed range line is well-formed.
func TestOverheadSummaryRenders(t *testing.T) {
	var buf bytes.Buffer
	OverheadSummary(&buf, SizeSmall, 2)
	out := buf.String()
	if strings.Contains(out, "ERROR") {
		t.Fatalf("summary contains errors:\n%s", out)
	}
	for _, want := range []string{"2 nodes x 1 thread", "2 nodes x 2 thread", "range:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

// TestRunErrorPaths drives every error branch of runWithStats: unknown
// application, invalid option combination, and the degenerate one-node
// cluster the fault-tolerant protocol rejects (no distinct second home).
func TestRunErrorPaths(t *testing.T) {
	cases := []Config{
		{App: "nosuchapp", Size: SizeSmall, Mode: svm.ModeBase, Nodes: 4, ThreadsPerNode: 1},
		{App: "fft", Size: SizeSmall, Mode: svm.ModeFT, LockAlgo: svm.LockQueue, Nodes: 4, ThreadsPerNode: 1},
		{App: "fft", Size: SizeSmall, Mode: svm.ModeFT, Nodes: 1, ThreadsPerNode: 1},
	}
	for _, c := range cases {
		if r := Run(c); r.Err == nil {
			t.Fatalf("config %+v: expected error", c)
		}
	}
}

// TestOverheadZeroBase guards the divide-by-zero branch.
func TestOverheadZeroBase(t *testing.T) {
	if ov := Overhead(Result{}, Result{ExecNs: 5}); ov != 0 {
		t.Fatalf("Overhead with zero base = %v, want 0", ov)
	}
}

// TestFigureBreakdownErrorRow covers the per-row error rendering: an app
// list entry that fails to build must print an ERROR row, not abort the
// whole figure. The error is provoked by temporarily shadowing AppNames.
func TestFigureBreakdownErrorRow(t *testing.T) {
	saved := AppNames
	AppNames = []string{"nosuchapp"}
	defer func() { AppNames = saved }()
	var buf bytes.Buffer
	FigureBreakdown(&buf, SizeSmall, 2, 1, false)
	if !strings.Contains(buf.String(), "ERROR") {
		t.Fatalf("expected ERROR row:\n%s", buf.String())
	}
	buf.Reset()
	DiffAnalysis(&buf, SizeSmall, 2)
	if !strings.Contains(buf.String(), "ERROR") {
		t.Fatalf("expected ERROR row:\n%s", buf.String())
	}
	buf.Reset()
	OverheadSummary(&buf, SizeSmall, 2)
	if !strings.Contains(buf.String(), "ERROR") {
		t.Fatalf("expected ERROR row:\n%s", buf.String())
	}
	buf.Reset()
	ScalingSummary(&buf, SizeSmall, AppNames)
	if !strings.Contains(buf.String(), "ERROR") {
		t.Fatalf("expected ERROR row:\n%s", buf.String())
	}
}

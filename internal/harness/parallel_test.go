package harness

import (
	"fmt"
	"hash/fnv"
	"testing"

	"ftsvm/internal/apps"
	"ftsvm/internal/model"
	"ftsvm/internal/svm"
)

// parallelCell runs one experiment cell with the given engine worker
// count and folds every observable the parallel engine must preserve
// into one fingerprint: virtual execution time, executed event count,
// the post-run RNG cursor (pins the full draw sequence), per-endpoint
// wire counters, protocol counters, checkpoint count, the unified
// metrics snapshot (svm.*, ckpt.*, vmmc.*), and the final committed
// memory image. The flight recorder is deliberately absent — attaching
// it forces the serial-fallback path, which is exactly what this test
// must not take — so the event stream is pinned through the counters,
// the RNG cursor, and the memory bytes instead.
func parallelCell(t *testing.T, app string, mode svm.Mode, tpn int, seed int64, workers int) string {
	t.Helper()
	cfg := model.Default()
	cfg.Nodes = 4
	cfg.ThreadsPerNode = tpn
	cfg.Seed = seed
	s := apps.Shape{Nodes: cfg.Nodes, ThreadsPerNode: tpn, PageSize: cfg.PageSize}
	w, err := Build(app, SizeSmall, s)
	if err != nil {
		t.Fatalf("build %s: %v", app, err)
	}
	cl, err := svm.New(svm.Options{
		Config: cfg, Mode: mode,
		Pages: w.Pages, Locks: w.Locks, HomeAssign: w.HomeAssign,
		Body: w.Body, Workers: workers,
	})
	if err != nil {
		t.Fatalf("new %s: %v", app, err)
	}
	if err := cl.Run(); err != nil {
		t.Fatalf("%s (workers=%d): %v", app, workers, err)
	}
	if !cl.Finished() {
		t.Fatalf("%s (workers=%d): did not finish", app, workers)
	}
	if err := w.Err(); err != nil {
		t.Fatalf("%s (workers=%d): self-check: %v", app, workers, err)
	}
	if workers > 1 {
		if r := cl.SerialFallbackReason(); r != "" {
			t.Fatalf("%s: fell back to serial (%s) — the parallel engine was not exercised", app, r)
		}
		if got := cl.EngineWorkers(); got != workers {
			t.Fatalf("%s: EngineWorkers = %d, want %d", app, got, workers)
		}
	}

	h := fnv.New64a()
	fmt.Fprintf(h, "exec=%d events=%d rand=%d ckpt=%d\n",
		cl.ExecTime(), cl.Engine().Events(), cl.Engine().Rand().Int63(), cl.CheckpointCount())
	for i := 0; i < cfg.Nodes; i++ {
		fmt.Fprintf(h, "ep%d=%+v\n", i, cl.Network().Endpoint(i).Stats())
	}
	fmt.Fprintf(h, "proto=%+v\n", cl.ProtoStats())
	for _, c := range cl.Metrics().Sorted() {
		fmt.Fprintf(h, "%s=%d\n", c.Name, c.Value)
	}
	h.Write(cl.PeekLiveBytes(0, cl.NumPages()*cl.PageSize()))
	return fmt.Sprintf("%016x", h.Sum64())
}

// FuzzParallelDeterminism is the cluster-level determinism property:
// for an arbitrary (app, protocol mode, threads-per-node, seed, worker
// count), the parallel engine must reproduce the serial engine's run
// bit-for-bit — same virtual times, same wire and protocol counters,
// same vmmc metrics, same RNG draw sequence, same final memory image.
// This is the end-to-end counterpart of sim's TestParallelDeterminism:
// it drives the full SVM protocol stack (locks, barriers, two-phase
// diff propagation, checkpoints) over the lane engine rather than a
// synthetic workload.
func FuzzParallelDeterminism(f *testing.F) {
	f.Add(uint8(0), int64(1), uint8(2), false, uint8(1))
	f.Add(uint8(1), int64(7), uint8(4), true, uint8(2))
	f.Add(uint8(2), int64(42), uint8(3), true, uint8(1))
	f.Add(uint8(3), int64(99), uint8(4), false, uint8(2))
	f.Add(uint8(0), int64(1234), uint8(2), true, uint8(2))
	f.Fuzz(func(t *testing.T, appIdx uint8, seed int64, workers uint8, ft bool, tpn uint8) {
		pool := []string{"counter", "falseshare", "fft", "waternsq"}
		app := pool[int(appIdx)%len(pool)]
		w := 2 + int(workers)%3
		tp := 1 + int(tpn)%2
		if seed < 0 {
			seed = -seed
		}
		mode := svm.ModeBase
		if ft {
			mode = svm.ModeFT
		}
		serial := parallelCell(t, app, mode, tp, seed, 1)
		par := parallelCell(t, app, mode, tp, seed, w)
		if serial != par {
			t.Fatalf("%s mode=%v tpn=%d seed=%d: workers=%d fingerprint %s != serial %s",
				app, mode, tp, seed, w, par, serial)
		}
	})
}

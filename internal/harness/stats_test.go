package harness

import (
	"testing"

	"ftsvm/internal/apps"
	"ftsvm/internal/model"
	"ftsvm/internal/svm"
)

// statsFor runs one extended-protocol configuration and returns the
// protocol counters.
func statsFor(t *testing.T, app string, size Size) svm.ProtoStats {
	t.Helper()
	cfg := model.Default()
	cfg.Nodes = 8
	s := apps.Shape{Nodes: 8, ThreadsPerNode: 1, PageSize: cfg.PageSize}
	w, err := Build(app, size, s)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := svm.New(svm.Options{
		Config: cfg, Mode: svm.ModeFT, Pages: w.Pages, Locks: w.Locks,
		HomeAssign: w.HomeAssign, Body: w.Body,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	return cl.ProtoStats()
}

// TestHomeDiffFractions reproduces the paper's §5.3.1 diff analysis: the
// fraction of diffed pages that are the committer's own home pages is
// near-total for the partitioned applications (FFT, LU, Water-SpatialFL),
// moderate for Water-Nsquared (~25% in the paper), and small for
// RadixLocal (~12%), whose permutation writes land mostly on other
// owners' pages.
func TestHomeDiffFractions(t *testing.T) {
	// Page-level home fractions only emerge once the data spans enough
	// pages for per-owner placement to matter; use the medium size.
	frac := map[string]float64{}
	for _, app := range AppNames {
		st := statsFor(t, app, SizeMedium)
		if st.PagesDiffed == 0 {
			t.Fatalf("%s: no pages diffed", app)
		}
		frac[app] = st.HomeDiffFraction()
		t.Logf("%-10s home-diff fraction %.0f%%", app, 100*frac[app])
	}
	if frac["watersp"] < 0.85 {
		// At medium size page granularity still blurs cell ownership; the
		// paper-size run reaches >99% (TestHomeDiffFractionPaperSize).
		t.Errorf("watersp home-diff fraction %.2f, want > 0.85", frac["watersp"])
	}
	if frac["fft"] < 0.90 || frac["lu"] < 0.80 {
		t.Errorf("fft/lu home-diff fractions %.2f/%.2f, want near-total", frac["fft"], frac["lu"])
	}
	if frac["radix"] > 0.50 {
		t.Errorf("radix home-diff fraction %.2f, want small (paper: ~12%%)", frac["radix"])
	}
	if frac["radix"] >= frac["watersp"] {
		t.Errorf("radix (%.2f) should diff fewer home pages than watersp (%.2f)",
			frac["radix"], frac["watersp"])
	}
}

// TestStatsBasicShape checks the counters are self-consistent.
func TestStatsBasicShape(t *testing.T) {
	st := statsFor(t, "waternsq", SizeSmall)
	if st.HomePagesDiffed > st.PagesDiffed {
		t.Fatal("home-diffed exceeds total diffed")
	}
	if st.Intervals == 0 || st.WriteFaults == 0 || st.ReadFaults == 0 {
		t.Fatalf("missing activity: %+v", st)
	}
	if st.RemoteFetches+st.LocalFetches == 0 {
		t.Fatal("no fetches recorded")
	}
	if st.RemoteAcquires == 0 {
		t.Fatal("no lock acquisitions recorded")
	}
	if st.BarrierEpisodes == 0 {
		t.Fatal("no barrier episodes recorded")
	}
	if st.Recoveries != 0 || st.MigratedThreads != 0 {
		t.Fatal("failure counters nonzero in a failure-free run")
	}
	if st.DiffMsgs == 0 || st.DiffBytes == 0 {
		t.Fatal("no diff traffic recorded")
	}
}

// TestStatsRecoveryCounters verifies failure counters after an injected
// failure.
func TestStatsRecoveryCounters(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 4
	s := apps.Shape{Nodes: 4, ThreadsPerNode: 1, PageSize: cfg.PageSize}
	w, err := Build("radix", SizeSmall, s)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := svm.New(svm.Options{
		Config: cfg, Mode: svm.ModeFT, Pages: w.Pages, Locks: w.Locks,
		HomeAssign: w.HomeAssign, Body: w.Body,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.Engine().At(3_000_000, func() { cl.KillNode(2) })
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	st := cl.ProtoStats()
	if st.Recoveries != 1 {
		t.Fatalf("Recoveries = %d, want 1", st.Recoveries)
	}
	if st.MigratedThreads != 1 {
		t.Fatalf("MigratedThreads = %d, want 1", st.MigratedThreads)
	}
}

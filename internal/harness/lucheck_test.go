package harness

import (
	"testing"

	"ftsvm/internal/svm"
)

func TestLUMediumProfile(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	for _, size := range []Size{SizeSmall, SizeMedium} {
		base := Run(Config{App: "lu", Size: size, Mode: svm.ModeBase, Nodes: 8, ThreadsPerNode: 1})
		if base.Err != nil {
			t.Fatal(base.Err)
		}
		c, d, l, b := base.Breakdown.FourWay()
		t.Logf("%s: total=%.1fms compute=%.1f data=%.1f lock=%.1f barrier=%.1f msgs=%d",
			size, float64(base.ExecNs)/1e6, float64(c)/1e6, float64(d)/1e6, float64(l)/1e6, float64(b)/1e6, base.MsgsSent)
	}
}

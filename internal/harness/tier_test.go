package harness

import (
	"testing"

	"ftsvm/internal/model"
	"ftsvm/internal/svm"
)

func TestParseTier(t *testing.T) {
	for s, want := range map[string]Tier{
		"": TierPaper, "paper": TierPaper, "large": TierLarge, "huge": TierHuge,
	} {
		got, err := ParseTier(s)
		if err != nil || got != want {
			t.Fatalf("ParseTier(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseTier("gigantic"); err == nil {
		t.Fatal("ParseTier should reject unknown tiers")
	}
}

// TestTierApply pins the scale presets: the tiers are the product's
// contract for "what turns on past the paper grid", so a silent change
// to any knob (including the contention-scaled lock backoff that keeps
// a 64-way polling lock from live-locking) should fail loudly here.
func TestTierApply(t *testing.T) {
	cases := []struct {
		tier   Tier
		nodes  int
		arity  int
		probes int
	}{
		{TierLarge, 64, 4, 3},
		{TierHuge, 256, 8, 3},
	}
	for _, c := range cases {
		cfg := model.Default()
		if err := c.tier.Apply(&cfg); err != nil {
			t.Fatalf("%s: %v", c.tier, err)
		}
		if cfg.Nodes != c.nodes || cfg.FanoutArity != c.arity || cfg.ProbeNeighbors != c.probes {
			t.Fatalf("%s: got nodes=%d arity=%d probes=%d", c.tier, cfg.Nodes, cfg.FanoutArity, cfg.ProbeNeighbors)
		}
		if cfg.VTCodec != model.VTDelta {
			t.Fatalf("%s: vector times should be delta-encoded", c.tier)
		}
		if want := ScaledLockBackoffMaxNs(c.nodes); cfg.LockBackoffMaxNs != want {
			t.Fatalf("%s: lock backoff %d, want %d", c.tier, cfg.LockBackoffMaxNs, want)
		}
	}
	cfg := model.Default()
	if err := TierPaper.Apply(&cfg); err != nil {
		t.Fatal(err)
	}
	def := model.Default()
	if cfg.Nodes != def.Nodes || cfg.FanoutArity != def.FanoutArity ||
		cfg.VTCodec != def.VTCodec || cfg.ProbeNeighbors != def.ProbeNeighbors ||
		cfg.LockBackoffMaxNs != def.LockBackoffMaxNs {
		t.Fatal("the paper tier must not touch the scale knobs")
	}
}

// TestLargeTierMicroWorkloads is the 64-node smoke from the scaling
// milestone's acceptance bar: both micro workloads, both protocols, the
// full large-tier preset (release tree, delta vector times, scaled lock
// backoff), every run held to the online invariant auditor. Before the
// backoff fix the counter cells live-lock here rather than fail.
func TestLargeTierMicroWorkloads(t *testing.T) {
	var cells []Config
	for _, app := range []string{"counter", "falseshare"} {
		for _, mode := range []svm.Mode{svm.ModeBase, svm.ModeFT} {
			cells = append(cells, Config{
				App: app, Size: SizeSmall, Mode: mode,
				Tier: TierLarge, ThreadsPerNode: 1, AuditStride: 16,
			})
		}
	}
	for i, r := range RunGrid(cells) {
		if r.Err != nil {
			t.Errorf("%s/%s large tier: %v", cells[i].App, cells[i].Mode, r.Err)
		}
	}
}

package harness

import (
	"testing"

	"ftsvm/internal/model"
	"ftsvm/internal/svm"
)

func TestParseTier(t *testing.T) {
	for s, want := range map[string]Tier{
		"": TierPaper, "paper": TierPaper, "large": TierLarge, "huge": TierHuge,
		"xlarge": TierXLarge,
	} {
		got, err := ParseTier(s)
		if err != nil || got != want {
			t.Fatalf("ParseTier(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseTier("gigantic"); err == nil {
		t.Fatal("ParseTier should reject unknown tiers")
	}
}

// TestTierApply pins the scale presets: the tiers are the product's
// contract for "what turns on past the paper grid", so a silent change
// to any knob (including the contention-scaled lock backoff that keeps
// a 64-way polling lock from live-locking) should fail loudly here.
func TestTierApply(t *testing.T) {
	cases := []struct {
		tier   Tier
		nodes  int
		arity  int
		probes int
	}{
		{TierLarge, 64, 4, 3},
		{TierHuge, 256, 8, 3},
		{TierXLarge, 512, 8, 3},
	}
	for _, c := range cases {
		cfg := model.Default()
		if err := c.tier.Apply(&cfg); err != nil {
			t.Fatalf("%s: %v", c.tier, err)
		}
		if cfg.Nodes != c.nodes || cfg.FanoutArity != c.arity || cfg.ProbeNeighbors != c.probes {
			t.Fatalf("%s: got nodes=%d arity=%d probes=%d", c.tier, cfg.Nodes, cfg.FanoutArity, cfg.ProbeNeighbors)
		}
		if cfg.VTCodec != model.VTDelta {
			t.Fatalf("%s: vector times should be delta-encoded", c.tier)
		}
		if want := ScaledLockBackoffMaxNs(c.nodes); cfg.LockBackoffMaxNs != want {
			t.Fatalf("%s: lock backoff %d, want %d", c.tier, cfg.LockBackoffMaxNs, want)
		}
		wantDir := model.DirFlat
		if c.tier == TierXLarge {
			wantDir = model.DirHashed
		}
		if cfg.Directory != wantDir {
			t.Fatalf("%s: directory %v, want %v", c.tier, cfg.Directory, wantDir)
		}
	}
	cfg := model.Default()
	if err := TierPaper.Apply(&cfg); err != nil {
		t.Fatal(err)
	}
	def := model.Default()
	if cfg.Nodes != def.Nodes || cfg.FanoutArity != def.FanoutArity ||
		cfg.VTCodec != def.VTCodec || cfg.ProbeNeighbors != def.ProbeNeighbors ||
		cfg.LockBackoffMaxNs != def.LockBackoffMaxNs {
		t.Fatal("the paper tier must not touch the scale knobs")
	}
}

// TestLargeTierMicroWorkloads is the 64-node smoke from the scaling
// milestone's acceptance bar: both micro workloads, both protocols, the
// full large-tier preset (release tree, delta vector times, scaled lock
// backoff), every run held to the online invariant auditor. Before the
// backoff fix the counter cells live-lock here rather than fail.
func TestLargeTierMicroWorkloads(t *testing.T) {
	var cells []Config
	for _, app := range []string{"counter", "falseshare"} {
		for _, mode := range []svm.Mode{svm.ModeBase, svm.ModeFT} {
			cells = append(cells, Config{
				App: app, Size: SizeSmall, Mode: mode,
				Tier: TierLarge, ThreadsPerNode: 1, AuditStride: 16,
			})
		}
	}
	for i, r := range RunGrid(cells) {
		if r.Err != nil {
			t.Errorf("%s/%s large tier: %v", cells[i].App, cells[i].Mode, r.Err)
		}
	}
}

// TestXLargeTierMicroWorkloads is the 512-node smoke: both micro
// workloads under the full xlarge preset (arity-8 tree, delta vector
// times, hashed home directory), held to the strided online auditor.
// FT-mode cells also take a mid-run failure, exercising the hashed
// rehoming path (override table + reverse-index walk) at full tier
// scale. The stride is sized for the schedule, not the node count: the
// 512-way polling lock emits tens of millions of probe events, and each
// sweep is O(nodes x pages) = 512 x 512, so a 64K stride keeps the
// audit at a few hundred sweeps instead of dominating the cell.
func TestXLargeTierMicroWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("512-node cells take seconds each")
	}
	var cells []Config
	for _, app := range []string{"counter", "falseshare"} {
		for _, mode := range []svm.Mode{svm.ModeBase, svm.ModeFT} {
			c := Config{
				App: app, Size: SizeSmall, Mode: mode,
				Tier: TierXLarge, ThreadsPerNode: 1, AuditStride: 1 << 16,
			}
			if mode == svm.ModeFT {
				c.KillKind, c.KillVictim, c.KillSeq = "release.done", 256, 2
			}
			cells = append(cells, c)
		}
	}
	for i, r := range RunGrid(cells) {
		if r.Err != nil {
			t.Errorf("%s/%s xlarge tier: %v", cells[i].App, cells[i].Mode, r.Err)
			continue
		}
		if cells[i].KillKind != "" && r.Phase.KillNs == 0 {
			t.Errorf("%s/%s xlarge tier: kill never fired", cells[i].App, cells[i].Mode)
		}
	}
}

package harness

import "testing"

func TestHomeDiffFractionPaperSize(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-size run")
	}
	st := statsFor(t, "watersp", SizePaper)
	t.Logf("watersp paper-size home-diff fraction: %.1f%%", 100*st.HomeDiffFraction())
	if st.HomeDiffFraction() < 0.93 {
		t.Errorf("watersp home-diff fraction %.2f at paper size, want > 0.93 (paper: >99%%)", st.HomeDiffFraction())
	}
}

package mem

import "math/bits"

// Dirty-chunk tracking.
//
// The SVM layer observes every write through the software page table, so
// instead of rediscovering the write set by scanning whole pages at diff
// time, the page table records — at write time — which fixed-size chunks
// of the page were touched during the interval. Diff computation then
// restricts the word-compare scan to dirty chunks: a word outside every
// dirty chunk was never written, so it cannot differ from the twin, and
// the tracked scan provably emits the same runs as the full scan.
//
// The same bitmap drives partial twins: a chunk is snapshotted into the
// twin at the moment it is first dirtied (MarkAndSnapshot), so the twin
// is only valid — and only ever read — inside dirty chunks.

const (
	// ChunkBytes is the tracking granularity. 64 bytes keeps the bitmap
	// at one uint64 per 4 KiB page while still skipping almost the whole
	// page for lock-grained sparse writers.
	ChunkBytes = 64
	// ChunkShift is log2(ChunkBytes).
	ChunkShift = 6
)

// MaskWords returns the number of uint64 words needed to hold one dirty
// bit per chunk of a page of the given size.
func MaskWords(pageSize int) int {
	chunks := (pageSize + ChunkBytes - 1) >> ChunkShift
	return (chunks + 63) / 64
}

// MarkRange sets the dirty bits of every chunk overlapped by [off, off+n).
func MarkRange(mask []uint64, off, n int) {
	if n <= 0 {
		return
	}
	first := off >> ChunkShift
	last := (off + n - 1) >> ChunkShift
	fw, lw := first>>6, last>>6
	fb, lb := uint(first&63), uint(last&63)
	if fw == lw {
		mask[fw] |= (^uint64(0) << fb) & (^uint64(0) >> (63 - lb))
		return
	}
	mask[fw] |= ^uint64(0) << fb
	for w := fw + 1; w < lw; w++ {
		mask[w] = ^uint64(0)
	}
	mask[lw] |= ^uint64(0) >> (63 - lb)
}

// MarkAndSnapshot marks the chunks overlapped by [off, off+n) dirty and,
// for each chunk not already dirty, first copies its current contents
// from src into dst — the lazy, chunk-granular twin: call it immediately
// before mutating src and dst accumulates exactly the pre-write image of
// every dirty chunk. Returns the number of bytes snapshotted (zero on the
// steady-state path where the written chunks are already dirty).
func MarkAndSnapshot(mask []uint64, dst, src []byte, off, n int) int {
	if n <= 0 {
		return 0
	}
	first := off >> ChunkShift
	last := (off + n - 1) >> ChunkShift
	copied := 0
	for c := first; c <= last; c++ {
		w, bit := c>>6, uint64(1)<<(uint(c)&63)
		if mask[w]&bit != 0 {
			continue
		}
		mask[w] |= bit
		lo := c << ChunkShift
		hi := lo + ChunkBytes
		if hi > len(src) {
			hi = len(src)
		}
		copied += copy(dst[lo:hi], src[lo:hi])
	}
	return copied
}

// CopyMasked copies only the dirty chunks from src into dst (both page
// size) and returns the number of bytes copied — rebuilding a partial
// twin for an already-known dirty set (fetch-merge replay).
func CopyMasked(dst, src []byte, mask []uint64) int {
	copied := 0
	maskRuns(mask, len(src), func(lo, hi int) {
		copied += copy(dst[lo:hi], src[lo:hi])
	})
	return copied
}

// MaskEmpty reports whether no chunk is marked dirty.
func MaskEmpty(mask []uint64) bool {
	for _, w := range mask {
		if w != 0 {
			return false
		}
	}
	return true
}

// MaskCount returns the number of dirty chunks.
func MaskCount(mask []uint64) int {
	n := 0
	for _, w := range mask {
		n += bits.OnesCount64(w)
	}
	return n
}

// MaskRuns calls fn(lo, hi) for each maximal byte range of consecutive
// dirty chunks, in order, clamped to limit — for callers that restrict
// their own per-word bookkeeping to the write set.
func MaskRuns(mask []uint64, limit int, fn func(lo, hi int)) {
	maskRuns(mask, limit, fn)
}

// maskRuns calls fn(lo, hi) for each maximal run of consecutive dirty
// chunks, as a byte range clamped to limit. Runs are visited in order.
func maskRuns(mask []uint64, limit int, fn func(lo, hi int)) {
	nchunks := len(mask) << 6
	start := -1 // first chunk of the current run, or -1
	for c := 0; c < nchunks; {
		w := mask[c>>6] >> (uint(c) & 63) // bit 0 = chunk c
		if start < 0 {
			if w == 0 { // rest of this mask word is clean
				c = (c>>6 + 1) << 6
				continue
			}
			c += bits.TrailingZeros64(w)
			start = c
			continue
		}
		z := bits.TrailingZeros64(^w) // consecutive dirty chunks from c
		if z > 0 {
			c += z // may reach the word boundary; re-enter to continue the run
			continue
		}
		fnClamped(fn, start<<ChunkShift, c<<ChunkShift, limit)
		start = -1
	}
	if start >= 0 {
		fnClamped(fn, start<<ChunkShift, nchunks<<ChunkShift, limit)
	}
}

func fnClamped(fn func(lo, hi int), lo, hi, limit int) {
	if lo >= limit {
		return
	}
	if hi > limit {
		hi = limit
	}
	fn(lo, hi)
}

// appendTrackedSpans is appendSpans restricted to dirty chunks: each
// maximal run of dirty chunks is scanned independently. Spans never merge
// across a clean chunk — correct, because the words in a clean chunk were
// never written and therefore equal the twin, so the full scan would have
// split there too.
func appendTrackedSpans(spans []span, twin, cur []byte, word int, mask []uint64) []span {
	maskRuns(mask, len(cur), func(lo, hi int) {
		// Chunk boundaries are word-aligned for the supported word sizes
		// (word divides ChunkBytes); re-align defensively for any word
		// size CheckGeometry admits.
		lo -= lo % word
		if r := hi % word; r != 0 && hi < len(cur) {
			hi += word - r
			if hi > len(cur) {
				hi = len(cur)
			}
		}
		spans = appendSpansRange(spans, twin, cur, word, lo, hi)
	})
	return spans
}

// ComputeTracked is Compute restricted to the dirty chunks recorded in
// mask. A nil mask means "untracked" and falls back to the full scan.
// For any mask that covers the true write set, the output is identical
// to Compute's (verified by differential fuzz tests).
func ComputeTracked(twin, cur []byte, word int, mask []uint64) []Run {
	if mask == nil {
		return Compute(twin, cur, word)
	}
	checkComputeArgs(twin, cur, word)
	buf := GetDiffBuf()
	buf.spans = appendTrackedSpans(buf.spans[:0], twin, cur, word, mask)
	runs := cloneSpans(buf.spans, cur)
	buf.Release()
	return runs
}

// ComputeTrackedInto is ComputeInto restricted to the dirty chunks in
// mask; nil mask falls back to the full scan. See DiffBuf for the
// storage-lifetime contract.
func ComputeTrackedInto(buf *DiffBuf, twin, cur []byte, word int, mask []uint64) []Run {
	if mask == nil {
		return ComputeInto(buf, twin, cur, word)
	}
	checkComputeArgs(twin, cur, word)
	buf.spans = appendTrackedSpans(buf.spans[:0], twin, cur, word, mask)
	return buf.materialize(cur)
}

// ApplyMasked writes only the portions of the runs that fall inside dirty
// chunks. A partial twin is valid only inside its dirty chunks, so a diff
// patched onto it must skip everything else (clean chunks snapshot later,
// from a working copy that already has the diff applied). A nil mask
// applies the whole diff.
func (d *Diff) ApplyMasked(dst []byte, mask []uint64) {
	if mask == nil {
		d.Apply(dst)
		return
	}
	for _, r := range d.Runs {
		off := r.Off
		data := r.Data
		for len(data) > 0 {
			c := off >> ChunkShift
			n := (c+1)<<ChunkShift - off
			if n > len(data) {
				n = len(data)
			}
			if mask[c>>6]&(uint64(1)<<(uint(c)&63)) != 0 {
				copy(dst[off:off+n], data[:n])
			}
			off += n
			data = data[n:]
		}
	}
}

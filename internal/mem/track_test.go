package mem

import (
	"bytes"
	"math/rand"
	"testing"
)

// trackedState is the write-time view the SVM page table maintains: the
// current page contents, a partial twin holding pre-write images of dirty
// chunks only (garbage elsewhere), the dirty mask, and — for the test's
// benefit — the full twin a non-tracking implementation would have taken.
type trackedState struct {
	cur, partial, full []byte
	mask               []uint64
}

func newTrackedState(rng *rand.Rand, size int) *trackedState {
	s := &trackedState{
		cur:     make([]byte, size),
		partial: make([]byte, size),
		full:    make([]byte, size),
		mask:    make([]uint64, MaskWords(size)),
	}
	rng.Read(s.cur)
	copy(s.full, s.cur)
	// The partial twin starts as garbage: only snapshotted chunks may be
	// read, so the tracked scan must be insensitive to these bytes.
	rng.Read(s.partial)
	return s
}

// write performs one tracked write of n bytes at off: snapshot-before-dirty,
// then mutate. Zero-byte XORs are avoided so every write really modifies.
func (s *trackedState) write(rng *rand.Rand, off, n int) {
	MarkAndSnapshot(s.mask, s.partial, s.cur, off, n)
	for i := off; i < off+n; i++ {
		s.cur[i] ^= byte(1 + rng.Intn(255))
	}
}

// writeSame performs a tracked write that stores the value already present
// (chunks become dirty, contents do not change) — the tracked scan must
// still match the full scan, which sees no difference.
func (s *trackedState) writeSame(off, n int) {
	MarkAndSnapshot(s.mask, s.partial, s.cur, off, n)
}

// TestComputeTrackedMatchesFull is the core differential property: for
// random write sets, the tracked scan over the partial twin equals the
// full scan over the full twin — including sizes that exercise the
// byte-wise tail, both word sizes, writes straddling chunk boundaries,
// and dirty-but-unmodified chunks.
func TestComputeTrackedMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sizes := []int{64, 100, 192, 4092, 4096, 4100, 16384}
	for _, size := range sizes {
		for _, word := range []int{4, 8} {
			if size%word != 0 && size != 100 && size != 4092 && size != 4100 {
				continue
			}
			for iter := 0; iter < 20; iter++ {
				s := newTrackedState(rng, size)
				nwrites := rng.Intn(12)
				for i := 0; i < nwrites; i++ {
					n := 1 + rng.Intn(2*ChunkBytes) // up to 2 chunks + straddle
					off := rng.Intn(size)
					if off+n > size {
						n = size - off
					}
					if rng.Intn(4) == 0 {
						s.writeSame(off, n)
					} else {
						s.write(rng, off, n)
					}
				}
				want := Compute(s.full, s.cur, word)
				got := ComputeTracked(s.partial, s.cur, word, s.mask)
				if !runsEqual(got, want) {
					t.Fatalf("size=%d word=%d iter=%d: tracked %d runs, full %d runs",
						size, word, iter, len(got), len(want))
				}
				buf := GetDiffBuf()
				got2 := ComputeTrackedInto(buf, s.partial, s.cur, word, s.mask)
				if !runsEqual(got2, want) {
					t.Fatalf("size=%d word=%d iter=%d: ComputeTrackedInto diverges", size, word, iter)
				}
				buf.Release()
			}
		}
	}
}

// TestComputeTrackedNilMask pins the untracked fallback: a nil mask means
// full scan, bit for bit.
func TestComputeTrackedNilMask(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	twin := make([]byte, 4096)
	rng.Read(twin)
	cur := append([]byte(nil), twin...)
	mutate(rng, cur, 4, 50, 0, 4095)
	want := Compute(twin, cur, 4)
	if got := ComputeTracked(twin, cur, 4, nil); !runsEqual(got, want) {
		t.Fatal("ComputeTracked(nil mask) != Compute")
	}
	buf := GetDiffBuf()
	if got := ComputeTrackedInto(buf, twin, cur, 4, nil); !runsEqual(got, want) {
		t.Fatal("ComputeTrackedInto(nil mask) != Compute")
	}
	buf.Release()
}

// TestComputeTrackedGarbageInsensitive re-randomizes the clean chunks of
// the partial twin and re-computes: the output must not move, proving the
// tracked scan never reads outside dirty chunks.
func TestComputeTrackedGarbageInsensitive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	s := newTrackedState(rng, 4096)
	s.write(rng, 130, 7)
	s.write(rng, 1024, 200)
	s.write(rng, 4090, 6)
	first := ComputeTracked(s.partial, s.cur, 4, s.mask)
	for trial := 0; trial < 5; trial++ {
		for c := 0; c < len(s.partial)/ChunkBytes; c++ {
			if s.mask[c>>6]&(1<<(uint(c)&63)) == 0 {
				rng.Read(s.partial[c*ChunkBytes : (c+1)*ChunkBytes])
			}
		}
		if got := ComputeTracked(s.partial, s.cur, 4, s.mask); !runsEqual(got, first) {
			t.Fatalf("trial %d: output depends on clean-chunk twin bytes", trial)
		}
	}
}

// TestMarkRange cross-checks the word-at-a-time bit fill against a naive
// per-chunk loop.
func TestMarkRange(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const size = 16384
	for iter := 0; iter < 500; iter++ {
		off := rng.Intn(size)
		n := rng.Intn(size - off + 1)
		mask := make([]uint64, MaskWords(size))
		MarkRange(mask, off, n)
		want := make([]uint64, MaskWords(size))
		if n > 0 {
			for c := off >> ChunkShift; c <= (off+n-1)>>ChunkShift; c++ {
				want[c>>6] |= 1 << (uint(c) & 63)
			}
		}
		for w := range mask {
			if mask[w] != want[w] {
				t.Fatalf("MarkRange(off=%d n=%d): word %d = %x, want %x", off, n, w, mask[w], want[w])
			}
		}
	}
}

// TestMarkAndSnapshot pins the lazy-twin contract: a chunk is copied
// exactly once (at first dirtying), later writes never re-copy, and the
// copied bytes are the pre-write image.
func TestMarkAndSnapshot(t *testing.T) {
	cur := make([]byte, 256)
	for i := range cur {
		cur[i] = byte(i)
	}
	twin := make([]byte, 256)
	mask := make([]uint64, MaskWords(256))

	if n := MarkAndSnapshot(mask, twin, cur, 60, 8); n != 128 { // straddles chunks 0 and 1
		t.Fatalf("first snapshot copied %d bytes, want 128", n)
	}
	if !bytes.Equal(twin[:128], cur[:128]) {
		t.Fatal("snapshot does not match pre-write image")
	}
	cur[61] = 0xEE
	if n := MarkAndSnapshot(mask, twin, cur, 61, 1); n != 0 {
		t.Fatalf("re-snapshot of dirty chunk copied %d bytes, want 0", n)
	}
	if twin[61] != 61 {
		t.Fatal("re-snapshot overwrote the pre-image")
	}
	if MaskCount(mask) != 2 || MaskEmpty(mask) {
		t.Fatalf("mask count %d, want 2", MaskCount(mask))
	}
	// Tail chunk of a non-chunk-multiple page is clamped.
	smallCur := make([]byte, 100)
	smallTwin := make([]byte, 100)
	smallMask := make([]uint64, MaskWords(100))
	if n := MarkAndSnapshot(smallMask, smallTwin, smallCur, 96, 4); n != 36 {
		t.Fatalf("tail snapshot copied %d bytes, want 36", n)
	}
}

// TestApplyMasked pins masked application: runs land only inside dirty
// chunks; with a nil mask the whole diff lands.
func TestApplyMasked(t *testing.T) {
	mask := make([]uint64, 1)
	MarkRange(mask, 64, 64) // chunk 1 only
	d := &Diff{Runs: []Run{{Off: 60, Data: bytes.Repeat([]byte{0xAB}, 72)}}} // spans chunks 0,1,2
	dst := make([]byte, 256)
	d.ApplyMasked(dst, mask)
	for i := 0; i < 256; i++ {
		want := byte(0)
		if i >= 64 && i < 128 {
			want = 0xAB
		}
		if dst[i] != want {
			t.Fatalf("byte %d = %x, want %x", i, dst[i], want)
		}
	}
	full := make([]byte, 256)
	d.ApplyMasked(full, nil)
	for i := 60; i < 132; i++ {
		if full[i] != 0xAB {
			t.Fatalf("nil mask: byte %d not applied", i)
		}
	}
}

// TestComputeTrackedIntoAllocFree extends the steady-state zero-alloc gate
// to the tracked path.
func TestComputeTrackedIntoAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	s := newTrackedState(rng, 4096)
	s.write(rng, 100, 8)
	s.write(rng, 2000, 64)
	buf := GetDiffBuf()
	ComputeTrackedInto(buf, s.partial, s.cur, 4, s.mask) // warm
	allocs := testing.AllocsPerRun(100, func() {
		if runs := ComputeTrackedInto(buf, s.partial, s.cur, 4, s.mask); len(runs) == 0 {
			t.Fatal("no runs")
		}
	})
	buf.Release()
	if allocs != 0 {
		t.Errorf("ComputeTrackedInto: %v allocs/op, want 0", allocs)
	}
}

// FuzzComputeTrackedMatchesFull drives arbitrary write sets (offset/length
// pairs decoded from the fuzz input) through the tracked and full paths.
func FuzzComputeTrackedMatchesFull(f *testing.F) {
	f.Add([]byte("some-initial-page-bytes-to-seed-the-corpus!!"), []byte{1, 2, 60, 8}, 4)
	f.Add(bytes.Repeat([]byte{7}, 200), []byte{0, 64, 64, 65, 190, 10}, 8)
	f.Fuzz(func(t *testing.T, page []byte, writes []byte, word int) {
		if word != 4 && word != 8 {
			return
		}
		if len(page) < word || len(page) > 1<<15 {
			return
		}
		size := len(page)
		s := &trackedState{
			cur:     append([]byte(nil), page...),
			partial: make([]byte, size),
			full:    append([]byte(nil), page...),
			mask:    make([]uint64, MaskWords(size)),
		}
		for i := range s.partial {
			s.partial[i] = byte(i*37 + 11) // deterministic garbage
		}
		for i := 0; i+1 < len(writes); i += 2 {
			off := int(writes[i]) * size / 256
			n := 1 + int(writes[i+1])%(2*ChunkBytes)
			if off+n > size {
				n = size - off
			}
			if n <= 0 {
				continue
			}
			MarkAndSnapshot(s.mask, s.partial, s.cur, off, n)
			for j := off; j < off+n; j++ {
				s.cur[j] ^= writes[i+1] | 1
			}
		}
		want := Compute(s.full, s.cur, word)
		got := ComputeTracked(s.partial, s.cur, word, s.mask)
		if !runsEqual(got, want) {
			t.Fatalf("tracked diverges: %d runs vs %d (size=%d word=%d)",
				len(got), len(want), size, word)
		}
	})
}

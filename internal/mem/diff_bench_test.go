package mem

import (
	"fmt"
	"testing"
)

// benchPage builds a twin/current pair where frac per mille of the words
// differ, spread uniformly — the diff-computation regimes the protocol
// sees range from a few scattered words (lock-based apps) to fully
// rewritten pages (FFT/LU between barriers).
func benchPage(size, fracPerMille int) (twin, cur []byte) {
	twin = make([]byte, size)
	cur = make([]byte, size)
	for i := range twin {
		twin[i] = byte(i * 31)
	}
	copy(cur, twin)
	words := size / 8
	step := 0
	for w := 0; w < words; w++ {
		step += fracPerMille
		if step >= 1000 {
			step -= 1000
			cur[w*8] ^= 0xff
		}
	}
	return
}

func benchCompute(b *testing.B, fracPerMille int) {
	twin, cur := benchPage(4096, fracPerMille)
	b.SetBytes(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runs := Compute(twin, cur, 8)
		if fracPerMille > 0 && len(runs) == 0 {
			b.Fatal("no runs")
		}
	}
}

func BenchmarkComputeClean(b *testing.B)  { benchCompute(b, 0) }
func BenchmarkComputeSparse(b *testing.B) { benchCompute(b, 20) }
func BenchmarkComputeHalf(b *testing.B)   { benchCompute(b, 500) }
func BenchmarkComputeFull(b *testing.B)   { benchCompute(b, 1000) }

// BenchmarkDiff covers the three write regimes the protocol produces —
// untouched pages (the bytes.Equal early-out), sparse lock-protected
// updates, and densely rewritten pages — at the default 4 KB page and a
// 16 KB page (the -ablation pagesize sweep's largest granularity).
func BenchmarkDiff(b *testing.B) {
	regimes := []struct {
		name string
		frac int
	}{
		{"untouched", 0},
		{"sparse", 20},
		{"dense", 500},
	}
	for _, size := range []int{4096, 16384} {
		for _, rg := range regimes {
			size, frac := size, rg.frac
			b.Run(fmt.Sprintf("%s/%dB", rg.name, size), func(b *testing.B) {
				twin, cur := benchPage(size, frac)
				b.SetBytes(int64(size))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					runs := Compute(twin, cur, 8)
					if frac > 0 && len(runs) == 0 {
						b.Fatal("no runs")
					}
				}
			})
		}
	}
}

// BenchmarkDiffPooled is the fault path's shape: compute into a pooled
// DiffBuf, consume, release. Steady state must report 0 allocs/op.
func BenchmarkDiffPooled(b *testing.B) {
	for _, size := range []int{4096, 16384} {
		size := size
		b.Run(fmt.Sprintf("sparse/%dB", size), func(b *testing.B) {
			twin, cur := benchPage(size, 20)
			// Warm the pool so the measured loop is the steady state.
			warm := GetDiffBuf()
			ComputeInto(warm, twin, cur, 8)
			warm.Release()
			b.SetBytes(int64(size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf := GetDiffBuf()
				runs := ComputeInto(buf, twin, cur, 8)
				if len(runs) == 0 {
					b.Fatal("no runs")
				}
				buf.Release()
			}
		})
	}
}

func BenchmarkApply(b *testing.B) {
	twin, cur := benchPage(4096, 200)
	d := &Diff{Page: 0, Runs: Compute(twin, cur, 8)}
	dst := make([]byte, 4096)
	copy(dst, twin)
	b.SetBytes(int64(d.DataBytes()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Apply(dst)
	}
}

func BenchmarkClone(b *testing.B) {
	twin, cur := benchPage(4096, 200)
	d := &Diff{Page: 0, Runs: Compute(twin, cur, 8)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if c := d.Clone(); c.Empty() {
			b.Fatal("empty clone")
		}
	}
}

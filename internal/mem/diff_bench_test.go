package mem

import "testing"

// benchPage builds a twin/current pair where frac per mille of the words
// differ, spread uniformly — the diff-computation regimes the protocol
// sees range from a few scattered words (lock-based apps) to fully
// rewritten pages (FFT/LU between barriers).
func benchPage(size, fracPerMille int) (twin, cur []byte) {
	twin = make([]byte, size)
	cur = make([]byte, size)
	for i := range twin {
		twin[i] = byte(i * 31)
	}
	copy(cur, twin)
	words := size / 8
	step := 0
	for w := 0; w < words; w++ {
		step += fracPerMille
		if step >= 1000 {
			step -= 1000
			cur[w*8] ^= 0xff
		}
	}
	return
}

func benchCompute(b *testing.B, fracPerMille int) {
	twin, cur := benchPage(4096, fracPerMille)
	b.SetBytes(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runs := Compute(twin, cur, 8)
		if fracPerMille > 0 && len(runs) == 0 {
			b.Fatal("no runs")
		}
	}
}

func BenchmarkComputeClean(b *testing.B)  { benchCompute(b, 0) }
func BenchmarkComputeSparse(b *testing.B) { benchCompute(b, 20) }
func BenchmarkComputeHalf(b *testing.B)   { benchCompute(b, 500) }
func BenchmarkComputeFull(b *testing.B)   { benchCompute(b, 1000) }

func BenchmarkApply(b *testing.B) {
	twin, cur := benchPage(4096, 200)
	d := &Diff{Page: 0, Runs: Compute(twin, cur, 8)}
	dst := make([]byte, 4096)
	copy(dst, twin)
	b.SetBytes(int64(d.DataBytes()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Apply(dst)
	}
}

func BenchmarkClone(b *testing.B) {
	twin, cur := benchPage(4096, 200)
	d := &Diff{Page: 0, Runs: Compute(twin, cur, 8)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if c := d.Clone(); c.Empty() {
			b.Fatal("empty clone")
		}
	}
}

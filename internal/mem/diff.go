// Package mem implements the page-level memory primitives of the SVM
// system: twins, word-granularity diffs, and their wire-size accounting.
//
// Diffs are the multiple-writer mechanism of lazy release consistency: a
// writer compares the current page contents against the twin (the copy
// taken before its first write in the interval) and ships only the
// modified words, so writers of disjoint parts of one page never conflict.
//
// Diff creation sits on the protocol's per-release fast path (twice per
// release in the extended protocol), so Compute scans pages eight bytes
// at a time with an early-out for unmodified pages, and ComputeInto
// recycles all of its storage through a sync.Pool for diffs that do not
// outlive their use site.
package mem

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
)

// Run is one contiguous modified region of a page.
type Run struct {
	Off  int
	Data []byte
}

// Diff is the set of modifications a node made to one page during an
// interval, relative to the page's twin.
type Diff struct {
	Page int
	Runs []Run
}

// runHeaderBytes approximates the wire encoding overhead of one run
// (offset + length).
const runHeaderBytes = 8

// diffHeaderBytes approximates the wire encoding overhead of one diff
// (page id + run count + protocol tag).
const diffHeaderBytes = 16

// CheckGeometry validates a page/word-size pair for diffing: the word
// size must be positive and divide the page size, or the final partial
// word of every page would be silently mis-diffed. Constructors (the
// model config, the SVM page table) call this before building state.
func CheckGeometry(pageSize, wordSize int) error {
	switch {
	case wordSize <= 0:
		return fmt.Errorf("mem: WordSize = %d, need > 0", wordSize)
	case pageSize < wordSize:
		return fmt.Errorf("mem: PageSize %d smaller than WordSize %d", pageSize, wordSize)
	case pageSize%wordSize != 0:
		return fmt.Errorf("mem: PageSize %d not a multiple of WordSize %d", pageSize, wordSize)
	}
	return nil
}

// span is one contiguous modified byte range [off, end) of a page,
// recorded before any payload is copied.
type span struct {
	off, end int
}

// appendSpans scans twin against cur with word granularity and appends
// the modified ranges to spans, merging adjacent modified words. The hot
// loop compares eight-byte chunks (a single load each on little-endian
// hardware); only chunks that differ are re-examined per word. The tail —
// pages not a multiple of 8, or word sizes other than 4/8 — falls back to
// the byte-wise word compare.
func appendSpans(spans []span, twin, cur []byte, word int) []span {
	n := len(cur)
	start := -1
	off := 0
	if word == 8 || word == 4 {
		for ; off+8 <= n; off += 8 {
			if binary.LittleEndian.Uint64(twin[off:]) == binary.LittleEndian.Uint64(cur[off:]) {
				if start >= 0 {
					spans = append(spans, span{start, off})
					start = -1
				}
				continue
			}
			if word == 8 {
				if start < 0 {
					start = off
				}
				continue
			}
			// word == 4: the differing chunk holds two words; resolve each.
			for w := off; w < off+8; w += 4 {
				if binary.LittleEndian.Uint32(twin[w:]) == binary.LittleEndian.Uint32(cur[w:]) {
					if start >= 0 {
						spans = append(spans, span{start, w})
						start = -1
					}
				} else if start < 0 {
					start = w
				}
			}
		}
	}
	for ; off < n; off += word {
		end := off + word
		if end > n {
			end = n
		}
		if bytes.Equal(twin[off:end], cur[off:end]) {
			if start >= 0 {
				spans = append(spans, span{start, off})
				start = -1
			}
		} else if start < 0 {
			start = off
		}
	}
	if start >= 0 {
		spans = append(spans, span{start, n})
	}
	return spans
}

// appendSpansRange scans only [lo, hi) of the pair, emitting spans with
// page-absolute offsets. lo must be word-aligned (the tracked caller
// aligns chunk boundaries before calling).
func appendSpansRange(spans []span, twin, cur []byte, word, lo, hi int) []span {
	base := len(spans)
	spans = appendSpans(spans, twin[lo:hi], cur[lo:hi], word)
	for i := base; i < len(spans); i++ {
		spans[i].off += lo
		spans[i].end += lo
	}
	return spans
}

// DiffBuf is reusable storage for diff computation: the span scratch, the
// run headers, and one payload arena all runs point into. Obtain one with
// GetDiffBuf, compute with ComputeInto, and Release it when the resulting
// runs are no longer referenced. Runs produced through a DiffBuf are valid
// only until the next ComputeInto on the same buffer or its Release —
// diffs that escape (shipped in messages, stashed for recovery) must use
// Compute, which hands out independent storage.
type DiffBuf struct {
	spans []span
	runs  []Run
	data  []byte
}

var diffBufPool = sync.Pool{New: func() any { return new(DiffBuf) }}

// GetDiffBuf returns a pooled DiffBuf.
func GetDiffBuf() *DiffBuf { return diffBufPool.Get().(*DiffBuf) }

// Release returns the buffer (and every Run it produced) to the pool.
func (b *DiffBuf) Release() { diffBufPool.Put(b) }

// ComputeInto is Compute with caller-managed storage: run headers and
// payload bytes live in buf and are reused across calls, so a steady-state
// compute/apply/discard cycle allocates nothing. See DiffBuf for the
// lifetime contract.
func ComputeInto(buf *DiffBuf, twin, cur []byte, word int) []Run {
	checkComputeArgs(twin, cur, word)
	buf.spans = appendSpans(buf.spans[:0], twin, cur, word)
	return buf.materialize(cur)
}

// materialize copies the spanned regions of cur into the buffer's arena
// and returns the run slice describing them.
func (b *DiffBuf) materialize(cur []byte) []Run {
	if len(b.spans) == 0 {
		return nil
	}
	total := 0
	for _, s := range b.spans {
		total += s.end - s.off
	}
	if cap(b.data) < total {
		b.data = make([]byte, total)
	}
	arena := b.data[:0]
	if cap(b.runs) < len(b.spans) {
		b.runs = make([]Run, len(b.spans))
	}
	runs := b.runs[:len(b.spans)]
	for i, s := range b.spans {
		p := len(arena)
		arena = append(arena, cur[s.off:s.end]...)
		runs[i] = Run{Off: s.off, Data: arena[p:len(arena):len(arena)]}
	}
	return runs
}

func checkComputeArgs(twin, cur []byte, word int) {
	if len(twin) != len(cur) {
		panic("mem: twin/current length mismatch")
	}
	if word <= 0 {
		panic("mem: non-positive word size")
	}
}

// Compute compares cur against twin with word granularity and returns the
// modified regions, merging adjacent modified words into single runs. The
// two slices must have equal length; a final partial word (length not a
// multiple of word) is compared over its remaining bytes. The returned
// runs hold copies of cur's data — one arena allocation for the whole
// diff — so cur may keep changing afterwards and the runs may be retained
// indefinitely (messages, recovery stashes).
func Compute(twin, cur []byte, word int) []Run {
	checkComputeArgs(twin, cur, word)
	buf := GetDiffBuf()
	buf.spans = appendSpans(buf.spans[:0], twin, cur, word)
	runs := cloneSpans(buf.spans, cur)
	buf.Release()
	return runs
}

// cloneSpans copies the spanned regions of cur into one fresh arena and
// returns independent runs (nil when spans is empty).
func cloneSpans(spans []span, cur []byte) []Run {
	if len(spans) == 0 {
		return nil
	}
	total := 0
	for _, s := range spans {
		total += s.end - s.off
	}
	arena := make([]byte, 0, total)
	runs := make([]Run, len(spans))
	for i, s := range spans {
		p := len(arena)
		arena = append(arena, cur[s.off:s.end]...)
		runs[i] = Run{Off: s.off, Data: arena[p:len(arena):len(arena)]}
	}
	return runs
}

// Apply writes the runs into dst.
func (d *Diff) Apply(dst []byte) {
	for _, r := range d.Runs {
		copy(dst[r.Off:], r.Data)
	}
}

// DataBytes returns the number of payload bytes carried by the diff.
func (d *Diff) DataBytes() int {
	n := 0
	for _, r := range d.Runs {
		n += len(r.Data)
	}
	return n
}

// WireBytes returns the modeled on-the-wire size of the diff, including
// run and diff headers.
func (d *Diff) WireBytes() int {
	return diffHeaderBytes + len(d.Runs)*runHeaderBytes + d.DataBytes()
}

// Empty reports whether the diff carries no modifications.
func (d *Diff) Empty() bool { return len(d.Runs) == 0 }

// Clone returns a deep copy of the diff, so the original can be retained
// locally (the extended protocol stores diffs between its two propagation
// phases) while a copy travels.
func (d *Diff) Clone() *Diff {
	c := &Diff{Page: d.Page, Runs: make([]Run, len(d.Runs))}
	total := 0
	for _, r := range d.Runs {
		total += len(r.Data)
	}
	arena := make([]byte, 0, total)
	for i, r := range d.Runs {
		p := len(arena)
		arena = append(arena, r.Data...)
		c.Runs[i] = Run{Off: r.Off, Data: arena[p:len(arena):len(arena)]}
	}
	return c
}

// FirstOff returns the offset of the first run, or -1 for an empty diff
// (diagnostic helper).
func (d *Diff) FirstOff() int {
	if len(d.Runs) == 0 {
		return -1
	}
	return d.Runs[0].Off
}

// Package mem implements the page-level memory primitives of the SVM
// system: twins, word-granularity diffs, and their wire-size accounting.
//
// Diffs are the multiple-writer mechanism of lazy release consistency: a
// writer compares the current page contents against the twin (the copy
// taken before its first write in the interval) and ships only the
// modified words, so writers of disjoint parts of one page never conflict.
package mem

// Run is one contiguous modified region of a page.
type Run struct {
	Off  int
	Data []byte
}

// Diff is the set of modifications a node made to one page during an
// interval, relative to the page's twin.
type Diff struct {
	Page int
	Runs []Run
}

// runHeaderBytes approximates the wire encoding overhead of one run
// (offset + length).
const runHeaderBytes = 8

// diffHeaderBytes approximates the wire encoding overhead of one diff
// (page id + run count + protocol tag).
const diffHeaderBytes = 16

// Compute compares cur against twin with word granularity and returns the
// modified regions, merging adjacent modified words into single runs. The
// two slices must have equal length, a multiple of word. The returned runs
// hold copies of cur's data, so cur may keep changing afterwards.
func Compute(twin, cur []byte, word int) []Run {
	if len(twin) != len(cur) {
		panic("mem: twin/current length mismatch")
	}
	var runs []Run
	start := -1
	for off := 0; off <= len(cur); off += word {
		same := off == len(cur) || wordEqual(twin, cur, off, word)
		switch {
		case !same && start < 0:
			start = off
		case same && start >= 0:
			data := make([]byte, off-start)
			copy(data, cur[start:off])
			runs = append(runs, Run{Off: start, Data: data})
			start = -1
		}
	}
	return runs
}

func wordEqual(a, b []byte, off, word int) bool {
	for i := off; i < off+word && i < len(a); i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Apply writes the runs into dst.
func (d *Diff) Apply(dst []byte) {
	for _, r := range d.Runs {
		copy(dst[r.Off:], r.Data)
	}
}

// DataBytes returns the number of payload bytes carried by the diff.
func (d *Diff) DataBytes() int {
	n := 0
	for _, r := range d.Runs {
		n += len(r.Data)
	}
	return n
}

// WireBytes returns the modeled on-the-wire size of the diff, including
// run and diff headers.
func (d *Diff) WireBytes() int {
	return diffHeaderBytes + len(d.Runs)*runHeaderBytes + d.DataBytes()
}

// Empty reports whether the diff carries no modifications.
func (d *Diff) Empty() bool { return len(d.Runs) == 0 }

// Clone returns a deep copy of the diff, so the original can be retained
// locally (the extended protocol stores diffs between its two propagation
// phases) while a copy travels.
func (d *Diff) Clone() *Diff {
	c := &Diff{Page: d.Page, Runs: make([]Run, len(d.Runs))}
	for i, r := range d.Runs {
		data := make([]byte, len(r.Data))
		copy(data, r.Data)
		c.Runs[i] = Run{Off: r.Off, Data: data}
	}
	return c
}

// FirstOff returns the offset of the first run, or -1 for an empty diff
// (diagnostic helper).
func (d *Diff) FirstOff() int {
	if len(d.Runs) == 0 {
		return -1
	}
	return d.Runs[0].Off
}

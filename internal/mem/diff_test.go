package mem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestComputeEmpty(t *testing.T) {
	a := make([]byte, 64)
	b := make([]byte, 64)
	if runs := Compute(a, b, 4); len(runs) != 0 {
		t.Fatalf("identical pages produced %d runs", len(runs))
	}
}

func TestComputeSingleWord(t *testing.T) {
	twin := make([]byte, 64)
	cur := make([]byte, 64)
	cur[17] = 9 // inside word starting at 16
	runs := Compute(twin, cur, 4)
	if len(runs) != 1 || runs[0].Off != 16 || len(runs[0].Data) != 4 {
		t.Fatalf("runs = %+v, want one 4-byte run at 16", runs)
	}
}

func TestComputeMergesAdjacent(t *testing.T) {
	twin := make([]byte, 64)
	cur := make([]byte, 64)
	for i := 8; i < 24; i++ {
		cur[i] = 1
	}
	runs := Compute(twin, cur, 4)
	if len(runs) != 1 || runs[0].Off != 8 || len(runs[0].Data) != 16 {
		t.Fatalf("runs = %+v, want one merged run [8,24)", runs)
	}
}

func TestComputeTailModified(t *testing.T) {
	twin := make([]byte, 32)
	cur := make([]byte, 32)
	cur[31] = 5
	runs := Compute(twin, cur, 4)
	if len(runs) != 1 || runs[0].Off != 28 || len(runs[0].Data) != 4 {
		t.Fatalf("runs = %+v, want run covering final word", runs)
	}
}

func TestComputeCopiesData(t *testing.T) {
	twin := make([]byte, 16)
	cur := make([]byte, 16)
	cur[0] = 1
	runs := Compute(twin, cur, 4)
	cur[0] = 99 // mutate after Compute
	if runs[0].Data[0] != 1 {
		t.Fatal("Compute aliased the live page instead of copying")
	}
}

// Property: applying Compute(twin, cur) to a copy of twin reproduces cur.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, nWordsRaw uint8, nMutsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nWords := int(nWordsRaw%64) + 1
		size := nWords * 4
		twin := make([]byte, size)
		rng.Read(twin)
		cur := make([]byte, size)
		copy(cur, twin)
		for i := 0; i < int(nMutsRaw); i++ {
			cur[rng.Intn(size)] = byte(rng.Intn(256))
		}
		d := Diff{Page: 0, Runs: Compute(twin, cur, 4)}
		got := make([]byte, size)
		copy(got, twin)
		d.Apply(got)
		return bytes.Equal(got, cur)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: two writers modifying disjoint word ranges of the same page
// merge to the union regardless of application order (the multiple-writer
// guarantee).
func TestDisjointWritersMergeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const size = 256
		base := make([]byte, size)
		rng.Read(base)

		// Writer A mutates even words, writer B odd words.
		curA := append([]byte(nil), base...)
		curB := append([]byte(nil), base...)
		for w := 0; w < size/4; w++ {
			if rng.Intn(2) == 0 {
				continue
			}
			tgt := curA
			if w%2 == 1 {
				tgt = curB
			}
			for i := 0; i < 4; i++ {
				tgt[w*4+i] = byte(rng.Intn(256))
			}
		}
		dA := Diff{Runs: Compute(base, curA, 4)}
		dB := Diff{Runs: Compute(base, curB, 4)}

		home1 := append([]byte(nil), base...)
		dA.Apply(home1)
		dB.Apply(home1)
		home2 := append([]byte(nil), base...)
		dB.Apply(home2)
		dA.Apply(home2)

		if !bytes.Equal(home1, home2) {
			return false
		}
		// The merge must contain both writers' updates.
		for w := 0; w < size/4; w++ {
			want := curA
			if w%2 == 1 {
				want = curB
			}
			if !bytes.Equal(home1[w*4:w*4+4], want[w*4:w*4+4]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWireBytes(t *testing.T) {
	d := Diff{Runs: []Run{{Off: 0, Data: make([]byte, 12)}, {Off: 40, Data: make([]byte, 4)}}}
	if d.DataBytes() != 16 {
		t.Fatalf("DataBytes = %d", d.DataBytes())
	}
	if d.WireBytes() != diffHeaderBytes+2*runHeaderBytes+16 {
		t.Fatalf("WireBytes = %d", d.WireBytes())
	}
	if d.Empty() {
		t.Fatal("non-empty diff reported Empty")
	}
}

func TestClone(t *testing.T) {
	d := Diff{Page: 3, Runs: []Run{{Off: 4, Data: []byte{1, 2, 3, 4}}}}
	c := d.Clone()
	c.Runs[0].Data[0] = 99
	if d.Runs[0].Data[0] != 1 {
		t.Fatal("Clone shares data with original")
	}
	if c.Page != 3 || c.Runs[0].Off != 4 {
		t.Fatalf("clone mismatch: %+v", c)
	}
}

func TestComputeMismatchedLengthsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched lengths")
		}
	}()
	Compute(make([]byte, 8), make([]byte, 16), 4)
}

package mem

import (
	"fmt"
	"testing"
)

// BenchmarkDiffTracked measures the full per-interval twin+diff cost of
// both strategies on the two write patterns the protocol distinguishes:
//
//   - sparse: a handful of word writes clustered in a few chunks, the
//     Water-Nsq lock-grained pattern. Tracking snapshots only the touched
//     chunks and restricts the diff scan to them.
//   - dense: every word rewritten, the FFT/LU whole-page pattern between
//     barriers. Tracking devolves to a full twin and full scan (the SVM
//     layer's dense-page adaptation takes the same shortcut), so the win
//     here is bounded and the benchmark guards against regression instead.
//
// Each iteration replays the interval lifecycle: take the twin (lazily via
// MarkAndSnapshot for tracked, a whole-page copy for full), apply the
// writes, and compute the diff into pooled storage.
func BenchmarkDiffTracked(b *testing.B) {
	patterns := []struct {
		name   string
		sparse bool
	}{{"sparse", true}, {"dense", false}}
	for _, size := range []int{4096, 16384} {
		for _, pat := range patterns {
			for _, tracked := range []bool{true, false} {
				strategy := "full"
				if tracked {
					strategy = "tracked"
				}
				b.Run(fmt.Sprintf("%s/%dB/%s", pat.name, size, strategy), func(b *testing.B) {
					cur := make([]byte, size)
					for i := range cur {
						cur[i] = byte(i * 31)
					}
					twin := make([]byte, size)
					mask := make([]uint64, MaskWords(size))
					// Offsets written each interval.
					var writes []int
					if pat.sparse {
						// 8 words spread over 2 chunks.
						for i := 0; i < 8; i++ {
							writes = append(writes, i*8+(i%2)*ChunkBytes*3)
						}
					} else {
						for off := 0; off < size; off += 8 {
							writes = append(writes, off)
						}
					}
					buf := GetDiffBuf()
					defer buf.Release()
					b.SetBytes(int64(size))
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						var runs []Run
						if tracked {
							for j := range mask {
								mask[j] = 0
							}
							for _, off := range writes {
								MarkAndSnapshot(mask, twin, cur, off, 8)
								cur[off] ^= 0xff
							}
							runs = ComputeTrackedInto(buf, twin, cur, 8, mask)
						} else {
							copy(twin, cur)
							for _, off := range writes {
								cur[off] ^= 0xff
							}
							runs = ComputeInto(buf, twin, cur, 8)
						}
						if len(runs) == 0 {
							b.Fatal("no runs")
						}
					}
				})
			}
		}
	}
}

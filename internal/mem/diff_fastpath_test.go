package mem

import (
	"bytes"
	"math/rand"
	"testing"
)

// computeReference is the straightforward byte-wise word comparison the
// chunked fast path must agree with: one bytes.Equal per word, a final
// partial word compared over its remaining bytes. It intentionally avoids
// every trick the production path uses.
func computeReference(twin, cur []byte, word int) []Run {
	var runs []Run
	n := len(cur)
	start := -1
	for off := 0; off < n; off += word {
		end := off + word
		if end > n {
			end = n
		}
		if bytes.Equal(twin[off:end], cur[off:end]) {
			if start >= 0 {
				runs = append(runs, Run{Off: start, Data: append([]byte(nil), cur[start:off]...)})
				start = -1
			}
		} else if start < 0 {
			start = off
		}
	}
	if start >= 0 {
		runs = append(runs, Run{Off: start, Data: append([]byte(nil), cur[start:n]...)})
	}
	return runs
}

func runsEqual(a, b []Run) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Off != b[i].Off || !bytes.Equal(a[i].Data, b[i].Data) {
			return false
		}
	}
	return true
}

// mutate flips roughly frac per mille of the words of cur, at random
// positions, plus whatever extra positions the caller forces.
func mutate(rng *rand.Rand, cur []byte, word, fracPerMille int, force ...int) {
	for off := 0; off+word <= len(cur); off += word {
		if rng.Intn(1000) < fracPerMille {
			cur[off+rng.Intn(word)] ^= 0x5a
		}
	}
	for _, off := range force {
		cur[off] ^= 0x5a
	}
}

// TestComputeMatchesReference cross-checks the uint64-chunked fast path
// (including its word==4 half-chunk resolution and its byte-wise tail)
// against the naive reference over random mutations, both word sizes, page
// lengths that exercise the tail (multiples of the word but not of 8, and
// lengths with a final partial word), and the all-equal / all-different
// extremes.
func TestComputeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sizes := []int{4, 8, 12, 36, 100, 4092, 4096, 4100, 16384}
	words := []int{4, 8}
	fracs := []int{0, 1, 20, 200, 600, 1000}
	for _, size := range sizes {
		for _, word := range words {
			for _, frac := range fracs {
				if size < word {
					continue
				}
				for iter := 0; iter < 8; iter++ {
					twin := make([]byte, size)
					rng.Read(twin)
					cur := append([]byte(nil), twin...)
					switch frac {
					case 0: // all-equal extreme
					case 1000: // all-different extreme
						for i := range cur {
							cur[i] ^= 0xff
						}
					default:
						mutate(rng, cur, word, frac, 0, size-1)
					}
					want := computeReference(twin, cur, word)
					got := Compute(twin, cur, word)
					if !runsEqual(got, want) {
						t.Fatalf("Compute(size=%d word=%d frac=%d) = %d runs, reference %d runs",
							size, word, frac, len(got), len(want))
					}
					buf := GetDiffBuf()
					got2 := ComputeInto(buf, twin, cur, word)
					if !runsEqual(got2, want) {
						t.Fatalf("ComputeInto(size=%d word=%d frac=%d) diverges from reference",
							size, word, frac)
					}
					buf.Release()
					// Applying the diff to the twin must reconstruct cur.
					if len(want) > 0 {
						d := &Diff{Runs: got}
						dst := append([]byte(nil), twin...)
						d.Apply(dst)
						if !bytes.Equal(dst, cur) {
							t.Fatalf("apply(size=%d word=%d frac=%d) does not reproduce cur",
								size, word, frac)
						}
					}
				}
			}
		}
	}
}

// TestComputeIntoAllocFree pins the steady-state pooled path at zero
// allocations: after the first call sizes the buffer, compute/discard
// cycles must not touch the heap.
func TestComputeIntoAllocFree(t *testing.T) {
	for _, frac := range []int{0, 20, 500} {
		twin, cur := benchPage(4096, frac)
		buf := GetDiffBuf()
		ComputeInto(buf, twin, cur, 4) // warm: size spans/runs/arena
		allocs := testing.AllocsPerRun(100, func() {
			runs := ComputeInto(buf, twin, cur, 4)
			if frac > 0 && len(runs) == 0 {
				t.Fatal("no runs")
			}
		})
		buf.Release()
		if allocs != 0 {
			t.Errorf("ComputeInto(frac=%d): %v allocs/op, want 0", frac, allocs)
		}
	}
}

// TestGetDiffBufReuseAllocFree pins the full pooled cycle (Get, compute,
// Release) at zero steady-state allocations, the shape the fault path uses.
func TestGetDiffBufReuseAllocFree(t *testing.T) {
	twin, cur := benchPage(4096, 200)
	// Warm the pool with one sized buffer.
	b := GetDiffBuf()
	ComputeInto(b, twin, cur, 4)
	b.Release()
	allocs := testing.AllocsPerRun(100, func() {
		buf := GetDiffBuf()
		ComputeInto(buf, twin, cur, 4)
		buf.Release()
	})
	if allocs != 0 {
		t.Errorf("Get/ComputeInto/Release cycle: %v allocs/op, want 0", allocs)
	}
}

func TestCheckGeometry(t *testing.T) {
	cases := []struct {
		page, word int
		ok         bool
	}{
		{4096, 4, true},
		{4096, 8, true},
		{4100, 4, true},
		{16384, 8, true},
		{4, 4, true},
		{4096, 0, false},
		{4096, -4, false},
		{4100, 8, false},
		{2, 4, false},
		{0, 4, false},
	}
	for _, c := range cases {
		err := CheckGeometry(c.page, c.word)
		if (err == nil) != c.ok {
			t.Errorf("CheckGeometry(%d, %d) = %v, want ok=%v", c.page, c.word, err, c.ok)
		}
	}
}

// TestComputeWordSizes keeps a hand-built case per word size, pinning the
// exact run boundaries the chunked path must produce.
func TestComputeWordSizes(t *testing.T) {
	for _, word := range []int{4, 8} {
		twin := make([]byte, 64)
		cur := append([]byte(nil), twin...)
		cur[0] ^= 1             // first word
		cur[2*word] ^= 1        // third word: separate run (one clean word between)
		cur[2*word+word-1] ^= 1 // same word, last byte
		cur[63] ^= 1            // final word
		runs := Compute(twin, cur, word)
		want := []Run{
			{Off: 0, Data: cur[0:word]},
			{Off: 2 * word, Data: cur[2*word : 3*word]},
			{Off: 64 - word, Data: cur[64-word : 64]},
		}
		if !runsEqual(runs, want) {
			var got []int
			for _, r := range runs {
				got = append(got, r.Off, len(r.Data))
			}
			t.Errorf("word=%d: runs %v, want offsets 0,%d,%d", word, got, 2*word, 64-word)
		}
	}
}

// TestComputeAdjacentWordsMerge pins the merge behavior: modified words
// that touch coalesce into one run even across a chunk boundary.
func TestComputeAdjacentWordsMerge(t *testing.T) {
	for _, word := range []int{4, 8} {
		twin := make([]byte, 64)
		cur := append([]byte(nil), twin...)
		for off := 4; off < 28; off++ { // spans chunk boundaries at 8, 16, 24
			cur[off] ^= 0xff
		}
		runs := Compute(twin, cur, word)
		if len(runs) != 1 {
			t.Fatalf("word=%d: %d runs, want 1 merged run", word, len(runs))
		}
		lo := 4 - 4%word
		hi := 28
		if rem := hi % word; rem != 0 {
			hi += word - rem
		}
		if runs[0].Off != lo || len(runs[0].Data) != hi-lo {
			t.Errorf("word=%d: run [%d,%d), want [%d,%d)",
				word, runs[0].Off, runs[0].Off+len(runs[0].Data), lo, hi)
		}
	}
}

// FuzzComputeMatchesReference feeds arbitrary twin bytes and mutation masks
// through both implementations.
func FuzzComputeMatchesReference(f *testing.F) {
	f.Add([]byte("seed-page-contents-0123456789abcdef"), []byte{1, 0, 3}, 4)
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0}, []byte{8}, 8)
	f.Fuzz(func(t *testing.T, twin []byte, flips []byte, word int) {
		if word != 4 && word != 8 {
			return
		}
		if len(twin) < word || len(twin) > 1<<16 {
			return
		}
		cur := append([]byte(nil), twin...)
		for i, fb := range flips {
			if len(cur) == 0 {
				break
			}
			cur[(i*131+int(fb))%len(cur)] ^= 0x80 | fb
		}
		want := computeReference(twin, cur, word)
		got := Compute(twin, cur, word)
		if !runsEqual(got, want) {
			t.Fatalf("fast path diverges: %d runs vs %d (len=%d word=%d)",
				len(got), len(want), len(twin), word)
		}
	})
}

// Package proto defines the protocol-level data structures shared by the
// base and extended SVM protocols: vector timestamps, interval update
// lists, per-page version vectors, and the (replicated) home maps with
// their failure-time rehoming rule.
package proto

// NodeID identifies a cluster node.
type NodeID = int

// PageID identifies a shared page.
type PageID = int

// LockID identifies an application lock.
type LockID = int

// VectorTime is a per-node vector of interval counters. Element i is the
// number of intervals of node i whose updates the owner has performed
// (or, for a node's own entry, has committed).
type VectorTime []int32

// NewVector returns a zero vector for n nodes.
func NewVector(n int) VectorTime { return make(VectorTime, n) }

// Clone returns an independent copy.
func (v VectorTime) Clone() VectorTime {
	c := make(VectorTime, len(v))
	copy(c, v)
	return c
}

// Merge sets v to the element-wise maximum of v and o.
func (v VectorTime) Merge(o VectorTime) {
	for i, x := range o {
		if x > v[i] {
			v[i] = x
		}
	}
}

// Covers reports whether v >= o element-wise.
func (v VectorTime) Covers(o VectorTime) bool {
	for i, x := range o {
		if v[i] < x {
			return false
		}
	}
	return true
}

// Equal reports element-wise equality.
func (v VectorTime) Equal(o VectorTime) bool {
	for i, x := range o {
		if v[i] != x {
			return false
		}
	}
	return true
}

// UpdateList records the pages a node modified during one of its intervals.
// It is the unit of write-notice exchange at acquires and barriers.
type UpdateList struct {
	Node     NodeID
	Interval int32
	Pages    []PageID
}

// WireBytes approximates the encoded size of the update list.
func (u *UpdateList) WireBytes() int { return 16 + 4*len(u.Pages) }

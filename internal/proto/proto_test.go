package proto

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func vecFrom(xs ...int32) VectorTime { return VectorTime(xs) }

func TestVectorBasics(t *testing.T) {
	v := NewVector(3)
	if !v.Equal(vecFrom(0, 0, 0)) {
		t.Fatal("new vector not zero")
	}
	v[1] = 5
	c := v.Clone()
	c[1] = 9
	if v[1] != 5 {
		t.Fatal("Clone aliases original")
	}
	v.Merge(vecFrom(1, 2, 7))
	if !v.Equal(vecFrom(1, 5, 7)) {
		t.Fatalf("Merge = %v", v)
	}
	if !v.Covers(vecFrom(1, 5, 7)) || v.Covers(vecFrom(2, 0, 0)) {
		t.Fatal("Covers wrong")
	}
}

func randVec(rng *rand.Rand, n int) VectorTime {
	v := NewVector(n)
	for i := range v {
		v[i] = int32(rng.Intn(10))
	}
	return v
}

// Property: Merge is the lattice join — commutative, associative,
// idempotent, and an upper bound of both operands.
func TestMergeLatticeLaws(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 8
		a, b, c := randVec(rng, n), randVec(rng, n), randVec(rng, n)

		ab := a.Clone()
		ab.Merge(b)
		ba := b.Clone()
		ba.Merge(a)
		if !ab.Equal(ba) {
			return false // commutativity
		}
		abc1 := ab.Clone()
		abc1.Merge(c)
		bc := b.Clone()
		bc.Merge(c)
		abc2 := a.Clone()
		abc2.Merge(bc)
		if !abc1.Equal(abc2) {
			return false // associativity
		}
		aa := a.Clone()
		aa.Merge(a)
		if !aa.Equal(a) {
			return false // idempotence
		}
		return ab.Covers(a) && ab.Covers(b) // upper bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Covers is a partial order compatible with Merge:
// a.Covers(b) iff merge(a,b) == a.
func TestCoversMergeConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randVec(rng, 6), randVec(rng, 6)
		m := a.Clone()
		m.Merge(b)
		return a.Covers(b) == m.Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHomeMapInitialAssignment(t *testing.T) {
	h := NewHomeMap(10, 4, func(i int) NodeID { return i % 4 })
	for i := 0; i < 10; i++ {
		if h.Primary(i) != i%4 {
			t.Fatalf("page %d primary = %d", i, h.Primary(i))
		}
		if h.Secondary(i) != (i+1)%4 {
			t.Fatalf("page %d secondary = %d", i, h.Secondary(i))
		}
		if h.Primary(i) == h.Secondary(i) {
			t.Fatalf("page %d replicas colocated", i)
		}
	}
}

// Property: after any sequence of failures (down to 2 live nodes), every
// item's two replicas are on distinct live nodes, and failed nodes hold no
// role.
func TestRehomeInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const nodes = 8
		const items = 40
		h := NewHomeMap(items, nodes, func(i int) NodeID { return rng.Intn(nodes) })
		perm := rng.Perm(nodes)
		for k := 0; k < nodes-2; k++ { // leave 2 alive
			h.Rehome(perm[k])
			for i := 0; i < items; i++ {
				p, s := h.Primary(i), h.Secondary(i)
				if p == s || !h.Alive(p) || !h.Alive(s) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRehomeSurvivorHoldsValidReplica(t *testing.T) {
	h := NewHomeMap(8, 4, func(i int) NodeID { return i % 4 })
	// Record pre-failure replica holders.
	holders := make(map[int][2]NodeID)
	for i := 0; i < 8; i++ {
		holders[i] = [2]NodeID{h.Primary(i), h.Secondary(i)}
	}
	for _, r := range h.Rehome(2) {
		was := holders[r.Item]
		if r.Survivor != was[0] && r.Survivor != was[1] {
			t.Fatalf("item %d: survivor %d held no replica (%v)", r.Item, r.Survivor, was)
		}
		if r.Survivor == 2 {
			t.Fatalf("item %d: survivor is the failed node", r.Item)
		}
	}
}

func TestRehomeIdempotentOnDeadNode(t *testing.T) {
	h := NewHomeMap(4, 4, func(i int) NodeID { return i % 4 })
	h.Rehome(1)
	if got := h.Rehome(1); got != nil {
		t.Fatalf("second Rehome(1) returned %v, want nil", got)
	}
	if h.AliveCount() != 3 {
		t.Fatalf("AliveCount = %d", h.AliveCount())
	}
}

func TestSuccessiveFailures(t *testing.T) {
	// The paper tolerates multiple non-simultaneous failures; exercise the
	// home map through a long failure sequence.
	h := NewHomeMap(100, 8, func(i int) NodeID { return i % 8 })
	for _, f := range []NodeID{0, 3, 7, 1, 5, 6} {
		h.Rehome(f)
	}
	if h.AliveCount() != 2 {
		t.Fatalf("AliveCount = %d", h.AliveCount())
	}
	for i := 0; i < 100; i++ {
		p, s := h.Primary(i), h.Secondary(i)
		if !(p == 2 && s == 4 || p == 4 && s == 2) {
			t.Fatalf("item %d on (%d,%d), want spread over {2,4}", i, p, s)
		}
	}
}

func TestUpdateListWireBytes(t *testing.T) {
	u := UpdateList{Node: 1, Interval: 3, Pages: []PageID{1, 2, 3}}
	if u.WireBytes() != 16+12 {
		t.Fatalf("WireBytes = %d", u.WireBytes())
	}
}

// BenchmarkVectorMerge measures the lattice-join hot path (run at every
// acquire, barrier, and update-list application).
func BenchmarkVectorMerge(b *testing.B) {
	a := NewVector(16)
	c := NewVector(16)
	for i := range c {
		c[i] = int32(i * 100)
	}
	for i := 0; i < b.N; i++ {
		a.Merge(c)
	}
}

// BenchmarkVectorCovers measures the dominance test used by every fetch
// wait and deferred-reply scan.
func BenchmarkVectorCovers(b *testing.B) {
	a := NewVector(16)
	c := NewVector(16)
	for i := range a {
		a[i] = int32(i * 100)
		c[i] = int32(i * 99)
	}
	for i := 0; i < b.N; i++ {
		if !a.Covers(c) {
			b.Fatal("must cover")
		}
	}
}

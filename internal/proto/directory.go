package proto

// Directory is the home-directory abstraction behind the paper's
// primary/secondary replica placement: every item (shared page or
// application lock) has two homes on distinct live nodes, and a node
// failure reassigns exactly the roles the dead node held so two live
// replicas always exist.
//
// Two implementations satisfy it:
//
//   - HomeMap, the paper's flat directory: two materialized per-item
//     arrays, rehoming by full scan. The seed behavior; the default on
//     every paper-grid tier and the bit-identity reference.
//   - HashedDir, the consistent-hashed directory for the large tiers:
//     placement is computed from an application-locality pin, only
//     rehomed items are stored (epoch-tagged overrides in per-shard
//     tables), and a per-node reverse index lets Rehome walk only the
//     failed node's items — O(items-on-failed + log N) instead of the
//     flat directory's O(items) scan (O(items x N) before the successor-
//     table fix).
//
// Both are deterministic: the same construction parameters and failure
// sequence produce the same placements, independent of host parallelism.
type Directory interface {
	// Items returns the number of items the directory manages.
	Items() int
	// Primary returns the item's current primary home (replica slot 0).
	Primary(item int) NodeID
	// Secondary returns the item's current first secondary home (replica
	// slot 1).
	Secondary(item int) NodeID
	// Degree returns the replication degree k: the number of distinct
	// live homes every item keeps. The paper's protocol is k = 2.
	Degree() int
	// Replica returns the item's slot-th home, 0 <= slot < Degree().
	// Slot 0 is the primary (committed copy); every other slot holds a
	// symmetric tentative copy. Alloc-free — the hot-path accessor.
	Replica(item, slot int) NodeID
	// Replicas returns all k homes of the item, primary first, in a
	// freshly allocated slice.
	Replicas(item int) []NodeID
	// Alive reports whether the directory still considers node live.
	Alive(n NodeID) bool
	// AliveCount returns the number of live nodes.
	AliveCount() int
	// Rehome marks failed as dead and reassigns every home role it held,
	// returning the reassignments so the caller can rebuild the new
	// copies from the surviving replicas. Rehoming an already-dead node
	// returns nil; rehoming below Degree() live nodes panics.
	Rehome(failed NodeID) []Reassignment
	// Epoch returns the directory's membership version: the number of
	// completed Rehome calls. Lookup caches key on it.
	Epoch() int
	// MemoryBytes returns the approximate resident footprint of the
	// directory's state — the scaling-curve metric of the bench grid.
	MemoryBytes() int64
}

// Home-delta codec: a hashed directory is computable from membership
// plus its override table, so after a failure the coordinator must ship
// the newly created overrides to every survivor (a flat directory needs
// no such message — every node re-runs the same full scan). The entries
// are epoch-tagged so a survivor that already applied a later epoch's
// deltas discards stale ones. The simulator applies deltas through
// shared memory; only the wire size is modeled.
const (
	// homeDeltaHeaderBytes covers the epoch tag, the dead node id, and
	// the entry count.
	homeDeltaHeaderBytes = 16
	// homeDeltaEntryBytes encodes one Reassignment: item (4), role+new
	// node (4), survivor (4).
	homeDeltaEntryBytes = 12
)

// HomeDeltaWireBytes returns the modeled wire size of a rehoming-delta
// message carrying n reassignments.
func HomeDeltaWireBytes(n int) int {
	return homeDeltaHeaderBytes + n*homeDeltaEntryBytes
}

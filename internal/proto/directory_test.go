package proto

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Both implementations must satisfy Directory.
var (
	_ Directory = (*HomeMap)(nil)
	_ Directory = (*HashedDir)(nil)
)

func blockAssign(items, nodes int) func(int) NodeID {
	return func(i int) NodeID { return i * nodes / items }
}

// TestHashedInitialMatchesFlat pins the healthy-run bit-identity anchor:
// before any failure, the hashed directory's placement is exactly the
// flat map's (pin primary, ring-successor secondary) for any assignment
// function — which is why flat-vs-hashed paper-grid runs without
// failures produce identical virtual metrics.
func TestHashedInitialMatchesFlat(t *testing.T) {
	for _, assign := range []func(int) NodeID{
		blockAssign(40, 8),
		func(i int) NodeID { return i % 8 },
		func(i int) NodeID { return (i * 3) % 8 },
	} {
		h := NewHomeMap(40, 8, assign)
		d := NewHashedDir(40, 8, 7, assign)
		for i := 0; i < 40; i++ {
			if h.Primary(i) != d.Primary(i) || h.Secondary(i) != d.Secondary(i) {
				t.Fatalf("item %d: flat (%d,%d) vs hashed (%d,%d)",
					i, h.Primary(i), h.Secondary(i), d.Primary(i), d.Secondary(i))
			}
		}
	}
}

// Property: both directories preserve the two-distinct-live-replicas
// invariant under every random failure order until fewer than 2 nodes
// remain, and their postings/epochs stay consistent.
func TestDirectoryRehomeInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const nodes = 10
		const items = 64
		pins := make([]NodeID, items)
		for i := range pins {
			pins[i] = rng.Intn(nodes)
		}
		assign := func(i int) NodeID { return pins[i] }
		dirs := []Directory{
			NewHomeMap(items, nodes, assign),
			NewHashedDir(items, nodes, seed, assign),
		}
		perm := rng.Perm(nodes)
		for k := 0; k < nodes-2; k++ { // leave 2 alive
			for _, d := range dirs {
				d.Rehome(perm[k])
				if d.Epoch() != k+1 || d.AliveCount() != nodes-k-1 {
					return false
				}
				for i := 0; i < items; i++ {
					p, s := d.Primary(i), d.Secondary(i)
					if p == s || !d.Alive(p) || !d.Alive(s) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property (k-replica generalization of TestDirectoryRehomeInvariant):
// for every degree k in 2..5, both directories keep k distinct live
// replicas for every item under every random failure order until fewer
// than k nodes remain, primary first, with consistent epochs and alive
// counts — and before any failure the two implementations agree on all
// k slots.
func TestDirectoryKReplicaInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		degree := 2 + rng.Intn(4) // k in 2..5
		const nodes = 10
		const items = 64
		pins := make([]NodeID, items)
		for i := range pins {
			pins[i] = rng.Intn(nodes)
		}
		assign := func(i int) NodeID { return pins[i] }
		dirs := []Directory{
			NewHomeMapK(items, nodes, degree, assign),
			NewHashedDirK(items, nodes, degree, seed, assign),
		}
		for _, d := range dirs {
			if d.Degree() != degree {
				return false
			}
			for i := 0; i < items; i++ {
				rs := d.Replicas(i)
				if len(rs) != degree || rs[0] != d.Primary(i) || rs[1] != d.Secondary(i) {
					return false
				}
				// Healthy placement identical across implementations.
				for s, r := range rs {
					if r != NodeID((int(pins[i])+s)%nodes) {
						return false
					}
				}
			}
		}
		perm := rng.Perm(nodes)
		for k := 0; k+degree < nodes; k++ { // stop while >= degree stay alive
			for _, d := range dirs {
				d.Rehome(perm[k])
				if d.Epoch() != k+1 || d.AliveCount() != nodes-k-1 {
					return false
				}
				for i := 0; i < items; i++ {
					seen := map[NodeID]bool{}
					for s := 0; s < degree; s++ {
						r := d.Replica(i, s)
						if seen[r] || !d.Alive(r) {
							return false
						}
						seen[r] = true
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: hashed lookups are a pure function of (construction
// parameters, failure sequence) — two directories built identically and
// failed identically agree on every lookup, whether or not either uses
// its lookup cache and regardless of lookup order. This is what makes
// hashed runs reproducible across hosts and engine worker counts.
func TestHashedDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const nodes = 12
		const items = 80
		assign := blockAssign(items, nodes)
		a := NewHashedDir(items, nodes, seed, assign)
		b := NewHashedDir(items, nodes, seed, assign)
		b.DisableCache()
		// Warm a's cache in a random order before and between failures.
		for _, i := range rng.Perm(items) {
			a.Primary(i)
		}
		for k := 0; k < 4; k++ {
			victim := randLiveVictim(rng, a)
			a.Rehome(victim)
			b.Rehome(victim)
			for _, i := range rng.Perm(items) {
				if a.Primary(i) != b.Primary(i) || a.Secondary(i) != b.Secondary(i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// randLiveVictim picks a random still-live victim.
func randLiveVictim(rng *rand.Rand, d Directory) NodeID {
	for {
		v := rng.Intn(12)
		if d.Alive(v) {
			return v
		}
	}
}

// TestFlatRehomeMatchesReference pins the successor-table fast path to
// the seed's per-hit nextAlive scan: identical reassignment lists and
// identical resulting maps over random assignments and failure orders.
func TestFlatRehomeMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const nodes = 9
		const items = 50
		pins := make([]NodeID, items)
		for i := range pins {
			pins[i] = rng.Intn(nodes)
		}
		fast := NewHomeMap(items, nodes, func(i int) NodeID { return pins[i] })
		ref := fast.Clone()
		perm := rng.Perm(nodes)
		for k := 0; k < nodes-2; k++ {
			rf := fast.Rehome(perm[k])
			rr := ref.RehomeReference(perm[k])
			if len(rf) != len(rr) {
				return false
			}
			for i := range rf {
				if rf[i] != rr[i] {
					return false
				}
			}
			for i := 0; i < items; i++ {
				if fast.Primary(i) != ref.Primary(i) || fast.Secondary(i) != ref.Secondary(i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestHashedRehomeTouchesOnlyAffected verifies the O(items-on-failed)
// claim structurally: the reassignment list covers exactly the items
// that had a home on the failed node, and the override table grows by
// exactly the newly rehomed items.
func TestHashedRehomeTouchesOnlyAffected(t *testing.T) {
	const nodes = 16
	const items = 256
	d := NewHashedDir(items, nodes, 3, blockAssign(items, nodes))
	affected := map[int]bool{}
	for i := 0; i < items; i++ {
		if d.Primary(i) == 5 || d.Secondary(i) == 5 {
			affected[i] = true
		}
	}
	rs := d.Rehome(5)
	seen := map[int]bool{}
	for _, r := range rs {
		if !affected[r.Item] {
			t.Fatalf("item %d reassigned but had no home on node 5", r.Item)
		}
		seen[r.Item] = true
	}
	if len(seen) != len(affected) {
		t.Fatalf("reassigned %d items, %d had a home on node 5", len(seen), len(affected))
	}
	if d.Overrides() != len(affected) {
		t.Fatalf("override table holds %d items, want %d", d.Overrides(), len(affected))
	}
	if d.PostingsLen(5) != 0 {
		t.Fatalf("failed node still has %d postings", d.PostingsLen(5))
	}
}

// TestHashedSurvivorHoldsValidReplica mirrors the flat-map test: every
// reassignment's survivor held a replica before the failure and is not
// the failed node.
func TestHashedSurvivorHoldsValidReplica(t *testing.T) {
	const items = 64
	d := NewHashedDir(items, 8, 11, func(i int) NodeID { return i % 8 })
	holders := make(map[int][2]NodeID)
	for i := 0; i < items; i++ {
		holders[i] = [2]NodeID{d.Primary(i), d.Secondary(i)}
	}
	for _, r := range d.Rehome(2) {
		was := holders[r.Item]
		if r.Survivor != was[0] && r.Survivor != was[1] {
			t.Fatalf("item %d: survivor %d held no replica (%v)", r.Item, r.Survivor, was)
		}
		if r.Survivor == 2 {
			t.Fatalf("item %d: survivor is the failed node", r.Item)
		}
	}
}

func TestHashedIdempotentOnDeadNode(t *testing.T) {
	d := NewHashedDir(8, 4, 1, func(i int) NodeID { return i % 4 })
	d.Rehome(1)
	if got := d.Rehome(1); got != nil {
		t.Fatalf("second Rehome(1) returned %v, want nil", got)
	}
	if d.AliveCount() != 3 || d.Epoch() != 1 {
		t.Fatalf("AliveCount = %d, Epoch = %d", d.AliveCount(), d.Epoch())
	}
}

// TestHashedRehomeSpreads checks the consistent-hash ring actually
// scatters a failed node's items: after failing one node in a large
// cluster, the fresh secondaries land on more than a handful of
// survivors (the flat rule piles them all onto one ring successor).
func TestHashedRehomeSpreads(t *testing.T) {
	const nodes = 64
	const items = 1024
	d := NewHashedDir(items, nodes, 5, blockAssign(items, nodes))
	targets := map[NodeID]bool{}
	for _, r := range d.Rehome(10) {
		if r.Role == Secondary {
			targets[r.NewNode] = true
		}
	}
	if len(targets) < 4 {
		t.Fatalf("fresh secondaries landed on only %d distinct nodes", len(targets))
	}
}

// TestHomeDeltaWireBytes pins the recovery-delta codec size.
func TestHomeDeltaWireBytes(t *testing.T) {
	if got := HomeDeltaWireBytes(0); got != 16 {
		t.Fatalf("empty delta = %d bytes", got)
	}
	if got := HomeDeltaWireBytes(3); got != 16+36 {
		t.Fatalf("3-entry delta = %d bytes", got)
	}
}

// TestDirectoryMemoryBytes sanity-checks the footprint accounting the
// scaling bench reports: at a realistic items-per-node ratio (the
// paper's workloads put hundreds of pages on each node) the hashed
// directory's 12 bytes/item beat the flat map's 16, despite the hashed
// side's fixed ring + cache overhead; and the footprint grows as
// overrides appear. Micro cells with ~1 page per node sit below the
// break-even — there the directory is tiny either way.
func TestDirectoryMemoryBytes(t *testing.T) {
	const nodes = 256
	const items = 64 * nodes
	h := NewHomeMap(items, nodes, blockAssign(items, nodes))
	d := NewHashedDir(items, nodes, 1, blockAssign(items, nodes))
	d.DisableCache()
	if d.MemoryBytes() >= h.MemoryBytes() {
		t.Fatalf("hashed %d bytes >= flat %d bytes before any failure", d.MemoryBytes(), h.MemoryBytes())
	}
	before := d.MemoryBytes()
	d.Rehome(0)
	if d.MemoryBytes() <= before {
		t.Fatal("override table did not grow the footprint")
	}
}

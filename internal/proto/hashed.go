package proto

import (
	"fmt"
	"slices"
)

// HashedDir is the consistent-hashed home directory for the large
// tiers. The flat HomeMap materializes every item's two homes and
// rehomes by full scan — fine at the paper's 8 nodes, the dominant
// recovery-path and memory cost at 256+ nodes. HashedDir instead:
//
//   - computes placement: an item's primary is its application-locality
//     pin (the HomeAssign node the paper lets applications choose), its
//     secondary the pin's ring neighbor — exactly the flat directory's
//     initial layout, so healthy paper-grid runs are bit-identical
//     under either directory;
//   - stores only exceptions: when a node fails, the items it homed get
//     epoch-tagged overrides in a compact per-shard table. Overrides
//     are sticky — placement computed at epoch e stays fixed until one
//     of its own homes fails — because a placement recomputed from
//     scratch over live membership would silently migrate items whose
//     homes never failed, moving data the recovery protocol never
//     copied (that is why rehoming survival needs the overrides, and
//     the epoch tag is what lets a survivor applying delta messages
//     discard stale ones);
//   - picks rehoming targets on a hashed ring of live nodes (the
//     binary-search form of rendezvous selection: each item's
//     preference order is the successor order of its hash point), so a
//     failed node's items scatter over all survivors instead of piling
//     onto the ring successor the way the flat directory's rule does;
//   - maintains a per-node reverse index — postings of the items homed
//     on each node — so Rehome(failed) walks only the failed node's
//     items: O(items-on-failed + log N) against the flat scan's
//     O(items).
//
// Lookups are O(1): a direct-mapped, epoch-invalidated cache in front
// of (override-shard probe, else pin arithmetic). The cache is a plain
// in-place fill, so the cluster disables it when node lanes execute
// concurrently (the parallel engine); lookups stay O(1) without it.
type HashedDir struct {
	nodes  int
	degree int
	alive  []bool
	nAlive int
	epoch  int
	seed   uint64

	// pins holds each item's application-locality seed: the HomeAssign
	// primary. int32 — half the footprint of the flat directory's
	// per-item NodeID pair.
	pins []int32

	// shards is the override table: item -> current homes, for rehomed
	// items only. Sharded by the item's low bits to keep each map small
	// (and its growth incremental) on big failures.
	shards [dirShards]map[int32]dirOverride

	// post is the reverse index: post[n] lists the items with a home on
	// node n. Postings are exact — a home moves only when its node
	// fails, and a failed node's whole posting list is dropped — so no
	// tombstone filtering is ever needed on the walk.
	post [][]int32

	// ring is the consistent-hash ring: ringPointsPerNode virtual points
	// per node, hashed and sorted once at construction. Each point packs
	// 48 hash bits over 16 node-id bits into one uint64, so the ring
	// costs 8 bytes per point and sorts as plain integers. Dead nodes'
	// points stay on the ring and pick skips them — rebuilding (and
	// re-sorting) per failure would put an O(N log N) term with a big
	// constant in front of every Rehome.
	ring []uint64

	// Direct-mapped lookup cache. An entry is valid only when its cKey
	// matches the item and its cEp matches the current epoch — tagging
	// entries with the epoch invalidates the whole cache on a Rehome
	// without wiping it. Disabled under concurrent readers.
	cacheOn bool
	cKey    []int32
	cEp     []int32
	cPrim   []int32
	cSec    []int32
}

const (
	dirShardBits = 4
	dirShards    = 1 << dirShardBits

	// dirCacheSize bounds the lookup cache (direct-mapped entries); it
	// is deliberately small — the point is covering the hot working set
	// after a failure populates the override shards, not mirroring the
	// flat directory's full materialization.
	dirCacheSize = 1024

	// ringPointsPerNode is the virtual-point count per live node. Eight
	// points keep the post-failure spread within ~2x of uniform at the
	// tier sizes while the ring stays small enough to rebuild per epoch.
	ringPointsPerNode = 8
)

// dirOverride records a rehomed item's current homes and the epoch that
// placed them there. rest carries replica slots 2..k-1 and stays nil at
// the paper's degree 2, so the modeled per-entry footprint is unchanged
// on the legacy tiers.
type dirOverride struct {
	prim, sec int32
	epoch     int32
	rest      []int32
}

// ringNodeBits is the node-id field width of a packed ring point: the
// low 16 bits hold the node, the high 48 the hash. Distinct points can
// never compare equal (the node id is part of the integer), so the
// sorted ring is deterministic without a tie-break rule.
const ringNodeBits = 16

// splitmix64 is the 64-bit finalizer used for every directory hash:
// deterministic, seedable, and strong enough that ring points collide
// with negligible probability.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// NewHashedDir builds a hashed directory for items items over nodes
// nodes. assign gives each item's primary pin (the application's
// locality choice, as in NewHomeMap); seed perturbs the ring hashes so
// distinct directories (pages vs locks) scatter independently.
func NewHashedDir(items, nodes int, seed int64, assign func(item int) NodeID) *HashedDir {
	return NewHashedDirK(items, nodes, 2, seed, assign)
}

// NewHashedDirK builds a hashed directory with replication degree k: each
// item's slot-s home starts as the s-th ring successor of its pin, so
// k = 2 reproduces the pin/neighbor placement exactly.
func NewHashedDirK(items, nodes, k int, seed int64, assign func(item int) NodeID) *HashedDir {
	if k < 2 {
		panic("proto: HashedDir needs replication degree >= 2")
	}
	if nodes < k {
		panic(fmt.Sprintf("proto: HashedDir needs at least %d nodes for %d-way replication", k, k))
	}
	if nodes >= 1<<ringNodeBits {
		panic(fmt.Sprintf("proto: HashedDir supports at most %d nodes (packed ring points)", 1<<ringNodeBits-1))
	}
	d := &HashedDir{
		nodes:   nodes,
		degree:  k,
		alive:   make([]bool, nodes),
		nAlive:  nodes,
		seed:    splitmix64(uint64(seed) ^ 0xD1B54A32D192ED03),
		pins:    make([]int32, items),
		post:    make([][]int32, nodes),
		cacheOn: true,
		cKey:    make([]int32, dirCacheSize),
		cEp:     make([]int32, dirCacheSize),
		cPrim:   make([]int32, dirCacheSize),
		cSec:    make([]int32, dirCacheSize),
	}
	for i := range d.alive {
		d.alive[i] = true
	}
	for i := range d.cKey {
		d.cKey[i] = -1
	}
	d.buildRing()
	for s := range d.shards {
		d.shards[s] = make(map[int32]dirOverride)
	}
	for i := 0; i < items; i++ {
		p := assign(i)
		if p < 0 || p >= nodes {
			panic(fmt.Sprintf("proto: assign(%d) = %d out of range", i, p))
		}
		d.pins[i] = int32(p)
		for s := 0; s < k; s++ {
			d.post[(p+s)%nodes] = append(d.post[(p+s)%nodes], int32(i))
		}
	}
	return d
}

// Items returns the number of items managed by the directory.
func (d *HashedDir) Items() int { return len(d.pins) }

// Alive reports whether the directory still considers node live.
func (d *HashedDir) Alive(n NodeID) bool { return d.alive[n] }

// AliveCount returns the number of live nodes.
func (d *HashedDir) AliveCount() int { return d.nAlive }

// Epoch returns the number of completed Rehome calls.
func (d *HashedDir) Epoch() int { return d.epoch }

// DisableCache turns the lookup cache off for the rest of the
// directory's life. The cluster calls this when node lanes read the
// directory concurrently (the parallel engine): a cache fill is an
// in-place write, and lookups are O(1) without it.
func (d *HashedDir) DisableCache() { d.cacheOn = false }

// resolve returns the item's current homes: the override if one exists,
// else the computed pin placement. It never consults liveness — the
// directory's assignment changes only through Rehome, exactly like the
// flat map's arrays.
func (d *HashedDir) resolve(item int) (p, s int32) {
	if ov, ok := d.shards[item&(dirShards-1)][int32(item)]; ok {
		return ov.prim, ov.sec
	}
	p = d.pins[item]
	s = p + 1
	if int(s) == d.nodes {
		s = 0
	}
	return p, s
}

// lookup resolves through the direct-mapped cache when it is enabled.
func (d *HashedDir) lookup(item int) (int32, int32) {
	if !d.cacheOn {
		return d.resolve(item)
	}
	k := item & (dirCacheSize - 1)
	if d.cKey[k] == int32(item) && d.cEp[k] == int32(d.epoch) {
		return d.cPrim[k], d.cSec[k]
	}
	p, s := d.resolve(item)
	d.cKey[k] = int32(item)
	d.cEp[k] = int32(d.epoch)
	d.cPrim[k] = p
	d.cSec[k] = s
	return p, s
}

// Primary returns the item's current primary home.
func (d *HashedDir) Primary(item int) NodeID {
	p, _ := d.lookup(item)
	return NodeID(p)
}

// Secondary returns the item's current secondary home.
func (d *HashedDir) Secondary(item int) NodeID {
	_, s := d.lookup(item)
	return NodeID(s)
}

// Degree returns the replication degree k.
func (d *HashedDir) Degree() int { return d.degree }

// Replica returns the item's slot-th home (slot 0 is the primary).
// Slots 0 and 1 go through the lookup cache; higher slots read the
// override table directly or fall back to pin arithmetic.
func (d *HashedDir) Replica(item, slot int) NodeID {
	switch slot {
	case 0:
		return d.Primary(item)
	case 1:
		return d.Secondary(item)
	}
	return NodeID(d.resolveSlot(item, slot))
}

// resolveSlot resolves one replica slot without touching the lookup
// cache — Rehome must not fill cache entries tagged with the epoch it is
// still in the middle of installing.
func (d *HashedDir) resolveSlot(item, slot int) int32 {
	if ov, ok := d.shards[item&(dirShards-1)][int32(item)]; ok {
		switch slot {
		case 0:
			return ov.prim
		case 1:
			return ov.sec
		default:
			return ov.rest[slot-2]
		}
	}
	return int32((int(d.pins[item]) + slot) % d.nodes)
}

// Replicas returns all k homes of the item, primary first, freshly
// allocated.
func (d *HashedDir) Replicas(item int) []NodeID {
	out := make([]NodeID, d.degree)
	for s := range out {
		out[s] = d.Replica(item, s)
	}
	return out
}

// MemoryBytes returns the approximate resident footprint: pins,
// postings, override entries, ring, and cache.
func (d *HashedDir) MemoryBytes() int64 {
	b := int64(len(d.pins)) * 4
	for _, pl := range d.post {
		b += int64(cap(pl))*4 + 24
	}
	for s := range d.shards {
		// Map entry: 12 bytes of payload plus ~2x bucket overhead.
		b += int64(len(d.shards[s])) * 36
		if d.degree > 2 {
			// rest slice header + slots 2..k-1 per override entry.
			b += int64(len(d.shards[s])) * int64(24+4*(d.degree-2))
		}
	}
	b += int64(cap(d.ring)) * 8
	b += int64(len(d.alive))
	if d.cacheOn {
		b += int64(len(d.cKey)+len(d.cEp)+len(d.cPrim)+len(d.cSec)) * 4
	}
	return b
}

// buildRing computes the consistent-hash ring: ringPointsPerNode packed
// points per node, sorted as plain integers. Run once at construction;
// liveness is checked at pick time.
func (d *HashedDir) buildRing() {
	pts := make([]uint64, 0, d.nodes*ringPointsPerNode)
	for n := 0; n < d.nodes; n++ {
		for v := 0; v < ringPointsPerNode; v++ {
			h := splitmix64(d.seed ^ uint64(n)<<20 ^ uint64(v))
			pts = append(pts, h&^(1<<ringNodeBits-1)|uint64(n))
		}
	}
	slices.Sort(pts)
	d.ring = pts
}

// pick returns the live node owning the ring successor of item's hash
// point, skipping dead nodes' points and points of exclude: O(log N)
// search plus a walk whose expected length is the dead fraction of the
// ring — short until most of the cluster has failed, and the directory
// refuses to operate below 2 live nodes anyway.
func (d *HashedDir) pick(item int, exclude int32) int32 {
	h := splitmix64(d.seed^uint64(item)*0x9E3779B97F4A7C15) &^ (1<<ringNodeBits - 1)
	i, _ := slices.BinarySearch(d.ring, h)
	for off := 0; off < len(d.ring); off++ {
		n := int32(d.ring[(i+off)%len(d.ring)] & (1<<ringNodeBits - 1))
		if n != exclude && d.alive[n] {
			return n
		}
	}
	panic("proto: hash ring has no live node besides the excluded one")
}

// setOverride records the item's new homes at the current epoch.
func (d *HashedDir) setOverride(item, prim, sec int32) {
	d.shards[int(item)&(dirShards-1)][item] = dirOverride{prim: prim, sec: sec, epoch: int32(d.epoch)}
}

// Rehome marks failed as dead and reassigns exactly the home roles it
// held, walking the failed node's reverse-index postings instead of
// scanning every item. Promotions follow the paper's rule — the
// surviving secondary becomes primary in place (it holds the tentative
// copy) — and fresh secondaries come off the hash ring, so the failed
// node's load scatters across the survivors.
func (d *HashedDir) Rehome(failed NodeID) []Reassignment {
	if !d.alive[failed] {
		return nil
	}
	d.alive[failed] = false
	d.nAlive--
	if d.nAlive < d.degree {
		panic(fmt.Sprintf("proto: fewer than %d live nodes; replication impossible", d.degree))
	}
	d.epoch++
	items := d.post[failed]
	d.post[failed] = nil
	f := int32(failed)
	out := make([]Reassignment, 0, len(items)*2)
	if d.degree == 2 {
		// The paper's pair rule, kept verbatim as the k=2 fast path
		// (bit-identity with the seed and the flat directory).
		for _, it := range items {
			item := int(it)
			p, s := d.resolve(item)
			switch {
			case p == f:
				newP := s
				newS := d.pick(item, newP)
				d.setOverride(it, newP, newS)
				d.post[newS] = append(d.post[newS], it)
				out = append(out,
					Reassignment{Item: item, Role: Primary, NewNode: NodeID(newP), Survivor: NodeID(newP)},
					Reassignment{Item: item, Role: Secondary, NewNode: NodeID(newS), Survivor: NodeID(newP)})
			case s == f:
				newS := d.pick(item, p)
				d.setOverride(it, p, newS)
				d.post[newS] = append(d.post[newS], it)
				out = append(out,
					Reassignment{Item: item, Role: Secondary, NewNode: NodeID(newS), Survivor: NodeID(p)})
			default:
				// Postings are exact (see the field comment); a miss means
				// the index and the override table disagree.
				panic(fmt.Sprintf("proto: reverse index lists item %d on node %d, but its homes are %d/%d", item, failed, p, s))
			}
		}
		return out
	}
	// General k: drop the failed slot, shift the surviving replicas left
	// (a slot-0 death promotes the first secondary in place), and pick a
	// fresh tail replica off the hash ring, excluding every node that
	// already holds a copy.
	homes := make([]int32, d.degree)
	for _, it := range items {
		item := int(it)
		slot := -1
		for s := 0; s < d.degree; s++ {
			homes[s] = d.resolveSlot(item, s)
			if homes[s] == f {
				slot = s
			}
		}
		if slot < 0 {
			panic(fmt.Sprintf("proto: reverse index lists item %d on node %d, but no replica slot holds it", item, failed))
		}
		copy(homes[slot:], homes[slot+1:])
		tail := d.pickExcluding(item, homes[:d.degree-1])
		homes[d.degree-1] = tail
		rest := make([]int32, d.degree-2)
		copy(rest, homes[2:])
		d.shards[item&(dirShards-1)][it] = dirOverride{prim: homes[0], sec: homes[1], epoch: int32(d.epoch), rest: rest}
		d.post[tail] = append(d.post[tail], it)
		if slot == 0 {
			out = append(out,
				Reassignment{Item: item, Role: Primary, NewNode: NodeID(homes[0]), Survivor: NodeID(homes[0])},
				Reassignment{Item: item, Role: Secondary, NewNode: NodeID(tail), Survivor: NodeID(homes[0])})
		} else {
			out = append(out,
				Reassignment{Item: item, Role: Secondary, NewNode: NodeID(tail), Survivor: NodeID(homes[0])})
		}
	}
	return out
}

// pickExcluding returns the live node owning the ring successor of
// item's hash point, skipping dead nodes and every member of exclude —
// the k-replica generalization of pick.
func (d *HashedDir) pickExcluding(item int, exclude []int32) int32 {
	h := splitmix64(d.seed^uint64(item)*0x9E3779B97F4A7C15) &^ (1<<ringNodeBits - 1)
	i, _ := slices.BinarySearch(d.ring, h)
	for off := 0; off < len(d.ring); off++ {
		n := int32(d.ring[(i+off)%len(d.ring)] & (1<<ringNodeBits - 1))
		if !d.alive[n] {
			continue
		}
		member := false
		for _, x := range exclude {
			if x == n {
				member = true
				break
			}
		}
		if !member {
			return n
		}
	}
	panic("proto: hash ring has no live node outside the excluded set")
}

// Overrides returns the number of rehomed items currently carried in
// the override table (observability and test support).
func (d *HashedDir) Overrides() int {
	n := 0
	for s := range d.shards {
		n += len(d.shards[s])
	}
	return n
}

// PostingsLen returns the reverse-index posting count for node n (test
// support: postings must track current homes exactly).
func (d *HashedDir) PostingsLen(n NodeID) int { return len(d.post[n]) }

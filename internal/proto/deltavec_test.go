package proto

import (
	"testing"
)

func TestDeltaRoundTrip(t *testing.T) {
	cases := []struct {
		name      string
		prev, cur VectorTime
		wantBytes int
	}{
		{"identical", VectorTime{1, 2, 3}, VectorTime{1, 2, 3}, 5},
		{"one change", VectorTime{1, 2, 3, 4, 5, 6}, VectorTime{1, 2, 9, 4, 5, 6}, 5 + 8},
		{"dense falls back to full", VectorTime{0, 0, 0}, VectorTime{1, 2, 3}, 5 + 4*3},
		{"zero baseline sparse", make(VectorTime, 64), func() VectorTime {
			v := make(VectorTime, 64)
			v[7] = 3
			v[40] = 1
			return v
		}(), 5 + 8*2},
		{"empty", VectorTime{}, VectorTime{}, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := AppendDelta(nil, tc.prev, tc.cur)
			if got := DeltaWireBytes(tc.prev, tc.cur); got != len(buf) {
				t.Fatalf("DeltaWireBytes = %d, encoded %d bytes", got, len(buf))
			}
			if tc.wantBytes != len(buf) {
				t.Fatalf("encoded %d bytes, want %d", len(buf), tc.wantBytes)
			}
			dec, rest, err := DecodeDelta(tc.prev, buf)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if len(rest) != 0 {
				t.Fatalf("%d trailing bytes", len(rest))
			}
			if !dec.Equal(tc.cur) || !tc.cur.Equal(dec) {
				t.Fatalf("round trip: got %v, want %v", dec, tc.cur)
			}
		})
	}
}

func TestDeltaNeverBeatenByFullPlusTag(t *testing.T) {
	prev := make(VectorTime, 256)
	cur := make(VectorTime, 256)
	for i := range cur {
		cur[i] = int32(i + 1) // every entry changed
	}
	if got, max := DeltaWireBytes(prev, cur), 5+4*256; got != max {
		t.Fatalf("dense delta = %d bytes, want full fallback %d", got, max)
	}
}

func TestDecodeDeltaRejectsGarbage(t *testing.T) {
	prev := VectorTime{1, 2}
	for _, data := range [][]byte{
		nil,
		{0x00},
		{0x02, 0, 0, 0, 0}, // unknown tag
		{0x00, 9, 0, 0, 0}, // full length mismatch
		{0x01, 1, 0, 0, 0}, // sparse truncated
		{0x01, 1, 0, 0, 0, 5, 0, 0, 0, 0, 0, 0, 0}, // index out of range
	} {
		if _, _, err := DecodeDelta(prev, data); err == nil {
			t.Fatalf("decode of %v succeeded", data)
		}
	}
}

// FuzzVectorTimeCodec holds the two delta-codec contracts: decode(encode)
// is the identity for any (prev, cur) pair of equal length, and the
// modeled wire cost (DeltaWireBytes) equals the real encoded length.
func FuzzVectorTimeCodec(f *testing.F) {
	f.Add(4, []byte{0, 0, 0, 0}, []byte{1, 0, 2, 0})
	f.Add(1, []byte{9}, []byte{9})
	f.Add(8, []byte{}, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, n int, prevRaw, curRaw []byte) {
		if n <= 0 || n > 1024 {
			return
		}
		prev, cur := make(VectorTime, n), make(VectorTime, n)
		for i := 0; i < n; i++ {
			if i < len(prevRaw) {
				prev[i] = int32(prevRaw[i]) << (i % 20)
			}
			if i < len(curRaw) {
				cur[i] = int32(curRaw[i]) << (i % 24)
			}
		}
		buf := AppendDelta(nil, prev, cur)
		if got := DeltaWireBytes(prev, cur); got != len(buf) {
			t.Fatalf("DeltaWireBytes = %d, encoded %d", got, len(buf))
		}
		dec, rest, err := DecodeDelta(prev, buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(rest) != 0 {
			t.Fatalf("%d trailing bytes", len(rest))
		}
		if !dec.Equal(cur) || !cur.Equal(dec) {
			t.Fatalf("round trip: got %v, want %v", dec, cur)
		}
	})
}

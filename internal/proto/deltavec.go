package proto

import (
	"encoding/binary"
	"fmt"
)

// Delta wire codec for vector timestamps.
//
// Vector times dominate message volume at scale: every interval, fetch
// reply, lock release, and barrier message carries an O(N) vector at 4
// bytes per element, so at 256 nodes a single barrier arrival ships a
// kilobyte of mostly-unchanged counters. The delta codec exploits the
// network's per-sender FIFO delivery and NIC-level retransmission: the
// receiver has decoded every earlier message on the (sender, receiver)
// link in order, so both ends share the last vector shipped on that link
// and the sender only needs to encode the entries that changed since.
// Dense change sets (a barrier release merging every member's entry) fall
// back to the full encoding, so a delta message is never larger than
// full + 1 tag byte.
//
// The codec is link-level, not field-level: consecutive messages on one
// link may carry different vector quantities (a node's own time, a page
// version, a lock release time). Correctness does not care — each message
// is encoded against whatever the link shipped last, and both ends
// advance the context identically — while compression benefits from the
// quantities being causally related and therefore close.
//
// Wire format (DeltaWireBytes must match AppendDelta's output exactly;
// the fuzz harness holds them together):
//
//	tag 0x00 (full):   1 tag + 4 count + 4 bytes per element
//	tag 0x01 (sparse): 1 tag + 4 count + (4 index + 4 value) per change

const (
	deltaTagFull   = 0x00
	deltaTagSparse = 0x01
)

// deltaChanged counts the entries where cur differs from prev.
func deltaChanged(prev, cur VectorTime) int {
	c := 0
	for i, x := range cur {
		if prev[i] != x {
			c++
		}
	}
	return c
}

// DeltaWireBytes returns the encoded size of cur relative to prev: the
// cheaper of the sparse and full encodings. prev and cur must have equal
// length.
func DeltaWireBytes(prev, cur VectorTime) int {
	full := 5 + 4*len(cur)
	sparse := 5 + 8*deltaChanged(prev, cur)
	if sparse < full {
		return sparse
	}
	return full
}

// AppendDelta appends the wire encoding of cur relative to prev to buf
// and returns the extended slice. prev and cur must have equal length.
func AppendDelta(buf []byte, prev, cur VectorTime) []byte {
	if len(prev) != len(cur) {
		panic(fmt.Sprintf("proto: delta-encoding vectors of different lengths (%d vs %d)", len(prev), len(cur)))
	}
	changed := deltaChanged(prev, cur)
	if 8*changed >= 4*len(cur) {
		buf = append(buf, deltaTagFull)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(cur)))
		for _, x := range cur {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(x))
		}
		return buf
	}
	buf = append(buf, deltaTagSparse)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(changed))
	for i, x := range cur {
		if prev[i] != x {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(i))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(x))
		}
	}
	return buf
}

// DecodeDelta decodes one vector encoded by AppendDelta against the same
// prev context, returning the decoded vector (a fresh slice) and the
// remaining bytes.
func DecodeDelta(prev VectorTime, data []byte) (VectorTime, []byte, error) {
	if len(data) < 5 {
		return nil, nil, fmt.Errorf("proto: delta vector truncated (%d bytes)", len(data))
	}
	tag := data[0]
	count := int(binary.LittleEndian.Uint32(data[1:5]))
	data = data[5:]
	switch tag {
	case deltaTagFull:
		if count != len(prev) {
			return nil, nil, fmt.Errorf("proto: full vector length %d, link context has %d", count, len(prev))
		}
		if len(data) < 4*count {
			return nil, nil, fmt.Errorf("proto: full vector truncated")
		}
		out := NewVector(count)
		for i := range out {
			out[i] = int32(binary.LittleEndian.Uint32(data[4*i:]))
		}
		return out, data[4*count:], nil
	case deltaTagSparse:
		if len(data) < 8*count {
			return nil, nil, fmt.Errorf("proto: sparse vector truncated")
		}
		out := prev.Clone()
		for i := 0; i < count; i++ {
			idx := int(binary.LittleEndian.Uint32(data[8*i:]))
			if idx >= len(out) {
				return nil, nil, fmt.Errorf("proto: sparse vector index %d out of range %d", idx, len(out))
			}
			out[idx] = int32(binary.LittleEndian.Uint32(data[8*i+4:]))
		}
		return out, data[8*count:], nil
	}
	return nil, nil, fmt.Errorf("proto: unknown delta vector tag %#x", tag)
}

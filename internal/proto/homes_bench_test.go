package proto

import (
	"fmt"
	"testing"
)

// BenchmarkRehome measures a full failure sweep — killing nodes in ring
// order until only two survive — across the tier node counts, with the
// item count scaled the way the micro workloads scale pages (16 items
// per node, block-distributed). The sweep is where the seed's per-hit
// nextAlive scan turns quadratic: each kill grows the dead gap behind
// the survivors, so every later reassignment's ring scan walks the whole
// gap. Variants:
//
//   - flat-ref: the seed's per-hit scan — O(items x N) per call once the
//     gap is large;
//   - flat: the once-per-call successor table — O(items + N) per call;
//   - hashed: the reverse-index walk — O(items-on-failed + log N) per
//     call (see BenchmarkRehomeByAffected for the items-on-failed
//     scaling at fixed N).
//
// Setup (clone or rebuild) runs outside the timer; the measured region
// is exactly the Rehome sequence.
func BenchmarkRehome(b *testing.B) {
	for _, nodes := range []int{8, 64, 256, 512} {
		items := 16 * nodes
		assign := blockAssign(items, nodes)
		b.Run(fmt.Sprintf("flat-ref/n=%d", nodes), func(b *testing.B) {
			base := NewHomeMap(items, nodes, assign)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				h := base.Clone()
				b.StartTimer()
				for f := 0; f < nodes-2; f++ {
					h.RehomeReference(f)
				}
			}
		})
		b.Run(fmt.Sprintf("flat/n=%d", nodes), func(b *testing.B) {
			base := NewHomeMap(items, nodes, assign)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				h := base.Clone()
				b.StartTimer()
				for f := 0; f < nodes-2; f++ {
					h.Rehome(f)
				}
			}
		})
		b.Run(fmt.Sprintf("hashed/n=%d", nodes), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				d := NewHashedDir(items, nodes, 1, assign)
				b.StartTimer()
				for f := 0; f < nodes-2; f++ {
					d.Rehome(f)
				}
			}
		})
	}
}

// BenchmarkRehomeFirstFailure measures a single Rehome from a healthy
// cluster — the paper's single-failure model and the recovery-latency
// number BENCH_PR9 records. From healthy membership the per-hit
// nextAlive scan terminates in one step, so flat-ref and flat are close
// here; the hashed walk visits only the victim's postings.
func BenchmarkRehomeFirstFailure(b *testing.B) {
	for _, nodes := range []int{8, 64, 256, 512} {
		items := 16 * nodes
		assign := blockAssign(items, nodes)
		victim := nodes / 2
		b.Run(fmt.Sprintf("flat/n=%d", nodes), func(b *testing.B) {
			base := NewHomeMap(items, nodes, assign)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				h := base.Clone()
				b.StartTimer()
				h.Rehome(victim)
			}
		})
		b.Run(fmt.Sprintf("hashed/n=%d", nodes), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				d := NewHashedDir(items, nodes, 1, assign)
				b.StartTimer()
				d.Rehome(victim)
			}
		})
	}
}

// BenchmarkRehomeByAffected holds the cluster size fixed at 512 nodes
// and varies how many items the victim homes — the measured form of the
// O(items-on-failed) claim: hashed Rehome cost tracks the victim's
// posting count, not the total item count.
func BenchmarkRehomeByAffected(b *testing.B) {
	const nodes = 512
	const items = 8192
	for _, onVictim := range []int{16, 128, 1024} {
		// Pin onVictim items to the victim, the rest block-distributed
		// over the other nodes.
		victim := NodeID(nodes / 2)
		assign := func(i int) NodeID {
			if i < onVictim {
				return victim
			}
			n := i * (nodes - 1) / items
			if n >= victim {
				n++
			}
			return n
		}
		b.Run(fmt.Sprintf("hashed/on-victim=%d", onVictim), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				d := NewHashedDir(items, nodes, 1, assign)
				b.StartTimer()
				d.Rehome(victim)
			}
		})
	}
}

package proto

import "fmt"

// Role distinguishes the two replicas of an item (page or lock).
type Role int

const (
	// Primary is the home whose copy is fetched during failure-free
	// execution (the committed copy for pages).
	Primary Role = iota
	// Secondary is the backup home (the tentative copy for pages).
	Secondary
)

func (r Role) String() string {
	if r == Primary {
		return "primary"
	}
	return "secondary"
}

// HomeMap assigns each item (shared page or lock) k homes on k distinct
// nodes (slot 0 is the primary, slots 1..k-1 the secondaries), and
// reassigns homes when a node fails so that k distinct live replicas
// always exist. The same structure serves pages and locks; the paper uses
// the identical scheme for both with k = 2.
type HomeMap struct {
	nodes     int
	degree    int
	alive     []bool
	nAlive    int
	epoch     int
	primary   []NodeID
	secondary []NodeID
	// extra holds replica slots 2..degree-1, one row per slot; nil at the
	// paper's degree 2 so the seed footprint and layout are untouched.
	extra [][]NodeID
}

// Reassignment describes one home change performed by Rehome: the item's
// role now lives on NewNode, and the still-valid replica that must seed the
// new copy lives on Survivor.
type Reassignment struct {
	Item     int
	Role     Role
	NewNode  NodeID
	Survivor NodeID
}

// NewHomeMap builds a home map for items items over nodes nodes. assign
// gives each item's primary home (the paper lets the application choose
// primaries for locality); the secondary home starts as the next node in
// node order, as in the paper.
func NewHomeMap(items, nodes int, assign func(item int) NodeID) *HomeMap {
	return NewHomeMapK(items, nodes, 2, assign)
}

// NewHomeMapK builds a home map with replication degree k: each item's
// slot-s home starts as the s-th ring successor of its assigned primary,
// so k = 2 reproduces the paper's primary/next-node placement exactly.
func NewHomeMapK(items, nodes, k int, assign func(item int) NodeID) *HomeMap {
	if k < 2 {
		panic("proto: HomeMap needs replication degree >= 2")
	}
	if nodes < k {
		panic(fmt.Sprintf("proto: HomeMap needs at least %d nodes for %d-way replication", k, k))
	}
	h := &HomeMap{
		nodes:     nodes,
		degree:    k,
		alive:     make([]bool, nodes),
		nAlive:    nodes,
		primary:   make([]NodeID, items),
		secondary: make([]NodeID, items),
	}
	for i := range h.alive {
		h.alive[i] = true
	}
	for s := 2; s < k; s++ {
		h.extra = append(h.extra, make([]NodeID, items))
	}
	for i := 0; i < items; i++ {
		p := assign(i)
		if p < 0 || p >= nodes {
			panic(fmt.Sprintf("proto: assign(%d) = %d out of range", i, p))
		}
		h.primary[i] = p
		h.secondary[i] = (p + 1) % nodes
		for s := 2; s < k; s++ {
			h.extra[s-2][i] = NodeID((int(p) + s) % nodes)
		}
	}
	return h
}

// Items returns the number of items managed by the map.
func (h *HomeMap) Items() int { return len(h.primary) }

// Primary returns the item's current primary home.
func (h *HomeMap) Primary(item int) NodeID { return h.primary[item] }

// Secondary returns the item's current secondary home.
func (h *HomeMap) Secondary(item int) NodeID { return h.secondary[item] }

// Degree returns the replication degree k.
func (h *HomeMap) Degree() int { return h.degree }

// Replica returns the item's slot-th home (slot 0 is the primary).
func (h *HomeMap) Replica(item, slot int) NodeID {
	switch slot {
	case 0:
		return h.primary[item]
	case 1:
		return h.secondary[item]
	default:
		return h.extra[slot-2][item]
	}
}

// Replicas returns all k homes of the item, primary first. The slice is
// freshly allocated; hot paths should use Replica.
func (h *HomeMap) Replicas(item int) []NodeID {
	out := make([]NodeID, h.degree)
	for s := range out {
		out[s] = h.Replica(item, s)
	}
	return out
}

// Alive reports whether the map still considers node live.
func (h *HomeMap) Alive(n NodeID) bool { return h.alive[n] }

// AliveCount returns the number of live nodes.
func (h *HomeMap) AliveCount() int { return h.nAlive }

// Epoch returns the number of completed Rehome calls.
func (h *HomeMap) Epoch() int { return h.epoch }

// MemoryBytes returns the approximate resident footprint: k materialized
// NodeID arrays plus the liveness vector.
func (h *HomeMap) MemoryBytes() int64 {
	b := int64(len(h.primary)+len(h.secondary))*8 + int64(len(h.alive))
	for _, row := range h.extra {
		b += int64(len(row)) * 8
	}
	return b
}

// Clone returns an independent copy (test and benchmark support).
func (h *HomeMap) Clone() *HomeMap {
	c := &HomeMap{
		nodes:     h.nodes,
		degree:    h.degree,
		alive:     append([]bool(nil), h.alive...),
		nAlive:    h.nAlive,
		epoch:     h.epoch,
		primary:   append([]NodeID(nil), h.primary...),
		secondary: append([]NodeID(nil), h.secondary...),
	}
	for _, row := range h.extra {
		c.extra = append(c.extra, append([]NodeID(nil), row...))
	}
	return c
}

// nextAlive returns the first live node after n in ring order that differs
// from exclude.
func (h *HomeMap) nextAlive(n NodeID, exclude NodeID) NodeID {
	for i := 1; i <= h.nodes; i++ {
		c := (n + i) % h.nodes
		if h.alive[c] && c != exclude {
			return c
		}
	}
	panic("proto: no live node available for rehoming")
}

// Rehome marks failed as dead and reassigns every home role it held,
// guaranteeing the two replicas of each item stay on distinct live nodes.
// It returns the reassignments so the caller can rebuild the new copies
// from the surviving replicas. Rehoming below 2 live nodes panics: the
// scheme cannot replicate on a single node.
//
// The live-ring successor of every node is computed once up front, so a
// call costs O(items + N) instead of the per-hit nextAlive scan's
// O(items x N) — at 512 nodes with block-distributed pages roughly every
// item's scan paid the full ring walk. RehomeReference keeps the legacy
// per-hit scan; TestFlatRehomeMatchesReference pins bit-identity.
func (h *HomeMap) Rehome(failed NodeID) []Reassignment {
	if !h.alive[failed] {
		return nil
	}
	h.alive[failed] = false
	h.nAlive--
	if h.nAlive < h.degree {
		panic(fmt.Sprintf("proto: fewer than %d live nodes; replication impossible", h.degree))
	}
	h.epoch++
	// succ[n] = first live node strictly after n in ring order. One
	// backwards double-walk of the ring: positions [N, 2N) seed the
	// nearest-live-successor carry, positions [0, N) record it.
	succ := make([]NodeID, h.nodes)
	last := -1
	for i := 2*h.nodes - 1; i >= 0; i-- {
		c := i % h.nodes
		if i < h.nodes {
			succ[c] = last
		}
		if h.alive[c] {
			last = c
		}
	}
	var out []Reassignment
	if h.degree == 2 {
		// The paper's pair rule, kept verbatim as the k=2 fast path
		// (bit-identity with the seed and RehomeReference).
		for i := range h.primary {
			switch {
			case h.primary[i] == failed:
				// Promote the secondary, then pick a fresh secondary.
				h.primary[i] = h.secondary[i]
				h.secondary[i] = succ[h.primary[i]]
				out = append(out,
					Reassignment{Item: i, Role: Primary, NewNode: h.primary[i], Survivor: h.primary[i]},
					Reassignment{Item: i, Role: Secondary, NewNode: h.secondary[i], Survivor: h.primary[i]})
			case h.secondary[i] == failed:
				h.secondary[i] = succ[h.primary[i]]
				out = append(out,
					Reassignment{Item: i, Role: Secondary, NewNode: h.secondary[i], Survivor: h.primary[i]})
			}
		}
		return out
	}
	// General k: drop the failed slot, shift the surviving replicas left
	// (a slot-0 death promotes the first secondary in place), and append
	// a fresh tail replica — the first live ring successor of the new
	// primary not already holding a copy. At k=2 this is exactly the
	// pair rule above.
	homes := make([]NodeID, h.degree)
	for i := range h.primary {
		slot := -1
		switch failed {
		case h.primary[i]:
			slot = 0
		case h.secondary[i]:
			slot = 1
		default:
			for s := range h.extra {
				if h.extra[s][i] == failed {
					slot = s + 2
					break
				}
			}
		}
		if slot < 0 {
			continue
		}
		for s := 0; s < h.degree; s++ {
			homes[s] = h.Replica(i, s)
		}
		copy(homes[slot:], homes[slot+1:])
		tail := freshTail(succ, homes[:h.degree-1])
		homes[h.degree-1] = tail
		h.primary[i] = homes[0]
		h.secondary[i] = homes[1]
		for s := range h.extra {
			h.extra[s][i] = homes[s+2]
		}
		if slot == 0 {
			out = append(out,
				Reassignment{Item: i, Role: Primary, NewNode: homes[0], Survivor: homes[0]},
				Reassignment{Item: i, Role: Secondary, NewNode: tail, Survivor: homes[0]})
		} else {
			out = append(out,
				Reassignment{Item: i, Role: Secondary, NewNode: tail, Survivor: homes[0]})
		}
	}
	return out
}

// freshTail returns the first live ring successor of homes[0] that holds
// no copy of the item yet. succ must map every node to its nearest live
// strict successor; homes must contain only live nodes.
func freshTail(succ, homes []NodeID) NodeID {
	c := succ[homes[0]]
	for hop := 0; hop < len(succ); hop++ {
		member := false
		for _, m := range homes {
			if m == c {
				member = true
				break
			}
		}
		if !member {
			return c
		}
		c = succ[c]
	}
	panic("proto: no live node available for rehoming")
}

// RehomeReference is the seed's Rehome, kept verbatim as the
// bit-identity reference for the successor-table fast path: every hit
// pays a full nextAlive ring scan. Tests run both on clones and compare
// the resulting maps and reassignment lists element-wise.
func (h *HomeMap) RehomeReference(failed NodeID) []Reassignment {
	if !h.alive[failed] {
		return nil
	}
	h.alive[failed] = false
	h.nAlive--
	if h.nAlive < 2 {
		panic("proto: fewer than 2 live nodes; replication impossible")
	}
	h.epoch++
	var out []Reassignment
	for i := range h.primary {
		switch {
		case h.primary[i] == failed:
			h.primary[i] = h.secondary[i]
			h.secondary[i] = h.nextAlive(h.primary[i], h.primary[i])
			out = append(out,
				Reassignment{Item: i, Role: Primary, NewNode: h.primary[i], Survivor: h.primary[i]},
				Reassignment{Item: i, Role: Secondary, NewNode: h.secondary[i], Survivor: h.primary[i]})
		case h.secondary[i] == failed:
			h.secondary[i] = h.nextAlive(h.primary[i], h.primary[i])
			out = append(out,
				Reassignment{Item: i, Role: Secondary, NewNode: h.secondary[i], Survivor: h.primary[i]})
		}
	}
	return out
}

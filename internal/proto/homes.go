package proto

import "fmt"

// Role distinguishes the two replicas of an item (page or lock).
type Role int

const (
	// Primary is the home whose copy is fetched during failure-free
	// execution (the committed copy for pages).
	Primary Role = iota
	// Secondary is the backup home (the tentative copy for pages).
	Secondary
)

func (r Role) String() string {
	if r == Primary {
		return "primary"
	}
	return "secondary"
}

// HomeMap assigns each item (shared page or lock) a primary and a secondary
// home on two distinct nodes, and reassigns homes when a node fails so that
// two distinct live replicas always exist. The same structure serves pages
// and locks; the paper uses the identical scheme for both.
type HomeMap struct {
	nodes     int
	alive     []bool
	nAlive    int
	epoch     int
	primary   []NodeID
	secondary []NodeID
}

// Reassignment describes one home change performed by Rehome: the item's
// role now lives on NewNode, and the still-valid replica that must seed the
// new copy lives on Survivor.
type Reassignment struct {
	Item     int
	Role     Role
	NewNode  NodeID
	Survivor NodeID
}

// NewHomeMap builds a home map for items items over nodes nodes. assign
// gives each item's primary home (the paper lets the application choose
// primaries for locality); the secondary home starts as the next node in
// node order, as in the paper.
func NewHomeMap(items, nodes int, assign func(item int) NodeID) *HomeMap {
	if nodes < 2 {
		panic("proto: HomeMap needs at least 2 nodes for replication")
	}
	h := &HomeMap{
		nodes:     nodes,
		alive:     make([]bool, nodes),
		nAlive:    nodes,
		primary:   make([]NodeID, items),
		secondary: make([]NodeID, items),
	}
	for i := range h.alive {
		h.alive[i] = true
	}
	for i := 0; i < items; i++ {
		p := assign(i)
		if p < 0 || p >= nodes {
			panic(fmt.Sprintf("proto: assign(%d) = %d out of range", i, p))
		}
		h.primary[i] = p
		h.secondary[i] = (p + 1) % nodes
	}
	return h
}

// Items returns the number of items managed by the map.
func (h *HomeMap) Items() int { return len(h.primary) }

// Primary returns the item's current primary home.
func (h *HomeMap) Primary(item int) NodeID { return h.primary[item] }

// Secondary returns the item's current secondary home.
func (h *HomeMap) Secondary(item int) NodeID { return h.secondary[item] }

// Alive reports whether the map still considers node live.
func (h *HomeMap) Alive(n NodeID) bool { return h.alive[n] }

// AliveCount returns the number of live nodes.
func (h *HomeMap) AliveCount() int { return h.nAlive }

// Epoch returns the number of completed Rehome calls.
func (h *HomeMap) Epoch() int { return h.epoch }

// MemoryBytes returns the approximate resident footprint: two
// materialized NodeID arrays plus the liveness vector.
func (h *HomeMap) MemoryBytes() int64 {
	return int64(len(h.primary)+len(h.secondary))*8 + int64(len(h.alive))
}

// Clone returns an independent copy (test and benchmark support).
func (h *HomeMap) Clone() *HomeMap {
	return &HomeMap{
		nodes:     h.nodes,
		alive:     append([]bool(nil), h.alive...),
		nAlive:    h.nAlive,
		epoch:     h.epoch,
		primary:   append([]NodeID(nil), h.primary...),
		secondary: append([]NodeID(nil), h.secondary...),
	}
}

// nextAlive returns the first live node after n in ring order that differs
// from exclude.
func (h *HomeMap) nextAlive(n NodeID, exclude NodeID) NodeID {
	for i := 1; i <= h.nodes; i++ {
		c := (n + i) % h.nodes
		if h.alive[c] && c != exclude {
			return c
		}
	}
	panic("proto: no live node available for rehoming")
}

// Rehome marks failed as dead and reassigns every home role it held,
// guaranteeing the two replicas of each item stay on distinct live nodes.
// It returns the reassignments so the caller can rebuild the new copies
// from the surviving replicas. Rehoming below 2 live nodes panics: the
// scheme cannot replicate on a single node.
//
// The live-ring successor of every node is computed once up front, so a
// call costs O(items + N) instead of the per-hit nextAlive scan's
// O(items x N) — at 512 nodes with block-distributed pages roughly every
// item's scan paid the full ring walk. RehomeReference keeps the legacy
// per-hit scan; TestFlatRehomeMatchesReference pins bit-identity.
func (h *HomeMap) Rehome(failed NodeID) []Reassignment {
	if !h.alive[failed] {
		return nil
	}
	h.alive[failed] = false
	h.nAlive--
	if h.nAlive < 2 {
		panic("proto: fewer than 2 live nodes; replication impossible")
	}
	h.epoch++
	// succ[n] = first live node strictly after n in ring order. One
	// backwards double-walk of the ring: positions [N, 2N) seed the
	// nearest-live-successor carry, positions [0, N) record it.
	succ := make([]NodeID, h.nodes)
	last := -1
	for i := 2*h.nodes - 1; i >= 0; i-- {
		c := i % h.nodes
		if i < h.nodes {
			succ[c] = last
		}
		if h.alive[c] {
			last = c
		}
	}
	var out []Reassignment
	for i := range h.primary {
		switch {
		case h.primary[i] == failed:
			// Promote the secondary, then pick a fresh secondary.
			h.primary[i] = h.secondary[i]
			h.secondary[i] = succ[h.primary[i]]
			out = append(out,
				Reassignment{Item: i, Role: Primary, NewNode: h.primary[i], Survivor: h.primary[i]},
				Reassignment{Item: i, Role: Secondary, NewNode: h.secondary[i], Survivor: h.primary[i]})
		case h.secondary[i] == failed:
			h.secondary[i] = succ[h.primary[i]]
			out = append(out,
				Reassignment{Item: i, Role: Secondary, NewNode: h.secondary[i], Survivor: h.primary[i]})
		}
	}
	return out
}

// RehomeReference is the seed's Rehome, kept verbatim as the
// bit-identity reference for the successor-table fast path: every hit
// pays a full nextAlive ring scan. Tests run both on clones and compare
// the resulting maps and reassignment lists element-wise.
func (h *HomeMap) RehomeReference(failed NodeID) []Reassignment {
	if !h.alive[failed] {
		return nil
	}
	h.alive[failed] = false
	h.nAlive--
	if h.nAlive < 2 {
		panic("proto: fewer than 2 live nodes; replication impossible")
	}
	h.epoch++
	var out []Reassignment
	for i := range h.primary {
		switch {
		case h.primary[i] == failed:
			h.primary[i] = h.secondary[i]
			h.secondary[i] = h.nextAlive(h.primary[i], h.primary[i])
			out = append(out,
				Reassignment{Item: i, Role: Primary, NewNode: h.primary[i], Survivor: h.primary[i]},
				Reassignment{Item: i, Role: Secondary, NewNode: h.secondary[i], Survivor: h.primary[i]})
		case h.secondary[i] == failed:
			h.secondary[i] = h.nextAlive(h.primary[i], h.primary[i])
			out = append(out,
				Reassignment{Item: i, Role: Secondary, NewNode: h.secondary[i], Survivor: h.primary[i]})
		}
	}
	return out
}

package obs

import "sort"

// Counter is one named monotonic count.
type Counter struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Snapshot is a point-in-time reading of a registry, in registration
// order (stable across runs, so snapshots of deterministic simulations
// compare bit-identically).
type Snapshot []Counter

// Map returns the snapshot as name -> value (JSON-friendly; Go
// marshals map keys sorted, so the encoding is deterministic too).
func (s Snapshot) Map() map[string]int64 {
	m := make(map[string]int64, len(s))
	for _, c := range s {
		m[c.Name] = c.Value
	}
	return m
}

// Get returns the value of the named counter.
func (s Snapshot) Get(name string) (int64, bool) {
	for _, c := range s {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// Sorted returns a name-sorted copy (for human-readable listings).
func (s Snapshot) Sorted() Snapshot {
	out := append(Snapshot(nil), s...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Registry aggregates counter sources from independent subsystems
// (protocol stats, network stats, checkpoint counts) under dotted
// prefixes. Sources are closures read only at Snapshot, so registering
// them costs nothing during the run.
type Registry struct {
	sources []source
}

type source struct {
	prefix string
	read   func() []Counter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Add registers a counter source under prefix ("svm", "vmmc", ...).
func (r *Registry) Add(prefix string, read func() []Counter) {
	r.sources = append(r.sources, source{prefix: prefix, read: read})
}

// Snapshot reads every source and returns the combined counters as
// "prefix.name" entries, in registration order.
func (r *Registry) Snapshot() Snapshot {
	var out Snapshot
	for _, s := range r.sources {
		for _, c := range s.read() {
			out = append(out, Counter{Name: s.prefix + "." + c.Name, Value: c.Value})
		}
	}
	return out
}

package obs

import "math/bits"

// Latency histogram with fixed log-spaced buckets, in the HDR-histogram
// family: every power-of-two octave is split into 1<<histSubBits
// linearly spaced sub-buckets, so any recorded value lands in a bucket
// whose width is at most value/2^histSubBits — a bounded 6.25% relative
// quantization error at histSubBits = 4 — while the whole [0, 2^63)
// range fits in under a thousand counters. The counts array is embedded
// in the struct and indexing is pure bit arithmetic, so the record path
// allocates nothing and the same value sequence always produces the
// same counts: histograms are safe to put under bit-identity replay
// gates (svmserve -compare).

const (
	// histSubBits is the sub-bucket resolution: 1<<histSubBits sub-buckets
	// per octave, bounding relative error by 1/2^histSubBits.
	histSubBits  = 4
	histSubCount = 1 << histSubBits
	histSubMask  = histSubCount - 1

	// histBuckets covers every uint64 magnitude: values below
	// 2*histSubCount are recorded exactly (idx == value); larger values
	// use (msb-histSubBits) full octaves of histSubCount sub-buckets
	// offset past the exact region.
	histBuckets = (64-histSubBits)*histSubCount + histSubCount
)

// Histogram is a fixed-bucket log-spaced value histogram (intended for
// virtual-time latencies in nanoseconds). The zero value is ready to
// use; Record never allocates.
type Histogram struct {
	counts [histBuckets]int64
	n      int64
	sum    int64
	min    int64
	max    int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// histIndex maps a non-negative value to its bucket.
func histIndex(v int64) int {
	u := uint64(v)
	if u < 2*histSubCount {
		return int(u) // exact region: one value per bucket
	}
	msb := bits.Len64(u) - 1
	shift := uint(msb - histSubBits)
	return int(shift)<<histSubBits + int((u>>shift)&histSubMask) + histSubCount
}

// HistBucketBounds returns the inclusive value range [lo, hi] covered by
// bucket idx — the inverse of the record-path index mapping.
func HistBucketBounds(idx int) (lo, hi int64) {
	if idx < 2*histSubCount {
		return int64(idx), int64(idx)
	}
	shift := uint(idx>>histSubBits) - 1
	sub := int64(idx & histSubMask)
	lo = (histSubCount + sub) << shift
	hi = lo + (1 << shift) - 1
	return lo, hi
}

// Record adds one value. Negative values clamp to zero. Zero-alloc.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[histIndex(v)]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
}

// Count returns the number of recorded values.
func (h *Histogram) Count() int64 { return h.n }

// Sum returns the sum of recorded values.
func (h *Histogram) Sum() int64 { return h.sum }

// Min returns the smallest recorded value (0 when empty).
func (h *Histogram) Min() int64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the arithmetic mean of recorded values (0 when empty).
func (h *Histogram) Mean() int64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / h.n
}

// Percentile returns the value at quantile q in [0, 1]: the upper bound
// of the bucket holding the ceil(q*n)-th smallest recorded value,
// clamped to the observed max (so the top bucket reports the true
// maximum, and values in the exact region report exactly). q <= 0
// returns Min, q >= 1 returns Max, and an empty histogram returns 0.
// The result is a deterministic function of the recorded multiset.
func (h *Histogram) Percentile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := q * float64(h.n)
	var cum int64
	for i := range h.counts {
		c := h.counts[i]
		if c == 0 {
			continue
		}
		cum += c
		if float64(cum) >= target {
			_, hi := HistBucketBounds(i)
			if hi > h.max {
				hi = h.max
			}
			return hi
		}
	}
	return h.max
}

// Merge adds o's recorded values into h.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.n == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
}

// HistBucket is one non-empty bucket in a histogram snapshot.
type HistBucket struct {
	Idx   int   `json:"idx"`
	Lo    int64 `json:"lo"`
	Hi    int64 `json:"hi"`
	Count int64 `json:"count"`
}

// Buckets returns the non-empty buckets in value order — the exact
// content of the histogram, suitable for JSON recording and replay
// comparison.
func (h *Histogram) Buckets() []HistBucket {
	var out []HistBucket
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		lo, hi := HistBucketBounds(i)
		out = append(out, HistBucket{Idx: i, Lo: lo, Hi: hi, Count: c})
	}
	return out
}

package obs

import (
	"math/rand"
	"testing"
)

// TestHistBucketEdges verifies the index mapping and its inverse agree:
// every bucket's bounds round-trip through histIndex, and adjacent
// buckets tile the value range with no gaps or overlaps.
func TestHistBucketEdges(t *testing.T) {
	prevHi := int64(-1)
	for idx := 0; idx < histBuckets; idx++ {
		lo, hi := HistBucketBounds(idx)
		if lo > hi {
			t.Fatalf("bucket %d: lo %d > hi %d", idx, lo, hi)
		}
		if lo != prevHi+1 {
			t.Fatalf("bucket %d: lo %d, want %d (gap/overlap after previous hi)", idx, lo, prevHi+1)
		}
		prevHi = hi
		if hi < 0 {
			// Top octave bounds overflow int64; indexable values stop at
			// MaxInt64, which is fine for virtual-time latencies.
			break
		}
		if got := histIndex(lo); got != idx {
			t.Fatalf("histIndex(lo=%d) = %d, want %d", lo, got, idx)
		}
		if got := histIndex(hi); got != idx {
			t.Fatalf("histIndex(hi=%d) = %d, want %d", hi, got, idx)
		}
	}
}

// TestHistExactRegion: small values are recorded exactly — one value
// per bucket — so percentiles in that range are exact, not rounded.
func TestHistExactRegion(t *testing.T) {
	h := NewHistogram()
	for v := int64(0); v < 2*histSubCount; v++ {
		h.Record(v)
	}
	if h.Count() != 2*histSubCount {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Percentile(0.5); got != histSubCount-1 {
		t.Fatalf("p50 = %d, want %d", got, histSubCount-1)
	}
	if got := h.Percentile(1); got != 2*histSubCount-1 {
		t.Fatalf("p100 = %d, want %d", got, 2*histSubCount-1)
	}
	if got := h.Percentile(0); got != 0 {
		t.Fatalf("p0 = %d, want 0", got)
	}
}

// TestHistQuantizationBound: the reported percentile is never below the
// true value and overshoots by at most a sub-bucket width (bounded
// relative error).
func TestHistQuantizationBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := NewHistogram()
	var vals []int64
	for i := 0; i < 5000; i++ {
		v := rng.Int63n(1 << 40)
		vals = append(vals, v)
		h.Record(v)
	}
	for _, v := range vals {
		idx := histIndex(v)
		lo, hi := HistBucketBounds(idx)
		if v < lo || v > hi {
			t.Fatalf("value %d outside its bucket [%d, %d]", v, lo, hi)
		}
		if width := hi - lo; width > 0 && float64(width) > float64(v)/float64(histSubCount)+1 {
			t.Fatalf("value %d: bucket width %d exceeds error bound", v, width)
		}
	}
}

// TestHistPercentileMonotone: percentiles are monotone in q and bounded
// by [Min, Max].
func TestHistPercentileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHistogram()
	for i := 0; i < 2000; i++ {
		h.Record(rng.Int63n(1_000_000_000))
	}
	prev := int64(-1)
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
		p := h.Percentile(q)
		if p < prev {
			t.Fatalf("percentile not monotone: q=%g gives %d after %d", q, p, prev)
		}
		if p < h.Min() || p > h.Max() {
			t.Fatalf("percentile %d outside [min=%d, max=%d]", p, h.Min(), h.Max())
		}
		prev = p
	}
}

// TestHistMerge: merging two histograms is equivalent to recording both
// value streams into one.
func TestHistMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b, all := NewHistogram(), NewHistogram(), NewHistogram()
	for i := 0; i < 1000; i++ {
		v := rng.Int63n(1 << 30)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		all.Record(v)
	}
	a.Merge(b)
	if a.Count() != all.Count() || a.Sum() != all.Sum() || a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatalf("merge summary mismatch: %d/%d/%d/%d vs %d/%d/%d/%d",
			a.Count(), a.Sum(), a.Min(), a.Max(), all.Count(), all.Sum(), all.Min(), all.Max())
	}
	ab, allb := a.Buckets(), all.Buckets()
	if len(ab) != len(allb) {
		t.Fatalf("merge bucket count %d, want %d", len(ab), len(allb))
	}
	for i := range ab {
		if ab[i] != allb[i] {
			t.Fatalf("bucket %d: %+v vs %+v", i, ab[i], allb[i])
		}
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		if a.Percentile(q) != all.Percentile(q) {
			t.Fatalf("q=%g: merged %d, want %d", q, a.Percentile(q), all.Percentile(q))
		}
	}
}

// TestHistEmptyAndNegative: edge behaviors are defined, not panics.
func TestHistEmptyAndNegative(t *testing.T) {
	h := NewHistogram()
	if h.Percentile(0.99) != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Record(-5) // clamps to 0
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative record: min=%d max=%d n=%d", h.Min(), h.Max(), h.Count())
	}
	h.Merge(nil) // no-op
	if h.Count() != 1 {
		t.Fatal("merge(nil) changed the histogram")
	}
}

// TestHistRecordZeroAlloc gates the zero-allocation record path.
func TestHistRecordZeroAlloc(t *testing.T) {
	h := NewHistogram()
	v := int64(123456)
	allocs := testing.AllocsPerRun(1000, func() {
		h.Record(v)
		v += 997
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %g per call, want 0", allocs)
	}
}

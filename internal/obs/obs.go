// Package obs is the simulator's observability layer: a per-node
// flight recorder of structured protocol events, a metrics registry
// unifying the counters scattered across the protocol and network
// layers, and the event/kind vocabulary shared by both.
//
// The design constraint is the same one PR 1 imposed on diff buffers:
// zero allocation in steady state. Events are fixed-size value structs
// recorded into preallocated rings, so an enabled recorder costs two
// branches and a struct copy per event and an idle one costs nothing.
// Recording never charges virtual time, so enabling the recorder cannot
// perturb the simulation's deterministic event stream.
package obs

import (
	"fmt"
	"io"
)

// Kind identifies a protocol event. String() returns the stable dotted
// names that predate this package (svm.TraceEvent.Kind), so recorder
// consumers and legacy tracers filter on the same vocabulary.
type Kind uint8

const (
	KNone Kind = iota

	// Release pipeline milestones (§4.2, Fig. 2).
	KReleaseCommit
	KReleasePhase1
	KReleaseSaveTS
	KReleaseCkptB
	KReleasePhase2
	KReleaseDone

	// Checkpointing.
	KCkptA

	// Barrier.
	KBarrierArrive

	// Lock protocol.
	KLockSet
	KLockClear
	KLockGrant
	KLockHeld
	KLockRelease

	// Barrier master's release broadcast: the merged vector time and
	// write notices are about to be sent to every member. A failure
	// exactly here leaves some members released and others waiting.
	KBarrierRelease

	// Wire-level boundaries, recorded only when wire tracing is enabled
	// (svm.Cluster.EnableWireTrace): KMsgSend as a message enters the
	// sender's post queue (a node killed here loses the queued message —
	// the partial-propagation window), KMsgDeliver after a message is
	// fully processed at a live destination (a node killed here dies
	// with the message's effects applied). Seq is a network-global
	// message counter.
	KMsgSend
	KMsgDeliver

	// Failure and recovery (§4.5).
	KKill
	KRecoveryStart
	KRecoveryReconcile
	KRecoveryRehome
	KRecoveryLocks
	KRecoverySync
	KRecoveryRestore
	KRecoveryMigrate
	KRecoveryDone

	numKinds
)

var kindNames = [numKinds]string{
	KNone:              "none",
	KReleaseCommit:     "release.commit",
	KReleasePhase1:     "release.phase1",
	KReleaseSaveTS:     "release.savets",
	KReleaseCkptB:      "release.ckptB",
	KReleasePhase2:     "release.phase2",
	KReleaseDone:       "release.done",
	KCkptA:             "ckpt.A",
	KBarrierArrive:     "barrier.arrive",
	KLockSet:           "lock.set",
	KLockClear:         "lock.clear",
	KLockGrant:         "lock.grant",
	KLockHeld:          "lock.held",
	KLockRelease:       "lock.release",
	KBarrierRelease:    "barrier.release",
	KMsgSend:           "msg.send",
	KMsgDeliver:        "msg.deliver",
	KKill:              "kill",
	KRecoveryStart:     "recovery.start",
	KRecoveryReconcile: "recovery.reconcile",
	KRecoveryRehome:    "recovery.rehome",
	KRecoveryLocks:     "recovery.locks",
	KRecoverySync:      "recovery.sync",
	KRecoveryRestore:   "recovery.restore",
	KRecoveryMigrate:   "recovery.migrate",
	KRecoveryDone:      "recovery.done",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// KindByName resolves a dotted kind name ("release.phase1") back to its
// Kind — the inverse of String, used to parse boundary IDs.
func KindByName(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name && Kind(k) != KNone {
			return Kind(k), true
		}
	}
	return KNone, false
}

// Kinds returns every defined kind except KNone, in declaration order.
func Kinds() []Kind {
	out := make([]Kind, 0, int(numKinds)-1)
	for k := KNone + 1; k < numKinds; k++ {
		out = append(out, k)
	}
	return out
}

// Event is one recorded protocol event. It is a fixed-size value so a
// ring of them is a single allocation and recording is a struct copy.
type Event struct {
	TimeNs int64 // virtual time of the event
	Seq    int64 // kind-specific sequence (release count, lock id, epoch)
	Node   int32
	Thread int32 // -1 for node-level (NI/handler) events
	Kind   Kind
}

func (e Event) String() string {
	return fmt.Sprintf("%10.3fms %-18s node=%d thread=%d seq=%d",
		float64(e.TimeNs)/1e6, e.Kind.String(), e.Node, e.Thread, e.Seq)
}

// Ring is a fixed-capacity event ring. Appends overwrite the oldest
// entry once full and never allocate.
type Ring struct {
	buf []Event
	n   uint64 // total appended
}

// NewRing returns a ring holding the last capacity events (min 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Append records e, overwriting the oldest entry when full.
func (r *Ring) Append(e Event) {
	r.buf[r.n%uint64(len(r.buf))] = e
	r.n++
}

// Total returns the number of events ever appended.
func (r *Ring) Total() uint64 { return r.n }

// Last returns up to k retained events, oldest first. The returned
// slice is freshly allocated (Last is a debugging endpoint, not a hot
// path).
func (r *Ring) Last(k int) []Event {
	held := r.n
	if held > uint64(len(r.buf)) {
		held = uint64(len(r.buf))
	}
	if uint64(k) > held {
		k = int(held)
	}
	out := make([]Event, 0, k)
	for i := r.n - uint64(k); i < r.n; i++ {
		out = append(out, r.buf[i%uint64(len(r.buf))])
	}
	return out
}

// Recorder is the per-node flight recorder: one ring per node plus an
// optional streaming sink (svmtrace). The clock stamps events with the
// engine's virtual time at record.
type Recorder struct {
	rings []*Ring
	clock func() int64
	sink  func(Event)
}

// NewRecorder builds a recorder for nodes nodes keeping the last
// perNode events of each. clock supplies virtual timestamps (may be
// nil; events then keep a zero TimeNs unless pre-stamped).
func NewRecorder(nodes, perNode int, clock func() int64) *Recorder {
	r := &Recorder{rings: make([]*Ring, nodes), clock: clock}
	for i := range r.rings {
		r.rings[i] = NewRing(perNode)
	}
	return r
}

// SetSink installs a streaming consumer invoked on every recorded
// event, after it lands in the ring. Pass nil to detach.
func (r *Recorder) SetSink(fn func(Event)) { r.sink = fn }

// Record stamps and stores one event. Zero-allocation: the event is
// copied by value into a preallocated ring.
func (r *Recorder) Record(e Event) {
	if e.TimeNs == 0 && r.clock != nil {
		e.TimeNs = r.clock()
	}
	if int(e.Node) >= 0 && int(e.Node) < len(r.rings) {
		r.rings[e.Node].Append(e)
	}
	if r.sink != nil {
		r.sink(e)
	}
}

// Node returns node i's ring.
func (r *Recorder) Node(i int) *Ring { return r.rings[i] }

// Nodes returns the number of per-node rings.
func (r *Recorder) Nodes() int { return len(r.rings) }

// Dump writes each node's last lastN retained events to w — the
// post-mortem view svmcheck prints when a schedule fails.
func (r *Recorder) Dump(w io.Writer, lastN int) {
	for i, ring := range r.rings {
		evs := ring.Last(lastN)
		fmt.Fprintf(w, "node %d: last %d of %d events\n", i, len(evs), ring.Total())
		for _, e := range evs {
			fmt.Fprintf(w, "  %s\n", e.String())
		}
	}
}

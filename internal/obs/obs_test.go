package obs

import (
	"strings"
	"testing"
)

func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Append(Event{Seq: int64(i), Kind: KLockSet})
	}
	if r.Total() != 10 {
		t.Fatalf("Total = %d, want 10", r.Total())
	}
	evs := r.Last(4)
	if len(evs) != 4 {
		t.Fatalf("Last(4) returned %d events", len(evs))
	}
	for i, e := range evs {
		if want := int64(6 + i); e.Seq != want {
			t.Errorf("event %d: Seq = %d, want %d (oldest-first)", i, e.Seq, want)
		}
	}
	if got := r.Last(100); len(got) != 4 {
		t.Errorf("Last(100) returned %d events, want 4 (ring capacity)", len(got))
	}
}

func TestRingLastBeforeFull(t *testing.T) {
	r := NewRing(8)
	r.Append(Event{Seq: 1})
	r.Append(Event{Seq: 2})
	evs := r.Last(8)
	if len(evs) != 2 || evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("Last = %+v, want seqs [1 2]", evs)
	}
}

func TestRecorderStampsAndStreams(t *testing.T) {
	now := int64(0)
	rec := NewRecorder(2, 16, func() int64 { return now })
	var streamed []Event
	rec.SetSink(func(e Event) { streamed = append(streamed, e) })

	now = 42
	rec.Record(Event{Kind: KLockGrant, Node: 1, Thread: -1, Seq: 3})
	if got := rec.Node(1).Last(1); len(got) != 1 || got[0].TimeNs != 42 {
		t.Fatalf("ring event = %+v, want TimeNs 42", got)
	}
	if len(streamed) != 1 || streamed[0].TimeNs != 42 || streamed[0].Kind != KLockGrant {
		t.Fatalf("sink got %+v", streamed)
	}
	if n := rec.Node(0).Total(); n != 0 {
		t.Errorf("node 0 recorded %d events, want 0", n)
	}
}

func TestRecordZeroAlloc(t *testing.T) {
	rec := NewRecorder(1, 64, func() int64 { return 7 })
	e := Event{Kind: KReleaseDone, Node: 0, Thread: 2, Seq: 9}
	allocs := testing.AllocsPerRun(1000, func() { rec.Record(e) })
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f objects per call, want 0", allocs)
	}
}

func TestKindStrings(t *testing.T) {
	// These names are the wire contract with svm.TraceEvent consumers.
	want := map[Kind]string{
		KReleaseCommit: "release.commit",
		KReleasePhase1: "release.phase1",
		KReleaseSaveTS: "release.savets",
		KReleaseCkptB:  "release.ckptB",
		KReleasePhase2: "release.phase2",
		KReleaseDone:   "release.done",
		KCkptA:         "ckpt.A",
		KBarrierArrive: "barrier.arrive",
		KLockGrant:     "lock.grant",
		KKill:          "kill",
		KRecoveryStart: "recovery.start",
		KRecoveryDone:  "recovery.done",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	for k := KNone; k < numKinds; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
}

func TestRegistrySnapshot(t *testing.T) {
	reg := NewRegistry()
	a := int64(1)
	reg.Add("svm", func() []Counter { return []Counter{{Name: "faults", Value: a}} })
	reg.Add("vmmc", func() []Counter { return []Counter{{Name: "msgs", Value: 5}} })

	snap := reg.Snapshot()
	if len(snap) != 2 || snap[0].Name != "svm.faults" || snap[1].Name != "vmmc.msgs" {
		t.Fatalf("snapshot = %+v", snap)
	}
	a = 10
	if v, ok := reg.Snapshot().Get("svm.faults"); !ok || v != 10 {
		t.Fatalf("Get(svm.faults) = %d, %v — sources must be read at snapshot time", v, ok)
	}
	m := snap.Map()
	if m["vmmc.msgs"] != 5 {
		t.Fatalf("Map = %v", m)
	}
}

func TestDump(t *testing.T) {
	rec := NewRecorder(2, 8, nil)
	rec.Record(Event{TimeNs: 1000, Kind: KLockHeld, Node: 0, Thread: 1, Seq: 2})
	var sb strings.Builder
	rec.Dump(&sb, 8)
	out := sb.String()
	for _, want := range []string{"node 0:", "node 1:", "lock.held", "seq=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

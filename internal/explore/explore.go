// Package explore is the exhaustive protocol-step failure-point
// explorer: it runs a workload once recording every protocol-step
// boundary from the flight recorder, then re-executes the workload once
// per boundary with a fail-stop injected exactly there, driving
// recovery to completion under the online invariant auditor and a
// memory-consistency oracle (internal/oracle).
//
// A boundary is the k-th occurrence of an event kind on a node in the
// deterministic event stream: every vmmc message send and delivery,
// every release-pipeline transition (commit, phase 1, timestamp save,
// point-B checkpoint, phase 2, done), every lock grant, handoff and
// clear, every checkpoint encode, every barrier arrival and release
// broadcast. Recording charges no virtual time, so the injection run's
// pre-kill prefix is bit-identical to the recording run: the k-th
// occurrence in the recording IS the k-th occurrence when re-executed,
// and a boundary ID is an exact, reproducible coordinate for a failure.
package explore

import (
	"fmt"
	"hash"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"ftsvm/internal/obs"
	"ftsvm/internal/oracle"
	"ftsvm/internal/svm"
)

// Boundary is one failure point: the Occ-th occurrence (1-based) of
// Kind on Node in the run's deterministic event stream. Injecting a
// failure at the boundary kills Node at the instant the event fires.
type Boundary struct {
	Kind obs.Kind
	Node int32
	Occ  int64
}

// ID renders the boundary's stable coordinate, e.g.
// "release.phase1@n2#3". The triple (app, ID, seed) reproduces a
// schedule exactly.
func (b Boundary) ID() string {
	return fmt.Sprintf("%s@n%d#%d", b.Kind, b.Node, b.Occ)
}

// ParseID is the inverse of ID.
func ParseID(s string) (Boundary, error) {
	at := strings.LastIndexByte(s, '@')
	sep := strings.LastIndexByte(s, '#')
	if at < 0 || sep < at || !strings.HasPrefix(s[at+1:], "n") {
		return Boundary{}, fmt.Errorf("explore: malformed boundary id %q (want kind@nN#occ)", s)
	}
	kind, ok := obs.KindByName(s[:at])
	if !ok {
		return Boundary{}, fmt.Errorf("explore: unknown event kind %q in boundary id %q", s[:at], s)
	}
	node, err := strconv.Atoi(s[at+2 : sep])
	if err != nil {
		return Boundary{}, fmt.Errorf("explore: bad node in boundary id %q: %v", s, err)
	}
	occ, err := strconv.ParseInt(s[sep+1:], 10, 64)
	if err != nil || occ < 1 {
		return Boundary{}, fmt.Errorf("explore: bad occurrence in boundary id %q", s)
	}
	return Boundary{Kind: kind, Node: int32(node), Occ: occ}, nil
}

// Instance is one fresh, runnable workload: the cluster plus the
// workload's own post-run self-check (result verification).
type Instance struct {
	Cluster *svm.Cluster
	Check   func() error
}

// Spec builds identical instances of one workload on demand. New must
// return a deterministic cluster (fixed seed in the model config): the
// explorer's whole premise is that two instances replay the same event
// stream until the injected kill.
type Spec struct {
	Name string
	New  func() (Instance, error)
	// RingSize is the per-node flight-recorder ring (default 512 — the
	// rings only feed post-mortem dumps; boundary counting streams).
	RingSize int
	// AuditStride is the invariant auditor's event stride (default 1:
	// audit after every engine event).
	AuditStride int
}

func (sp Spec) ringSize() int {
	if sp.RingSize <= 0 {
		return 512
	}
	return sp.RingSize
}

func (sp Spec) auditStride() int {
	if sp.AuditStride <= 0 {
		return 1
	}
	return sp.AuditStride
}

// Trace is the outcome of a recording run: every boundary in stream
// order, the events the engine executed, and the run's fingerprint.
type Trace struct {
	Boundaries  []Boundary
	Events      int64
	TimeNs      int64
	Fingerprint string
}

// Budget returns the event budget injection runs derive from this
// recording: generous headroom for a recovery episode plus retries, yet
// a deterministic bound on livelock.
func (tr *Trace) Budget() int64 {
	return 40*tr.Events + 200_000
}

// Record executes the workload once, failure-free, enumerating every
// protocol-step boundary. The run must itself pass the auditor and the
// workload self-check: boundaries of a broken baseline mean nothing.
func Record(sp Spec) (*Trace, error) {
	inst, err := sp.New()
	if err != nil {
		return nil, fmt.Errorf("explore: build %s: %w", sp.Name, err)
	}
	cl := inst.Cluster
	rec := cl.EnableFlightRecorder(sp.ringSize())
	cl.EnableWireTrace()
	cl.EnableAuditor(sp.auditStride())

	tr := &Trace{}
	occ := map[occKey]int64{}
	h := fnv.New64a()
	rec.SetSink(func(e obs.Event) {
		k := occKey{e.Kind, e.Node}
		occ[k]++
		tr.Boundaries = append(tr.Boundaries, Boundary{Kind: e.Kind, Node: e.Node, Occ: occ[k]})
		hashEvent(h, e)
	})
	if err := cl.Run(); err != nil {
		return nil, fmt.Errorf("explore: %s baseline run: %w", sp.Name, err)
	}
	if !cl.Finished() {
		return nil, fmt.Errorf("explore: %s baseline run did not finish", sp.Name)
	}
	if err := inst.Check(); err != nil {
		return nil, fmt.Errorf("explore: %s baseline self-check: %w", sp.Name, err)
	}
	tr.Events = cl.Engine().Events()
	tr.TimeNs = cl.ExecTime()
	hashMemory(h, cl)
	tr.Fingerprint = fmt.Sprintf("%016x", h.Sum64())
	return tr, nil
}

type occKey struct {
	kind obs.Kind
	node int32
}

// Verdict is the outcome of one injection run.
type Verdict struct {
	Schedule []string `json:"schedule"`          // boundary IDs requested
	Injected []string `json:"injected"`          // kills actually delivered
	Refused  []string `json:"refused,omitempty"` // kills refused (single-failure model)
	Pass     bool     `json:"pass"`
	Err      string   `json:"err,omitempty"`
	Events   int64    `json:"events"`
	TimeNs   int64    `json:"time_ns"`
	// Recoveries counts completed recovery episodes. Zero with a kill
	// injected means the failure went undetected: the victim had no
	// remaining protocol obligations, so no survivor ever contacted it —
	// the run is then held to the availability invariant (committed state
	// intact on live homes) instead of the post-recovery replica
	// invariant.
	Recoveries int64 `json:"recoveries"`
	// Fingerprint hashes the run's full event stream and final committed
	// memory: two runs of the same schedule must produce equal values.
	Fingerprint string `json:"fingerprint"`
}

// Explore re-executes the workload with a fail-stop injected at b.
func Explore(sp Spec, b Boundary, budget int64) Verdict {
	return ExploreSchedule(sp, []Boundary{b}, budget)
}

// ExploreSchedule re-executes the workload injecting a kill at each
// scheduled boundary, in stream order. The protocol's failure model is
// k-1 overlapping failures at replication degree k (§4.1 generalized;
// the paper's k=2 tolerates exactly one): a kill is refused — recorded
// in Verdict.Refused, never injected — rather than silently explored as
// a schedule the protocol does not claim to survive, when its target is
// already dead, when k-1 failures are already unrecovered, or when the
// kill would leave fewer than k live nodes (no legal rehoming exists).
// Kills after a completed recovery are injected normally.
//
// The verdict passes when the run finishes within the event budget with
// every scheduled kill injected or refused, the invariant auditor stays
// silent, the surviving threads complete the workload, its self-check
// passes, the replica invariant holds, and the final committed memory
// equals the consistency oracle's causal replay of the commit log.
func ExploreSchedule(sp Spec, schedule []Boundary, budget int64) (v Verdict) {
	for _, b := range schedule {
		v.Schedule = append(v.Schedule, b.ID())
	}
	inst, err := sp.New()
	if err != nil {
		v.Err = fmt.Sprintf("build %s: %v", sp.Name, err)
		return v
	}
	cl := inst.Cluster
	rec := cl.EnableFlightRecorder(sp.ringSize())
	cl.EnableWireTrace()
	cl.EnableAuditor(sp.auditStride())
	if budget > 0 {
		cl.Engine().SetEventBudget(budget)
	}

	var log oracle.Log
	cl.SetCommitSink(log.Commit)

	pending := append([]Boundary(nil), schedule...)
	occ := map[occKey]int64{}
	h := fnv.New64a()
	injecting := false
	rec.SetSink(func(e obs.Event) {
		k := occKey{e.Kind, e.Node}
		occ[k]++
		hashEvent(h, e)
		if injecting {
			// Nested record from KillNode's own KKill trace: count and
			// hash it, but don't rescan the schedule mid-injection.
			return
		}
		for i := 0; i < len(pending); i++ {
			b := pending[i]
			if b.Kind != e.Kind || b.Node != e.Node || b.Occ != occ[k] {
				continue
			}
			pending = append(pending[:i], pending[i+1:]...)
			i--
			switch {
			case cl.NodeDead(int(b.Node)) ||
				cl.UnrecoveredFailures() >= cl.Degree()-1 ||
				cl.LiveNodes()-1 < cl.Degree():
				// Target already gone, overlap budget exhausted (k-1
				// unrecovered failures at degree k), or too few survivors
				// to rehome: outside the failure model — refuse.
				v.Refused = append(v.Refused, b.ID())
			default:
				v.Injected = append(v.Injected, b.ID())
				injecting = true
				cl.KillNode(int(b.Node))
				injecting = false
			}
		}
	})

	runErr := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("panic: %v", r)
			}
		}()
		return cl.Run()
	}()
	v.Events = cl.Engine().Events()
	v.TimeNs = cl.ExecTime()
	v.Recoveries = cl.ProtoStats().Recoveries
	hashMemory(h, cl)
	v.Fingerprint = fmt.Sprintf("%016x", h.Sum64())

	switch {
	case runErr != nil:
		v.Err = runErr.Error()
	case len(pending) > 0:
		// A scheduled boundary never fired — for a single kill that means
		// the coordinate does not exist in this run (stale trace).
		ids := make([]string, len(pending))
		for i, b := range pending {
			ids[i] = b.ID()
		}
		v.Err = fmt.Sprintf("boundaries never fired: %s", strings.Join(ids, ","))
	case !cl.Finished():
		v.Err = "surviving threads did not finish"
	default:
		err := inst.Check()
		if err == nil {
			if len(v.Injected) > 0 && v.Recoveries < int64(len(v.Injected)) {
				// Undetected failure: a victim died after its last
				// protocol obligation, so nothing ever probed it. The
				// post-recovery replica invariant cannot hold (one home is
				// dead and nobody rehomed); the availability invariant
				// must, and memory is read from live homes only.
				err = cl.VerifyAvailability()
			} else {
				err = cl.VerifyReplicas()
			}
		}
		if err == nil {
			err = checkOracle(cl, &log)
		}
		if err != nil {
			v.Err = err.Error()
		}
	}
	v.Pass = v.Err == ""
	return v
}

// checkOracle replays the run's commit log up to the cluster's final
// consistency frontier and compares every page frame against live
// memory (PeekLiveBytes falls back to PeekBytes when nothing died).
func checkOracle(cl *svm.Cluster, log *oracle.Log) error {
	psz := cl.PageSize()
	store := oracle.NewStore(cl.NumPages(), psz, cl.Nodes())
	if err := store.Replay(log.Records, cl.LiveVT()); err != nil {
		return err
	}
	return store.Check(func(p int) []byte { return cl.PeekLiveBytes(p*psz, psz) })
}

// hashEvent folds one recorded event into the determinism fingerprint.
// TimeNs is included: equal fingerprints mean equal virtual schedules,
// not just equal event orders.
func hashEvent(h hash.Hash64, e obs.Event) {
	var buf [21]byte
	putI64(buf[0:], e.TimeNs)
	putI64(buf[8:], e.Seq)
	putI32(buf[16:], e.Node)
	buf[20] = byte(e.Kind)
	// Thread is excluded: node-level events carry -1 and per-thread
	// attribution is already implied by the deterministic stream order.
	h.Write(buf[:])
}

// hashMemory folds the final authoritative memory image into the
// fingerprint.
func hashMemory(h hash.Hash64, cl *svm.Cluster) {
	psz := cl.PageSize()
	for p := 0; p < cl.NumPages(); p++ {
		h.Write(cl.PeekBytes(p*psz, psz))
	}
}

func putI64(b []byte, v int64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func putI32(b []byte, v int32) {
	for i := 0; i < 4; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// Sample selects up to n boundaries from bs with an even stride, always
// keeping the first and last — the cheap way to cap a sweep's cost while
// still spanning the whole run.
func Sample(bs []Boundary, n int) []Boundary {
	if n <= 0 || n >= len(bs) {
		return bs
	}
	out := make([]Boundary, 0, n)
	if n == 1 {
		return append(out, bs[0])
	}
	step := float64(len(bs)-1) / float64(n-1)
	last := -1
	for i := 0; i < n; i++ {
		j := int(float64(i)*step + 0.5)
		if j >= len(bs) {
			j = len(bs) - 1
		}
		if j == last {
			continue
		}
		last = j
		out = append(out, bs[j])
	}
	return out
}

// FilterKinds keeps only boundaries of the named kinds (dotted names).
func FilterKinds(bs []Boundary, kinds []string) ([]Boundary, error) {
	want := map[obs.Kind]bool{}
	for _, name := range kinds {
		k, ok := obs.KindByName(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("explore: unknown event kind %q", name)
		}
		want[k] = true
	}
	var out []Boundary
	for _, b := range bs {
		if want[b.Kind] {
			out = append(out, b)
		}
	}
	return out, nil
}

// KindHistogram counts boundaries per kind, rendered sorted by count
// then name — the sweep summary line.
func KindHistogram(bs []Boundary) string {
	counts := map[obs.Kind]int{}
	for _, b := range bs {
		counts[b.Kind]++
	}
	type kc struct {
		name string
		n    int
	}
	var ks []kc
	for k, n := range counts {
		ks = append(ks, kc{k.String(), n})
	}
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].n != ks[j].n {
			return ks[i].n > ks[j].n
		}
		return ks[i].name < ks[j].name
	})
	parts := make([]string, len(ks))
	for i, k := range ks {
		parts[i] = fmt.Sprintf("%s:%d", k.name, k.n)
	}
	return strings.Join(parts, " ")
}

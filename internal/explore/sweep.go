package explore

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Sweep runs one injection per boundary on a pool of up to workers
// goroutines (workers <= 0: GOMAXPROCS), and returns the verdicts in
// input order. Every injection run owns a fresh instance — engine,
// cluster, workload — so the worker count changes wall-clock time only,
// never a verdict, and callers that emit verdicts by iterating the
// returned slice get a stable order regardless of completion order.
// progress, when non-nil, is called once per completed run (serialized,
// in completion order).
func Sweep(sp Spec, bs []Boundary, budget int64, workers int, progress func(done int, v Verdict)) []Verdict {
	schedules := make([][]Boundary, len(bs))
	for i, b := range bs {
		schedules[i] = []Boundary{b}
	}
	return SweepSchedules(sp, schedules, budget, workers, progress)
}

// SweepSchedules is Sweep over multi-kill schedules: one injection run
// per schedule, same pool, same input-order verdicts.
func SweepSchedules(sp Spec, schedules [][]Boundary, budget int64, workers int, progress func(done int, v Verdict)) []Verdict {
	out := make([]Verdict, len(schedules))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(schedules) {
		workers = len(schedules)
	}
	if workers <= 1 {
		for i, s := range schedules {
			out[i] = ExploreSchedule(sp, s, budget)
			if progress != nil {
				progress(i+1, out[i])
			}
		}
		return out
	}
	var next, done atomic.Int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(schedules) {
					return
				}
				v := ExploreSchedule(sp, schedules[i], budget)
				out[i] = v
				d := int(done.Add(1))
				if progress != nil {
					mu.Lock()
					progress(d, v)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return out
}

// Shard selects the i-th of n interleaved slices of bs (every boundary
// whose index ≡ i mod n), for splitting one sweep across machines: the
// n shards partition the boundary list, and because boundaries carry
// stable ids the union of the shards' verdicts equals one full sweep.
// Interleaving (rather than contiguous ranges) balances the shards, as
// neighbouring boundaries tend to have similar run costs.
func Shard(bs []Boundary, i, n int) []Boundary {
	if n <= 1 {
		return bs
	}
	var out []Boundary
	for k := i; k < len(bs); k += n {
		out = append(out, bs[k])
	}
	return out
}

package explore

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Sweep runs one injection per boundary, in parallel on up to shards
// workers (shards <= 0: GOMAXPROCS), and returns the verdicts in input
// order. Every injection run owns a fresh instance — engine, cluster,
// workload — so the shard count changes wall-clock time only, never a
// verdict. progress, when non-nil, is called once per completed run
// (serialized, in completion order).
func Sweep(sp Spec, bs []Boundary, budget int64, shards int, progress func(done int, v Verdict)) []Verdict {
	out := make([]Verdict, len(bs))
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > len(bs) {
		shards = len(bs)
	}
	if shards <= 1 {
		for i, b := range bs {
			out[i] = Explore(sp, b, budget)
			if progress != nil {
				progress(i+1, out[i])
			}
		}
		return out
	}
	var next, done atomic.Int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(bs) {
					return
				}
				v := Explore(sp, bs[i], budget)
				out[i] = v
				d := int(done.Add(1))
				if progress != nil {
					mu.Lock()
					progress(d, v)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return out
}

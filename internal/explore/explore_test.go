package explore_test

import (
	"strings"
	"sync"
	"testing"

	"ftsvm/internal/explore"
	"ftsvm/internal/harness"
	"ftsvm/internal/obs"
)

func counterSpec() explore.Spec {
	return harness.ExploreSpec(harness.Config{
		App: "counter", Size: harness.SizeSmall, Nodes: 4, ThreadsPerNode: 1,
	})
}

// The baseline recording is shared across tests and fuzz iterations: it
// is pure input data (boundary coordinates + budget), never mutated.
var (
	baseOnce sync.Once
	baseTr   *explore.Trace
	baseErr  error
)

func baseline(t testing.TB) *explore.Trace {
	t.Helper()
	baseOnce.Do(func() { baseTr, baseErr = explore.Record(counterSpec()) })
	if baseErr != nil {
		t.Fatalf("baseline recording: %v", baseErr)
	}
	return baseTr
}

func TestParseIDRoundTrip(t *testing.T) {
	for _, b := range []explore.Boundary{
		{Kind: obs.KReleasePhase1, Node: 2, Occ: 3},
		{Kind: obs.KMsgDeliver, Node: 0, Occ: 1},
		{Kind: obs.KBarrierArrive, Node: 7, Occ: 12},
	} {
		got, err := explore.ParseID(b.ID())
		if err != nil || got != b {
			t.Fatalf("ParseID(%q) = %v, %v; want %v", b.ID(), got, err, b)
		}
	}
	for _, bad := range []string{
		"nonsense", "release.phase1@x2#3", "bogus.kind@n1#2",
		"msg.send@n1#0", "msg.send@n1#", "@n1#1",
	} {
		if _, err := explore.ParseID(bad); err == nil {
			t.Fatalf("ParseID(%q) accepted a malformed id", bad)
		}
	}
}

// TestRecordEnumeratesBoundaries: a failure-free recording run must
// enumerate a rich boundary set spanning the protocol's step kinds, and
// recording must be deterministic — the explorer's premise is that a
// second instance replays the identical event stream.
func TestRecordEnumeratesBoundaries(t *testing.T) {
	tr := baseline(t)
	if len(tr.Boundaries) < 500 {
		t.Fatalf("recorded %d boundaries, want a rich set (>= 500)", len(tr.Boundaries))
	}
	hist := explore.KindHistogram(tr.Boundaries)
	for _, kind := range []string{"msg.send", "msg.deliver", "lock.set", "release.phase1", "barrier.arrive"} {
		if !strings.Contains(hist, kind) {
			t.Fatalf("histogram %q missing kind %q", hist, kind)
		}
	}
	for _, b := range tr.Boundaries {
		if got, err := explore.ParseID(b.ID()); err != nil || got != b {
			t.Fatalf("boundary %v does not round-trip: %v %v", b, got, err)
		}
	}
	tr2, err := explore.Record(counterSpec())
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Fingerprint != tr.Fingerprint || len(tr2.Boundaries) != len(tr.Boundaries) {
		t.Fatalf("recording not deterministic: %s/%d vs %s/%d",
			tr.Fingerprint, len(tr.Boundaries), tr2.Fingerprint, len(tr2.Boundaries))
	}
}

// TestSweepSampledBoundariesPass: an evenly sampled sweep must pass the
// auditor, the workload self-check, the replica/availability invariant,
// and the consistency oracle at every point.
func TestSweepSampledBoundariesPass(t *testing.T) {
	tr := baseline(t)
	bs := explore.Sample(tr.Boundaries, 16)
	vs := explore.Sweep(counterSpec(), bs, tr.Budget(), 4, nil)
	for i, v := range vs {
		if !v.Pass {
			t.Errorf("boundary %s failed: %s", bs[i].ID(), v.Err)
		}
		if got := len(v.Injected) + len(v.Refused); got != 1 {
			t.Errorf("boundary %s: injected+refused = %d, want 1", bs[i].ID(), got)
		}
		if v.Fingerprint == "" {
			t.Errorf("boundary %s: empty fingerprint", bs[i].ID())
		}
	}
}

// TestShardPartition: the i/n shards must partition the boundary list —
// every boundary in exactly one shard, order preserved within each —
// so n machines sweeping shards 0..n-1 together cover one full sweep.
func TestShardPartition(t *testing.T) {
	tr := baseline(t)
	bs := tr.Boundaries
	for _, n := range []int{1, 3, 4, 7} {
		seen := make(map[string]int)
		for i := 0; i < n; i++ {
			sh := explore.Shard(bs, i, n)
			last := -1
			for _, b := range sh {
				seen[b.ID()]++
				idx := -1
				for k := range bs {
					if bs[k] == b {
						idx = k
						break
					}
				}
				if idx <= last {
					t.Fatalf("n=%d shard %d: boundary %s out of input order", n, i, b.ID())
				}
				last = idx
			}
		}
		if len(seen) != len(bs) {
			t.Fatalf("n=%d: shards cover %d of %d boundaries", n, len(seen), len(bs))
		}
		for id, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: boundary %s appears in %d shards", n, id, c)
			}
		}
	}
}

// TestVerdictReproducible: the reproduction contract — (app, boundary,
// seed) fully determines the run, down to a bit-identical fingerprint.
func TestVerdictReproducible(t *testing.T) {
	tr := baseline(t)
	b := tr.Boundaries[len(tr.Boundaries)/2]
	v1 := explore.Explore(counterSpec(), b, tr.Budget())
	v2 := explore.Explore(counterSpec(), b, tr.Budget())
	if !v1.Pass {
		t.Fatalf("boundary %s failed: %s", b.ID(), v1.Err)
	}
	if v1.Fingerprint != v2.Fingerprint {
		t.Fatalf("fingerprints diverge for %s: %s vs %s", b.ID(), v1.Fingerprint, v2.Fingerprint)
	}
}

// TestSecondFailureDuringRecoveryRefused pins the single-failure model
// (§4.1): a second kill whose boundary fires while the first failure's
// recovery episode is still pending must be refused — recorded, never
// injected — rather than silently explored as a schedule the protocol
// does not claim to survive.
func TestSecondFailureDuringRecoveryRefused(t *testing.T) {
	tr := baseline(t)
	var first explore.Boundary
	for _, b := range tr.Boundaries {
		if b.Kind == obs.KReleasePhase1 && b.Node == 1 {
			first = b
			break
		}
	}
	if first.Occ == 0 {
		t.Fatal("no release.phase1 boundary on node 1 in the baseline")
	}

	// Discovery run: inject the first kill by hand and note the first
	// boundary on a live node that fires while recovery is pending. The
	// injection run replays the identical prefix, so the coordinate is
	// valid there too.
	sp := counterSpec()
	inst, err := sp.New()
	if err != nil {
		t.Fatal(err)
	}
	cl := inst.Cluster
	rec := cl.EnableFlightRecorder(64)
	cl.EnableWireTrace()
	type key struct {
		kind obs.Kind
		node int32
	}
	occ := map[key]int64{}
	var second explore.Boundary
	injected := false
	rec.SetSink(func(e obs.Event) {
		k := key{e.Kind, e.Node}
		occ[k]++
		if !injected && e.Kind == first.Kind && e.Node == first.Node && occ[k] == first.Occ {
			injected = true
			cl.KillNode(int(e.Node))
			return
		}
		if injected && second.Occ == 0 && cl.RecoveryPending() &&
			e.Node != first.Node && !cl.NodeDead(int(e.Node)) {
			second = explore.Boundary{Kind: e.Kind, Node: e.Node, Occ: occ[k]}
		}
	})
	if err := cl.Run(); err != nil {
		t.Fatalf("discovery run: %v", err)
	}
	if !injected || second.Occ == 0 {
		t.Fatalf("discovery found no mid-recovery boundary (injected=%v)", injected)
	}

	v := explore.ExploreSchedule(counterSpec(), []explore.Boundary{first, second}, tr.Budget())
	if !v.Pass {
		t.Fatalf("schedule [%s %s] failed: %s", first.ID(), second.ID(), v.Err)
	}
	if len(v.Injected) != 1 || v.Injected[0] != first.ID() {
		t.Fatalf("injected = %v, want [%s]", v.Injected, first.ID())
	}
	if len(v.Refused) != 1 || v.Refused[0] != second.ID() {
		t.Fatalf("refused = %v, want [%s]", v.Refused, second.ID())
	}
}

// TestUndetectedFailureHeldToAvailability: a node killed after its last
// protocol obligation is never probed — no recovery runs, the workload
// completes anyway. The verdict must still pass, held to the
// availability invariant instead of the post-recovery replica invariant.
func TestUndetectedFailureHeldToAvailability(t *testing.T) {
	tr := baseline(t)
	sp := counterSpec()
	for i := len(tr.Boundaries) - 1; i >= len(tr.Boundaries)-40 && i >= 0; i-- {
		b := tr.Boundaries[i]
		v := explore.Explore(sp, b, tr.Budget())
		if len(v.Injected) == 1 && v.Recoveries == 0 {
			if !v.Pass {
				t.Fatalf("undetected failure at %s failed availability check: %s", b.ID(), v.Err)
			}
			return
		}
	}
	t.Fatal("no undetected-failure outcome among the last 40 boundaries")
}

package explore_test

import (
	"encoding/json"
	"testing"

	"ftsvm/internal/explore"
)

// FuzzScheduleDeterminism is the schedule-determinism property test: a
// schedule built from arbitrary (shuffled, duplicated) boundary picks
// must produce a bit-identical verdict — same fingerprint, same
// injected/refused partition, same error — every time it runs, and a
// duplicated boundary must collapse to the same run as the boundary
// alone (the duplicate is refused, the kill lands once).
func FuzzScheduleDeterminism(f *testing.F) {
	f.Add(uint32(7), true, false)
	f.Add(uint32(1234), false, true)
	f.Add(uint32(42), false, false)
	f.Add(uint32(999), true, true)
	f.Fuzz(func(t *testing.T, idx uint32, dup bool, pair bool) {
		tr := baseline(t)
		bs := tr.Boundaries
		b := bs[int(idx%uint32(len(bs)))]
		sched := []explore.Boundary{b}
		if dup {
			sched = append(sched, b)
		}
		if pair {
			// A second, arbitrary pick prepended: schedule order must not
			// matter (matching is by stream coordinate, not list order).
			b2 := bs[(int(idx)*7+13)%len(bs)]
			sched = append([]explore.Boundary{b2}, sched...)
		}

		v1 := explore.ExploreSchedule(counterSpec(), sched, tr.Budget())
		v2 := explore.ExploreSchedule(counterSpec(), sched, tr.Budget())
		j1, _ := json.Marshal(v1)
		j2, _ := json.Marshal(v2)
		if string(j1) != string(j2) {
			t.Fatalf("verdict not deterministic:\n%s\n%s", j1, j2)
		}
		if v1.Fingerprint == "" {
			t.Fatalf("empty fingerprint for schedule %v", v1.Schedule)
		}

		if dup && !pair {
			// Same boundary, duplicated ⇒ same run as the boundary alone.
			solo := explore.ExploreSchedule(counterSpec(), []explore.Boundary{b}, tr.Budget())
			if solo.Fingerprint != v1.Fingerprint {
				t.Fatalf("duplicate of %s changed the run: %s vs %s",
					b.ID(), v1.Fingerprint, solo.Fingerprint)
			}
			if len(v1.Injected)+len(v1.Refused) != 2 {
				t.Fatalf("duplicated schedule accounted %v injected %v refused, want 2 total",
					v1.Injected, v1.Refused)
			}
		}
	})
}

package explore_test

import (
	"strings"
	"sync"
	"testing"

	"ftsvm/internal/explore"
	"ftsvm/internal/harness"
	"ftsvm/internal/model"
	"ftsvm/internal/obs"
	"ftsvm/internal/svm"
)

// pairSpec is the two-kill exploration configuration: six nodes so that
// two victims still leave enough survivors for degree-3 replication, and
// a fixed seed so the pinned coordinates below stay valid.
func pairSpec(app string) explore.Spec {
	return harness.ExploreSpec(harness.Config{
		App: app, Size: harness.SizeSmall, Nodes: 6, ThreadsPerNode: 1,
		LockAlgo: svm.LockPolling,
		Overrides: func(cfg *model.Config) {
			cfg.Seed = 1
			cfg.ReplicaDegree = 3
		},
	})
}

// Per-app degree-3 baseline recordings, shared across the pair tests.
var (
	pairBaseOnce sync.Once
	pairBase     map[string]*explore.Trace
	pairBaseErr  error
)

func pairBaseline(t testing.TB, app string) *explore.Trace {
	t.Helper()
	pairBaseOnce.Do(func() {
		pairBase = map[string]*explore.Trace{}
		for _, a := range []string{"counter", "falseshare"} {
			tr, err := explore.Record(pairSpec(a))
			if err != nil {
				pairBaseErr = err
				return
			}
			pairBase[a] = tr
		}
	})
	if pairBaseErr != nil {
		t.Fatalf("degree-3 baseline recording: %v", pairBaseErr)
	}
	return pairBase[app]
}

// TestPinnedPairSchedules replays the exact two-kill schedules that
// exposed real multi-failure protocol bugs when the pair explorer was
// first run, pinning their fixes:
//
//   - reconcile-before-rehome ordering and replica-version divergence
//     with two dead homes (release.savets firsts);
//   - membership-round laundering of a second undetected failure
//     (release.phase1 + lock.set);
//   - recovery-coordinator failover when the coordinator is the second
//     victim (release.savets + msg.send);
//   - a kill at the recovery.restore boundary racing thread migration:
//     the migrated thread must be registered on the backup node before
//     the restore is announced (msg.send + recovery.restore);
//   - a second death reported after recovery snapshots its death set
//     being wiped with the queue instead of carried to the next episode
//     (msg.send@n5#949 + msg.send@n3#977);
//   - the barrier master completing an episode without a dead node's
//     arrival — dead threads must keep the node blocking so timeout
//     probes detect the failure (msg.send@n4 + msg.send@n5);
//   - barrier-epoch skew in mid-barrier point-B checkpoints under
//     false sharing: replay must re-execute the suspended barrier CALL,
//     which FalseShare guarantees by packing the work/call guard into
//     Iter's parity (msg.deliver@n0#48 + release.savets@n1#8);
//   - the auditor flagging the §4.5.2 roll-back clamp as a version
//     regression when globalSync and recovery completion coalesce into
//     one event slice, so the clamp first surfaces at a calm boundary
//     (msg.send@n1#41 seconds).
//
// Each schedule must genuinely inject both kills (not refuse the
// second) and still pass the auditor, the workload self-check, the
// replica/availability invariants, and the causal-replay oracle.
func TestPinnedPairSchedules(t *testing.T) {
	cases := []struct {
		app, first, second string
	}{
		{"counter", "release.savets@n5#3", "msg.deliver@n1#1675"},
		{"counter", "release.phase1@n3#1", "lock.set@n0#674"},
		{"counter", "release.savets@n3#6", "msg.send@n5#1088"},
		{"counter", "msg.send@n5#949", "recovery.restore@n0#1"},
		{"counter", "msg.send@n5#949", "msg.send@n3#977"},
		{"counter", "msg.send@n4#547", "msg.send@n5#666"},
		{"falseshare", "msg.deliver@n0#48", "release.savets@n1#8"},
		{"falseshare", "msg.send@n1#41", "msg.deliver@n0#113"},
		{"falseshare", "msg.send@n1#41", "msg.send@n0#99"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.app+"/"+tc.first+"+"+tc.second, func(t *testing.T) {
			tr := pairBaseline(t, tc.app)
			first, err := explore.ParseID(tc.first)
			if err != nil {
				t.Fatal(err)
			}
			second, err := explore.ParseID(tc.second)
			if err != nil {
				t.Fatal(err)
			}
			v := explore.ExploreSchedule(pairSpec(tc.app), []explore.Boundary{first, second}, tr.Budget())
			if !v.Pass {
				t.Fatalf("pinned schedule failed: %s", v.Err)
			}
			if len(v.Injected) != 2 {
				t.Fatalf("injected = %v, want both kills injected", v.Injected)
			}
			if len(v.Refused) != 0 {
				t.Fatalf("refused = %v, want none at degree 3", v.Refused)
			}
		})
	}
}

// TestPairsDegree3 runs the pair explorer end to end on a small sampled
// grid: every ordered pair must inject both kills at degree 3 and pass
// the full verdict (auditor, self-check, invariants, oracle). The
// discovery runs must also surface recovery-episode boundaries — the
// mid-recovery failure points are the whole reason pairs exist.
func TestPairsDegree3(t *testing.T) {
	tr := pairBaseline(t, "counter")
	firsts := explore.Sample(tr.Boundaries, 4)
	pairs, verdicts, err := explore.ExplorePairs(pairSpec("counter"), firsts, 3, tr.Budget(), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 || len(pairs) != len(verdicts) {
		t.Fatalf("explored %d pairs with %d verdicts", len(pairs), len(verdicts))
	}
	for i, v := range verdicts {
		if !v.Pass {
			t.Errorf("pair %s failed: %s", pairs[i].ID(), v.Err)
		}
		if len(v.Injected) != 2 {
			t.Errorf("pair %s injected %v, want both kills", pairs[i].ID(), v.Injected)
		}
	}

	// A first kill late enough to leave a recovery episode in the tail
	// must yield recovery.* boundaries among the candidate seconds.
	var late explore.Boundary
	for _, b := range tr.Boundaries {
		if b.Kind == obs.KReleaseSaveTS && b.Node == 5 {
			late = b
		}
	}
	if late.Occ == 0 {
		t.Fatal("no release.savets boundary on node 5 in the baseline")
	}
	seconds, err := explore.DiscoverSeconds(pairSpec("counter"), late, tr.Budget())
	if err != nil {
		t.Fatal(err)
	}
	sawRecovery := false
	for _, b := range seconds {
		if strings.HasPrefix(b.ID(), "recovery.") {
			sawRecovery = true
			break
		}
	}
	if !sawRecovery {
		t.Fatalf("no recovery.* boundary among %d discovered seconds after %s", len(seconds), late.ID())
	}
}

// TestThirdFailureAtDegree3Refused is the degree-3 analogue of
// TestSecondFailureDuringRecoveryRefused: with k = 3 replicas the
// cluster genuinely absorbs two overlapping failures, so the refusal
// line moves to the third. A third kill while two failures are still
// unrecovered must be refused by the failure model, and the run must
// still complete and pass.
func TestThirdFailureAtDegree3Refused(t *testing.T) {
	tr := pairBaseline(t, "counter")
	var first explore.Boundary
	for _, b := range tr.Boundaries {
		if b.Kind == obs.KReleasePhase1 && b.Node == 1 {
			first = b
			break
		}
	}
	if first.Occ == 0 {
		t.Fatal("no release.phase1 boundary on node 1 in the baseline")
	}

	// Discovery run: inject the first two kills by hand — the second at
	// the first boundary on a live node once recovery is pending — then
	// note the first boundary on a live node while both failures are
	// unrecovered. Injection runs replay the identical prefix, so all
	// three coordinates are valid in the three-kill schedule.
	sp := pairSpec("counter")
	inst, err := sp.New()
	if err != nil {
		t.Fatal(err)
	}
	cl := inst.Cluster
	rec := cl.EnableFlightRecorder(64)
	cl.EnableWireTrace()
	type key struct {
		kind obs.Kind
		node int32
	}
	occ := map[key]int64{}
	var second, third explore.Boundary
	injected := 0
	rec.SetSink(func(e obs.Event) {
		k := key{e.Kind, e.Node}
		occ[k]++
		dead := cl.NodeDead(int(e.Node))
		switch {
		case injected == 0 && e.Kind == first.Kind && e.Node == first.Node && occ[k] == first.Occ:
			injected = 1
			cl.KillNode(int(e.Node))
		case injected == 1 && cl.RecoveryPending() && e.Node != first.Node && !dead:
			second = explore.Boundary{Kind: e.Kind, Node: e.Node, Occ: occ[k]}
			injected = 2
			cl.KillNode(int(e.Node))
		case injected == 2 && third.Occ == 0 && !dead &&
			cl.UnrecoveredFailures() >= cl.Degree()-1:
			third = explore.Boundary{Kind: e.Kind, Node: e.Node, Occ: occ[k]}
		}
	})
	if err := cl.Run(); err != nil {
		t.Fatalf("discovery run: %v", err)
	}
	if injected != 2 || third.Occ == 0 {
		t.Fatalf("discovery incomplete: injected=%d third=%v", injected, third)
	}

	v := explore.ExploreSchedule(pairSpec("counter"), []explore.Boundary{first, second, third}, tr.Budget())
	if !v.Pass {
		t.Fatalf("schedule [%s %s %s] failed: %s", first.ID(), second.ID(), third.ID(), v.Err)
	}
	if len(v.Injected) != 2 || v.Injected[0] != first.ID() || v.Injected[1] != second.ID() {
		t.Fatalf("injected = %v, want [%s %s]", v.Injected, first.ID(), second.ID())
	}
	if len(v.Refused) != 1 || v.Refused[0] != third.ID() {
		t.Fatalf("refused = %v, want [%s]", v.Refused, third.ID())
	}
}

package explore

import (
	"fmt"

	"ftsvm/internal/obs"
)

// Pair is one ordered failure-point pair: a first kill at First, then a
// second kill at Second in the re-execution that follows it. Second's
// occurrence is counted from the start of the run (not from the
// injection), so the pair is directly a two-kill schedule.
type Pair struct {
	First  Boundary
	Second Boundary
}

// Schedule renders the pair as an ExploreSchedule input.
func (p Pair) Schedule() []Boundary { return []Boundary{p.First, p.Second} }

// ID renders the pair's stable coordinate, e.g.
// "release.phase1@n2#3+msg.deliver@n0#41".
func (p Pair) ID() string { return p.First.ID() + "+" + p.Second.ID() }

// DiscoverSeconds runs the workload once with a kill injected by hand at
// first, recording every boundary that fires after the injection on a
// still-live node — including the boundaries of the recovery episode
// itself (recovery.*, the mid-recovery failure points) — as a candidate
// second coordinate. Because injection runs replay the recording's
// deterministic prefix, and the discovery run is itself the single-kill
// injection run, every returned coordinate names a real event of the
// two-kill schedule's prefix.
func DiscoverSeconds(sp Spec, first Boundary, budget int64) ([]Boundary, error) {
	inst, err := sp.New()
	if err != nil {
		return nil, fmt.Errorf("explore: build %s: %w", sp.Name, err)
	}
	cl := inst.Cluster
	rec := cl.EnableFlightRecorder(sp.ringSize())
	cl.EnableWireTrace()
	if budget > 0 {
		cl.Engine().SetEventBudget(budget)
	}
	occ := map[occKey]int64{}
	injected, injecting := false, false
	var seconds []Boundary
	rec.SetSink(func(e obs.Event) {
		k := occKey{e.Kind, e.Node}
		occ[k]++
		if injecting {
			return
		}
		if !injected && e.Kind == first.Kind && e.Node == first.Node && occ[k] == first.Occ {
			injected = true
			injecting = true
			cl.KillNode(int(e.Node))
			injecting = false
			return
		}
		if injected && !cl.NodeDead(int(e.Node)) {
			seconds = append(seconds, Boundary{Kind: e.Kind, Node: e.Node, Occ: occ[k]})
		}
	})
	runErr := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("panic: %v", r)
			}
		}()
		return cl.Run()
	}()
	if runErr != nil {
		return nil, fmt.Errorf("explore: %s discovery at %s: %w", sp.Name, first.ID(), runErr)
	}
	if !injected {
		return nil, fmt.Errorf("explore: %s: boundary %s never fired in discovery run", sp.Name, first.ID())
	}
	return seconds, nil
}

// ExplorePairs enumerates and re-executes ordered failure-point pairs:
// for each first boundary, one discovery run captures the boundaries of
// the post-first-failure re-execution, up to secondsPer of them are
// evenly sampled (0: all), and each (first, second) pair becomes a
// two-kill schedule swept on the worker pool. Returns the pairs and
// their verdicts in matching order.
//
// At replication degree k >= 3 the second kill is genuinely injected
// (including mid-recovery) and the run is held to the same auditor,
// self-check, replica/availability invariants, and consistency oracle
// as single-kill sweeps; at k = 2 second kills are refused by the
// failure model, which makes a pair sweep a refusal-rule test instead.
func ExplorePairs(sp Spec, firsts []Boundary, secondsPer int, budget int64, workers int, progress func(done int, v Verdict)) ([]Pair, []Verdict, error) {
	var pairs []Pair
	for _, b1 := range firsts {
		seconds, err := DiscoverSeconds(sp, b1, budget)
		if err != nil {
			return nil, nil, err
		}
		for _, b2 := range Sample(seconds, secondsPer) {
			pairs = append(pairs, Pair{First: b1, Second: b2})
		}
	}
	schedules := make([][]Boundary, len(pairs))
	for i, p := range pairs {
		schedules[i] = p.Schedule()
	}
	vs := SweepSchedules(sp, schedules, budget, workers, progress)
	return pairs, vs, nil
}

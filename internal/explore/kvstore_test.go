package explore_test

import (
	"testing"

	"ftsvm/internal/explore"
	"ftsvm/internal/harness"
)

func kvmicroSpec() explore.Spec {
	return harness.ExploreSpec(harness.Config{
		App: "kvmicro", Size: harness.SizeSmall, Nodes: 4, ThreadsPerNode: 1,
	})
}

// TestKVMicroSweep runs the micro key-value store through the
// failure-point explorer: a failure injected at any sampled protocol
// boundary must leave the store recoverable, the replica invariants
// intact, and the KVStore verification stage (per-key sums, exactly-once
// PUT application, keys homed in the right buckets) clean. This is the
// lock-protected multi-writer bucket pattern — the serving layer's
// substrate — under exhaustive-style failure injection.
func TestKVMicroSweep(t *testing.T) {
	tr, err := explore.Record(kvmicroSpec())
	if err != nil {
		t.Fatalf("recording: %v", err)
	}
	if len(tr.Boundaries) < 100 {
		t.Fatalf("recorded %d boundaries, want a rich set (>= 100)", len(tr.Boundaries))
	}
	tr2, err := explore.Record(kvmicroSpec())
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Fingerprint != tr.Fingerprint {
		t.Fatalf("kvmicro recording not deterministic: %s vs %s", tr.Fingerprint, tr2.Fingerprint)
	}

	bs := explore.Sample(tr.Boundaries, 12)
	vs := explore.Sweep(kvmicroSpec(), bs, tr.Budget(), 4, nil)
	for i, v := range vs {
		if !v.Pass {
			t.Errorf("boundary %s failed: %s", bs[i].ID(), v.Err)
		}
		if got := len(v.Injected) + len(v.Refused); got != 1 {
			t.Errorf("boundary %s: injected+refused = %d, want 1", bs[i].ID(), got)
		}
	}
}

package serve

import (
	"sort"

	"ftsvm/internal/svm"
)

// Phases is the per-phase availability timeline of one serving run: how
// the run's virtual time divides across the failure lifecycle. The six
// durations sum to the run's ExecNs.
//
//	healthy     — from start until the victim fail-stops.
//	undetected  — failure present, no evidence yet: until the probe
//	              detector's confirming miss streak begins (suspect). In
//	              oracle mode (no suspicion window) this extends to
//	              detection.
//	detecting   — from first suspicion to the cluster-wide failure
//	              report that opens the recovery barrier.
//	recovery    — the recovery episode itself (reconcile, re-home,
//	              re-replicate, migrate).
//	rewarm      — post-recovery until every serving thread has drained
//	              its backlog and seen a completion back under
//	              RewarmFactor x the pre-failure p99.
//	restored    — steady state after re-warm, until the run ends.
//
// In an undisturbed run everything is healthy. If a failure is injected
// but never detected before the run ends, the remainder is undetected.
type Phases struct {
	HealthyNs    int64 `json:"healthy_ns"`
	UndetectedNs int64 `json:"undetected_ns"`
	DetectingNs  int64 `json:"detecting_ns"`
	RecoveryNs   int64 `json:"recovery_ns"`
	RewarmNs     int64 `json:"rewarm_ns"`
	RestoredNs   int64 `json:"restored_ns"`
}

// healthyP99 returns the exact p99 of the latencies of requests that
// completed strictly before cutNs (0 if none) — the re-warm baseline.
func healthyP99(arrive, done [][]int64, cutNs int64) int64 {
	var lats []int64
	for tid := range done {
		for i, dn := range done[tid] {
			if dn > 0 && dn < cutNs {
				lats = append(lats, dn-arrive[tid][i])
			}
		}
	}
	if len(lats) == 0 {
		return 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	idx := (len(lats)*99 + 99) / 100 // ceil(0.99*n), 1-based rank
	if idx > len(lats) {
		idx = len(lats)
	}
	return lats[idx-1]
}

// rewarmEnd returns the virtual time at which the last serving thread
// finished re-warming: per thread, the first completion after recoverNs
// whose latency is at or under threshNs. A thread with post-recovery
// completions but none under the threshold re-warms at its last
// completion (it never got back to baseline); a thread with no
// post-recovery completions was already drained at recoverNs. With no
// usable threshold (threshNs <= 0: no pre-failure completions to
// baseline against) re-warm is unmeasurable and ends at recoverNs.
func rewarmEnd(done [][]int64, arrive [][]int64, recoverNs, threshNs int64) int64 {
	if threshNs <= 0 {
		return recoverNs
	}
	end := recoverNs
	for tid := range done {
		cand := recoverNs
		last := int64(0)
		found := false
		for i, dn := range done[tid] {
			if dn <= recoverNs {
				continue
			}
			last = dn
			if dn-arrive[tid][i] <= threshNs {
				cand = dn
				found = true
				break
			}
		}
		if !found && last > 0 {
			cand = last
		}
		if cand > end {
			end = cand
		}
	}
	return end
}

// computeTimeline folds the milestone times and per-request completions
// into the phase durations. Milestones are clamped into causal order
// (kill <= suspect <= detect <= recover <= exec); a missing milestone
// extends the preceding phase to the end of the run. Returns the phases
// and the re-warm end time (0 when no re-warm phase exists).
func computeTimeline(execNs int64, m svm.PhaseTimes, arrive, done [][]int64, rewarmFactor float64) (Phases, int64) {
	var ph Phases
	if m.KillNs <= 0 || m.KillNs >= execNs {
		ph.HealthyNs = execNs
		return ph, 0
	}
	ph.HealthyNs = m.KillNs

	if m.DetectNs <= 0 {
		// The failure outlived the run undetected.
		ph.UndetectedNs = execNs - m.KillNs
		return ph, 0
	}
	suspect := m.SuspectNs
	if suspect <= m.KillNs || suspect > m.DetectNs {
		suspect = m.DetectNs // oracle mode, or no observable suspicion window
	}
	ph.UndetectedNs = suspect - m.KillNs
	ph.DetectingNs = m.DetectNs - suspect

	if m.RecoverNs <= 0 {
		ph.RecoveryNs = execNs - m.DetectNs
		return ph, 0
	}
	ph.RecoveryNs = m.RecoverNs - m.DetectNs

	thresh := int64(rewarmFactor * float64(healthyP99(arrive, done, m.KillNs)))
	end := rewarmEnd(done, arrive, m.RecoverNs, thresh)
	if end > execNs {
		end = execNs
	}
	ph.RewarmNs = end - m.RecoverNs
	ph.RestoredNs = execNs - end
	return ph, end
}

package serve

import (
	"fmt"
	"runtime"
	"sync"

	"ftsvm/internal/model"
	"ftsvm/internal/obs"
	"ftsvm/internal/svm"
)

// Result is one serving cell's outcome. All times are virtual
// nanoseconds, so a Result is bit-identical across repeat runs of the
// same Spec.
type Result struct {
	Spec      Spec
	Err       error
	ExecNs    int64
	Completed int64
	Hist      *obs.Histogram
	// Milestones are the raw failure-lifecycle times; Phases is the
	// derived availability timeline; RewarmEndNs the virtual time the
	// last thread finished re-warming (0 when no re-warm phase exists).
	Milestones  svm.PhaseTimes
	Phases      Phases
	RewarmEndNs int64
	// HealthyP99Ns is the exact pre-failure p99 used as the re-warm
	// baseline (0 when no failure was injected or nothing completed
	// before it).
	HealthyP99Ns int64
}

// RunCell runs one serving cell to completion and folds the per-request
// completions into the latency histogram and availability timeline.
func RunCell(sp Spec) Result {
	cfg := model.Default()
	cfg.Nodes = sp.Nodes
	cfg.ThreadsPerNode = sp.ThreadsPerNode
	cfg.Detection = sp.Detect
	cfg.Chaos = sp.Chaos
	if sp.Seed != 0 {
		cfg.Seed = sp.Seed
	}

	d, err := NewDriver(sp, cfg.PageSize)
	if err != nil {
		return Result{Spec: sp, Err: err}
	}
	w := d.Workload()
	cl, err := svm.New(svm.Options{
		Config:     cfg,
		Mode:       svm.ModeFT,
		Pages:      w.Pages,
		Locks:      w.Locks,
		HomeAssign: w.HomeAssign,
		Body:       w.Body,
	})
	if err != nil {
		return Result{Spec: sp, Err: err}
	}
	// The flight recorder keeps post-mortem context for the failure
	// cells and forces the serial engine, which failure injection
	// requires; the milestone trace rides the same event stream.
	cl.EnableFlightRecorder(64)
	if sp.KillAtNs > 0 {
		victim := sp.Victim
		cl.Engine().At(sp.KillAtNs, func() { cl.KillNode(victim) })
	}
	if err := cl.Run(); err != nil {
		return Result{Spec: sp, Err: err}
	}
	if !cl.Finished() {
		return Result{Spec: sp, Err: fmt.Errorf("serve: %s/%s did not finish", sp.Scenario, sp.Detect)}
	}
	if err := w.Err(); err != nil {
		return Result{Spec: sp, Err: err}
	}
	if err := cl.VerifyReplicas(); err != nil {
		return Result{Spec: sp, Err: err}
	}

	res := Result{
		Spec:       sp,
		ExecNs:     cl.ExecTime(),
		Hist:       obs.NewHistogram(),
		Milestones: cl.PhaseTimes(),
	}
	for tid := range d.done {
		for i, dn := range d.done[tid] {
			if dn <= 0 {
				continue
			}
			res.Hist.Record(dn - d.arrive[tid][i])
			res.Completed++
		}
	}
	res.HealthyP99Ns = healthyP99(d.arrive, d.done, res.Milestones.KillNs)
	res.Phases, res.RewarmEndNs = computeTimeline(res.ExecNs, res.Milestones, d.arrive, d.done, sp.RewarmFactor)
	return res
}

// RunCells runs the cells concurrently (each cell is internally
// deterministic, so the result slice is order-stable regardless of
// scheduling) and returns results in input order.
func RunCells(specs []Spec) []Result {
	out := make([]Result, len(specs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers < 1 {
		workers = 1
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = RunCell(specs[i])
			}
		}()
	}
	for i := range specs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// Package serve is the open-loop request-serving layer over the SVM
// key-value store: a deterministic arrival-process driver that injects
// Zipfian GET/PUT requests at a configurable rate in virtual time
// against an apps.KVTable bucket table, records every request's virtual
// latency into an obs.Histogram, and derives a per-phase availability
// timeline (healthy / undetected failure / probe detection / recovery /
// re-warm) from the cluster's failure-lifecycle milestones.
//
// Open loop means arrival times are fixed up front — a request's
// arrival does not wait for its predecessor's completion, exactly like
// clients that keep sending during an outage. A server stalled by a
// failure therefore accumulates a backlog, and the stall's cost shows
// up where production cares: in the latency tail (p99/p999), not just
// in aggregate wall time. Every input (arrival jitter, key choice,
// op mix) is drawn from seeded xorshift64* streams, so a cell's
// histogram and timeline are bit-identical across repeat runs at the
// same seed — replayable under svmserve -compare.
package serve

import (
	"fmt"
	"math"
	"sort"

	"ftsvm/internal/apps"
	"ftsvm/internal/model"
	"ftsvm/internal/svm"
)

// Spec describes one serving cell: the cluster, the table, the arrival
// process, and the failure to inject.
type Spec struct {
	// Scenario labels the cell (usually a harness chaos-scenario name).
	Scenario string
	// Detect selects the failure detector (oracle or probe).
	Detect model.DetectionMode
	// Chaos is the network-fault profile for the run.
	Chaos model.Chaos

	Nodes          int
	ThreadsPerNode int

	// Table geometry. Keys is the number of distinct keys the request
	// stream draws from; keep Keys/Buckets at or below SlotsPerBucket or
	// hot buckets can overflow.
	Buckets        int
	SlotsPerBucket int
	Keys           int

	// ZipfS is the key-popularity skew exponent (0 = uniform).
	ZipfS float64
	// ReadPct is the GET percentage of the request mix (0-100).
	ReadPct int

	// Requests is the per-thread request count; MeanGapNs the mean
	// open-loop inter-arrival gap per serving thread (each gap is drawn
	// uniformly from [MeanGapNs/2, 3*MeanGapNs/2)); ServiceNs the
	// modeled CPU cost of parsing and executing one request on top of
	// the protocol's shared-memory costs.
	Requests  int
	MeanGapNs int64
	ServiceNs int64

	// Seed is the simulation-engine seed; ArrivalSeed seeds the arrival
	// and request streams (a separate knob so the same engine schedule
	// can serve different workload draws).
	Seed        int64
	ArrivalSeed uint64

	// KillAtNs, when > 0, fail-stops Victim at that virtual time.
	KillAtNs int64
	Victim   int

	// RewarmFactor defines the re-warm exit threshold: the first
	// post-recovery completion whose latency is back under
	// RewarmFactor x (pre-failure p99) ends a thread's re-warm phase.
	RewarmFactor float64
}

// DefaultSpec returns the standard serving cell: a 4-node store at
// moderate load (stable when healthy, near saturation only under the
// combined storm scenario), Zipf 0.99 popularity over 256 keys, 70%
// reads.
func DefaultSpec() Spec {
	return Spec{
		Scenario:       "none",
		Nodes:          4,
		ThreadsPerNode: 1,
		Buckets:        64,
		SlotsPerBucket: 32,
		Keys:           256,
		ZipfS:          0.99,
		ReadPct:        70,
		Requests:       400,
		MeanGapNs:      400_000,
		ServiceNs:      2_000,
		Seed:           1,
		ArrivalSeed:    7,
		Victim:         1,
		RewarmFactor:   2,
	}
}

// srvState is a serving thread's resumable state; the op index advances
// before each bucket-lock release, so a replay applies every request
// exactly once (see apps.RunStages).
type srvState struct {
	Phase   int
	Arrived bool
	Op      int
	OpStage int
}

// Driver holds one cell's precomputed request streams and collects
// completion times. Host-side state only: per-op completion slots are
// written by the thread bodies (replays overwrite — the surviving
// entry is the completion the client finally observed).
type Driver struct {
	spec Spec
	tb   *apps.KVTable
	w    *apps.Workload

	arrive [][]int64 // [thread][op] absolute virtual arrival time
	done   [][]int64 // [thread][op] virtual completion time (0: never)

	cdf []float64 // Zipf CDF over key ranks
}

// NewDriver validates sp and precomputes the arrival process and key
// distribution.
func NewDriver(sp Spec, pageSize int) (*Driver, error) {
	switch {
	case sp.Nodes < 2:
		return nil, fmt.Errorf("serve: Nodes = %d, need >= 2", sp.Nodes)
	case sp.ThreadsPerNode < 1:
		return nil, fmt.Errorf("serve: ThreadsPerNode = %d, need >= 1", sp.ThreadsPerNode)
	case sp.Buckets < 1 || sp.SlotsPerBucket < 1:
		return nil, fmt.Errorf("serve: empty table geometry")
	case sp.Keys < 1:
		return nil, fmt.Errorf("serve: Keys = %d, need >= 1", sp.Keys)
	case sp.Requests < 1:
		return nil, fmt.Errorf("serve: Requests = %d, need >= 1", sp.Requests)
	case sp.MeanGapNs < 2:
		return nil, fmt.Errorf("serve: MeanGapNs = %d, need >= 2", sp.MeanGapNs)
	case sp.ReadPct < 0 || sp.ReadPct > 100:
		return nil, fmt.Errorf("serve: ReadPct = %d, need 0-100", sp.ReadPct)
	case sp.ZipfS < 0:
		return nil, fmt.Errorf("serve: ZipfS = %g, need >= 0", sp.ZipfS)
	case sp.KillAtNs > 0 && (sp.Victim < 1 || sp.Victim >= sp.Nodes):
		// Node 0 hosts the verifying thread 0; the recovery protocol
		// handles any victim, but the standard cells keep thread 0 home.
		return nil, fmt.Errorf("serve: Victim = %d, need 1..Nodes-1", sp.Victim)
	}
	shape := apps.Shape{Nodes: sp.Nodes, ThreadsPerNode: sp.ThreadsPerNode, PageSize: pageSize}
	d := &Driver{
		spec: sp,
		tb:   apps.NewKVTable(shape, sp.Buckets, sp.SlotsPerBucket),
		cdf:  zipfCDF(sp.Keys, sp.ZipfS),
	}

	// Precompute every thread's absolute arrival times: a fixed open-loop
	// schedule, independent of how the run unfolds.
	T := shape.Threads()
	d.arrive = make([][]int64, T)
	d.done = make([][]int64, T)
	for tid := 0; tid < T; tid++ {
		d.arrive[tid] = make([]int64, sp.Requests)
		d.done[tid] = make([]int64, sp.Requests)
		rng := apps.NewRand(sp.ArrivalSeed ^ (uint64(tid)+1)*0x9E3779B97F4A7C15)
		t := int64(0)
		for i := 0; i < sp.Requests; i++ {
			t += sp.MeanGapNs/2 + int64(rng.Next()%uint64(sp.MeanGapNs))
			d.arrive[tid][i] = t
		}
	}

	d.w = &apps.Workload{
		Name:       fmt.Sprintf("KVServe-%dx%d", sp.Buckets, sp.Requests),
		Pages:      d.tb.Pages,
		Locks:      sp.Buckets,
		HomeAssign: d.tb.HomeAssign,
	}
	d.w.Body = d.body
	return d, nil
}

// Workload returns the runnable workload (for svm.Options or
// harness.Build integration).
func (d *Driver) Workload() *apps.Workload { return d.w }

// Table returns the bucket table layout.
func (d *Driver) Table() *apps.KVTable { return d.tb }

// Arrivals returns thread tid's absolute arrival schedule.
func (d *Driver) Arrivals(tid int) []int64 { return d.arrive[tid] }

// Completions returns thread tid's completion times (0 = never
// completed). Valid after the run.
func (d *Driver) Completions(tid int) []int64 { return d.done[tid] }

// zipfCDF returns the cumulative distribution over key ranks 1..n with
// weight 1/rank^s, normalized so the last entry is exactly 1.
func zipfCDF(n int, s float64) []float64 {
	cdf := make([]float64, n)
	total := 0.0
	for r := 1; r <= n; r++ {
		total += 1 / math.Pow(float64(r), s)
		cdf[r-1] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return cdf
}

// opFor returns thread tid's request i: (key, delta, isGet).
// Deterministic and recomputable during replay — the same contract as
// KVStore's op streams.
func (d *Driver) opFor(tid, i int) (key, delta uint64, get bool) {
	sp := &d.spec
	rng := apps.NewRand(sp.ArrivalSeed*0x2545F4914F6CDD1D + uint64(tid)<<32 + uint64(i)*2654435761 + 1)
	rank := sort.SearchFloat64s(d.cdf, rng.Float())
	key = uint64(rank) + 1 // keys are nonzero
	get = rng.Next()%100 < uint64(sp.ReadPct)
	delta = rng.Next()%100 + 1
	return key, delta, get
}

// body is the serving loop: wait (idle) for the request's arrival time,
// execute it under the bucket lock, stamp the completion, release. The
// op index advances before the Release, so a post-failure replay
// re-executes exactly the requests whose effects were lost with the
// failed node — and their completion stamps are overwritten with the
// post-failover times the client actually experienced. A final
// barrier-separated stage verifies every PUT landed exactly once.
func (d *Driver) body(t *svm.Thread) {
	st := &srvState{OpStage: -1}
	t.Setup(st)
	tid := t.ID()
	sp := &d.spec

	serveStage := func(stage int) {
		if st.OpStage != stage {
			st.Op, st.OpStage = 0, stage
		}
		for st.Op < sp.Requests {
			i := st.Op
			t.IdleUntil(d.arrive[tid][i])
			key, delta, get := d.opFor(tid, i)
			b := d.tb.BucketOf(key)
			t.Acquire(b)
			slot := -1
			for s := 0; s < sp.SlotsPerBucket; s++ {
				k := t.ReadU64(d.tb.SlotAddr(b, s))
				if k == key || k == 0 {
					slot = s
					break
				}
			}
			if get {
				if slot >= 0 {
					_ = t.ReadU64(d.tb.SlotAddr(b, slot) + 8) // miss reads 0
				}
			} else {
				if slot < 0 {
					d.w.Fail(fmt.Errorf("KVServe: thread %d op %d: bucket %d overflow (key %d, %d slots)",
						tid, i, b, key, sp.SlotsPerBucket))
					st.Op = sp.Requests
					t.Release(b)
					return
				}
				addr := d.tb.SlotAddr(b, slot)
				t.WriteU64(addr, key)
				v := t.ReadU64(addr + 8)
				t.WriteU64(addr+8, v+delta)
			}
			t.Compute(sp.ServiceNs)
			st.Op++
			// The reply leaves the server here: the request's effects are
			// applied and the op index has advanced, so a failure from the
			// Release onward never re-executes it. A failure before the
			// checkpoint inside Release replays the request on the backup
			// node and overwrites this stamp with the failover completion.
			d.done[tid][i] = t.Now()
			t.Release(b)
		}
	}

	verifyStage := func() {
		if tid != 0 || d.w.Err() != nil {
			return
		}
		want := map[uint64]uint64{}
		T := t.NThreads()
		for pt := 0; pt < T; pt++ {
			for i := 0; i < sp.Requests; i++ {
				key, delta, get := d.opFor(pt, i)
				if !get {
					want[key] += delta
				}
			}
		}
		got := map[uint64]uint64{}
		for b := 0; b < sp.Buckets; b++ {
			for s := 0; s < sp.SlotsPerBucket; s++ {
				k := t.ReadU64(d.tb.SlotAddr(b, s))
				if k == 0 {
					continue
				}
				if d.tb.BucketOf(k) != b {
					d.w.Fail(fmt.Errorf("KVServe: key %d stored in wrong bucket %d", k, b))
				}
				got[k] += t.ReadU64(d.tb.SlotAddr(b, s) + 8)
			}
		}
		if len(got) != len(want) {
			d.w.Fail(fmt.Errorf("KVServe: %d keys stored, want %d", len(got), len(want)))
			return
		}
		for k, wv := range want {
			if got[k] != wv {
				d.w.Fail(fmt.Errorf("KVServe: key %d = %d, want %d", k, got[k], wv))
				return
			}
		}
	}

	apps.RunStages(t, &st.Phase, &st.Arrived, 2, func(s int) {
		switch s {
		case 0:
			serveStage(s)
		case 1:
			verifyStage()
		}
	})
}

package serve

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"ftsvm/internal/model"
	"ftsvm/internal/svm"
)

func testSpec() Spec {
	sp := DefaultSpec()
	sp.Requests = 150
	return sp
}

// TestServeHealthy: an undisturbed cell completes every request, the
// whole run is the healthy phase, and the histogram is fully populated.
func TestServeHealthy(t *testing.T) {
	sp := testSpec()
	r := RunCell(sp)
	if r.Err != nil {
		t.Fatalf("RunCell: %v", r.Err)
	}
	wantOps := int64(sp.Nodes * sp.ThreadsPerNode * sp.Requests)
	if r.Completed != wantOps {
		t.Fatalf("completed %d requests, want %d", r.Completed, wantOps)
	}
	if r.Hist.Count() != wantOps {
		t.Fatalf("histogram holds %d samples, want %d", r.Hist.Count(), wantOps)
	}
	if r.Phases.HealthyNs != r.ExecNs {
		t.Fatalf("healthy phase %d != exec %d", r.Phases.HealthyNs, r.ExecNs)
	}
	if r.Hist.Percentile(0.5) <= 0 || r.Hist.Percentile(0.99) < r.Hist.Percentile(0.5) {
		t.Fatalf("implausible percentiles: p50=%d p99=%d", r.Hist.Percentile(0.5), r.Hist.Percentile(0.99))
	}
}

// TestServeKillPhases: a kill cell recovers, completes every request
// exactly once (the verify stage checks PUT sums), and its phase
// durations tile the run exactly.
func TestServeKillPhases(t *testing.T) {
	for _, det := range []model.DetectionMode{model.DetectOracle, model.DetectProbe} {
		sp := testSpec()
		sp.Detect = det
		sp.KillAtNs = 8_000_000
		r := RunCell(sp)
		if r.Err != nil {
			t.Fatalf("%s: RunCell: %v", det, r.Err)
		}
		m := r.Milestones
		if m.KillNs != sp.KillAtNs || m.Victim != sp.Victim {
			t.Fatalf("%s: milestones %+v, want kill at %d of node %d", det, m, sp.KillAtNs, sp.Victim)
		}
		if m.DetectNs <= m.KillNs || m.RecoverNs <= m.DetectNs {
			t.Fatalf("%s: milestones out of order: %+v", det, m)
		}
		ph := r.Phases
		sum := ph.HealthyNs + ph.UndetectedNs + ph.DetectingNs + ph.RecoveryNs + ph.RewarmNs + ph.RestoredNs
		if sum != r.ExecNs {
			t.Fatalf("%s: phases sum to %d, exec is %d (%+v)", det, sum, r.ExecNs, ph)
		}
		if ph.HealthyNs != m.KillNs || ph.RecoveryNs != m.RecoverNs-m.DetectNs {
			t.Fatalf("%s: phase/milestone mismatch: %+v vs %+v", det, ph, m)
		}
		if r.Hist.Percentile(0.999) < r.HealthyP99Ns {
			t.Fatalf("%s: failure-run p999 %d below healthy p99 %d — the stall should dominate the tail",
				det, r.Hist.Percentile(0.999), r.HealthyP99Ns)
		}
	}
}

// TestServeDeterminism: repeat runs of the same spec produce
// byte-identical cell reports — the property svmserve -compare gates.
func TestServeDeterminism(t *testing.T) {
	specs := []Spec{testSpec(), testSpec(), testSpec()}
	specs[1].Detect = model.DetectProbe
	specs[1].KillAtNs = 8_000_000
	specs[2].Detect = model.DetectOracle
	specs[2].KillAtNs = 8_000_000
	specs[2].Chaos = model.Chaos{Enabled: true, Seed: 11, JitterNs: 3000, BurstStartNs: 6_000_000, BurstLenNs: 400_000, BurstSrc: -1, BurstDst: -1}
	for _, sp := range specs {
		a, b := RunCell(sp), RunCell(sp)
		if a.Err != nil || b.Err != nil {
			t.Fatalf("%s/%s: errs %v / %v", sp.Scenario, sp.Detect, a.Err, b.Err)
		}
		ja, _ := json.Marshal(a.Report())
		jb, _ := json.Marshal(b.Report())
		if !bytes.Equal(ja, jb) {
			t.Fatalf("%s/%s: repeat run diverged:\n  a: %s\n  b: %s", sp.Scenario, sp.Detect, ja, jb)
		}
	}
}

// TestServeSeedSensitivity: a different arrival seed produces a
// different request stream (guards against the streams being
// accidentally seed-independent).
func TestServeSeedSensitivity(t *testing.T) {
	a := RunCell(testSpec())
	sp := testSpec()
	sp.ArrivalSeed++
	b := RunCell(sp)
	if a.Err != nil || b.Err != nil {
		t.Fatalf("errs: %v / %v", a.Err, b.Err)
	}
	ja, _ := json.Marshal(a.Report().Hist)
	jb, _ := json.Marshal(b.Report().Hist)
	if bytes.Equal(ja, jb) {
		t.Fatalf("different arrival seeds produced identical histograms")
	}
}

// TestServeRunCells: the concurrent grid runner returns results in
// input order, identical to serial RunCell runs.
func TestServeRunCells(t *testing.T) {
	specs := []Spec{testSpec(), testSpec()}
	specs[0].Scenario = "a"
	specs[1].Scenario = "b"
	specs[1].KillAtNs = 8_000_000
	rs := RunCells(specs)
	for i, r := range rs {
		if r.Err != nil {
			t.Fatalf("cell %d: %v", i, r.Err)
		}
		if r.Spec.Scenario != specs[i].Scenario {
			t.Fatalf("cell %d out of order: got %q", i, r.Spec.Scenario)
		}
		want := RunCell(specs[i])
		ja, _ := json.Marshal(r.Report())
		jb, _ := json.Marshal(want.Report())
		if !bytes.Equal(ja, jb) {
			t.Fatalf("cell %d: concurrent run diverged from serial", i)
		}
	}
}

// TestServeOverflowReport: a keyspace wider than the table forces a
// bucket overflow, which must surface as a thread+op-identifying error
// instead of a misleading verification diff.
func TestServeOverflowReport(t *testing.T) {
	sp := testSpec()
	sp.Buckets = 4
	sp.SlotsPerBucket = 2
	sp.Keys = 64
	sp.ZipfS = 0 // uniform: hit the whole keyspace quickly
	r := RunCell(sp)
	if r.Err == nil {
		t.Fatalf("overflowing cell reported no error")
	}
	msg := r.Err.Error()
	if !strings.Contains(msg, "overflow") || !strings.Contains(msg, "thread ") {
		t.Fatalf("overflow error %q does not identify the thread and op", msg)
	}
	if strings.Contains(msg, "keys stored") {
		t.Fatalf("overflow misreported as a verification diff: %q", msg)
	}
}

// TestNewDriverValidation: malformed specs are rejected up front.
func TestNewDriverValidation(t *testing.T) {
	bad := []func(*Spec){
		func(s *Spec) { s.Nodes = 1 },
		func(s *Spec) { s.Requests = 0 },
		func(s *Spec) { s.MeanGapNs = 0 },
		func(s *Spec) { s.ReadPct = 101 },
		func(s *Spec) { s.ZipfS = -1 },
		func(s *Spec) { s.KillAtNs = 1; s.Victim = 0 },
		func(s *Spec) { s.KillAtNs = 1; s.Victim = 4 },
	}
	for i, mut := range bad {
		sp := testSpec()
		mut(&sp)
		if _, err := NewDriver(sp, 4096); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

// Timeline unit tests against synthetic milestones and completion
// arrays — no simulation involved.

func TestTimelineNoFailure(t *testing.T) {
	ph, end := computeTimeline(1000, svm.PhaseTimes{}, nil, nil, 2)
	if ph != (Phases{HealthyNs: 1000}) || end != 0 {
		t.Fatalf("got %+v end=%d", ph, end)
	}
}

func TestTimelineUndetected(t *testing.T) {
	ph, _ := computeTimeline(1000, svm.PhaseTimes{KillNs: 400}, nil, nil, 2)
	want := Phases{HealthyNs: 400, UndetectedNs: 600}
	if ph != want {
		t.Fatalf("got %+v, want %+v", ph, want)
	}
}

func TestTimelineOracleNoSuspicion(t *testing.T) {
	// No suspicion time: the whole kill→detect window counts as
	// undetected and the detecting phase is empty.
	m := svm.PhaseTimes{KillNs: 400, DetectNs: 500, RecoverNs: 700}
	arrive := [][]int64{{100, 750}}
	done := [][]int64{{150, 790}} // post-recovery latency 40 <= 2*50
	ph, end := computeTimeline(1000, m, arrive, done, 2)
	want := Phases{HealthyNs: 400, UndetectedNs: 100, DetectingNs: 0, RecoveryNs: 200, RewarmNs: 90, RestoredNs: 210}
	if ph != want || end != 790 {
		t.Fatalf("got %+v end=%d, want %+v end=790", ph, end, want)
	}
}

func TestTimelineProbeSuspicion(t *testing.T) {
	m := svm.PhaseTimes{KillNs: 400, SuspectNs: 440, DetectNs: 500, RecoverNs: 700}
	ph, _ := computeTimeline(1000, m, [][]int64{{100}}, [][]int64{{150}}, 2)
	if ph.UndetectedNs != 40 || ph.DetectingNs != 60 {
		t.Fatalf("suspicion split wrong: %+v", ph)
	}
}

func TestTimelineRewarmNeverRecovers(t *testing.T) {
	// The single thread's post-recovery completions never get back under
	// the threshold: its re-warm extends to its last completion.
	m := svm.PhaseTimes{KillNs: 400, DetectNs: 500, RecoverNs: 700}
	arrive := [][]int64{{100, 300, 320}}
	done := [][]int64{{150, 750, 900}} // healthy p99 = 50, thresh = 100; post-recovery latencies 450, 580
	ph, end := computeTimeline(1000, m, arrive, done, 2)
	if end != 900 || ph.RewarmNs != 200 || ph.RestoredNs != 100 {
		t.Fatalf("got %+v end=%d", ph, end)
	}
}

func TestTimelineRewarmNoBaseline(t *testing.T) {
	// Nothing completed before the kill: re-warm is unmeasurable and
	// collapses to zero at the recovery point.
	m := svm.PhaseTimes{KillNs: 400, DetectNs: 500, RecoverNs: 700}
	arrive := [][]int64{{450}}
	done := [][]int64{{800}}
	ph, end := computeTimeline(1000, m, arrive, done, 2)
	if ph.RewarmNs != 0 || end != 700 || ph.RestoredNs != 300 {
		t.Fatalf("got %+v end=%d", ph, end)
	}
}

func TestTimelineDrainedThread(t *testing.T) {
	// A thread whose requests all completed before the failure adds
	// nothing to re-warm.
	m := svm.PhaseTimes{KillNs: 400, DetectNs: 500, RecoverNs: 700}
	arrive := [][]int64{{100}, {100, 750}}
	done := [][]int64{{150}, {160, 790}}
	ph, end := computeTimeline(1000, m, arrive, done, 2)
	if end != 790 || ph.RewarmNs != 90 {
		t.Fatalf("got %+v end=%d", ph, end)
	}
}

// TestReportDiff: the compare helper flags a changed cell and passes
// identical reports.
func TestReportDiff(t *testing.T) {
	a := RunCell(testSpec())
	if a.Err != nil {
		t.Fatal(a.Err)
	}
	ra := Report{Cells: []CellReport{a.Report()}}
	rb := Report{Cells: []CellReport{a.Report()}}
	rb.WallMs = 123 // informational only: must not diff
	if d := Diff(ra, rb); len(d) != 0 {
		t.Fatalf("identical cells diffed: %v", d)
	}
	rb.Cells[0].P99Ns++
	if d := Diff(ra, rb); len(d) == 0 {
		t.Fatalf("changed p99 not flagged")
	}
}

// FuzzServeDeterminism: over random loads, seeds, mixes, detection
// modes, and kill times, a cell run twice must produce byte-identical
// reports, and its phase durations must always tile the run exactly.
func FuzzServeDeterminism(f *testing.F) {
	f.Add(int64(1), uint64(7), int64(200_000), int64(0), 70, false)
	f.Add(int64(3), uint64(9), int64(120_000), int64(5_000_000), 30, true)
	f.Add(int64(5), uint64(1), int64(600_000), int64(20_000_000), 100, false)
	f.Fuzz(func(t *testing.T, seed int64, arrivalSeed uint64, gap, killAt int64, readPct int, probe bool) {
		sp := testSpec()
		sp.Requests = 60
		sp.Seed = 1 + (seed&0xff+256)%256
		sp.ArrivalSeed = arrivalSeed
		sp.MeanGapNs = 50_000 + (gap&0xfffff+0x100000)%0x100000 // 50us..1.1ms
		sp.ReadPct = ((readPct % 101) + 101) % 101
		if probe {
			sp.Detect = model.DetectProbe
		}
		if killAt != 0 {
			sp.KillAtNs = 1 + (killAt&0xffffff+0x1000000)%0x1000000 // up to ~16.8ms
			sp.Victim = 1 + int(arrivalSeed%uint64(sp.Nodes-1))
		}
		a := RunCell(sp)
		if a.Err != nil {
			t.Fatalf("RunCell: %v", a.Err)
		}
		b := RunCell(sp)
		if b.Err != nil {
			t.Fatalf("repeat RunCell: %v", b.Err)
		}
		ja, _ := json.Marshal(a.Report())
		jb, _ := json.Marshal(b.Report())
		if !bytes.Equal(ja, jb) {
			t.Fatalf("repeat run diverged:\n  a: %s\n  b: %s", ja, jb)
		}
		ph := a.Phases
		sum := ph.HealthyNs + ph.UndetectedNs + ph.DetectingNs + ph.RecoveryNs + ph.RewarmNs + ph.RestoredNs
		if sum != a.ExecNs {
			t.Fatalf("phases sum %d != exec %d (%+v, milestones %+v)", sum, a.ExecNs, ph, a.Milestones)
		}
	})
}

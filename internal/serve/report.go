package serve

import (
	"encoding/json"
	"fmt"

	"ftsvm/internal/obs"
)

// CellReport is the JSON form of one cell's result. Every compared
// field is an integer count or a virtual-time nanosecond value —
// nothing host-dependent — so two same-seed runs marshal to identical
// bytes, which is what the svmserve -compare gate checks.
type CellReport struct {
	Scenario string `json:"scenario"`
	Detect   string `json:"detect"`

	Completed int64 `json:"completed"`
	ExecNs    int64 `json:"exec_ns"`

	MeanNs int64 `json:"mean_ns"`
	P50Ns  int64 `json:"p50_ns"`
	P99Ns  int64 `json:"p99_ns"`
	P999Ns int64 `json:"p999_ns"`
	MaxNs  int64 `json:"max_ns"`

	KillNs       int64 `json:"kill_ns,omitempty"`
	SuspectNs    int64 `json:"suspect_ns,omitempty"`
	DetectNs     int64 `json:"detect_ns,omitempty"`
	RecoverNs    int64 `json:"recover_ns,omitempty"`
	RewarmEndNs  int64 `json:"rewarm_end_ns,omitempty"`
	HealthyP99Ns int64 `json:"healthy_p99_ns,omitempty"`

	Phases Phases `json:"phases"`

	Hist []obs.HistBucket `json:"hist"`
}

// Report converts the result to its JSON form.
func (r Result) Report() CellReport {
	cr := CellReport{
		Scenario:     r.Spec.Scenario,
		Detect:       r.Spec.Detect.String(),
		Completed:    r.Completed,
		ExecNs:       r.ExecNs,
		MeanNs:       r.Hist.Mean(),
		P50Ns:        r.Hist.Percentile(0.50),
		P99Ns:        r.Hist.Percentile(0.99),
		P999Ns:       r.Hist.Percentile(0.999),
		MaxNs:        r.Hist.Max(),
		KillNs:       r.Milestones.KillNs,
		SuspectNs:    r.Milestones.SuspectNs,
		DetectNs:     r.Milestones.DetectNs,
		RecoverNs:    r.Milestones.RecoverNs,
		RewarmEndNs:  r.RewarmEndNs,
		HealthyP99Ns: r.HealthyP99Ns,
		Phases:       r.Phases,
		Hist:         r.Hist.Buckets(),
	}
	return cr
}

// Grid records the workload parameters shared by every cell of a
// report, so a saved report is reproducible from its own contents.
type Grid struct {
	Nodes          int     `json:"nodes"`
	ThreadsPerNode int     `json:"threads_per_node"`
	Buckets        int     `json:"buckets"`
	SlotsPerBucket int     `json:"slots_per_bucket"`
	Keys           int     `json:"keys"`
	ZipfS          float64 `json:"zipf_s"`
	ReadPct        int     `json:"read_pct"`
	Requests       int     `json:"requests"`
	MeanGapNs      int64   `json:"mean_gap_ns"`
	ServiceNs      int64   `json:"service_ns"`
	Seed           int64   `json:"seed"`
	ArrivalSeed    uint64  `json:"arrival_seed"`
	KillAtNs       int64   `json:"kill_at_ns"`
	Victim         int     `json:"victim"`
	RewarmFactor   float64 `json:"rewarm_factor"`
}

// Report is the full svmserve output: the grid parameters and one cell
// per scenario x detection mode. WallMs is informational only and is
// excluded from the comparison.
type Report struct {
	Grid   Grid         `json:"grid"`
	WallMs float64      `json:"wall_ms"`
	Cells  []CellReport `json:"cells"`
}

// Diff compares two reports cell by cell, ignoring WallMs, and returns
// a human-readable line per mismatch (empty: identical).
func Diff(a, b Report) []string {
	var diffs []string
	if ga, gb := mustJSON(a.Grid), mustJSON(b.Grid); ga != gb {
		diffs = append(diffs, fmt.Sprintf("grid: %s != %s", ga, gb))
	}
	if len(a.Cells) != len(b.Cells) {
		diffs = append(diffs, fmt.Sprintf("cell count: %d != %d", len(a.Cells), len(b.Cells)))
		return diffs
	}
	for i := range a.Cells {
		ca, cb := mustJSON(a.Cells[i]), mustJSON(b.Cells[i])
		if ca != cb {
			diffs = append(diffs, fmt.Sprintf("cell %s/%s: mismatch\n  a: %s\n  b: %s",
				a.Cells[i].Scenario, a.Cells[i].Detect, ca, cb))
		}
	}
	return diffs
}

func mustJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return string(b)
}

package model

import "testing"

func TestDefaultValidates(t *testing.T) {
	cfg := Default()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero nodes", func(c *Config) { c.Nodes = 0 }},
		{"zero threads", func(c *Config) { c.ThreadsPerNode = 0 }},
		{"bad word size", func(c *Config) { c.WordSize = 3 }},
		{"page not multiple", func(c *Config) { c.PageSize = 4097 }},
		{"zero post queue", func(c *Config) { c.PostQueueDepth = 0 }},
		{"negative latency", func(c *Config) { c.LinkLatencyNs = -1 }},
		{"zero heartbeat", func(c *Config) { c.HeartbeatTimeoutNs = 0 }},
		{"backoff inverted", func(c *Config) { c.LockBackoffMaxNs = c.LockBackoffMinNs - 1 }},
	}
	for _, c := range cases {
		cfg := Default()
		c.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestTransferNs(t *testing.T) {
	cfg := Default()
	got := cfg.TransferNs(4096)
	want := cfg.LinkLatencyNs + int64(4096*cfg.BandwidthNsPerByte)
	if got != want {
		t.Fatalf("TransferNs = %d, want %d", got, want)
	}
}

func TestCheckpointNsFloor(t *testing.T) {
	cfg := Default()
	small := cfg.CheckpointNs(10)
	floor := cfg.CheckpointNs(cfg.MinCheckpointBytes)
	if small != floor {
		t.Fatalf("floor not applied: %d vs %d", small, floor)
	}
	if cfg.CheckpointNs(2*cfg.MinCheckpointBytes) <= floor {
		t.Fatal("checkpoint cost not increasing with size")
	}
}

func TestContention(t *testing.T) {
	cfg := Default()
	if cfg.Contention(1000, 1) != 1000 {
		t.Fatal("single thread must be uncontended")
	}
	two := cfg.Contention(1000, 2)
	if two <= 1000 {
		t.Fatalf("two active threads should cost more: %d", two)
	}
	if cfg.Contention(1000, 3) <= two {
		t.Fatal("contention should grow with active threads")
	}
}

package model

import "testing"

func TestDefaultValidates(t *testing.T) {
	cfg := Default()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero nodes", func(c *Config) { c.Nodes = 0 }},
		{"zero threads", func(c *Config) { c.ThreadsPerNode = 0 }},
		{"bad word size", func(c *Config) { c.WordSize = 3 }},
		{"page not multiple", func(c *Config) { c.PageSize = 4097 }},
		{"zero post queue", func(c *Config) { c.PostQueueDepth = 0 }},
		{"negative latency", func(c *Config) { c.LinkLatencyNs = -1 }},
		{"zero heartbeat", func(c *Config) { c.HeartbeatTimeoutNs = 0 }},
		{"backoff inverted", func(c *Config) { c.LockBackoffMaxNs = c.LockBackoffMinNs - 1 }},
	}
	for _, c := range cases {
		cfg := Default()
		c.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestTransferNs(t *testing.T) {
	cfg := Default()
	got := cfg.TransferNs(4096)
	want := cfg.LinkLatencyNs + int64(4096*cfg.BandwidthNsPerByte)
	if got != want {
		t.Fatalf("TransferNs = %d, want %d", got, want)
	}
}

func TestCheckpointNsFloor(t *testing.T) {
	cfg := Default()
	small := cfg.CheckpointNs(10)
	floor := cfg.CheckpointNs(cfg.MinCheckpointBytes)
	if small != floor {
		t.Fatalf("floor not applied: %d vs %d", small, floor)
	}
	if cfg.CheckpointNs(2*cfg.MinCheckpointBytes) <= floor {
		t.Fatal("checkpoint cost not increasing with size")
	}
}

func TestContention(t *testing.T) {
	cfg := Default()
	if cfg.Contention(1000, 1) != 1000 {
		t.Fatal("single thread must be uncontended")
	}
	two := cfg.Contention(1000, 2)
	if two <= 1000 {
		t.Fatalf("two active threads should cost more: %d", two)
	}
	if cfg.Contention(1000, 3) <= two {
		t.Fatal("contention should grow with active threads")
	}
}

func TestTreeDepth(t *testing.T) {
	cfg := Default()
	cfg.FanoutArity = 4
	for _, c := range []struct{ n, want int }{
		{1, 1}, {2, 1}, {5, 1}, {6, 2}, {21, 2}, {22, 3}, {64, 3}, {256, 4},
	} {
		if got := cfg.TreeDepth(c.n); got != c.want {
			t.Errorf("TreeDepth(%d) arity 4 = %d, want %d", c.n, got, c.want)
		}
	}
	cfg.FanoutArity = 0
	if got := cfg.TreeDepth(64); got != 1 {
		t.Errorf("flat TreeDepth(64) = %d, want 1", got)
	}
}

func TestBarrierWaitScalesWithDepth(t *testing.T) {
	flat := Default()
	if flat.BarrierWaitNs() != 4*flat.HeartbeatTimeoutNs {
		t.Fatal("flat barrier wait must stay the legacy 4x heartbeat")
	}
	small := Default()
	small.Nodes = 8
	small.FanoutArity = 2
	big := Default()
	big.Nodes = 256
	big.FanoutArity = 2
	if small.BarrierWaitNs() <= flat.BarrierWaitNs() {
		t.Fatal("tree barrier wait must cover relay hops beyond the flat timeout")
	}
	if big.BarrierWaitNs() <= small.BarrierWaitNs() {
		t.Fatal("barrier wait must grow with tree depth")
	}
}

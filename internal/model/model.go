// Package model defines the cost model for the simulated SVM cluster: the
// latency, bandwidth, occupancy, and CPU parameters that the discrete-event
// simulation charges for every protocol and application action.
//
// Defaults are calibrated to the paper's testbed: 8 dual-processor 400 MHz
// Pentium-II nodes on a Myrinet SAN with VMMC (one-way latency ~8 µs,
// bandwidth ~100 MB/s limited by the PCI bus, 4 KB pages).
package model

import (
	"fmt"

	"ftsvm/internal/mem"
)

// Config holds every tunable of the simulation. The zero value is not
// usable; start from Default and override fields.
type Config struct {
	// Cluster shape.
	Nodes          int // number of nodes (paper: 8)
	ThreadsPerNode int // compute threads per SMP node (paper: 1 or 2)

	// Shared-memory layout.
	PageSize int // bytes per shared page (paper: 4096)
	WordSize int // diff granularity in bytes (paper: 4-byte words)

	// Network (Myrinet + VMMC).
	LinkLatencyNs      int64   // one-way end-to-end small-message latency
	BandwidthNsPerByte float64 // inverse bandwidth of a link/DMA transfer
	NICPostOverheadNs  int64   // sender CPU+NIC occupancy to post one message
	NICDrainOverheadNs int64   // NIC occupancy per message while draining the post queue
	PostQueueDepth     int     // asynchronous send (post) queue depth; senders block when full

	// Local memory system.
	MemCopyNsPerByte     float64 // local page copy (twin creation, local fetch)
	DiffComputeNsPerByte float64 // word-compare cost of diff creation
	ReadAccessNs         int64   // charged per shared-memory read API call
	WriteAccessNs        int64   // charged per shared-memory write API call
	SMPContention        float64 // extra fractional cost per additional concurrently active thread on a node

	// Protocol processing.
	ProtoOpNs       int64 // generic protocol action (invalidate a page, handle a notice)
	PageFaultTrapNs int64 // entering/leaving the fault handler

	// Checkpointing (extended protocol only).
	CheckpointNsPerByte float64 // serialize + local staging of thread state
	MinCheckpointBytes  int     // floor for a checkpoint blob (paper stacks: 2-2.8 KB)
	ThreadSuspendNs     int64   // suspend+resume one sibling thread (point A)

	// Lock algorithm tuning.
	LockBackoffMinNs int64 // polling-lock retry backoff lower bound
	LockBackoffMaxNs int64 // polling-lock retry backoff upper bound

	// Failure detection.
	HeartbeatTimeoutNs int64         // spin period between liveness probes while waiting
	Detection          DetectionMode // how waiting processes decide a peer is dead
	ProbeTimeoutNs     int64         // probe-mode: wait this long for a probe ack before counting a miss
	ProbeMissLimit     int           // probe-mode: consecutive missed probes before a suspicion is confirmed
	// ProbeNeighbors bounds probe-mode liveness sweeps: each sweep probes
	// only this many live ring successors, rotating the window so full
	// coverage is reached over ceil((N-1)/ProbeNeighbors) sweeps instead of
	// sending O(N) probes per waiter per sweep. 0 (the default) probes every
	// node per sweep — the paper-scale behavior. Oracle mode ignores it.
	ProbeNeighbors int

	// Scale-out knobs (all zero-value = the paper's 8-node behavior).
	//
	// FanoutArity >= 2 turns the barrier master's release broadcast into a
	// k-ary spanning tree over the live membership: the master posts to its
	// k children, each interior node forwards to its own k children from NI
	// context on delivery. < 2 keeps the flat O(N) broadcast loop.
	FanoutArity int
	// VTCodec selects the wire encoding of vector timestamps (VTFull, the
	// default, models the flat 4-bytes-per-entry encoding; VTDelta models a
	// per-link delta encoding that ships only entries changed since the
	// last message on that sender->receiver link).
	VTCodec VTCodecMode
	// Directory selects the home-directory implementation (DirFlat, the
	// default, is the paper's fully materialized per-item map; DirHashed
	// computes placement from application-locality pins plus a compact
	// override table and rehomes in O(items-on-failed + log N)).
	Directory DirectoryMode

	// ReplicaDegree is the home-replication degree k: every shared page
	// and lock keeps k full copies on k distinct nodes, and the extended
	// protocol survives any k-1 overlapping fail-stops. 0 (the default)
	// means 2 — the paper's primary/secondary pair — and is bit-identical
	// to the seed by construction.
	ReplicaDegree int

	// Retransmission. 0 means derived per message: 4*LinkLatencyNs plus
	// twice the serialization time (size * BandwidthNsPerByte), so a lost
	// 4 KB diff is not declared missing before its DMA could have finished.
	RetxTimeoutNs int64

	// Network chaos (all zero / disabled by default).
	Chaos Chaos

	// Simulation.
	Seed int64
}

// DetectionMode selects how the cluster decides a peer has failed.
type DetectionMode int

const (
	// DetectOracle consults the network's ground truth directly (free,
	// instantaneous, never wrong). This is the seed behavior and keeps the
	// figure grid bit-identical.
	DetectOracle DetectionMode = iota
	// DetectProbe sends real probe messages through the simulated NIC:
	// probes pay post overhead, NIC occupancy, wire latency, and bytes, and
	// a node is declared dead only after ProbeMissLimit consecutive probes
	// go unacknowledged.
	DetectProbe
)

// String returns the flag spelling of the mode.
func (m DetectionMode) String() string {
	switch m {
	case DetectOracle:
		return "oracle"
	case DetectProbe:
		return "probe"
	}
	return fmt.Sprintf("DetectionMode(%d)", int(m))
}

// ParseDetection parses a -detect flag value.
func ParseDetection(s string) (DetectionMode, error) {
	switch s {
	case "oracle":
		return DetectOracle, nil
	case "probe":
		return DetectProbe, nil
	}
	return 0, fmt.Errorf("model: unknown detection mode %q (want oracle or probe)", s)
}

// VTCodecMode selects how vector timestamps are encoded on the wire.
type VTCodecMode int

const (
	// VTFull models the flat encoding: 4 bytes per vector element on every
	// message. This is the seed behavior and keeps legacy tiers
	// bit-identical.
	VTFull VTCodecMode = iota
	// VTDelta models a per-link delta encoding: each sender tracks the last
	// vector it shipped to each destination and encodes only the entries
	// that changed since, falling back to the full encoding when the delta
	// would be larger (dense change sets). Per-sender FIFO delivery and NIC
	// retransmission make the receiver's decode context exactly the
	// sender's link state, so the encoding is lossless.
	VTDelta
)

// String returns the flag spelling of the codec mode.
func (m VTCodecMode) String() string {
	switch m {
	case VTFull:
		return "full"
	case VTDelta:
		return "delta"
	}
	return fmt.Sprintf("VTCodecMode(%d)", int(m))
}

// ParseVTCodec parses a -vtcodec flag value.
func ParseVTCodec(s string) (VTCodecMode, error) {
	switch s {
	case "full":
		return VTFull, nil
	case "delta":
		return VTDelta, nil
	}
	return 0, fmt.Errorf("model: unknown vector-time codec %q (want full or delta)", s)
}

// DirectoryMode selects the home-directory implementation.
type DirectoryMode int

const (
	// DirFlat is the paper's flat home map: two materialized per-item
	// home arrays, rehoming by full scan. The seed behavior and the
	// default on every paper-grid tier (keeps the figure grid
	// bit-identical).
	DirFlat DirectoryMode = iota
	// DirHashed is the consistent-hashed directory for the large tiers:
	// placement computed from application-locality pins, only rehomed
	// items stored (epoch-tagged per-shard overrides), and a per-node
	// reverse index so rehoming walks only the failed node's items.
	DirHashed
)

// String returns the flag spelling of the directory mode.
func (m DirectoryMode) String() string {
	switch m {
	case DirFlat:
		return "flat"
	case DirHashed:
		return "hashed"
	}
	return fmt.Sprintf("DirectoryMode(%d)", int(m))
}

// ParseDirectory parses a -dir flag value.
func ParseDirectory(s string) (DirectoryMode, error) {
	switch s {
	case "flat":
		return DirFlat, nil
	case "hashed":
		return DirHashed, nil
	}
	return 0, fmt.Errorf("model: unknown directory mode %q (want flat or hashed)", s)
}

// Chaos configures the deterministic per-link fault layer of the simulated
// network. All injections replay identically for a given Seed; the zero
// value disables everything.
type Chaos struct {
	Enabled bool
	Seed    int64 // chaos RNG seed, independent of Config.Seed

	// JitterNs adds a uniform [0, JitterNs) delay to each message's wire
	// latency. Per-sender FIFO delivery is preserved (delivery times are
	// clamped monotone per sender), because protocol invariants such as
	// lock-grant replication ordering depend on it.
	JitterNs int64

	// Bandwidth degradation windows: every DegradePeriodNs, the DMA
	// bandwidth term of every NIC is multiplied by DegradeFactor for
	// DegradeLenNs.
	DegradePeriodNs int64
	DegradeLenNs    int64
	DegradeFactor   float64 // >= 1; 0 or 1 means no slowdown

	// Burst loss: packets put on the wire while a burst window is active
	// are dropped (and retransmitted by the NIC after the retransmission
	// timeout, head-of-line blocking the sender — so a burst is pure added
	// latency to upper layers, never silent loss). Windows start at
	// BurstStartNs and last BurstLenNs; if BurstPeriodNs > 0 they repeat
	// with that period, otherwise there is a single window.
	BurstStartNs  int64
	BurstLenNs    int64
	BurstPeriodNs int64
	BurstSrc      int // limit to this sender node (-1: any)
	BurstDst      int // limit to this destination node (-1: any)

	// Gray nodes: slow NICs. Both the per-message drain overhead and the
	// DMA time of the listed nodes are multiplied by GrayFactor.
	GrayNodes  []int
	GrayFactor float64 // >= 1; 0 or 1 means no slowdown
}

// DegradeActive reports whether a degradation window covers virtual time t.
func (ch *Chaos) DegradeActive(t int64) bool {
	if !ch.Enabled || ch.DegradeLenNs <= 0 || ch.DegradePeriodNs <= 0 || ch.DegradeFactor <= 1 {
		return false
	}
	return t%ch.DegradePeriodNs < ch.DegradeLenNs
}

// BurstActive reports whether a burst-loss window covers virtual time t for
// a packet from src to dst.
func (ch *Chaos) BurstActive(t int64, src, dst int) bool {
	if !ch.Enabled || ch.BurstLenNs <= 0 || t < ch.BurstStartNs {
		return false
	}
	if ch.BurstSrc >= 0 && src != ch.BurstSrc {
		return false
	}
	if ch.BurstDst >= 0 && dst != ch.BurstDst {
		return false
	}
	off := t - ch.BurstStartNs
	if ch.BurstPeriodNs > 0 {
		off %= ch.BurstPeriodNs
	}
	return off < ch.BurstLenNs
}

// Gray reports whether node i has a chaos-degraded (slow) NIC.
func (ch *Chaos) Gray(i int) bool {
	if !ch.Enabled || ch.GrayFactor <= 1 {
		return false
	}
	for _, g := range ch.GrayNodes {
		if g == i {
			return true
		}
	}
	return false
}

// Default returns the paper-calibrated configuration: 8 nodes, 1 thread per
// node, Myrinet/VMMC costs.
func Default() Config {
	return Config{
		Nodes:          8,
		ThreadsPerNode: 1,

		PageSize: 4096,
		WordSize: 4,

		LinkLatencyNs:      8_000, // 8 µs one-way (paper §5.1)
		BandwidthNsPerByte: 10.0,  // ~100 MB/s
		NICPostOverheadNs:  2_000,
		NICDrainOverheadNs: 500,
		PostQueueDepth:     64,

		MemCopyNsPerByte:     1.0, // ~1 GB/s local copy
		DiffComputeNsPerByte: 3.0, // word compare + run encoding on a 400 MHz CPU
		ReadAccessNs:         25,
		WriteAccessNs:        30,
		SMPContention:        0.20,

		ProtoOpNs:       400,
		PageFaultTrapNs: 2_000,

		CheckpointNsPerByte: 2.0,
		MinCheckpointBytes:  2048,
		ThreadSuspendNs:     5_000,

		LockBackoffMinNs: 5_000,
		LockBackoffMaxNs: 40_000,

		HeartbeatTimeoutNs: 2_000_000, // 2 ms
		Detection:          DetectOracle,
		ProbeTimeoutNs:     200_000, // 200 µs: >> probe RTT, << heartbeat period
		ProbeMissLimit:     2,

		RetxTimeoutNs: 0, // derived per message size

		Chaos: Chaos{BurstSrc: -1, BurstDst: -1},

		Seed: 1,
	}
}

// RetxTimeout returns the NIC retransmission timeout for a message of size
// bytes: RetxTimeoutNs if configured, otherwise derived from the round-trip
// latency plus twice the serialization time, so large diff messages are not
// declared lost while their DMA is still plausibly in progress.
func (c *Config) RetxTimeout(size int) int64 {
	if c.RetxTimeoutNs > 0 {
		return c.RetxTimeoutNs
	}
	return 4*c.LinkLatencyNs + 2*int64(float64(size)*c.BandwidthNsPerByte)
}

// TreeDepth returns the depth of the FanoutArity-ary broadcast tree over n
// members (root at depth 0), or 1 for the flat broadcast — every member is
// one hop from the master either way when no tree is configured.
func (c *Config) TreeDepth(n int) int {
	k := c.FanoutArity
	if k < 2 || n <= 1 {
		return 1
	}
	depth, width, covered := 0, 1, 1
	for covered < n {
		width *= k
		covered += width
		depth++
	}
	return depth
}

// BarrierWaitNs returns how long a barrier (or recovery-barrier) waiter
// sleeps before running a liveness sweep. The flat-broadcast value is the
// seed's exact constant; with tree fan-out the release travels
// TreeDepth hops — each paying post overhead, k drain slots, and wire
// latency — so the timeout grows with the tree depth instead of firing
// spurious probe storms at 64+ nodes.
func (c *Config) BarrierWaitNs() int64 {
	w := 4 * c.HeartbeatTimeoutNs
	if c.FanoutArity >= 2 {
		hop := c.LinkLatencyNs + c.NICPostOverheadNs + int64(c.FanoutArity)*c.NICDrainOverheadNs
		w += 2 * int64(c.TreeDepth(c.Nodes)) * hop
	}
	return w
}

// Validate reports the first structural problem with the configuration.
func (c *Config) Validate() error {
	switch {
	case c.Nodes < 1:
		return fmt.Errorf("model: Nodes = %d, need >= 1", c.Nodes)
	case c.ThreadsPerNode < 1:
		return fmt.Errorf("model: ThreadsPerNode = %d, need >= 1", c.ThreadsPerNode)
	case c.WordSize != 4 && c.WordSize != 8:
		return fmt.Errorf("model: WordSize = %d, need 4 or 8", c.WordSize)
	case c.PostQueueDepth < 1:
		return fmt.Errorf("model: PostQueueDepth = %d, need >= 1", c.PostQueueDepth)
	case c.LinkLatencyNs < 0 || c.BandwidthNsPerByte < 0:
		return fmt.Errorf("model: negative network cost")
	case c.HeartbeatTimeoutNs <= 0:
		return fmt.Errorf("model: HeartbeatTimeoutNs must be positive")
	case c.LockBackoffMaxNs < c.LockBackoffMinNs:
		return fmt.Errorf("model: lock backoff max < min")
	case c.Detection != DetectOracle && c.Detection != DetectProbe:
		return fmt.Errorf("model: unknown Detection mode %d", int(c.Detection))
	case c.RetxTimeoutNs < 0:
		return fmt.Errorf("model: RetxTimeoutNs = %d, need >= 0 (0: derived)", c.RetxTimeoutNs)
	case c.FanoutArity < 0 || c.FanoutArity == 1:
		return fmt.Errorf("model: FanoutArity = %d, need 0 (flat) or >= 2", c.FanoutArity)
	case c.VTCodec != VTFull && c.VTCodec != VTDelta:
		return fmt.Errorf("model: unknown VTCodec mode %d", int(c.VTCodec))
	case c.Directory != DirFlat && c.Directory != DirHashed:
		return fmt.Errorf("model: unknown Directory mode %d", int(c.Directory))
	case c.ProbeNeighbors < 0:
		return fmt.Errorf("model: ProbeNeighbors = %d, need >= 0 (0: probe all)", c.ProbeNeighbors)
	case c.ReplicaDegree != 0 && (c.ReplicaDegree < 2 || c.ReplicaDegree > c.Nodes):
		return fmt.Errorf("model: ReplicaDegree = %d, need 0 (default 2) or 2..Nodes", c.ReplicaDegree)
	}
	if c.Detection == DetectProbe {
		if c.ProbeTimeoutNs <= 0 {
			return fmt.Errorf("model: probe detection needs ProbeTimeoutNs > 0")
		}
		if c.ProbeMissLimit < 1 {
			return fmt.Errorf("model: probe detection needs ProbeMissLimit >= 1")
		}
	}
	if ch := &c.Chaos; ch.Enabled {
		switch {
		case ch.JitterNs < 0:
			return fmt.Errorf("model: Chaos.JitterNs = %d, need >= 0", ch.JitterNs)
		case ch.DegradeLenNs > 0 && ch.DegradePeriodNs < ch.DegradeLenNs:
			return fmt.Errorf("model: Chaos degrade window longer than its period")
		case ch.DegradeLenNs > 0 && ch.DegradeFactor < 1:
			return fmt.Errorf("model: Chaos.DegradeFactor = %g, need >= 1", ch.DegradeFactor)
		case ch.BurstLenNs > 0 && ch.BurstPeriodNs > 0 && ch.BurstPeriodNs <= ch.BurstLenNs:
			return fmt.Errorf("model: Chaos burst window covers its whole period — the network would never heal")
		case ch.BurstSrc >= c.Nodes || ch.BurstDst >= c.Nodes:
			return fmt.Errorf("model: Chaos burst endpoint out of range")
		case len(ch.GrayNodes) > 0 && ch.GrayFactor < 1:
			return fmt.Errorf("model: Chaos.GrayFactor = %g, need >= 1", ch.GrayFactor)
		}
		for _, g := range ch.GrayNodes {
			if g < 0 || g >= c.Nodes {
				return fmt.Errorf("model: Chaos gray node %d out of range", g)
			}
		}
	}
	// Diff geometry: the word size must divide the page size, or the diff
	// engine would silently mis-handle the tail of every page.
	if err := mem.CheckGeometry(c.PageSize, c.WordSize); err != nil {
		return fmt.Errorf("model: %w", err)
	}
	return nil
}

// Degree returns the effective home-replication degree: ReplicaDegree,
// or 2 (the paper's primary/secondary pair) when unset.
func (c *Config) Degree() int {
	if c.ReplicaDegree == 0 {
		return 2
	}
	return c.ReplicaDegree
}

// TransferNs returns the modeled wire time for a message of size bytes:
// latency plus size over bandwidth.
func (c *Config) TransferNs(size int) int64 {
	return c.LinkLatencyNs + int64(float64(size)*c.BandwidthNsPerByte)
}

// CopyNs returns the modeled local memory-copy time for size bytes.
func (c *Config) CopyNs(size int) int64 {
	return int64(float64(size) * c.MemCopyNsPerByte)
}

// DiffNs returns the modeled CPU time to compute a diff over size bytes.
func (c *Config) DiffNs(size int) int64 {
	return int64(float64(size) * c.DiffComputeNsPerByte)
}

// CheckpointNs returns the modeled CPU time to capture a checkpoint blob of
// size bytes (before transmission, which is charged separately).
func (c *Config) CheckpointNs(size int) int64 {
	if size < c.MinCheckpointBytes {
		size = c.MinCheckpointBytes
	}
	return int64(float64(size) * c.CheckpointNsPerByte)
}

// Contention scales a CPU cost by the SMP memory-bus contention factor for
// a node with active concurrently running threads.
func (c *Config) Contention(cost int64, active int) int64 {
	if active <= 1 {
		return cost
	}
	return int64(float64(cost) * (1 + c.SMPContention*float64(active-1)))
}

// Package model defines the cost model for the simulated SVM cluster: the
// latency, bandwidth, occupancy, and CPU parameters that the discrete-event
// simulation charges for every protocol and application action.
//
// Defaults are calibrated to the paper's testbed: 8 dual-processor 400 MHz
// Pentium-II nodes on a Myrinet SAN with VMMC (one-way latency ~8 µs,
// bandwidth ~100 MB/s limited by the PCI bus, 4 KB pages).
package model

import (
	"fmt"

	"ftsvm/internal/mem"
)

// Config holds every tunable of the simulation. The zero value is not
// usable; start from Default and override fields.
type Config struct {
	// Cluster shape.
	Nodes          int // number of nodes (paper: 8)
	ThreadsPerNode int // compute threads per SMP node (paper: 1 or 2)

	// Shared-memory layout.
	PageSize int // bytes per shared page (paper: 4096)
	WordSize int // diff granularity in bytes (paper: 4-byte words)

	// Network (Myrinet + VMMC).
	LinkLatencyNs      int64   // one-way end-to-end small-message latency
	BandwidthNsPerByte float64 // inverse bandwidth of a link/DMA transfer
	NICPostOverheadNs  int64   // sender CPU+NIC occupancy to post one message
	NICDrainOverheadNs int64   // NIC occupancy per message while draining the post queue
	PostQueueDepth     int     // asynchronous send (post) queue depth; senders block when full

	// Local memory system.
	MemCopyNsPerByte     float64 // local page copy (twin creation, local fetch)
	DiffComputeNsPerByte float64 // word-compare cost of diff creation
	ReadAccessNs         int64   // charged per shared-memory read API call
	WriteAccessNs        int64   // charged per shared-memory write API call
	SMPContention        float64 // extra fractional cost per additional concurrently active thread on a node

	// Protocol processing.
	ProtoOpNs       int64 // generic protocol action (invalidate a page, handle a notice)
	PageFaultTrapNs int64 // entering/leaving the fault handler

	// Checkpointing (extended protocol only).
	CheckpointNsPerByte float64 // serialize + local staging of thread state
	MinCheckpointBytes  int     // floor for a checkpoint blob (paper stacks: 2-2.8 KB)
	ThreadSuspendNs     int64   // suspend+resume one sibling thread (point A)

	// Lock algorithm tuning.
	LockBackoffMinNs int64 // polling-lock retry backoff lower bound
	LockBackoffMaxNs int64 // polling-lock retry backoff upper bound

	// Failure detection.
	HeartbeatTimeoutNs int64 // spin period between liveness probes while waiting

	// Simulation.
	Seed int64
}

// Default returns the paper-calibrated configuration: 8 nodes, 1 thread per
// node, Myrinet/VMMC costs.
func Default() Config {
	return Config{
		Nodes:          8,
		ThreadsPerNode: 1,

		PageSize: 4096,
		WordSize: 4,

		LinkLatencyNs:      8_000, // 8 µs one-way (paper §5.1)
		BandwidthNsPerByte: 10.0,  // ~100 MB/s
		NICPostOverheadNs:  2_000,
		NICDrainOverheadNs: 500,
		PostQueueDepth:     64,

		MemCopyNsPerByte:     1.0, // ~1 GB/s local copy
		DiffComputeNsPerByte: 3.0, // word compare + run encoding on a 400 MHz CPU
		ReadAccessNs:         25,
		WriteAccessNs:        30,
		SMPContention:        0.20,

		ProtoOpNs:       400,
		PageFaultTrapNs: 2_000,

		CheckpointNsPerByte: 2.0,
		MinCheckpointBytes:  2048,
		ThreadSuspendNs:     5_000,

		LockBackoffMinNs: 5_000,
		LockBackoffMaxNs: 40_000,

		HeartbeatTimeoutNs: 2_000_000, // 2 ms

		Seed: 1,
	}
}

// Validate reports the first structural problem with the configuration.
func (c *Config) Validate() error {
	switch {
	case c.Nodes < 1:
		return fmt.Errorf("model: Nodes = %d, need >= 1", c.Nodes)
	case c.ThreadsPerNode < 1:
		return fmt.Errorf("model: ThreadsPerNode = %d, need >= 1", c.ThreadsPerNode)
	case c.WordSize != 4 && c.WordSize != 8:
		return fmt.Errorf("model: WordSize = %d, need 4 or 8", c.WordSize)
	case c.PostQueueDepth < 1:
		return fmt.Errorf("model: PostQueueDepth = %d, need >= 1", c.PostQueueDepth)
	case c.LinkLatencyNs < 0 || c.BandwidthNsPerByte < 0:
		return fmt.Errorf("model: negative network cost")
	case c.HeartbeatTimeoutNs <= 0:
		return fmt.Errorf("model: HeartbeatTimeoutNs must be positive")
	case c.LockBackoffMaxNs < c.LockBackoffMinNs:
		return fmt.Errorf("model: lock backoff max < min")
	}
	// Diff geometry: the word size must divide the page size, or the diff
	// engine would silently mis-handle the tail of every page.
	if err := mem.CheckGeometry(c.PageSize, c.WordSize); err != nil {
		return fmt.Errorf("model: %w", err)
	}
	return nil
}

// TransferNs returns the modeled wire time for a message of size bytes:
// latency plus size over bandwidth.
func (c *Config) TransferNs(size int) int64 {
	return c.LinkLatencyNs + int64(float64(size)*c.BandwidthNsPerByte)
}

// CopyNs returns the modeled local memory-copy time for size bytes.
func (c *Config) CopyNs(size int) int64 {
	return int64(float64(size) * c.MemCopyNsPerByte)
}

// DiffNs returns the modeled CPU time to compute a diff over size bytes.
func (c *Config) DiffNs(size int) int64 {
	return int64(float64(size) * c.DiffComputeNsPerByte)
}

// CheckpointNs returns the modeled CPU time to capture a checkpoint blob of
// size bytes (before transmission, which is charged separately).
func (c *Config) CheckpointNs(size int) int64 {
	if size < c.MinCheckpointBytes {
		size = c.MinCheckpointBytes
	}
	return int64(float64(size) * c.CheckpointNsPerByte)
}

// Contention scales a CPU cost by the SMP memory-bus contention factor for
// a node with active concurrently running threads.
func (c *Config) Contention(cost int64, active int) int64 {
	if active <= 1 {
		return cost
	}
	return int64(float64(cost) * (1 + c.SMPContention*float64(active-1)))
}

package apps

import (
	"fmt"

	"ftsvm/internal/svm"
)

// kvState is the resumable state of a KVStore thread: the op index
// advances before each bucket-lock release, so a replay applies every
// operation exactly once.
type kvState struct {
	Phase   int
	Arrived bool
	Op      int
	OpStage int
}

// KVSlotBytes is one hash slot: key and value words.
const KVSlotBytes = 16

// KVTable is the shared hash-table layout used by the key-value
// workloads (KVStore here, the open-loop serving driver in
// internal/serve): a fixed array of buckets, each a run of
// (key, value) slots starting on a fresh page, with bucket homes
// round-robin over the cluster's nodes — a real partitioned store.
// One lock per bucket guards its slots.
type KVTable struct {
	Buckets        int
	SlotsPerBucket int
	Pages          int
	BucketAddr     []int

	homeOf []int
}

// NewKVTable lays out buckets*slotsPerBucket slots in the page-grained
// shared address space and computes the per-page home map. It panics if
// two buckets would share a page (see kvPlaceBuckets).
func NewKVTable(s Shape, buckets, slotsPerBucket int) *KVTable {
	l := newLayout(s.PageSize)
	bucketBytes := slotsPerBucket * KVSlotBytes
	bucketAddr := make([]int, buckets)
	for b := range bucketAddr {
		bucketAddr[b] = l.alloc(bucketBytes)
	}
	return &KVTable{
		Buckets:        buckets,
		SlotsPerBucket: slotsPerBucket,
		Pages:          l.pages(),
		BucketAddr:     bucketAddr,
		homeOf:         kvPlaceBuckets(s, l.pages(), s.PageSize, bucketBytes, bucketAddr),
	}
}

// kvPlaceBuckets assigns every page of every bucket's slot run to the
// bucket's home node and asserts that no two buckets share a page. The
// "partitioned store" claim rests on that exclusivity: with a shared
// page the last-placed bucket would silently win the page's home and
// remote bucket traffic would be misattributed. layout.alloc guarantees
// it today by starting every allocation on a fresh page, so the check
// exists to turn any future packing-allocator change into an immediate,
// attributable panic instead of a silent home-map corruption.
func kvPlaceBuckets(s Shape, pages, pageSize, bucketBytes int, bucketAddr []int) []int {
	T := s.Threads()
	homeOf := make([]int, pages)
	owner := make([]int, pages)
	for p := range owner {
		owner[p] = -1
	}
	for b := range bucketAddr {
		nd := s.NodeOfThread(b % T)
		for a := bucketAddr[b]; a < bucketAddr[b]+bucketBytes; a += pageSize {
			p := a / pageSize
			if owner[p] >= 0 && owner[p] != b {
				panic(fmt.Sprintf(
					"apps: kv buckets %d and %d share page %d (bucket runs must be page-exclusive)",
					owner[p], b, p))
			}
			owner[p] = b
			homeOf[p] = nd
		}
	}
	return homeOf
}

// HomeAssign is the page-to-home map for svm.Options.HomeAssign.
func (tb *KVTable) HomeAssign(p int) int {
	if p < len(tb.homeOf) {
		return tb.homeOf[p]
	}
	return 0
}

// BucketOf hashes a key to its bucket. The multiply stays in uint64 and
// the reduction happens before the int conversion: the product of the
// Knuth multiplier with any key is reduced mod Buckets while still an
// unsigned 64-bit value, so the index is always in [0, Buckets) even on
// 32-bit int platforms (converting the raw product first, as the old
// code did, truncates to a possibly negative int there — an
// out-of-range slice index). On 64-bit platforms the assignment is
// identical for every key the workloads generate (key*2654435761 stays
// below 2^63 for keys under ~3.47e9, far above any key space used), so
// recorded virtual metrics do not shift.
func (tb *KVTable) BucketOf(key uint64) int {
	return int(key * 2654435761 % uint64(tb.Buckets))
}

// SlotAddr returns the shared address of slot i of bucket b.
func (tb *KVTable) SlotAddr(b, i int) int {
	return tb.BucketAddr[b] + i*KVSlotBytes
}

// KVStore is the §6 "broader application domain" workload: a shared
// hash-table key-value store under transactional per-bucket locking —
// the access pattern of the back-end servers the paper's introduction
// motivates, quite unlike the SPLASH kernels. Each thread applies a
// deterministic stream of ADD(key, delta) operations; additions commute,
// so the expected final value of every key is independent of the
// interleaving and verified exactly at the end.
func KVStore(s Shape, buckets, slotsPerBucket, opsPerThread int) *Workload {
	// Half the table's capacity in distinct keys: overflow-free under any
	// hash distribution the default geometry produces.
	return KVStoreKeys(s, buckets, slotsPerBucket, opsPerThread, buckets*slotsPerBucket/2)
}

// KVStoreKeys is KVStore with an explicit key-space size. A key space
// that crowds more distinct keys into one bucket than it has slots
// makes the op stream overflow — used by tests to exercise the
// overflow-reporting path deterministically.
func KVStoreKeys(s Shape, buckets, slotsPerBucket, opsPerThread, keySpace int) *Workload {
	T := s.Threads()
	tb := NewKVTable(s, buckets, slotsPerBucket)

	w := &Workload{
		Name:       fmt.Sprintf("KVStore-%dx%d", buckets, opsPerThread),
		Pages:      tb.Pages,
		Locks:      buckets,
		HomeAssign: tb.HomeAssign,
	}

	// opFor returns thread tid's op i: (key, delta). Deterministic and
	// recomputable during replay.
	opFor := func(tid, i int) (uint64, uint64) {
		rng := newPrng(uint64(tid)<<32 | uint64(i) | 1)
		key := rng.next()%uint64(keySpace) + 1 // keys are nonzero
		delta := rng.next()%100 + 1
		return key, delta
	}

	w.Body = func(t *svm.Thread) {
		st := &kvState{OpStage: -1}
		t.Setup(st)
		tid := t.ID()

		// opsStage applies the thread's operation stream: lookup-or-insert
		// the key in its bucket, add the delta — all under the bucket's
		// lock, with st.Op advanced before the Release for exactly-once
		// replay.
		opsStage := func(stage int) {
			if st.OpStage != stage {
				st.Op, st.OpStage = 0, stage
			}
			for st.Op < opsPerThread {
				key, delta := opFor(tid, st.Op)
				b := tb.BucketOf(key)
				t.Acquire(b)
				slot := -1
				for i := 0; i < slotsPerBucket; i++ {
					k := t.ReadU64(tb.SlotAddr(b, i))
					if k == key || k == 0 {
						slot = i
						break
					}
				}
				if slot < 0 {
					// Identify the exact op that found the bucket full: the
					// truncated stream is the root cause, and the distant
					// key-count mismatch verify would otherwise report is
					// pure fallout (verifyStage skips once this is recorded).
					w.failf("thread %d op %d: bucket %d overflow (key %d, %d slots)",
						tid, st.Op, b, key, slotsPerBucket)
					st.Op = opsPerThread
					t.Release(b)
					return
				}
				addr := tb.SlotAddr(b, slot)
				t.WriteU64(addr, key)
				v := t.ReadU64(addr + 8)
				t.WriteU64(addr+8, v+delta)
				t.Compute(500) // request parsing / hashing
				st.Op++
				t.Release(b)
			}
		}

		// verifyStage recomputes every key's expected total from all
		// threads' op streams and compares against the table.
		verifyStage := func() {
			if tid != 0 {
				return
			}
			if w.Err() != nil {
				// An op stream already failed (bucket overflow): the table
				// is legitimately short and a key-count/value diff would
				// only obscure the recorded root cause.
				return
			}
			want := map[uint64]uint64{}
			for pt := 0; pt < T; pt++ {
				for i := 0; i < opsPerThread; i++ {
					k, d := opFor(pt, i)
					want[k] += d
				}
			}
			got := map[uint64]uint64{}
			for b := 0; b < buckets; b++ {
				seen := map[uint64]bool{}
				for i := 0; i < slotsPerBucket; i++ {
					k := t.ReadU64(tb.SlotAddr(b, i))
					if k == 0 {
						continue
					}
					if tb.BucketOf(k) != b {
						w.failf("key %d stored in wrong bucket %d", k, b)
					}
					if seen[k] {
						w.failf("key %d duplicated within bucket %d", k, b)
					}
					seen[k] = true
					got[k] += t.ReadU64(tb.SlotAddr(b, i) + 8)
				}
			}
			if len(got) != len(want) {
				w.failf("key count %d, want %d", len(got), len(want))
				return
			}
			for k, wv := range want {
				if got[k] != wv {
					w.failf("key %d = %d, want %d", k, got[k], wv)
					return
				}
			}
		}

		runStages(t, &st.Phase, &st.Arrived, 2, func(s int) {
			switch s {
			case 0:
				opsStage(s)
			case 1:
				verifyStage()
			}
		})
	}
	return w
}

package apps

import (
	"fmt"

	"ftsvm/internal/svm"
)

// kvState is the resumable state of a KVStore thread: the op index
// advances before each bucket-lock release, so a replay applies every
// operation exactly once.
type kvState struct {
	Phase   int
	Arrived bool
	Op      int
	OpStage int
}

// kvSlotBytes is one hash slot: key and value words.
const kvSlotBytes = 16

// KVStore is the §6 "broader application domain" workload: a shared
// hash-table key-value store under transactional per-bucket locking —
// the access pattern of the back-end servers the paper's introduction
// motivates, quite unlike the SPLASH kernels. Each thread applies a
// deterministic stream of ADD(key, delta) operations; additions commute,
// so the expected final value of every key is independent of the
// interleaving and verified exactly at the end.
func KVStore(s Shape, buckets, slotsPerBucket, opsPerThread int) *Workload {
	T := s.Threads()
	l := newLayout(s.PageSize)
	bucketBytes := slotsPerBucket * kvSlotBytes
	// One bucket per page region, buckets round-robin over nodes (a real
	// partitioned store).
	bucketAddr := make([]int, buckets)
	for b := range bucketAddr {
		bucketAddr[b] = l.alloc(bucketBytes)
	}
	homeOf := make([]int, l.pages())
	for b := range bucketAddr {
		nd := s.NodeOfThread(b % T)
		for a := bucketAddr[b]; a < bucketAddr[b]+bucketBytes; a += s.PageSize {
			homeOf[l.pageOf(a)] = nd
		}
	}

	w := &Workload{
		Name:  fmt.Sprintf("KVStore-%dx%d", buckets, opsPerThread),
		Pages: l.pages(),
		Locks: buckets,
		HomeAssign: func(p int) int {
			if p < len(homeOf) {
				return homeOf[p]
			}
			return 0
		},
	}

	keySpace := buckets * slotsPerBucket / 2
	bucketOf := func(key uint64) int { return int(key*2654435761) % buckets }

	// opFor returns thread tid's op i: (key, delta). Deterministic and
	// recomputable during replay.
	opFor := func(tid, i int) (uint64, uint64) {
		rng := newPrng(uint64(tid)<<32 | uint64(i) | 1)
		key := rng.next()%uint64(keySpace) + 1 // keys are nonzero
		delta := rng.next()%100 + 1
		return key, delta
	}

	w.Body = func(t *svm.Thread) {
		st := &kvState{OpStage: -1}
		t.Setup(st)
		tid := t.ID()

		// opsStage applies the thread's operation stream: lookup-or-insert
		// the key in its bucket, add the delta — all under the bucket's
		// lock, with st.Op advanced before the Release for exactly-once
		// replay.
		opsStage := func(stage int) {
			if st.OpStage != stage {
				st.Op, st.OpStage = 0, stage
			}
			for st.Op < opsPerThread {
				key, delta := opFor(tid, st.Op)
				b := bucketOf(key)
				t.Acquire(b)
				slot := -1
				for i := 0; i < slotsPerBucket; i++ {
					k := t.ReadU64(bucketAddr[b] + i*kvSlotBytes)
					if k == key || k == 0 {
						slot = i
						break
					}
				}
				if slot < 0 {
					w.failf("bucket %d overflow", b)
					st.Op = opsPerThread
					t.Release(b)
					return
				}
				addr := bucketAddr[b] + slot*kvSlotBytes
				t.WriteU64(addr, key)
				v := t.ReadU64(addr + 8)
				t.WriteU64(addr+8, v+delta)
				t.Compute(500) // request parsing / hashing
				st.Op++
				t.Release(b)
			}
		}

		// verifyStage recomputes every key's expected total from all
		// threads' op streams and compares against the table.
		verifyStage := func() {
			if tid != 0 {
				return
			}
			want := map[uint64]uint64{}
			for pt := 0; pt < T; pt++ {
				for i := 0; i < opsPerThread; i++ {
					k, d := opFor(pt, i)
					want[k] += d
				}
			}
			got := map[uint64]uint64{}
			for b := 0; b < buckets; b++ {
				seen := map[uint64]bool{}
				for i := 0; i < slotsPerBucket; i++ {
					k := t.ReadU64(bucketAddr[b] + i*kvSlotBytes)
					if k == 0 {
						continue
					}
					if bucketOf(k) != b {
						w.failf("key %d stored in wrong bucket %d", k, b)
					}
					if seen[k] {
						w.failf("key %d duplicated within bucket %d", k, b)
					}
					seen[k] = true
					got[k] += t.ReadU64(bucketAddr[b] + i*kvSlotBytes + 8)
				}
			}
			if len(got) != len(want) {
				w.failf("key count %d, want %d", len(got), len(want))
				return
			}
			for k, wv := range want {
				if got[k] != wv {
					w.failf("key %d = %d, want %d", k, got[k], wv)
					return
				}
			}
		}

		runStages(t, &st.Phase, &st.Arrived, 2, func(s int) {
			switch s {
			case 0:
				opsStage(s)
			case 1:
				verifyStage()
			}
		})
	}
	return w
}

package apps

import (
	"fmt"
	"math"

	"ftsvm/internal/svm"
)

// forwardNeighbors is the half-shell of 13 forward cell offsets (plus the
// cell itself handled separately) used to count each cell pair once.
var forwardNeighbors = [13][3]int{
	{1, 0, 0}, {0, 1, 0}, {0, 0, 1},
	{1, 1, 0}, {1, -1, 0}, {1, 0, 1}, {1, 0, -1},
	{0, 1, 1}, {0, 1, -1},
	{1, 1, 1}, {1, 1, -1}, {1, -1, 1}, {1, -1, -1},
}

// WaterSp builds the Water-SpatialFL workload: molecules statically binned
// into a G^3 cell grid, threads owning contiguous cell blocks, pairwise
// interactions only between neighboring cells, and per-cell locks guarding
// only the boundary cells that receive contributions from other threads.
// Nearly all page updates land on the updating thread's own home pages —
// the paper measures >99% home-page diffs, which is why the extended
// protocol's overhead on it is almost entirely diff processing.
func WaterSp(s Shape, n, steps int) *Workload {
	G := 2
	for G*G*G*64 < n { // cutoff-sized boxes: ~64 molecules per cell
		G++
	}
	cells := G * G * G
	T := s.Threads()

	// Static binning: molecule i lives in cell i*cells/n (the jittered
	// lattice init makes consecutive molecules spatial neighbors).
	cellOf := make([]int, n)
	cellLo := make([]int, cells+1)
	for i := 0; i < n; i++ {
		cellOf[i] = i * cells / n
	}
	for c := 1; c <= cells; c++ {
		cellLo[c] = (c*n + cells - 1) / cells
	}

	ownerOfCell := func(c int) int { return c * T / cells }

	l := newLayout(s.PageSize)
	// SPLASH-2 water keeps, per molecule, positions/velocities/forces plus
	// higher-order derivative vectors (~18 doubles); the record stride
	// determines how many molecules share a page and therefore how well
	// per-owner page homing resolves.
	const molBytes = 18 * 8
	posA := l.alloc(n * molBytes)
	posB := l.alloc(n * molBytes)
	velA := l.alloc(n * molBytes)
	velB := l.alloc(n * molBytes)
	frc := l.alloc(n * molBytes)
	// Per-thread contribution regions (shared memory homed at the writer,
	// like SPLASH's per-process arrays): a thread writes every force
	// contribution it computes into its own region, and cell owners gather
	// them — so nearly all diffed pages are the writer's own home pages,
	// the >99% the paper reports for Water-SpatialFL.
	accBase := make([]int, T)
	for i := range accBase {
		accBase[i] = l.alloc(n * molBytes)
	}
	energyAddr := l.alloc(8)

	homeOf := make([]int, l.pages())
	for c := 0; c < cells; c++ {
		nd := s.NodeOfThread(ownerOfCell(c))
		for _, base := range []int{posA, posB, velA, velB, frc} {
			for a := base + cellLo[c]*molBytes; a < base+cellLo[c+1]*molBytes; a += s.PageSize {
				homeOf[l.pageOf(a)] = nd
			}
		}
	}
	for tid := 0; tid < T; tid++ {
		for a := accBase[tid]; a < accBase[tid]+n*molBytes; a += s.PageSize {
			homeOf[l.pageOf(a)] = s.NodeOfThread(tid)
		}
	}

	w := &Workload{
		Name:  fmt.Sprintf("WaterSp-%d", n),
		Pages: l.pages(),
		Locks: cells + 6, // per-cell locks + globals (paper: 518 for 4096)
		HomeAssign: func(p int) int {
			if p < len(homeOf) {
				return homeOf[p]
			}
			return 0
		},
	}
	energyLock := cells

	// Precompute, per cell, its interaction partners and whether it needs
	// a lock when flushed (it receives contributions from another owner).
	coord := func(c int) (int, int, int) { return c % G, (c / G) % G, c / (G * G) }
	cellAt := func(x, y, z int) int {
		if x < 0 || y < 0 || z < 0 || x >= G || y >= G || z >= G {
			return -1
		}
		return x + y*G + z*G*G
	}
	partners := make([][]int, cells)
	needLock := make([]bool, cells)
	touchers := make([]map[int]bool, cells)
	for c := range touchers {
		touchers[c] = map[int]bool{ownerOfCell(c): true}
	}
	for c := 0; c < cells; c++ {
		x, y, z := coord(c)
		for _, d := range forwardNeighbors {
			nb := cellAt(x+d[0], y+d[1], z+d[2])
			if nb < 0 {
				continue
			}
			partners[c] = append(partners[c], nb)
			touchers[nb][ownerOfCell(c)] = true
			touchers[c][ownerOfCell(nb)] = true
		}
	}
	for c := 0; c < cells; c++ {
		needLock[c] = len(touchers[c]) > 1
	}
	// contributors[c]: the threads whose contribution regions a cell's
	// owner must gather.
	contributors := make([][]int, cells)
	for c := 0; c < cells; c++ {
		for tid := range touchers[c] {
			contributors[c] = append(contributors[c], tid)
		}
		sortInts(contributors[c])
	}

	const dt = 1e-3

	w.Body = func(t *svm.Thread) {
		st := &waterState{FlushStage: -1, EnergyStage: -1}
		t.Setup(st)
		tid := t.ID()
		cLo, cHi := splitRange(cells, T, tid)
		mLo, mHi := cellLo[cLo], cellLo[cHi]
		own := mHi - mLo

		pos := make([]float64, 3*n)
		acc := make([]float64, 3*n)
		buf := make([]float64, 3*n)

		srcPos := func(step int) int {
			if step%2 == 0 {
				return posA
			}
			return posB
		}
		dstPos := func(step int) int { return srcPos(step + 1) }
		srcVel := func(step int) int {
			if step%2 == 0 {
				return velA
			}
			return velB
		}
		dstVel := func(step int) int { return srcVel(step + 1) }

		initStage := func() {
			rng := newPrng(uint64(tid + 77))
			for i := mLo; i < mHi; i++ {
				x, y, z := coord(cellOf[i])
				buf[3*(i-mLo)] = float64(x) + rng.float()
				buf[3*(i-mLo)+1] = float64(y) + rng.float()
				buf[3*(i-mLo)+2] = float64(z) + rng.float()
			}
			writeMols(t, posA, mLo, mHi, buf[:3*own])
			for i := 0; i < 3*own; i++ {
				buf[i] = 0
			}
			writeMols(t, velA, mLo, mHi, buf[:3*own])
			// Zero the whole contribution region once; afterwards every
			// step overwrites exactly the ranges the gathers read.
			zero := make([]float64, 3*n)
			writeMols(t, accBase[tid], 0, n, zero)
		}

		// computePairs accumulates the cell-pair interactions into the
		// host-local buffer. Pure and deterministic, so a replay resuming
		// mid-flush regenerates the contributions by re-running it.
		computePairs := func(step int) {
			needed := map[int]bool{}
			for c := cLo; c < cHi; c++ {
				needed[c] = true
				for _, nb := range partners[c] {
					needed[nb] = true
				}
			}
			// Read in sorted cell order: map iteration order would vary
			// between runs and perturb virtual time (fetch interleaving),
			// breaking cross-run determinism.
			var cs []int
			for c := range needed {
				cs = append(cs, c)
			}
			sortInts(cs)
			for _, c := range cs {
				lo, hi := cellLo[c], cellLo[c+1]
				if hi > lo {
					readMols(t, srcPos(step), lo, hi, pos[3*lo:3*hi])
				}
			}
			for i := range acc {
				acc[i] = 0
			}
			pairs := 0
			for c := cLo; c < cHi; c++ {
				for i := cellLo[c]; i < cellLo[c+1]; i++ {
					for j := i + 1; j < cellLo[c+1]; j++ {
						pairs += accumulatePair(pos, acc, i, j)
					}
				}
				for _, nb := range partners[c] {
					for i := cellLo[c]; i < cellLo[c+1]; i++ {
						for j := cellLo[nb]; j < cellLo[nb+1]; j++ {
							pairs += accumulatePair(pos, acc, i, j)
						}
					}
				}
			}
			t.Compute(int64(pairs) * 12 * costFlop)
		}

		// contributeStage computes the cell-pair interactions and writes
		// every contribution this thread produced into its own shared
		// region — all home-page writes.
		contributeStage := func(step int) {
			computePairs(step)
			touched := touchedCells(cLo, cHi, partners)
			for _, c := range touched {
				lo, hi := cellLo[c], cellLo[c+1]
				if hi > lo {
					writeMols(t, accBase[tid], lo, hi, acc[3*lo:3*hi])
				}
			}
		}

		// gatherStage: each cell's owner sums the contributors' regions
		// into the shared force array (own home pages), under the cell's
		// lock — the paper's 518 locks with low contention. Overwrites are
		// idempotent, so replay is safe; FlushM still tracks progress so a
		// replay skips completed cells' releases.
		gatherStage := func(stage int) {
			if st.FlushStage != stage {
				st.FlushM, st.FlushStage = 0, stage
			}
			part := make([]float64, 3*n)
			for k := st.FlushM; k < cHi-cLo; k++ {
				c := cLo + k
				lo, hi := cellLo[c], cellLo[c+1]
				if hi == lo {
					st.FlushM = k + 1
					continue
				}
				t.Acquire(c)
				for i := range buf[:3*(hi-lo)] {
					buf[i] = 0
				}
				for _, ct := range contributors[c] {
					readMols(t, accBase[ct], lo, hi, part[:3*(hi-lo)])
					for i := 0; i < 3*(hi-lo); i++ {
						buf[i] += part[i]
					}
				}
				writeMols(t, frc, lo, hi, buf[:3*(hi-lo)])
				t.Compute(int64((hi-lo)*len(contributors[c])) * 3 * costFlop)
				st.FlushM = k + 1
				t.Release(c)
			}
		}

		// integrateStage is the predictor-corrector step: it reads and
		// rewrites the molecules' full records (positions, velocities, and
		// their derivative vectors) into the alternate buffers — the bulk
		// of water's home-page diff volume — then folds kinetic energy
		// into the global sum under the energy lock, exactly once.
		integrateStage := func(stage, step int) {
			D := waterMolDoubles
			posR := make([]float64, D*own)
			velR := make([]float64, D*own)
			readMolsFull(t, srcPos(step), mLo, mHi, posR)
			readMolsFull(t, srcVel(step), mLo, mHi, velR)
			readMols(t, frc, mLo, mHi, acc[:3*own])
			kin := 0.0
			for i := 0; i < own; i++ {
				for k := 0; k < 3; k++ {
					velR[i*D+k] += acc[3*i+k] * dt
					posR[i*D+k] += velR[i*D+k] * dt
					kin += velR[i*D+k] * velR[i*D+k]
				}
				// Higher-order derivative updates (deterministic damping
				// toward the base vectors, as the corrector would).
				for j := 3; j < D; j++ {
					posR[i*D+j] = 0.9*posR[i*D+j] + 0.1*posR[i*D+j%3]
					velR[i*D+j] = 0.9*velR[i*D+j] + 0.1*velR[i*D+j%3]
				}
			}
			t.Compute(int64(own) * int64(4*D) * costFlop)
			writeMolsFull(t, dstPos(step), mLo, mHi, posR)
			writeMolsFull(t, dstVel(step), mLo, mHi, velR)
			if st.EnergyStage != stage {
				t.Acquire(energyLock)
				e := t.ReadF64(energyAddr)
				t.WriteF64(energyAddr, e+kin)
				st.EnergyStage = stage
				t.Release(energyLock)
			}
		}

		verifyStage := func(step int) {
			if tid != 0 {
				return
			}
			readMols(t, frc, 0, n, buf)
			var sx, sy, sz float64
			for m := 0; m < n; m++ {
				sx += buf[3*m]
				sy += buf[3*m+1]
				sz += buf[3*m+2]
			}
			if mag := math.Abs(sx) + math.Abs(sy) + math.Abs(sz); mag > 1e-6*float64(n) {
				w.failf("step %d: net force %g", step, mag)
			}
		}

		total := 1 + 4*steps
		runStages(t, &st.Phase, &st.Arrived, total, func(s int) {
			if s == 0 {
				initStage()
				return
			}
			step, sub := (s-1)/4, (s-1)%4
			switch sub {
			case 0:
				contributeStage(step)
			case 1:
				gatherStage(s)
			case 2:
				integrateStage(s, step)
			case 3:
				verifyStage(step)
			}
		})
	}
	return w
}

// accumulatePair adds the antisymmetric pair force to both molecules and
// reports 1 (for flop accounting).
func accumulatePair(pos, acc []float64, i, j int) int {
	fx, fy, fz := pairForce(pos, i, j)
	acc[3*i] += fx
	acc[3*i+1] += fy
	acc[3*i+2] += fz
	acc[3*j] -= fx
	acc[3*j+1] -= fy
	acc[3*j+2] -= fz
	return 1
}

// touchedCells returns the deterministic flush order: own cells first,
// then the forward neighbors this thread contributed to.
func touchedCells(cLo, cHi int, partners [][]int) []int {
	seen := map[int]bool{}
	var out []int
	for c := cLo; c < cHi; c++ {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	for c := cLo; c < cHi; c++ {
		for _, nb := range partners[c] {
			if !seen[nb] {
				seen[nb] = true
				out = append(out, nb)
			}
		}
	}
	return out
}

package apps

import (
	"fmt"
	"math"

	"ftsvm/internal/svm"
)

// oceanState is the resumable state of an Ocean thread: stage progress
// (red/black half-sweeps are deterministic overwrites) plus the residual
// carried from the red half-sweep to the black one — a replayed black
// stage must not see a zeroed carry.
type oceanState struct {
	Phase   int
	Arrived bool
	Pending float64 // residual accumulated in the last red half-sweep
}

// Ocean is a SPLASH-2-Ocean-style workload: red-black Gauss-Seidel
// relaxation of a 2D grid partitioned into horizontal bands. Its sharing
// pattern — nearest-neighbour: each sweep reads only the two boundary
// rows of the adjacent bands — is unlike any of the paper's six
// applications and exercises the protocols' handling of stable,
// fine-grained producer-consumer pages. (Not part of the paper's figures;
// included with the §6 broader-domain extensions.)
//
// The grid solves a Dirichlet problem (fixed boundary, zero interior
// source); the verification checks the solver's residual shrinks
// monotonically toward the harmonic solution.
func Ocean(s Shape, n, sweeps int) *Workload {
	T := s.Threads()
	l := newLayout(s.PageSize)
	rowBytes := n * 8
	grid := l.alloc(n * n * 8)
	residAddr := l.alloc(8 * (sweeps + 1))

	homeOf := make([]int, l.pages())
	for tid := 0; tid < T; tid++ {
		lo, hi := splitRange(n, T, tid)
		for a := grid + lo*rowBytes; a < grid+hi*rowBytes; a += s.PageSize {
			homeOf[l.pageOf(a)] = s.NodeOfThread(tid)
		}
	}

	w := &Workload{
		Name:  fmt.Sprintf("Ocean-%d", n),
		Pages: l.pages(),
		Locks: 1,
		HomeAssign: func(p int) int {
			if p < len(homeOf) {
				return homeOf[p]
			}
			return 0
		},
	}

	// Boundary condition: top edge held at 100, the others at 0.
	boundary := func(i, j int) float64 {
		if i == 0 {
			return 100
		}
		return 0
	}

	w.Body = func(t *svm.Thread) {
		st := &oceanState{}
		t.Setup(st)
		tid := t.ID()
		lo, hi := splitRange(n, T, tid)
		rows := make([][]float64, 3) // sliding window: above, current, below
		for i := range rows {
			rows[i] = make([]float64, n)
		}
		out := make([]float64, n)

		readRow := func(i int, dst []float64) { t.ReadF64s(grid+i*rowBytes, dst) }
		writeRow := func(i int, src []float64) { t.WriteF64s(grid+i*rowBytes, src) }

		initStage := func() {
			for i := lo; i < hi; i++ {
				for j := 0; j < n; j++ {
					out[j] = boundary(i, j)
				}
				writeRow(i, out)
			}
		}

		// sweepStage performs one red-black half-sweep over the band:
		// interior cells of the given parity become the average of their
		// four neighbours. In red-black order a cell's neighbours all have
		// the opposite parity and are untouched during this half-sweep, so
		// rows may be read fresh per iteration. Reading rows lo-1 and hi
		// touches the adjacent bands' boundary rows — the nearest-
		// neighbour communication.
		sweepStage := func(parity int) float64 {
			localResid := 0.0
			above, cur, below := rows[0], rows[1], rows[2]
			for i := maxInt(lo, 1); i < hi && i < n-1; i++ {
				readRow(i-1, above)
				readRow(i, cur)
				readRow(i+1, below)
				copy(out, cur)
				for j := 1 + (i+parity)%2; j < n-1; j += 2 {
					v := 0.25 * (above[j] + below[j] + cur[j-1] + cur[j+1])
					localResid += math.Abs(v - cur[j])
					out[j] = v
				}
				writeRow(i, out)
				t.Compute(int64(n) * 3 * costFlop)
			}
			return localResid
		}

		total := 1 + 2*sweeps + 1
		runStages(t, &st.Phase, &st.Arrived, total, func(sg int) {
			switch {
			case sg == 0:
				initStage()
			case sg == total-1:
				if tid != 0 {
					return
				}
				// Residuals must decrease (Gauss-Seidel on a Laplace
				// problem converges monotonically after the first sweep).
				prev := math.Inf(1)
				for k := 1; k < sweeps; k++ {
					r := t.ReadF64(residAddr + 8*k)
					if k > 1 && r > prev*1.0001 {
						w.failf("residual rose at sweep %d: %g -> %g", k, prev, r)
						return
					}
					prev = r
				}
				if prev <= 0 && sweeps > 1 {
					w.failf("solver made no progress")
				}
			default:
				parity := (sg - 1) % 2
				r := sweepStage(parity)
				if parity == 0 {
					st.Pending = r
				} else if tid == 0 {
					// Thread 0 records its own band's residual per sweep;
					// one band's trajectory suffices for the monotonic-
					// convergence check.
					sweep := (sg - 1) / 2
					t.WriteF64(residAddr+8*sweep, st.Pending+r)
				}
			}
		})
	}
	return w
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package apps

import (
	"math"
	"testing"

	"ftsvm/internal/model"
	"ftsvm/internal/svm"
)

// runWorkload executes a workload on a simulated cluster and fails the
// test on any simulation or verification error.
func runWorkload(t *testing.T, mode svm.Mode, s Shape, w *Workload) *svm.Cluster {
	t.Helper()
	cfg := model.Default()
	cfg.Nodes = s.Nodes
	cfg.ThreadsPerNode = s.ThreadsPerNode
	cfg.PageSize = s.PageSize
	cl, err := svm.New(svm.Options{
		Config:     cfg,
		Mode:       mode,
		Pages:      w.Pages,
		Locks:      w.Locks,
		HomeAssign: w.HomeAssign,
		Body:       w.Body,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if !cl.Finished() {
		t.Fatal("threads did not finish")
	}
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	return cl
}

func testShape() Shape { return Shape{Nodes: 4, ThreadsPerNode: 1, PageSize: 4096} }

func TestFFT1DKernel(t *testing.T) {
	// DFT of a pure exponential e^{2*pi*i*p*j/m} has a single spike at p.
	const m = 16
	const p = 5
	buf := make([]float64, 2*m)
	for j := 0; j < m; j++ {
		ang := 2 * math.Pi * p * float64(j) / m
		buf[2*j], buf[2*j+1] = math.Cos(ang), math.Sin(ang)
	}
	fft1d(buf, m)
	for k := 0; k < m; k++ {
		want := 0.0
		if k == p {
			want = m
		}
		if math.Abs(buf[2*k]-want) > 1e-9 || math.Abs(buf[2*k+1]) > 1e-9 {
			t.Fatalf("bin %d = (%g, %g), want (%g, 0)", k, buf[2*k], buf[2*k+1], want)
		}
	}
}

func TestFFTWorkload(t *testing.T) {
	for _, mode := range []svm.Mode{svm.ModeBase, svm.ModeFT} {
		t.Run(mode.String(), func(t *testing.T) {
			runWorkload(t, mode, testShape(), FFT(testShape(), 1024))
		})
	}
}

func TestFFTWorkloadSMP(t *testing.T) {
	s := Shape{Nodes: 4, ThreadsPerNode: 2, PageSize: 4096}
	runWorkload(t, svm.ModeFT, s, FFT(s, 1024))
}

func TestLUKernels(t *testing.T) {
	// Factor a small block with lu0 and verify L*U reconstructs it.
	const b = 8
	orig := make([]float64, b*b)
	for i := 0; i < b; i++ {
		for j := 0; j < b; j++ {
			v := 0.3 * math.Sin(float64(5*i+j))
			if i == j {
				v += b + 2
			}
			orig[i*b+j] = v
		}
	}
	a := append([]float64(nil), orig...)
	lu0(a, b)
	for i := 0; i < b; i++ {
		for j := 0; j < b; j++ {
			sum := 0.0
			kmax := min(i, j)
			for k := 0; k < kmax; k++ {
				sum += a[i*b+k] * a[k*b+j]
			}
			if i <= j {
				sum += a[i*b+j]
			} else {
				sum += a[i*b+j] * a[j*b+j]
			}
			if math.Abs(sum-orig[i*b+j]) > 1e-9 {
				t.Fatalf("L*U[%d][%d] = %g, want %g", i, j, sum, orig[i*b+j])
			}
		}
	}
}

func TestLUWorkload(t *testing.T) {
	for _, mode := range []svm.Mode{svm.ModeBase, svm.ModeFT} {
		t.Run(mode.String(), func(t *testing.T) {
			runWorkload(t, mode, testShape(), LU(testShape(), 64, 8))
		})
	}
}

func TestLUWorkloadSMP(t *testing.T) {
	s := Shape{Nodes: 4, ThreadsPerNode: 2, PageSize: 4096}
	runWorkload(t, svm.ModeFT, s, LU(s, 64, 8))
}

func TestWaterNsqWorkload(t *testing.T) {
	for _, mode := range []svm.Mode{svm.ModeBase, svm.ModeFT} {
		t.Run(mode.String(), func(t *testing.T) {
			runWorkload(t, mode, testShape(), WaterNsq(testShape(), 64, 2))
		})
	}
}

func TestWaterNsqWorkloadSMP(t *testing.T) {
	s := Shape{Nodes: 4, ThreadsPerNode: 2, PageSize: 4096}
	runWorkload(t, svm.ModeFT, s, WaterNsq(s, 64, 2))
}

func TestWaterSpWorkload(t *testing.T) {
	for _, mode := range []svm.Mode{svm.ModeBase, svm.ModeFT} {
		t.Run(mode.String(), func(t *testing.T) {
			runWorkload(t, mode, testShape(), WaterSp(testShape(), 64, 2))
		})
	}
}

func TestWaterSpWorkloadSMP(t *testing.T) {
	s := Shape{Nodes: 4, ThreadsPerNode: 2, PageSize: 4096}
	runWorkload(t, svm.ModeFT, s, WaterSp(s, 64, 2))
}

func TestRadixWorkload(t *testing.T) {
	for _, mode := range []svm.Mode{svm.ModeBase, svm.ModeFT} {
		t.Run(mode.String(), func(t *testing.T) {
			runWorkload(t, mode, testShape(), Radix(testShape(), 4096))
		})
	}
}

func TestRadixWorkloadSMP(t *testing.T) {
	s := Shape{Nodes: 4, ThreadsPerNode: 2, PageSize: 4096}
	runWorkload(t, svm.ModeFT, s, Radix(s, 4096))
}

func TestVolrendWorkload(t *testing.T) {
	for _, mode := range []svm.Mode{svm.ModeBase, svm.ModeFT} {
		t.Run(mode.String(), func(t *testing.T) {
			runWorkload(t, mode, testShape(), Volrend(testShape(), 16, 32))
		})
	}
}

func TestVolrendWorkloadSMP(t *testing.T) {
	s := Shape{Nodes: 4, ThreadsPerNode: 2, PageSize: 4096}
	runWorkload(t, svm.ModeFT, s, Volrend(s, 16, 32))
}

// TestWaterNsqPairForceAntisymmetric is the Newton's-third-law property of
// the force kernel.
func TestWaterNsqPairForceAntisymmetric(t *testing.T) {
	pos := []float64{0, 0, 0, 1, 2, 3}
	fx, fy, fz := pairForce(pos, 0, 1)
	gx, gy, gz := pairForce(pos, 1, 0)
	if fx != -gx || fy != -gy || fz != -gz {
		t.Fatalf("force not antisymmetric: (%g,%g,%g) vs (%g,%g,%g)", fx, fy, fz, gx, gy, gz)
	}
}

func TestKVStoreWorkload(t *testing.T) {
	for _, mode := range []svm.Mode{svm.ModeBase, svm.ModeFT} {
		t.Run(mode.String(), func(t *testing.T) {
			runWorkload(t, mode, testShape(), KVStore(testShape(), 16, 32, 50))
		})
	}
}

func TestKVStoreWorkloadSMP(t *testing.T) {
	s := Shape{Nodes: 4, ThreadsPerNode: 2, PageSize: 4096}
	runWorkload(t, svm.ModeFT, s, KVStore(s, 16, 32, 30))
}

func TestOceanWorkload(t *testing.T) {
	for _, mode := range []svm.Mode{svm.ModeBase, svm.ModeFT} {
		t.Run(mode.String(), func(t *testing.T) {
			runWorkload(t, mode, testShape(), Ocean(testShape(), 64, 4))
		})
	}
}

func TestOceanWorkloadSMP(t *testing.T) {
	s := Shape{Nodes: 4, ThreadsPerNode: 2, PageSize: 4096}
	runWorkload(t, svm.ModeFT, s, Ocean(s, 64, 4))
}

// TestOceanConverges: with enough sweeps the interior approaches the
// harmonic solution (top-edge heat diffusing down), so a probe point near
// the hot edge must end up strictly between the two boundary values.
func TestOceanConverges(t *testing.T) {
	s := testShape()
	w := Ocean(s, 32, 40)
	cl := runWorkload(t, svm.ModeFT, s, w)
	probe := cl.PeekU64((1*32 + 16) * 8) // row 1, column 16
	v := math.Float64frombits(probe)
	if !(v > 10 && v < 100) {
		t.Fatalf("probe value %g, want within (10, 100)", v)
	}
}

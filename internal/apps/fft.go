package apps

import (
	"fmt"
	"math"

	"ftsvm/internal/svm"
)

// Shape describes the cluster an application is built for; workloads use
// it to partition data and place page homes (the paper assigns primary
// homes "in a way that maximizes parallelism").
type Shape struct {
	Nodes          int
	ThreadsPerNode int
	PageSize       int
}

// Threads returns the total compute thread count.
func (s Shape) Threads() int { return s.Nodes * s.ThreadsPerNode }

// NodeOfThread maps a thread to its home node.
func (s Shape) NodeOfThread(tid int) int { return tid / s.ThreadsPerNode }

// Modeled CPU costs (ns) for application arithmetic on the paper's 400 MHz
// Pentium-II nodes (a pipelined flop with its operand loads runs several
// cycles at 2.5 ns each; a libm sincos runs ~60 cycles).
const (
	costFlop   = 12
	costIntOp  = 6
	costSinCos = 150
)

// fftState is the resumable state of an FFT thread: pure phase progress.
type fftState struct {
	Phase   int
	Arrived bool
}

// FFT builds the SPLASH-2 FFT workload: a six-step 1D FFT of n complex
// points organized as an m x m matrix (n = m*m), with three all-to-all
// transposes separated by barriers — the communication pattern whose
// home-page diffing dominates the extended protocol's overhead in the
// paper. The input is delta + a complex exponential, so the spectrum has
// a closed form the final phase verifies.
func FFT(s Shape, n int) *Workload {
	m := 1
	for m*m < n {
		m *= 2
	}
	if m*m != n {
		panic(fmt.Sprintf("apps: FFT size %d is not a power of 4", n))
	}
	T := s.Threads()
	l := newLayout(s.PageSize)
	rowBytes := 16 * m
	matA := l.alloc(n * 16) // working matrix
	matB := l.alloc(n * 16) // transpose target

	homeOf := make([]int, l.pages())
	for tid := 0; tid < T; tid++ {
		lo, hi := splitRange(m, T, tid)
		for _, base := range []int{matA, matB} {
			for r := lo; r < hi; r++ {
				for pb := base + r*rowBytes; pb < base+(r+1)*rowBytes; pb += s.PageSize {
					homeOf[l.pageOf(pb)] = s.NodeOfThread(tid)
				}
			}
		}
	}

	const spike = 3 // the exponential's frequency
	w := &Workload{
		Name:  fmt.Sprintf("FFT-%dK", n/1024),
		Pages: l.pages(),
		Locks: 1,
		HomeAssign: func(p int) int {
			if p < len(homeOf) {
				return homeOf[p]
			}
			return 0
		},
	}

	w.Body = func(t *svm.Thread) {
		st := &fftState{}
		t.Setup(st)
		tid := t.ID()
		lo, hi := splitRange(m, T, tid)
		row := make([]float64, 2*m)

		stage := map[int]func(){}
		phase := func(p int, fn func()) { stage[p] = fn }

		// Phase 0: initialize own rows of A with x = delta + exp(2*pi*i*
		// spike*j/n). Matrix layout: A[b][a] = x[a + m*b] (row b).
		phase(0, func() {
			for b := lo; b < hi; b++ {
				for a := 0; a < m; a++ {
					j := a + m*b
					ang := 2 * math.Pi * float64(spike) * float64(j) / float64(n)
					re, im := math.Cos(ang), math.Sin(ang)
					if j == 0 {
						re++
					}
					row[2*a], row[2*a+1] = re, im
				}
				t.WriteF64s(matA+b*rowBytes, row)
				t.Compute(int64(m) * costSinCos)
			}
		})

		// Phase 1: transpose A -> B (B[a][b] = A[b][a]); each thread
		// produces its own rows of B by reading column slices of A from
		// every other thread's rows (the all-to-all).
		phase(1, func() { transpose(t, matA, matB, m, lo, hi, row) })

		// Phase 2: FFT each own row of B (over b), then twiddle by
		// w_n^{a*c}: B[a][c] = G[a][c] * w_n^{ac}.
		phase(2, func() {
			for a := lo; a < hi; a++ {
				t.ReadF64s(matB+a*rowBytes, row)
				fft1d(row, m)
				for c := 0; c < m; c++ {
					ang := -2 * math.Pi * float64(a) * float64(c) / float64(n)
					wr, wi := math.Cos(ang), math.Sin(ang)
					re, im := row[2*c], row[2*c+1]
					row[2*c], row[2*c+1] = re*wr-im*wi, re*wi+im*wr
				}
				t.WriteF64s(matB+a*rowBytes, row)
				t.Compute(int64(5*m)*int64(log2(m))*costFlop + int64(m)*(costSinCos+6*costFlop))
			}
		})

		// Phase 3: transpose B -> A.
		phase(3, func() { transpose(t, matB, matA, m, lo, hi, row) })

		// Phase 4: FFT each own row of A (over a): X'[c][d].
		phase(4, func() {
			for c := lo; c < hi; c++ {
				t.ReadF64s(matA+c*rowBytes, row)
				fft1d(row, m)
				t.WriteF64s(matA+c*rowBytes, row)
				t.Compute(int64(5*m) * int64(log2(m)) * costFlop)
			}
		})

		// Phase 5: final transpose A -> B restoring natural-ish order:
		// B[d][c] = X[c + m*d].
		phase(5, func() { transpose(t, matA, matB, m, lo, hi, row) })

		// Phase 6: thread 0 verifies against the closed form:
		// X[k] = 1 + n*[k == spike].
		phase(6, func() {
			if tid != 0 {
				return
			}
			worst := 0.0
			for d := 0; d < m; d++ {
				t.ReadF64s(matB+d*rowBytes, row)
				for c := 0; c < m; c++ {
					k := c + m*d
					wantRe := 1.0
					if k == spike {
						wantRe += float64(n)
					}
					dr := math.Abs(row[2*c] - wantRe)
					di := math.Abs(row[2*c+1])
					if dr > worst {
						worst = dr
					}
					if di > worst {
						worst = di
					}
				}
			}
			tol := 1e-6 * float64(n)
			if worst > tol {
				w.failf("spectrum error %g exceeds %g", worst, tol)
			}
		})

		runStages(t, &st.Phase, &st.Arrived, len(stage), func(p int) { stage[p]() })
	}
	return w
}

// transpose writes dst rows [lo,hi) from src columns, reading src one
// row-segment at a time (each read of a remote row's slice is the
// all-to-all communication).
func transpose(t *svm.Thread, src, dst, m, lo, hi int, scratch []float64) {
	rowBytes := 16 * m
	cols := hi - lo
	buf := make([]float64, 2*cols*m) // dst rows lo..hi, gathered
	seg := scratch[:2*cols]
	for j := 0; j < m; j++ { // src row j supplies dst column j
		t.ReadF64s(src+j*rowBytes+lo*16, seg)
		for i := 0; i < cols; i++ {
			buf[i*2*m+2*j] = seg[2*i]
			buf[i*2*m+2*j+1] = seg[2*i+1]
		}
		t.Compute(int64(cols) * 2 * costIntOp)
	}
	for i := 0; i < cols; i++ {
		t.WriteF64s(dst+(lo+i)*rowBytes, buf[i*2*m:(i+1)*2*m])
	}
}

// fft1d computes an in-place radix-2 DFT (e^{-2*pi*i*jk/m} convention) of
// the m interleaved complex values in buf.
func fft1d(buf []float64, m int) {
	// Bit-reversal permutation.
	for i, j := 0, 0; i < m; i++ {
		if i < j {
			buf[2*i], buf[2*j] = buf[2*j], buf[2*i]
			buf[2*i+1], buf[2*j+1] = buf[2*j+1], buf[2*i+1]
		}
		mask := m >> 1
		for ; j&mask != 0; mask >>= 1 {
			j &^= mask
		}
		j |= mask
	}
	for size := 2; size <= m; size <<= 1 {
		half := size >> 1
		ang := -2 * math.Pi / float64(size)
		wr, wi := math.Cos(ang), math.Sin(ang)
		for start := 0; start < m; start += size {
			cr, ci := 1.0, 0.0
			for k := 0; k < half; k++ {
				i0, i1 := start+k, start+k+half
				xr, xi := buf[2*i1]*cr-buf[2*i1+1]*ci, buf[2*i1]*ci+buf[2*i1+1]*cr
				buf[2*i1], buf[2*i1+1] = buf[2*i0]-xr, buf[2*i0+1]-xi
				buf[2*i0], buf[2*i0+1] = buf[2*i0]+xr, buf[2*i0+1]+xi
				cr, ci = cr*wr-ci*wi, cr*wi+ci*wr
			}
		}
	}
}

func log2(m int) int {
	k := 0
	for 1<<k < m {
		k++
	}
	return k
}

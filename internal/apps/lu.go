package apps

import (
	"fmt"
	"math"

	"ftsvm/internal/svm"
)

// luState is the resumable state of an LU thread: linear stage progress
// (init, then diagonal/perimeter/interior per step, then verification).
type luState struct {
	Phase   int
	Arrived bool
}

// LU builds the SPLASH-2 LU-contiguous workload: blocked right-looking LU
// factorization (no pivoting) of an n x n matrix with b x b blocks
// allocated contiguously per owner, 2D-scattered block ownership, and
// barriers between the diagonal, perimeter, and interior stages. Like FFT
// it is barrier-only; its data partitioning makes most updates land on
// home pages, which is why the extended protocol's home-page diffing hurts
// it most (Fig. 9).
func LU(s Shape, n, b int) *Workload {
	if n%b != 0 {
		panic("apps: LU block size must divide n")
	}
	N := n / b // blocks per side
	T := s.Threads()
	pr := 1
	for d := int(math.Sqrt(float64(T))); d >= 1; d-- {
		if T%d == 0 {
			pr = d
			break
		}
	}
	pc := T / pr

	ownerOf := func(I, J int) int { return (I%pr)*pc + J%pc }

	l := newLayout(s.PageSize)
	blockBytes := b * b * 8
	// Contiguous allocation: all blocks of one owner are adjacent.
	blockAddr := make([][]int, N)
	for I := range blockAddr {
		blockAddr[I] = make([]int, N)
	}
	homeOf := []int{}
	for tid := 0; tid < T; tid++ {
		var mine [][2]int
		for I := 0; I < N; I++ {
			for J := 0; J < N; J++ {
				if ownerOf(I, J) == tid {
					mine = append(mine, [2]int{I, J})
				}
			}
		}
		base := l.alloc(len(mine) * blockBytes)
		for k, ij := range mine {
			blockAddr[ij[0]][ij[1]] = base + k*blockBytes
		}
		for p := l.pageOf(base); p < l.pages(); p++ {
			for len(homeOf) <= p {
				homeOf = append(homeOf, s.NodeOfThread(tid))
			}
		}
	}

	w := &Workload{
		Name:  fmt.Sprintf("LU-%d", n),
		Pages: l.pages(),
		Locks: 1,
		HomeAssign: func(p int) int {
			if p < len(homeOf) {
				return homeOf[p]
			}
			return 0
		},
	}

	// The input matrix entry (analytic, diagonally dominant so the
	// factorization is stable without pivoting).
	a0 := func(i, j int) float64 {
		if i == j {
			return float64(n) + 4
		}
		return 1.0 + 0.5*math.Sin(float64(3*i+7*j))
	}

	w.Body = func(t *svm.Thread) {
		st := &luState{}
		t.Setup(st)
		tid := t.ID()
		blk := make([]float64, b*b)
		bk := make([]float64, b*b)
		bj := make([]float64, b*b)

		readBlock := func(I, J int, dst []float64) { t.ReadF64s(blockAddr[I][J], dst) }
		writeBlock := func(I, J int, src []float64) { t.WriteF64s(blockAddr[I][J], src) }

		initStage := func() {
			for I := 0; I < N; I++ {
				for J := 0; J < N; J++ {
					if ownerOf(I, J) != tid {
						continue
					}
					for r := 0; r < b; r++ {
						for c := 0; c < b; c++ {
							blk[r*b+c] = a0(I*b+r, J*b+c)
						}
					}
					writeBlock(I, J, blk)
				}
			}
		}

		diagStage := func(k int) {
			if ownerOf(k, k) != tid {
				return
			}
			readBlock(k, k, blk)
			lu0(blk, b)
			writeBlock(k, k, blk)
			t.Compute(int64(b*b*b) * 2 / 3 * costFlop)
		}

		perimStage := func(k int) {
			owned := false
			for J := k + 1; J < N && !owned; J++ {
				owned = ownerOf(k, J) == tid
			}
			for I := k + 1; I < N && !owned; I++ {
				owned = ownerOf(I, k) == tid
			}
			if owned {
				readBlock(k, k, bk)
			}
			for J := k + 1; J < N; J++ {
				if ownerOf(k, J) != tid {
					continue
				}
				readBlock(k, J, blk)
				bdivL(blk, bk, b)
				writeBlock(k, J, blk)
				t.Compute(int64(b*b*b) * costFlop)
			}
			for I := k + 1; I < N; I++ {
				if ownerOf(I, k) != tid {
					continue
				}
				readBlock(I, k, blk)
				bmodU(blk, bk, b)
				writeBlock(I, k, blk)
				t.Compute(int64(b*b*b) * costFlop)
			}
		}

		interiorStage := func(k int) {
			for I := k + 1; I < N; I++ {
				first := true
				for J := k + 1; J < N; J++ {
					if ownerOf(I, J) != tid {
						continue
					}
					if first {
						readBlock(I, k, bk)
						first = false
					}
					readBlock(k, J, bj)
					readBlock(I, J, blk)
					matmulSub(blk, bk, bj, b)
					writeBlock(I, J, blk)
					t.Compute(int64(2*b*b*b) * costFlop)
				}
			}
		}

		verifyStage := func() {
			if tid != 0 {
				return
			}
			rng := newPrng(12345)
			samples := 64
			if n <= 64 {
				samples = n * n // exhaustive only for test-size matrices
			}
			worst := 0.0
			rowI := make([]float64, n)
			colJ := make([]float64, n)
			for sIdx := 0; sIdx < samples; sIdx++ {
				var i, j int
				if n <= 128 {
					i, j = sIdx/n, sIdx%n
				} else {
					i, j = int(rng.next()%uint64(n)), int(rng.next()%uint64(n))
				}
				readRowSeg(t, blockAddr, i, n, b, rowI)
				readColSeg(t, blockAddr, j, n, b, colJ)
				sum := 0.0
				kmax := i
				if j < i {
					kmax = j
				}
				for k := 0; k < kmax; k++ {
					sum += rowI[k] * colJ[k]
				}
				if i <= j {
					sum += colJ[i] // L[i][i] = 1, U[i][j]
				} else {
					sum += rowI[j] * colJ[j] // L[i][j]*U[j][j]
				}
				if d := math.Abs(sum - a0(i, j)); d > worst {
					worst = d
				}
			}
			tol := 1e-7 * float64(n)
			if worst > tol {
				w.failf("residual %g exceeds %g", worst, tol)
			}
		}

		total := 2 + 3*N // init + 3 stages per step + verify
		runStages(t, &st.Phase, &st.Arrived, total, func(s int) {
			switch {
			case s == 0:
				initStage()
			case s == total-1:
				verifyStage()
			default:
				k, sub := (s-1)/3, (s-1)%3
				switch sub {
				case 0:
					diagStage(k)
				case 1:
					perimStage(k)
				case 2:
					interiorStage(k)
				}
			}
		})
	}
	return w
}

// readRowSeg gathers row i of the blocked matrix into dst.
func readRowSeg(t *svm.Thread, blockAddr [][]int, i, n, b int, dst []float64) {
	I, r := i/b, i%b
	for J := 0; J < n/b; J++ {
		t.ReadF64s(blockAddr[I][J]+r*b*8, dst[J*b:(J+1)*b])
	}
}

// readColSeg gathers column j of the blocked matrix into dst.
func readColSeg(t *svm.Thread, blockAddr [][]int, j, n, b int, dst []float64) {
	J, c := j/b, j%b
	buf := make([]float64, b*b)
	for I := 0; I < n/b; I++ {
		t.ReadF64s(blockAddr[I][J], buf)
		for r := 0; r < b; r++ {
			dst[I*b+r] = buf[r*b+c]
		}
	}
}

// lu0 factors a b x b block in place (unit lower L below the diagonal, U
// on and above).
func lu0(a []float64, b int) {
	for k := 0; k < b; k++ {
		piv := a[k*b+k]
		for i := k + 1; i < b; i++ {
			a[i*b+k] /= piv
			f := a[i*b+k]
			for j := k + 1; j < b; j++ {
				a[i*b+j] -= f * a[k*b+j]
			}
		}
	}
}

// bdivL solves L*X = A in place for a block right of the diagonal (L is
// the unit lower triangle of diag).
func bdivL(a, diag []float64, b int) {
	for r := 1; r < b; r++ {
		for s := 0; s < r; s++ {
			f := diag[r*b+s]
			for c := 0; c < b; c++ {
				a[r*b+c] -= f * a[s*b+c]
			}
		}
	}
}

// bmodU solves X*U = A in place for a block below the diagonal (U is the
// upper triangle of diag).
func bmodU(a, diag []float64, b int) {
	for c := 0; c < b; c++ {
		for s := 0; s < c; s++ {
			f := diag[s*b+c]
			for r := 0; r < b; r++ {
				a[r*b+c] -= a[r*b+s] * f
			}
		}
		inv := 1 / diag[c*b+c]
		for r := 0; r < b; r++ {
			a[r*b+c] *= inv
		}
	}
}

// matmulSub computes a -= l * u for b x b blocks.
func matmulSub(a, l, u []float64, b int) {
	for r := 0; r < b; r++ {
		for k := 0; k < b; k++ {
			f := l[r*b+k]
			if f == 0 {
				continue
			}
			for c := 0; c < b; c++ {
				a[r*b+c] -= f * u[k*b+c]
			}
		}
	}
}

package apps

import (
	"fmt"
	"math"

	"ftsvm/internal/svm"
)

// waterState is the resumable state of a Water thread. FlushM is advanced
// before each per-molecule lock release so force accumulation replays
// exactly once (FlushStage ties it to the stage it belongs to); the
// physics phases write double-buffered arrays so their replays are
// idempotent overwrites; EnergyStage makes the global energy
// read-modify-write exactly-once.
type waterState struct {
	Phase   int
	Arrived bool
	// FlushM is the next index (in this thread's flush order) whose force
	// contribution has not yet been committed, valid while FlushStage
	// equals the current stage.
	FlushM      int
	FlushStage  int
	EnergyStage int
}

// WaterNsq builds the Water-Nsquared workload: n molecules, all-pairs
// (half-shell) short-range interactions, per-molecule locks guarding
// force accumulation (n + 9 locks, matching the paper's 4105 for 4096
// molecules), and a small number of barriers per timestep. Its very high
// lock/release frequency makes lock wait and checkpointing the dominant
// extended-protocol overheads in the paper.
func WaterNsq(s Shape, n, steps int) *Workload {
	T := s.Threads()
	l := newLayout(s.PageSize)
	// SPLASH-2 water keeps, per molecule, positions/velocities/forces plus
	// higher-order derivative vectors (~18 doubles); the record stride
	// determines how many molecules share a page and therefore how well
	// per-owner page homing resolves.
	const molBytes = 18 * 8
	// Double-buffered positions and velocities; shared force array; one
	// per-thread accumulation region (private by convention, but in
	// shared memory so it is replicated and recoverable, like the paper's
	// per-process arrays).
	posA := l.alloc(n * molBytes)
	posB := l.alloc(n * molBytes)
	velA := l.alloc(n * molBytes)
	velB := l.alloc(n * molBytes)
	frc := l.alloc(n * molBytes)
	accBase := make([]int, T)
	for i := range accBase {
		accBase[i] = l.alloc(n * molBytes)
	}
	energyAddr := l.alloc(8)

	homeOf := make([]int, l.pages())
	for tid := 0; tid < T; tid++ {
		lo, hi := splitRange(n, T, tid)
		for _, base := range []int{posA, posB, velA, velB, frc} {
			for a := base + lo*molBytes; a < base+hi*molBytes; a += s.PageSize {
				homeOf[l.pageOf(a)] = s.NodeOfThread(tid)
			}
		}
		for a := accBase[tid]; a < accBase[tid]+n*molBytes; a += s.PageSize {
			homeOf[l.pageOf(a)] = s.NodeOfThread(tid)
		}
	}

	w := &Workload{
		Name:  fmt.Sprintf("WaterNsq-%d", n),
		Pages: l.pages(),
		Locks: n + 9, // per-molecule locks + synchronization variables
		HomeAssign: func(p int) int {
			if p < len(homeOf) {
				return homeOf[p]
			}
			return 0
		},
	}
	energyLock := n // first of the 9 extra locks

	const dt = 1e-3

	w.Body = func(t *svm.Thread) {
		st := &waterState{FlushStage: -1, EnergyStage: -1}
		t.Setup(st)
		tid := t.ID()
		lo, hi := splitRange(n, T, tid)
		own := hi - lo

		pos := make([]float64, 3*n)
		acc := make([]float64, 3*n)
		buf := make([]float64, 3*n)

		srcPos := func(step int) int {
			if step%2 == 0 {
				return posA
			}
			return posB
		}
		dstPos := func(step int) int { return srcPos(step + 1) }
		srcVel := func(step int) int {
			if step%2 == 0 {
				return velA
			}
			return velB
		}
		dstVel := func(step int) int { return srcVel(step + 1) }

		initStage := func() {
			rng := newPrng(uint64(tid + 1))
			for i := lo; i < hi; i++ {
				buf[3*(i-lo)] = float64(i%16) + 0.3*rng.float()
				buf[3*(i-lo)+1] = float64((i/16)%16) + 0.3*rng.float()
				buf[3*(i-lo)+2] = float64(i/256) + 0.3*rng.float()
			}
			writeMols(t, posA, lo, hi, buf[:3*own])
			for i := 0; i < 3*own; i++ {
				buf[i] = 0
			}
			writeMols(t, velA, lo, hi, buf[:3*own])
		}

		zeroStage := func() {
			for i := range buf[:3*own] {
				buf[i] = 0
			}
			writeMols(t, frc, lo, hi, buf[:3*own])
			zero := make([]float64, 3*n)
			writeMols(t, accBase[tid], 0, n, zero)
		}

		// interactStage computes the half-shell pair forces into the
		// private shared region, then flushes them into the shared force
		// array under per-molecule locks. Re-entrant: a replay resuming
		// mid-flush reloads the accumulated contributions from the shared
		// region (they were committed by the first flush release).
		interactStage := func(stage, step int) {
			if st.FlushStage != stage {
				st.FlushM, st.FlushStage = 0, stage
			}
			if st.FlushM == 0 {
				readMols(t, srcPos(step), 0, n, pos)
				for i := range acc {
					acc[i] = 0
				}
				half := n / 2
				pairs := 0
				for i := lo; i < hi; i++ {
					for d := 1; d <= half; d++ {
						if d == half && n%2 == 0 && i >= half {
							continue // avoid double-counting opposite pairs
						}
						j := (i + d) % n
						fx, fy, fz := pairForce(pos, i, j)
						acc[3*i] += fx
						acc[3*i+1] += fy
						acc[3*i+2] += fz
						acc[3*j] -= fx
						acc[3*j+1] -= fy
						acc[3*j+2] -= fz
						pairs++
					}
				}
				t.Compute(int64(pairs) * 12 * costFlop)
				writeMols(t, accBase[tid], 0, n, acc)
			} else {
				readMols(t, accBase[tid], 0, n, acc)
			}
			for k := st.FlushM; k < n; k++ {
				m := (lo + k) % n
				ax, ay, az := acc[3*m], acc[3*m+1], acc[3*m+2]
				if ax == 0 && ay == 0 && az == 0 {
					st.FlushM = k + 1
					continue
				}
				t.Acquire(m)
				fx := t.ReadF64(frc + m*molBytes)
				fy := t.ReadF64(frc + m*molBytes + 8)
				fz := t.ReadF64(frc + m*molBytes + 16)
				t.WriteF64(frc+m*molBytes, fx+ax)
				t.WriteF64(frc+m*molBytes+8, fy+ay)
				t.WriteF64(frc+m*molBytes+16, fz+az)
				t.Compute(6 * costFlop)
				st.FlushM = k + 1
				t.Release(m)
			}
		}

		// integrateStage is the predictor-corrector step: it reads and
		// rewrites the molecules' full records (positions, velocities, and
		// their derivative vectors) into the alternate buffers — the bulk
		// of water's home-page diff volume — then folds kinetic energy
		// into the global sum under the energy lock, exactly once.
		integrateStage := func(stage, step int) {
			D := waterMolDoubles
			posR := make([]float64, D*own)
			velR := make([]float64, D*own)
			readMolsFull(t, srcPos(step), lo, hi, posR)
			readMolsFull(t, srcVel(step), lo, hi, velR)
			readMols(t, frc, lo, hi, acc[:3*own])
			kin := 0.0
			for i := 0; i < own; i++ {
				for k := 0; k < 3; k++ {
					velR[i*D+k] += acc[3*i+k] * dt
					posR[i*D+k] += velR[i*D+k] * dt
					kin += velR[i*D+k] * velR[i*D+k]
				}
				// Higher-order derivative updates (deterministic damping
				// toward the base vectors, as the corrector would).
				for j := 3; j < D; j++ {
					posR[i*D+j] = 0.9*posR[i*D+j] + 0.1*posR[i*D+j%3]
					velR[i*D+j] = 0.9*velR[i*D+j] + 0.1*velR[i*D+j%3]
				}
			}
			t.Compute(int64(own) * int64(4*D) * costFlop)
			writeMolsFull(t, dstPos(step), lo, hi, posR)
			writeMolsFull(t, dstVel(step), lo, hi, velR)
			if st.EnergyStage != stage {
				t.Acquire(energyLock)
				e := t.ReadF64(energyAddr)
				t.WriteF64(energyAddr, e+kin)
				st.EnergyStage = stage
				t.Release(energyLock)
			}
		}

		verifyStage := func(step int) {
			if tid != 0 {
				return
			}
			readMols(t, frc, 0, n, buf)
			var sx, sy, sz float64
			for m := 0; m < n; m++ {
				sx += buf[3*m]
				sy += buf[3*m+1]
				sz += buf[3*m+2]
			}
			mag := math.Abs(sx) + math.Abs(sy) + math.Abs(sz)
			if mag > 1e-6*float64(n) {
				w.failf("step %d: net force %g (momentum not conserved)", step, mag)
			}
			if e := t.ReadF64(energyAddr); math.IsNaN(e) || math.IsInf(e, 0) {
				w.failf("step %d: energy diverged: %g", step, e)
			}
		}

		total := 1 + 4*steps
		runStages(t, &st.Phase, &st.Arrived, total, func(s int) {
			if s == 0 {
				initStage()
				return
			}
			step, sub := (s-1)/4, (s-1)%4
			switch sub {
			case 0:
				zeroStage()
			case 1:
				interactStage(s, step)
			case 2:
				integrateStage(s, step)
			case 3:
				verifyStage(step)
			}
		})
	}
	return w
}

// pairForce is the soft inverse-square interaction between molecules i
// and j (antisymmetric by construction).
func pairForce(pos []float64, i, j int) (fx, fy, fz float64) {
	dx := pos[3*i] - pos[3*j]
	dy := pos[3*i+1] - pos[3*j+1]
	dz := pos[3*i+2] - pos[3*j+2]
	r2 := dx*dx + dy*dy + dz*dz + 0.1
	inv := 1 / (r2 * math.Sqrt(r2))
	return dx * inv, dy * inv, dz * inv
}

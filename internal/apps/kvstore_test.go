package apps

import (
	"regexp"
	"strings"
	"testing"

	"ftsvm/internal/model"
	"ftsvm/internal/svm"
)

// TestKVBucketOfInRange is the regression test for the bucketOf integer
// fix: the old formula converted the raw 64-bit product to int before
// reducing (int(key*2654435761) % buckets), which goes negative — an
// out-of-range slice index — whenever the product's top bit is set:
// always a risk on 32-bit int, and reachable on 64-bit too for large
// keys (key = 1<<59 makes the product ≡ 17<<59 mod 2^64 ≥ 2^63). The
// fixed BucketOf reduces in uint64 first, so the index is in range for
// every key.
func TestKVBucketOfInRange(t *testing.T) {
	s := testShape()
	for _, buckets := range []int{2, 7, 32, 512} {
		tb := NewKVTable(s, buckets, 4)
		keys := []uint64{0, 1, 2, 511, 512, 8191, 8192,
			1 << 40, 1 << 59, 1 << 62, ^uint64(0)}
		for _, k := range keys {
			if idx := tb.BucketOf(k); idx < 0 || idx >= buckets {
				t.Fatalf("BucketOf(%d) with %d buckets = %d, out of range", k, buckets, idx)
			}
		}
	}
}

// TestKVBucketOfMatchesLegacyAssignment pins the "no metric shift"
// half of the fix: for every key the existing workloads can generate
// (key spaces top out at buckets*slots/2 = 8192 at paper size), the
// fixed reduction produces the same bucket the old formula did on
// 64-bit platforms, so recorded virtual metrics are unchanged.
func TestKVBucketOfMatchesLegacyAssignment(t *testing.T) {
	s := testShape()
	for _, buckets := range []int{7, 32, 512} {
		tb := NewKVTable(s, buckets, 4)
		for key := uint64(1); key <= 8192; key++ {
			legacy := int(key*2654435761) % buckets
			if got := tb.BucketOf(key); got != legacy {
				t.Fatalf("BucketOf(%d) with %d buckets = %d, legacy 64-bit gave %d",
					key, buckets, got, legacy)
			}
		}
	}
}

// TestKVStoreOverflowReport is the regression test for the
// overflow-reporting fix: a key space crowding more distinct keys into
// a bucket than it has slots must fail with an error naming the thread
// and op index of the truncation point (the root cause), not only the
// bucket — and must not bury it under verifyStage's key-count fallout.
func TestKVStoreOverflowReport(t *testing.T) {
	s := Shape{Nodes: 2, ThreadsPerNode: 1, PageSize: 4096}
	// 2 buckets x 1 slot but 8 distinct keys: some bucket sees a second
	// distinct key within a few ops and the stream must truncate.
	w := KVStoreKeys(s, 2, 1, 8, 8)
	cfg := model.Default()
	cfg.Nodes = s.Nodes
	cfg.ThreadsPerNode = s.ThreadsPerNode
	cfg.PageSize = s.PageSize
	cl, err := svm.New(svm.Options{
		Config: cfg, Mode: svm.ModeFT,
		Pages: w.Pages, Locks: w.Locks, HomeAssign: w.HomeAssign, Body: w.Body,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	verr := w.Err()
	if verr == nil {
		t.Fatal("expected a bucket-overflow failure, got success")
	}
	msg := verr.Error()
	if ok, _ := regexp.MatchString(`thread \d+ op \d+: bucket \d+ overflow`, msg); !ok {
		t.Fatalf("overflow error does not identify thread and op: %q", msg)
	}
	if strings.Contains(msg, "key count") {
		t.Fatalf("overflow buried under verify fallout: %q", msg)
	}
}

// TestKVPlaceBucketsHomes: the placement helper assigns every page of a
// multi-page bucket run to the bucket's round-robin home.
func TestKVPlaceBucketsHomes(t *testing.T) {
	s := testShape() // 4 nodes x 1 thread
	// 384 slots x 16 B = 6 KB per bucket: each run spans 2 pages.
	tb := NewKVTable(s, 3, 384)
	if tb.Pages != 6 {
		t.Fatalf("pages = %d, want 6", tb.Pages)
	}
	for p := 0; p < tb.Pages; p++ {
		wantNode := s.NodeOfThread((p / 2) % s.Threads())
		if got := tb.HomeAssign(p); got != wantNode {
			t.Fatalf("page %d home = %d, want %d", p, got, wantNode)
		}
	}
}

// TestKVPlaceBucketsAliasPanic is the regression test for the
// page-home aliasing fix: two buckets sharing a page must panic with an
// attributable message instead of silently letting the last-placed
// bucket win the page's home.
func TestKVPlaceBucketsAliasPanic(t *testing.T) {
	s := testShape()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("overlapping bucket runs did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "share page") {
			t.Fatalf("unexpected panic payload: %v", r)
		}
	}()
	// Bucket 1 starts mid-page inside bucket 0's run.
	kvPlaceBuckets(s, 2, 4096, 4096, []int{0, 2048})
}

package apps

import (
	"testing"
	"testing/quick"
)

// Property: splitRange tiles [0,n) exactly — contiguous, non-overlapping,
// covering.
func TestSplitRangeProperty(t *testing.T) {
	f := func(nRaw, partsRaw uint8) bool {
		n := int(nRaw)
		parts := int(partsRaw%16) + 1
		prevHi := 0
		for i := 0; i < parts; i++ {
			lo, hi := splitRange(n, parts, i)
			if lo != prevHi || hi < lo {
				return false
			}
			prevHi = hi
		}
		return prevHi == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitRangeBalance(t *testing.T) {
	// Chunk sizes differ by at most one.
	for _, n := range []int{1, 7, 64, 1000} {
		for _, parts := range []int{1, 3, 8} {
			min, max := n, 0
			for i := 0; i < parts; i++ {
				lo, hi := splitRange(n, parts, i)
				if hi-lo < min {
					min = hi - lo
				}
				if hi-lo > max {
					max = hi - lo
				}
			}
			if max-min > 1 {
				t.Fatalf("splitRange(%d,%d) unbalanced: %d..%d", n, parts, min, max)
			}
		}
	}
}

func TestPrngDeterministicAndBounded(t *testing.T) {
	a, b := newPrng(42), newPrng(42)
	for i := 0; i < 100; i++ {
		x, y := a.float(), b.float()
		if x != y {
			t.Fatal("prng not deterministic")
		}
		if x < 0 || x >= 1 {
			t.Fatalf("prng.float out of range: %g", x)
		}
	}
	if newPrng(0).next() != newPrng(0).next() {
		t.Fatal("zero seed not normalized deterministically")
	}
}

func TestLayoutPageAlignment(t *testing.T) {
	l := newLayout(4096)
	a := l.alloc(100)
	b := l.alloc(5000)
	c := l.alloc(1)
	if a != 0 || b != 4096 || c != 4096*3 {
		t.Fatalf("alloc addresses: %d %d %d", a, b, c)
	}
	if l.pages() != 4 {
		t.Fatalf("pages = %d", l.pages())
	}
	if l.pageOf(b+4097) != 2 {
		t.Fatalf("pageOf = %d", l.pageOf(b+4097))
	}
}

func TestShapeHelpers(t *testing.T) {
	s := Shape{Nodes: 4, ThreadsPerNode: 2, PageSize: 4096}
	if s.Threads() != 8 {
		t.Fatalf("Threads = %d", s.Threads())
	}
	if s.NodeOfThread(0) != 0 || s.NodeOfThread(1) != 0 || s.NodeOfThread(7) != 3 {
		t.Fatal("NodeOfThread wrong")
	}
}

func TestWorkloadFailFirstWins(t *testing.T) {
	w := &Workload{Name: "x"}
	if w.Err() != nil {
		t.Fatal("fresh workload has error")
	}
	w.failf("first %d", 1)
	w.failf("second %d", 2)
	if got := w.Err().Error(); got != "x: first 1" {
		t.Fatalf("Err = %q", got)
	}
	w.Fail(nil) // no-op
	if w.Err().Error() != "x: first 1" {
		t.Fatal("nil Fail overwrote error")
	}
}

func TestTouchedCellsOwnFirstNoDuplicates(t *testing.T) {
	partners := [][]int{{1, 2}, {2, 3}, {3}, {0}}
	got := touchedCells(1, 3, partners) // own cells 1,2
	seen := map[int]bool{}
	for _, c := range got {
		if seen[c] {
			t.Fatalf("duplicate cell %d in %v", c, got)
		}
		seen[c] = true
	}
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("own cells not first: %v", got)
	}
	if !seen[3] {
		t.Fatalf("forward neighbor missing: %v", got)
	}
}

package apps

import (
	"fmt"
	"math"

	"ftsvm/internal/svm"
)

// volrendState is the resumable state of a Volrend thread: the tile being
// rendered survives the pop (which commits at the queue-lock release), so
// a replay re-renders it idempotently instead of losing or duplicating it.
type volrendState struct {
	Phase    int
	Arrived  bool
	CurTile  int
	HaveTile bool
	Stealing int // queue currently being stolen from
}

// Volrend builds the Volrend workload: ray casting an analytic volume
// (standing in for the paper's "head" dataset) with a tiled image and
// task stealing through per-thread tile queues guarded by locks. The
// volume is read-shared after initialization; image tiles are written by
// whichever thread rendered them.
func Volrend(s Shape, vdim, idim int) *Workload {
	T := s.Threads()
	const tile = 8
	tiles := (idim / tile) * (idim / tile)

	l := newLayout(s.PageSize)
	volBase := l.alloc(vdim * vdim * vdim * 4) // float32 density, z-contiguous
	imgBase := l.alloc(idim * idim * 8)
	headBase := l.alloc(T * 8) // per-queue next-tile index (padded to 8B)

	homeOf := make([]int, l.pages())
	// Volume slabs homed by initializing thread; image rows round-robin;
	// queue heads at their owner.
	for tid := 0; tid < T; tid++ {
		zlo, zhi := splitRange(vdim, T, tid)
		for a := volBase + zlo*vdim*vdim*4; a < volBase+zhi*vdim*vdim*4; a += s.PageSize {
			homeOf[l.pageOf(a)] = s.NodeOfThread(tid)
		}
		homeOf[l.pageOf(headBase+tid*8)] = s.NodeOfThread(tid)
	}
	for r := 0; r < idim; r++ {
		for a := imgBase + r*idim*8; a < imgBase+(r+1)*idim*8; a += s.PageSize {
			homeOf[l.pageOf(a)] = s.NodeOfThread(r * T / idim)
		}
	}

	w := &Workload{
		Name:  fmt.Sprintf("Volrend-%d", idim),
		Pages: l.pages(),
		Locks: T + 1, // one lock per tile queue + a global
		HomeAssign: func(p int) int {
			if p < len(homeOf) {
				return homeOf[p]
			}
			return 0
		},
	}

	// Queue q owns tiles q, q+T, q+2T, ... (static round-robin seeding).
	queueLen := func(q int) int { return (tiles - q + T - 1) / T }
	tileAt := func(q, idx int) int { return q + idx*T }

	// density is the analytic "head": a couple of nested Gaussian shells.
	density := func(x, y, z float64) float32 {
		dx, dy, dz := x-0.5, y-0.5, z-0.5
		r2 := dx*dx + dy*dy + dz*dz
		v := math.Exp(-r2*18) - 0.6*math.Exp(-r2*60)
		if v < 0 {
			v = 0
		}
		return float32(v)
	}

	w.Body = func(t *svm.Thread) {
		st := &volrendState{}
		t.Setup(st)
		tid := t.ID()
		tilesPerRow := idim / tile
		col := make([]uint32, vdim)
		px := make([]float64, tile*tile)

		// initStage fills the thread's volume slab (z-major layout: the
		// array index is x*vdim*vdim + y*vdim + z, so a ray along z reads
		// one contiguous run) and resets the thread's tile queue.
		initStage := func() {
			zlo, zhi := splitRange(vdim, T, tid)
			row := make([]uint32, vdim)
			for x := zlo; x < zhi; x++ {
				for y := 0; y < vdim; y++ {
					for z := 0; z < vdim; z++ {
						v := density(float64(x)/float64(vdim), float64(y)/float64(vdim), float64(z)/float64(vdim))
						row[z] = math.Float32bits(v)
					}
					t.WriteU32s(volBase+(x*vdim*vdim+y*vdim)*4, row)
				}
			}
			t.Compute(int64((zhi-zlo)*vdim*vdim) * 4 * costFlop)
			t.WriteU64(headBase+tid*8, 0)
		}

		renderCur := func() {
			tl := st.CurTile
			tx, ty := (tl%tilesPerRow)*tile, (tl/tilesPerRow)*tile
			for py := 0; py < tile; py++ {
				for pxi := 0; pxi < tile; pxi++ {
					ix, iy := tx+pxi, ty+py
					vx := int(float64(ix) / float64(idim) * float64(vdim))
					vy := int(float64(iy) / float64(idim) * float64(vdim))
					t.ReadU32s(volBase+(vx*vdim*vdim+vy*vdim)*4, col)
					acc, trans := 0.0, 1.0
					for z := 0; z < vdim; z++ {
						d := float64(math.Float32frombits(col[z]))
						acc += trans * d
						trans *= 1 - 0.05*d
					}
					px[py*tile+pxi] = acc
				}
			}
			t.Compute(int64(tile*tile*vdim) * 4 * costFlop)
			for py := 0; py < tile; py++ {
				t.WriteF64s(imgBase+((ty+py)*idim+tx)*8, px[py*tile:(py+1)*tile])
			}
		}

		// renderStage pops tiles from the own queue, then steals from the
		// others; each pop commits with the queue-lock release, and the
		// popped tile rides in the checkpoint, so a replay re-renders it
		// (idempotent) rather than losing or duplicating it.
		renderStage := func() {
			if st.HaveTile {
				renderCur()
				st.HaveTile = false
			}
			for st.Stealing < T {
				queue := (tid + st.Stealing) % T
				for {
					t.Acquire(queue)
					idx := int(t.ReadU64(headBase + queue*8))
					if idx >= queueLen(queue) {
						// Advance before Release: a replay skips this
						// drained queue.
						st.Stealing++
						t.Release(queue)
						break
					}
					t.WriteU64(headBase+queue*8, uint64(idx+1))
					st.CurTile = tileAt(queue, idx)
					st.HaveTile = true
					t.Release(queue)
					renderCur()
					st.HaveTile = false
				}
			}
		}

		// verifyStage compares a sample of pixels against a host re-render
		// from the analytic volume.
		verifyStage := func() {
			if tid != 0 {
				return
			}
			rng := newPrng(99)
			worst := 0.0
			for sIdx := 0; sIdx < 64; sIdx++ {
				ix := int(rng.next() % uint64(idim))
				iy := int(rng.next() % uint64(idim))
				got := t.ReadF64(imgBase + (iy*idim+ix)*8)
				vx := int(float64(ix) / float64(idim) * float64(vdim))
				vy := int(float64(iy) / float64(idim) * float64(vdim))
				acc, trans := 0.0, 1.0
				for z := 0; z < vdim; z++ {
					d := float64(density(float64(vx)/float64(vdim), float64(vy)/float64(vdim), float64(z)/float64(vdim)))
					acc += trans * d
					trans *= 1 - 0.05*d
				}
				if d := math.Abs(got - acc); d > worst {
					worst = d
				}
			}
			if worst > 1e-9 {
				w.failf("pixel error %g", worst)
			}
		}

		runStages(t, &st.Phase, &st.Arrived, 3, func(s int) {
			switch s {
			case 0:
				initStage()
			case 1:
				renderStage()
			case 2:
				verifyStage()
			}
		})
	}
	return w
}

package apps

import (
	"fmt"

	"ftsvm/internal/svm"
)

// radixState is the resumable state of a Radix thread. Bucket advances
// before each lock release (exactly-once accumulation, tied to its stage
// by BucketStage); the histogram and permute stages are idempotent
// overwrites of data derived from the stable source array.
type radixState struct {
	Phase       int
	Arrived     bool
	Bucket      int
	BucketStage int
}

// Radix builds the RadixLocal workload: an R-ary radix sort over n keys.
// Per pass: local histograms (own keys, own pages), a lock-protected
// global bucket-total accumulation (R + 2 locks — the paper reports 66),
// offset computation, and the permutation, whose scattered remote writes
// make most diffed pages non-home pages (only ~12% home pages in the
// paper), so the extended protocol's extra diff cost is smallest here.
func Radix(s Shape, n int) *Workload {
	const R = 64       // radix (6 bits/digit)
	const keyBits = 24 // 4 passes
	passes := keyBits / 6
	T := s.Threads()

	l := newLayout(s.PageSize)
	keysA := l.alloc(n * 4)
	keysB := l.alloc(n * 4)
	histBase := l.alloc(T * R * 4)   // per-thread histograms
	totalBase := l.alloc(R * 4)      // global bucket totals
	offsetBase := l.alloc(T * R * 4) // per-thread write offsets

	homeOf := make([]int, l.pages())
	for tid := 0; tid < T; tid++ {
		lo, hi := splitRange(n, T, tid)
		for _, base := range []int{keysA, keysB} {
			for a := base + lo*4; a < base+hi*4; a += s.PageSize {
				homeOf[l.pageOf(a)] = s.NodeOfThread(tid)
			}
		}
	}

	w := &Workload{
		Name:  fmt.Sprintf("Radix-%dK", n/1024),
		Pages: l.pages(),
		Locks: R + 2,
		HomeAssign: func(p int) int {
			if p < len(homeOf) {
				return homeOf[p]
			}
			return 0
		},
	}

	w.Body = func(t *svm.Thread) {
		st := &radixState{BucketStage: -1}
		t.Setup(st)
		tid := t.ID()
		lo, hi := splitRange(n, T, tid)
		own := hi - lo

		keys := make([]uint32, own)
		hist := make([]uint32, R)
		scratch := make([]uint32, R)

		src := func(pass int) int {
			if pass%2 == 0 {
				return keysA
			}
			return keysB
		}
		dst := func(pass int) int { return src(pass + 1) }

		initStage := func() {
			rng := newPrng(uint64(tid)*2654435761 + 1)
			for i := range keys {
				keys[i] = uint32(rng.next() & (1<<keyBits - 1))
			}
			t.WriteU32s(keysA+lo*4, keys)
		}

		// histStage builds the local histogram, publishes it, and zeroes
		// the thread's range of the global totals (idempotent overwrites).
		histStage := func(pass int) {
			shift := uint(6 * pass)
			t.ReadU32s(src(pass)+lo*4, keys)
			for b := range hist {
				hist[b] = 0
			}
			for _, k := range keys {
				hist[(k>>shift)&(R-1)]++
			}
			t.Compute(int64(own) * 2 * costIntOp)
			t.WriteU32s(histBase+tid*R*4, hist)
			bLo, bHi := splitRange(R, T, tid)
			if bHi > bLo {
				t.WriteU32s(totalBase+bLo*4, make([]uint32, bHi-bLo))
			}
		}

		// addStage accumulates this thread's counts into the global bucket
		// totals under per-bucket locks. st.Bucket advances before each
		// Release, so a replay adds each bucket exactly once.
		addStage := func(stage int) {
			if st.BucketStage != stage {
				st.Bucket, st.BucketStage = 0, stage
			}
			t.ReadU32s(histBase+tid*R*4, hist)
			for b := st.Bucket; b < R; b++ {
				if hist[b] == 0 {
					st.Bucket = b + 1
					continue
				}
				t.Acquire(b)
				v := t.ReadU32(totalBase + b*4)
				t.WriteU32(totalBase+b*4, v+hist[b])
				st.Bucket = b + 1
				t.Release(b)
			}
		}

		// offsetStage computes the thread's write offsets: bucket bases
		// (exclusive prefix over the totals) plus lower-ranked threads'
		// counts in each bucket.
		offsetStage := func(pass int) {
			t.ReadU32s(totalBase, scratch)
			sum := 0
			for b := 0; b < R; b++ {
				sum += int(scratch[b])
			}
			if sum != n {
				w.failf("pass %d (thread %d): bucket totals sum %d, want %d", pass, tid, sum, n)
			}
			base := uint32(0)
			for b := 0; b < R; b++ {
				c := scratch[b]
				scratch[b] = base
				base += c
			}
			for pt := 0; pt < tid; pt++ {
				t.ReadU32s(histBase+pt*R*4, hist)
				rowSum := 0
				for b := 0; b < R; b++ {
					rowSum += int(hist[b])
					scratch[b] += hist[b]
				}
				plo, phi := splitRange(n, T, pt)
				if rowSum != phi-plo {
					w.failf("pass %d: thread %d sees stale histogram row %d (sum %d, want %d)",
						pass, tid, pt, rowSum, phi-plo)
				}
			}
			t.Compute(int64(T*R) * costIntOp)
			t.WriteU32s(offsetBase+tid*R*4, scratch)
		}

		// permuteStage scatters the keys to their destinations.
		// Deterministic from the stable source, so replays overwrite
		// identically.
		permuteStage := func(pass int) {
			shift := uint(6 * pass)
			t.ReadU32s(src(pass)+lo*4, keys)
			t.ReadU32s(offsetBase+tid*R*4, scratch)
			for _, k := range keys {
				b := (k >> shift) & (R - 1)
				if int(scratch[b]) >= n {
					w.failf("pass %d thread %d: offset %d for bucket %d out of range", pass, tid, scratch[b], b)
					break
				}
				t.WriteU32(dst(pass)+int(scratch[b])*4, k)
				scratch[b]++
			}
			t.Compute(int64(own) * 3 * costIntOp)
		}

		verifyStage := func() {
			if tid != 0 {
				return
			}
			final := make([]uint32, n)
			t.ReadU32s(src(passes), final)
			var sum uint64
			var xor uint32
			prev := uint32(0)
			for i, k := range final {
				if k < prev {
					w.failf("not sorted at %d: %d < %d", i, k, prev)
					break
				}
				prev = k
				sum += uint64(k)
				xor ^= k
			}
			var wantSum uint64
			var wantXor uint32
			for pt := 0; pt < T; pt++ {
				plo, phi := splitRange(n, T, pt)
				rng := newPrng(uint64(pt)*2654435761 + 1)
				for i := plo; i < phi; i++ {
					_ = i
					k := uint32(rng.next() & (1<<keyBits - 1))
					wantSum += uint64(k)
					wantXor ^= k
				}
			}
			if sum != wantSum || xor != wantXor {
				w.failf("permutation broken: sum %d vs %d, xor %x vs %x", sum, wantSum, xor, wantXor)
			}
		}

		total := 2 + 4*passes // init + 4 stages per pass + verify
		runStages(t, &st.Phase, &st.Arrived, total, func(s int) {
			switch {
			case s == 0:
				initStage()
			case s == total-1:
				verifyStage()
			default:
				pass, sub := (s-1)/4, (s-1)%4
				switch sub {
				case 0:
					histStage(pass)
				case 1:
					addStage(s)
				case 2:
					offsetStage(pass)
				case 3:
					permuteStage(pass)
				}
			}
		})
	}
	return w
}

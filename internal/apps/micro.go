package apps

import "ftsvm/internal/svm"

// The micro workloads exist for exhaustive failure-point exploration
// (internal/explore): small enough that every protocol-step boundary of
// a run can be swept with an injected failure in seconds, while still
// driving the protocol features whose recovery paths differ — lock
// transfer and single-writer diffs (Counter), barriers and multi-writer
// false sharing (FalseShare). Both follow the suite's contracts: all
// control state lives in the registered state struct, work is advanced
// past in the state before the synchronization operation that
// checkpoints it (so a post-failure replay performs each unit of work
// exactly once), and the sync CALL itself is re-executed by the replay
// (so a thread restored from a mid-barrier snapshot re-issues the open
// episode's call and its barrier numbering stays aligned — the same
// shape runStages gives the SPLASH ports with its Arrived flag;
// FalseShare packs the equivalent into Iter's parity to keep the
// checkpoint blob, and with it every virtual time, unchanged).

// microState is the per-thread resumable state of both micro workloads.
type microState struct {
	Iter int
}

// Counter is a shared counter incremented under lock 0, iters times per
// thread, across pad-to-nodes pages (so every node is a primary home
// and any victim forces real rehoming work). Thread 0 verifies the
// total after the final barrier.
func Counter(s Shape, iters int) *Workload {
	l := newLayout(s.PageSize)
	ctr := l.alloc(8)
	pages := l.pages()
	if pages < s.Nodes {
		pages = s.Nodes
	}
	w := &Workload{Name: "counter", Pages: pages, Locks: 1}
	total := uint64(s.Threads() * iters)
	w.Body = func(t *svm.Thread) {
		st := &microState{}
		t.Setup(st)
		for st.Iter < iters {
			t.Acquire(0)
			v := t.ReadU64(ctr)
			t.Compute(200)
			t.WriteU64(ctr, v+1)
			st.Iter++
			t.Release(0)
		}
		t.Barrier()
		if t.ID() == 0 {
			if got := t.ReadU64(ctr); got != total {
				w.failf("counter = %d, want %d", got, total)
			}
		}
	}
	return w
}

// FalseShare packs one word per thread onto a single shared page: every
// barrier episode each thread increments its own word, so each interval
// multi-writes the page and the homes must merge concurrent diffs.
// Thread 0 verifies every slot after the final barrier.
func FalseShare(s Shape, iters int) *Workload {
	threads := s.Threads()
	l := newLayout(s.PageSize)
	slots := l.alloc(8 * threads)
	pages := l.pages()
	if pages < s.Nodes {
		pages = s.Nodes
	}
	w := &Workload{Name: "falseshare", Pages: pages, Locks: 0}
	w.Body = func(t *svm.Thread) {
		st := &microState{}
		t.Setup(st)
		mine := slots + 8*t.ID()
		// Iter counts half-steps: even = this iteration's increment is
		// still owed, odd = done but its barrier call is not. A replay
		// from a mid-barrier snapshot (odd Iter) skips the increment and
		// re-issues the suspended Barrier call, keeping the thread's
		// episode numbering aligned without widening the state blob.
		for st.Iter < 2*iters {
			if st.Iter%2 == 0 {
				v := t.ReadU64(mine)
				t.Compute(150)
				t.WriteU64(mine, v+1)
				st.Iter++
			}
			t.Barrier()
			st.Iter++
		}
		t.Barrier()
		if t.ID() == 0 {
			for i := 0; i < threads; i++ {
				if got := t.ReadU64(slots + 8*i); got != uint64(iters) {
					w.failf("slot %d = %d, want %d", i, got, iters)
				}
			}
		}
	}
	return w
}

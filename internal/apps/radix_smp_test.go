package apps

import (
	"testing"

	"ftsvm/internal/svm"
)

// Regression tests for three protocol bugs found by the Radix workload
// under SMP nodes: (1) a write validated before a cost-charge yield
// landing on a page a sibling's commit had downgraded; (2) a base-mode
// home reading its own page without waiting for notified in-flight diffs;
// (3) a sibling's concurrent write fault re-cloning the twin and silently
// excluding the first writer's modifications from the commit diff.

func TestRadixSMPBaseLarge(t *testing.T) {
	s := Shape{Nodes: 4, ThreadsPerNode: 2, PageSize: 4096}
	runWorkload(t, svm.ModeBase, s, Radix(s, 4096))
}

func TestRadixSMPFTSmall(t *testing.T) {
	s := Shape{Nodes: 2, ThreadsPerNode: 2, PageSize: 4096}
	runWorkload(t, svm.ModeFT, s, Radix(s, 1024))
}

package apps

import (
	"fmt"
	"testing"

	"ftsvm/internal/model"
	"ftsvm/internal/svm"
)

// runWithFailure runs a workload under the extended protocol and kills a
// node mid-run, either at a virtual time or at a protocol milestone. The
// workload's own verification must still pass after recovery.
func runWithFailure(t *testing.T, s Shape, w *Workload, victim int, kind string, atNs int64, seq int64) {
	t.Helper()
	cfg := model.Default()
	cfg.Nodes = s.Nodes
	cfg.ThreadsPerNode = s.ThreadsPerNode
	cfg.PageSize = s.PageSize
	var cl *svm.Cluster
	var opt svm.Options
	killed := false
	opt = svm.Options{
		Config:     cfg,
		Mode:       svm.ModeFT,
		Pages:      w.Pages,
		Locks:      w.Locks,
		HomeAssign: w.HomeAssign,
		Body:       w.Body,
	}
	if kind != "time" {
		opt.Tracer = tracerFunc(func(e svm.TraceEvent) {
			if killed || e.Kind != kind || e.Node != victim || (seq != 0 && e.Seq < seq) {
				return
			}
			killed = true
			cl.KillNode(victim)
		})
	}
	var err error
	cl, err = svm.New(opt)
	if err != nil {
		t.Fatal(err)
	}
	if kind == "time" {
		cl.Engine().At(atNs, func() {
			killed = true
			cl.KillNode(victim)
		})
	}
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if !killed {
		t.Skipf("kill trigger %q never fired (workload finished first)", kind)
	}
	if !cl.Finished() {
		t.Fatal("threads did not finish after recovery")
	}
	if err := w.Err(); err != nil {
		t.Fatalf("workload verification failed after recovery: %v", err)
	}
}

func ftShape() Shape { return Shape{Nodes: 4, ThreadsPerNode: 1, PageSize: 4096} }

func TestFFTSurvivesFailure(t *testing.T) {
	for _, victim := range []int{0, 2} {
		victim := victim
		t.Run(fmt.Sprintf("victim%d", victim), func(t *testing.T) {
			runWithFailure(t, ftShape(), FFT(ftShape(), 1024), victim, "time", 2_000_000, 0)
		})
	}
}

func TestLUSurvivesFailure(t *testing.T) {
	runWithFailure(t, ftShape(), LU(ftShape(), 64, 8), 1, "time", 3_000_000, 0)
}

func TestLUSurvivesFailureAtRelease(t *testing.T) {
	// Kill at a barrier release's phase 1 (roll-back window).
	runWithFailure(t, ftShape(), LU(ftShape(), 64, 8), 2, "release.phase1", 0, 3)
}

func TestWaterNsqSurvivesFailure(t *testing.T) {
	runWithFailure(t, ftShape(), WaterNsq(ftShape(), 64, 2), 3, "time", 4_000_000, 0)
}

func TestWaterNsqSurvivesFailureMidLockChain(t *testing.T) {
	// Kill inside the per-molecule flush (lock-heavy window), after the
	// timestamp save (roll-forward).
	runWithFailure(t, ftShape(), WaterNsq(ftShape(), 64, 2), 1, "release.savets", 0, 10)
}

func TestWaterSpSurvivesFailure(t *testing.T) {
	runWithFailure(t, ftShape(), WaterSp(ftShape(), 64, 2), 2, "time", 4_000_000, 0)
}

func TestRadixSurvivesFailure(t *testing.T) {
	runWithFailure(t, ftShape(), Radix(ftShape(), 4096), 1, "time", 5_000_000, 0)
}

func TestRadixSurvivesFailureAtCommit(t *testing.T) {
	runWithFailure(t, ftShape(), Radix(ftShape(), 4096), 2, "release.commit", 0, 5)
}

func TestVolrendSurvivesFailure(t *testing.T) {
	runWithFailure(t, ftShape(), Volrend(ftShape(), 16, 32), 3, "time", 2_000_000, 0)
}

type tracerFunc func(svm.TraceEvent)

func (f tracerFunc) Event(e svm.TraceEvent) { f(e) }

func TestKVStoreSurvivesFailure(t *testing.T) {
	runWithFailure(t, ftShape(), KVStore(ftShape(), 16, 32, 60), 2, "time", 4_000_000, 0)
}

func TestKVStoreSurvivesFailureAtSaveTS(t *testing.T) {
	// Roll-forward window during the transactional op stream.
	runWithFailure(t, ftShape(), KVStore(ftShape(), 16, 32, 60), 1, "release.savets", 0, 12)
}

func TestOceanSurvivesFailure(t *testing.T) {
	runWithFailure(t, ftShape(), Ocean(ftShape(), 64, 4), 1, "time", 3_000_000, 0)
}

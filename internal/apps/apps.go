// Package apps implements the paper's application suite: Go
// re-implementations of the six SPLASH-2 kernels' sharing patterns (FFT,
// LU-contiguous, Water-Nsquared, Water-SpatialFL, RadixLocal, Volrend)
// against the SVM API.
//
// Each workload is:
//
//   - deterministic: same inputs, same results, independent of protocol
//     mode — so base and extended runs are comparable and failure replays
//     reproduce the original values;
//   - self-verifying: after the final barrier, thread 0 checks the result
//     (closed-form outputs, residuals, sortedness, or reference
//     checksums) and records any error;
//   - checkpoint-resumable: all control state (phase counters, loop
//     indices, private scratch) lives in the thread's registered state
//     struct, advanced before each Release so a post-failure replay
//     continues exactly once.
package apps

import (
	"fmt"
	"sort"
	"sync"

	"ftsvm/internal/svm"
)

// Workload is one runnable application: the shared-memory shape plus the
// thread body.
type Workload struct {
	Name  string
	Pages int
	Locks int
	// HomeAssign places pages on nodes; nil means block distribution.
	HomeAssign func(page int) int
	Body       func(t *svm.Thread)

	// failure is the first verification error. Thread bodies on different
	// nodes run concurrently under the parallel engine, so the field is
	// mutex-guarded; verification is the only host-shared state a
	// workload body touches.
	mu      sync.Mutex
	failure error
}

// Fail records a verification failure (first one wins).
func (w *Workload) Fail(err error) {
	if err == nil {
		return
	}
	w.mu.Lock()
	if w.failure == nil {
		w.failure = err
	}
	w.mu.Unlock()
}

// Err returns the recorded verification failure, if any.
func (w *Workload) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.failure
}

// failf formats and records a verification failure.
func (w *Workload) failf(format string, args ...any) {
	w.Fail(fmt.Errorf("%s: "+format, append([]any{w.Name}, args...)...))
}

// layout is a trivial bump allocator for laying shared arrays out in the
// page-grained address space.
type layout struct {
	pageSize int
	next     int
}

func newLayout(pageSize int) *layout { return &layout{pageSize: pageSize} }

// alloc reserves size bytes starting on a fresh page and returns the base
// address.
func (l *layout) alloc(size int) int {
	base := l.next
	pages := (size + l.pageSize - 1) / l.pageSize
	l.next += pages * l.pageSize
	return base
}

// pages returns the total number of pages allocated.
func (l *layout) pages() int { return l.next / l.pageSize }

// pageOf returns the page index containing address a.
func (l *layout) pageOf(a int) int { return a / l.pageSize }

// splitRange divides [0,n) into nparts contiguous chunks and returns the
// bounds of part i.
func splitRange(n, nparts, i int) (lo, hi int) {
	lo = n * i / nparts
	hi = n * (i + 1) / nparts
	return
}

// runStages drives a barrier-phased computation with exact-once replay.
// Stage k runs its body, sets the arrived flag, passes one global
// barrier, then advances the stage counter; cur and arrived live in the
// thread's checkpointed state. A restored thread therefore:
//
//   - re-runs at most its current stage's body (and only if the
//     checkpoint preceded the body's completion — a checkpoint taken
//     inside the barrier has arrived=true, so a rolled-forward stage
//     whose writes already propagated is never re-applied, which matters
//     for non-idempotent bodies like LU's block updates);
//   - performs exactly the barrier arrivals the cluster still expects
//     (re-running the whole body would overshoot the global count).
//
// Bodies checkpointed mid-stage by their own lock releases must be
// re-entrant via their own progress fields (e.g. a flush index advanced
// before each Release).
func runStages(t *svm.Thread, cur *int, arrived *bool, total int, body func(stage int)) {
	for *cur < total {
		if !*arrived {
			body(*cur)
			*arrived = true
		}
		t.Barrier()
		*arrived = false
		*cur++
	}
}

// sortInts sorts a small int slice (deterministic iteration orders).
func sortInts(a []int) { sort.Ints(a) }

// waterMolBytes is the shared-record stride of one water molecule (see
// the water workloads: positions/velocities/forces plus derivative
// vectors, as in SPLASH-2).
const waterMolBytes = 18 * 8

// readMols gathers the 3-vector heads of molecules [lo,hi) from a strided
// record array into dst (3 doubles per molecule).
func readMols(t *svm.Thread, base, lo, hi int, dst []float64) {
	for m := lo; m < hi; m++ {
		t.ReadF64s(base+m*waterMolBytes, dst[3*(m-lo):3*(m-lo)+3])
	}
}

// writeMols scatters 3-vectors back into the strided record array.
func writeMols(t *svm.Thread, base, lo, hi int, src []float64) {
	for m := lo; m < hi; m++ {
		t.WriteF64s(base+m*waterMolBytes, src[3*(m-lo):3*(m-lo)+3])
	}
}

// waterMolDoubles is the full record width in doubles.
const waterMolDoubles = waterMolBytes / 8

// readMolsFull gathers whole records (positions plus derivative vectors,
// 18 doubles each) — the predictor-corrector integration reads and
// rewrites all of them, which is what makes water's home-page diff volume
// large in the paper.
func readMolsFull(t *svm.Thread, base, lo, hi int, dst []float64) {
	for m := lo; m < hi; m++ {
		t.ReadF64s(base+m*waterMolBytes, dst[waterMolDoubles*(m-lo):waterMolDoubles*(m-lo+1)])
	}
}

// writeMolsFull scatters whole records back.
func writeMolsFull(t *svm.Thread, base, lo, hi int, src []float64) {
	for m := lo; m < hi; m++ {
		t.WriteF64s(base+m*waterMolBytes, src[waterMolDoubles*(m-lo):waterMolDoubles*(m-lo+1)])
	}
}

// prng is a small deterministic generator (xorshift64*) used to build
// reproducible inputs without pulling math/rand state into checkpoints.
type prng struct{ s uint64 }

func newPrng(seed uint64) *prng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &prng{s: seed}
}

func (p *prng) next() uint64 {
	p.s ^= p.s >> 12
	p.s ^= p.s << 25
	p.s ^= p.s >> 27
	return p.s * 0x2545F4914F6CDD1D
}

// float returns a deterministic value in [0, 1).
func (p *prng) float() float64 {
	return float64(p.next()>>11) / float64(1<<53)
}

// Rand is the exported face of the workloads' xorshift64* generator for
// sibling packages that build reproducible input streams the same way
// (internal/serve's arrival process and request mix).
type Rand struct{ p prng }

// NewRand seeds a deterministic generator (seed 0 is remapped like
// newPrng).
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	r.p = *newPrng(seed)
	return r
}

// Next returns the next 64-bit draw.
func (r *Rand) Next() uint64 { return r.p.next() }

// Float returns a deterministic value in [0, 1).
func (r *Rand) Float() float64 { return r.p.float() }

// RunStages exposes the barrier-phased exactly-once stage driver to
// sibling packages whose workloads follow the same checkpoint-resume
// discipline (internal/serve); see runStages for the replay contract.
func RunStages(t *svm.Thread, cur *int, arrived *bool, total int, body func(stage int)) {
	runStages(t, cur, arrived, total, body)
}

package vmmc

import "testing"

// TestRingWindowCoverage checks the rotating window's load-bearing
// property: advancing rot by k per sweep reaches every other ring member
// within ceil((n-1)/k) sweeps, never includes self, and degenerates to the
// full sweep for k <= 0 or k >= n-1.
func TestRingWindowCoverage(t *testing.T) {
	ring := []int{0, 2, 3, 5, 7, 8, 11}
	n := len(ring)
	for _, k := range []int{1, 2, 3} {
		for _, self := range ring {
			seen := map[int]bool{}
			sweeps := (n - 1 + k - 1) / k
			rot := 0
			for s := 0; s < sweeps; s++ {
				for _, id := range RingWindow(ring, self, rot, k) {
					if id == self {
						t.Fatalf("k=%d self=%d: window includes self", k, self)
					}
					seen[id] = true
				}
				rot += k
			}
			if len(seen) != n-1 {
				t.Fatalf("k=%d self=%d: %d/%d members covered in %d sweeps", k, self, len(seen), n-1, sweeps)
			}
		}
	}
}

func TestRingWindowDegenerate(t *testing.T) {
	ring := []int{4, 6, 9}
	if got := RingWindow(ring, 6, 0, 0); len(got) != 2 {
		t.Fatalf("k=0 should probe all others, got %v", got)
	}
	if got := RingWindow(ring, 6, 0, 10); len(got) != 2 {
		t.Fatalf("k>n-1 should probe all others, got %v", got)
	}
	if got := RingWindow(ring, 1, 0, 1); got != nil {
		t.Fatalf("self not in ring should yield nil, got %v", got)
	}
	if got := RingWindow([]int{3}, 3, 0, 1); got != nil {
		t.Fatalf("singleton ring should yield nil, got %v", got)
	}
}

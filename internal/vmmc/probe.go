package vmmc

import (
	"ftsvm/internal/model"
	"ftsvm/internal/sim"
)

// Probe-mode failure detection (paper §4.1): instead of consulting the
// simulator's ground truth, a waiting process sends a real probe message
// through its NIC and waits for the destination NIC's acknowledgement.
// Probes are system-class — they bypass the post-queue depth limit and the
// fence, but pay post overhead, NIC drain occupancy, wire latency, and
// bytes like any other message — so detection traffic shows up in every
// contention and volume figure. A node is declared dead only after
// ProbeMissLimit consecutive probes go unacknowledged; a miss streak that
// reaches the limit while the peer is in fact alive (acks lost to chaos or
// stuck behind a slow NIC) is vetoed and counted in FalseSuspicions
// instead of being confirmed, preserving the fail-stop assumption the
// recovery protocol is built on (see DESIGN.md §6).

// probeMsg is a liveness probe; the receiving NIC answers with probeAck
// without involving the destination processor.
type probeMsg struct{ seq uint64 }

// probeAck acknowledges the probe with the same sequence number.
type probeAck struct{ seq uint64 }

// probeSizeBytes is the modeled wire size of a probe or its ack.
const probeSizeBytes = 16 + MsgHeaderBytes

// retxGiveUpTries is how many retransmission timeouts the NIC burns before
// declaring a posted message undeliverable in probe mode. Oracle mode
// reports dead destinations instantly (the seed behavior).
const retxGiveUpTries = 4

// probeRound sends one probe to dst and blocks the calling process until
// the ack arrives or ProbeTimeoutNs elapses. Reports whether the ack made
// it back in time; late acks are discarded.
func (ep *Endpoint) probeRound(p *sim.Proc, dst int) bool {
	n := ep.net
	ep.probeSeq++
	seq := ep.probeSeq
	fut := n.eng.NewFuture()
	if ep.probeWait == nil {
		ep.probeWait = make(map[uint64]*sim.Future)
	}
	ep.probeWait[seq] = fut
	n.ProbesSent++
	ep.enqueue(outMsg{dst: dst, size: probeSizeBytes, payload: probeMsg{seq: seq}, system: true, probe: true})
	_, _, ok := p.AwaitTimeout(fut, n.cfg.ProbeTimeoutNs)
	if !ok {
		delete(ep.probeWait, seq)
	}
	return ok
}

// DetectRound runs one liveness check of dst from this endpoint and
// reports whether dst should still be treated as alive. In oracle mode it
// is the free ground-truth lookup; in probe mode it runs a real probe
// round and feeds the cluster-wide suspicion state: only after
// ProbeMissLimit consecutive misses of a genuinely dead node does it
// return false, and from then on the confirmed verdict is remembered (a
// fail-stopped node never comes back).
func (ep *Endpoint) DetectRound(p *sim.Proc, dst int) bool {
	n := ep.net
	if n.cfg.Detection != model.DetectProbe {
		return n.Alive(dst)
	}
	if dst == ep.id {
		return !ep.dead
	}
	if n.confirmedDead[dst] {
		return false
	}
	if ep.probeRound(p, dst) {
		n.missCount[dst] = 0
		n.suspectNs[dst] = 0
		return true
	}
	n.missCount[dst]++
	if n.missCount[dst] == 1 {
		// First miss of a fresh streak: the suspicion window opens here.
		// The timestamp feeds the availability timeline (svm.PhaseTimes):
		// kill→suspect is the undetected window, suspect→report is what
		// probe confirmation costs on top.
		n.suspectNs[dst] = n.eng.Now()
	}
	if n.missCount[dst] < n.cfg.ProbeMissLimit {
		return true // suspected, not yet confirmed
	}
	if n.Alive(dst) {
		// The miss streak hit the limit but the peer is alive: its acks
		// were lost or too slow. Confirming would violate fail-stop (the
		// "dead" node keeps issuing traffic), so the membership service
		// vetoes the confirmation and the streak restarts. The count is
		// the detector's false-suspicion margin under chaos.
		n.FalseSuspicions++
		n.missCount[dst] = 0
		n.suspectNs[dst] = 0
		return true
	}
	n.confirmedDead[dst] = true
	return false
}

// RingWindow selects a bounded probe target set from ring: the k members
// following self (exclusive) in ring order, starting rot positions past
// self's successor. Callers advance rot by k per sweep, so consecutive
// sweeps rotate the window around the whole ring and every member is
// probed within ceil((len(ring)-1)/k) sweeps of any prober — bounding
// per-sweep traffic to k probes without opening a missed-death window: a
// dead member is reached by every prober's rotation, not just by a fixed
// neighbor set whose waiters might never time out. The returned ids are
// in rotation order; self is never included. k <= 0 or k >= len(ring)-1
// returns every other member (the unbounded sweep).
func RingWindow(ring []int, self, rot, k int) []int {
	n := len(ring)
	idx := -1
	for i, id := range ring {
		if id == self {
			idx = i
			break
		}
	}
	if idx < 0 || n < 2 {
		return nil
	}
	if k <= 0 || k >= n-1 {
		k = n - 1
	}
	if rot < 0 {
		rot = 0
	}
	out := make([]int, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, ring[(idx+1+(rot+i)%(n-1))%n])
	}
	return out
}

// SuspicionNs returns the virtual time at which the probe detector's
// current (or confirming) miss streak against dst began, or 0 if dst is
// not under suspicion. For a confirmed-dead node this is the start of
// the streak that confirmed it — the earliest moment the membership
// service had evidence of the failure. Always 0 in oracle mode.
func (n *Network) SuspicionNs(dst int) int64 { return n.suspectNs[dst] }

// ConfirmedDead reports whether probe-mode detection has confirmed node
// i's failure. Always false in oracle mode.
func (n *Network) ConfirmedDead(i int) bool { return n.confirmedDead[i] }

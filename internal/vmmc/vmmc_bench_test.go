package vmmc

import (
	"testing"

	"ftsvm/internal/model"
	"ftsvm/internal/sim"
)

// BenchmarkPostThroughput measures one-way deposit throughput through the
// simulated NIC pipeline (post queue, drain, wire) — the cost in host
// wall-clock of one protocol message end to end.
func BenchmarkPostThroughput(b *testing.B) {
	eng := sim.New(1)
	cfg := model.Default()
	cfg.Nodes = 2
	net := New(eng, &cfg)
	got := 0
	net.Endpoint(1).SetHandler(func(d *Delivery) { got++ })
	net.Endpoint(0).SetHandler(func(d *Delivery) {})
	eng.Spawn("sender", func(p *sim.Proc) {
		ep := net.Endpoint(0)
		for i := 0; i < b.N; i++ {
			ep.Post(p, 1, 128, i)
		}
		if err := ep.Fence(p); err != nil {
			b.Error(err)
		}
	})
	b.ResetTimer()
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
	if got != b.N {
		b.Fatalf("delivered %d of %d", got, b.N)
	}
}

// BenchmarkRequestRoundTrip measures the synchronous fetch path: request,
// remote handler, NIC-generated reply.
func BenchmarkRequestRoundTrip(b *testing.B) {
	eng := sim.New(1)
	cfg := model.Default()
	cfg.Nodes = 2
	net := New(eng, &cfg)
	net.Endpoint(1).SetHandler(func(d *Delivery) { d.Reply("pong", 4096) })
	net.Endpoint(0).SetHandler(func(d *Delivery) {})
	eng.Spawn("client", func(p *sim.Proc) {
		ep := net.Endpoint(0)
		for i := 0; i < b.N; i++ {
			if _, err := ep.Request(p, 1, 64, "ping"); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.ResetTimer()
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
}

package vmmc

import (
	"errors"
	"testing"

	"ftsvm/internal/sim"
)

// TestDeadNodesFromJoinedFence pins the structured side of the
// multi-peer fence contract: DeadNodes recovers every failed destination
// from the joined error — repeated posts to the same dead peer collapse
// to one entry, live peers never appear. Recovery's simultaneous-failure
// refusal depends on the full set, not the textually-first error.
func TestDeadNodesFromJoinedFence(t *testing.T) {
	eng, net, _ := testNet(4)
	net.Kill(1)
	net.Kill(2)
	var ferr error
	eng.Spawn("sender", func(p *sim.Proc) {
		net.Endpoint(0).Post(p, 1, 100, "a")
		net.Endpoint(0).Post(p, 2, 100, "b")
		net.Endpoint(0).Post(p, 1, 100, "a2") // same dead peer again
		net.Endpoint(0).Post(p, 3, 100, "c")  // live peer
		ferr = net.Endpoint(0).Fence(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if dead := DeadNodes(ferr); len(dead) != 2 || dead[0] != 1 || dead[1] != 2 {
		t.Fatalf("DeadNodes = %v, want [1 2]", dead)
	}
}

// TestDeadNodesOnRequestError: a request failure carries the destination
// through the same extraction path as fence errors.
func TestDeadNodesOnRequestError(t *testing.T) {
	eng, net, _ := testNet(2)
	net.Kill(1)
	var rerr error
	eng.Spawn("caller", func(p *sim.Proc) {
		_, rerr = net.Endpoint(0).Request(p, 1, 16, "q")
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if dead := DeadNodes(rerr); len(dead) != 1 || dead[0] != 1 {
		t.Fatalf("DeadNodes = %v, want [1]", dead)
	}
}

// TestDeadNodesIgnoresForeignErrors: nil and unrelated errors extract to
// an empty set; a mixed join only yields the DeadError members.
func TestDeadNodesIgnoresForeignErrors(t *testing.T) {
	if got := DeadNodes(nil); len(got) != 0 {
		t.Fatalf("DeadNodes(nil) = %v", got)
	}
	if got := DeadNodes(errors.New("unrelated")); len(got) != 0 {
		t.Fatalf("DeadNodes(unrelated) = %v", got)
	}
	joined := errors.Join(errors.New("x"), &DeadError{Node: 3, Op: "post"})
	if got := DeadNodes(joined); len(got) != 1 || got[0] != 3 {
		t.Fatalf("DeadNodes(mixed join) = %v, want [3]", got)
	}
}

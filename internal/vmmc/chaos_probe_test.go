package vmmc

import (
	"errors"
	"strings"
	"testing"

	"ftsvm/internal/model"
	"ftsvm/internal/sim"
)

// TestFenceJoinsAllDeadDestinations is the multi-failure regression: a
// fence that hit two dead peers must report both, not just the first, so
// recovery learns every failed destination.
func TestFenceJoinsAllDeadDestinations(t *testing.T) {
	eng, net, _ := testNet(4)
	net.Kill(1)
	net.Kill(2)
	var ferr error
	eng.Spawn("sender", func(p *sim.Proc) {
		net.Endpoint(0).Post(p, 1, 100, "a")
		net.Endpoint(0).Post(p, 2, 100, "b")
		net.Endpoint(0).Post(p, 3, 100, "c")
		ferr = net.Endpoint(0).Fence(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(ferr, ErrNodeDead) {
		t.Fatalf("Fence error = %v, want ErrNodeDead", ferr)
	}
	msg := ferr.Error()
	if !strings.Contains(msg, "node 1") || !strings.Contains(msg, "node 2") {
		t.Fatalf("Fence error names %q, want both node 1 and node 2", msg)
	}
	if strings.Contains(msg, "node 3") {
		t.Fatalf("Fence error %q blames the live node 3", msg)
	}
}

// TestFenceDeduplicatesPerDestination: many posts to one dead peer still
// produce one error entry for it.
func TestFenceDeduplicatesPerDestination(t *testing.T) {
	eng, net, _ := testNet(2)
	net.Kill(1)
	var ferr error
	eng.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			net.Endpoint(0).Post(p, 1, 64, i)
		}
		ferr = net.Endpoint(0).Fence(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(ferr, ErrNodeDead) {
		t.Fatalf("Fence error = %v, want ErrNodeDead", ferr)
	}
	if n := strings.Count(ferr.Error(), "node 1"); n != 1 {
		t.Fatalf("dead node 1 reported %d times in %q, want once", n, ferr)
	}
}

// TestRetxTimeoutHonorsConfig: an explicit RetxTimeoutNs delays the
// retransmission of a dropped packet by exactly that much.
func TestRetxTimeoutHonorsConfig(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 2
	cfg.RetxTimeoutNs = 1_000_000
	eng := sim.New(1)
	net := New(eng, &cfg)
	net.SetDropEveryNth(1) // first transmission always lost
	var at int64
	net.Endpoint(1).SetHandler(func(d *Delivery) { at = eng.Now() })
	net.Endpoint(0).SetHandler(func(d *Delivery) {})
	eng.Spawn("sender", func(p *sim.Proc) {
		net.Endpoint(0).Post(p, 1, 64, "x")
		net.Endpoint(0).Fence(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if at < cfg.RetxTimeoutNs {
		t.Fatalf("retransmission delivered at %d, want >= %d", at, cfg.RetxTimeoutNs)
	}
}

// TestRetxTimeoutDerivedScalesWithSize: with RetxTimeoutNs unset, a large
// message's retransmission timeout includes its serialization time, so it
// is not declared lost while its DMA could still be in progress.
func TestRetxTimeoutDerivedScalesWithSize(t *testing.T) {
	cfg := model.Default()
	small, large := cfg.RetxTimeout(64), cfg.RetxTimeout(64<<10)
	if small <= 4*cfg.LinkLatencyNs-1 {
		t.Fatalf("RetxTimeout(64) = %d, want >= round-trip-based floor", small)
	}
	wantDelta := 2 * int64(float64(64<<10-64)*cfg.BandwidthNsPerByte)
	if large-small != wantDelta {
		t.Fatalf("RetxTimeout delta = %d, want serialization-derived %d", large-small, wantDelta)
	}
	cfg.RetxTimeoutNs = 123
	if cfg.RetxTimeout(64<<10) != 123 {
		t.Fatal("explicit RetxTimeoutNs not honored")
	}
}

// TestRetxBytesCounted: retransmitted wire volume is visible separately
// from first-transmission Stats.
func TestRetxBytesCounted(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 2
	eng := sim.New(1)
	net := New(eng, &cfg)
	net.SetDropEveryNth(2)
	net.Endpoint(1).SetHandler(func(d *Delivery) {})
	net.Endpoint(0).SetHandler(func(d *Delivery) {})
	eng.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			net.Endpoint(0).Post(p, 1, 64, i)
		}
		net.Endpoint(0).Fence(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if net.Retransmits != 5 {
		t.Fatalf("Retransmits = %d, want 5", net.Retransmits)
	}
	want := net.Retransmits * int64(64+MsgHeaderBytes)
	if net.RetxBytes != want {
		t.Fatalf("RetxBytes = %d, want %d", net.RetxBytes, want)
	}
	// First transmissions only in Stats: 10 messages, counted once each.
	if s := net.Endpoint(0).Stats(); s.BytesSent != int64(10*(64+MsgHeaderBytes)) {
		t.Fatalf("BytesSent = %d, want first transmissions only", s.BytesSent)
	}
}

// probeNet builds a network in probe-detection mode.
func probeNet(nodes int) (*sim.Engine, *Network, *model.Config) {
	cfg := model.Default()
	cfg.Nodes = nodes
	cfg.Detection = model.DetectProbe
	eng := sim.New(cfg.Seed)
	net := New(eng, &cfg)
	for i := 0; i < nodes; i++ {
		net.Endpoint(i).SetHandler(func(d *Delivery) {
			if d.NeedsReply() {
				d.Reply("ack", 8)
			}
		})
	}
	return eng, net, &cfg
}

// TestProbeDetectionConfirmsDeadNode: a peer that dies while holding a
// call is detected by real probe traffic — the probes are paid for on the
// wire, acks stop when the node dies, and the suspicion is confirmed only
// after ProbeMissLimit consecutive misses.
func TestProbeDetectionConfirmsDeadNode(t *testing.T) {
	eng, net, cfg := probeNet(2)
	net.Endpoint(1).SetHandler(func(d *Delivery) { /* hold the call forever */ })
	const killAt = 5_000_000
	eng.At(killAt, func() { net.Kill(1) })
	var rerr error
	var elapsed int64
	eng.Spawn("caller", func(p *sim.Proc) {
		t0 := p.Now()
		_, rerr = net.Endpoint(0).Request(p, 1, 16, "q")
		elapsed = p.Now() - t0
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(rerr, ErrNodeDead) {
		t.Fatalf("err = %v, want ErrNodeDead", rerr)
	}
	if !net.ConfirmedDead(1) {
		t.Fatal("failure not confirmed by the detector")
	}
	if net.ProbeAcks == 0 {
		t.Fatal("no probe acks while the peer was alive")
	}
	if net.ProbesSent < net.ProbeAcks+int64(cfg.ProbeMissLimit) {
		t.Fatalf("ProbesSent = %d, want >= acks (%d) + miss limit (%d)",
			net.ProbesSent, net.ProbeAcks, cfg.ProbeMissLimit)
	}
	// Probe traffic is real: it appears in the endpoint's wire stats.
	if s := net.Endpoint(0).Stats(); s.MsgsSent != 1+net.ProbesSent {
		t.Fatalf("MsgsSent = %d, want request + %d probes", s.MsgsSent, net.ProbesSent)
	}
	// Confirmation needs ProbeMissLimit missed rounds after the kill, each
	// a heartbeat period apart — strictly slower than the oracle, bounded
	// by a few heartbeat periods.
	minNs := int64(cfg.ProbeMissLimit) * cfg.ProbeTimeoutNs
	maxNs := killAt + int64(cfg.ProbeMissLimit+2)*(cfg.HeartbeatTimeoutNs+cfg.ProbeTimeoutNs)
	if elapsed < minNs || elapsed > maxNs {
		t.Fatalf("detection took %d ns, want within [%d, %d]", elapsed, minNs, maxNs)
	}
}

// TestProbeFalseSuspicionVetoed: a burst that swallows enough consecutive
// probes drives the miss count to the limit while the peer is alive. The
// detector must veto the confirmation (counting the near-miss), and the
// stalled request must still complete once the network heals — fail-stop
// is never violated by a slow or lossy network.
func TestProbeFalseSuspicionVetoed(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 2
	cfg.Detection = model.DetectProbe
	// One-shot full loss for 10 ms from the start: several heartbeat+probe
	// rounds all miss.
	cfg.Chaos = model.Chaos{Enabled: true, Seed: 7,
		BurstStartNs: 0, BurstLenNs: 10_000_000, BurstSrc: -1, BurstDst: -1}
	eng := sim.New(cfg.Seed)
	net := New(eng, &cfg)
	net.Endpoint(1).SetHandler(func(d *Delivery) { d.Reply("pong", 8) })
	net.Endpoint(0).SetHandler(func(d *Delivery) {})
	var got any
	var rerr error
	eng.Spawn("caller", func(p *sim.Proc) {
		got, rerr = net.Endpoint(0).Request(p, 1, 16, "ping")
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if rerr != nil {
		t.Fatalf("request failed despite live peer: %v", rerr)
	}
	if got != "pong" {
		t.Fatalf("got %v, want pong", got)
	}
	if net.FalseSuspicions == 0 {
		t.Fatal("miss streak never reached the limit — burst did not stress the detector")
	}
	if net.ConfirmedDead(1) {
		t.Fatal("live node confirmed dead: fail-stop assumption violated")
	}
}

// TestJitterPreservesFIFO: heavy latency jitter must not reorder one
// sender's messages — per-sender FIFO is part of the VMMC contract and
// protocol invariants depend on it.
func TestJitterPreservesFIFO(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 2
	cfg.Chaos = model.Chaos{Enabled: true, Seed: 3, JitterNs: 500_000,
		BurstSrc: -1, BurstDst: -1} // jitter >> per-message drain spacing
	eng := sim.New(cfg.Seed)
	net := New(eng, &cfg)
	var got []int
	net.Endpoint(1).SetHandler(func(d *Delivery) { got = append(got, d.Payload.(int)) })
	net.Endpoint(0).SetHandler(func(d *Delivery) {})
	eng.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			net.Endpoint(0).Post(p, 1, 50, i)
		}
		net.Endpoint(0).Fence(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("delivered %d messages, want 50", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("jitter reordered deliveries: %v", got)
		}
	}
}

// TestChaosDeterministic: the same chaos configuration replays the same
// event sequence — identical final virtual time and identical counters.
func TestChaosDeterministic(t *testing.T) {
	run := func() (int64, int64, Stats) {
		cfg := model.Default()
		cfg.Nodes = 3
		cfg.Detection = model.DetectProbe
		cfg.Chaos = model.Chaos{Enabled: true, Seed: 21, JitterNs: 30_000,
			DegradePeriodNs: 500_000, DegradeLenNs: 100_000, DegradeFactor: 4,
			BurstStartNs: 200_000, BurstLenNs: 80_000, BurstPeriodNs: 900_000,
			BurstSrc: -1, BurstDst: -1, GrayNodes: []int{2}, GrayFactor: 5}
		eng := sim.New(cfg.Seed)
		net := New(eng, &cfg)
		for i := 0; i < 3; i++ {
			net.Endpoint(i).SetHandler(func(d *Delivery) {
				if d.NeedsReply() {
					d.Reply("r", 8)
				}
			})
		}
		eng.Spawn("caller", func(p *sim.Proc) {
			for i := 0; i < 20; i++ {
				net.Endpoint(0).Post(p, 1+i%2, 400, i)
				if _, err := net.Endpoint(0).Request(p, 1+i%2, 64, i); err != nil {
					t.Errorf("request %d: %v", i, err)
				}
			}
			net.Endpoint(0).Fence(p)
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return eng.Now(), net.RetxBytes, net.Endpoint(0).Stats()
	}
	t1, rb1, s1 := run()
	t2, rb2, s2 := run()
	if t1 != t2 || rb1 != rb2 || s1 != s2 {
		t.Fatalf("chaos replay diverged: now %d vs %d, retxBytes %d vs %d, stats %+v vs %+v",
			t1, t2, rb1, rb2, s1, s2)
	}
}

// TestGrayNodeSlowsItsNIC: a gray node's sends take measurably longer.
func TestGrayNodeSlowsItsNIC(t *testing.T) {
	deliveryAt := func(gray bool) int64 {
		cfg := model.Default()
		cfg.Nodes = 2
		if gray {
			cfg.Chaos = model.Chaos{Enabled: true, GrayNodes: []int{0}, GrayFactor: 8,
				BurstSrc: -1, BurstDst: -1}
		}
		eng := sim.New(1)
		net := New(eng, &cfg)
		var at int64
		net.Endpoint(1).SetHandler(func(d *Delivery) { at = eng.Now() })
		net.Endpoint(0).SetHandler(func(d *Delivery) {})
		eng.Spawn("sender", func(p *sim.Proc) {
			net.Endpoint(0).Post(p, 1, 4000, "page")
			net.Endpoint(0).Fence(p)
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return at
	}
	fast, slow := deliveryAt(false), deliveryAt(true)
	if slow <= 4*fast {
		t.Fatalf("gray NIC delivered at %d vs %d healthy — want a clear slowdown", slow, fast)
	}
}

// TestDegradeWindowSlowsBandwidth: inside a degradation window the DMA
// term grows by the configured factor.
func TestDegradeWindowSlowsBandwidth(t *testing.T) {
	deliveryAt := func(degrade bool) int64 {
		cfg := model.Default()
		cfg.Nodes = 2
		if degrade {
			// The window covers the whole (short) run.
			cfg.Chaos = model.Chaos{Enabled: true,
				DegradePeriodNs: 1 << 40, DegradeLenNs: 1 << 40, DegradeFactor: 10,
				BurstSrc: -1, BurstDst: -1}
		}
		eng := sim.New(1)
		net := New(eng, &cfg)
		var at int64
		net.Endpoint(1).SetHandler(func(d *Delivery) { at = eng.Now() })
		net.Endpoint(0).SetHandler(func(d *Delivery) {})
		eng.Spawn("sender", func(p *sim.Proc) {
			net.Endpoint(0).Post(p, 1, 4000, "page")
			net.Endpoint(0).Fence(p)
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return at
	}
	fast, slow := deliveryAt(false), deliveryAt(true)
	if slow <= 2*fast {
		t.Fatalf("degraded window delivered at %d vs %d healthy — want a clear slowdown", slow, fast)
	}
}

// TestOracleModeSendsNoProbes: the default detection mode must not emit
// any probe traffic (bit-compatibility with the seed's figure grid).
func TestOracleModeSendsNoProbes(t *testing.T) {
	eng, net, _ := testNet(2)
	eng.At(1_000_000, func() { net.Kill(1) })
	eng.Spawn("caller", func(p *sim.Proc) {
		net.Endpoint(0).Post(p, 1, 64, "x")
		net.Endpoint(0).Fence(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if net.ProbesSent != 0 || net.ProbeAcks != 0 {
		t.Fatalf("oracle mode sent %d probes / %d acks, want none", net.ProbesSent, net.ProbeAcks)
	}
}

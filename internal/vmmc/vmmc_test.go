package vmmc

import (
	"errors"
	"testing"

	"ftsvm/internal/model"
	"ftsvm/internal/sim"
)

func testNet(nodes int) (*sim.Engine, *Network, *model.Config) {
	cfg := model.Default()
	cfg.Nodes = nodes
	eng := sim.New(cfg.Seed)
	net := New(eng, &cfg)
	for i := 0; i < nodes; i++ {
		net.Endpoint(i).SetHandler(func(d *Delivery) {
			if d.NeedsReply() {
				d.Reply("ack", 8)
			}
		})
	}
	return eng, net, &cfg
}

func TestPostDelivers(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 2
	eng := sim.New(1)
	net := New(eng, &cfg)
	var got []any
	var at int64
	net.Endpoint(1).SetHandler(func(d *Delivery) {
		got = append(got, d.Payload)
		at = eng.Now()
	})
	net.Endpoint(0).SetHandler(func(d *Delivery) {})
	eng.Spawn("sender", func(p *sim.Proc) {
		net.Endpoint(0).Post(p, 1, 100, "hello")
		if err := net.Endpoint(0).Fence(p); err != nil {
			t.Errorf("Fence: %v", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "hello" {
		t.Fatalf("got %v", got)
	}
	// Delivery time = drain overhead + (100+header)/bandwidth + latency.
	wantMin := cfg.NICDrainOverheadNs + int64(float64(100+MsgHeaderBytes)*cfg.BandwidthNsPerByte) + cfg.LinkLatencyNs
	if at < wantMin {
		t.Fatalf("delivered at %d, want >= %d", at, wantMin)
	}
}

func TestFIFOPerSender(t *testing.T) {
	eng, net, _ := testNet(2)
	var got []int
	net.Endpoint(1).SetHandler(func(d *Delivery) { got = append(got, d.Payload.(int)) })
	eng.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			net.Endpoint(0).Post(p, 1, 50, i)
		}
		net.Endpoint(0).Fence(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("received %d messages", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestRequestReply(t *testing.T) {
	eng, net, _ := testNet(2)
	net.Endpoint(1).SetHandler(func(d *Delivery) {
		if !d.NeedsReply() {
			t.Error("request delivery did not need reply")
		}
		d.Reply(d.Payload.(int)*2, 8)
	})
	var got any
	eng.Spawn("caller", func(p *sim.Proc) {
		v, err := net.Endpoint(0).Request(p, 1, 16, 21)
		if err != nil {
			t.Errorf("Request: %v", err)
		}
		got = v
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("got %v, want 42", got)
	}
}

func TestDeferredReply(t *testing.T) {
	eng, net, _ := testNet(2)
	var pending *Delivery
	net.Endpoint(1).SetHandler(func(d *Delivery) { pending = d })
	eng.At(1_000_000, func() { pending.Reply("late", 8) })
	var got any
	eng.Spawn("caller", func(p *sim.Proc) {
		got, _ = net.Endpoint(0).Request(p, 1, 16, "q")
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "late" {
		t.Fatalf("got %v", got)
	}
}

func TestPostQueueBackPressure(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 2
	cfg.PostQueueDepth = 4
	eng := sim.New(1)
	net := New(eng, &cfg)
	net.Endpoint(1).SetHandler(func(d *Delivery) {})
	net.Endpoint(0).SetHandler(func(d *Delivery) {})
	var postDone int64
	eng.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < 32; i++ {
			net.Endpoint(0).Post(p, 1, 4000, i) // large messages, slow drain
		}
		postDone = p.Now()
		net.Endpoint(0).Fence(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if postDone == 0 {
		t.Fatal("sender never finished posting")
	}
	// With depth 4 and 32 slow messages the sender must have stalled.
	if st := net.Endpoint(0).Stats().PostStallsNs; st <= 0 {
		t.Fatalf("PostStallsNs = %d, want > 0", st)
	}
}

func TestFenceErrorOnDeadDestination(t *testing.T) {
	eng, net, _ := testNet(2)
	net.Kill(1)
	var ferr error
	eng.Spawn("sender", func(p *sim.Proc) {
		net.Endpoint(0).Post(p, 1, 100, "x")
		ferr = net.Endpoint(0).Fence(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(ferr, ErrNodeDead) {
		t.Fatalf("Fence error = %v, want ErrNodeDead", ferr)
	}
}

func TestFenceErrorConsumed(t *testing.T) {
	eng, net, _ := testNet(2)
	net.Kill(1)
	var e1, e2 error
	eng.Spawn("sender", func(p *sim.Proc) {
		net.Endpoint(0).Post(p, 1, 100, "x")
		e1 = net.Endpoint(0).Fence(p)
		e2 = net.Endpoint(0).Fence(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(e1, ErrNodeDead) || e2 != nil {
		t.Fatalf("e1=%v e2=%v, want error then nil", e1, e2)
	}
}

func TestRequestToDeadNodeErrors(t *testing.T) {
	eng, net, cfg := testNet(2)
	net.Kill(1)
	var rerr error
	var elapsed int64
	eng.Spawn("caller", func(p *sim.Proc) {
		t0 := p.Now()
		_, rerr = net.Endpoint(0).Request(p, 1, 16, "q")
		elapsed = p.Now() - t0
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(rerr, ErrNodeDead) {
		t.Fatalf("err = %v, want ErrNodeDead", rerr)
	}
	if elapsed > 10*cfg.HeartbeatTimeoutNs {
		t.Fatalf("detection took %d ns, want prompt", elapsed)
	}
}

func TestRequestWhenNodeDiesMidWait(t *testing.T) {
	eng, net, _ := testNet(2)
	// Node 1 never replies, then dies.
	net.Endpoint(1).SetHandler(func(d *Delivery) { /* hold the call forever */ })
	eng.At(5_000_000, func() { net.Kill(1) })
	var rerr error
	eng.Spawn("caller", func(p *sim.Proc) {
		_, rerr = net.Endpoint(0).Request(p, 1, 16, "q")
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(rerr, ErrNodeDead) {
		t.Fatalf("err = %v, want ErrNodeDead", rerr)
	}
}

func TestKillDropsQueuedMessagesButDeliversWireMessages(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 2
	cfg.PostQueueDepth = 64
	eng := sim.New(1)
	net := New(eng, &cfg)
	received := 0
	net.Endpoint(1).SetHandler(func(d *Delivery) { received++ })
	net.Endpoint(0).SetHandler(func(d *Delivery) {})
	eng.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			net.Endpoint(0).Post(p, 1, 4000, i)
		}
		// Die immediately after posting: only messages the NIC already
		// drained make it out.
		net.Kill(0)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if received >= 10 {
		t.Fatalf("all %d messages delivered despite sender death", received)
	}
}

func TestAliveOracle(t *testing.T) {
	_, net, _ := testNet(3)
	if !net.Alive(2) {
		t.Fatal("fresh node reported dead")
	}
	net.Kill(2)
	if net.Alive(2) {
		t.Fatal("killed node reported alive")
	}
	net.Kill(2) // idempotent
}

func TestStatsCounts(t *testing.T) {
	eng, net, _ := testNet(2)
	eng.Spawn("sender", func(p *sim.Proc) {
		net.Endpoint(0).Post(p, 1, 100, "a")
		net.Endpoint(0).Post(p, 1, 200, "b")
		net.Endpoint(0).Fence(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	s := net.Endpoint(0).Stats()
	if s.MsgsSent != 2 {
		t.Fatalf("MsgsSent = %d", s.MsgsSent)
	}
	if s.BytesSent != int64(300+2*MsgHeaderBytes) {
		t.Fatalf("BytesSent = %d", s.BytesSent)
	}
	if net.Endpoint(1).Stats().MsgsReceived != 2 {
		t.Fatalf("MsgsReceived = %d", net.Endpoint(1).Stats().MsgsReceived)
	}
}

func TestPostSystemBypassesDepthLimit(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 2
	cfg.PostQueueDepth = 1
	eng := sim.New(1)
	net := New(eng, &cfg)
	received := 0
	net.Endpoint(1).SetHandler(func(d *Delivery) { received++ })
	net.Endpoint(0).SetHandler(func(d *Delivery) {})
	// Enqueue many system messages from engine context: must not block.
	eng.At(0, func() {
		for i := 0; i < 20; i++ {
			net.Endpoint(0).PostSystem(1, 64, i)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if received != 20 {
		t.Fatalf("received %d system messages, want 20", received)
	}
}

func TestRequestAbort(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 2
	eng := sim.New(1)
	net := New(eng, &cfg)
	// Node 1 never replies.
	net.Endpoint(1).SetHandler(func(d *Delivery) {})
	net.Endpoint(0).SetHandler(func(d *Delivery) {})
	aborted := false
	eng.Spawn("caller", func(p *sim.Proc) {
		stop := false
		eng.At(3*cfg.HeartbeatTimeoutNs, func() { stop = true })
		_, err := net.Endpoint(0).RequestAbort(p, 1, 16, "q", func() bool { return stop })
		aborted = errors.Is(err, ErrAborted)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !aborted {
		t.Fatal("RequestAbort did not return ErrAborted")
	}
}

func TestInFlightTracking(t *testing.T) {
	eng, net, _ := testNet(2)
	var during, after int
	eng.Spawn("sender", func(p *sim.Proc) {
		net.Endpoint(0).Post(p, 1, 100, "x")
		during = net.Endpoint(0).InFlight()
		net.Endpoint(0).Fence(p)
		after = net.Endpoint(0).InFlight()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if during != 1 || after != 0 {
		t.Fatalf("InFlight during=%d after=%d", during, after)
	}
}

func TestEndpointID(t *testing.T) {
	_, net, _ := testNet(3)
	for i := 0; i < 3; i++ {
		if net.Endpoint(i).ID() != i {
			t.Fatalf("endpoint %d reports ID %d", i, net.Endpoint(i).ID())
		}
	}
}

// TestRetransmissionMasksTransientErrors drops every 3rd packet: the FIFO
// order and exactly-once delivery must survive, with only latency added
// (VMMC's reliability contract).
func TestRetransmissionMasksTransientErrors(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 2
	eng := sim.New(1)
	net := New(eng, &cfg)
	net.SetDropEveryNth(3)
	var got []int
	net.Endpoint(1).SetHandler(func(d *Delivery) { got = append(got, d.Payload.(int)) })
	net.Endpoint(0).SetHandler(func(d *Delivery) {})
	eng.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < 30; i++ {
			net.Endpoint(0).Post(p, 1, 64, i)
		}
		if err := net.Endpoint(0).Fence(p); err != nil {
			t.Errorf("Fence: %v", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 30 {
		t.Fatalf("delivered %d messages, want 30 (exactly once)", len(got))
	}
	if net.Retransmits == 0 {
		t.Fatal("no retransmissions recorded")
	}
	seen := map[int]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("duplicate delivery of %d", v)
		}
		seen[v] = true
	}
}

// TestRequestsSurviveDrops runs request/reply traffic over a lossy link.
func TestRequestsSurviveDrops(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 2
	eng := sim.New(1)
	net := New(eng, &cfg)
	net.SetDropEveryNth(2) // every other packet lost once
	net.Endpoint(1).SetHandler(func(d *Delivery) { d.Reply(d.Payload.(int)+1, 8) })
	net.Endpoint(0).SetHandler(func(d *Delivery) {})
	sum := 0
	eng.Spawn("caller", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			v, err := net.Endpoint(0).Request(p, 1, 16, i)
			if err != nil {
				t.Errorf("Request %d: %v", i, err)
				return
			}
			sum += v.(int)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if sum != 55 {
		t.Fatalf("sum = %d, want 55", sum)
	}
}

// TestDropEveryPacketOnce is the retransmission-livelock regression: with
// dropNth=1, every packet's *first* transmission is dropped. Before
// retransmissions were exempted from the drop counter, the retransmitted
// copy re-entered the same counter, was dropped again, and the simulation
// spun forever without advancing any payload. Now each message is dropped
// exactly once and delivered on its retransmission.
func TestDropEveryPacketOnce(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 2
	eng := sim.New(1)
	net := New(eng, &cfg)
	net.SetDropEveryNth(1)
	var got []int
	net.Endpoint(1).SetHandler(func(d *Delivery) { got = append(got, d.Payload.(int)) })
	net.Endpoint(0).SetHandler(func(d *Delivery) {})
	eng.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			net.Endpoint(0).Post(p, 1, 64, i)
		}
		if err := net.Endpoint(0).Fence(p); err != nil {
			t.Errorf("Fence: %v", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("delivered %d messages, want 10", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order or duplicated: %v", got)
		}
	}
	if net.Retransmits != 10 {
		t.Fatalf("Retransmits = %d, want exactly 10 (each packet dropped once)", net.Retransmits)
	}
}

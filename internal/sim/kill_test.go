package sim

import (
	"errors"
	"testing"
)

// TestKillWhileRunningUnwindsAtPark is the minimized regression for a
// deadlock found by failure-point exploration: a process killed from its
// own execution context (the failure injected while it was RUNNING, e.g.
// at its own message-send boundary) used to defer death to the next
// resume. If the wait it then entered had no wake source — a reply to a
// request that died in the killed node's own post queue — the process
// blocked forever and the run ended in a false deadlock. The kill must
// take effect at park entry instead.
func TestKillWhileRunningUnwindsAtPark(t *testing.T) {
	eng := New(1)
	g := &Gate{} // never broadcast: the wait has no wake source
	unwound := false
	eng.Spawn("victim", func(p *Proc) {
		defer func() {
			unwound = true
			if r := recover(); r != nil {
				panic(r) // preserve the engine's kill sentinel
			}
		}()
		p.Kill()  // failure injected from the process's own context
		g.Wait(p) // would block forever if the kill were deferred
		t.Error("victim survived its own kill")
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("Run = %v, want clean completion", err)
	}
	if !unwound {
		t.Fatal("victim never unwound")
	}
}

// TestKillWhileRunningStillRunsDefers: the park-entry unwind must travel
// the normal panic path so the victim's deferred cleanups run.
func TestKillWhileRunningStillRunsDefers(t *testing.T) {
	eng := New(1)
	g := &Gate{}
	order := []string{}
	eng.Spawn("victim", func(p *Proc) {
		defer func() { order = append(order, "outer") }()
		defer func() { order = append(order, "inner") }()
		p.Kill()
		g.Wait(p)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "inner" || order[1] != "outer" {
		t.Fatalf("defer order = %v", order)
	}
}

// TestProcPanicSurfacesOnRunCaller: a panic in a process body must
// re-raise on the goroutine that called Run — where a failure harness
// can recover it — naming the process, instead of crashing the process
// goroutine while the engine runs on.
func TestProcPanicSurfacesOnRunCaller(t *testing.T) {
	eng := New(1)
	eng.Spawn("bomber", func(p *Proc) {
		p.Advance(1000)
		panic("boom")
	})
	var got *ProcPanic
	func() {
		defer func() {
			r := recover()
			pp, ok := r.(*ProcPanic)
			if !ok {
				t.Fatalf("recovered %v (%T), want *ProcPanic", r, r)
			}
			got = pp
		}()
		eng.Run()
		t.Error("Run returned instead of panicking")
	}()
	if got.Proc != "bomber" || got.Value != "boom" {
		t.Fatalf("ProcPanic = {%q %v}", got.Proc, got.Value)
	}
}

// TestEventBudgetBoundsRun: an endless process trips the event budget
// with a typed, deterministic error instead of spinning forever. The
// failure explorer relies on this to classify livelocks.
func TestEventBudgetBoundsRun(t *testing.T) {
	eng := New(1)
	eng.SetEventBudget(500)
	eng.Spawn("spinner", func(p *Proc) {
		for {
			p.Advance(1000)
		}
	})
	err := eng.Run()
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("Run = %v, want *BudgetError", err)
	}
	if be.Executed < 500 {
		t.Fatalf("budget tripped after %d events, want >= 500", be.Executed)
	}
}

package sim

// Future is a one-shot value that processes can block on. A Future is
// created in the pending state and becomes done exactly once, via Resolve
// or Fail. Futures must be manipulated from engine or process context.
type Future struct {
	eng     *Engine
	done    bool
	val     any
	err     error
	waiters []waiter
	// w0 backs the first waiter inline: nearly every future is awaited by
	// exactly one process, so the common case needs no separate slice
	// allocation.
	w0 [1]waiter
}

// addWaiter appends w, seeding the slice from the inline buffer on first use.
func (f *Future) addWaiter(w waiter) {
	if f.waiters == nil {
		f.waiters = f.w0[:0]
	}
	f.waiters = append(f.waiters, w)
}

type waiter struct {
	p   *Proc
	gen uint64
}

// NewFuture returns a pending future bound to the engine.
func (e *Engine) NewFuture() *Future { return &Future{eng: e} }

// InitFuture resets f to a pending future bound to the engine. It lets a
// future be embedded by value inside a caller's own struct, saving the
// separate allocation NewFuture would make.
func (e *Engine) InitFuture(f *Future) { *f = Future{eng: e} }

// Done reports whether the future has been resolved or failed.
func (f *Future) Done() bool { return f.done }

// Value returns the resolution value and error. Only meaningful once Done.
func (f *Future) Value() (any, error) { return f.val, f.err }

// Resolve completes the future successfully and wakes all waiters.
// Resolving a done future panics: a one-shot completing twice is a
// protocol bug that must not be masked.
func (f *Future) Resolve(v any) { f.complete(v, nil) }

// Fail completes the future with an error and wakes all waiters.
func (f *Future) Fail(err error) { f.complete(nil, err) }

func (f *Future) complete(v any, err error) {
	if f.done {
		panic("sim: future completed twice")
	}
	f.done = true
	f.val = v
	f.err = err
	for _, w := range f.waiters {
		w.p.wakeIf(w.gen)
	}
	f.waiters = nil
}

// Await blocks the process until the future completes and returns its
// value and error.
func (p *Proc) Await(f *Future) (any, error) {
	for !f.done {
		gen := p.prepareSleep()
		f.addWaiter(waiter{p, gen})
		p.doSleep()
	}
	return f.val, f.err
}

// AwaitTimeout blocks until the future completes or d nanoseconds elapse.
// The third result is false if the wait timed out; the future remains
// usable and may still complete later.
func (p *Proc) AwaitTimeout(f *Future, d int64) (any, error, bool) {
	if f.done {
		return f.val, f.err, true
	}
	gen := p.prepareSleep()
	f.addWaiter(waiter{p, gen})
	p.eng.wakeAt(d, p, gen)
	p.doSleep()
	if !f.done {
		return nil, nil, false
	}
	return f.val, f.err, true
}

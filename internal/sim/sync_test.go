package sim

import "testing"

func TestGateWaitTimeoutTimesOut(t *testing.T) {
	e := New(1)
	var g Gate
	var woken bool
	var at int64
	e.Spawn("w", func(p *Proc) {
		woken = g.WaitTimeout(p, 500)
		at = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woken {
		t.Fatal("reported woken without a Broadcast")
	}
	if at != 500 {
		t.Fatalf("timed out at %d, want 500", at)
	}
	if g.Waiting() != 0 {
		t.Fatal("stale waiter entry left after timeout")
	}
}

func TestGateWaitTimeoutWoken(t *testing.T) {
	e := New(1)
	var g Gate
	var woken bool
	e.Spawn("w", func(p *Proc) {
		woken = g.WaitTimeout(p, 10_000)
	})
	e.At(100, func() { g.Broadcast() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !woken {
		t.Fatal("broadcast not reported as wake")
	}
}

func TestGateBroadcastAfterTimeoutHarmless(t *testing.T) {
	e := New(1)
	var g Gate
	rounds := 0
	e.Spawn("w", func(p *Proc) {
		g.WaitTimeout(p, 100) // times out
		rounds++
		g.WaitTimeout(p, 10_000) // woken by the late broadcast
		rounds++
	})
	e.At(5_000, func() { g.Broadcast() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if rounds != 2 {
		t.Fatalf("rounds = %d", rounds)
	}
}

func TestMutexTryLock(t *testing.T) {
	e := New(1)
	var m Mutex
	e.Spawn("a", func(p *Proc) {
		if !m.TryLock(p) {
			t.Error("TryLock on free mutex failed")
		}
		p.Advance(100)
		m.Unlock()
	})
	e.Spawn("b", func(p *Proc) {
		p.Advance(10)
		if m.TryLock(p) {
			t.Error("TryLock on held mutex succeeded")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMutexUnlockUnlockedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	var m Mutex
	m.Unlock()
}

func TestFutureDoubleResolvePanics(t *testing.T) {
	e := New(1)
	f := e.NewFuture()
	f.Resolve(1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on double resolve")
		}
	}()
	f.Resolve(2)
}

func TestEngineRandDeterministic(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 16; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("engine RNG not seed-deterministic")
		}
	}
}

func TestAtNegativeDelayClamped(t *testing.T) {
	e := New(1)
	ran := false
	e.At(-100, func() {
		ran = true
		if e.Now() != 0 {
			t.Errorf("negative delay ran at t=%d", e.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("callback never ran")
	}
}

func TestSemaphoreAvailable(t *testing.T) {
	s := NewSemaphore(3)
	if s.Available() != 3 {
		t.Fatalf("Available = %d", s.Available())
	}
	e := New(1)
	e.Spawn("p", func(p *Proc) {
		s.Acquire(p)
		s.Acquire(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Available() != 1 {
		t.Fatalf("Available after 2 acquires = %d", s.Available())
	}
	s.Release()
	if s.Available() != 2 {
		t.Fatalf("Available after release = %d", s.Available())
	}
}

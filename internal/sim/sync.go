package sim

// Mutex is a FIFO mutual-exclusion lock for simulated processes. Because
// processes run one at a time, a Mutex is only needed to protect invariants
// across *blocking* calls (Advance, Await, network operations), not against
// data races.
type Mutex struct {
	locked bool
	holder *Proc
	queue  []waiter
}

// Lock blocks p until the mutex is available, with FIFO fairness.
func (m *Mutex) Lock(p *Proc) {
	for m.locked {
		gen := p.prepareSleep()
		m.queue = append(m.queue, waiter{p, gen})
		p.doSleep()
	}
	m.locked = true
	m.holder = p
}

// TryLock acquires the mutex if it is free and reports whether it did.
func (m *Mutex) TryLock(p *Proc) bool {
	if m.locked {
		return false
	}
	m.locked = true
	m.holder = p
	return true
}

// Unlock releases the mutex and wakes the longest-waiting process, if any.
func (m *Mutex) Unlock() {
	if !m.locked {
		panic("sim: unlock of unlocked Mutex")
	}
	m.locked = false
	m.holder = nil
	if len(m.queue) > 0 {
		w := m.queue[0]
		// Slide down in place rather than re-slicing: m.queue[1:] would
		// strand the backing array's head and force append to reallocate.
		copy(m.queue, m.queue[1:])
		m.queue = m.queue[:len(m.queue)-1]
		w.p.wakeIf(w.gen)
	}
}

// Holder returns the process currently holding the mutex, or nil.
func (m *Mutex) Holder() *Proc { return m.holder }

// Gate is a broadcast condition: processes Wait on it and a Broadcast wakes
// every current waiter. There is no lost-wakeup hazard in the cooperative
// model as long as callers re-check their predicate in a loop.
type Gate struct {
	waiters []waiter
	scratch []waiter // Broadcast's working copy; retains capacity across wakes
}

// Wait parks p until the next Broadcast.
func (g *Gate) Wait(p *Proc) {
	gen := p.prepareSleep()
	g.waiters = append(g.waiters, waiter{p, gen})
	p.doSleep()
}

// WaitTimeout parks p until the next Broadcast or until d nanoseconds
// elapse, and reports whether it was woken by a Broadcast.
func (g *Gate) WaitTimeout(p *Proc, d int64) bool {
	gen := p.prepareSleep()
	g.waiters = append(g.waiters, waiter{p, gen})
	p.eng.wakeAt(d, p, gen)
	p.doSleep()
	// A Broadcast removes every entry it wakes; if ours is still present,
	// the timeout fired first.
	for _, w := range g.waiters {
		if w.p == p && w.gen == gen {
			g.remove(p, gen)
			return false
		}
	}
	return true
}

func (g *Gate) remove(p *Proc, gen uint64) {
	for i, w := range g.waiters {
		if w.p == p && w.gen == gen {
			g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
			return
		}
	}
}

// Broadcast wakes every process currently waiting on the gate.
func (g *Gate) Broadcast() {
	// Copy to scratch first: a woken process may Wait again (re-appending
	// to g.waiters) before this loop finishes. Both slices keep their
	// capacity, so steady-state broadcasts allocate nothing.
	g.scratch = append(g.scratch[:0], g.waiters...)
	g.waiters = g.waiters[:0]
	for _, w := range g.scratch {
		w.p.wakeIf(w.gen)
	}
}

// Waiting returns the number of processes parked on the gate.
func (g *Gate) Waiting() int { return len(g.waiters) }

// Semaphore is a counting semaphore with FIFO wakeup, used to model bounded
// resources such as NIC post queues.
type Semaphore struct {
	avail int
	queue []waiter
}

// NewSemaphore returns a semaphore with n initial permits.
func NewSemaphore(n int) *Semaphore { return &Semaphore{avail: n} }

// Acquire takes one permit, blocking p until one is available.
func (s *Semaphore) Acquire(p *Proc) {
	for s.avail <= 0 {
		gen := p.prepareSleep()
		s.queue = append(s.queue, waiter{p, gen})
		p.doSleep()
	}
	s.avail--
}

// Release returns one permit and wakes the longest-waiting process, if any.
func (s *Semaphore) Release() {
	s.avail++
	if len(s.queue) > 0 {
		w := s.queue[0]
		copy(s.queue, s.queue[1:])
		s.queue = s.queue[:len(s.queue)-1]
		w.p.wakeIf(w.gen)
	}
}

// Available returns the number of free permits.
func (s *Semaphore) Available() int { return s.avail }

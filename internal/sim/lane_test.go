package sim

import (
	"errors"
	"fmt"
	"testing"
)

// laneApp runs a small cross-lane workload — N node processes that
// advance, draw randomness, and post to each other with wire latency L —
// and returns its observable trace: per-node step logs (virtual times and
// destinations chosen by RNG draws), plus a tail line with the final
// engine state. Per-node logs are lane-local, so they are valid
// observables under the parallel engine; the tail's post-run RNG draw
// pins the canonical draw sequence.
func laneApp(t *testing.T, workers int, nodes, steps int, seed int64) []string {
	t.Helper()
	const L = 8000
	e := New(seed)
	for i := 0; i < nodes; i++ {
		e.Lane(i)
	}
	if workers > 0 {
		e.Parallel(workers, L)
	}
	perNode := make([][]string, nodes)
	inbox := make([]int, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		ln := e.Lane(i)
		e.SpawnOn(ln, fmt.Sprintf("n%d", i), func(p *Proc) {
			for s := 0; s < steps; s++ {
				p.Advance(p.Int63n(5000) + 1)
				dst := (i + 1 + int(p.Int63n(int64(nodes-1)))) % nodes
				to := e.Lane(dst)
				ln.Post(to, L+p.Int63n(2000), func() {
					inbox[dst]++
				})
				perNode[i] = append(perNode[i], fmt.Sprintf("s%d t=%d -> n%d", s, p.Now(), dst))
				p.Advance(1000)
			}
			perNode[i] = append(perNode[i], fmt.Sprintf("done t=%d", p.Now()))
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("run (workers=%d): %v", workers, err)
	}
	var trace []string
	for i, lines := range perNode {
		for _, l := range lines {
			trace = append(trace, fmt.Sprintf("n%d %s", i, l))
		}
	}
	trace = append(trace, fmt.Sprintf("executed=%d rand=%d inbox=%v", e.Events(), e.Rand().Int63(), inbox))
	return trace
}

// TestParallelDeterminism checks that the parallel engine's observable
// trace — per-process timestamps, RNG draw sequence, delivery counts, and
// total executed events — is bit-identical to the serial engine's for
// several worker counts and seeds.
func TestParallelDeterminism(t *testing.T) {
	for _, nodes := range []int{2, 3, 5} {
		for seed := int64(1); seed <= 5; seed++ {
			want := laneApp(t, 0, nodes, 40, seed)
			for _, workers := range []int{1, 2, 4} {
				got := laneApp(t, workers, nodes, 40, seed)
				if len(got) != len(want) {
					t.Fatalf("nodes=%d seed=%d workers=%d: trace length %d != serial %d",
						nodes, seed, workers, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("nodes=%d seed=%d workers=%d: trace[%d] = %q, serial %q",
							nodes, seed, workers, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestParallelHorizonEdges pins the window-boundary cases: an event
// scheduled exactly at the horizon must wait for the next window, a
// zero-delay event created in-window runs in the same window, and
// simultaneous cross-lane posts commit in seq order.
func TestParallelHorizonEdges(t *testing.T) {
	const L = 1000
	cases := []struct {
		name string
		body func(e *Engine, out *[]string)
	}{
		{
			// Lane 1 holds an event exactly at lane 0's head + L — the
			// first instant a cross-lane post from lane 0 can land. The
			// serial order (t ascending, then creation order) must hold.
			name: "event exactly at horizon",
			body: func(e *Engine, out *[]string) {
				l0, l1 := e.Lane(0), e.Lane(1)
				l0.At(0, func() {
					*out = append(*out, "l0@0")
					l0.Post(l1, L, func() { *out = append(*out, "l1@post") })
				})
				l1.At(L, func() { *out = append(*out, "l1@L") })
			},
		},
		{
			// Zero-delay events created during a window execute within it,
			// after every due heap event, in creation order.
			name: "zero-delay now-queue in window",
			body: func(e *Engine, out *[]string) {
				l0, l1 := e.Lane(0), e.Lane(1)
				l0.At(0, func() {
					*out = append(*out, "a")
					l0.At(0, func() { *out = append(*out, "c") })
					l0.At(0, func() { *out = append(*out, "d") })
					*out = append(*out, "b")
				})
				l1.At(3*L, func() { *out = append(*out, "l1") })
			},
		},
		{
			// Two lanes post into a third at the same instant: commit
			// order is creation (seq) order — lane 0's post first, because
			// its creating event has the smaller seq.
			name: "simultaneous cross-lane posts",
			body: func(e *Engine, out *[]string) {
				l0, l1, l2 := e.Lane(0), e.Lane(1), e.Lane(2)
				l0.At(0, func() { l0.Post(l2, L, func() { *out = append(*out, "from0") }) })
				l1.At(0, func() { l1.Post(l2, L, func() { *out = append(*out, "from1") }) })
				l2.At(2*L, func() { *out = append(*out, "l2@2L") })
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serial := New(7)
			serial.Lane(2)
			var wantOut []string
			tc.body(serial, &wantOut)
			if err := serial.Run(); err != nil {
				t.Fatalf("serial run: %v", err)
			}
			want := fmt.Sprintf("%v", wantOut)
			for _, workers := range []int{1, 2} {
				e := New(7)
				e.Lane(2)
				e.Parallel(workers, L)
				var gotOut []string
				tc.body(e, &gotOut)
				if err := e.Run(); err != nil {
					t.Fatalf("parallel run (workers=%d): %v", workers, err)
				}
				if got := fmt.Sprintf("%v", gotOut); got != want {
					t.Fatalf("workers=%d: order %s, serial %s", workers, got, want)
				}
			}
		})
	}
}

// The horizon-edge cases above write to one shared slice from multiple
// lanes. That is legal only because each case's appends are separated by
// at least the lookahead in virtual time or confined to one lane per
// window — the cases pin commit-order semantics, not a concurrency idiom.

// TestParallelIdleLaneReactivity pins the idle-lane horizon bound: a
// lane whose own next event is far in the future (here lane 1, parked at
// 50000) can still be handed work by an earlier lane and react, so other
// lanes must not race past the reaction's arrival. The requester on lane
// 0 bounces a message off lane 1 (out at +L, reply at +2L) while polling
// a future on a short timeout; if lane 0's horizon wrongly stretched to
// lane 1's parked event, it would burn through timeout wakes far past
// the reply's serial arrival before the bounce could commit and release.
func TestParallelIdleLaneReactivity(t *testing.T) {
	const L = 1000
	run := func(workers int) string {
		e := New(3)
		e.Lane(1)
		if workers > 0 {
			e.Parallel(workers, L)
		}
		l0, l1 := e.Lane(0), e.Lane(1)
		var fut Future
		e.InitFuture(&fut)
		var log string
		e.SpawnOn(l0, "requester", func(p *Proc) {
			p.Advance(5000)
			l0.Post(l1, L, func() {
				l1.Post(l0, L, func() { fut.Resolve(nil) })
			})
			for {
				_, _, ok := p.AwaitTimeout(&fut, 300)
				if ok {
					log += fmt.Sprintf("done@%d", p.Now())
					return
				}
				log += fmt.Sprintf("to@%d ", p.Now())
			}
		})
		l1.At(50000, func() {})
		if err := e.Run(); err != nil {
			t.Fatalf("run (workers=%d): %v", workers, err)
		}
		return log
	}
	want := run(0)
	for _, workers := range []int{1, 2} {
		if got := run(workers); got != want {
			t.Fatalf("workers=%d: trace %q, serial %q", workers, got, want)
		}
	}
}

// TestParallelWithheldSelfOp pins same-lane ordering against deferred
// self-ops: an event a lane schedules for itself beyond its window
// horizon (here the sender-side "outcome" half of each request, modeled
// after a NIC completing its fence accounting one wire latency after the
// transmit) is withheld until its creating record commits, and the lane
// must not meanwhile execute other heap events past the withheld time.
// Two peers run skewed request/reply ping-pong — each request is a
// cross-lane post paired with a same-lane companion at the same arrival
// instant, and the requester polls its reply future on a short timeout,
// interleaving timer wakes with the withheld companions. A horizon that
// ignored the lane's own withheld ops resumes processes late, shifting
// the logged timestamps.
func TestParallelWithheldSelfOp(t *testing.T) {
	const L = 1000
	run := func(workers int) string {
		e := New(9)
		e.Lane(1)
		if workers > 0 {
			e.Parallel(workers, L)
		}
		logs := make([]string, 2)
		outcomes := make([]int, 2)
		for i := 0; i < 2; i++ {
			i := i
			self, peer := e.Lane(i), e.Lane(1-i)
			e.SpawnOn(self, fmt.Sprintf("peer%d", i), func(p *Proc) {
				p.Advance(int64(1 + i*3700))
				for r := 0; r < 12; r++ {
					var fut Future
					e.InitFuture(&fut)
					// Request: delivery to the peer plus a same-lane
					// companion at the same instant (the vmmc outcome
					// shape); the peer's handler replies the same way.
					d := L + int64(r%3)*700
					self.Post(peer, d, func() {
						peer.Post(self, L, func() { fut.Resolve(nil) })
						peer.At(L, func() { outcomes[1-i]++ })
					})
					self.At(d, func() { outcomes[i]++ })
					for {
						_, _, ok := p.AwaitTimeout(&fut, 450)
						if ok {
							break
						}
						logs[i] += fmt.Sprintf("to@%d ", p.Now())
					}
					logs[i] += fmt.Sprintf("r%d@%d ", r, p.Now())
					p.Advance(int64(100 + (r%5)*800))
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatalf("run (workers=%d): %v", workers, err)
		}
		return fmt.Sprintf("%s| %s| out=%v", logs[0], logs[1], outcomes)
	}
	want := run(0)
	for _, workers := range []int{1, 2, 4} {
		if got := run(workers); got != want {
			t.Fatalf("workers=%d:\n got %q\nwant %q", workers, got, want)
		}
	}
}

// TestParallelProcPanic checks that a panic in a process under the
// parallel engine surfaces on Run's caller as a ProcPanic naming the
// process, like the serial engine.
func TestParallelProcPanic(t *testing.T) {
	e := New(1)
	e.Lane(1)
	e.Parallel(2, 1000)
	e.SpawnOn(e.Lane(0), "ok", func(p *Proc) { p.Advance(5000) })
	e.SpawnOn(e.Lane(1), "boom", func(p *Proc) {
		p.Advance(2000)
		panic("exploded")
	})
	defer func() {
		r := recover()
		pp, ok := r.(*ProcPanic)
		if !ok {
			t.Fatalf("recovered %v (%T), want *ProcPanic", r, r)
		}
		if pp.Proc != "boom" || pp.Value != "exploded" {
			t.Fatalf("ProcPanic = {%s %v}", pp.Proc, pp.Value)
		}
	}()
	_ = e.Run()
	t.Fatalf("Run returned without panicking")
}

// TestParallelDeadlock checks deadlock detection across lanes.
func TestParallelDeadlock(t *testing.T) {
	e := New(1)
	e.Lane(1)
	e.Parallel(2, 1000)
	var g Gate
	e.SpawnOn(e.Lane(0), "waiter", func(p *Proc) { g.Wait(p) })
	e.SpawnOn(e.Lane(1), "runner", func(p *Proc) { p.Advance(3000) })
	err := e.Run()
	var d *DeadlockError
	if !errors.As(err, &d) {
		t.Fatalf("Run = %v, want DeadlockError", err)
	}
	if len(d.Procs) != 1 || d.Procs[0] != "waiter" {
		t.Fatalf("blocked procs = %v", d.Procs)
	}
}

//go:build stress

package sim

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
)

// Stress harness for the rare parallel-engine determinism flake
// (ROADMAP: the -workers 4 BENCH_PR1 gate very occasionally drifting
// 1-2 µs under heavy host load, invisible to -race and to uncontended
// repeats). The window needs three ingredients this file manufactures
// deterministically:
//
//   - CPU contention: busy-spinner goroutines oversubscribe every P, so
//     lane workers get descheduled mid-window at arbitrary points;
//   - same-timestamp collisions: the workload advances in coarse
//     quanta, so cross-lane events tie on t constantly and the commit
//     pass's (t, seq) seating order actually matters;
//   - RNG suspension: every step draws, exercising the feed-and-resume
//     path where a lane re-enters its window on the commit goroutine.
//
// Each repeat compares the full observable trace against a serial
// reference; the commit pass's always-on order assertion (lane.go)
// additionally turns any out-of-order seating into a loud panic with
// coordinates rather than a silent µs drift.
//
// Run with:
//
//	go test -tags stress ./internal/sim/ -run Stress -v
//
// Tunables (env): SIM_STRESS_REPEATS (default 30), SIM_STRESS_CONC
// (concurrent engines per batch, default 4), SIM_STRESS_GOMAXPROCS
// (default: runtime.NumCPU, pinned for the whole test).
func TestParallelCommitStress(t *testing.T) {
	repeats := envInt("SIM_STRESS_REPEATS", 30)
	conc := envInt("SIM_STRESS_CONC", 4)
	procs := envInt("SIM_STRESS_GOMAXPROCS", runtime.NumCPU())
	old := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(old)

	// Oversubscribe every P with spinners so lane workers are preempted
	// mid-window. The atomic load keeps the loop from being optimized
	// away; stop is checked so the spinners exit with the test.
	var stop atomic.Bool
	defer stop.Store(true)
	for i := 0; i < 2*procs; i++ {
		go func() {
			var sink uint64
			for !stop.Load() {
				sink += atomic.LoadUint64(&spinFuel)
			}
			atomic.AddUint64(&spinFuel, sink&1)
		}()
	}

	const nodes, steps = 6, 80
	for seed := int64(1); seed <= 3; seed++ {
		want := stressApp(t, 0, nodes, steps, seed)
		for batch := 0; batch < (repeats+conc-1)/conc; batch++ {
			var wg sync.WaitGroup
			traces := make([][]string, conc)
			for c := 0; c < conc; c++ {
				c := c
				wg.Add(1)
				go func() {
					defer wg.Done()
					traces[c] = stressApp(t, 4, nodes, steps, seed)
				}()
			}
			wg.Wait()
			for c, got := range traces {
				if d := firstDiff(want, got); d >= 0 {
					t.Fatalf("seed=%d batch=%d engine=%d: trace diverges at line %d:\n  serial:   %s\n  parallel: %s",
						seed, batch, c, d, line(want, d), line(got, d))
				}
			}
		}
	}
}

var spinFuel uint64

// stressApp is laneApp's contention-shaped sibling: advances are
// multiples of a coarse quantum so cross-lane events tie on t, every
// step draws twice (destination and payload delay), and posts land
// exactly at multiples of the wire latency. Observables are lane-local
// logs plus the final engine state and a post-run draw, as in laneApp.
func stressApp(t *testing.T, workers int, nodes, steps int, seed int64) []string {
	t.Helper()
	const L = 8000
	const quantum = 2000
	e := New(seed)
	for i := 0; i < nodes; i++ {
		e.Lane(i)
	}
	if workers > 0 {
		e.Parallel(workers, L)
	}
	perNode := make([][]string, nodes)
	inbox := make([]int, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		ln := e.Lane(i)
		e.SpawnOn(ln, fmt.Sprintf("n%d", i), func(p *Proc) {
			for s := 0; s < steps; s++ {
				p.Advance(quantum * (p.Int63n(3) + 1))
				dst := (i + 1 + int(p.Int63n(int64(nodes-1)))) % nodes
				to := e.Lane(dst)
				ln.Post(to, L+quantum*p.Int63n(2), func() {
					inbox[dst]++
				})
				perNode[i] = append(perNode[i], fmt.Sprintf("s%d t=%d -> n%d", s, p.Now(), dst))
			}
			perNode[i] = append(perNode[i], fmt.Sprintf("done t=%d", p.Now()))
		})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("run (workers=%d): %v", workers, err)
	}
	var trace []string
	for i, lines := range perNode {
		for _, l := range lines {
			trace = append(trace, fmt.Sprintf("n%d %s", i, l))
		}
	}
	trace = append(trace, fmt.Sprintf("executed=%d rand=%d inbox=%v", e.Events(), e.Rand().Int63(), inbox))
	return trace
}

func firstDiff(a, b []string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	if len(a) != len(b) {
		return n
	}
	return -1
}

func line(tr []string, i int) string {
	if i < len(tr) {
		return tr[i]
	}
	return "<missing>"
}

func envInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return def
}

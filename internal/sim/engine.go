// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine owns a virtual clock and an event heap. Simulated activities
// run either as plain callbacks (executed inline in the engine goroutine)
// or as processes: goroutines that execute one at a time, hand-shaken with
// the scheduler, so that a simulation with any number of processes is fully
// deterministic for a given seed.
//
// All times are virtual nanoseconds.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
)

// Engine is a deterministic discrete-event scheduler. Create one with New,
// add processes with Spawn and callbacks with At, then call Run.
//
// Engine is not safe for concurrent use from arbitrary goroutines: all
// interaction must happen either from process context (inside a function
// started by Spawn) or from engine context (inside an At callback).
type Engine struct {
	now    int64
	seq    uint64
	events eventHeap
	rng    *rand.Rand

	live    int // spawned, not yet finished processes
	yield   chan struct{}
	current *Proc
	blocked map[*Proc]struct{}

	stopped bool
}

type event struct {
	t   int64
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// New returns an engine whose random source is seeded with seed.
func New(seed int64) *Engine {
	return &Engine{
		rng:   rand.New(rand.NewSource(seed)),
		yield: make(chan struct{}),
	}
}

// Now returns the current virtual time in nanoseconds.
func (e *Engine) Now() int64 { return e.now }

// Rand returns the engine's deterministic random source. It must only be
// used from process or engine context.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn to run in engine context after delay nanoseconds.
// A negative delay is treated as zero.
func (e *Engine) At(delay int64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	heap.Push(&e.events, event{t: e.now + delay, seq: e.seq, fn: fn})
}

// Stop makes Run return after the current event completes. Pending events
// are discarded.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until none remain or Stop is called. It returns a
// DeadlockError if processes are still blocked when the event heap drains.
func (e *Engine) Run() error {
	for len(e.events) > 0 && !e.stopped {
		ev := heap.Pop(&e.events).(event)
		if ev.t > e.now {
			e.now = ev.t
		}
		ev.fn()
	}
	if e.stopped {
		return nil
	}
	if e.live > 0 {
		return e.deadlock()
	}
	return nil
}

// DeadlockError reports processes that were still blocked when the event
// heap drained.
type DeadlockError struct {
	Time  int64
	Procs []string
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%dns, %d blocked: %v", d.Time, len(d.Procs), d.Procs)
}

func (e *Engine) deadlock() error {
	var names []string
	for p := range e.blocked {
		names = append(names, p.name)
	}
	sort.Strings(names)
	return &DeadlockError{Time: e.now, Procs: names}
}

// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine owns a virtual clock and an event heap. Simulated activities
// run either as plain callbacks (executed inline in the engine goroutine)
// or as processes: goroutines that execute one at a time, hand-shaken with
// the scheduler, so that a simulation with any number of processes is fully
// deterministic for a given seed.
//
// All times are virtual nanoseconds.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
)

// Engine is a deterministic discrete-event scheduler. Create one with New,
// add processes with Spawn and callbacks with At, then call Run.
//
// Engine is not safe for concurrent use from arbitrary goroutines: all
// interaction must happen either from process context (inside a function
// started by Spawn) or from engine context (inside an At callback).
type Engine struct {
	now    int64
	seq    uint64
	events eventHeap
	rng    *rand.Rand

	live    int // spawned, not yet finished processes
	yield   chan struct{}
	current *Proc
	blocked map[*Proc]struct{}

	stopped    bool
	afterEvent func()
}

type event struct {
	t   int64
	seq uint64
	fn  func()
}

// before is the total event order: time, then schedule order. seq is
// unique, so the order is strict and any min-heap pops events in exactly
// the same sequence — determinism does not depend on heap shape.
func (a *event) before(b *event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// eventHeap is a 4-ary min-heap specialized to event. A Figure-7 run
// pops millions of events, so the generic container/heap (interface
// boxing on every Push/Pop, indirect Less/Swap calls) is replaced with
// inlined sifts. The 4-ary shape halves the tree depth of a binary heap,
// trading slightly more comparisons per level for far fewer cache-missing
// levels — the winning trade for the simulator's small, hot events.
type eventHeap struct {
	a []event
}

func (h *eventHeap) len() int { return len(h.a) }

func (h *eventHeap) push(e event) {
	h.a = append(h.a, e)
	// Sift up.
	a := h.a
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !a[i].before(&a[p]) {
			break
		}
		a[i], a[p] = a[p], a[i]
		i = p
	}
}

func (h *eventHeap) pop() event {
	a := h.a
	top := a[0]
	last := len(a) - 1
	a[0] = a[last]
	a[last] = event{} // release the fn reference for the GC
	h.a = a[:last]
	a = h.a
	// Sift down.
	i := 0
	for {
		min := i
		c := i*4 + 1
		end := c + 4
		if end > last {
			end = last
		}
		for ; c < end; c++ {
			if a[c].before(&a[min]) {
				min = c
			}
		}
		if min == i {
			break
		}
		a[i], a[min] = a[min], a[i]
		i = min
	}
	return top
}

// New returns an engine whose random source is seeded with seed.
func New(seed int64) *Engine {
	return &Engine{
		rng:   rand.New(rand.NewSource(seed)),
		yield: make(chan struct{}),
	}
}

// Now returns the current virtual time in nanoseconds.
func (e *Engine) Now() int64 { return e.now }

// Rand returns the engine's deterministic random source. It must only be
// used from process or engine context.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn to run in engine context after delay nanoseconds.
// A negative delay is treated as zero.
func (e *Engine) At(delay int64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	e.events.push(event{t: e.now + delay, seq: e.seq, fn: fn})
}

// Stop makes Run return after the current event completes. Pending events
// are discarded.
func (e *Engine) Stop() { e.stopped = true }

// SetAfterEvent installs fn to run in engine context after every executed
// event — the event-boundary hook online invariant auditors attach to.
// The hook must not schedule events; it may call Stop. Pass nil to remove.
// No hook is installed by default, so the cost is one nil check per event.
func (e *Engine) SetAfterEvent(fn func()) { e.afterEvent = fn }

// Run executes events until none remain or Stop is called. It returns a
// DeadlockError if processes are still blocked when the event heap drains.
func (e *Engine) Run() error {
	for e.events.len() > 0 && !e.stopped {
		ev := e.events.pop()
		if ev.t > e.now {
			e.now = ev.t
		}
		ev.fn()
		if e.afterEvent != nil {
			e.afterEvent()
		}
	}
	if e.stopped {
		return nil
	}
	if e.live > 0 {
		return e.deadlock()
	}
	return nil
}

// DeadlockError reports processes that were still blocked when the event
// heap drained.
type DeadlockError struct {
	Time  int64
	Procs []string
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%dns, %d blocked: %v", d.Time, len(d.Procs), d.Procs)
}

func (e *Engine) deadlock() error {
	var names []string
	for p := range e.blocked {
		names = append(names, p.name)
	}
	sort.Strings(names)
	return &DeadlockError{Time: e.now, Procs: names}
}

// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine owns a virtual clock and an event heap. Simulated activities
// run either as plain callbacks (executed inline in the engine goroutine)
// or as processes: goroutines that execute one at a time, hand-shaken with
// the scheduler, so that a simulation with any number of processes is fully
// deterministic for a given seed.
//
// All times are virtual nanoseconds.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
)

// Engine is a deterministic discrete-event scheduler. Create one with New,
// add processes with Spawn and callbacks with At, then call Run.
//
// Engine is not safe for concurrent use from arbitrary goroutines: all
// interaction must happen either from process context (inside a function
// started by Spawn) or from engine context (inside an At callback).
type Engine struct {
	now    int64
	seq    uint64
	events eventHeap
	// nowq holds events scheduled with zero delay — process dispatches and
	// NIC drains, the majority of all events — in FIFO order, bypassing the
	// heap. Ordering stays exact: a zero-delay event is created at the
	// current instant, so its seq is greater than that of any heap event
	// already due, and FIFO order within the queue is seq order. The run
	// loop therefore drains due heap events before the now-queue.
	nowq   []event
	nqHead int
	rng    *rand.Rand

	live    int // spawned, not yet finished processes
	yield   chan struct{}
	current *Proc
	blocked map[*Proc]struct{}

	stopped    bool
	afterEvent func()

	fail     any    // pending panic from a process, re-raised by dispatch
	failProc string // name of the process that panicked

	executed int64 // events Run has executed so far
	budget   int64 // when > 0, Run returns a BudgetError after this many events

	// Parallel execution (lane.go). lanes exist on serial engines too once
	// Lane() has been called (as thin delegates); par is non-nil only after
	// Parallel() enabled windowed execution.
	lanes     []*Lane
	par       *parRun
	lookahead int64
	// Last committed (t, seq) across all lanes and commit rounds; the
	// commit pass asserts it never regresses (lane.go).
	cmtT   int64
	cmtSeq uint64
}

type event struct {
	t   int64
	seq uint64
	fn  func()
	// Wake events carry the target process and its sleep token inline
	// instead of a fn closure: timeouts and Advance fire millions of times
	// per run, and a per-event closure allocation (plus its GC scan) was
	// the simulator's single largest allocation source. fn == nil marks a
	// wake event.
	p   *Proc
	gen uint64
	// opRef links an event created during a parallel window to the lane op
	// recording its creation (index+1 into Lane.ops), so the merge can
	// resolve its true seq. Zero outside parallel windows.
	opRef int32
}

// before is the total event order: time, then schedule order. seq is
// unique, so the order is strict and any min-heap pops events in exactly
// the same sequence — determinism does not depend on heap shape.
func (a *event) before(b *event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// eventHeap is a 4-ary min-heap specialized to event. A Figure-7 run
// pops millions of events, so the generic container/heap (interface
// boxing on every Push/Pop, indirect Less/Swap calls) is replaced with
// inlined sifts. The 4-ary shape halves the tree depth of a binary heap,
// trading slightly more comparisons per level for far fewer cache-missing
// levels — the winning trade for the simulator's small, hot events.
type eventHeap struct {
	a []event
}

func (h *eventHeap) len() int { return len(h.a) }

func (h *eventHeap) push(e event) {
	h.a = append(h.a, e)
	// Sift up.
	a := h.a
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !a[i].before(&a[p]) {
			break
		}
		a[i], a[p] = a[p], a[i]
		i = p
	}
}

func (h *eventHeap) pop() event {
	a := h.a
	top := a[0]
	last := len(a) - 1
	e := a[last]
	a[last] = event{} // release the fn reference for the GC
	h.a = a[:last]
	a = h.a
	// Sift the hole down, placing e once: moving children into the hole
	// halves the byte traffic of swap-based sifting.
	i := 0
	for {
		min := -1
		c := i*4 + 1
		end := c + 4
		if end > last {
			end = last
		}
		for ; c < end; c++ {
			if (min < 0 && a[c].before(&e)) || (min >= 0 && a[c].before(&a[min])) {
				min = c
			}
		}
		if min < 0 {
			break
		}
		a[i] = a[min]
		i = min
	}
	if last > 0 {
		a[i] = e
	}
	return top
}

// New returns an engine whose random source is seeded with seed.
func New(seed int64) *Engine {
	return &Engine{
		rng:   rand.New(rand.NewSource(seed)),
		yield: make(chan struct{}),
	}
}

// Now returns the current virtual time in nanoseconds.
func (e *Engine) Now() int64 { return e.now }

// Rand returns the engine's deterministic random source. It must only be
// used from process or engine context.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// At schedules fn to run in engine context after delay nanoseconds.
// A negative delay is treated as zero. On a parallel engine this targets
// lane 0; lane-resident code must use Lane.At / Lane.Post instead.
func (e *Engine) At(delay int64, fn func()) {
	if e.par != nil {
		ln := e.Lane(0)
		ln.sched(ln, delay, event{fn: fn})
		return
	}
	e.seq++
	if delay <= 0 {
		e.nowq = append(e.nowq, event{t: e.now, seq: e.seq, fn: fn})
		return
	}
	e.events.push(event{t: e.now + delay, seq: e.seq, fn: fn})
}

// wakeAt schedules p.wakeIf(gen) after delay nanoseconds without
// allocating a closure (see event). Wakes are always scheduled from the
// process's own lane context (the process itself, or lane-local code),
// so they route through the lane scheduler.
func (e *Engine) wakeAt(delay int64, p *Proc, gen uint64) {
	if p.ln != nil {
		p.ln.sched(p.ln, delay, event{p: p, gen: gen})
		return
	}
	e.seq++
	if delay <= 0 {
		e.nowq = append(e.nowq, event{t: e.now, seq: e.seq, p: p, gen: gen})
		return
	}
	e.events.push(event{t: e.now + delay, seq: e.seq, p: p, gen: gen})
}

// Stop makes Run return after the current event completes. Pending events
// are discarded.
func (e *Engine) Stop() { e.stopped = true }

// Events returns the number of events Run has executed so far. It is a
// progress measure independent of virtual time — the unit failure-point
// budgets are expressed in.
func (e *Engine) Events() int64 { return e.executed }

// SetEventBudget bounds the total number of events Run may execute;
// exceeding it makes Run return a BudgetError. A failure-injection run
// that livelocks (retry loops that never converge) would otherwise spin
// forever at zero virtual-time progress per retry, which a wall-clock or
// virtual-time limit cannot bound deterministically. Pass 0 to remove
// the bound. The budget counts events executed since New, not since this
// call.
func (e *Engine) SetEventBudget(n int64) { e.budget = n }

// SetAfterEvent installs fn to run in engine context after every executed
// event — the event-boundary hook online invariant auditors attach to.
// The hook must not schedule events; it may call Stop. Pass nil to remove.
// No hook is installed by default, so the cost is one nil check per event.
// Incompatible with Parallel: the hook is inherently serial.
func (e *Engine) SetAfterEvent(fn func()) {
	if fn != nil && e.par != nil {
		panic("sim: SetAfterEvent is incompatible with Parallel")
	}
	e.afterEvent = fn
}

// Run executes events until none remain or Stop is called. It returns a
// DeadlockError if processes are still blocked when the event heap drains.
func (e *Engine) Run() error {
	if e.par != nil {
		return e.runParallel()
	}
	for !e.stopped {
		var ev event
		if e.nqHead < len(e.nowq) {
			// Due heap events were scheduled before time reached e.now, so
			// their seqs precede every now-queue entry: drain them first.
			if e.events.len() > 0 && e.events.a[0].t <= e.now {
				ev = e.events.pop()
			} else {
				ev = e.nowq[e.nqHead]
				e.nowq[e.nqHead] = event{}
				e.nqHead++
				if e.nqHead == len(e.nowq) {
					e.nowq = e.nowq[:0]
					e.nqHead = 0
				}
			}
		} else if e.events.len() > 0 {
			ev = e.events.pop()
			if ev.t > e.now {
				e.now = ev.t
			}
		} else {
			break
		}
		if ev.fn != nil {
			ev.fn()
		} else {
			ev.p.wakeIf(ev.gen)
		}
		e.executed++
		if e.afterEvent != nil {
			e.afterEvent()
		}
		if e.budget > 0 && e.executed >= e.budget && !e.stopped {
			return &BudgetError{Time: e.now, Executed: e.executed}
		}
	}
	if e.stopped {
		return nil
	}
	if e.live > 0 {
		return e.deadlock()
	}
	return nil
}

// BudgetError reports that Run exceeded its event budget (SetEventBudget)
// — the deterministic signature of a livelocked simulation.
type BudgetError struct {
	Time     int64
	Executed int64
}

func (b *BudgetError) Error() string {
	return fmt.Sprintf("sim: event budget exceeded: %d events executed by t=%dns", b.Executed, b.Time)
}

// ProcPanic wraps a panic that escaped a process body, naming the
// process. It is re-raised on the goroutine running the engine, so a
// caller of Run may recover it — the hook failure-injection harnesses
// use to turn a protocol panic into a verdict instead of a crash.
type ProcPanic struct {
	Proc  string
	Value any
}

func (p *ProcPanic) Error() string {
	return fmt.Sprintf("sim: process %s panicked: %v", p.Proc, p.Value)
}

// DeadlockError reports processes that were still blocked when the event
// heap drained.
type DeadlockError struct {
	Time  int64
	Procs []string
}

func (d *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%dns, %d blocked: %v", d.Time, len(d.Procs), d.Procs)
}

func (e *Engine) deadlock() error {
	var names []string
	for p := range e.blocked {
		names = append(names, p.name)
	}
	for _, ln := range e.lanes {
		for p := range ln.blocked {
			names = append(names, p.name)
		}
	}
	sort.Strings(names)
	t := e.now
	if e.par != nil {
		t = e.maxLaneNow()
	}
	return &DeadlockError{Time: t, Procs: names}
}

package sim

import "testing"

// BenchmarkEventDispatch measures raw event-heap throughput: the upper
// bound on protocol messages per wall-clock second the simulator can
// deliver.
func BenchmarkEventDispatch(b *testing.B) {
	eng := New(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			eng.At(1, tick)
		}
	}
	eng.At(1, tick)
	b.ResetTimer()
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkProcSwitch measures a full park/unpark cycle between two
// cooperating processes — the cost of one simulated context switch, paid
// at every page fault and lock transfer.
func BenchmarkProcSwitch(b *testing.B) {
	eng := New(1)
	g := &Gate{}
	turn := 0
	player := func(me, next int) func(*Proc) {
		return func(p *Proc) {
			for i := 0; i < b.N; i++ {
				for turn != me {
					g.Wait(p)
				}
				turn = next
				g.Broadcast()
			}
		}
	}
	eng.Spawn("ping", player(0, 1))
	eng.Spawn("pong", player(1, 0))
	b.ResetTimer()
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkGateBroadcast measures waking a crowd of parked processes at
// once — the barrier-release hot path.
func BenchmarkGateBroadcast(b *testing.B) {
	const crowd = 64
	eng := New(1)
	g := &Gate{}
	done := 0
	for i := 0; i < crowd; i++ {
		eng.Spawn("waiter", func(p *Proc) {
			for j := 0; j < b.N; j++ {
				g.Wait(p)
			}
			done++
		})
	}
	eng.Spawn("master", func(p *Proc) {
		for j := 0; j < b.N; j++ {
			for g.Waiting() < crowd {
				p.Advance(1)
			}
			g.Broadcast()
			p.Advance(1)
		}
	})
	b.ResetTimer()
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
	if done != crowd {
		b.Fatalf("%d waiters finished, want %d", done, crowd)
	}
}

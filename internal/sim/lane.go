// Conservative parallel discrete-event execution.
//
// The engine's serial run loop executes events in (t, seq) order — time,
// then creation order (see event.before and the now-queue argument in
// engine.go). The parallel mode reproduces exactly that order's observable
// effects while executing independent per-lane event streams concurrently.
// Execution and commit are decoupled:
//
// Execution. Every event belongs to a lane (one lane per simulated node).
// All state a lane's events touch is lane-local; the only cross-lane
// interaction is Post, which must carry a delay of at least the engine's
// lookahead L (the minimum wire latency). Each round, lane i may safely
// execute every pending event with t < hzn_i, where
//
//	hzn_i = min over other lanes j of min(earliest_j, min1 + L) + L
//
// earliest_j is lane j's earliest uncommitted item (an executed-but-
// uncommitted record, a suspended event, or its next pending event) and
// min1 the global minimum of earliest over all lanes. The inner min is
// lane j's earliest possible future activity: it executes its own pending
// work no sooner than earliest_j, and the earliest instant anyone can
// hand it new work is min1 + L (the globally first unexecuted event plus
// one wire hop) — an idle lane parked far in the future still reacts to
// an incoming message at its arrival time. Anything lane j does at
// u >= min(earliest_j, min1+L) posts into lane i at u + delay >= hzn_i —
// beyond i's window. (Transitive chains through further lanes only add
// more hops of L.) Lanes whose next event is below their horizon
// execute concurrently on a worker pool, appending an execution record
// per event and an op per event creation, in order. Events created
// in-window below the horizon are scheduled immediately with provisional
// seqs (provBase + a per-lane counter): within one lane, creation order
// equals the serial creation order restricted to the lane, so
// provisional seqs order correctly against each other and after every
// true seq, and the lane's execution order is the canonical order
// restricted to the lane, by induction over the window. Cross-lane and
// beyond-horizon creations are deferred ops, released only at commit.
//
// Commit. The serial engine assigns seqs at creation, in canonical
// execution order. The commit pass replays exactly that: it repeatedly
// takes the globally (t, seq)-minimal pending item across lanes, where a
// lane's earliest item is its first uncommitted record, else its
// suspended or failed event, else its unexecuted heap head. A record
// commits: its ops receive the next true seqs in creation order and
// deferred ones are pushed into their target lanes. A suspended event
// (see RNG below) is fed. A failed event re-raises its panic — after
// everything canonically earlier has committed, exactly like the serial
// engine. An unexecuted head stalls the pass: committing anything later
// first could assign seqs out of serial creation order (a same-t tie
// between a stalled event's future creation and a later record's
// creation would flip). Stalled records, arenas, and provisional-seq
// bookkeeping persist across windows and commit in a later pass, after
// the stalling lane catches up. Horizons use earliest-uncommitted
// precisely so that a deferred op withheld by a stall can never be
// outrun by its target lane.
//
// RNG. Draws must consume the one global stream in canonical order. A
// process that draws inside a window suspends its lane at the draw
// point; the commit pass, when the suspended event is the global
// minimum, assigns true seqs to the event's creations so far (the serial
// engine assigned them before the draw), draws from the true engine RNG,
// feeds the value, and continues the lane inline to its horizon. A lane
// suspends at its first draw and cannot proceed past it, so each lane
// has at most one pending draw, at its canonical position — the fed
// sequence is exactly the serial draw sequence.
//
// The observable result — per-lane event order, commit order, Rand()
// sequence, process wake order, virtual timestamps — is bit-identical to
// the serial engine for any worker count, which the determinism tests in
// this package and the fuzz harness in internal/harness enforce.
package sim

import (
	"fmt"
	"sync"
)

// provBase offsets provisional in-window seqs above every true seq the
// global counter will ever reach, so pre-window events (true seqs) order
// before in-window creations at the same instant, matching serial order.
const provBase = uint64(1) << 62

// Lane is one partition of the event schedule — all events of one
// simulated node. On a serial engine a Lane is a thin delegate to the
// engine's global schedule, so subsystem code can be written against
// lanes unconditionally. Obtain lanes with Engine.Lane.
type Lane struct {
	eng *Engine
	id  int

	// heap holds the lane's pending events; now is the lane clock (the
	// time of the lane's last executed event). Both persist across
	// windows. The heap never mixes a provisional-seq event and a true-
	// seq event at the same instant: provisional events live below the
	// lane's current horizon, committed arrivals land at or beyond it.
	heap eventHeap
	now  int64

	// Window execution state. win is set by the engine goroutine before
	// workers start and cleared only once the lane is fully committed, so
	// lane executors and process code observe it race-free through the
	// worker handoff.
	win    bool
	hzn    int64 // exclusive horizon of the lane's current window
	pseq   uint64
	nowq   []event
	nqHead int

	// Execution records and creation ops, appended in order; ci and opA
	// are the commit pass's consumption cursors (records committed,
	// ops assigned true seqs). All four persist while the lane has
	// uncommitted state.
	recs []lrec
	ops  []lop
	ci   int
	opA  int

	cur     lrec // open record of the currently executing event
	yield   chan struct{}
	current *Proc
	blocked map[*Proc]struct{}
	liveD   int // process exits this window (applied to Engine.live at window end)

	// Failure capture: failVal/failProc mirror Engine.fail for process
	// panics inside this lane; failed+failRaise hold the re-panic value
	// once the window executor caught it (at the open record cur).
	failVal   any
	failProc  string
	failed    bool
	failRaise any

	// RNG suspension: the lane stopped mid-event at a draw; the commit
	// pass feeds drawVal at the event's canonical position.
	suspended bool
	drawProc  *Proc
	drawSpan  int64
	drawVal   int64
}

// lop records one event creation during a window, in creation order.
// The commit pass assigns seq (the true serial seq) when the creating
// event's record commits; events that did not execute in-window
// (cross-lane or beyond-horizon, inWin=false) are pushed into dst's heap
// then.
type lop struct {
	dst   *Lane
	ev    event
	seq   uint64
	inWin bool
}

// lrec is one executed event: its time, identity, and the ops it created
// (ops[opLo:opHi]). For a pre-window event seq is its true seq; for an
// in-window creation ref points at its creating op (index+1), whose seq
// the commit pass assigns before this record can become a lane's
// earliest item.
type lrec struct {
	t          int64
	seq        uint64
	ref        int32
	opLo, opHi int32
}

// Lane returns lane i, creating delegate lanes up to i as needed. On a
// serial engine (no Parallel call) every Lane method behaves exactly
// like the corresponding Engine method.
func (e *Engine) Lane(i int) *Lane {
	for len(e.lanes) <= i {
		e.lanes = append(e.lanes, &Lane{
			eng:   e,
			id:    len(e.lanes),
			yield: make(chan struct{}),
		})
	}
	return e.lanes[i]
}

// Lanes returns the current number of lanes.
func (e *Engine) Lanes() int { return len(e.lanes) }

// ID returns the lane's index.
func (ln *Lane) ID() int { return ln.id }

// LaneEngine returns the engine this lane partitions.
func (ln *Lane) LaneEngine() *Engine { return ln.eng }

// parRun is the parallel-mode runtime: a persistent worker pool fed one
// lane per window assignment.
type parRun struct {
	workers int
	work    chan *Lane
	wg      sync.WaitGroup
	started bool
}

// Parallel switches Run to conservative parallel execution on `workers`
// goroutines with the given lookahead: every cross-lane Post must carry
// a delay of at least lookaheadNs (the minimum wire latency). Call after
// creating the engine's lanes and before scheduling anything. workers=1
// still uses the full windowed machinery (useful to validate
// bit-identity without host concurrency). Incompatible with
// SetAfterEvent (the per-event hook is inherently serial).
func (e *Engine) Parallel(workers int, lookaheadNs int64) {
	if workers < 1 {
		workers = 1
	}
	if lookaheadNs <= 0 {
		panic("sim: Parallel needs a positive lookahead")
	}
	if e.afterEvent != nil {
		panic("sim: Parallel is incompatible with SetAfterEvent")
	}
	if len(e.lanes) < 2 {
		panic("sim: Parallel needs at least 2 lanes (create them with Engine.Lane first)")
	}
	if e.events.len() > 0 || e.nqHead < len(e.nowq) {
		// Events scheduled before this call sit in the global serial
		// queues, which the parallel run loop never drains.
		panic("sim: Parallel must be enabled before scheduling any events")
	}
	e.lookahead = lookaheadNs
	e.par = &parRun{workers: workers}
}

// IsParallel reports whether Parallel has been enabled.
func (e *Engine) IsParallel() bool { return e.par != nil }

// sched is the one scheduling entry point for lane-aware contexts: ln is
// the lane whose code is executing (or being initialized), target the
// lane the event belongs to. Serial engines fall through to the global
// schedule, preserving the serial engine's behavior bit for bit.
func (ln *Lane) sched(target *Lane, delay int64, ev event) {
	e := ln.eng
	if delay < 0 {
		delay = 0
	}
	if e.par != nil && ln.win {
		t := ln.now + delay
		ev.t = t
		if target != ln {
			if delay < e.lookahead {
				panic(fmt.Sprintf("sim: cross-lane post with delay %dns < lookahead %dns (lane %d -> %d)",
					delay, e.lookahead, ln.id, target.id))
			}
			ln.ops = append(ln.ops, lop{dst: target, ev: ev})
			return
		}
		if t >= ln.hzn {
			ln.ops = append(ln.ops, lop{dst: ln, ev: ev})
			return
		}
		// Executes later this window: provisional seq, plus an op entry
		// so the commit pass assigns its true seq in creation order.
		ln.pseq++
		ev.seq = provBase + ln.pseq
		ln.ops = append(ln.ops, lop{dst: ln, ev: ev, inWin: true})
		ev.opRef = int32(len(ln.ops))
		if delay == 0 {
			ln.nowq = append(ln.nowq, ev)
		} else {
			ln.heap.push(ev)
		}
		return
	}
	e.seq++
	ev.seq = e.seq
	if e.par == nil {
		// Serial engine: identical to Engine.At / Engine.wakeAt.
		if delay == 0 {
			ev.t = e.now
			e.nowq = append(e.nowq, ev)
		} else {
			ev.t = e.now + delay
			e.events.push(ev)
		}
		return
	}
	// Parallel engine between windows (initialization): straight into
	// the target lane's heap with a true seq.
	ev.t = target.now + delay
	target.heap.push(ev)
}

// At schedules fn in this lane after delay nanoseconds. Must be called
// from this lane's own execution context (or before Run).
func (ln *Lane) At(delay int64, fn func()) {
	ln.sched(ln, delay, event{fn: fn})
}

// Post schedules fn in lane dst after delay nanoseconds, called from
// this lane's execution context. Under Parallel, a post to another lane
// must carry a delay of at least the lookahead.
func (ln *Lane) Post(dst *Lane, delay int64, fn func()) {
	ln.sched(dst, delay, event{fn: fn})
}

// Now returns the lane's current virtual time: the engine clock on a
// serial engine, the lane clock under Parallel.
func (ln *Lane) Now() int64 {
	if ln.eng.par != nil {
		return ln.now
	}
	return ln.eng.now
}

// runWindow executes the lane's events below its horizon, in the lane's
// (t, seq) order. It returns with the lane either out of sub-horizon
// events, suspended at an RNG draw, or failed at a panic (the open
// record cur names the faulting event in the latter two cases).
func (ln *Lane) runWindow() {
	defer func() {
		if r := recover(); r != nil {
			ln.failed = true
			ln.failRaise = r
		}
	}()
	for {
		var ev event
		if ln.nqHead < len(ln.nowq) {
			// Same discipline as the serial loop: due heap events precede
			// the now-queue (their seqs are smaller; see engine.go).
			if ln.heap.len() > 0 && ln.heap.a[0].t <= ln.now {
				ev = ln.heap.pop()
			} else {
				ev = ln.nowq[ln.nqHead]
				ln.nowq[ln.nqHead] = event{}
				ln.nqHead++
				if ln.nqHead == len(ln.nowq) {
					ln.nowq = ln.nowq[:0]
					ln.nqHead = 0
				}
			}
		} else if ln.heap.len() > 0 {
			if ln.heap.a[0].t >= ln.hzn {
				return
			}
			ev = ln.heap.pop()
			if ev.t > ln.now {
				ln.now = ev.t
			}
		} else {
			return
		}
		ln.cur = lrec{t: ln.now, seq: ev.seq, ref: ev.opRef, opLo: int32(len(ln.ops))}
		if ev.fn != nil {
			ev.fn()
		} else {
			ev.p.wakeIf(ev.gen)
		}
		if ln.suspended {
			return
		}
		ln.closeRec()
	}
}

func (ln *Lane) closeRec() {
	ln.cur.opHi = int32(len(ln.ops))
	ln.recs = append(ln.recs, ln.cur)
}

// recSeq resolves a record's true seq: pre-window events carry it;
// in-window creations read their creating op, whose seq the commit pass
// assigned when the creator (earlier in the same lane) committed.
func (ln *Lane) recSeq(r *lrec) uint64 {
	if r.ref != 0 {
		return ln.ops[r.ref-1].seq
	}
	return r.seq
}

// assignOps gives ops[opA:hi] the next true seqs, in creation order, and
// releases deferred ones into their target lanes' heaps.
func (ln *Lane) assignOps(hi int) {
	e := ln.eng
	for ; ln.opA < hi; ln.opA++ {
		op := &ln.ops[ln.opA]
		e.seq++
		op.seq = e.seq
		if !op.inWin {
			ev := op.ev
			ev.seq = e.seq
			ev.opRef = 0
			op.dst.heap.push(ev)
		}
	}
}

// feedDraw resolves the lane's pending RNG draw at its canonical
// position: the event's creations so far take their true seqs (the
// serial engine assigned them before the draw), the value comes off the
// true RNG, and the lane continues inline (on the commit goroutine)
// until its window is exhausted or suspends again.
func (ln *Lane) feedDraw() {
	p := ln.drawProc
	ln.assignOps(len(ln.ops))
	ln.drawVal = ln.eng.rng.Int63n(ln.drawSpan)
	ln.suspended = false
	ln.drawProc = nil
	p.resume <- struct{}{}
	<-ln.yield
	if ln.suspended {
		return // the same event drew again; feed at the next commit step
	}
	if ln.failVal != nil {
		// The process panicked after the draw; no dispatch frame exists
		// to re-raise, so capture it here exactly as dispatch would.
		ln.failed = true
		ln.failRaise = &ProcPanic{Proc: ln.failProc, Value: ln.failVal}
		ln.failVal = nil
		return
	}
	ln.closeRec()
	ln.runWindow()
}

// maybeReset drops the lane's arenas once everything is committed; while
// records, a suspension, or a failure are outstanding the bookkeeping
// (and the lane's window flag) persists into the next round.
func (ln *Lane) maybeReset() {
	if ln.suspended || ln.failed || ln.ci < len(ln.recs) {
		return
	}
	ln.win = false
	ln.pseq = 0
	ln.recs = ln.recs[:0]
	ln.ops = ln.ops[:0]
	ln.ci = 0
	ln.opA = 0
}

// earliest returns the lane's canonically earliest pending item and
// whether one exists. kind: 0 = committable record, 1 = suspended or
// failed event, 2 = unexecuted heap head (a commit stall).
func (ln *Lane) earliest() (t int64, s uint64, kind int, ok bool) {
	if ln.ci < len(ln.recs) {
		r := &ln.recs[ln.ci]
		return r.t, ln.recSeq(r), 0, true
	}
	if ln.suspended || ln.failed {
		return ln.cur.t, ln.recSeq(&ln.cur), 1, true
	}
	if ln.heap.len() > 0 {
		return ln.heap.a[0].t, ln.heap.a[0].seq, 2, true
	}
	return 0, 0, 0, false
}

// runParallel is Run's parallel mode: windowed lane execution with a
// canonical (t, seq) commit pass after every window.
func (e *Engine) runParallel() error {
	par := e.par
	defer func() {
		if par.started {
			close(par.work)
			par.started = false
		}
	}()
	var active []*Lane
	for !e.stopped {
		// Per-lane horizons from the two smallest earliest-uncommitted
		// items (multiset semantics: with a tie at the minimum, min2 ==
		// min1, which is exactly the other tied lane's value).
		const inf = int64(^uint64(0) >> 1)
		min1, min2 := inf, inf
		pending := false
		for _, ln := range e.lanes {
			t, _, _, ok := ln.earliest()
			if !ok {
				continue
			}
			pending = true
			if t < min1 {
				min1, min2 = t, min1
			} else if t < min2 {
				min2 = t
			}
		}
		if !pending {
			break
		}
		active = active[:0]
		for _, ln := range e.lanes {
			t, _, _, ok := ln.earliest()
			if !ok {
				continue
			}
			// A lane's earliest possible future activity is not just its
			// earliest pending item: an idle lane (next own event far in
			// the future, or none at all) can still be handed work by the
			// globally earliest lane's sends, react at min1 + L, and reply.
			// So every other lane's activity bound is clamped to min1 + L
			// before adding this lane's incoming hop. For a non-minimal
			// lane the clamp is moot (the minimum lane itself is among the
			// others), giving hzn = min1 + L; the minimum lane gets
			// min(min2, min1+L) + L — in particular min1 + 2L when every
			// other lane is empty, never an unbounded horizon.
			other := min1
			if t == min1 {
				other = min2
				if c := min1 + e.lookahead; c < other {
					other = c
				}
			}
			hzn := inf
			if other != inf {
				hzn = other + e.lookahead
			}
			// A deferred op the lane targeted at itself (a same-lane
			// creation beyond an earlier window's horizon, withheld until
			// its creating record commits) also caps the horizon: the
			// cross-lane min above bounds what other lanes may still send
			// here, but says nothing about this lane's own withheld work —
			// executing past its arrival time would run the lane's events
			// out of (t, seq) order.
			for k := ln.opA; k < len(ln.ops); k++ {
				if op := &ln.ops[k]; !op.inWin && op.dst == ln && op.ev.t < hzn {
					hzn = op.ev.t
				}
			}
			// A lane executes this round if it has a runnable event below
			// its horizon; suspended and failed lanes wait for the commit
			// pass to feed or re-raise them.
			if !ln.suspended && !ln.failed && ln.heap.len() > 0 && ln.heap.a[0].t < hzn {
				ln.hzn = hzn
				ln.win = true
				active = append(active, ln)
			}
		}
		if len(active) == 1 || par.workers == 1 {
			for _, ln := range active {
				ln.runWindow()
			}
		} else if len(active) > 1 {
			if !par.started {
				work := make(chan *Lane)
				par.work = work
				for w := 0; w < par.workers; w++ {
					go func() {
						for ln := range work {
							ln.runWindow()
							par.wg.Done()
						}
					}()
				}
				par.started = true
			}
			par.wg.Add(len(active))
			for _, ln := range active {
				par.work <- ln
			}
			par.wg.Wait()
		}
		err := e.commitPass()
		for _, ln := range e.lanes {
			e.live += ln.liveD
			ln.liveD = 0
			ln.maybeReset()
		}
		if err != nil {
			return err
		}
	}
	if e.stopped {
		return nil
	}
	if e.live > 0 {
		return e.deadlock()
	}
	return nil
}

// commitPass consumes pending items in canonical (t, seq) order:
// committing records (assigning their creations the next true seqs,
// releasing deferred events), feeding suspended draws, and re-raising
// the canonically first captured panic exactly where the serial engine
// would have. It stalls when the global minimum is an event that has not
// executed yet — committing anything later first would assign seqs out
// of serial creation order.
func (e *Engine) commitPass() error {
	for {
		var best *Lane
		var bt int64
		var bs uint64
		bkind := 0
		for _, ln := range e.lanes {
			t, s, kind, ok := ln.earliest()
			if !ok {
				continue
			}
			if best == nil || t < bt || (t == bt && s < bs) {
				best, bt, bs, bkind = ln, t, s, kind
			}
		}
		if best == nil || bkind == 2 {
			break // nothing pending, or stalled on an unexecuted event
		}
		// Commit-order assertion, across lanes and across rounds: the
		// serial engine consumes items in strictly increasing (t, seq)
		// order, so any regression here — a later round committing
		// something canonically earlier than a past commit, or a
		// same-timestamp pair seated out of seq order — is exactly the
		// cross-lane window bug the parallel engine must exclude.
		// Equality is legitimate: a suspended event is visited at its
		// one (t, seq) once per RNG feed and again when its record
		// commits. Two integer compares per commit; determinism gates
		// run with this always on.
		if bt < e.cmtT || (bt == e.cmtT && bs < e.cmtSeq) {
			panic(fmt.Sprintf("sim: commit order violation: (t=%d seq=%d) after (t=%d seq=%d) on lane %d",
				bt, bs, e.cmtT, e.cmtSeq, best.id))
		}
		e.cmtT, e.cmtSeq = bt, bs
		ln := best
		if bkind == 1 {
			if ln.failed {
				// Canonically first failure: everything the serial engine
				// would have executed before the faulting event has
				// committed; re-raise on Run's caller exactly like dispatch.
				r := ln.failRaise
				ln.failed = false
				ln.failRaise = nil
				panic(r)
			}
			ln.feedDraw()
			continue
		}
		r := &ln.recs[ln.ci]
		ln.ci++
		ln.assignOps(int(r.opHi))
		e.executed++
	}
	if e.budget > 0 && e.executed >= e.budget && !e.stopped {
		// Parallel budget checks are commit-granular: the error reports
		// where the run actually stopped. Deterministic for a given
		// budget and configuration.
		return &BudgetError{Time: e.maxLaneNow(), Executed: e.executed}
	}
	return nil
}

func (e *Engine) maxLaneNow() int64 {
	var max int64
	for _, ln := range e.lanes {
		if ln.now > max {
			max = ln.now
		}
	}
	return max
}

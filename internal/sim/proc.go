package sim

import "errors"

// ErrKilled is the panic value used to unwind a killed process. Process
// bodies must not recover it; the engine's wrapper does.
var ErrKilled = errors.New("sim: process killed")

// Proc is a simulated process: a goroutine that runs in lock-step with the
// engine. At most one process executes at a time, so process code needs no
// data-race protection for state it shares with other processes — only
// logical critical sections (Mutex) for state invariants that must span
// blocking calls.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}

	sleeps  uint64 // generation counter for wake tokens
	waiting bool
	killed  bool
	done    bool

	// dispatchFn is the one dispatch closure this process ever allocates;
	// every wake reschedules it instead of capturing p anew.
	dispatchFn func()
}

// Spawn starts fn as a new process. The process begins running at the
// current virtual time, after already-scheduled events at this time.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, resume: make(chan struct{})}
	e.live++
	go func() {
		<-p.resume
		defer func() {
			p.done = true
			e.live--
			// A process that unwound out of a prepared sleep (kill at park
			// entry) is still in the blocked set: drop it, or a finished
			// process would read as deadlocked.
			e.unblock(p)
			if r := recover(); r != nil && r != errKilledSentinel {
				// Hand the panic to the engine goroutine: dispatch re-raises
				// it there, so it surfaces on Run's caller (where a failure
				// harness can recover it) instead of crashing the process
				// from an anonymous goroutine while the engine runs on.
				e.fail = r
				e.failProc = p.name
			}
			e.yield <- struct{}{}
		}()
		fn(p)
	}()
	p.dispatchFn = func() { e.dispatch(p) }
	e.At(0, p.dispatchFn)
	return p
}

var errKilledSentinel = ErrKilled

// dispatch hands control to p and blocks the engine until p parks again.
func (e *Engine) dispatch(p *Proc) {
	if p.done {
		return
	}
	prev := e.current
	e.current = p
	p.resume <- struct{}{}
	<-e.yield
	e.current = prev
	if e.fail != nil {
		// The process panicked: re-raise on this goroutine — the one that
		// called Run — with the process named.
		r, name := e.fail, e.failProc
		e.fail = nil
		panic(&ProcPanic{Proc: name, Value: r})
	}
}

// park returns control to the engine until the process is resumed.
func (p *Proc) park() {
	if p.killed {
		// Killed while running (a failure injected from this process's
		// own context): unwind at the scheduling point instead of
		// blocking. The wait this park enters may have no wake source —
		// e.g. a reply to a request that died in the killed node's own
		// post queue — so deferring the check to resume would leave a
		// dead process blocked forever.
		panic(errKilledSentinel)
	}
	p.eng.yield <- struct{}{}
	<-p.resume
	if p.killed {
		panic(errKilledSentinel)
	}
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() int64 { return p.eng.now }

// Killed reports whether Kill has been called on this process.
func (p *Proc) Killed() bool { return p.killed }

// prepareSleep arms the process for a sleep and returns the wake token that
// a waker must present to wakeIf.
func (p *Proc) prepareSleep() uint64 {
	p.sleeps++
	p.waiting = true
	p.eng.block(p)
	return p.sleeps
}

// doSleep parks until some waker calls wakeIf with the current token.
func (p *Proc) doSleep() {
	p.park()
}

// wakeIf resumes the process if it is still in the sleep identified by gen.
// It is a no-op for stale tokens, so multiple wake sources (a value arriving
// and a timeout) can race harmlessly. Must be called from engine or process
// context.
func (p *Proc) wakeIf(gen uint64) {
	if !p.waiting || p.sleeps != gen || p.done {
		return
	}
	p.waiting = false
	p.eng.unblock(p)
	p.eng.At(0, p.dispatchFn)
}

// Advance moves the process's virtual time forward by d nanoseconds,
// yielding to other activity in the meantime. A non-positive d still yields
// once, which makes Advance(0) a cooperative scheduling point.
func (p *Proc) Advance(d int64) {
	gen := p.prepareSleep()
	p.eng.wakeAt(d, p, gen)
	p.doSleep()
}

// Kill marks the process as killed and, if it is blocked, wakes it so the
// kill takes effect. The process unwinds via panic(ErrKilled), running its
// deferred functions. Killing a finished process is a no-op.
func (p *Proc) Kill() {
	if p.done || p.killed {
		return
	}
	p.killed = true
	if p.waiting {
		p.wakeIf(p.sleeps)
	}
}

func (e *Engine) block(p *Proc) {
	if e.blocked == nil {
		e.blocked = make(map[*Proc]struct{})
	}
	e.blocked[p] = struct{}{}
}

func (e *Engine) unblock(p *Proc) {
	delete(e.blocked, p)
}

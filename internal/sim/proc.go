package sim

import "errors"

// ErrKilled is the panic value used to unwind a killed process. Process
// bodies must not recover it; the engine's wrapper does.
var ErrKilled = errors.New("sim: process killed")

// Proc is a simulated process: a goroutine that runs in lock-step with the
// engine. At most one process executes at a time on a serial engine; under
// Parallel, at most one process per lane executes at a time, and all state
// a process touches must be local to its lane. Process code needs no
// data-race protection for state it shares with other processes on the
// same lane — only logical critical sections (Mutex) for state invariants
// that must span blocking calls.
type Proc struct {
	eng    *Engine
	ln     *Lane
	name   string
	resume chan struct{}

	sleeps  uint64 // generation counter for wake tokens
	waiting bool
	killed  bool
	done    bool

	// dispatchFn is the one dispatch closure this process ever allocates;
	// every wake reschedules it instead of capturing p anew.
	dispatchFn func()
}

// Spawn starts fn as a new process on lane 0. The process begins running
// at the current virtual time, after already-scheduled events at this time.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	return e.SpawnOn(e.Lane(0), name, fn)
}

// SpawnOn starts fn as a new process resident on lane ln: all its events
// execute in that lane. On a serial engine the lane only tags the
// process; scheduling is unchanged. Must not be called from inside a
// parallel window.
func (e *Engine) SpawnOn(ln *Lane, name string, fn func(p *Proc)) *Proc {
	if ln == nil {
		ln = e.Lane(0)
	}
	if e.par != nil && ln.win {
		panic("sim: SpawnOn inside a parallel window")
	}
	p := &Proc{eng: e, ln: ln, name: name, resume: make(chan struct{})}
	e.live++
	go func() {
		<-p.resume
		defer func() {
			p.done = true
			r := recover()
			if r == errKilledSentinel {
				r = nil
			}
			if e.par != nil && p.ln.win {
				// Exiting inside a parallel window: account on the lane; the
				// merge folds the delta into e.live and the canonical panic
				// position. yield wakes this lane's executor.
				p.ln.liveD--
				delete(p.ln.blocked, p)
				if r != nil {
					p.ln.failVal = r
					p.ln.failProc = p.name
				}
				p.ln.yield <- struct{}{}
				return
			}
			e.live--
			// A process that unwound out of a prepared sleep (kill at park
			// entry) is still in the blocked set: drop it, or a finished
			// process would read as deadlocked.
			e.unblock(p)
			if r != nil {
				// Hand the panic to the engine goroutine: dispatch re-raises
				// it there, so it surfaces on Run's caller (where a failure
				// harness can recover it) instead of crashing the process
				// from an anonymous goroutine while the engine runs on.
				e.fail = r
				e.failProc = p.name
			}
			e.yield <- struct{}{}
		}()
		fn(p)
	}()
	p.dispatchFn = func() { e.dispatch(p) }
	ln.sched(ln, 0, event{fn: p.dispatchFn})
	return p
}

var errKilledSentinel = ErrKilled

// dispatch hands control to p and blocks the dispatching goroutine (the
// engine, or the lane executor under Parallel) until p parks again.
func (e *Engine) dispatch(p *Proc) {
	if p.done {
		return
	}
	if e.par != nil {
		ln := p.ln
		prev := ln.current
		ln.current = p
		p.resume <- struct{}{}
		<-ln.yield
		ln.current = prev
		if ln.failVal != nil {
			r, name := ln.failVal, ln.failProc
			ln.failVal = nil
			panic(&ProcPanic{Proc: name, Value: r})
		}
		return
	}
	prev := e.current
	e.current = p
	p.resume <- struct{}{}
	<-e.yield
	e.current = prev
	if e.fail != nil {
		// The process panicked: re-raise on this goroutine — the one that
		// called Run — with the process named.
		r, name := e.fail, e.failProc
		e.fail = nil
		panic(&ProcPanic{Proc: name, Value: r})
	}
}

// park returns control to the dispatcher until the process is resumed.
func (p *Proc) park() {
	if p.killed {
		// Killed while running (a failure injected from this process's
		// own context): unwind at the scheduling point instead of
		// blocking. The wait this park enters may have no wake source —
		// e.g. a reply to a request that died in the killed node's own
		// post queue — so deferring the check to resume would leave a
		// dead process blocked forever.
		panic(errKilledSentinel)
	}
	if p.eng.par != nil {
		p.ln.yield <- struct{}{}
	} else {
		p.eng.yield <- struct{}{}
	}
	<-p.resume
	if p.killed {
		panic(errKilledSentinel)
	}
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Lane returns the lane this process is resident on.
func (p *Proc) Lane() *Lane { return p.ln }

// Now returns the current virtual time (the process's lane clock under
// Parallel).
func (p *Proc) Now() int64 {
	if p.eng.par != nil {
		return p.ln.now
	}
	return p.eng.now
}

// Int63n draws from the engine's one deterministic random stream. On a
// serial engine it is Engine.Rand().Int63n. Under Parallel the draw
// suspends the lane until the merge reaches this event's canonical
// position and feeds the value, so the stream is consumed in exactly the
// serial order regardless of worker count.
func (p *Proc) Int63n(span int64) int64 {
	e := p.eng
	if e.par == nil {
		return e.rng.Int63n(span)
	}
	ln := p.ln
	ln.suspended = true
	ln.drawProc = p
	ln.drawSpan = span
	ln.yield <- struct{}{}
	<-p.resume
	return ln.drawVal
}

// Killed reports whether Kill has been called on this process.
func (p *Proc) Killed() bool { return p.killed }

// prepareSleep arms the process for a sleep and returns the wake token that
// a waker must present to wakeIf.
func (p *Proc) prepareSleep() uint64 {
	p.sleeps++
	p.waiting = true
	p.eng.block(p)
	return p.sleeps
}

// doSleep parks until some waker calls wakeIf with the current token.
func (p *Proc) doSleep() {
	p.park()
}

// wakeIf resumes the process if it is still in the sleep identified by gen.
// It is a no-op for stale tokens, so multiple wake sources (a value arriving
// and a timeout) can race harmlessly. Must be called from the process's
// own lane context (engine context on a serial engine).
func (p *Proc) wakeIf(gen uint64) {
	if !p.waiting || p.sleeps != gen || p.done {
		return
	}
	p.waiting = false
	p.eng.unblock(p)
	p.ln.sched(p.ln, 0, event{fn: p.dispatchFn})
}

// Advance moves the process's virtual time forward by d nanoseconds,
// yielding to other activity in the meantime. A non-positive d still yields
// once, which makes Advance(0) a cooperative scheduling point.
func (p *Proc) Advance(d int64) {
	gen := p.prepareSleep()
	p.eng.wakeAt(d, p, gen)
	p.doSleep()
}

// Kill marks the process as killed and, if it is blocked, wakes it so the
// kill takes effect. The process unwinds via panic(ErrKilled), running its
// deferred functions. Killing a finished process is a no-op.
func (p *Proc) Kill() {
	if p.done || p.killed {
		return
	}
	p.killed = true
	if p.waiting {
		p.wakeIf(p.sleeps)
	}
}

// block and unblock track parked processes for deadlock reporting. The
// set lives on the process's lane so membership changes stay lane-local
// under Parallel; deadlock() unions the lanes.
func (e *Engine) block(p *Proc) {
	if p.ln != nil {
		if p.ln.blocked == nil {
			p.ln.blocked = make(map[*Proc]struct{})
		}
		p.ln.blocked[p] = struct{}{}
		return
	}
	if e.blocked == nil {
		e.blocked = make(map[*Proc]struct{})
	}
	e.blocked[p] = struct{}{}
}

func (e *Engine) unblock(p *Proc) {
	if p.ln != nil {
		delete(p.ln.blocked, p)
		return
	}
	delete(e.blocked, p)
}

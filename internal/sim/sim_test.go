package sim

import (
	"errors"
	"testing"
)

func TestAdvanceOrdering(t *testing.T) {
	e := New(1)
	var order []string
	e.Spawn("a", func(p *Proc) {
		p.Advance(100)
		order = append(order, "a@100")
		p.Advance(200)
		order = append(order, "a@300")
	})
	e.Spawn("b", func(p *Proc) {
		p.Advance(150)
		order = append(order, "b@150")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a@100", "b@150", "a@300"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 300 {
		t.Fatalf("final time = %d, want 300", e.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(50, func() { order = append(order, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("events at equal time not FIFO: %v", order)
		}
	}
}

func TestFutureResolveWakesWaiters(t *testing.T) {
	e := New(1)
	f := e.NewFuture()
	var got [2]any
	for i := 0; i < 2; i++ {
		i := i
		e.Spawn("w", func(p *Proc) {
			v, err := p.Await(f)
			if err != nil {
				t.Errorf("Await error: %v", err)
			}
			got[i] = v
		})
	}
	e.At(500, func() { f.Resolve(42) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got[0] != 42 || got[1] != 42 {
		t.Fatalf("got %v, want both 42", got)
	}
}

func TestAwaitAlreadyDone(t *testing.T) {
	e := New(1)
	f := e.NewFuture()
	f.Resolve("x")
	var got any
	e.Spawn("w", func(p *Proc) { got, _ = p.Await(f) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "x" {
		t.Fatalf("got %v", got)
	}
}

func TestAwaitTimeout(t *testing.T) {
	e := New(1)
	f := e.NewFuture()
	var timedOut, completed bool
	var tAt int64
	e.Spawn("w", func(p *Proc) {
		_, _, ok := p.AwaitTimeout(f, 1000)
		timedOut = !ok
		tAt = p.Now()
		// Future resolves later; a second wait should succeed.
		v, err := p.Await(f)
		completed = err == nil && v == 7
	})
	e.At(5000, func() { f.Resolve(7) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !timedOut || tAt != 1000 {
		t.Fatalf("timedOut=%v at t=%d, want timeout at 1000", timedOut, tAt)
	}
	if !completed {
		t.Fatal("second Await did not observe the late resolution")
	}
}

func TestFutureFail(t *testing.T) {
	e := New(1)
	f := e.NewFuture()
	sentinel := errors.New("boom")
	var got error
	e.Spawn("w", func(p *Proc) { _, got = p.Await(f) })
	e.At(10, func() { f.Fail(sentinel) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != sentinel {
		t.Fatalf("got %v, want sentinel", got)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := New(1)
	f := e.NewFuture()
	e.Spawn("stuck", func(p *Proc) { p.Await(f) })
	err := e.Run()
	var d *DeadlockError
	if !errors.As(err, &d) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(d.Procs) != 1 || d.Procs[0] != "stuck" {
		t.Fatalf("blocked procs = %v", d.Procs)
	}
}

func TestKillUnwindsDefers(t *testing.T) {
	e := New(1)
	f := e.NewFuture()
	cleaned := false
	p := e.Spawn("victim", func(p *Proc) {
		defer func() { cleaned = true }()
		p.Await(f)
		t.Error("victim ran past Await after kill")
	})
	e.At(100, func() { p.Kill() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !cleaned {
		t.Fatal("deferred cleanup did not run on kill")
	}
}

func TestKillDuringAdvance(t *testing.T) {
	e := New(1)
	reached := false
	p := e.Spawn("victim", func(p *Proc) {
		p.Advance(1000)
		reached = true
	})
	e.At(10, func() { p.Kill() })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if reached {
		t.Fatal("killed process ran past Advance")
	}
	if !p.Killed() {
		t.Fatal("Killed() = false")
	}
}

func TestMutexFIFO(t *testing.T) {
	e := New(1)
	var m Mutex
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("p", func(p *Proc) {
			p.Advance(int64(i)) // stagger arrival: 0, 1, 2
			m.Lock(p)
			order = append(order, i)
			p.Advance(100)
			m.Unlock()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("mutex order = %v, want FIFO", order)
		}
	}
}

func TestMutexExclusion(t *testing.T) {
	e := New(1)
	var m Mutex
	inside := 0
	maxInside := 0
	for i := 0; i < 5; i++ {
		e.Spawn("p", func(p *Proc) {
			m.Lock(p)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Advance(10)
			inside--
			m.Unlock()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Fatalf("max concurrent holders = %d, want 1", maxInside)
	}
}

func TestGateBroadcast(t *testing.T) {
	e := New(1)
	var g Gate
	woke := 0
	for i := 0; i < 4; i++ {
		e.Spawn("w", func(p *Proc) {
			g.Wait(p)
			woke++
		})
	}
	e.At(100, func() {
		if g.Waiting() != 4 {
			t.Errorf("Waiting() = %d, want 4", g.Waiting())
		}
		g.Broadcast()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 4 {
		t.Fatalf("woke = %d, want 4", woke)
	}
}

func TestSemaphoreBounds(t *testing.T) {
	e := New(1)
	s := NewSemaphore(2)
	inside, maxInside := 0, 0
	for i := 0; i < 6; i++ {
		e.Spawn("p", func(p *Proc) {
			s.Acquire(p)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Advance(50)
			inside--
			s.Release()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 2 {
		t.Fatalf("max inside = %d, want 2", maxInside)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, []int) {
		e := New(42)
		var trace []int
		var m Mutex
		for i := 0; i < 8; i++ {
			i := i
			e.Spawn("p", func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Advance(e.Rand().Int63n(100) + 1)
					m.Lock(p)
					trace = append(trace, i)
					p.Advance(7)
					m.Unlock()
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now(), trace
	}
	t1, tr1 := run()
	t2, tr2 := run()
	if t1 != t2 || len(tr1) != len(tr2) {
		t.Fatalf("non-deterministic: t %d vs %d", t1, t2)
	}
	for i := range tr1 {
		if tr1[i] != tr2[i] {
			t.Fatalf("traces diverge at %d", i)
		}
	}
}

func TestStop(t *testing.T) {
	e := New(1)
	n := 0
	e.Spawn("p", func(p *Proc) {
		for i := 0; i < 1000; i++ {
			p.Advance(10)
			n++
			if n == 5 {
				e.Stop()
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("ran %d iterations, want 5", n)
	}
}

package svm

import (
	"fmt"
	"strings"
	"testing"

	"ftsvm/internal/model"
)

// multiLockState drives the multi-lock SMP workload: each iteration picks
// a lock/slot by round-robin, increments the slot under the lock, and
// advances Iter before Release (the exactly-once contract).
type multiLockState struct {
	Iter int
}

// multiLockBody has every thread increment rotating per-lock slots, so at
// any instant different threads (including node siblings) are inside
// critical sections of different locks — the window where one thread's
// release observes a sibling mid-CS.
func multiLockBody(locks, iters int) func(*Thread) {
	return func(t *Thread) {
		st := &multiLockState{}
		t.Setup(st)
		for st.Iter < iters {
			l := (st.Iter + t.ID()) % locks
			t.Acquire(l)
			addr := l * 64
			v := t.ReadU64(addr)
			t.Compute(300)
			t.WriteU64(addr, v+1)
			st.Iter++
			t.Release(l)
		}
		t.Barrier()
	}
}

func checkMultiLock(t *testing.T, cl *Cluster, locks, totalIters int) {
	t.Helper()
	var sum uint64
	for l := 0; l < locks; l++ {
		sum += cl.PeekU64(l * 64)
	}
	if sum != uint64(totalIters) {
		t.Fatalf("slot sum = %d, want %d", sum, totalIters)
	}
}

// TestMultiLockSMPFailureSweep kills every node at every release
// milestone with 2 threads/node and per-thread rotating locks: the
// exactly-once guarantee must hold even when the victim's siblings are
// mid-critical-section, and when a bystander home dies inside another
// node's release.
func TestMultiLockSMPFailureSweep(t *testing.T) {
	const nodes, locks, iters = 3, 4, 8
	milestones := []string{
		"release.commit", "release.phase1", "release.savets",
		"release.ckptB", "release.phase2", "release.done", "ckpt.A",
	}
	ran := 0
	for victim := 0; victim < nodes; victim++ {
		for _, kind := range milestones {
			for seq := int64(1); seq <= 5; seq += 2 {
				name := fmt.Sprintf("%s/n%d/s%d", kind, victim, seq)
				cfg := model.Default()
				cfg.Nodes = nodes
				cfg.ThreadsPerNode = 2
				tracer := &killTracer{kind: kind, node: victim, seq: seq}
				cl, err := New(Options{
					Config: cfg, Mode: ModeFT, Pages: locks + 1, Locks: locks,
					Body: multiLockBody(locks, iters), Tracer: tracer,
				})
				if err != nil {
					t.Fatal(err)
				}
				tracer.cl = cl
				if err := cl.Run(); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if !tracer.done {
					continue
				}
				ran++
				if !cl.Finished() {
					t.Fatalf("%s: threads did not finish", name)
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("%s: %v", name, r)
						}
					}()
					checkMultiLock(t, cl, locks, nodes*2*iters)
					verifyReplicaInvariants(t, cl)
				}()
			}
		}
	}
	t.Logf("multi-lock SMP schedules executed: %d", ran)
	if ran < 20 {
		t.Fatalf("only %d schedules executed", ran)
	}
}

// TestInspectors exercises the diagnostic helpers (PeekU32, DebugPage,
// DebugState) against a finished cluster so their formats stay valid.
func TestInspectors(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 4
	var th *Thread
	cl, err := New(Options{
		Config: cfg, Mode: ModeFT, Pages: 4, Locks: 1,
		Body: func(t *Thread) {
			th = t
			t.Setup(&counterState{})
			t.Acquire(0)
			t.WriteU32(8, 0xdeadbeef)
			t.Release(0)
			t.Barrier()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if got := cl.PeekU32(8); got != 0xdeadbeef {
		t.Fatalf("PeekU32 = %#x", got)
	}
	if s := cl.DebugPage(0); !strings.Contains(s, "page 0:") || !strings.Contains(s, "first divergence: -1") {
		t.Fatalf("DebugPage output malformed:\n%s", s)
	}
	if s := th.DebugState(); !strings.Contains(s, "finished") {
		t.Fatalf("DebugState output malformed: %s", s)
	}
}

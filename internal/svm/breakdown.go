package svm

import "fmt"

// Component is one bucket of the execution-time breakdown. The buckets
// match the paper's §5.2 decomposition; Figures 7/9 fold the protocol
// buckets into the synchronization type under which they were incurred,
// Figures 8/10 report them separately.
type Component int

const (
	// CompCompute is application execution time, including local memory
	// stalls (modeled per-access costs and explicit Compute charges).
	CompCompute Component = iota
	// CompDataWait is time spent in page-fault handling: fetching pages
	// from homes, local fetches from committed copies, twin creation, and
	// stalls on locked pages.
	CompDataWait
	// CompLock is wait time between issuing a lock request and acquiring
	// the lock.
	CompLock
	// CompBarrier is inter- and intra-node wait time at barriers.
	CompBarrier
	// CompDiff is diff computation and propagation time (both phases in
	// the extended protocol), including post-queue stalls for diff bursts.
	CompDiff
	// CompCheckpoint is thread-state capture and propagation time,
	// including sibling suspension (extended protocol only).
	CompCheckpoint
	// CompProtocol is the remaining protocol processing: interval commits,
	// write-notice exchange, invalidations, timestamp saves, recovery.
	CompProtocol
	// CompIdle is open-loop idle time: a serving thread parked between a
	// request's completion and the next request's arrival
	// (Thread.IdleUntil). It is intentionally excluded from the FourWay
	// and SixWay folds — the paper's batch kernels never idle, and for a
	// serving workload idle time is offered-load slack, not protocol
	// cost.
	CompIdle

	numComponents
)

var componentNames = [numComponents]string{
	"compute", "data", "lock", "barrier", "diff", "checkpoint", "protocol", "idle",
}

func (c Component) String() string {
	if c < 0 || c >= numComponents {
		return fmt.Sprintf("Component(%d)", int(c))
	}
	return componentNames[c]
}

// Components lists all breakdown components in display order.
func Components() []Component {
	out := make([]Component, numComponents)
	for i := range out {
		out[i] = Component(i)
	}
	return out
}

// Breakdown accumulates per-component virtual time for one thread. The
// atBarrier slice records the share of diff/checkpoint/protocol time that
// was incurred during barrier episodes, so the 4-component format can fold
// protocol work into the right synchronization bucket.
type Breakdown struct {
	Comp      [numComponents]int64
	AtBarrier [numComponents]int64
}

// Total returns the sum over all components.
func (b *Breakdown) Total() int64 {
	var t int64
	for _, v := range b.Comp {
		t += v
	}
	return t
}

// Add accumulates o into b.
func (b *Breakdown) Add(o *Breakdown) {
	for i := range b.Comp {
		b.Comp[i] += o.Comp[i]
		b.AtBarrier[i] += o.AtBarrier[i]
	}
}

// Scale divides every bucket by n (for averaging across threads).
func (b *Breakdown) Scale(n int64) {
	if n == 0 {
		return
	}
	for i := range b.Comp {
		b.Comp[i] /= n
		b.AtBarrier[i] /= n
	}
}

// FourWay folds the breakdown into the paper's Figure 7/9 format:
// compute, data wait, lock, barrier. Protocol work (diffs, checkpoints,
// protocol processing) performed at a lock release counts toward lock
// time; work performed during barriers counts toward barrier time.
func (b *Breakdown) FourWay() (compute, data, lock, barrier int64) {
	compute = b.Comp[CompCompute]
	data = b.Comp[CompDataWait]
	lock = b.Comp[CompLock]
	barrier = b.Comp[CompBarrier]
	for _, c := range []Component{CompDiff, CompCheckpoint, CompProtocol} {
		atB := b.AtBarrier[c]
		lock += b.Comp[c] - atB
		barrier += atB
	}
	return
}

// SixWay folds the breakdown into the paper's Figure 8/10 format:
// compute, data wait, synchronization, diffs, protocol, checkpointing.
func (b *Breakdown) SixWay() (compute, data, sync, diffs, protocol, ckpt int64) {
	return b.Comp[CompCompute],
		b.Comp[CompDataWait],
		b.Comp[CompLock] + b.Comp[CompBarrier],
		b.Comp[CompDiff],
		b.Comp[CompProtocol],
		b.Comp[CompCheckpoint]
}

package svm

import (
	"errors"
	"fmt"

	"ftsvm/internal/mem"
	"ftsvm/internal/proto"
	"ftsvm/internal/vmmc"
)

// readFault brings an invalid page into the node's working copy. It
// resolves where the valid copy lives (primary home's committed copy in
// the extended protocol, the home's working copy in the base protocol),
// waits until that copy carries every update this node must observe, and
// merges any uncommitted local writes the page held when it was
// invalidated (false sharing). Attributed to data-wait time.
func (t *Thread) readFault(pg *page) {
	if fut := pg.fetching; fut != nil {
		// Another local thread is already fetching this page; wait for it
		// and let the caller re-check the page state. (Capture the future
		// first: the flush inside beginWait yields, and the owner may
		// finish and clear pg.fetching before we park.)
		t0 := t.beginWait()
		t.proc.Await(fut)
		t.endWait(CompDataWait, t0)
		return
	}
	fut := t.cl.eng.NewFuture()
	pg.fetching = fut
	t.node.stats.ReadFaults++
	needRecovery := false
	func() {
		// The dedupe future must resolve before this thread can park in
		// the recovery barrier, or the waiters could never arrive there.
		defer func() {
			pg.fetching = nil
			fut.Resolve(nil)
		}()
		cfg := t.cl.cfg
		t.charge(CompDataWait, cfg.PageFaultTrapNs)
		for pg.state == pInvalid {
			prim := t.cl.pageHomes.Primary(pg.id)
			if t.cl.opt.Mode == ModeFT && prim == t.node.id {
				if t.localFetch(pg) {
					needRecovery = true
					return
				}
				continue
			}
			if prim == t.node.id {
				// Base protocol: the home's working copy is authoritative
				// (diffs land in it directly), but the home must wait
				// until every diff it was notified of has arrived.
				pg.ensureWorking()
				for !pg.baseVer.Covers(pg.reqVer) {
					t0 := t.beginWait()
					pg.verGate.WaitTimeout(t.proc, 4*cfg.HeartbeatTimeoutNs)
					t.endWait(CompDataWait, t0)
				}
				pg.homeStale = false
				if pg.twin != nil {
					pg.state = pWritable
				} else {
					pg.state = pReadOnly
				}
				break
			}
			if t.remoteFetch(pg, prim) {
				needRecovery = true
				return
			}
		}
	}()
	if needRecovery {
		t.joinRecovery()
	}
}

// localFetch is the extended protocol's home-page fault path: the primary
// home copies its own committed copy into the working copy, waiting first
// for any in-flight diffs the required version demands. Returns true if
// the thread must join recovery before retrying.
func (t *Thread) localFetch(pg *page) (needRecovery bool) {
	cfg := t.cl.cfg
	need := pg.fetchNeed(t.node.id)
	for !pg.commitVer.Covers(need) {
		t0 := t.beginWait()
		pg.verGate.WaitTimeout(t.proc, 4*cfg.HeartbeatTimeoutNs)
		t.endWait(CompDataWait, t0)
		if t.cl.rec.pending && !t.inRecovery {
			return true // home assignment may change; caller re-resolves
		}
	}
	buf := pg.ensureWorking()
	copy(buf, pg.committed)
	t.node.stats.LocalFetches++
	t.charge(CompDataWait, cfg.CopyNs(cfg.PageSize))
	t.finishFetch(pg, pg.commitVer.Clone())
	return false
}

// remoteFetch requests the page from its (primary) home and installs the
// reply. Returns true if the home died (or recovery interrupted the wait)
// and the thread must join recovery before retrying against the new home.
func (t *Thread) remoteFetch(pg *page, home int) (needRecovery bool) {
	cfg := t.cl.cfg
	req := &fetchReq{Page: pg.id, Need: pg.fetchNeed(t.node.id)}
	t0 := t.beginWait()
	v, err := t.node.ep.RequestAbort(t.proc, home, t.node.msgWire(home, req), req,
		func() bool { return t.cl.rec.pending })
	t.endWait(CompDataWait, t0)
	if err != nil {
		if errors.Is(err, vmmc.ErrNodeDead) || errors.Is(err, vmmc.ErrAborted) {
			return true
		}
		panic(fmt.Sprintf("svm: fetch page %d: %v", pg.id, err))
	}
	rep := v.(*fetchReply)
	if len(rep.Data) != cfg.PageSize {
		panic("svm: fetch reply size mismatch")
	}
	if !rep.Ver.Covers(pg.fetchNeed(t.node.id)) {
		// The page was invalidated again while the fetch was in flight;
		// retry with the stronger requirement.
		t.node.putPageBuf(rep.Data)
		return false
	}
	// A stale read-only copy may still be installed; the reply replaces it.
	t.node.putPageBuf(pg.working)
	pg.working = rep.Data
	t.node.stats.RemoteFetches++
	t.finishFetch(pg, rep.Ver)
	return false
}

// finishFetch installs a fetched copy: if the page held uncommitted local
// writes when it was invalidated, replay the local diff over the fetched
// copy and keep the page dirty (the multiple-writer merge); otherwise the
// page becomes read-only.
func (t *Thread) finishFetch(pg *page, ver proto.VectorTime) {
	cfg := t.cl.cfg
	if pg.dirtyWorking != nil {
		// The merge diff lives only for this replay: compute it in pooled
		// storage and release everything before returning.
		dbuf := mem.GetDiffBuf()
		localDiff := mem.Diff{Page: pg.id, Runs: mem.ComputeTrackedInto(dbuf, pg.dirtyTwin, pg.dirtyWorking, cfg.WordSize, pg.stashMask)}
		t.charge(CompDataWait, cfg.DiffNs(cfg.PageSize))
		// New twin = fetched copy (pre-merge), so the next commit diffs out
		// exactly the local modifications. Tracked: the dirty set carries
		// over from the stash, and only those chunks need pre-merge images.
		if pg.stashMask != nil {
			pg.dirtyMask, pg.stashMask = pg.stashMask, nil
			pg.twin = t.node.getPageBuf()
			t.node.stats.TwinBytesCopied += int64(mem.CopyMasked(pg.twin, pg.working, pg.dirtyMask))
		} else {
			pg.twin = t.node.clonePageBuf(pg.working)
			t.node.stats.TwinBytesCopied += int64(cfg.PageSize)
		}
		localDiff.Apply(pg.working)
		dbuf.Release()
		t.node.putPageBuf(pg.dirtyWorking)
		t.node.putPageBuf(pg.dirtyTwin)
		pg.dirtyWorking, pg.dirtyTwin = nil, nil
		pg.state = pWritable
		// Re-list the page: the dirty-list entry that accompanied the
		// stashed writes may already have been consumed by a commit
		// (duplicates are deduplicated there).
		t.node.dirty = append(t.node.dirty, pg.id)
		return
	}
	pg.state = pReadOnly
}

// writeFault promotes a read-only page to writable: stall while the page
// is locked by an outstanding release (extended protocol, §4.2), then
// create the twin and record the page in the current interval.
func (t *Thread) writeFault(pg *page) {
	cfg := t.cl.cfg
	for pg.locked {
		t0 := t.beginWait()
		pg.lockGate.WaitTimeout(t.proc, 4*t.cl.cfg.HeartbeatTimeoutNs)
		t.endWait(CompDataWait, t0)
		if t.cl.rec.pending && !t.inRecovery {
			t.joinRecovery()
		}
	}
	t.safePoint()
	if pg.state != pReadOnly {
		return // state changed while stalled; caller re-evaluates
	}
	// Check, clone, and transition without an intervening yield: a sibling
	// completing the same fault during a yield would have its writes
	// captured into a re-cloned twin and silently excluded from the diff.
	if t.cl.tracked {
		// Lazy partial twin: no copy here — each chunk is snapshotted at
		// its first write (Thread.track). The buffer holds garbage outside
		// dirty chunks and is never read there. The modeled cost below is
		// unchanged: the simulated machine still pays a full-page copy.
		pg.twin = t.node.getPageBuf()
		pg.dirtyMask = t.node.getMaskBuf()
		if pg.denseHint {
			// Dense-writer fast path (see page.denseHint).
			copy(pg.twin, pg.working)
			mem.MarkRange(pg.dirtyMask, 0, cfg.PageSize)
			pg.maskFull = true
			t.node.stats.TwinBytesCopied += int64(cfg.PageSize)
		}
	} else {
		pg.twin = t.node.clonePageBuf(pg.working)
		t.node.stats.TwinBytesCopied += int64(cfg.PageSize)
	}
	pg.state = pWritable
	t.node.dirty = append(t.node.dirty, pg.id)
	t.node.stats.WriteFaults++
	t.charge(CompDataWait, cfg.PageFaultTrapNs)
	t.charge(CompDataWait, cfg.CopyNs(cfg.PageSize))
}

// invalidate processes one write notice on this node: page pid was
// modified by node src in interval itv. Runs at acquires, barriers, and
// recovery, in process context, charging protocol time to the thread.
func (t *Thread) invalidate(pid int, src int, itv int32) {
	n := t.node
	if src == n.id {
		return
	}
	pg := n.pt.pages[pid]
	if pg.reqVer[src] < itv {
		pg.reqVer[src] = itv
	}
	t.node.stats.Invalidations++
	t.charge(CompProtocol, t.cl.cfg.ProtoOpNs)
	if t.cl.opt.Mode == ModeBase && t.cl.pageHomes.Primary(pid) == n.id {
		// Base protocol: the home's working copy receives remote diffs
		// directly, so there is nothing to fetch — but the home must
		// still stall its own next access until every diff it was
		// notified of has arrived, or a lock-ordered read-modify-write
		// at the home races with in-flight diffs (the home's local
		// update would be overwritten by an older diff). Mark the page
		// stale, keeping working (and a possible twin) in place; the
		// fault path waits on the version instead of fetching.
		if pg.baseVer == nil || !pg.baseVer.Covers(pg.reqVer) {
			// A dirty home page keeps its twin: remote diffs patch both
			// working and twin, so local modifications survive the wait.
			pg.homeStale = true
			pg.state = pInvalid
		}
		return
	}
	switch pg.state {
	case pWritable:
		// False sharing: stash the uncommitted local writes; the next
		// access fetches the home copy and merges them back.
		pg.dirtyTwin = pg.twin
		pg.dirtyWorking = pg.working
		pg.stashMask = pg.dirtyMask
		pg.twin = nil
		pg.working = nil
		pg.dirtyMask = nil
		pg.maskFull = false
		pg.state = pInvalid
	case pReadOnly:
		pg.state = pInvalid
	}
}

// applyNotices processes a batch of update lists, skipping intervals this
// node has already performed, and merges the accompanying vector time.
func (t *Thread) applyNotices(lists []proto.UpdateList, vt proto.VectorTime) {
	n := t.node
	for _, ul := range lists {
		if ul.Node == n.id || ul.Interval <= n.vt[ul.Node] {
			continue
		}
		for _, pid := range ul.Pages {
			t.invalidate(pid, ul.Node, ul.Interval)
		}
	}
	if vt != nil {
		n.vt.Merge(vt)
	}
}

// fetchUpdates pulls the update lists this node is missing relative to
// target from their origin nodes (the acquire-side write-notice fetch of
// §3.2) and applies them. Dead origins are recovered from the failure
// machinery, which re-broadcasts the replicated lists.
func (t *Thread) fetchUpdates(target proto.VectorTime) {
	n := t.node
	for src := range target {
		if src == n.id || target[src] <= n.vt[src] {
			continue
		}
		req := &updatesReq{From: n.vt[src] + 1, To: target[src]}
		t0 := t.beginWait()
		v, err := n.ep.RequestAbort(t.proc, src, req.wireBytes(), req, func() bool { return t.cl.rec.pending })
		t.endWait(CompProtocol, t0)
		if err != nil {
			if errors.Is(err, vmmc.ErrNodeDead) || errors.Is(err, vmmc.ErrAborted) {
				t.joinRecoveryErr(err)
				// Recovery merged the replicated lists; re-check remaining.
				continue
			}
			panic(fmt.Sprintf("svm: fetch updates from %d: %v", src, err))
		}
		rep := v.(*updatesReply)
		t.applyNotices(rep.Lists, nil)
		if n.vt[src] < target[src] {
			n.vt[src] = target[src]
		}
	}
}

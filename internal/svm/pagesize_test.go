package svm

import (
	"fmt"
	"testing"

	"ftsvm/internal/model"
)

// multiWriterBody has each thread write its own stripe of every page plus
// bump a shared per-page counter word, so small pages see one writer per
// page and large pages see four concurrent writers merging through
// word diffs — the page-size axis of the false-sharing machinery.
func multiWriterBody(pages, iters int, pageSize int) func(*Thread) {
	return func(t *Thread) {
		st := &counterState{}
		t.Setup(st)
		for st.Iter < iters {
			t.Acquire(0)
			for p := 0; p < pages; p++ {
				base := p * pageSize
				slot := base + 64 + t.ID()*8
				t.WriteU64(slot, t.ReadU64(slot)+1)
				t.WriteU64(base, t.ReadU64(base)+1)
			}
			st.Iter++
			t.Release(0)
		}
		t.Barrier()
	}
}

// TestPageSizeVariants runs both protocols at 1K, 4K and 16K pages and
// checks exactness of every slot: the protocol must be correct at any
// coherence granularity, not just the default 4096.
func TestPageSizeVariants(t *testing.T) {
	const pages, iters, nodes = 4, 6, 4
	for _, size := range []int{1024, 4096, 16384} {
		for _, mode := range []Mode{ModeBase, ModeFT} {
			t.Run(fmt.Sprintf("%s/%d", mode, size), func(t *testing.T) {
				cfg := model.Default()
				cfg.Nodes = nodes
				cfg.PageSize = size
				cl, err := New(Options{
					Config: cfg, Mode: mode, Pages: pages, Locks: 1,
					Body: multiWriterBody(pages, iters, size),
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := cl.Run(); err != nil {
					t.Fatal(err)
				}
				if !cl.Finished() {
					t.Fatal("threads did not finish")
				}
				for p := 0; p < pages; p++ {
					if got := cl.PeekU64(p * size); got != nodes*iters {
						t.Fatalf("page %d shared word = %d, want %d", p, got, nodes*iters)
					}
					for tid := 0; tid < nodes; tid++ {
						if got := cl.PeekU64(p*size + 64 + tid*8); got != iters {
							t.Fatalf("page %d stripe %d = %d, want %d", p, tid, got, iters)
						}
					}
				}
			})
		}
	}
}

// TestPageSizeFailure repeats the sweep's key failure window (phase 1) at
// a non-default page size: recovery's diff undo and replica reconcile
// must not bake in the 4096 constant anywhere.
func TestPageSizeFailure(t *testing.T) {
	for _, size := range []int{1024, 16384} {
		t.Run(fmt.Sprintf("%d", size), func(t *testing.T) {
			cfg := model.Default()
			cfg.Nodes = 4
			cfg.PageSize = size
			const iters = 8
			cl, err := New(Options{
				Config: cfg, Mode: ModeFT, Pages: 4, Locks: 1,
				Body: multiWriterBody(4, iters, size),
			})
			if err != nil {
				t.Fatal(err)
			}
			tr := &killTracer{cl: cl, kind: "release.phase1", node: 2, seq: 3}
			cl.opt.Tracer = tr
			if err := cl.Run(); err != nil {
				t.Fatal(err)
			}
			if !tr.done {
				t.Skip("kill point never reached")
			}
			if !cl.Finished() {
				t.Fatal("threads did not finish")
			}
			for p := 0; p < 4; p++ {
				if got := cl.PeekU64(p * size); got != 4*iters {
					t.Fatalf("page %d shared word = %d, want %d", p, got, 4*iters)
				}
			}
			verifyReplicaInvariants(t, cl)
		})
	}
}

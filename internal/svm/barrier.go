package svm

import (
	"ftsvm/internal/model"
	"ftsvm/internal/obs"
	"ftsvm/internal/proto"
	"ftsvm/internal/vmmc"
)

// Barrier performs a global barrier over all compute threads: each node's
// last-arriving thread performs the node's release operation (committing
// and propagating the interval — the full two-phase pipeline with
// checkpointing in the extended protocol), sends the node's arrival to the
// barrier master, and all threads wait for the master's release broadcast,
// which carries the merged vector time and write notices.
//
// As with any global barrier, every thread must execute the same number
// of Barrier calls over its lifetime; a thread that stops arriving while
// others still wait would deadlock the episode. Threads that finish their
// body are excluded from subsequent episodes automatically.
func (t *Thread) Barrier() {
	t.safePoint()
	t.inBarrier = true
	defer func() { t.inBarrier = false }()

	n := t.node
	epoch := t.barSeq + 1
	if int64(n.barEpoch) >= epoch {
		// A replayed thread re-executing a barrier the cluster already
		// completed: fall through (its node performed the release then).
		t.barSeq = epoch
		return
	}
	n.barCount[epoch]++
	t.arriveIfReady(epoch)

	for int64(n.barEpoch) < epoch {
		if rel := n.barRelease; rel != nil && int64(rel.Epoch) == epoch {
			// First waiter to see the release applies it for the node.
			n.barRelease = nil
			t.applyNotices(rel.Lists, rel.VT)
			n.barEpoch = int(epoch)
			delete(n.barCount, epoch)
			n.barGate.Broadcast()
			break
		}
		t0 := t.beginWait()
		woken := n.barGate.WaitTimeout(t.proc, t.cl.cfg.BarrierWaitNs())
		t.endWait(CompBarrier, t0)
		if !woken {
			t.probeCluster()
		}
		if t.cl.rec.pending && !t.inRecovery {
			t.participateRecovery()
		}
		// Re-evaluate on every wake: a sibling thread finishing its body
		// (it will never arrive, so this waiter may now be the node's
		// last live arriver — a migrated thread replaying a shortened
		// barrier sequence exits exactly this way), or a recovery wiping
		// the in-flight arrival, can complete the node's episode with no
		// new arrival ever calling Barrier.
		t.arriveIfReady(epoch)
	}
	t.barSeq = epoch
}

// arriveIfReady performs the node-level release and ships the node's
// arrival for episode epoch once every live unfinished thread on the
// node has arrived. It is called from Barrier entry and from every
// barrier wake, so it must be idempotent: the release pipeline runs
// when an arrival completes the count and again only if new arrivals
// landed since (a migrated thread's replayed writes must be committed
// before the node's arrival ships them — but a recovery that merely
// wiped the in-flight arrival message triggers a bare resend, not a
// re-release), barSentEpoch ensures one arrival ships, and barArriving
// keeps concurrent waiters out while the releasing thread is blocked
// inside the pipeline — a second sendArrival would overwrite the first
// at the master and lose its update lists.
func (t *Thread) arriveIfReady(epoch int64) {
	n := t.node
	if int64(n.barEpoch) >= epoch || n.barSentEpoch >= epoch || n.barArriving {
		return
	}
	if n.barArrived(epoch) < n.liveThreads() {
		return
	}
	n.barArriving = true
	defer func() { n.barArriving = false }()
	if n.barReleasedEpoch < epoch || n.barReleasedCount != n.barCount[epoch] {
		n.barReleasedEpoch = epoch
		n.barReleasedCount = n.barCount[epoch]
		t.performRelease(nil)
	}
	if n.barSentEpoch < epoch && int64(n.barEpoch) < epoch {
		t.sendArrival(epoch)
	}
}

// barArrived counts threads that have satisfied episode epoch on this
// node: parked arrivals plus threads already past it. The second term is
// zero in normal operation (a thread's barSeq reaches epoch only after
// the node's own barEpoch does, and arriveIfReady returns early then) —
// it exists for migrated threads restored from a mid-barrier checkpoint,
// whose barSeq resumes at the episode their death interval completed.
// Such a thread never re-arrives at that episode on its new node, and
// without this credit the node's count could never fill.
func (n *node) barArrived(epoch int64) int {
	c := n.barCount[epoch]
	for _, s := range n.threads {
		if !s.dead && !s.finished && s.barSeq >= epoch {
			c++
		}
	}
	return c
}

// drained reports whether every thread ever hosted on this node finished
// its body — only then can the node never again arrive at a barrier
// episode. Dead threads do NOT drain a node: a missing arrival from a
// node with dead unfinished threads is an undetected failure, and the
// episode must keep waiting so the members' timeout probes detect it and
// recovery re-forms the barrier against the new membership — releasing
// without it would silently drop the dead node's remaining intervals.
func (n *node) drained() bool {
	for _, s := range n.threads {
		if !s.finished {
			return false
		}
	}
	return true
}

// liveThreads returns the number of unfinished live threads currently on
// the node (it grows when failed threads migrate here).
func (n *node) liveThreads() int {
	c := 0
	for _, s := range n.threads {
		if !s.dead && !s.finished {
			c++
		}
	}
	return c
}

// sendArrival ships the node's barrier arrival — its vector time and the
// update lists it has not yet shipped at a barrier — to the master.
func (t *Thread) sendArrival(epoch int64) {
	n := t.node
	lists := append([]proto.UpdateList(nil), n.intervals[n.barSentIntervals:]...)
	n.barSentIntervals = len(n.intervals)
	n.barSentEpoch = epoch
	t.cl.trace(obs.KBarrierArrive, n.id, t.id, epoch)
	a := &barArrive{Epoch: int(epoch), Node: n.id, VT: n.vt.Clone(), Lists: lists}
	master := t.cl.masterNode()
	if master == n.id {
		n.masterArrive(a)
		t.charge(CompBarrier, t.cl.cfg.ProtoOpNs)
		return
	}
	t.charge(CompBarrier, t.cl.cfg.NICPostOverheadNs)
	t0 := t.beginWait()
	n.ep.Post(t.proc, master, n.msgWire(master, a), a)
	t.endWait(CompBarrier, t0)
}

// masterNode returns the barrier master: the lowest-numbered node still in
// the cluster. (A failed-but-undetected master stalls arrivals until the
// timeout probe triggers recovery, which excludes it.)
func (cl *Cluster) masterNode() int {
	for i, n := range cl.nodes {
		if !n.excluded {
			return i
		}
	}
	panic("svm: no live nodes")
}

// masterArrive records a node's arrival and completes the episode if it
// is now fully arrived. Runs in engine or process context, never blocks.
func (n *node) masterArrive(a *barArrive) {
	if a.Epoch <= n.masterDone {
		return // stale resend for an already-released episode
	}
	byNode := n.masterArrivals[a.Epoch]
	if byNode == nil {
		byNode = make(map[int]*barArrive)
		n.masterArrivals[a.Epoch] = byNode
	}
	byNode[a.Node] = a
	n.masterTryRelease(a.Epoch)
}

// masterTryRelease merges and broadcasts episode epoch once every member
// that can still arrive has: a missing arrival blocks the release unless
// its node has drained (every thread finished). A drained node can never
// arrive — unreachable in a healthy run (a thread parks inside its final
// barrier call until the release, so its node's arrival is always either
// recorded or still owed by an unfinished thread), but a migrated thread
// replaying its post-loop barrier call arrives at an episode beyond
// everyone else's last, and that episode must complete once the rest of
// the cluster drains (noteThreadExit re-evaluates). Runs in engine or
// process context, never blocks.
func (n *node) masterTryRelease(epoch int) {
	if epoch <= n.masterDone {
		return
	}
	byNode := n.masterArrivals[epoch]
	if byNode == nil {
		return
	}
	for _, nd := range n.cl.nodes {
		if !nd.excluded && byNode[nd.id] == nil && !nd.drained() {
			return // still waiting for a member's arrival
		}
	}
	// Merge and release, in node order: ranging over the map would vary
	// the broadcast's list order between runs (harmless semantically —
	// applying update lists is commutative — but cross-run determinism of
	// the full event stream is part of the simulator's contract).
	vt := proto.NewVector(len(n.cl.nodes))
	var lists []proto.UpdateList
	for _, nd := range n.cl.nodes {
		if arr := byNode[nd.id]; arr != nil {
			vt.Merge(arr.VT)
			lists = append(lists, arr.Lists...)
		}
	}
	rel := &barRelease{Epoch: epoch, VT: vt, Lists: lists}
	n.masterDone = epoch
	n.stats.BarrierEpisodes++
	delete(n.masterArrivals, epoch)
	// Boundary: the master has merged the episode but broadcast nothing
	// yet. A master killed here strands every member mid-barrier with the
	// release undelivered — recovery must replace the master and resend
	// arrivals against the new membership.
	n.cl.trace(obs.KBarrierRelease, n.id, -1, int64(epoch))
	if n.cl.cfg.FanoutArity >= 2 {
		// Spanning-tree broadcast: deliverBarRelease forwards to this
		// node's tree children, and every receiver forwards onward.
		n.deliverBarRelease(rel)
		return
	}
	for _, nd := range n.cl.nodes {
		if nd.excluded || nd.id == n.id {
			continue
		}
		n.ep.PostSystem(nd.id, n.msgWire(nd.id, rel), rel)
	}
	n.deliverBarRelease(rel)
}

// deliverBarRelease lands a barrier release on this node; under tree
// fan-out it also forwards the release to the node's tree children from
// NI context (the Hermes-style cheap broadcast: each hop pays post, drain,
// and wire costs, but no processor is involved in relaying).
func (n *node) deliverBarRelease(rel *barRelease) {
	if int64(rel.Epoch) <= int64(n.barEpoch) {
		return
	}
	if n.cl.cfg.FanoutArity >= 2 && int64(rel.Epoch) > n.barForwarded {
		// The duplicate-forward guard: post-recovery resends may deliver
		// one epoch's release twice (old tree + new tree); each node relays
		// a given episode at most once, so no forwarding cycle can form
		// when membership — and with it the tree shape — changes between
		// deliveries.
		n.barForwarded = int64(rel.Epoch)
		for _, c := range n.cl.fanoutChildren(n.id) {
			n.ep.PostSystem(c, n.msgWire(c, rel), rel)
		}
	}
	n.barRelease = rel
	n.barGate.Broadcast()
}

// fanoutChildren returns the ids this node forwards a tree broadcast to:
// the live (non-excluded) membership is listed in ascending id order with
// the current master rotated to the root, and the node at tree index i
// has children at indexes k*i+1 .. k*i+k. Recomputed per call so the tree
// always reflects the current membership — a recovery that excludes a
// node reshapes the tree for every later broadcast.
func (cl *Cluster) fanoutChildren(self int) []int {
	k := cl.cfg.FanoutArity
	live := make([]int, 0, len(cl.nodes))
	master := cl.masterNode()
	live = append(live, master)
	for id, nd := range cl.nodes {
		if !nd.excluded && id != master {
			live = append(live, id)
		}
	}
	idx := -1
	for i, id := range live {
		if id == self {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil // excluded nodes relay nothing
	}
	lo := k*idx + 1
	if lo >= len(live) {
		return nil
	}
	hi := lo + k
	if hi > len(live) {
		hi = len(live)
	}
	return live[lo:hi]
}

// probeCluster checks node liveness; a dead node found outside a
// communication error (e.g. while waiting at a barrier) is reported to the
// failure machinery. This is the heartbeat of §4.1: in oracle mode a free
// ground-truth sweep over every node (the seed behavior), in probe mode
// real probe/ack rounds through the NIC, with a failure reported only once
// the detector has confirmed ProbeMissLimit consecutive misses. With
// Config.ProbeNeighbors > 0 each probe-mode sweep covers only a rotating
// ring window of that many live peers — per-sweep traffic drops from
// O(N) probes per waiter (O(N^2) cluster-wide) to O(k), and the rotation
// guarantees every peer is still probed within ceil((N-1)/k) sweeps, so a
// failure anywhere is detected, just over a few more timeouts.
func (t *Thread) probeCluster() {
	cl := t.cl
	if cl.cfg.Detection != model.DetectProbe {
		for i, nd := range cl.nodes {
			if !nd.excluded && !cl.net.Alive(i) {
				cl.reportFailure(i)
			}
		}
		return
	}
	n := t.node
	targets := t.probeTargets()
	for _, i := range targets {
		t.charge(CompProtocol, cl.cfg.NICPostOverheadNs)
		t0 := t.beginWait()
		alive := n.ep.DetectRound(t.proc, i)
		t.endWait(CompProtocol, t0)
		if !alive {
			cl.reportFailure(i)
		}
	}
}

// probeTargets returns the peers this probe-mode sweep checks: every live
// peer (the paper-scale behavior), or the node's current rotating ring
// window when Config.ProbeNeighbors bounds the sweep.
func (t *Thread) probeTargets() []int {
	cl := t.cl
	n := t.node
	ring := make([]int, 0, len(cl.nodes))
	for id, nd := range cl.nodes {
		if !nd.excluded {
			ring = append(ring, id)
		}
	}
	k := cl.cfg.ProbeNeighbors
	targets := vmmc.RingWindow(ring, n.id, n.probeRot, k)
	if k > 0 && k < len(ring)-1 {
		n.probeRot += k
		if n.probeRot >= (len(ring)-1)*len(ring) {
			n.probeRot = 0 // keep the offset small; any multiple of one lap is equivalent
		}
	}
	return targets
}

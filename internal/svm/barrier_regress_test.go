package svm

import (
	"strings"
	"testing"

	"ftsvm/internal/model"
	"ftsvm/internal/sim"
)

// perSlotBody is a falseshare-style workload: each thread owns an 8-byte
// slot and bumps it once per phase, with a barrier between phases. All
// slots share pages, so every phase's release ships diffs.
func perSlotBody(iters int) func(*Thread) {
	return func(th *Thread) {
		st := &barrierState{}
		th.Setup(st)
		for st.Phase < iters {
			v := th.ReadU64(th.ID() * 8)
			th.Compute(150)
			th.WriteU64(th.ID()*8, v+1)
			st.Phase++
			th.Barrier()
		}
	}
}

// TestFailAtBarrierArrivalEpoch is the minimized regression for a
// cluster-wide livelock found by failure-point exploration: kill a node
// exactly at its own barrier arrival. The node's thread migrates and
// replays from a checkpoint whose barrier sequence is one episode
// behind, so the migrated thread finishes its body WITHOUT arriving at
// the destination node's final episode. Threads already waiting there
// had counted it as a future arriver; unless every barrier wake
// re-evaluates whether the waiter is now the node's last live arriver,
// the node never releases, no arrival ever reaches the master, and the
// whole cluster probes forever. The run must instead complete with every
// slot at its full count.
func TestFailAtBarrierArrivalEpoch(t *testing.T) {
	const iters = 8
	for _, victim := range []int{1, 2} {
		for _, epoch := range []int64{3, 7} {
			cfg := model.Default()
			cfg.Nodes = 4
			tracer := &killTracer{kind: "barrier.arrive", node: victim, seq: epoch}
			opt := Options{Config: cfg, Mode: ModeFT, Pages: 8, Locks: 1, Body: perSlotBody(iters), Tracer: tracer}
			cl, err := New(opt)
			if err != nil {
				t.Fatal(err)
			}
			cl.EnableFlightRecorder(64)
			cl.EnableAuditor(1)
			tracer.cl = cl
			// A livelock here would spin forever; bound the run so the
			// regression fails fast instead of hanging the suite.
			cl.Engine().SetEventBudget(2_000_000)
			if err := cl.Run(); err != nil {
				t.Fatalf("victim %d epoch %d: %v", victim, epoch, err)
			}
			if !tracer.done {
				t.Fatalf("victim %d: barrier.arrive seq %d never fired", victim, epoch)
			}
			if !cl.Finished() {
				t.Fatalf("victim %d epoch %d: threads did not finish", victim, epoch)
			}
			for slot := 0; slot < cfg.Nodes; slot++ {
				if got := cl.PeekU64(slot * 8); got != iters {
					t.Fatalf("victim %d epoch %d: slot %d = %d, want %d", victim, epoch, slot, got, iters)
				}
			}
			verifyReplicaInvariants(t, cl)
		}
	}
}

// TestSimultaneousFailurePanicsOnRunCaller: two nodes dying inside one
// detection window is outside the single-failure model (§4.1). The
// refusal is a deterministic panic, and it must surface on Run's caller
// as a recoverable *sim.ProcPanic — the failure explorer depends on
// catching it rather than crashing the process.
func TestSimultaneousFailurePanicsOnRunCaller(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 4
	opt := Options{Config: cfg, Mode: ModeFT, Pages: 8, Locks: 1, Body: counterBody(8)}
	cl, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	cl.Engine().At(2_000_000, func() {
		cl.KillNode(1)
		cl.KillNode(2)
	})
	defer func() {
		r := recover()
		pp, ok := r.(*sim.ProcPanic)
		if !ok {
			t.Fatalf("recovered %v (%T), want *sim.ProcPanic", r, r)
		}
		if !strings.Contains(pp.Error(), "simultaneous") {
			t.Fatalf("panic %q does not name the simultaneous failure", pp.Error())
		}
	}()
	cl.Run()
	t.Fatal("Run completed despite simultaneous failures")
}

package svm

import (
	"fmt"
	"math"
	"math/bits"

	"ftsvm/internal/checkpoint"
	"ftsvm/internal/mem"
	"ftsvm/internal/model"
	"ftsvm/internal/obs"
	"ftsvm/internal/proto"
	"ftsvm/internal/sim"
	"ftsvm/internal/vmmc"
)

// Mode selects the protocol variant.
type Mode int

const (
	// ModeBase is the original failure-free GeNIMA protocol: one home per
	// page, diffs only for non-home pages, no checkpointing.
	ModeBase Mode = iota
	// ModeFT is the extended protocol: two homes per page with
	// tentative/committed copies, two-phase diff propagation, page
	// locking, replicated locks, and thread checkpointing.
	ModeFT
)

func (m Mode) String() string {
	if m == ModeBase {
		return "base"
	}
	return "extended"
}

// LockAlgo selects the lock synchronization algorithm.
type LockAlgo int

const (
	// LockPolling is the stateless centralized polling lock the paper
	// adopts (§4.3): a per-lock vector at a home node, written and read
	// with remote operations. In ModeFT the vector and the release
	// timestamp are replicated at a secondary home.
	LockPolling LockAlgo = iota
	// LockQueue is GeNIMA's distributed queuing lock, kept as the
	// ablation baseline the paper compares against. It has no
	// fault-tolerant variant (that design was abandoned for complexity).
	LockQueue
	// LockNIC implements the paper's §6 future-work suggestion: the lock
	// home's network interface performs an atomic test-and-set, so an
	// uncontended acquire is a single round trip instead of the polling
	// lock's write+read+clear sequence. It remains stateless at the home
	// (one owner word + the release timestamp) and therefore keeps the
	// polling lock's trivial recovery; ModeFT replicates it the same way.
	LockNIC
)

func (a LockAlgo) String() string {
	switch a {
	case LockPolling:
		return "polling"
	case LockQueue:
		return "queue"
	default:
		return "nic"
	}
}

// TraceEvent is emitted at protocol milestones; failure-injection tests
// use these to kill nodes inside specific protocol windows.
type TraceEvent struct {
	// Kind names follow internal/obs.Kind.String(): "release.commit",
	// "release.phase1", "release.savets", "release.ckptB",
	// "release.phase2", "release.done", "ckpt.A", "barrier.arrive",
	// "lock.set", "lock.clear", "lock.grant", "lock.held",
	// "lock.release", "kill", "recovery.*".
	Kind   string
	Node   int
	Thread int
	Seq    int64 // per-node release count, barrier epoch, or lock id
}

// Tracer receives trace events in simulation context. Implementations may
// call Cluster.KillNode from Event.
type Tracer interface {
	Event(e TraceEvent)
}

// Options configures a cluster run.
type Options struct {
	Config   model.Config
	Mode     Mode
	LockAlgo LockAlgo

	// Pages is the number of shared pages; the shared address space is
	// Pages*Config.PageSize bytes.
	Pages int
	// Locks is the number of application locks.
	Locks int
	// HomeAssign maps a page to its (primary) home node. Nil means
	// block-distributed: page p lives on node p*nodes/pages.
	HomeAssign func(page int) int
	// Body is the application thread body, run once per compute thread.
	Body func(t *Thread)
	// Tracer, if set, observes protocol milestones.
	Tracer Tracer
	// SerialReleases forces lock releases on one node to serialize, as the
	// paper's initial extended design does. ModeFT sets this implicitly.
	SerialReleases bool
	// AggregateDiffs batches all of a release's diffs bound for the same
	// home into one message (the paper's §6 suggestion for reducing
	// network-interface contention). Off by default to match the paper's
	// measured configuration.
	AggregateDiffs bool
	// UnsafeSinglePhase collapses the extended protocol's two diff
	// propagation phases into one: both home copies are updated
	// concurrently under a single fence. It quantifies what the two-phase
	// ordering costs — and deliberately forfeits its guarantee: a failure
	// mid-propagation can leave the two replicas of a page irreconcilable
	// (neither copy is known-complete). For ablation only.
	UnsafeSinglePhase bool
	// FullTwins disables dirty-chunk write tracking: write faults copy
	// the whole page into the twin and diff creation scans the whole
	// page, as in the original implementation. Protocol outputs (virtual
	// times, messages, diff contents) are identical either way — tracking
	// only changes how the simulator computes them — so this is an
	// ablation/cross-check knob for host-side performance.
	FullTwins bool
	// Workers selects the execution engine: 0 or 1 runs the classic
	// serial engine; > 1 runs the conservative parallel engine with one
	// lane per node, Workers host goroutines, and lookahead
	// Config.LinkLatencyNs. The parallel engine commits effects in the
	// serial engine's exact event order, so every virtual-time metric,
	// RNG draw, and memory image is bit-identical to Workers = 1 — only
	// host wall-clock changes. Features that are inherently serial
	// (tracers, flight recording, auditing, commit sinks, chaos,
	// probe-mode detection, deterministic drops, failure injection) fall
	// back to the serial engine; SerialFallbackReason reports why.
	Workers int
}

// Cluster is a running SVM cluster.
type Cluster struct {
	eng *sim.Engine
	cfg *model.Config
	opt *Options
	net *vmmc.Network

	nodes   []*node
	threads []*Thread

	pageHomes proto.Directory
	lockHomes proto.Directory
	// dirHashed records that the directories are consistent-hashed
	// (model.DirHashed): the recovery path then also charges the
	// home-delta broadcast that ships new overrides to the survivors
	// (a flat directory re-runs the same full scan everywhere and
	// needs no such message).
	dirHashed bool
	// rehomeWallNs accumulates host wall time spent inside directory
	// Rehome calls — the measured recovery-path directory cost that the
	// scaling bench reports (virtual time is charged separately).
	rehomeWallNs int64

	rec recoveryState

	sliceNs int64 // debt flush threshold

	// everKilled is set by the first KillNode. While false (every healthy
	// run), thread exits broadcast only their own node's barrier gate —
	// the cross-node wakeups exist solely so recovery barriers re-evaluate
	// when a thread that will never arrive finishes, and keeping them
	// node-local is what lets the parallel engine run exits lane-locally.
	everKilled bool

	// tracked enables dirty-chunk write tracking with lazy partial twins
	// (the default; see Options.FullTwins).
	tracked bool

	// pageShift/pageLow turn pageOf's div/mod into shift/mask when
	// PageSize is a power of two (pageShift == 0 means it is not).
	pageShift uint
	pageLow   int

	// trackWriters enables per-word last-writer tracking (extended
	// protocol with >1 thread/node): commitInterval defers a sibling's
	// mid-critical-section words to that sibling's own interval so a
	// replayed sibling never double-applies lock-protected writes.
	trackWriters bool

	// Observability (internal/obs), all nil/off by default so the
	// benchmark paths pay nothing: flight is the per-node event
	// recorder, aud the online invariant auditor, auditErr the first
	// violation it found (surfaced by Run).
	flight   *obs.Recorder
	aud      *auditor
	auditErr error

	// commitSink, when set, observes every committed interval (see
	// SetCommitSink). Nil by default: the commit path pays one branch.
	commitSink CommitSink

	// parReason, set by Run, is why Workers > 1 fell back to the serial
	// engine ("" when parallel execution was enabled or never requested).
	parReason string

	// phase records the virtual times of the failure-lifecycle milestones
	// (kill, recovery start, recovery done) as trace() passes them — the
	// phase-transition hook behind PhaseTimes. Always recorded, whether
	// or not a tracer or recorder is attached.
	phase phaseTrace
}

// node is one SMP node: a set of threads sharing a page table and the
// node-level protocol state.
type node struct {
	id int
	cl *Cluster
	ep *vmmc.Endpoint
	pt *pageTable

	vt proto.VectorTime
	// vtLink is the per-destination delta-codec context: the last vector
	// shipped on each outgoing link (see wire.go). Lazily allocated, nil
	// until the first delta-costed send; always nil under VTFull.
	vtLink    []proto.VectorTime
	intervals []proto.UpdateList // own committed update lists, index = interval-1
	dirty     []int              // pages written in the current interval
	commitSeq int64              // commitInterval pass counter (dirty-list dedup)

	// releaseBusy serializes release/commit critical sections on the node
	// (a recovery-interruptible mutex).
	releaseBusy bool
	releaseGate sim.Gate

	threads []*Thread
	busy    int
	// idleGate parks open-loop serving threads between requests
	// (Thread.IdleUntil); recovery broadcasts it so idle threads join the
	// recovery barrier promptly instead of sleeping through it.
	idleGate sim.Gate
	dead     bool // fail-stopped (ground truth, set at kill time)
	// excluded means a completed recovery removed this node from the
	// cluster: home maps, barrier membership, and backup rings no longer
	// reference it. Between dead and excluded, survivors still address the
	// node and discover the failure through timeouts and send errors.
	excluded bool

	// stats and ckptCount are this node's shard of the cluster counters.
	// Per-node shards keep every increment lane-local under the parallel
	// engine; sums commute, so aggregating at snapshot time (ProtoStats,
	// Metrics, CheckpointCount) is exact.
	stats     ProtoStats
	ckptCount int64

	// pageFree recycles page-size buffers (twins, working copies, fetch
	// payloads); see pagetable.go. maskFree recycles dirty-chunk masks.
	// Per-node for the same lane-locality reason: a buffer freed on the
	// node that last used it may migrate between node pools over its
	// lifetime, which is invisible to the protocol (contents are always
	// (re)initialized on get).
	pageFree [][]byte
	maskFree [][]uint64

	// Lock state: home-side entries for locks homed here, acquirer-side
	// node-level ownership.
	lockHomesState []*lockHome
	owned          map[int]*ownedLock
	qlWait         map[int]*sim.Future // queue lock: pending grants

	// Backup-node state: checkpoints and replicated protocol data for the
	// nodes this node backs up.
	ckpts      *checkpoint.Store
	savedTS    map[int]proto.VectorTime
	savedLists map[int][]proto.UpdateList
	savedStash map[int][]*mem.Diff // replicated self-secondary diffs
	ckptHome   map[int]int         // threadID -> original home node of backed-up threads

	// Barrier state (participant side).
	barEpoch         int           // last completed episode
	barCount         map[int64]int // per-episode local arrivals
	barSentEpoch     int64         // episode for which the node arrival was sent
	barReleasedEpoch int64         // episode for which the node release ran (survives recovery)
	barReleasedCount int           // arrival count covered by that release (new arrivals re-release)
	barArriving      bool          // a thread is mid release-and-arrive for this node
	barGate          sim.Gate
	barRelease       *barRelease
	barSentIntervals int   // own intervals already shipped in barrier arrivals
	barForwarded     int64 // highest episode relayed down the fan-out tree
	probeRot         int   // bounded probe sweep: rotating ring-window offset

	// Barrier state (master side).
	masterArrivals map[int]map[int]*barArrive // epoch -> node -> arrival
	masterDone     int                        // highest episode released

	releaseSeq int64 // per-node count of completed release operations
}

// lockHome is the home-side state of one lock.
type lockHome struct {
	vec  []bool // polling lock vector, one element per node
	vt   proto.VectorTime
	tail int // queue lock: last requester, -1 if free
	init bool
}

// ownedLock is a node's acquirer-side view of a lock it holds or is
// acquiring.
type ownedLock struct {
	held         bool    // this node owns the lock
	holder       *Thread // thread inside the critical section, nil if parked locally
	busy         bool    // a local thread is performing the remote acquire
	localWaiters int
	gate         sim.Gate
	// pendingGrant holds a queue-lock handoff obligation: when the local
	// release happens, grant to this node instead of keeping the cache.
	pendingGrant int // -1 none
	// releaseVT is the node's vector time at its last release of this
	// lock (queue lock: travels with a grant served from the cache).
	releaseVT proto.VectorTime
}

// New validates opt and builds a cluster ready to Run.
func New(opt Options) (*Cluster, error) {
	cfg := opt.Config
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opt.Pages <= 0 {
		return nil, fmt.Errorf("svm: Pages = %d, need > 0", opt.Pages)
	}
	if opt.Body == nil {
		return nil, fmt.Errorf("svm: no Body")
	}
	if cfg.Nodes < 2 {
		return nil, fmt.Errorf("svm: need >= 2 nodes, got %d", cfg.Nodes)
	}
	if cfg.Nodes*cfg.ThreadsPerNode > math.MaxInt16 {
		// Writer tags (page.writers) store thread ids as int16; a cluster
		// with more threads than that would silently alias writer identity
		// and corrupt the deferred-word bookkeeping. 32767 threads is far
		// past any tier this simulator models, so refuse rather than widen
		// the per-word tag array.
		return nil, fmt.Errorf("svm: %d threads exceed the int16 writer-tag capacity (%d)",
			cfg.Nodes*cfg.ThreadsPerNode, math.MaxInt16)
	}
	if opt.Mode == ModeFT && opt.LockAlgo == LockQueue {
		return nil, fmt.Errorf("svm: the queue lock has no fault-tolerant variant (§4.3); use LockPolling with ModeFT")
	}
	cl := &Cluster{
		eng:     sim.New(cfg.Seed),
		cfg:     &cfg,
		opt:     &opt,
		sliceNs: 20_000,
	}
	cl.trackWriters = opt.Mode == ModeFT && cfg.ThreadsPerNode > 1
	cl.tracked = !opt.FullTwins
	if psz := cfg.PageSize; psz&(psz-1) == 0 {
		cl.pageShift = uint(bits.TrailingZeros(uint(psz)))
		cl.pageLow = psz - 1
	}
	cl.net = vmmc.New(cl.eng, &cfg)
	assign := opt.HomeAssign
	if assign == nil {
		pages := opt.Pages
		assign = func(p int) int { return p * cfg.Nodes / pages }
	}
	nlocks := opt.Locks
	if nlocks == 0 {
		nlocks = 1
	}
	lockAssign := func(l int) int { return l % cfg.Nodes }
	degree := cfg.Degree()
	if cfg.Directory == model.DirHashed {
		cl.dirHashed = true
		// Distinct seeds so the page and lock rings scatter independently.
		cl.pageHomes = proto.NewHashedDirK(opt.Pages, cfg.Nodes, degree, cfg.Seed, assign)
		cl.lockHomes = proto.NewHashedDirK(nlocks, cfg.Nodes, degree, cfg.Seed+1, lockAssign)
	} else {
		cl.pageHomes = proto.NewHomeMapK(opt.Pages, cfg.Nodes, degree, assign)
		cl.lockHomes = proto.NewHomeMapK(nlocks, cfg.Nodes, degree, lockAssign)
	}

	cl.nodes = make([]*node, cfg.Nodes)
	for i := range cl.nodes {
		n := &node{
			id:             i,
			cl:             cl,
			ep:             cl.net.Endpoint(i),
			vt:             proto.NewVector(cfg.Nodes),
			owned:          make(map[int]*ownedLock),
			qlWait:         make(map[int]*sim.Future),
			ckpts:          checkpoint.NewStore(),
			savedTS:        make(map[int]proto.VectorTime),
			savedLists:     make(map[int][]proto.UpdateList),
			savedStash:     make(map[int][]*mem.Diff),
			ckptHome:       make(map[int]int),
			lockHomesState: make([]*lockHome, nlocks),
			barCount:       make(map[int64]int),
			masterArrivals: make(map[int]map[int]*barArrive),
		}
		n.pt = newPageTable(n, opt.Pages, cfg.Nodes)
		n.ep.SetHandler(n.handle)
		cl.nodes[i] = n
	}
	// Install home-side page storage at all k replica homes (slot 0 is
	// the primary/committed copy, every other slot a tentative copy).
	for p := 0; p < opt.Pages; p++ {
		if opt.Mode == ModeFT {
			cl.nodes[cl.pageHomes.Primary(p)].pt.initHome(p, proto.Primary, true, cfg.PageSize, cfg.Nodes)
			for s := 1; s < degree; s++ {
				cl.nodes[cl.pageHomes.Replica(p, s)].pt.initHome(p, proto.Secondary, true, cfg.PageSize, cfg.Nodes)
			}
		} else {
			cl.nodes[cl.pageHomes.Primary(p)].pt.initHome(p, proto.Primary, false, cfg.PageSize, cfg.Nodes)
		}
	}
	// Install home-side lock state at all k replica homes.
	for l := 0; l < nlocks; l++ {
		cl.nodes[cl.lockHomes.Primary(l)].initLockHome(l)
		if opt.Mode == ModeFT {
			for s := 1; s < degree; s++ {
				cl.nodes[cl.lockHomes.Replica(l, s)].initLockHome(l)
			}
		}
	}
	return cl, nil
}

func (n *node) initLockHome(l int) {
	if n.lockHomesState[l] == nil {
		n.lockHomesState[l] = &lockHome{
			vec:  make([]bool, n.cl.cfg.Nodes),
			vt:   proto.NewVector(n.cl.cfg.Nodes),
			tail: -1,
			init: true,
		}
	}
}

// Engine exposes the underlying simulation engine (for scheduling
// failure injection and custom events).
func (cl *Cluster) Engine() *sim.Engine { return cl.eng }

// Network exposes the simulated interconnect (for traffic statistics).
func (cl *Cluster) Network() *vmmc.Network { return cl.net }

// Mode returns the protocol variant the cluster runs.
func (cl *Cluster) Mode() Mode { return cl.opt.Mode }

// Run spawns ThreadsPerNode threads on every node, executes the
// application to completion, and returns the first simulation error
// (deadlock, app panic).
func (cl *Cluster) Run() error {
	if cl.opt.Workers > 1 {
		if reason := cl.serialOnly(); reason != "" {
			cl.parReason = reason
		} else {
			cl.eng.Parallel(cl.opt.Workers, cl.cfg.LinkLatencyNs)
			// Node lanes read the directories concurrently, and a lookup
			// cache fill is an in-place write; lookups are O(1) without
			// the cache, so just turn it off. Rehome never runs here —
			// failure injection forces the serial engine.
			if d, ok := cl.pageHomes.(*proto.HashedDir); ok {
				d.DisableCache()
			}
			if d, ok := cl.lockHomes.(*proto.HashedDir); ok {
				d.DisableCache()
			}
		}
	}
	tid := 0
	for _, n := range cl.nodes {
		for k := 0; k < cl.cfg.ThreadsPerNode; k++ {
			t := &Thread{id: tid, cl: cl, node: n}
			cl.threads = append(cl.threads, t)
			n.threads = append(n.threads, t)
			tid++
		}
	}
	for _, t := range cl.threads {
		cl.spawnThread(t)
	}
	err := cl.eng.Run()
	if cl.auditErr != nil {
		// The auditor stopped the engine at the faulting event; its
		// violation is the root cause, not the truncated-run fallout.
		return cl.auditErr
	}
	return err
}

// serialOnly returns a reason the run must use the serial engine, or ""
// when parallel execution is legal. Every listed feature either mutates
// state shared across nodes from arbitrary lanes (chaos RNG, drop
// counters, probe-mode membership, the flight recorder) or observes the
// global event order itself (tracer, auditor, commit sink) — both are
// meaningless or racy when lanes execute concurrently.
func (cl *Cluster) serialOnly() string {
	switch {
	case cl.opt.Tracer != nil:
		return "tracer attached"
	case cl.flight != nil:
		return "flight recorder attached"
	case cl.aud != nil:
		return "auditor attached"
	case cl.commitSink != nil:
		return "commit sink attached"
	case cl.cfg.Chaos.Enabled:
		return "network chaos enabled"
	case cl.cfg.Detection == model.DetectProbe:
		return "probe-mode failure detection"
	case cl.net.DropEveryNth() > 0:
		return "deterministic packet drops"
	}
	return ""
}

// EngineWorkers returns the number of engine workers the run actually
// uses: Options.Workers when the parallel engine engaged, 1 otherwise.
func (cl *Cluster) EngineWorkers() int {
	if cl.eng.IsParallel() {
		return cl.opt.Workers
	}
	return 1
}

// SerialFallbackReason reports why a Workers > 1 run fell back to the
// serial engine, or "" if it did not.
func (cl *Cluster) SerialFallbackReason() string { return cl.parReason }

// spawnThread starts (or restarts, after migration) a thread's body.
func (cl *Cluster) spawnThread(t *Thread) {
	name := fmt.Sprintf("t%d@n%d", t.id, t.node.id)
	t.proc = cl.eng.SpawnOn(cl.eng.Lane(t.node.id), name, func(p *sim.Proc) {
		t.node.busy++
		defer func() {
			t.node.busy--
			cl.noteThreadExit(t.node)
		}()
		cl.opt.Body(t)
		t.finished = true
		t.endTime = p.Now()
	})
}

// trace emits a protocol milestone to the attached tracer and the
// flight recorder. Both are nil-guarded and charge no virtual time, so
// the default (neither enabled) costs two branches and the simulated
// event stream is identical with or without them.
func (cl *Cluster) trace(kind obs.Kind, nodeID, threadID int, seq int64) {
	cl.phase.note(kind, nodeID, cl.eng.Now())
	if cl.opt.Tracer != nil {
		cl.opt.Tracer.Event(TraceEvent{Kind: kind.String(), Node: nodeID, Thread: threadID, Seq: seq})
	}
	if cl.flight != nil {
		cl.flight.Record(obs.Event{Kind: kind, Node: int32(nodeID), Thread: int32(threadID), Seq: seq})
	}
}

// EnableFlightRecorder attaches a per-node flight recorder keeping the
// last perNode protocol events of every node, stamped with virtual
// time. Call before Run. Returns the recorder so callers can attach a
// streaming sink or dump rings post-mortem.
func (cl *Cluster) EnableFlightRecorder(perNode int) *obs.Recorder {
	cl.flight = obs.NewRecorder(cl.cfg.Nodes, perNode, cl.eng.Now)
	return cl.flight
}

// FlightRecorder returns the attached recorder, or nil.
func (cl *Cluster) FlightRecorder() *obs.Recorder { return cl.flight }

// EnableWireTrace extends the flight recorder to wire-level boundaries:
// every vmmc message send (KMsgSend) and processed delivery
// (KMsgDeliver). Requires EnableFlightRecorder first; call before Run.
// Off by default — wire events outnumber protocol milestones by orders
// of magnitude and would flood the post-mortem rings, so only boundary
// enumeration (internal/explore) turns them on.
func (cl *Cluster) EnableWireTrace() {
	if cl.flight == nil {
		panic("svm: EnableWireTrace requires EnableFlightRecorder")
	}
	cl.net.SetFlightRecorder(cl.flight)
}

// CommitSink observes one committed interval: the committing node, the
// interval index it just opened (node's own vector entry after the
// commit), a snapshot of the node's vector time, and the captured diffs
// — everything a replay oracle needs to rebuild the interval's effect on
// a reference store. The diffs are the live protocol objects: the sink
// must not mutate them and must clone what it retains.
type CommitSink func(node int, interval int32, vt proto.VectorTime, diffs []*mem.Diff)

// SetCommitSink installs fn to run at every interval commit, before the
// interval propagates anywhere. Call before Run; pass nil to detach.
func (cl *Cluster) SetCommitSink(fn CommitSink) { cl.commitSink = fn }

// RecoveryPending reports whether a failure has been reported and its
// recovery episode has not yet completed.
func (cl *Cluster) RecoveryPending() bool { return cl.rec.pending }

// NodeDead reports whether node id has fail-stopped.
func (cl *Cluster) NodeDead(id int) bool { return cl.nodes[id].dead }

// Degree returns the home-replication degree k the cluster runs at.
func (cl *Cluster) Degree() int { return cl.cfg.Degree() }

// LiveNodes returns the number of nodes that have not fail-stopped.
func (cl *Cluster) LiveNodes() int {
	live := 0
	for _, n := range cl.nodes {
		if !n.dead {
			live++
		}
	}
	return live
}

// UnrecoveredFailures returns the number of failed nodes whose recovery
// episode has not yet completed (dead but not excluded). The protocol
// tolerates up to Degree()-1 of these overlapping; the k-th overlapping
// failure is the one the explorer's refusal rule rejects.
func (cl *Cluster) UnrecoveredFailures() int {
	c := 0
	for _, n := range cl.nodes {
		if n.dead && !n.excluded {
			c++
		}
	}
	return c
}

// Nodes returns the cluster size (including failed nodes).
func (cl *Cluster) Nodes() int { return cl.cfg.Nodes }

// NumPages returns the number of shared pages.
func (cl *Cluster) NumPages() int { return cl.pageHomes.Items() }

// DirectoryBytes returns the combined resident footprint of the page and
// lock home directories — the directory-memory metric of the scaling
// bench grid.
func (cl *Cluster) DirectoryBytes() int64 {
	return cl.pageHomes.MemoryBytes() + cl.lockHomes.MemoryBytes()
}

// RehomeWallNs returns the accumulated host wall time spent inside
// directory Rehome calls across every recovery this cluster ran.
func (cl *Cluster) RehomeWallNs() int64 { return cl.rehomeWallNs }

// PageSize returns the shared-page size in bytes.
func (cl *Cluster) PageSize() int { return cl.cfg.PageSize }

// LiveVT returns the merge of every live node's vector time — the final
// consistency frontier after a run. A failed node's entry is its saved
// (arbitrated) timestamp: recovery's global sync clamps the dead entry
// to the roll-forward/roll-back decision and merges it everywhere, so
// intervals beyond it were rolled back and never became visible.
func (cl *Cluster) LiveVT() proto.VectorTime {
	vt := proto.NewVector(cl.cfg.Nodes)
	for _, n := range cl.nodes {
		if !n.dead {
			vt.Merge(n.vt)
		}
	}
	return vt
}

// Metrics returns the unified counter snapshot: protocol stats,
// network traffic, and checkpoint counts under dotted prefixes.
func (cl *Cluster) Metrics() obs.Snapshot {
	reg := obs.NewRegistry()
	reg.Add("svm", func() []obs.Counter {
		s := cl.ProtoStats()
		return []obs.Counter{
			{Name: "read_faults", Value: s.ReadFaults},
			{Name: "remote_fetches", Value: s.RemoteFetches},
			{Name: "local_fetches", Value: s.LocalFetches},
			{Name: "write_faults", Value: s.WriteFaults},
			{Name: "pages_diffed", Value: s.PagesDiffed},
			{Name: "home_pages_diffed", Value: s.HomePagesDiffed},
			{Name: "twin_bytes_copied", Value: s.TwinBytesCopied},
			{Name: "diff_msgs", Value: s.DiffMsgs},
			{Name: "diff_bytes", Value: s.DiffBytes},
			{Name: "invalidations", Value: s.Invalidations},
			{Name: "intervals", Value: s.Intervals},
			{Name: "deferred_words", Value: s.DeferredWords},
			{Name: "remote_acquires", Value: s.RemoteAcquires},
			{Name: "intra_node_handoffs", Value: s.IntraNodeHandoffs},
			{Name: "barrier_episodes", Value: s.BarrierEpisodes},
			{Name: "recoveries", Value: s.Recoveries},
			{Name: "migrated_threads", Value: s.MigratedThreads},
		}
	})
	reg.Add("ckpt", func() []obs.Counter {
		return []obs.Counter{{Name: "checkpoints", Value: cl.CheckpointCount()}}
	})
	reg.Add("vmmc", func() []obs.Counter {
		var sum vmmc.Stats
		for i := range cl.nodes {
			st := cl.net.Endpoint(i).Stats()
			sum.MsgsSent += st.MsgsSent
			sum.BytesSent += st.BytesSent
			sum.MsgsReceived += st.MsgsReceived
			sum.PostStallsNs += st.PostStallsNs
		}
		return []obs.Counter{
			{Name: "msgs_sent", Value: sum.MsgsSent},
			{Name: "bytes_sent", Value: sum.BytesSent},
			{Name: "msgs_received", Value: sum.MsgsReceived},
			{Name: "post_stalls_ns", Value: sum.PostStallsNs},
			{Name: "retransmits", Value: cl.net.Retransmits},
			{Name: "retx_bytes", Value: cl.net.RetxBytes},
			{Name: "probes_sent", Value: cl.net.ProbesSent},
			{Name: "probe_acks", Value: cl.net.ProbeAcks},
			{Name: "false_suspicions", Value: cl.net.FalseSuspicions},
		}
	})
	return reg.Snapshot()
}

// backupOf returns the node that stores checkpoints and saved timestamps
// for node id: the next non-excluded, non-failed node in ring order.
func (cl *Cluster) backupOf(id int) int {
	for i := 1; i <= len(cl.nodes); i++ {
		c := (id + i) % len(cl.nodes)
		if !cl.nodes[c].dead && !cl.nodes[c].excluded {
			return c
		}
	}
	panic("svm: no live backup node")
}

// backupsOf returns the first m distinct live, non-excluded ring
// successors of node id — the deposit targets for k-replicated saved
// state (m = Degree()-1). The degree-2 hot path uses backupOf and never
// allocates.
func (cl *Cluster) backupsOf(id, m int) []int {
	out := make([]int, 0, m)
	for i := 1; i < len(cl.nodes) && len(out) < m; i++ {
		c := (id + i) % len(cl.nodes)
		if !cl.nodes[c].dead && !cl.nodes[c].excluded {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		panic("svm: no live backup node")
	}
	return out
}

// Threads returns all compute threads (including migrated ones).
func (cl *Cluster) Threads() []*Thread { return cl.threads }

// ExecTime returns the application execution time: the virtual time at
// which the last thread finished.
func (cl *Cluster) ExecTime() int64 {
	var max int64
	for _, t := range cl.threads {
		if t.endTime > max {
			max = t.endTime
		}
	}
	return max
}

// AvgBreakdown returns the per-component breakdown averaged over threads
// that finished.
func (cl *Cluster) AvgBreakdown() Breakdown {
	var sum Breakdown
	var n int64
	for _, t := range cl.threads {
		if t.finished {
			sum.Add(&t.bd)
			n++
		}
	}
	sum.Scale(n)
	return sum
}

// CheckpointCount returns the total number of thread-state checkpoints
// taken (points A and B across all releases), summed over the per-node
// shards.
func (cl *Cluster) CheckpointCount() int64 {
	var sum int64
	for _, n := range cl.nodes {
		sum += n.ckptCount
	}
	return sum
}

// Finished reports whether every live thread ran to completion.
func (cl *Cluster) Finished() bool {
	for _, t := range cl.threads {
		if !t.dead && !t.finished {
			return false
		}
	}
	return true
}

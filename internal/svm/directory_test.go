package svm

import (
	"fmt"
	"testing"

	"ftsvm/internal/model"
)

// runCounterWithDir runs the lock-protected counter workload with the
// given directory mode and returns the cluster.
func runCounterWithDir(t *testing.T, dir model.DirectoryMode, kill bool) *Cluster {
	t.Helper()
	cfg := model.Default()
	cfg.Nodes = 4
	cfg.Directory = dir
	const iters = 8
	opt := Options{Config: cfg, Mode: ModeFT, Pages: 8, Locks: 1, Body: counterBody(iters)}
	var tracer *killTracer
	if kill {
		tracer = &killTracer{kind: "release.done", node: 1, seq: 3}
		opt.Tracer = tracer
	}
	cl, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	cl.EnableAuditor(1)
	if tracer != nil {
		tracer.cl = cl
	}
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if !cl.Finished() {
		t.Fatal("not all threads finished")
	}
	checkCounter(t, cl, 4*iters)
	return cl
}

// TestDirectoryHealthyBitIdentical pins the flat-vs-hashed healthy-run
// guarantee the BENCH gates rely on: without failures, the hashed
// directory places every item exactly where the flat map does, so the
// run's virtual time and traffic are bit-identical.
func TestDirectoryHealthyBitIdentical(t *testing.T) {
	flat := runCounterWithDir(t, model.DirFlat, false)
	hashed := runCounterWithDir(t, model.DirHashed, false)
	if flat.ExecTime() != hashed.ExecTime() {
		t.Fatalf("exec time differs: flat %d vs hashed %d", flat.ExecTime(), hashed.ExecTime())
	}
	fm, hm := flat.Metrics().Map(), hashed.Metrics().Map()
	for _, m := range []string{"vmmc.msgs_sent", "vmmc.bytes_sent", "svm.intervals", "svm.write_faults"} {
		if fm[m] != hm[m] {
			t.Fatalf("%s differs: flat %d vs hashed %d", m, fm[m], hm[m])
		}
	}
}

// TestDirectoryHashedRecovery runs a mid-release kill with the hashed
// directory under the full-stride auditor: recovery must rehome through
// the override table, rebuild replicas from reverse-index deltas, and
// finish with the replica invariants intact.
func TestDirectoryHashedRecovery(t *testing.T) {
	cl := runCounterWithDir(t, model.DirHashed, true)
	verifyReplicaInvariants(t, cl)
	if cl.RehomeWallNs() <= 0 {
		t.Fatal("rehome wall time not recorded")
	}
	if cl.DirectoryBytes() <= 0 {
		t.Fatal("directory footprint not recorded")
	}
}

// TestDirectoryHashedEveryVictim sweeps the victim over all nodes: each
// node holds a different mix of page homes, lock homes, and barrier
// mastership, and the hashed rehoming path must recover all of them.
func TestDirectoryHashedEveryVictim(t *testing.T) {
	for victim := 0; victim < 4; victim++ {
		t.Run(fmt.Sprintf("victim%d", victim), func(t *testing.T) {
			cfg := model.Default()
			cfg.Nodes = 4
			cfg.Directory = model.DirHashed
			const iters = 8
			tracer := &killTracer{kind: "release.phase1", node: victim, seq: 2}
			opt := Options{Config: cfg, Mode: ModeFT, Pages: 8, Locks: 1,
				Body: counterBody(iters), Tracer: tracer}
			cl, err := New(opt)
			if err != nil {
				t.Fatal(err)
			}
			cl.EnableAuditor(1)
			tracer.cl = cl
			if err := cl.Run(); err != nil {
				t.Fatal(err)
			}
			if !cl.Finished() {
				t.Fatal("not all threads finished after recovery")
			}
			checkCounter(t, cl, 4*iters)
			verifyReplicaInvariants(t, cl)
		})
	}
}

// TestDirectoryHashedParallelIdentical pins worker-count independence
// for hashed healthy runs: the parallel engine disables the directory
// lookup cache, and lookups must produce the same placements (and thus
// bit-identical virtual metrics) either way.
func TestDirectoryHashedParallelIdentical(t *testing.T) {
	run := func(workers int) *Cluster {
		cfg := model.Default()
		cfg.Nodes = 4
		cfg.Directory = model.DirHashed
		opt := Options{Config: cfg, Mode: ModeFT, Pages: 8, Locks: 1,
			Body: counterBody(8), Workers: workers}
		cl, err := New(opt)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Run(); err != nil {
			t.Fatal(err)
		}
		return cl
	}
	serial := run(1)
	par := run(4)
	if reason := par.SerialFallbackReason(); reason != "" {
		t.Skipf("parallel engine unavailable: %s", reason)
	}
	if serial.ExecTime() != par.ExecTime() {
		t.Fatalf("exec time differs: serial %d vs parallel %d", serial.ExecTime(), par.ExecTime())
	}
	sm, pm := serial.Metrics().Map(), par.Metrics().Map()
	for _, m := range []string{"vmmc.msgs_sent", "vmmc.bytes_sent", "svm.intervals"} {
		if sm[m] != pm[m] {
			t.Fatalf("%s differs: serial %d vs parallel %d", m, sm[m], pm[m])
		}
	}
}

// TestAuditorLazyPrevReq pins the strided auditor's lazy allocation: a
// stride > 1 never allocates the version-history structure at all (the
// monotonicity invariant only runs at stride 1), so 512-node strided
// cells skip the O(N² x pages) setup the eager version paid.
func TestAuditorLazyPrevReq(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 4
	opt := Options{Config: cfg, Mode: ModeFT, Pages: 8, Locks: 1, Body: counterBody(4)}
	cl, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	cl.EnableAuditor(16)
	if cl.aud.prevReq != nil {
		t.Fatal("strided auditor allocated prevReq eagerly")
	}
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}

	cl2, err := New(Options{Config: cfg, Mode: ModeFT, Pages: 8, Locks: 1, Body: counterBody(4)})
	if err != nil {
		t.Fatal(err)
	}
	cl2.EnableAuditor(1)
	if cl2.aud.prevReq == nil {
		t.Fatal("stride-1 auditor needs the version-history structure")
	}
	for _, per := range cl2.aud.prevReq {
		for _, v := range per {
			if v != nil {
				t.Fatal("stride-1 auditor pre-allocated per-page vectors")
			}
		}
	}
	if err := cl2.Run(); err != nil {
		t.Fatal(err)
	}
}

package svm

import (
	"fmt"
	"testing"

	"ftsvm/internal/model"
)

// runCluster builds and runs a cluster with the given shape and body,
// failing the test on any simulation error.
func runCluster(t *testing.T, mode Mode, nodes, tpn, pages, locks int, body func(*Thread)) *Cluster {
	t.Helper()
	cfg := model.Default()
	cfg.Nodes = nodes
	cfg.ThreadsPerNode = tpn
	opt := Options{
		Config: cfg,
		Mode:   mode,
		Pages:  pages,
		Locks:  locks,
		Body:   body,
	}
	cl, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if !cl.Finished() {
		t.Fatal("not all threads finished")
	}
	return cl
}

// counterState is the canonical resumable state for the shared-counter
// body.
type counterState struct {
	Iter int
}

// counterBody increments a shared counter under lock 0, iters times per
// thread. The resumable-state contract: st.Iter is advanced *before*
// Release, so the point-B checkpoint taken inside Release reflects the
// completed iteration and a replay never double-applies it.
func counterBody(iters int) func(*Thread) {
	return func(t *Thread) {
		st := &counterState{}
		t.Setup(st)
		for st.Iter < iters {
			t.Acquire(0)
			v := t.ReadU64(0)
			t.Compute(200)
			t.WriteU64(0, v+1)
			st.Iter++
			t.Release(0)
		}
		t.Barrier()
	}
}

func checkCounter(t *testing.T, cl *Cluster, want uint64) {
	t.Helper()
	// Read the final value out of the primary home's authoritative copy.
	home := cl.pageHomes.Primary(0)
	pg := cl.nodes[home].pt.pages[0]
	var buf []byte
	if cl.opt.Mode == ModeFT {
		buf = pg.committed
	} else {
		buf = pg.working
	}
	got := uint64(buf[0]) | uint64(buf[1])<<8 | uint64(buf[2])<<16 | uint64(buf[3])<<24 |
		uint64(buf[4])<<32 | uint64(buf[5])<<40 | uint64(buf[6])<<48 | uint64(buf[7])<<56
	if got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
}

func TestSharedCounterBasePolling(t *testing.T) {
	cl := runCluster(t, ModeBase, 4, 1, 8, 1, counterBody(10))
	checkCounter(t, cl, 40)
}

func TestSharedCounterBaseQueueLock(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 4
	opt := Options{Config: cfg, Mode: ModeBase, LockAlgo: LockQueue, Pages: 8, Locks: 1, Body: counterBody(10)}
	cl, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	checkCounter(t, cl, 40)
}

func TestSharedCounterBaseNICLock(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 4
	opt := Options{Config: cfg, Mode: ModeBase, LockAlgo: LockNIC, Pages: 8, Locks: 1, Body: counterBody(10)}
	cl, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	checkCounter(t, cl, 40)
}

func TestSharedCounterFTNICLock(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 4
	opt := Options{Config: cfg, Mode: ModeFT, LockAlgo: LockNIC, Pages: 8, Locks: 1, Body: counterBody(10)}
	cl, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	checkCounter(t, cl, 40)
}

func TestSharedCounterFT(t *testing.T) {
	cl := runCluster(t, ModeFT, 4, 1, 8, 1, counterBody(10))
	checkCounter(t, cl, 40)
}

func TestSharedCounterFTSMP(t *testing.T) {
	cl := runCluster(t, ModeFT, 4, 2, 8, 1, counterBody(5))
	checkCounter(t, cl, 40)
}

func TestSharedCounterBaseSMP(t *testing.T) {
	cl := runCluster(t, ModeBase, 4, 2, 8, 1, counterBody(5))
	checkCounter(t, cl, 40)
}

// barrierState drives the phase-exchange body.
type barrierState struct {
	Phase int
}

// TestBarrierPropagation has every thread write its own slot, barrier,
// then verify it can read everyone's slot — for several rounds.
func TestBarrierPropagation(t *testing.T) {
	for _, mode := range []Mode{ModeBase, ModeFT} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			const rounds = 3
			nthreads := 4
			var fail error
			body := func(th *Thread) {
				st := &barrierState{}
				th.Setup(st)
				for ; st.Phase < rounds; st.Phase++ {
					th.WriteU64(th.ID()*8, uint64(1000*st.Phase+th.ID()))
					th.Barrier()
					for i := 0; i < nthreads; i++ {
						got := th.ReadU64(i * 8)
						want := uint64(1000*st.Phase + i)
						if got != want && fail == nil {
							fail = fmt.Errorf("phase %d: thread %d read slot %d = %d, want %d",
								st.Phase, th.ID(), i, got, want)
						}
					}
					th.Barrier()
				}
			}
			runCluster(t, mode, 4, 1, 8, 1, body)
			if fail != nil {
				t.Fatal(fail)
			}
		})
	}
}

// TestFalseSharing has all threads write disjoint words of the SAME page
// before a barrier; everyone must see the union afterwards (multiple
// writers).
func TestFalseSharing(t *testing.T) {
	for _, mode := range []Mode{ModeBase, ModeFT} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			nthreads := 4
			var fail error
			body := func(th *Thread) {
				st := &barrierState{}
				th.Setup(st)
				// All slots live in page 0 (offsets 0..31).
				th.WriteU32(th.ID()*4, uint32(100+th.ID()))
				th.Barrier()
				for i := 0; i < nthreads; i++ {
					got := th.ReadU32(i * 4)
					if got != uint32(100+i) && fail == nil {
						fail = fmt.Errorf("thread %d read slot %d = %d", th.ID(), i, got)
					}
				}
				th.Barrier()
			}
			runCluster(t, mode, 4, 1, 4, 1, body)
			if fail != nil {
				t.Fatal(fail)
			}
		})
	}
}

// TestLockPairwisePropagation checks the classic release->acquire
// visibility chain across distinct pages and nodes.
func TestLockPairwisePropagation(t *testing.T) {
	for _, mode := range []Mode{ModeBase, ModeFT} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			var fail error
			body := func(th *Thread) {
				st := &counterState{}
				th.Setup(st)
				const iters = 20
				for ; st.Iter < iters; st.Iter++ {
					th.Acquire(0)
					seq := th.ReadU64(0)
					// Writer of step k records k at page k%3+1.
					pageAddr := (int(seq)%3 + 1) * 4096
					prev := th.ReadU64(pageAddr)
					if prev > seq && fail == nil {
						fail = fmt.Errorf("stale read: page value %d > seq %d", prev, seq)
					}
					th.WriteU64(pageAddr, seq)
					th.WriteU64(0, seq+1)
					th.Release(0)
					th.Compute(500)
				}
				th.Barrier()
			}
			runCluster(t, mode, 4, 1, 8, 1, body)
			if fail != nil {
				t.Fatal(fail)
			}
		})
	}
}

func TestDeterministicExecution(t *testing.T) {
	run := func() int64 {
		cl := runCluster(t, ModeFT, 4, 2, 8, 1, counterBody(5))
		return cl.ExecTime()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic exec time: %d vs %d", a, b)
	}
	if a <= 0 {
		t.Fatal("zero exec time")
	}
}

// TestFTOverheadPositive: the extended protocol must cost more than the
// base protocol on the same workload (the paper's 20-100% overhead band,
// loosely).
func TestFTOverheadPositive(t *testing.T) {
	base := runCluster(t, ModeBase, 4, 1, 8, 1, counterBody(10)).ExecTime()
	ft := runCluster(t, ModeFT, 4, 1, 8, 1, counterBody(10)).ExecTime()
	if ft <= base {
		t.Fatalf("extended (%d ns) not slower than base (%d ns)", ft, base)
	}
}

func TestBreakdownComponentsAccumulate(t *testing.T) {
	cl := runCluster(t, ModeFT, 4, 1, 8, 1, counterBody(10))
	bd := cl.AvgBreakdown()
	if bd.Comp[CompCompute] <= 0 {
		t.Fatal("no compute time recorded")
	}
	if bd.Comp[CompDiff] <= 0 {
		t.Fatal("no diff time recorded in FT mode")
	}
	if bd.Comp[CompCheckpoint] <= 0 {
		t.Fatal("no checkpoint time recorded in FT mode")
	}
	if bd.Comp[CompBarrier] <= 0 {
		t.Fatal("no barrier time recorded")
	}
	c4, d4, l4, b4 := bd.FourWay()
	sixC, sixD, sixS, sixDf, sixP, sixK := bd.SixWay()
	sum4 := c4 + d4 + l4 + b4
	sum6 := sixC + sixD + sixS + sixDf + sixP + sixK
	if sum4 != bd.Total() || sum6 != bd.Total() {
		t.Fatalf("breakdown folds disagree: 4way=%d 6way=%d total=%d", sum4, sum6, bd.Total())
	}
}

func TestBaseHasNoCheckpointTime(t *testing.T) {
	cl := runCluster(t, ModeBase, 4, 1, 8, 1, counterBody(10))
	bd := cl.AvgBreakdown()
	if bd.Comp[CompCheckpoint] != 0 {
		t.Fatalf("base protocol recorded checkpoint time %d", bd.Comp[CompCheckpoint])
	}
}

// TestLossyNetwork runs the shared counter over a link that drops every
// 5th packet once: VMMC's retransmission must keep the protocols exact.
func TestLossyNetwork(t *testing.T) {
	for _, mode := range []Mode{ModeBase, ModeFT} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			cfg := model.Default()
			cfg.Nodes = 4
			cl, err := New(Options{Config: cfg, Mode: mode, Pages: 8, Locks: 1, Body: counterBody(8)})
			if err != nil {
				t.Fatal(err)
			}
			cl.Network().SetDropEveryNth(5)
			if err := cl.Run(); err != nil {
				t.Fatal(err)
			}
			checkCounter(t, cl, 32)
			if cl.Network().Retransmits == 0 {
				t.Fatal("no retransmissions happened; test ineffective")
			}
		})
	}
}

// TestLossyNetworkWithFailure combines transient drops with a real
// fail-stop: retransmission noise must not confuse failure detection.
func TestLossyNetworkWithFailure(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 4
	cl, err := New(Options{Config: cfg, Mode: ModeFT, Pages: 8, Locks: 1, Body: counterBody(8)})
	if err != nil {
		t.Fatal(err)
	}
	cl.Network().SetDropEveryNth(7)
	cl.Engine().At(3_000_000, func() { cl.KillNode(2) })
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	checkCounter(t, cl, 32)
	verifyReplicaInvariants(t, cl)
}

// TestThreadAPIBasics covers the scalar round trips and identity helpers.
func TestThreadAPIBasics(t *testing.T) {
	var nodeID, nthreads int
	var f64ok, u32ok, resumed bool
	var now0, now1 int64
	runCluster(t, ModeBase, 2, 1, 2, 1, func(th *Thread) {
		resumed = th.Setup(&counterState{})
		if th.ID() == 0 {
			nodeID = th.NodeID()
			nthreads = th.NThreads()
			now0 = th.Now()
			th.WriteF64(128, 3.25)
			f64ok = th.ReadF64(128) == 3.25
			th.WriteU32(256, 0xDEADBEEF)
			u32ok = th.ReadU32(256) == 0xDEADBEEF
			th.Compute(1000)
			now1 = th.Now()
		}
		th.Barrier()
	})
	if resumed {
		t.Fatal("fresh thread reported resumed")
	}
	if nodeID != 0 || nthreads != 2 {
		t.Fatalf("identity: node %d, threads %d", nodeID, nthreads)
	}
	if !f64ok || !u32ok {
		t.Fatal("scalar round trips failed")
	}
	if now1 <= now0 {
		t.Fatal("Now did not advance with Compute")
	}
}

// TestRangeOpsCrossPages round-trips slices spanning several pages.
func TestRangeOpsCrossPages(t *testing.T) {
	runCluster(t, ModeFT, 2, 1, 4, 1, func(th *Thread) {
		th.Setup(&counterState{})
		if th.ID() == 0 {
			src := make([]float64, 1024) // 8 KB: spans 3 pages from offset 100*8
			for i := range src {
				src[i] = float64(i) * 1.5
			}
			th.WriteF64s(800, src)
			dst := make([]float64, 1024)
			th.ReadF64s(800, dst)
			for i := range dst {
				if dst[i] != src[i] {
					t.Errorf("f64 slot %d: %g != %g", i, dst[i], src[i])
					break
				}
			}
			u := make([]uint32, 2000)
			for i := range u {
				u[i] = uint32(i * 7)
			}
			th.WriteU32s(8192, u)
			v := make([]uint32, 2000)
			th.ReadU32s(8192, v)
			for i := range v {
				if v[i] != u[i] {
					t.Errorf("u32 slot %d: %d != %d", i, v[i], u[i])
					break
				}
			}
		}
		th.Barrier()
	})
}

// TestAppSuiteDeterminism: two runs of the same seed produce identical
// virtual times for every workload (cheap smoke of the whole stack's
// determinism).
func TestExecTimePositiveAndDeterministic(t *testing.T) {
	run := func() int64 {
		return runCluster(t, ModeFT, 3, 2, 6, 2, counterBody(6)).ExecTime()
	}
	a, b := run(), run()
	if a != b || a <= 0 {
		t.Fatalf("exec times %d vs %d", a, b)
	}
}

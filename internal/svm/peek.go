package svm

import (
	"encoding/binary"
	"fmt"
)

// PeekBytes copies n bytes starting at shared address addr out of the
// authoritative home copies (the primary home's committed copy in the
// extended protocol, the home's working copy in the base protocol). It is
// an inspector for examples and tests after Run returns; it performs no
// protocol actions and consumes no virtual time.
func (cl *Cluster) PeekBytes(addr, n int) []byte {
	out := make([]byte, n)
	psz := cl.cfg.PageSize
	for i := 0; i < n; {
		pid := (addr + i) / psz
		off := (addr + i) % psz
		chunk := psz - off
		if chunk > n-i {
			chunk = n - i
		}
		home := cl.pageHomes.Primary(pid)
		pg := cl.nodes[home].pt.pages[pid]
		var buf []byte
		if cl.opt.Mode == ModeFT {
			buf = pg.committed
		} else {
			buf = pg.working
		}
		if buf != nil {
			copy(out[i:i+chunk], buf[off:off+chunk])
		}
		i += chunk
	}
	return out
}

// PeekLiveBytes is PeekBytes restricted to live nodes: when a page's
// primary home is dead, the secondary home's tentative copy — the
// survivor's replica of the committed state — is read instead. This is
// the inspector for runs that end with an undetected failure (a node
// killed after its last protocol obligation): a real system could never
// read a crashed machine's DRAM, so neither does the consistency check.
func (cl *Cluster) PeekLiveBytes(addr, n int) []byte {
	if cl.opt.Mode != ModeFT {
		return cl.PeekBytes(addr, n)
	}
	out := make([]byte, n)
	psz := cl.cfg.PageSize
	for i := 0; i < n; {
		pid := (addr + i) / psz
		off := (addr + i) % psz
		chunk := psz - off
		if chunk > n-i {
			chunk = n - i
		}
		var buf []byte
		if home := cl.pageHomes.Primary(pid); !cl.nodes[home].dead {
			buf = cl.nodes[home].pt.pages[pid].committed
		} else {
			for s := 1; s < cl.pageHomes.Degree(); s++ {
				if sec := cl.pageHomes.Replica(pid, s); !cl.nodes[sec].dead {
					buf = cl.nodes[sec].pt.pages[pid].tentative
					break
				}
			}
		}
		if buf != nil {
			copy(out[i:i+chunk], buf[off:off+chunk])
		}
		i += chunk
	}
	return out
}

// PeekU32 reads the authoritative 4-byte word at addr.
func (cl *Cluster) PeekU32(addr int) uint32 {
	return binary.LittleEndian.Uint32(cl.PeekBytes(addr, 4))
}

// PeekU64 reads the authoritative 8-byte word at addr.
func (cl *Cluster) PeekU64(addr int) uint64 {
	return binary.LittleEndian.Uint64(cl.PeekBytes(addr, 8))
}

// DebugPage summarizes one page's replica state across all nodes for
// diagnostics: homes, copy presence, version vectors, and the first byte
// at which the two replicas diverge (-1 if equal).
func (cl *Cluster) DebugPage(p int) string {
	P := cl.pageHomes.Primary(p)
	S := cl.pageHomes.Secondary(p)
	out := fmt.Sprintf("page %d: P=n%d S=n%d\n", p, P, S)
	for i, nd := range cl.nodes {
		pg := nd.pt.pages[p]
		out += fmt.Sprintf("  n%d dead=%v state=%v commit=%v%v tent=%v%v work=%v base=%v req=%v lastItv=%d\n",
			i, nd.dead, pg.state,
			pg.committed != nil, pg.commitVer,
			pg.tentative != nil, pg.tentVer,
			pg.working != nil, pg.baseVer, pg.reqVer, pg.lastLocalItv)
	}
	pgP, pgS := cl.nodes[P].pt.pages[p], cl.nodes[S].pt.pages[p]
	div := -1
	if pgP.committed != nil && pgS.tentative != nil {
		for i := range pgP.committed {
			if pgP.committed[i] != pgS.tentative[i] {
				div = i
				break
			}
		}
	}
	return out + fmt.Sprintf("  first divergence: %d\n", div)
}

// DebugState summarizes a thread's liveness for diagnostics.
func (t *Thread) DebugState() string {
	st := ""
	if t.dead {
		st += "dead "
	}
	if t.finished {
		st += "finished "
	}
	if t.blocked {
		st += "blocked "
	}
	if t.inRecovery {
		st += "inRecovery "
	}
	return st + "node=" + itoa(t.node.id) + " barSeq=" + itoa(int(t.barSeq)) +
		" nodeBarEpoch=" + itoa(t.node.barEpoch) + " sentEpoch=" + itoa(int(t.node.barSentEpoch)) +
		" recPending=" + fmt.Sprint(t.cl.rec.pending) + " recArrived=" + itoa(t.cl.rec.arrived)
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

package svm

import (
	"fmt"

	"ftsvm/internal/proto"
	"ftsvm/internal/vmmc"
)

// handle is the node's message handler. It runs in engine context (the
// simulated network interface applies incoming data without involving the
// node's processors) and never blocks: replies that must wait for a page
// version are deferred on the page's waiter list.
func (n *node) handle(d *vmmc.Delivery) {
	if n.dead {
		return
	}
	switch m := d.Payload.(type) {
	case *diffMsg:
		n.applyDiffMsg(m)
	case *diffBatch:
		for _, it := range m.Items {
			n.applyDiffMsg(it)
		}
	case *fetchReq:
		n.handleFetch(d, m)
	case *updatesReq:
		lists := n.intervalRange(m.From, m.To)
		rep := &updatesReply{Lists: lists}
		d.Reply(rep, updatesWire(lists))
	case *saveTSMsg:
		n.storeSavedTS(m)
	case *ckptMsg:
		n.ckpts.Put(m.ThreadID, m.Snap)
		n.ckptHome[m.ThreadID] = m.HomeNode
	case *lockSet, *lockClear, *lockRelease, *qlAcquire, *qlForward, *qlGrant:
		n.applyLockMsg(d.Src, m)
	case *nicTestSet:
		rep := n.nicTestAndSet(m)
		d.Reply(rep, n.msgWire(d.Src, rep))
	case *lockRead:
		lh := n.lockHomesState[m.Lock]
		if lh == nil {
			// Not (yet) the home — can happen transiently around
			// rehoming; answer with an empty vector so the acquirer
			// retries.
			n.initLockHome(m.Lock)
			lh = n.lockHomesState[m.Lock]
		}
		rep := lh.readReply()
		d.Reply(rep, n.msgWire(d.Src, rep))
	case *barArrive:
		n.masterArrive(m)
	case *barRelease:
		n.deliverBarRelease(m)
	case *savedReq:
		rep := n.savedReplyFor(m.Dead)
		d.Reply(rep, n.msgWire(d.Src, rep))
	case *lockRebuild:
		n.installLock(m)
	default:
		panic(fmt.Sprintf("svm: node %d: unknown message %T", n.id, d.Payload))
	}
}

// applyDiffMsg lands a diff at a home copy.
func (n *node) applyDiffMsg(m *diffMsg) {
	pg := n.pt.pages[m.Page]
	cfg := n.cl.cfg
	switch m.Phase {
	case 0: // base protocol: the working copy is the home copy
		buf := pg.ensureWorking()
		m.Diff.Apply(buf)
		// Keep concurrently-diffed local copies coherent so the home's own
		// diffs contain only its own modifications. A partial twin is
		// patched only inside its dirty chunks (clean chunks hold garbage
		// and snapshot later from the already-patched working copy); a
		// nil mask (FullTwins) patches the whole twin.
		if pg.twin != nil {
			m.Diff.ApplyMasked(pg.twin, pg.dirtyMask)
		}
		if pg.dirtyWorking != nil {
			m.Diff.Apply(pg.dirtyWorking)
			m.Diff.ApplyMasked(pg.dirtyTwin, pg.stashMask)
		}
		if pg.baseVer == nil {
			pg.baseVer = proto.NewVector(cfg.Nodes)
		}
		if pg.baseVer[m.Src] < m.Interval {
			pg.baseVer[m.Src] = m.Interval
		}
		pg.serveWaiters(pg.baseVer, buf, cfg.PageSize+64)
	case 1: // tentative copy at the secondary home
		if pg.tentative == nil {
			pg.tentative = n.getPageBufZero()
			pg.tentVer = proto.NewVector(cfg.Nodes)
		}
		if m.Undo != nil {
			if pg.undoFrom == nil {
				pg.undoFrom = make(map[int]undoRec)
			}
			pg.undoFrom[m.Src] = undoRec{interval: m.Interval, undo: m.Undo}
		}
		pg.applyDiff(pg.tentative, pg.tentVer, m.Src, m.Interval, m.Diff)
	case 2: // committed copy at the primary home
		if pg.committed == nil {
			pg.committed = n.getPageBufZero()
			pg.commitVer = proto.NewVector(cfg.Nodes)
		}
		pg.applyDiff(pg.committed, pg.commitVer, m.Src, m.Interval, m.Diff)
		pg.serveWaiters(pg.commitVer, pg.committed, cfg.PageSize+64)
	}
	pg.verGate.Broadcast()
}

// handleFetch serves (or defers) a remote page fetch.
func (n *node) handleFetch(d *vmmc.Delivery, m *fetchReq) {
	pg := n.pt.pages[m.Page]
	cfg := n.cl.cfg
	var buf []byte
	var ver proto.VectorTime
	if n.cl.opt.Mode == ModeFT {
		if pg.committed == nil {
			// Newly promoted home whose replica has not arrived yet:
			// defer until recovery installs it.
			pg.committed = n.getPageBufZero()
			pg.commitVer = proto.NewVector(cfg.Nodes)
		}
		buf, ver = pg.committed, pg.commitVer
	} else {
		buf, ver = pg.ensureWorking(), pg.baseVer
		if ver == nil {
			pg.baseVer = proto.NewVector(cfg.Nodes)
			ver = pg.baseVer
		}
	}
	if ver.Covers(m.Need) {
		rep := &fetchReply{Page: m.Page, Data: n.clonePageBuf(buf), Ver: ver.Clone()}
		d.Reply(rep, n.msgWire(d.Src, rep))
		return
	}
	pg.waiters = append(pg.waiters, fetchWaiter{d: d, need: m.Need})
}

// intervalRange returns clones of this node's update lists for intervals
// [from, to], clamped to what exists.
func (n *node) intervalRange(from, to int32) []proto.UpdateList {
	if from < 1 {
		from = 1
	}
	if to > int32(len(n.intervals)) {
		to = int32(len(n.intervals))
	}
	if to < from {
		return nil
	}
	out := make([]proto.UpdateList, 0, to-from+1)
	for i := from; i <= to; i++ {
		out = append(out, n.intervals[i-1])
	}
	return out
}

// storeSavedTS replicates a peer's end-of-phase-1 state: the timestamp,
// the interval's update list, the self-secondary diff stash, and the
// releasing thread's point-B checkpoint — one atomic deposit.
func (n *node) storeSavedTS(m *saveTSMsg) {
	n.savedTS[m.Node] = m.TS.Clone()
	lists := n.savedLists[m.Node]
	if len(lists) == 0 || lists[len(lists)-1].Interval < m.List.Interval {
		n.savedLists[m.Node] = append(lists, m.List)
	}
	// Only the latest interval's stash matters: older intervals' phase 2
	// completed (their release finished before the next began).
	n.savedStash[m.Node] = m.Stash
	if m.Snap.Blob != nil {
		n.ckpts.Put(m.CkptThread, m.Snap)
		n.ckptHome[m.CkptThread] = m.CkptHome
	}
}

// savedReplyFor packages the backup state held for a dead node.
func (n *node) savedReplyFor(dead int) *savedReply {
	ts, ok := n.savedTS[dead]
	if !ok {
		return &savedReply{Have: false, TS: proto.NewVector(n.cl.cfg.Nodes)}
	}
	return &savedReply{Have: true, TS: ts.Clone(), Lists: n.savedLists[dead]}
}

// installLock lands a recovery-time lock rebuild.
func (n *node) installLock(m *lockRebuild) {
	n.initLockHome(m.Lock)
	lh := n.lockHomesState[m.Lock]
	for i := range lh.vec {
		lh.vec[i] = false
	}
	for _, h := range m.Holders {
		lh.vec[h] = true
	}
	lh.vt = m.VT.Clone()
}

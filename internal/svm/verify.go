package svm

import "fmt"

// VerifyReplicas audits the extended protocol's replication invariant
// after a run: every page's two homes are distinct live nodes, and the
// primary's committed copy matches the secondary's tentative copy byte
// for byte (with equal version vectors). At quiescence — all threads
// finished, no release in flight — the two replicas must have converged;
// any divergence means an interval was applied to one copy and lost on
// the other, exactly the corruption the two-phase pipeline exists to
// prevent. Returns nil for ModeBase clusters (no replicas to audit).
func (cl *Cluster) VerifyReplicas() error {
	if cl.opt.Mode != ModeFT {
		return nil
	}
	for p := 0; p < cl.pageHomes.Items(); p++ {
		P := cl.pageHomes.Primary(p)
		S := cl.pageHomes.Secondary(p)
		if P == S {
			return fmt.Errorf("page %d: replicas colocated on node %d", p, P)
		}
		if cl.nodes[P].dead || cl.nodes[S].dead {
			return fmt.Errorf("page %d: home on dead node (P=%d S=%d)", p, P, S)
		}
		pgP := cl.nodes[P].pt.pages[p]
		pgS := cl.nodes[S].pt.pages[p]
		if pgP.committed == nil && pgS.tentative == nil {
			continue // never touched
		}
		if pgP.committed == nil || pgS.tentative == nil {
			return fmt.Errorf("page %d: one replica missing", p)
		}
		for i := range pgP.committed {
			if pgP.committed[i] != pgS.tentative[i] {
				return fmt.Errorf("page %d: replicas diverge at byte %d (committed %d vs tentative %d)",
					p, i, pgP.committed[i], pgS.tentative[i])
			}
		}
		if !pgP.commitVer.Equal(pgS.tentVer) {
			return fmt.Errorf("page %d: replica versions diverge: %v vs %v", p, pgP.commitVer, pgS.tentVer)
		}
	}
	return nil
}

// VerifyAvailability audits the weaker invariant that holds when a node
// has fail-stopped after its last protocol obligation and no survivor
// has observed the death (no recovery episode ran): every page still
// has at least one live home holding its committed state, so a future
// access — which would trigger detection and recovery — can rebuild
// full replication without data loss. Pages with both homes live are
// held to the full VerifyReplicas contract; a page whose only intact
// copy sits on the dead node is exactly the durability loss the dual
// homes exist to prevent. Returns nil for ModeBase clusters.
func (cl *Cluster) VerifyAvailability() error {
	if cl.opt.Mode != ModeFT {
		return nil
	}
	for p := 0; p < cl.pageHomes.Items(); p++ {
		P := cl.pageHomes.Primary(p)
		S := cl.pageHomes.Secondary(p)
		if P == S {
			return fmt.Errorf("page %d: replicas colocated on node %d", p, P)
		}
		if cl.nodes[P].dead && cl.nodes[S].dead {
			return fmt.Errorf("page %d: both homes dead (P=%d S=%d)", p, P, S)
		}
		pgP := cl.nodes[P].pt.pages[p]
		pgS := cl.nodes[S].pt.pages[p]
		switch {
		case cl.nodes[P].dead:
			if pgP.committed != nil && pgS.tentative == nil {
				return fmt.Errorf("page %d: only copy was on dead primary %d", p, P)
			}
		case cl.nodes[S].dead:
			if pgS.tentative != nil && pgP.committed == nil {
				return fmt.Errorf("page %d: only copy was on dead secondary %d", p, S)
			}
		default:
			if pgP.committed == nil && pgS.tentative == nil {
				continue
			}
			if pgP.committed == nil || pgS.tentative == nil {
				return fmt.Errorf("page %d: one replica missing", p)
			}
			for i := range pgP.committed {
				if pgP.committed[i] != pgS.tentative[i] {
					return fmt.Errorf("page %d: replicas diverge at byte %d (committed %d vs tentative %d)",
						p, i, pgP.committed[i], pgS.tentative[i])
				}
			}
		}
	}
	return nil
}

package svm

import "fmt"

// VerifyReplicas audits the extended protocol's replication invariant
// after a run: every page's k homes are distinct live nodes, and the
// primary's committed copy matches every secondary's tentative copy byte
// for byte (with equal version vectors). At quiescence — all threads
// finished, no release in flight — the replicas must have converged;
// any divergence means an interval was applied to one copy and lost on
// another, exactly the corruption the two-phase pipeline exists to
// prevent. Returns nil for ModeBase clusters (no replicas to audit).
func (cl *Cluster) VerifyReplicas() error {
	if cl.opt.Mode != ModeFT {
		return nil
	}
	deg := cl.pageHomes.Degree()
	for p := 0; p < cl.pageHomes.Items(); p++ {
		rs := cl.pageHomes.Replicas(p)
		for a := 0; a < deg; a++ {
			for b := a + 1; b < deg; b++ {
				if rs[a] == rs[b] {
					return fmt.Errorf("page %d: replicas colocated on node %d", p, rs[a])
				}
			}
			if cl.nodes[rs[a]].dead {
				return fmt.Errorf("page %d: home on dead node (slot %d = node %d)", p, a, rs[a])
			}
		}
		pgP := cl.nodes[rs[0]].pt.pages[p]
		touched := pgP.committed != nil
		for s := 1; s < deg; s++ {
			if cl.nodes[rs[s]].pt.pages[p].tentative != nil {
				touched = true
			}
		}
		if !touched {
			continue // never touched
		}
		if pgP.committed == nil {
			return fmt.Errorf("page %d: one replica missing", p)
		}
		for s := 1; s < deg; s++ {
			pgS := cl.nodes[rs[s]].pt.pages[p]
			if pgS.tentative == nil {
				return fmt.Errorf("page %d: one replica missing", p)
			}
			for i := range pgP.committed {
				if pgP.committed[i] != pgS.tentative[i] {
					return fmt.Errorf("page %d: replicas diverge at byte %d (committed %d vs tentative %d)",
						p, i, pgP.committed[i], pgS.tentative[i])
				}
			}
			if !pgP.commitVer.Equal(pgS.tentVer) {
				return fmt.Errorf("page %d: replica versions diverge: %v vs %v", p, pgP.commitVer, pgS.tentVer)
			}
		}
	}
	return nil
}

// VerifyAvailability audits the weaker invariant that holds when a node
// has fail-stopped after its last protocol obligation and no survivor
// has observed the death (no recovery episode ran): every page still
// has at least one live home holding its committed state, so a future
// access — which would trigger detection and recovery — can rebuild
// full replication without data loss. Pages with all homes live are
// held to the byte-compare contract; a page whose only intact copy
// sits on a dead node is exactly the durability loss the k homes exist
// to prevent. Returns nil for ModeBase clusters.
func (cl *Cluster) VerifyAvailability() error {
	if cl.opt.Mode != ModeFT {
		return nil
	}
	deg := cl.pageHomes.Degree()
	for p := 0; p < cl.pageHomes.Items(); p++ {
		rs := cl.pageHomes.Replicas(p)
		for a := 0; a < deg; a++ {
			for b := a + 1; b < deg; b++ {
				if rs[a] == rs[b] {
					return fmt.Errorf("page %d: replicas colocated on node %d", p, rs[a])
				}
			}
		}
		copyAt := func(s int) []byte {
			pg := cl.nodes[rs[s]].pt.pages[p]
			if s == 0 {
				return pg.committed
			}
			return pg.tentative
		}
		anyDead, allDead, anyCopy, liveCopy := false, true, false, false
		for s := 0; s < deg; s++ {
			dead := cl.nodes[rs[s]].dead
			anyDead = anyDead || dead
			allDead = allDead && dead
			if copyAt(s) != nil {
				anyCopy = true
				if !dead {
					liveCopy = true
				}
			}
		}
		if allDead {
			return fmt.Errorf("page %d: all homes dead (%v)", p, rs)
		}
		if !anyCopy {
			continue
		}
		if anyDead {
			if !liveCopy {
				return fmt.Errorf("page %d: only copy was on a dead home (%v)", p, rs)
			}
			continue // one live copy suffices until recovery rebuilds the rest
		}
		prim := copyAt(0)
		if prim == nil {
			return fmt.Errorf("page %d: one replica missing", p)
		}
		for s := 1; s < deg; s++ {
			tent := copyAt(s)
			if tent == nil {
				return fmt.Errorf("page %d: one replica missing", p)
			}
			for i := range prim {
				if prim[i] != tent[i] {
					return fmt.Errorf("page %d: replicas diverge at byte %d (committed %d vs tentative %d)",
						p, i, prim[i], tent[i])
				}
			}
		}
	}
	return nil
}

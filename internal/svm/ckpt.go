package svm

import (
	"errors"
	"fmt"

	"ftsvm/internal/checkpoint"
	"ftsvm/internal/obs"
	"ftsvm/internal/vmmc"
)

// suspendSiblings models point A's sibling suspension (§4.4: updates of
// all threads within a node must appear atomic, so every sibling's state
// is captured when the releasing thread commits the interval). The paper
// suspends threads preemptively through the OS — a few microseconds each —
// and copies their stacks in place. In the cooperative simulation a
// sibling's resumable state struct is consistent at any scheduling point,
// so the capture itself is instantaneous and only the suspend/resume cost
// is charged.
func (t *Thread) suspendSiblings() {
	if c := t.liveSiblings(); c > 0 {
		t.charge(CompCheckpoint, int64(c)*t.cl.cfg.ThreadSuspendNs)
	}
}

// resumeSiblings is the counterpart of suspendSiblings; the resume cost is
// folded into the suspend charge.
func (t *Thread) resumeSiblings() {}

func (t *Thread) liveSiblings() int {
	c := 0
	for _, s := range t.node.threads {
		if s != t && !s.dead && !s.finished {
			c++
		}
	}
	return c
}

// checkpointSiblings saves the state of every other live thread on the
// node to the backup node (checkpoint point A). The releasing thread pays
// the serialization and transmission cost.
func (t *Thread) checkpointSiblings() {
	for _, s := range t.node.threads {
		if s == t || s.dead || s.finished {
			continue
		}
		if s.locksHeld > 0 {
			// The sibling is inside a critical section. Its words since
			// acquiring are deferred from this interval (splitDeferred),
			// so a point-A snapshot here could pair a progress field
			// advanced just before its Release with words that will never
			// commit (roll-forward would then skip the lost update). Its
			// last point-B checkpoint is the one consistent with what is
			// actually committed; keep that.
			continue
		}
		t.saveThreadState(s)
	}
	t.cl.trace(obs.KCkptA, t.node.id, t.id, t.node.releaseSeq+1)
}

// checkpointSelf saves the releasing thread's own state (checkpoint point
// B, taken when phase 1 completes: the release is then conceptually done).
func (t *Thread) checkpointSelf() {
	t.saveThreadState(t)
}

// encodeSnapshot serializes the thread's registered resumable state. The
// snapshot is empty (nil Blob) if the thread never called Setup.
func (s *Thread) encodeSnapshot() (checkpoint.Snapshot, int) {
	if s.state == nil {
		return checkpoint.Snapshot{}, 0
	}
	blob, err := checkpoint.Encode(s.state)
	if err != nil {
		panic(fmt.Sprintf("svm: checkpoint thread %d: %v", s.id, err))
	}
	s.ckptSeq++
	// BarSeq records the thread's pre-arrival barrier count, even when
	// the snapshot is taken inside a barrier call (point B of episode
	// barSeq+1). The workload contract (internal/apps) is that replay
	// re-executes the suspended sync CALL — runStages guards stage
	// bodies with an Arrived flag, and the micro workloads guard work
	// with a half-step counter — so the restored thread's first replayed
	// Barrier is numbered barSeq+1, exactly the open episode: it arrives
	// there if the re-formed episode still needs it, or falls through if
	// the cluster completed it. Recording barSeq+1 instead would assume
	// the call is NOT replayed, skewing every later arrival of a
	// replayed thread one episode ahead of its work and shipping its
	// intervals one sync point late.
	return checkpoint.Snapshot{Seq: s.ckptSeq, VT: s.node.vt.Clone(), BarSeq: s.barSeq, Blob: blob}, len(blob)
}

// saveThreadState serializes a thread's registered state and deposits it
// in the backup node's double-buffered store.
func (t *Thread) saveThreadState(s *Thread) {
	cfg := t.cl.cfg
	snap, sz := s.encodeSnapshot()
	if snap.Blob == nil {
		return // thread never registered resumable state
	}
	t.node.ckptCount++
	t.charge(CompCheckpoint, cfg.CheckpointNs(sz))
	if deg := t.cl.Degree(); deg > 2 {
		// Replicate the checkpoint at k-1 backups so any k-1 overlapping
		// failures leave a surviving copy (mirrors saveTimestamp).
		for {
			backups := t.cl.backupsOf(t.node.id, deg-1)
			t.charge(CompCheckpoint, int64(len(backups))*cfg.NICPostOverheadNs)
			t0 := t.beginWait()
			for _, backup := range backups {
				m := &ckptMsg{ThreadID: s.id, HomeNode: t.node.id, Snap: snap}
				t.node.ep.Post(t.proc, backup, t.node.msgWire(backup, m), m)
			}
			err := t.node.ep.Fence(t.proc)
			t.endWait(CompCheckpoint, t0)
			if err == nil {
				return
			}
			if errors.Is(err, vmmc.ErrNodeDead) {
				t.joinRecoveryErr(err)
				continue
			}
			panic(fmt.Sprintf("svm: checkpoint deposit: %v", err))
		}
	}
	for {
		backup := t.cl.backupOf(t.node.id)
		m := &ckptMsg{ThreadID: s.id, HomeNode: t.node.id, Snap: snap}
		t.charge(CompCheckpoint, cfg.NICPostOverheadNs)
		t0 := t.beginWait()
		t.node.ep.Post(t.proc, backup, t.node.msgWire(backup, m), m)
		err := t.node.ep.Fence(t.proc)
		t.endWait(CompCheckpoint, t0)
		if err == nil {
			return
		}
		if errors.Is(err, vmmc.ErrNodeDead) {
			// The backup died; recover and resend to the new backup.
			t.joinRecoveryErr(err)
			continue
		}
		panic(fmt.Sprintf("svm: checkpoint deposit: %v", err))
	}
}

package svm

import (
	"testing"

	"ftsvm/internal/model"
)

func TestBarrierLatency(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 8
	type st struct {
		I int
		A bool
	}
	opt := Options{Config: cfg, Mode: ModeBase, Pages: 8, Locks: 1, Body: func(th *Thread) {
		s := &st{}
		th.Setup(s)
		for ; s.I < 20; s.I++ {
			th.Barrier()
		}
	}}
	cl, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	t.Logf("20 empty barriers took %.2f ms (%.2f ms each)", float64(cl.ExecTime())/1e6, float64(cl.ExecTime())/20e6)
}

package svm

import (
	"fmt"
	"strings"
	"testing"

	"ftsvm/internal/model"
)

// Tests for the scale-out features (tree fan-out, delta vector-time
// encoding, bounded probe windows) and the capacity audits that make the
// 64-node tier safe: every assumption that silently held at the paper's
// 8 nodes is pinned by a revert-failing regression here.

// TestThreadCapGuard pins the int16 writer-tag audit: page.writers stores
// thread ids as int16, so New must refuse a cluster whose thread count
// would alias writer identity instead of silently corrupting deferral.
func TestThreadCapGuard(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 256
	cfg.ThreadsPerNode = 129 // 33024 > 32767
	_, err := New(Options{Config: cfg, Mode: ModeFT, Pages: 256, Locks: 1, Body: func(*Thread) {}})
	if err == nil {
		t.Fatal("New accepted a cluster with more threads than int16 writer tags can name")
	}
	if !strings.Contains(err.Error(), "writer-tag") {
		t.Fatalf("wrong error: %v", err)
	}
}

// TestRecoveryBarrierReset pins the post-recovery barrier hygiene fixed for
// the 64-node tier: stale arrival counts for skipped episodes must not leak
// (old code deleted only barCount[maxDone]), an unapplied release beyond
// the roll-forward horizon must be cleared (applying it after barSentEpoch
// was wiped would deadlock the new master waiting for an arrival that will
// never be resent), and the tree-forwarding watermark must roll back so the
// re-broadcast is relayed on the post-recovery tree.
func TestRecoveryBarrierReset(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 4
	cl, err := New(Options{Config: cfg, Mode: ModeFT, Pages: 4, Locks: 1, Body: func(*Thread) {}})
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 (the dead master) merged episode 6 and broadcast partially.
	cl.nodes[0].dead = true
	// Node 1 applied nothing past 5; it holds the stranded release for 6.
	cl.nodes[1].barEpoch = 5
	cl.nodes[1].barRelease = &barRelease{Epoch: 6}
	cl.nodes[1].barForwarded = 6
	// Node 2 is one episode behind with threads arrived for 5 — it rolls
	// forward — plus leaked counts from episodes long done.
	cl.nodes[2].barEpoch = 4
	cl.nodes[2].barCount[5] = 1
	cl.nodes[2].barCount[2] = 1 // the leak: old code never deleted this
	// Node 3 holds the release for an episode the cluster completed.
	cl.nodes[3].barEpoch = 5
	cl.nodes[3].barRelease = &barRelease{Epoch: 5}

	cl.resetBarrierPlumbing()

	if cl.nodes[2].barEpoch != 5 {
		t.Fatalf("node 2 not rolled forward: barEpoch = %d, want 5", cl.nodes[2].barEpoch)
	}
	if len(cl.nodes[2].barCount) != 0 {
		t.Fatalf("node 2 leaked barCount entries: %v", cl.nodes[2].barCount)
	}
	if cl.nodes[1].barRelease != nil {
		t.Fatal("stranded release for an un-completed episode not cleared")
	}
	if cl.nodes[1].barForwarded != 5 {
		t.Fatalf("barForwarded not rolled back: %d, want 5", cl.nodes[1].barForwarded)
	}
	if cl.nodes[3].barRelease == nil {
		t.Fatal("completed-episode release must stay consumable")
	}
	for _, n := range cl.nodes[1:] {
		if n.barSentEpoch != 0 {
			t.Fatalf("node %d barSentEpoch not reset", n.id)
		}
	}
}

// phasedBody writes the thread's slot and barriers, rounds times: the
// minimal many-episode workload for exercising the release broadcast.
func phasedBody(rounds int) func(*Thread) {
	return func(t *Thread) {
		st := &counterState{}
		t.Setup(st)
		for st.Iter < rounds {
			t.WriteU64(t.ID()*8, uint64((st.Iter+1)*1000+t.ID()))
			st.Iter++
			t.Barrier()
		}
	}
}

// checkPhased verifies every thread's slot holds its final-round value.
func checkPhased(t *testing.T, cl *Cluster, rounds int) {
	t.Helper()
	for _, th := range cl.Threads() {
		got := cl.PeekU64(th.ID() * 8)
		want := uint64(rounds*1000 + th.ID())
		if got != want {
			t.Fatalf("thread %d slot = %d, want %d", th.ID(), got, want)
		}
	}
}

// TestTreeFanoutBarrier runs a multi-episode barrier workload over the
// spanning-tree broadcast at several arities and sizes, with the online
// auditor on, and checks the memory outcome against the flat broadcast's.
func TestTreeFanoutBarrier(t *testing.T) {
	const rounds = 6
	for _, tc := range []struct{ nodes, arity int }{
		{8, 2}, {16, 4}, {9, 3},
	} {
		cfg := model.Default()
		cfg.Nodes = tc.nodes
		cfg.FanoutArity = tc.arity
		cl, err := New(Options{Config: cfg, Mode: ModeFT, Pages: 2 * tc.nodes, Locks: 1, Body: phasedBody(rounds)})
		if err != nil {
			t.Fatal(err)
		}
		cl.EnableAuditor(1)
		if err := cl.Run(); err != nil {
			t.Fatalf("nodes=%d arity=%d: %v", tc.nodes, tc.arity, err)
		}
		if !cl.Finished() {
			t.Fatalf("nodes=%d arity=%d: not all threads finished", tc.nodes, tc.arity)
		}
		checkPhased(t, cl, rounds)
	}
}

// TestTreeFanoutMasterDeath kills the barrier master a beat after it merges
// an episode under tree fan-out, sweeping the kill delay across the
// broadcast's propagation window so every partial-delivery shape occurs:
// no child reached, some subtrees reached (stranded unapplied releases on
// relay nodes), and everyone reached. Recovery must clear strands, resend
// arrivals, and re-broadcast on the reshaped tree.
func TestTreeFanoutMasterDeath(t *testing.T) {
	const rounds = 5
	for _, delayNs := range []int64{0, 1_000, 5_000, 20_000, 100_000} {
		t.Run(fmt.Sprintf("delay=%dns", delayNs), func(t *testing.T) {
			cfg := model.Default()
			cfg.Nodes = 8
			cfg.FanoutArity = 2
			tracer := &killTracer{kind: "barrier.release", node: 0, seq: 3}
			opt := Options{Config: cfg, Mode: ModeFT, Pages: 16, Locks: 1, Body: phasedBody(rounds), Tracer: tracer}
			cl, err := New(opt)
			if err != nil {
				t.Fatal(err)
			}
			cl.EnableAuditor(1)
			tracer.cl = cl
			if delayNs > 0 {
				// Replace the synchronous kill with a delayed one so part
				// of the tree broadcast drains first.
				d := delayNs
				tracer.kill = func() {
					cl.Engine().At(d, func() { cl.KillNode(0) })
				}
			}
			if err := cl.Run(); err != nil {
				t.Fatal(err)
			}
			if !tracer.done {
				t.Fatal("master never merged episode 3")
			}
			if !cl.Finished() {
				t.Fatal("threads stranded after master death")
			}
			checkPhased(t, cl, rounds)
			verifyReplicaInvariants(t, cl)
		})
	}
}

// TestDeltaCodecSameResultSmallerWire runs the counter workload with full
// and delta vector-time encodings and checks the outcome is identical while
// the delta run ships strictly fewer modeled wire bytes.
func TestDeltaCodecSameResultSmallerWire(t *testing.T) {
	const iters = 8
	bytesFor := func(codec model.VTCodecMode) int64 {
		cfg := model.Default()
		cfg.Nodes = 8
		cfg.VTCodec = codec
		cl, err := New(Options{Config: cfg, Mode: ModeFT, Pages: 8, Locks: 1, Body: counterBody(iters)})
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Run(); err != nil {
			t.Fatal(err)
		}
		checkCounter(t, cl, uint64(8*iters))
		var sum int64
		for i := range cl.nodes {
			sum += cl.net.Endpoint(i).Stats().BytesSent
		}
		return sum
	}
	full := bytesFor(model.VTFull)
	delta := bytesFor(model.VTDelta)
	if delta >= full {
		t.Fatalf("delta encoding did not shrink wire volume: full=%d delta=%d", full, delta)
	}
}

// TestBoundedProbeDetection kills a node under probe-mode detection with a
// rotating 2-neighbor window: detection must still confirm the death (the
// rotation reaches every peer) and the run must recover and finish.
func TestBoundedProbeDetection(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 8
	cfg.Detection = model.DetectProbe
	cfg.ProbeNeighbors = 2
	cl, err := New(Options{Config: cfg, Mode: ModeFT, Pages: 16, Locks: 1, Body: phasedBody(5)})
	if err != nil {
		t.Fatal(err)
	}
	cl.Engine().At(1_000_000, func() { cl.KillNode(5) })
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if !cl.Finished() {
		t.Fatal("cluster never recovered with a bounded probe window")
	}
	if cl.ProtoStats().Recoveries == 0 {
		t.Fatal("no recovery ran — the kill never happened?")
	}
	checkPhased(t, cl, 5)
}

package svm

import (
	"fmt"
	"strings"
	"testing"

	"ftsvm/internal/model"
	"ftsvm/internal/proto"
)

// propPickLock deterministically picks the lock a thread contends for in a
// given iteration. The same function drives the workload body and the
// test's expected-count computation, and — because it depends only on
// (thread, iter) — a thread replayed after a failure re-acquires exactly
// the locks its pre-failure execution did.
func propPickLock(thread, iter, nlocks int) int {
	x := uint32(thread+1)*2654435761 + uint32(iter+1)*40503
	x ^= x >> 13
	return int(x>>4) % nlocks
}

// lockStepState follows the resumable-state contract of counterBody:
// Iter advances before Release so a replayed interval is never
// double-applied.
type lockStepState struct {
	Iter int
}

// lockStepBody increments, under a pseudo-randomly chosen lock, the
// per-lock counter word at offset 8*lock.
func lockStepBody(iters, nlocks int) func(*Thread) {
	return func(t *Thread) {
		st := &lockStepState{}
		t.Setup(st)
		for st.Iter < iters {
			l := propPickLock(t.ID(), st.Iter, nlocks)
			t.Acquire(l)
			v := t.ReadU64(l * 8)
			t.Compute(150)
			t.WriteU64(l*8, v+1)
			st.Iter++
			t.Release(l)
		}
		t.Barrier()
	}
}

// finalU64 reads a word from page 0's authoritative copy after a run.
func finalU64(t *testing.T, cl *Cluster, addr int) uint64 {
	t.Helper()
	home := cl.pageHomes.Primary(0)
	pg := cl.nodes[home].pt.pages[0]
	buf := pg.working
	if cl.opt.Mode == ModeFT {
		buf = pg.committed
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(buf[addr+i]) << (8 * i)
	}
	return v
}

// TestMutualExclusionProperty is the cross-algorithm mutual-exclusion
// property test: random lock contention across all three lock algorithms,
// both protocol modes, SMP nodes, and an optional mid-run failure. The
// online auditor (stride 1) asserts the single-holder invariant after
// every simulated event; the per-lock counters prove no increment was
// lost or duplicated end to end.
func TestMutualExclusionProperty(t *testing.T) {
	const (
		nodes  = 4
		iters  = 6
		nlocks = 3
	)
	cases := []struct {
		name string
		mode Mode
		algo LockAlgo
		tpn  int
		kill bool // kill node 2 mid-run (FT only)
	}{
		{"base/queue", ModeBase, LockQueue, 1, false},
		{"base/polling", ModeBase, LockPolling, 1, false},
		{"base/nic", ModeBase, LockNIC, 1, false},
		{"ft/polling", ModeFT, LockPolling, 1, false},
		{"ft/nic", ModeFT, LockNIC, 1, false},
		{"ft/polling/smp", ModeFT, LockPolling, 2, false},
		{"ft/polling/kill", ModeFT, LockPolling, 1, true},
		{"ft/nic/kill", ModeFT, LockNIC, 1, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := model.Default()
			cfg.Nodes = nodes
			cfg.ThreadsPerNode = tc.tpn
			opt := Options{
				Config: cfg, Mode: tc.mode, LockAlgo: tc.algo,
				Pages: 8, Locks: nlocks, Body: lockStepBody(iters, nlocks),
			}
			cl, err := New(opt)
			if err != nil {
				t.Fatal(err)
			}
			cl.EnableFlightRecorder(32)
			cl.EnableAuditor(1)
			var kt *killTracer
			if tc.kill {
				// Kill node 2 at one of its release commits — a milestone
				// every case reaches, unlike a fixed virtual time the short
				// workload may finish before.
				kt = &killTracer{cl: cl, kind: "release.commit", node: 2, seq: 2}
				cl.opt.Tracer = kt
			}
			if err := cl.Run(); err != nil {
				t.Fatal(err)
			}
			if kt != nil && !kt.done {
				t.Fatal("kill milestone never fired")
			}
			if !cl.Finished() {
				t.Fatal("not all threads finished")
			}
			for l := 0; l < nlocks; l++ {
				if h := cl.auditHolders(l); len(h) > 1 {
					t.Fatalf("lock %d held by %v after run", l, h)
				}
			}
			want := make([]uint64, nlocks)
			for th := 0; th < nodes*tc.tpn; th++ {
				for it := 0; it < iters; it++ {
					want[propPickLock(th, it, nlocks)]++
				}
			}
			for l := 0; l < nlocks; l++ {
				if got := finalU64(t, cl, l*8); got != want[l] {
					t.Errorf("lock %d counter = %d, want %d", l, got, want[l])
				}
			}
			if tc.mode == ModeFT {
				verifyReplicaInvariants(t, cl)
			}
		})
	}
}

// TestNICLockGrantReplicationWindow is the regression for the NIC lock's
// fault-tolerance window: the grant used to return before the owner
// element was replicated at the secondary home, so killing the primary
// home while a remote acquirer held the lock let recovery rebuild the
// lock as free and grant it twice. The home's NIC now replicates before
// the grant reply leaves (per-sender FIFO delivers the element first);
// with the old code this test fails at the very first remote grant — the
// stride-1 auditor's lock-replication invariant trips — and, end to end,
// the counter loses increments to the double grant.
func TestNICLockGrantReplicationWindow(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 4
	const iters = 8
	opt := Options{Config: cfg, Mode: ModeFT, LockAlgo: LockNIC, Pages: 8, Locks: 1, Body: counterBody(iters)}
	cl, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	cl.EnableFlightRecorder(64)
	cl.EnableAuditor(1)
	// Kill the lock's primary home the instant a *remote* acquirer
	// transitions to holding — the exact window the bug left open.
	done := false
	cl.opt.Tracer = tracerFunc(func(e TraceEvent) {
		if done || e.Kind != "lock.held" || e.Seq != 0 {
			return
		}
		prim := cl.lockHomes.Primary(0)
		if e.Node == prim {
			return
		}
		done = true
		cl.KillNode(prim)
	})
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("no remote acquire ever happened")
	}
	if !cl.Finished() {
		t.Fatal("not all threads finished after recovery")
	}
	checkCounter(t, cl, 4*iters)
	verifyReplicaInvariants(t, cl)
}

// TestAuditorDetectsUnreplicatedGrant forges the bug the lock-replication
// invariant exists to catch: a node transitions to holding a lock whose
// owner element never reached the secondary home replica. The auditor
// must stop the run at that exact event boundary.
func TestAuditorDetectsUnreplicatedGrant(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 4
	opt := Options{
		Config: cfg, Mode: ModeFT, Pages: 2, Locks: 1,
		Body: func(th *Thread) { th.Compute(10_000_000); th.Barrier() },
	}
	cl, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	cl.EnableAuditor(1)
	forged := (cl.lockHomes.Primary(0) + 1) % cfg.Nodes
	cl.Engine().At(500, func() {
		cl.nodes[forged].lockState(0).held = true
	})
	err = cl.Run()
	if err == nil {
		t.Fatal("auditor missed an unreplicated lock grant")
	}
	if !strings.Contains(err.Error(), "lock-replication") {
		t.Fatalf("wrong violation: %v", err)
	}
}

// TestAuditorDetectsDoubleHolder forges a second holder for a held lock
// and expects the single-holder invariant to trip.
func TestAuditorDetectsDoubleHolder(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 4
	opt := Options{
		Config: cfg, Mode: ModeBase, Pages: 2, Locks: 1,
		Body: func(th *Thread) { th.Compute(10_000_000); th.Barrier() },
	}
	cl, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	cl.EnableAuditor(1)
	cl.Engine().At(500, func() {
		cl.nodes[1].lockState(0).held = true
		cl.nodes[2].lockState(0).held = true
	})
	err = cl.Run()
	if err == nil || !strings.Contains(err.Error(), "single-holder") {
		t.Fatalf("expected single-holder violation, got %v", err)
	}
}

// TestStrayQueueGrantPanics is the regression for the silent qlGrant
// drop: a grant arriving with no pending acquire can only mean a protocol
// bug (the home records the requester as tail, so the lock would be
// stranded forever), and must panic instead of being ignored.
func TestStrayQueueGrantPanics(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 4
	opt := Options{Config: cfg, Mode: ModeBase, LockAlgo: LockQueue, Pages: 2, Locks: 1,
		Body: func(th *Thread) { th.Barrier() }}
	cl, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("stray qlGrant was silently dropped")
		}
		if !strings.Contains(fmt.Sprint(r), "stray queue-lock grant") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	cl.nodes[1].applyLockMsg(0, &qlGrant{Lock: 0, VT: proto.NewVector(cfg.Nodes)})
}

// TestRemoteAcquiresExcludesPrimaryHome pins the stats fix: an acquire
// served from the node's own primary-home lock state involves no remote
// message and must not count as a remote acquire.
func TestRemoteAcquiresExcludesPrimaryHome(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 2
	const iters = 4
	opt := Options{Config: cfg, Mode: ModeBase, Pages: 2, Locks: 1, Body: counterBody(iters)}
	cl, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	checkCounter(t, cl, 2*iters)
	// One node hosts the lock's primary home; only the other node's
	// acquires are remote.
	if got := cl.ProtoStats().RemoteAcquires; got != iters {
		t.Fatalf("RemoteAcquires = %d, want %d (home-node acquires are local)", got, iters)
	}
}

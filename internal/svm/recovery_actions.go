package svm

import (
	"time"

	"ftsvm/internal/checkpoint"
	"ftsvm/internal/obs"
	"ftsvm/internal/proto"
)

// rehome runs dir.Rehome(dead) under host wall timing (the measured
// recovery-path directory cost reported by the scaling bench) and, for
// hashed directories, charges the home-delta broadcast: a hashed
// directory is computable from membership plus its override table, so
// the coordinator must ship the newly created overrides to every
// survivor. A flat directory re-runs the same full scan on every node
// and ships nothing — keeping the flat recovery path bit-identical to
// the seed.
func (t *Thread) rehome(dir proto.Directory, dead int) []proto.Reassignment {
	start := time.Now()
	rs := dir.Rehome(dead)
	t.cl.rehomeWallNs += time.Since(start).Nanoseconds()
	if t.cl.dirHashed && len(rs) > 0 {
		wire := proto.HomeDeltaWireBytes(len(rs))
		survivors := dir.AliveCount() - 1 // everyone but the coordinator
		t.charge(CompProtocol, t.cl.cfg.TransferNs(wire*survivors))
	}
	return rs
}

// reconcilePages restores the replica invariant for every page with
// respect to the dead nodes' interrupted releases (§4.5.2). Each saved
// timestamp designates the set of its dead node's updates whose phase 1
// completed: those roll forward (tentative -> committed); anything beyond
// rolls back (committed -> tentative). With several deaths in one episode
// every roll-back runs before any roll-forward: a roll-forward clones a
// secondary's version vector into the committed copy wholesale, and must
// never launder another dead node's cancelled interval into it. Pages
// whose surviving copy is the only copy are handled by rehomeAndReplicate.
func (t *Thread) reconcilePages(deads []int, saveds []*savedState) {
	cl := t.cl
	cfg := cl.cfg
	deg := cl.pageHomes.Degree()
	bytesMoved := make([]int, len(deads))
	forEachHomePair := func(visit func(pgP, pgS *page)) {
		for p := 0; p < cl.pageHomes.Items(); p++ {
			P := cl.pageHomes.Primary(p)
			if cl.nodes[P].dead {
				continue // no committed copy; the promotion rebuilds from a survivor
			}
			pgP := cl.nodes[P].pt.pages[p]
			for s := 1; s < deg; s++ {
				S := cl.pageHomes.Replica(p, s)
				if cl.nodes[S].dead {
					continue // this tentative copy died; rehomeAndReplicate rebuilds it
				}
				pgS := cl.nodes[S].pt.pages[p]
				if pgP.committed == nil && pgS.tentative == nil {
					continue
				}
				ensureHomeCopies(cl, pgP, pgS)
				visit(pgP, pgS)
			}
		}
	}
	forEachHomePair(func(pgP, pgS *page) {
		for di, dead := range deads {
			cv, dv := pgP.commitVer[dead], pgS.tentVer[dead]
			if dv > cv && dv > saveds[di].ts[dead] {
				// Roll back: undo exactly the dead node's tentative update
				// using the pre-image that rode with the phase-1 diff.
				if rec, ok := pgS.undoFrom[dead]; ok && rec.interval == dv {
					rec.undo.Apply(pgS.tentative)
				}
				pgS.tentVer[dead] = cv
				bytesMoved[di] += cfg.PageSize
			}
		}
	})
	forEachHomePair(func(pgP, pgS *page) {
		for di, dead := range deads {
			cv, dv := pgP.commitVer[dead], pgS.tentVer[dead]
			// dv == cv: no interrupted release by the dead node touches this
			// page. Mismatches in live nodes' entries are in-flight releases
			// whose (live) owners will complete phase 2 themselves.
			if dv > cv && dv <= saveds[di].ts[dead] {
				// Roll forward: the dead node's phase 1 completed for this
				// interval; promote the tentative copy. Live in-flight
				// phase-1 partials promoted along with it are re-applied
				// idempotently by their owners' phase 2.
				copy(pgP.committed, pgS.tentative)
				pgP.commitVer = pgS.tentVer.Clone()
				bytesMoved[di] += cfg.PageSize
			}
		}
	})
	for di, dead := range deads {
		tsD := saveds[di].ts[dead]
		// Apply the dead node's stashed self-secondary diffs: updates whose
		// only phase-1 replica died with the releaser but whose release is
		// considered complete (<= saved timestamp) must reach the committed
		// copies.
		backup := cl.backupOf(dead)
		for _, d := range cl.nodes[backup].savedStash[dead] {
			P := cl.pageHomes.Primary(d.Page)
			if cl.nodes[P].dead {
				continue // no committed copy survives; handled by replay
			}
			pg := cl.nodes[P].pt.pages[d.Page]
			ensureCommitted(cl, pg)
			if pg.commitVer[dead] < tsD {
				d.Apply(pg.committed)
				pg.commitVer[dead] = tsD
				bytesMoved[di] += d.DataBytes()
			}
		}
		// The coordinator drives the copies; charge the pipelined transfer.
		t.charge(CompProtocol, cfg.TransferNs(bytesMoved[di]))
		cl.trace(obs.KRecoveryReconcile, dead, t.id, int64(bytesMoved[di]))
	}
}

func ensureHomeCopies(cl *Cluster, pgP, pgS *page) {
	ensureCommitted(cl, pgP)
	if pgS.tentative == nil {
		pgS.tentative = pgS.pt.node.getPageBufZero()
		pgS.tentVer = proto.NewVector(cl.cfg.Nodes)
	}
}

func ensureCommitted(cl *Cluster, pg *page) {
	if pg.committed == nil {
		pg.committed = pg.pt.node.getPageBufZero()
		pg.commitVer = proto.NewVector(cl.cfg.Nodes)
	}
}

// rehomeAndReplicate reassigns every home role the dead node held and
// rebuilds the missing replicas from the surviving copies (§4.5.1). The
// mapping guarantees the k replicas of each page stay on distinct live
// nodes under any failure sequence. deads and tsOf carry the episode's
// full death set with each dead node's saved timestamp: a page whose
// primary died was skipped by reconcilePages, so its surviving tentative
// copies may still hold cancelled intervals from ANY of the episode's
// dead nodes, and the promotion must roll every one of them back.
func (t *Thread) rehomeAndReplicate(dead int, deads []int, tsOf []int32) {
	cl := t.cl
	cfg := cl.cfg
	bytesMoved := 0
	for _, r := range t.rehome(cl.pageHomes, dead) {
		pg := cl.nodes[r.NewNode].pt.pages[r.Item]
		sv := cl.nodes[r.Survivor].pt.pages[r.Item]
		switch r.Role {
		case proto.Primary:
			// Promotion in place: the old secondary becomes primary; its
			// tentative copy is the authoritative state. An update beyond
			// a dead node's saved timestamp belongs to a release whose
			// phase 1 did not complete: roll it back using the stored
			// pre-image (the committed copy that would normally provide
			// the roll-back data died with the releaser).
			if sv.tentative == nil {
				sv.tentative = sv.pt.node.getPageBufZero()
				sv.tentVer = proto.NewVector(cfg.Nodes)
			}
			for di, d := range deads {
				if sv.tentVer[d] > tsOf[di] {
					if rec, ok := sv.undoFrom[d]; ok && rec.interval == sv.tentVer[d] {
						rec.undo.Apply(sv.tentative)
					}
					sv.tentVer[d] = tsOf[di]
				}
			}
			ensureCommitted(cl, pg)
			copy(pg.committed, sv.tentative)
			pg.commitVer = sv.tentVer.Clone()
			bytesMoved += cfg.PageSize
			if deg := cl.pageHomes.Degree(); deg > 2 {
				// The promoted copy is only one of k-1 symmetric tentative
				// holders: every other surviving secondary rolls the dead
				// nodes' uncommitted updates back too, or a later promotion
				// of that replica would resurrect a cancelled interval.
				for s := 1; s < deg; s++ {
					osPg := cl.nodes[cl.pageHomes.Replica(r.Item, s)].pt.pages[r.Item]
					if osPg.tentative == nil || osPg.tentVer == nil {
						continue
					}
					for di, d := range deads {
						if osPg.tentVer[d] <= tsOf[di] {
							continue
						}
						if rec, ok := osPg.undoFrom[d]; ok && rec.interval == osPg.tentVer[d] {
							rec.undo.Apply(osPg.tentative)
						}
						osPg.tentVer[d] = tsOf[di]
					}
				}
			}
		case proto.Secondary:
			if cl.nodes[r.Survivor].dead {
				// The authoritative committed copy belongs to another of the
				// episode's dead nodes whose own promotion has not run yet;
				// its frozen committed state predates the roll decisions.
				// Rebuild the tail from the first live tentative holder with
				// the episode deads' unsaved intervals cancelled on the copy
				// — exactly the state the pending promotion will commit.
				if pg.tentative == nil {
					pg.tentative = pg.pt.node.getPageBufZero()
				}
				var src *page
				for s := 1; s < cl.pageHomes.Degree(); s++ {
					n := cl.pageHomes.Replica(r.Item, s)
					if n == r.NewNode || cl.nodes[n].dead {
						continue
					}
					if cand := cl.nodes[n].pt.pages[r.Item]; cand.tentative != nil {
						src = cand
						break
					}
				}
				if src == nil {
					pg.tentVer = proto.NewVector(cfg.Nodes)
				} else {
					copy(pg.tentative, src.tentative)
					pg.tentVer = src.tentVer.Clone()
					for di, d := range deads {
						if pg.tentVer[d] > tsOf[di] {
							if rec, ok := src.undoFrom[d]; ok && rec.interval == pg.tentVer[d] {
								rec.undo.Apply(pg.tentative)
							}
							pg.tentVer[d] = tsOf[di]
						}
					}
				}
				bytesMoved += cfg.PageSize
				continue
			}
			ensureCommitted(cl, sv)
			if pg.tentative == nil {
				pg.tentative = pg.pt.node.getPageBufZero()
			}
			copy(pg.tentative, sv.committed)
			pg.tentVer = sv.commitVer.Clone()
			if r.NewNode != r.Survivor {
				bytesMoved += cfg.PageSize
			}
		}
	}
	t.charge(CompProtocol, cfg.TransferNs(bytesMoved))
	cl.trace(obs.KRecoveryRehome, dead, t.id, int64(bytesMoved))
}

// rebuildLocks reassigns lock homes and reconstructs each lock's state
// at the new homes from the surviving home replica: the primary's
// vector if the primary survives, else the secondary's (§4.5.1). The
// replica is then filtered against the acquirer-side state of the live
// nodes it names — an element whose owner is neither holding nor
// acquiring the lock is an in-flight release or failed-attempt clear
// that had not reached this replica, and the dead node's own element is
// implicitly released (its threads replay from before the acquire).
// The filter only ever removes elements; it never invents a holder the
// replica does not record, which is exactly why grants must replicate
// before they take effect (see nicTestAndSet): a holder missing from
// both replicas would be resurrected here as a free lock and granted
// twice. The release timestamp is merged from the surviving replicas.
func (t *Thread) rebuildLocks(dead int) {
	cl := t.cl
	cfg := cl.cfg
	nlocks := cl.lockHomes.Items()

	// Surviving home state, captured before rehoming.
	oldVT := make([]proto.VectorTime, nlocks)
	oldVec := make([][]bool, nlocks)
	for l := 0; l < nlocks; l++ {
		vt := proto.NewVector(cfg.Nodes)
		for _, home := range cl.lockHomes.Replicas(l) {
			if cl.nodes[home].dead {
				// Skips the node being processed and any other episode dead
				// still holding a home slot: a frozen replica must not be
				// treated as authoritative.
				continue
			}
			if lh := cl.nodes[home].lockHomesState[l]; lh != nil {
				vt.Merge(lh.vt)
				if oldVec[l] == nil {
					// First surviving replica in primary-then-secondary
					// order: the authoritative vector. Clone it — the
					// installs below mutate home state in place.
					oldVec[l] = append([]bool(nil), lh.vec...)
				}
			}
		}
		oldVT[l] = vt
	}
	t.rehome(cl.lockHomes, dead)

	for l := 0; l < nlocks; l++ {
		var holders []int
		for i, set := range oldVec[l] {
			if !set || i == dead || cl.nodes[i].dead {
				continue
			}
			if ol := cl.nodes[i].owned[l]; ol != nil && (ol.held || ol.busy) {
				holders = append(holders, i)
			}
		}
		for _, home := range cl.lockHomes.Replicas(l) {
			n := cl.nodes[home]
			n.installLock(&lockRebuild{Lock: l, Holders: holders, VT: oldVT[l]})
		}
		t.charge(CompProtocol, cfg.ProtoOpNs)
	}
	cl.trace(obs.KRecoveryLocks, dead, t.id, int64(nlocks))
}

// globalSync makes memory globally consistent across the survivors:
// every node learns every other node's committed intervals (including the
// dead node's replicated ones, up to its saved timestamp) and invalidates
// accordingly. This is the recovery-phase global synchronization point.
func (t *Thread) globalSync(dead int, saved *savedState) {
	cl := t.cl
	cfg := cl.cfg

	// Gather all lists any node might be missing.
	var all []proto.UpdateList
	minSeen := make(proto.VectorTime, cfg.Nodes)
	for i := range minSeen {
		minSeen[i] = int32(1 << 30)
	}
	for _, n := range cl.nodes {
		if n.dead {
			continue
		}
		for src := range n.vt {
			if n.vt[src] < minSeen[src] {
				minSeen[src] = n.vt[src]
			}
		}
	}
	bytes := 0
	for _, n := range cl.nodes {
		if n.dead {
			continue
		}
		lists := n.intervalRange(minSeen[n.id]+1, int32(len(n.intervals)))
		all = append(all, lists...)
		bytes += updatesWire(lists)
	}
	// The dead node's lists, from its backup, clamped to the saved
	// timestamp (anything beyond rolled back).
	for _, ul := range saved.lists {
		if ul.Interval <= saved.ts[dead] {
			all = append(all, ul)
		}
	}
	globalVT := proto.NewVector(cfg.Nodes)
	for _, n := range cl.nodes {
		if !n.dead {
			globalVT.Merge(n.vt)
		}
	}
	globalVT[dead] = saved.ts[dead]

	for _, n := range cl.nodes {
		if n.dead {
			continue
		}
		for _, ul := range all {
			if ul.Node == n.id || ul.Interval <= n.vt[ul.Node] {
				continue
			}
			for _, pid := range ul.Pages {
				n.invalidateRaw(pid, ul.Node, ul.Interval)
			}
		}
		n.vt.Merge(globalVT)
		// Clamp requirements on the dead node's cancelled intervals.
		for _, pg := range n.pt.pages {
			if pg.reqVer[dead] > saved.ts[dead] {
				pg.reqVer[dead] = saved.ts[dead]
			}
		}
	}
	t.charge(CompProtocol, cfg.TransferNs(bytes)+int64(len(all))*cfg.ProtoOpNs)
	cl.trace(obs.KRecoverySync, dead, t.id, int64(len(all)))
}

// invalidateRaw is the node-level invalidation used during recovery (no
// per-thread charge; the coordinator accounts the work in bulk).
func (n *node) invalidateRaw(pid, src int, itv int32) {
	if src == n.id {
		return
	}
	pg := n.pt.pages[pid]
	if pg.reqVer[src] < itv {
		pg.reqVer[src] = itv
	}
	switch pg.state {
	case pWritable:
		pg.dirtyTwin = pg.twin
		pg.dirtyWorking = pg.working
		pg.stashMask = pg.dirtyMask
		pg.twin = nil
		pg.working = nil
		pg.dirtyMask = nil
		pg.maskFull = false
		pg.state = pInvalid
	case pReadOnly:
		pg.state = pInvalid
	}
}

// migrateThreads resumes the dead node's threads on the backup node from
// their last checkpoints (§4.5.3). Threads that never checkpointed restart
// from the beginning of their body (equivalent to a checkpoint at the
// initial barrier). Returns the number of migrated threads.
func (t *Thread) migrateThreads(dead int, saved *savedState) int {
	cl := t.cl
	backup := cl.backupOf(dead)
	bn := cl.nodes[backup]
	tsD := saved.ts[dead]
	// A snapshot is usable only if the interval open when it was taken
	// survived the roll decision: point-A snapshots ride with a release's
	// commit, so one from a release that rolled back (timestamp never
	// saved) describes thread progress whose memory effects were erased.
	usable := func(s checkpoint.Snapshot) bool { return s.VT[dead] <= tsD }
	count := 0
	for _, old := range cl.threads {
		if old.node.id != dead || old.finished {
			continue
		}
		nt := &Thread{id: old.id, cl: cl, node: bn, migrated: true}
		// The snapshot counts only if its depositor can no longer be
		// running the thread. At k = 2 that is exactly ckptHome == dead
		// (the seed rule); at k > 2 a thread migrated earlier in the same
		// episode may die again before re-checkpointing, leaving its
		// latest deposit tagged with the previous (also dead) home.
		home, hasHome := bn.ckptHome[old.id]
		okHome := hasHome && (home == dead || (cl.Degree() > 2 && cl.nodes[home].dead))
		snap, restored := bn.ckpts.LatestValid(old.id, usable)
		if restored && okHome {
			nt.restoredBlob = snap.Blob
			nt.ckptSeq = snap.Seq
			nt.barSeq = snap.BarSeq
			t.charge(CompProtocol, cl.cfg.CheckpointNs(len(snap.Blob)))
		}
		// Register and spawn BEFORE announcing the restore: the trace is a
		// failure-injection boundary, and a kill of the backup node there
		// must see the migrated thread in bn.threads to stop it. The
		// explicit dead-check below covers the other ordering — bn killed
		// at an earlier boundary of this same loop — where the thread is
		// spawned onto an already-dead node.
		cl.threads[old.id] = nt
		bn.threads = append(bn.threads, nt)
		cl.spawnThread(nt)
		if restored && okHome {
			cl.trace(obs.KRecoveryRestore, backup, old.id, snap.Seq)
		}
		if bn.dead && !nt.dead {
			nt.dead = true
			nt.proc.Kill()
		}
		t.node.stats.MigratedThreads++
		count++
	}
	cl.trace(obs.KRecoveryMigrate, dead, t.id, int64(count))
	return count
}

package svm

import (
	"time"

	"ftsvm/internal/checkpoint"
	"ftsvm/internal/obs"
	"ftsvm/internal/proto"
)

// rehome runs dir.Rehome(dead) under host wall timing (the measured
// recovery-path directory cost reported by the scaling bench) and, for
// hashed directories, charges the home-delta broadcast: a hashed
// directory is computable from membership plus its override table, so
// the coordinator must ship the newly created overrides to every
// survivor. A flat directory re-runs the same full scan on every node
// and ships nothing — keeping the flat recovery path bit-identical to
// the seed.
func (t *Thread) rehome(dir proto.Directory, dead int) []proto.Reassignment {
	start := time.Now()
	rs := dir.Rehome(dead)
	t.cl.rehomeWallNs += time.Since(start).Nanoseconds()
	if t.cl.dirHashed && len(rs) > 0 {
		wire := proto.HomeDeltaWireBytes(len(rs))
		survivors := dir.AliveCount() - 1 // everyone but the coordinator
		t.charge(CompProtocol, t.cl.cfg.TransferNs(wire*survivors))
	}
	return rs
}

// reconcilePages restores the replica invariant for every page with
// respect to the dead node's interrupted release (§4.5.2). The saved
// timestamp designates the set of the dead node's updates whose phase 1
// completed: those roll forward (tentative -> committed); anything beyond
// rolls back (committed -> tentative). Pages whose surviving copy is the
// only copy are handled by rehomeAndReplicate.
func (t *Thread) reconcilePages(dead int, saved *savedState) {
	cl := t.cl
	cfg := cl.cfg
	tsD := saved.ts[dead]
	bytesMoved := 0
	for p := 0; p < cl.pageHomes.Items(); p++ {
		P := cl.pageHomes.Primary(p)
		S := cl.pageHomes.Secondary(p)
		if P == dead || S == dead {
			continue // single surviving copy; no pairwise reconcile
		}
		pgP := cl.nodes[P].pt.pages[p]
		pgS := cl.nodes[S].pt.pages[p]
		if pgP.committed == nil && pgS.tentative == nil {
			continue
		}
		ensureHomeCopies(cl, pgP, pgS)
		cv, dv := pgP.commitVer[dead], pgS.tentVer[dead]
		if dv == cv {
			// No interrupted release by the dead node touches this page.
			// Mismatches in live nodes' entries are in-flight releases
			// whose (live) owners will complete phase 2 themselves.
			continue
		}
		if dv > cv && dv <= tsD {
			// Roll forward: the dead node's phase 1 completed for this
			// interval; promote the tentative copy. Live in-flight
			// phase-1 partials promoted along with it are re-applied
			// idempotently by their owners' phase 2.
			copy(pgP.committed, pgS.tentative)
			pgP.commitVer = pgS.tentVer.Clone()
		} else if dv > cv {
			// Roll back: undo exactly the dead node's tentative update
			// using the pre-image that rode with the phase-1 diff.
			if rec, ok := pgS.undoFrom[dead]; ok && rec.interval == dv {
				rec.undo.Apply(pgS.tentative)
			}
			pgS.tentVer[dead] = cv
		}
		bytesMoved += cfg.PageSize
	}
	// Apply the dead node's stashed self-secondary diffs: updates whose
	// only phase-1 replica died with the releaser but whose release is
	// considered complete (<= saved timestamp) must reach the committed
	// copies.
	backup := cl.backupOf(dead)
	for _, d := range cl.nodes[backup].savedStash[dead] {
		P := cl.pageHomes.Primary(d.Page)
		if P == dead {
			continue // no committed copy survives; handled by replay
		}
		pg := cl.nodes[P].pt.pages[d.Page]
		ensureCommitted(cl, pg)
		if pg.commitVer[dead] < tsD {
			d.Apply(pg.committed)
			pg.commitVer[dead] = tsD
			bytesMoved += d.DataBytes()
		}
	}
	// The coordinator drives the copies; charge the pipelined transfer.
	t.charge(CompProtocol, cfg.TransferNs(bytesMoved))
	cl.trace(obs.KRecoveryReconcile, dead, t.id, int64(bytesMoved))
}

func ensureHomeCopies(cl *Cluster, pgP, pgS *page) {
	ensureCommitted(cl, pgP)
	if pgS.tentative == nil {
		pgS.tentative = pgS.pt.node.getPageBufZero()
		pgS.tentVer = proto.NewVector(cl.cfg.Nodes)
	}
}

func ensureCommitted(cl *Cluster, pg *page) {
	if pg.committed == nil {
		pg.committed = pg.pt.node.getPageBufZero()
		pg.commitVer = proto.NewVector(cl.cfg.Nodes)
	}
}

// rehomeAndReplicate reassigns every home role the dead node held and
// rebuilds the missing replicas from the surviving copies (§4.5.1). The
// mapping guarantees the two replicas of each page stay on distinct live
// nodes under any failure sequence.
func (t *Thread) rehomeAndReplicate(dead int) {
	cl := t.cl
	cfg := cl.cfg
	tsD := proto.VectorTime(nil)
	if backup := cl.backupOf(dead); cl.nodes[backup].savedTS[dead] != nil {
		tsD = cl.nodes[backup].savedTS[dead]
	}
	bytesMoved := 0
	for _, r := range t.rehome(cl.pageHomes, dead) {
		pg := cl.nodes[r.NewNode].pt.pages[r.Item]
		sv := cl.nodes[r.Survivor].pt.pages[r.Item]
		switch r.Role {
		case proto.Primary:
			// Promotion in place: the old secondary becomes primary; its
			// tentative copy is the authoritative state. An update beyond
			// the dead node's saved timestamp belongs to a release whose
			// phase 1 did not complete: roll it back using the stored
			// pre-image (the committed copy that would normally provide
			// the roll-back data died with the releaser).
			if sv.tentative == nil {
				sv.tentative = sv.pt.node.getPageBufZero()
				sv.tentVer = proto.NewVector(cfg.Nodes)
			}
			tsDead := int32(0)
			if tsD != nil {
				tsDead = tsD[dead]
			}
			if sv.tentVer[dead] > tsDead {
				if rec, ok := sv.undoFrom[dead]; ok && rec.interval == sv.tentVer[dead] {
					rec.undo.Apply(sv.tentative)
				}
				sv.tentVer[dead] = tsDead
			}
			ensureCommitted(cl, pg)
			copy(pg.committed, sv.tentative)
			pg.commitVer = sv.tentVer.Clone()
			bytesMoved += cfg.PageSize
		case proto.Secondary:
			ensureCommitted(cl, sv)
			if pg.tentative == nil {
				pg.tentative = pg.pt.node.getPageBufZero()
			}
			copy(pg.tentative, sv.committed)
			pg.tentVer = sv.commitVer.Clone()
			if r.NewNode != r.Survivor {
				bytesMoved += cfg.PageSize
			}
		}
	}
	t.charge(CompProtocol, cfg.TransferNs(bytesMoved))
	cl.trace(obs.KRecoveryRehome, dead, t.id, int64(bytesMoved))
}

// rebuildLocks reassigns lock homes and reconstructs each lock's state
// at the new homes from the surviving home replica: the primary's
// vector if the primary survives, else the secondary's (§4.5.1). The
// replica is then filtered against the acquirer-side state of the live
// nodes it names — an element whose owner is neither holding nor
// acquiring the lock is an in-flight release or failed-attempt clear
// that had not reached this replica, and the dead node's own element is
// implicitly released (its threads replay from before the acquire).
// The filter only ever removes elements; it never invents a holder the
// replica does not record, which is exactly why grants must replicate
// before they take effect (see nicTestAndSet): a holder missing from
// both replicas would be resurrected here as a free lock and granted
// twice. The release timestamp is merged from the surviving replicas.
func (t *Thread) rebuildLocks(dead int) {
	cl := t.cl
	cfg := cl.cfg
	nlocks := cl.lockHomes.Items()

	// Surviving home state, captured before rehoming.
	oldVT := make([]proto.VectorTime, nlocks)
	oldVec := make([][]bool, nlocks)
	for l := 0; l < nlocks; l++ {
		vt := proto.NewVector(cfg.Nodes)
		for _, home := range []int{cl.lockHomes.Primary(l), cl.lockHomes.Secondary(l)} {
			if home == dead {
				continue
			}
			if lh := cl.nodes[home].lockHomesState[l]; lh != nil {
				vt.Merge(lh.vt)
				if oldVec[l] == nil {
					// First surviving replica in primary-then-secondary
					// order: the authoritative vector. Clone it — the
					// installs below mutate home state in place.
					oldVec[l] = append([]bool(nil), lh.vec...)
				}
			}
		}
		oldVT[l] = vt
	}
	t.rehome(cl.lockHomes, dead)

	for l := 0; l < nlocks; l++ {
		var holders []int
		for i, set := range oldVec[l] {
			if !set || i == dead || cl.nodes[i].dead {
				continue
			}
			if ol := cl.nodes[i].owned[l]; ol != nil && (ol.held || ol.busy) {
				holders = append(holders, i)
			}
		}
		for _, home := range []int{cl.lockHomes.Primary(l), cl.lockHomes.Secondary(l)} {
			n := cl.nodes[home]
			n.installLock(&lockRebuild{Lock: l, Holders: holders, VT: oldVT[l]})
		}
		t.charge(CompProtocol, cfg.ProtoOpNs)
	}
	cl.trace(obs.KRecoveryLocks, dead, t.id, int64(nlocks))
}

// globalSync makes memory globally consistent across the survivors:
// every node learns every other node's committed intervals (including the
// dead node's replicated ones, up to its saved timestamp) and invalidates
// accordingly. This is the recovery-phase global synchronization point.
func (t *Thread) globalSync(dead int, saved *savedState) {
	cl := t.cl
	cfg := cl.cfg

	// Gather all lists any node might be missing.
	var all []proto.UpdateList
	minSeen := make(proto.VectorTime, cfg.Nodes)
	for i := range minSeen {
		minSeen[i] = int32(1 << 30)
	}
	for _, n := range cl.nodes {
		if n.dead {
			continue
		}
		for src := range n.vt {
			if n.vt[src] < minSeen[src] {
				minSeen[src] = n.vt[src]
			}
		}
	}
	bytes := 0
	for _, n := range cl.nodes {
		if n.dead {
			continue
		}
		lists := n.intervalRange(minSeen[n.id]+1, int32(len(n.intervals)))
		all = append(all, lists...)
		bytes += updatesWire(lists)
	}
	// The dead node's lists, from its backup, clamped to the saved
	// timestamp (anything beyond rolled back).
	for _, ul := range saved.lists {
		if ul.Interval <= saved.ts[dead] {
			all = append(all, ul)
		}
	}
	globalVT := proto.NewVector(cfg.Nodes)
	for _, n := range cl.nodes {
		if !n.dead {
			globalVT.Merge(n.vt)
		}
	}
	globalVT[dead] = saved.ts[dead]

	for _, n := range cl.nodes {
		if n.dead {
			continue
		}
		for _, ul := range all {
			if ul.Node == n.id || ul.Interval <= n.vt[ul.Node] {
				continue
			}
			for _, pid := range ul.Pages {
				n.invalidateRaw(pid, ul.Node, ul.Interval)
			}
		}
		n.vt.Merge(globalVT)
		// Clamp requirements on the dead node's cancelled intervals.
		for _, pg := range n.pt.pages {
			if pg.reqVer[dead] > saved.ts[dead] {
				pg.reqVer[dead] = saved.ts[dead]
			}
		}
	}
	t.charge(CompProtocol, cfg.TransferNs(bytes)+int64(len(all))*cfg.ProtoOpNs)
	cl.trace(obs.KRecoverySync, dead, t.id, int64(len(all)))
}

// invalidateRaw is the node-level invalidation used during recovery (no
// per-thread charge; the coordinator accounts the work in bulk).
func (n *node) invalidateRaw(pid, src int, itv int32) {
	if src == n.id {
		return
	}
	pg := n.pt.pages[pid]
	if pg.reqVer[src] < itv {
		pg.reqVer[src] = itv
	}
	switch pg.state {
	case pWritable:
		pg.dirtyTwin = pg.twin
		pg.dirtyWorking = pg.working
		pg.stashMask = pg.dirtyMask
		pg.twin = nil
		pg.working = nil
		pg.dirtyMask = nil
		pg.maskFull = false
		pg.state = pInvalid
	case pReadOnly:
		pg.state = pInvalid
	}
}

// migrateThreads resumes the dead node's threads on the backup node from
// their last checkpoints (§4.5.3). Threads that never checkpointed restart
// from the beginning of their body (equivalent to a checkpoint at the
// initial barrier). Returns the number of migrated threads.
func (t *Thread) migrateThreads(dead int, saved *savedState) int {
	cl := t.cl
	backup := cl.backupOf(dead)
	bn := cl.nodes[backup]
	tsD := saved.ts[dead]
	// A snapshot is usable only if the interval open when it was taken
	// survived the roll decision: point-A snapshots ride with a release's
	// commit, so one from a release that rolled back (timestamp never
	// saved) describes thread progress whose memory effects were erased.
	usable := func(s checkpoint.Snapshot) bool { return s.VT[dead] <= tsD }
	count := 0
	for _, old := range cl.threads {
		if old.node.id != dead || old.finished {
			continue
		}
		nt := &Thread{id: old.id, cl: cl, node: bn, migrated: true}
		if snap, ok := bn.ckpts.LatestValid(old.id, usable); ok && bn.ckptHome[old.id] == dead {
			nt.restoredBlob = snap.Blob
			nt.ckptSeq = snap.Seq
			nt.barSeq = snap.BarSeq
			cl.trace(obs.KRecoveryRestore, backup, old.id, snap.Seq)
			t.charge(CompProtocol, cl.cfg.CheckpointNs(len(snap.Blob)))
		}
		cl.threads[old.id] = nt
		bn.threads = append(bn.threads, nt)
		cl.spawnThread(nt)
		t.node.stats.MigratedThreads++
		count++
	}
	cl.trace(obs.KRecoveryMigrate, dead, t.id, int64(count))
	return count
}

package svm

import (
	"fmt"
	"testing"

	"ftsvm/internal/model"
)

// TestFailureScheduleSweep systematically fail-stops every node at every
// protocol milestone of every release sequence number, for the shared
// counter workload — an exhaustive walk of the §4.5 failure windows. Each
// schedule is a fully deterministic simulation; the invariants are the
// paper's guarantees: the computation completes, not one increment is
// lost or duplicated, and both replicas of every page are identical on
// distinct live nodes afterwards.
func TestFailureScheduleSweep(t *testing.T) {
	const nodes = 4
	const iters = 6
	milestones := []string{
		"release.commit", "release.phase1", "release.savets",
		"release.ckptB", "release.phase2", "release.done", "ckpt.A",
	}
	ran, skipped := 0, 0
	for victim := 0; victim < nodes; victim++ {
		for _, kind := range milestones {
			for seq := int64(1); seq <= 5; seq += 2 {
				name := fmt.Sprintf("%s/n%d/s%d", kind, victim, seq)
				cfg := model.Default()
				cfg.Nodes = nodes
				tracer := &killTracer{kind: kind, node: victim, seq: seq}
				cl, err := New(Options{
					Config: cfg, Mode: ModeFT, Pages: 8, Locks: 1,
					Body: counterBody(iters), Tracer: tracer,
				})
				if err != nil {
					t.Fatal(err)
				}
				tracer.cl = cl
				if err := cl.Run(); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if !tracer.done {
					skipped++ // milestone never reached (e.g. ckpt.A needs siblings)
					continue
				}
				ran++
				if !cl.Finished() {
					t.Fatalf("%s: threads did not finish", name)
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("%s: invariant check panicked: %v", name, r)
						}
					}()
					checkCounter(t, cl, nodes*iters)
					verifyReplicaInvariants(t, cl)
				}()
			}
		}
	}
	t.Logf("failure schedules: %d executed, %d unreachable", ran, skipped)
	if ran < 40 {
		t.Fatalf("only %d schedules executed; sweep ineffective", ran)
	}
}

// TestFailureScheduleSweepSMP repeats a reduced sweep with 2 threads per
// node (the point-A checkpoint path).
func TestFailureScheduleSweepSMP(t *testing.T) {
	const nodes = 3
	const iters = 4
	ran := 0
	for victim := 0; victim < nodes; victim++ {
		for _, kind := range []string{"ckpt.A", "release.savets", "release.done"} {
			cfg := model.Default()
			cfg.Nodes = nodes
			cfg.ThreadsPerNode = 2
			tracer := &killTracer{kind: kind, node: victim, seq: 2}
			cl, err := New(Options{
				Config: cfg, Mode: ModeFT, Pages: 8, Locks: 1,
				Body: counterBody(iters), Tracer: tracer,
			})
			if err != nil {
				t.Fatal(err)
			}
			tracer.cl = cl
			if err := cl.Run(); err != nil {
				t.Fatalf("%s/n%d: %v", kind, victim, err)
			}
			if !tracer.done {
				continue
			}
			ran++
			if !cl.Finished() {
				t.Fatalf("%s/n%d: did not finish", kind, victim)
			}
			checkCounter(t, cl, nodes*2*iters)
			verifyReplicaInvariants(t, cl)
		}
	}
	if ran < 5 {
		t.Fatalf("only %d SMP schedules executed", ran)
	}
}

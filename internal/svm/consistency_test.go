package svm

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"ftsvm/internal/model"
)

// TestReleaseConsistencyProperty generates random lock-ordered schedules:
// each thread performs a random sequence of critical sections, and inside
// lock L's section reads the chain value and writes chain+1, also
// recording its observation. Lazy release consistency requires every
// acquirer to observe all writes ordered before it by the lock chain, so
// each lock's final value must equal its total number of critical
// sections — under both protocols and both lock algorithms.
func TestReleaseConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := 3 + rng.Intn(3)    // 3..5
		tpn := 1 + rng.Intn(2)      // 1..2 threads per node (SMP shapes)
		locks := 1 + rng.Intn(4)    // 1..4
		sections := 4 + rng.Intn(6) // per thread
		mode := ModeBase
		algo := LockAlgo(rng.Intn(3)) // base may use any lock
		if rng.Intn(2) == 1 {
			mode = ModeFT
			algo = []LockAlgo{LockPolling, LockNIC}[rng.Intn(2)]
		}
		aggregate := rng.Intn(2) == 1
		singlePhase := mode == ModeFT && rng.Intn(3) == 0 // failure-free: safe

		// Pre-generate each thread's lock sequence (checkpoint-stable).
		seqs := make([][]int, nodes*tpn)
		for i := range seqs {
			seqs[i] = make([]int, sections)
			for j := range seqs[i] {
				seqs[i][j] = rng.Intn(locks)
			}
		}

		cfg := model.Default()
		cfg.Nodes = nodes
		cfg.ThreadsPerNode = tpn
		cfg.Seed = seed
		type st struct{ J int }
		monotone := true
		cl, err := New(Options{
			Config: cfg, Mode: mode, LockAlgo: algo,
			Pages: locks + 1, Locks: locks,
			AggregateDiffs: aggregate, UnsafeSinglePhase: singlePhase,
			Body: func(th *Thread) {
				s := &st{}
				th.Setup(s)
				seq := seqs[th.ID()]
				last := make([]uint64, locks)
				for s.J < len(seq) {
					l := seq[s.J]
					th.Acquire(l)
					v := th.ReadU64(l * 4096)
					if v < last[l] {
						monotone = false // chain went backwards: stale read
					}
					last[l] = v + 1
					th.WriteU64(l*4096, v+1)
					s.J++
					th.Release(l)
				}
				th.Barrier()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Run(); err != nil {
			t.Fatal(err)
		}
		if !monotone {
			return false
		}
		// Final chain values: total sections per lock.
		want := make([]uint64, locks)
		for _, seq := range seqs {
			for _, l := range seq {
				want[l]++
			}
		}
		for l := 0; l < locks; l++ {
			if got := cl.PeekU64(l * 4096); got != want[l] {
				t.Logf("seed %d: lock %d chain = %d, want %d (mode=%v algo=%v)",
					seed, l, got, want[l], mode, algo)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestReleaseConsistencyUnderFailure is the same chain property with a
// random single failure injected mid-run: post-recovery replay must keep
// every chain exact.
func TestReleaseConsistencyUnderFailure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := 4
		locks := 1 + rng.Intn(3)
		sections := 6
		tpn := 1 + rng.Intn(2)
		victim := 1 + rng.Intn(nodes-1)
		killNs := int64(1_000_000 + rng.Intn(20_000_000))

		seqs := make([][]int, nodes*tpn)
		for i := range seqs {
			seqs[i] = make([]int, sections)
			for j := range seqs[i] {
				seqs[i][j] = rng.Intn(locks)
			}
		}

		cfg := model.Default()
		cfg.Nodes = nodes
		cfg.ThreadsPerNode = tpn
		cfg.Seed = seed
		type st struct{ J int }
		cl, err := New(Options{
			Config: cfg, Mode: ModeFT,
			Pages: locks + 1, Locks: locks,
			Body: func(th *Thread) {
				s := &st{}
				th.Setup(s)
				seq := seqs[th.ID()]
				for s.J < len(seq) {
					l := seq[s.J]
					th.Acquire(l)
					v := th.ReadU64(l * 4096)
					th.WriteU64(l*4096, v+1)
					s.J++
					th.Release(l)
				}
				th.Barrier()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		cl.Engine().At(killNs, func() { cl.KillNode(victim) })
		if err := cl.Run(); err != nil {
			t.Fatal(err)
		}
		if !cl.Finished() {
			t.Logf("seed %d: not finished", seed)
			return false
		}
		want := make([]uint64, locks)
		for _, seq := range seqs {
			for _, l := range seq {
				want[l]++
			}
		}
		for l := 0; l < locks; l++ {
			if got := cl.PeekU64(l * 4096); got != want[l] {
				t.Logf("seed %d: lock %d chain = %d, want %d (victim %d at %dns)",
					seed, l, got, want[l], victim, killNs)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestBarrierPhasePropertyRandomShapes runs the write-slot/read-all
// barrier exchange over random cluster shapes.
func TestBarrierPhasePropertyRandomShapes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nodes := 2 + rng.Intn(5)
		tpn := 1 + rng.Intn(2)
		rounds := 1 + rng.Intn(3)
		nthreads := nodes * tpn
		mode := Mode(rng.Intn(2))

		cfg := model.Default()
		cfg.Nodes = nodes
		cfg.ThreadsPerNode = tpn
		cfg.Seed = seed
		type st struct {
			Phase   int
			Arrived bool
		}
		ok := true
		cl, err := New(Options{
			Config: cfg, Mode: mode, Pages: nthreads + 1, Locks: 1,
			Body: func(th *Thread) {
				s := &st{}
				th.Setup(s)
				for s.Phase < rounds*2 {
					if !s.Arrived {
						if s.Phase%2 == 0 {
							th.WriteU64(th.ID()*4096, uint64(1000*s.Phase+th.ID()))
						} else {
							for i := 0; i < nthreads; i++ {
								got := th.ReadU64(i * 4096)
								if got != uint64(1000*(s.Phase-1)+i) {
									ok = false
								}
							}
						}
						s.Arrived = true
					}
					th.Barrier()
					s.Arrived = false
					s.Phase++
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Run(); err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Logf("seed %d: stale read (nodes=%d tpn=%d mode=%v)", seed, nodes, tpn, mode)
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseUnheldLockPanics(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 2
	cl, err := New(Options{
		Config: cfg, Mode: ModeBase, Pages: 1, Locks: 1,
		Body: func(th *Thread) {
			if th.ID() == 0 {
				defer func() {
					if recover() == nil {
						t.Error("Release of unheld lock did not panic")
					}
				}()
				th.Release(0)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = cl.Run() // thread 0 unwinds; engine may report it as blocked
}

func TestOutOfRangeAddressPanics(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 2
	cl, err := New(Options{
		Config: cfg, Mode: ModeBase, Pages: 1, Locks: 1,
		Body: func(th *Thread) {
			if th.ID() == 0 {
				defer func() {
					if recover() == nil {
						t.Error("out-of-range access did not panic")
					}
				}()
				th.ReadU64(1 << 30)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = cl.Run()
}

func TestNewValidation(t *testing.T) {
	cfg := model.Default()
	cases := []struct {
		name string
		mut  func(*Options)
	}{
		{"no body", func(o *Options) { o.Body = nil }},
		{"no pages", func(o *Options) { o.Pages = 0 }},
		{"one node", func(o *Options) { o.Config.Nodes = 1 }},
		{"ft queue lock", func(o *Options) { o.Mode = ModeFT; o.LockAlgo = LockQueue }},
	}
	for _, c := range cases {
		opt := Options{Config: cfg, Pages: 1, Body: func(*Thread) {}}
		c.mut(&opt)
		if _, err := New(opt); err == nil {
			t.Errorf("%s: New accepted invalid options", c.name)
		}
	}
}

func TestModeAndLockStrings(t *testing.T) {
	if ModeBase.String() != "base" || ModeFT.String() != "extended" {
		t.Fatal("Mode.String wrong")
	}
	if LockPolling.String() != "polling" || LockQueue.String() != "queue" {
		t.Fatal("LockAlgo.String wrong")
	}
	for _, c := range Components() {
		if c.String() == "" || c.String() == fmt.Sprintf("Component(%d)", int(c)) {
			t.Fatalf("component %d has no name", int(c))
		}
	}
}

func TestPeekBytesCrossPage(t *testing.T) {
	cl := runCluster(t, ModeFT, 2, 1, 2, 1, func(th *Thread) {
		th.Setup(&counterState{})
		if th.ID() == 0 {
			for i := 0; i < 16; i++ {
				th.WriteU64(4088+8*i, uint64(i)) // straddles the page boundary
			}
		}
		th.Barrier()
	})
	got := cl.PeekBytes(4088, 128)
	for i := 0; i < 16; i++ {
		v := uint64(got[8*i]) | uint64(got[8*i+1])<<8
		if v != uint64(i) {
			t.Fatalf("word %d = %d", i, v)
		}
	}
}

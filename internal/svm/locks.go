package svm

import (
	"errors"
	"fmt"

	"ftsvm/internal/obs"
	"ftsvm/internal/proto"
	"ftsvm/internal/vmmc"
)

// Acquire obtains application lock l with acquire consistency: after it
// returns, every shared write that precedes the acquire in the lazy
// release consistency partial order has been made visible (the
// corresponding pages invalidated). Lock exchange between threads on the
// same node needs no messages.
func (t *Thread) Acquire(l int) {
	t.safePoint()
	n := t.node
	ol := n.lockState(l)
	for {
		if ol.held && ol.holder == nil {
			// Intra-SMP handoff: the node owns the lock and no thread is
			// inside the critical section.
			ol.holder = t
			t.locksHeld++
			t.node.stats.IntraNodeHandoffs++
			return
		}
		if ol.held || ol.busy {
			// Another local thread holds it or is acquiring it remotely.
			ol.localWaiters++
			t0 := t.beginWait()
			ol.gate.WaitTimeout(t.proc, 4*t.cl.cfg.HeartbeatTimeoutNs)
			t.endWait(CompLock, t0)
			ol.localWaiters--
			t.safePoint()
			continue
		}
		break
	}
	ol.busy = true
	var vt proto.VectorTime
	switch t.cl.opt.LockAlgo {
	case LockPolling:
		vt = t.pollingAcquire(l)
	case LockQueue:
		vt = t.queueAcquire(l)
	case LockNIC:
		vt = t.nicAcquire(l)
	}
	ol.busy = false
	ol.held = true
	ol.holder = t
	t.locksHeld++
	if t.cl.lockHomes.Primary(l) != n.id {
		// Only acquires that actually went to a remote home count; a
		// primary-home node acquires through local state, no message.
		t.node.stats.RemoteAcquires++
	}
	t.cl.trace(obs.KLockHeld, n.id, t.id, int64(l))
	// Acquire-side consistency: fetch the missing write notices and
	// invalidate (the releaser's timestamp travels with the lock).
	if vt != nil && !t.node.vt.Covers(vt) {
		t.fetchUpdates(vt)
	}
}

// Release releases lock l, performing the release operation of the
// protocol in use (interval commit and diff propagation; in the extended
// protocol the full two-phase pipeline with checkpointing). The lock
// becomes available to the next requester at the protocol's visibility
// point.
func (t *Thread) Release(l int) {
	t.safePoint()
	ol := t.node.lockState(l)
	if !ol.held || ol.holder != t {
		panic(fmt.Sprintf("svm: thread %d releases lock %d it does not hold", t.id, l))
	}
	t.performRelease(func() { t.handOver(l, ol) })
	t.locksHeld--
}

// handOver passes the lock on: to a waiting local thread for free, to a
// forwarded remote requester (queue lock), or back to the lock home(s)
// (polling lock).
func (t *Thread) handOver(l int, ol *ownedLock) {
	n := t.node
	ol.holder = nil
	if t.cl.opt.LockAlgo == LockQueue {
		ol.releaseVT = n.vt.Clone()
	}
	switch {
	case t.cl.opt.LockAlgo == LockQueue && ol.pendingGrant >= 0:
		// A remote requester was forwarded to us; grant directly.
		dst := ol.pendingGrant
		ol.pendingGrant = -1
		ol.held = false
		t.cl.trace(obs.KLockRelease, n.id, t.id, int64(l))
		g := &qlGrant{Lock: l, VT: n.vt.Clone()}
		t.charge(CompLock, t.cl.cfg.NICPostOverheadNs)
		n.ep.PostSystem(dst, n.msgWire(dst, g), g)
		ol.gate.Broadcast() // local waiters must re-contend remotely
	case ol.localWaiters > 0:
		// Intra-SMP exchange: keep node ownership, wake a local waiter.
		ol.gate.Broadcast()
	case t.cl.opt.LockAlgo == LockPolling || t.cl.opt.LockAlgo == LockNIC:
		// Return the lock: clear our element and store our timestamp at
		// the home(s), atomically per home.
		ol.held = false
		t.cl.trace(obs.KLockRelease, n.id, t.id, int64(l))
		rel := &lockRelease{Lock: l, Node: n.id, VT: n.vt.Clone()}
		prim := t.cl.lockHomes.Primary(l)
		t.postLockMsg(prim, rel, n.msgWire(prim, rel))
		if t.cl.opt.Mode == ModeFT {
			for s := 1; s < t.cl.lockHomes.Degree(); s++ {
				sec := t.cl.lockHomes.Replica(l, s)
				t.postLockMsg(sec, rel, n.msgWire(sec, rel))
			}
		}
	default:
		// Queue lock, uncontended: the lock stays cached on this node;
		// the home still records us as tail and forwards future requests.
	}
}

// lockState returns (creating on demand) the node's acquirer-side state
// for lock l.
func (n *node) lockState(l int) *ownedLock {
	ol := n.owned[l]
	if ol == nil {
		ol = &ownedLock{pendingGrant: -1}
		n.owned[l] = ol
	}
	return ol
}

// postLockMsg sends a lock-protocol deposit, applying it locally when this
// node is the home.
func (t *Thread) postLockMsg(dst int, payload any, size int) {
	n := t.node
	if dst == n.id {
		n.applyLockMsg(n.id, payload)
		t.charge(CompLock, t.cl.cfg.ProtoOpNs)
		return
	}
	t.charge(CompLock, t.cl.cfg.NICPostOverheadNs)
	t0 := t.beginWait()
	n.ep.Post(t.proc, dst, size, payload)
	t.endWait(CompLock, t0)
}

// pollingAcquire runs the paper's centralized polling algorithm (§4.3):
// remote-write our element into the lock vector at the home(s), read the
// whole vector from the primary home, and if any other element is set,
// clear ours, back off, and retry.
func (t *Thread) pollingAcquire(l int) proto.VectorTime {
	n := t.node
	cfg := t.cl.cfg
	ft := t.cl.opt.Mode == ModeFT
	spinStart := t.proc.Now()
	for {
		t.safePoint()
		// Heartbeat (§4.1): a holder that died leaves its element set
		// forever; after spinning past the timeout, probe liveness so the
		// failure is detected even though the lock home itself is healthy.
		if ft && t.proc.Now()-spinStart > 4*cfg.HeartbeatTimeoutNs {
			t.probeCluster()
			spinStart = t.proc.Now()
		}
		prim := t.cl.lockHomes.Primary(l)
		set := &lockSet{Lock: l, Node: n.id}
		t.postLockMsg(prim, set, set.wireBytes())
		if ft {
			// FT ordering invariant: every secondary's element is posted
			// before the primary read below, and per-sender FIFO delivers
			// them first — so by the time the read reply grants the lock,
			// all secondary replicas already record the new holder.
			for s := 1; s < t.cl.lockHomes.Degree(); s++ {
				t.postLockMsg(t.cl.lockHomes.Replica(l, s), set, set.wireBytes())
			}
		}

		rep, err := t.lockReadVector(l, prim)
		if err != nil {
			t.joinRecoveryErr(err)
			continue
		}
		sole := len(rep.Holders) == 1 && rep.Holders[0] == n.id
		if sole {
			return rep.VT
		}
		// Contended: clear our element and back off.
		clr := &lockClear{Lock: l, Node: n.id}
		t.postLockMsg(prim, clr, clr.wireBytes())
		if ft {
			for s := 1; s < t.cl.lockHomes.Degree(); s++ {
				t.postLockMsg(t.cl.lockHomes.Replica(l, s), clr, clr.wireBytes())
			}
		}
		backoff := cfg.LockBackoffMinNs
		if span := cfg.LockBackoffMaxNs - cfg.LockBackoffMinNs; span > 0 {
			backoff += t.proc.Int63n(span)
		}
		t0 := t.beginWait()
		t.proc.Advance(backoff)
		t.endWait(CompLock, t0)
	}
}

// lockReadVector fetches the lock vector and stored timestamp from the
// primary home.
func (t *Thread) lockReadVector(l, prim int) (*lockReadReply, error) {
	n := t.node
	if prim == n.id {
		lh := n.lockHomesState[l]
		t.charge(CompLock, t.cl.cfg.ProtoOpNs)
		return lh.readReply(), nil
	}
	req := &lockRead{Lock: l}
	t0 := t.beginWait()
	v, err := n.ep.RequestAbort(t.proc, prim, req.wireBytes(), req,
		func() bool { return t.cl.rec.pending })
	t.endWait(CompLock, t0)
	if err != nil {
		if errors.Is(err, vmmc.ErrNodeDead) || errors.Is(err, vmmc.ErrAborted) {
			return nil, err
		}
		panic(fmt.Sprintf("svm: lock %d read: %v", l, err))
	}
	return v.(*lockReadReply), nil
}

func (lh *lockHome) readReply() *lockReadReply {
	var holders []int
	for i, set := range lh.vec {
		if set {
			holders = append(holders, i)
		}
	}
	return &lockReadReply{Holders: holders, VT: lh.vt.Clone()}
}

// nicAcquire runs the NIC-assisted lock: one test-and-set round trip to
// the primary home. Under ModeFT the primary home's NIC replicates the
// owner element at the secondary home before the grant reply leaves (see
// nicTestAndSet) — the acquirer itself never touches the secondary.
// Contended attempts back off briefly and retry.
func (t *Thread) nicAcquire(l int) proto.VectorTime {
	n := t.node
	cfg := t.cl.cfg
	ft := t.cl.opt.Mode == ModeFT
	spinStart := t.proc.Now()
	for {
		t.safePoint()
		if ft && t.proc.Now()-spinStart > 4*cfg.HeartbeatTimeoutNs {
			t.probeCluster()
			spinStart = t.proc.Now()
		}
		prim := t.cl.lockHomes.Primary(l)
		var rep *nicTestSetReply
		if prim == n.id {
			rep = n.nicTestAndSet(&nicTestSet{Lock: l, Node: n.id})
			t.charge(CompLock, t.cl.cfg.ProtoOpNs)
		} else {
			req := &nicTestSet{Lock: l, Node: n.id}
			t0 := t.beginWait()
			v, err := n.ep.RequestAbort(t.proc, prim, req.wireBytes(), req,
				func() bool { return t.cl.rec.pending })
			t.endWait(CompLock, t0)
			if err != nil {
				if errors.Is(err, vmmc.ErrNodeDead) || errors.Is(err, vmmc.ErrAborted) {
					t.joinRecoveryErr(err)
					continue
				}
				panic(fmt.Sprintf("svm: nic lock %d: %v", l, err))
			}
			rep = v.(*nicTestSetReply)
		}
		if rep.Granted {
			return rep.VT
		}
		backoff := cfg.LockBackoffMinNs / 2
		if span := cfg.LockBackoffMaxNs/2 - backoff; span > 0 {
			backoff += t.proc.Int63n(span)
		}
		t0 := t.beginWait()
		t.proc.Advance(backoff)
		t.endWait(CompLock, t0)
	}
}

// nicTestAndSet is the home-side atomic test-and-set. Runs in engine or
// process context.
//
// Under ModeFT the grant and its replication used to race: the acquirer
// posted the lockSet to the secondary home only after receiving the
// grant, so a failure of the acquirer (or of this primary home) in that
// window left the secondary with no owner element and recovery could
// grant the lock twice. The primary home's NIC now drives the
// replication itself, enqueueing the lockSet before the grant reply —
// per-sender FIFO then guarantees the secondary's element lands before
// any consequence of the grant is observable, closing the window (the
// auditor's lock-replication invariant checks exactly this).
func (n *node) nicTestAndSet(m *nicTestSet) *nicTestSetReply {
	n.initLockHome(m.Lock)
	lh := n.lockHomesState[m.Lock]
	for _, set := range lh.vec {
		if set {
			return &nicTestSetReply{Granted: false, VT: nil}
		}
	}
	lh.vec[m.Node] = true
	if n.cl.opt.Mode == ModeFT {
		for s := 1; s < n.cl.lockHomes.Degree(); s++ {
			if sec := n.cl.lockHomes.Replica(m.Lock, s); sec != n.id {
				set := &lockSet{Lock: m.Lock, Node: m.Node}
				n.sendOrDeliver(sec, set, set.wireBytes())
			}
		}
	}
	n.cl.trace(obs.KLockGrant, n.id, -1, int64(m.Lock))
	return &nicTestSetReply{Granted: true, VT: lh.vt.Clone()}
}

// queueAcquire runs GeNIMA's distributed queuing lock: ask the home, which
// either grants (lock at home) or forwards us to the current tail; the
// grant arrives as a direct message from the previous holder.
func (t *Thread) queueAcquire(l int) proto.VectorTime {
	n := t.node
	fut := t.cl.eng.NewFuture()
	n.qlWait[l] = fut
	home := t.cl.lockHomes.Primary(l)
	req := &qlAcquire{Lock: l, Requester: n.id}
	if home == n.id {
		n.applyLockMsg(n.id, req)
		t.charge(CompLock, t.cl.cfg.ProtoOpNs)
	} else {
		t.charge(CompLock, t.cl.cfg.NICPostOverheadNs)
		t0 := t.beginWait()
		n.ep.Post(t.proc, home, req.wireBytes(), req)
		t.endWait(CompLock, t0)
	}
	t0 := t.beginWait()
	v, err := t.proc.Await(fut)
	t.endWait(CompLock, t0)
	if err != nil {
		panic(fmt.Sprintf("svm: queue lock %d: %v", l, err))
	}
	delete(n.qlWait, l)
	return v.(*qlGrant).VT
}

// applyLockMsg is the home-side lock state machine, shared by the message
// handler and the local fast path. Runs in engine or process context and
// never blocks.
func (n *node) applyLockMsg(src int, payload any) {
	switch m := payload.(type) {
	case *lockSet:
		lh := n.lockHomesState[m.Lock]
		if lh != nil {
			lh.vec[m.Node] = true
			n.cl.trace(obs.KLockSet, n.id, -1, int64(m.Lock))
		}
	case *lockClear:
		lh := n.lockHomesState[m.Lock]
		if lh != nil {
			lh.vec[m.Node] = false
			n.cl.trace(obs.KLockClear, n.id, -1, int64(m.Lock))
		}
	case *lockRelease:
		lh := n.lockHomesState[m.Lock]
		if lh != nil {
			lh.vt.Merge(m.VT)
			lh.vec[m.Node] = false
			n.cl.trace(obs.KLockClear, n.id, -1, int64(m.Lock))
		}
	case *qlAcquire:
		lh := n.lockHomesState[m.Lock]
		if lh == nil {
			return
		}
		if lh.tail < 0 {
			// Free at home: grant with the home-stored timestamp.
			lh.tail = m.Requester
			g := &qlGrant{Lock: m.Lock, VT: lh.vt.Clone()}
			n.sendOrDeliver(m.Requester, g, n.msgWire(m.Requester, g))
		} else {
			old := lh.tail
			lh.tail = m.Requester
			f := &qlForward{Lock: m.Lock, Requester: m.Requester}
			n.sendOrDeliver(old, f, f.wireBytes())
		}
	case *qlForward:
		ol := n.lockState(m.Lock)
		if ol.held && ol.holder == nil && ol.localWaiters == 0 && !ol.busy {
			// Cached and idle: grant immediately.
			ol.held = false
			g := &qlGrant{Lock: m.Lock, VT: ol.releaseVT.Clone()}
			n.sendOrDeliver(m.Requester, g, n.msgWire(m.Requester, g))
		} else {
			ol.pendingGrant = m.Requester
		}
	case *qlGrant:
		// A grant with no live waiter is unreachable, so a silent drop
		// here could only mask a protocol bug (the home still records
		// the requester as tail, so the lock would be stranded forever).
		// Proof: a grant targets node X only (a) from the home, when X's
		// qlAcquire found the lock free (tail < 0), or (b) from a
		// previous holder serving the qlForward the home sent for X's
		// qlAcquire — exactly one grant per qlAcquire, since the home
		// either grants or forwards, never both. X posts a qlAcquire
		// only from queueAcquire, which registers qlWait[l] before
		// posting and deletes it only after the future resolves; ol.busy
		// serializes the node's acquires of l, so a second qlAcquire
		// cannot be posted while the first future is outstanding. The
		// queue lock has no FT variant (New rejects the combination),
		// so no failure/migration path can orphan the future either.
		fut, ok := n.qlWait[m.Lock]
		if !ok || fut.Done() {
			panic(fmt.Sprintf("svm: node %d: stray queue-lock grant for lock %d (no pending acquire)", n.id, m.Lock))
		}
		n.cl.trace(obs.KLockGrant, n.id, -1, int64(m.Lock))
		fut.Resolve(m)
	}
}

// sendOrDeliver posts a system message, short-circuiting self-sends.
func (n *node) sendOrDeliver(dst int, payload any, size int) {
	if dst == n.id {
		n.applyLockMsg(n.id, payload)
		return
	}
	n.ep.PostSystem(dst, size, payload)
}

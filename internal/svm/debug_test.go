package svm

import (
	"fmt"
	"os"
	"testing"

	"ftsvm/internal/model"
)

// TestDebugFailDuringCompute is a diagnostic harness: it stops the
// simulation after a virtual-time budget and dumps thread states. Skipped
// unless run explicitly.
func TestDebugFailDuringCompute(t *testing.T) {
	if os.Getenv("SVM_DEBUG") == "" {
		t.Skip("diagnostic harness; set SVM_DEBUG=1 to run")
	}
	cfg := model.Default()
	cfg.Nodes = 4
	cfg.ThreadsPerNode = 1
	trace := []string{}
	opt := Options{
		Config: cfg, Mode: ModeFT, Pages: 8, Locks: 1,
		Body: counterBody(8),
		Tracer: tracerFunc(func(e TraceEvent) {
			if len(trace) < 400 {
				trace = append(trace, fmt.Sprintf("%s n%d t%d seq%d", e.Kind, e.Node, e.Thread, e.Seq))
			}
		}),
	}
	cl, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	cl.Engine().At(3_000_000, func() { cl.KillNode(2) })
	cl.Engine().At(500_000_000, func() { cl.Engine().Stop() })
	_ = cl.Run()
	for _, s := range trace[max(0, len(trace)-60):] {
		t.Log(s)
	}
	t.Logf("rec: pending=%v arrived=%d claimed=%v epoch=%d liveThreads=%d",
		cl.rec.pending, cl.rec.arrived, cl.rec.claimed, cl.rec.epoch, cl.liveThreadCount())
	for _, th := range cl.threads {
		st := "?"
		if s, ok := th.state.(*counterState); ok {
			st = fmt.Sprintf("iter=%d", s.Iter)
		}
		t.Logf("thread %d node %d dead=%v fin=%v blocked=%v inRec=%v barSeq=%d %s",
			th.id, th.node.id, th.dead, th.finished, th.blocked, th.inRecovery, th.barSeq, st)
	}
	for _, n := range cl.nodes {
		t.Logf("node %d dead=%v excl=%v vt=%v barEpoch=%d barSentEpoch=%d relBusy=%v intervals=%d",
			n.id, n.dead, n.excluded, n.vt, n.barEpoch, n.barSentEpoch, n.releaseBusy, len(n.intervals))
	}
}

type tracerFunc func(TraceEvent)

func (f tracerFunc) Event(e TraceEvent) { f(e) }

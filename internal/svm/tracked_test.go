package svm

import (
	"bytes"
	"runtime"
	"testing"

	"ftsvm/internal/model"
)

// The dirty-chunk tracked diffing path (partial twins, ComputeTracked,
// dense-page adaptation) must be a pure host-side optimization: every
// protocol-visible quantity — virtual time, message and byte counts, diff
// contents, final memory — must be identical to a run with FullTwins
// (whole-page twins, full diff scans). These tests run the same
// deterministic workload both ways and compare outcomes, covering the
// sparse lock-grained pattern, false sharing across invalidation (the
// dirtyTwin stash), SMP write-deferral, and failure recovery.

// diffPair runs body under both twin strategies and returns the clusters.
func diffPair(t *testing.T, mode Mode, nodes, tpn, pages, locks int, body func(*Thread), arm func(*Cluster)) (tracked, full *Cluster) {
	t.Helper()
	run := func(fullTwins bool) *Cluster {
		cfg := model.Default()
		cfg.Nodes = nodes
		cfg.ThreadsPerNode = tpn
		cl, err := New(Options{
			Config: cfg, Mode: mode, Pages: pages, Locks: locks,
			Body: body, FullTwins: fullTwins,
		})
		if err != nil {
			t.Fatal(err)
		}
		if arm != nil {
			arm(cl)
		}
		if err := cl.Run(); err != nil {
			t.Fatal(err)
		}
		if !cl.Finished() {
			t.Fatal("threads did not finish")
		}
		return cl
	}
	return run(false), run(true)
}

// assertSameOutcome compares everything the simulated machine can observe.
// TwinBytesCopied is excluded: copying fewer twin bytes on the host is the
// entire point of partial twins.
func assertSameOutcome(t *testing.T, tracked, full *Cluster, pages int) {
	t.Helper()
	if got, want := tracked.Engine().Now(), full.Engine().Now(); got != want {
		t.Errorf("virtual end time: tracked %d, fulltwins %d", got, want)
	}
	st, sf := tracked.ProtoStats(), full.ProtoStats()
	st.TwinBytesCopied, sf.TwinBytesCopied = 0, 0
	if st != sf {
		t.Errorf("protocol stats diverged:\ntracked:   %+v\nfulltwins: %+v", st, sf)
	}
	psz := tracked.cfg.PageSize
	for p := 0; p < pages; p++ {
		if !bytes.Equal(tracked.PeekBytes(p*psz, psz), full.PeekBytes(p*psz, psz)) {
			t.Errorf("page %d contents diverged", p)
		}
	}
}

func TestTrackedMatchesFullTwinsCounter(t *testing.T) {
	for _, mode := range []Mode{ModeBase, ModeFT} {
		t.Run(mode.String(), func(t *testing.T) {
			tracked, full := diffPair(t, mode, 4, 1, 8, 1, counterBody(8), nil)
			assertSameOutcome(t, tracked, full, 8)
			checkCounter(t, tracked, 32)
		})
	}
}

// falseShareState drives a workload mixing a densely rewritten page with
// word-grained false sharing on another: concurrent writers dirty page 0
// at distinct offsets with no lock protecting it, so write notices arrive
// while the page is still dirty and the invalidation stashes the partial
// twin (dirtyTwin/stashMask) for the fetch-merge replay.
type falseShareState struct {
	Iter int
}

func falseShareBody(iters int) func(*Thread) {
	return func(th *Thread) {
		st := &falseShareState{}
		th.Setup(st)
		for st.Iter < iters {
			// Sparse: each thread's private slot on the shared page.
			th.WriteU64(th.ID()*64, uint64(st.Iter+1))
			// Dense: every thread rewrites most of page 1 under the lock,
			// exercising the dense-page full-twin adaptation.
			th.Acquire(0)
			base := th.cl.cfg.PageSize
			for off := 0; off < th.cl.cfg.PageSize; off += 8 {
				th.WriteU64(base+off, uint64(th.ID()<<32)|uint64(off))
			}
			st.Iter++
			th.Release(0)
			th.Barrier()
		}
		th.Barrier()
	}
}

func TestTrackedMatchesFullTwinsFalseSharing(t *testing.T) {
	for _, mode := range []Mode{ModeBase, ModeFT} {
		t.Run(mode.String(), func(t *testing.T) {
			tracked, full := diffPair(t, mode, 4, 1, 8, 1, falseShareBody(4), nil)
			assertSameOutcome(t, tracked, full, 8)
		})
	}
}

// SMP: two threads per node activates per-word writer tracking and the
// mid-critical-section write deferral, both of which read partial twins.
func TestTrackedMatchesFullTwinsSMP(t *testing.T) {
	tracked, full := diffPair(t, ModeFT, 4, 2, 8, 2, counterBody(6), nil)
	assertSameOutcome(t, tracked, full, 8)
	checkCounter(t, tracked, 48)
}

// Failure: recovery rebuilds replicas from pre-images (preImage reads the
// partial twin) and replays stashed diffs; the outcome must not depend on
// the twin strategy.
func TestTrackedMatchesFullTwinsFailure(t *testing.T) {
	arm := func(cl *Cluster) {
		cl.Engine().At(3_000_000, func() { cl.KillNode(2) })
	}
	tracked, full := diffPair(t, ModeFT, 4, 1, 8, 1, counterBody(12), arm)
	assertSameOutcome(t, tracked, full, 8)
}

// TestReleasePathAllocBudget is the allocation-regression gate for the
// steady-state release path. It measures the marginal host allocations per
// additional lock-release iteration (long run minus short run, so cluster
// construction and first-touch costs cancel) and fails if the figure
// regresses past a generous ceiling. The budget has ~3x headroom over the
// current cost (~140); reintroducing a per-event closure or per-message
// allocation multiplies the figure by orders of magnitude.
func TestReleasePathAllocBudget(t *testing.T) {
	allocs := func(iters int) uint64 {
		cfg := model.Default()
		cfg.Nodes = 4
		cl, err := New(Options{Config: cfg, Mode: ModeFT, Pages: 8, Locks: 1, Body: counterBody(iters)})
		if err != nil {
			t.Fatal(err)
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		if err := cl.Run(); err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&after)
		return after.Mallocs - before.Mallocs
	}
	short, long := allocs(4), allocs(24)
	perRelease := (int64(long) - int64(short)) / (20 * 4) // 20 extra iters x 4 threads
	t.Logf("marginal allocations per release: %d", perRelease)
	const budget = 600
	if perRelease > budget {
		t.Fatalf("steady-state release path allocates %d objects per release, budget %d", perRelease, budget)
	}
}

// Release-path benchmarks: sparse (lock-grained, Water-Nsq-like) vs dense
// (whole-page, FFT/LU-like) writers. Run with -fulltwins ablation via
// cmd/svmbench or directly against FullTwins here to see the tracked
// speedup; allocs/op is reported for the allocation gate's context.
func benchRelease(b *testing.B, dense, fullTwins bool) {
	body := func(th *Thread) {
		st := &counterState{}
		th.Setup(st)
		for st.Iter < 8 {
			th.Acquire(0)
			if dense {
				for off := 0; off < th.cl.cfg.PageSize; off += 8 {
					th.WriteU64(off, uint64(st.Iter)<<32|uint64(off))
				}
			} else {
				th.WriteU64(th.ID()*8, uint64(st.Iter+1))
			}
			st.Iter++
			th.Release(0)
		}
		th.Barrier()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := model.Default()
		cfg.Nodes = 4
		cl, err := New(Options{Config: cfg, Mode: ModeFT, Pages: 4, Locks: 1, Body: body, FullTwins: fullTwins})
		if err != nil {
			b.Fatal(err)
		}
		if err := cl.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReleaseSparseTracked(b *testing.B)   { benchRelease(b, false, false) }
func BenchmarkReleaseSparseFullTwins(b *testing.B) { benchRelease(b, false, true) }
func BenchmarkReleaseDenseTracked(b *testing.B)    { benchRelease(b, true, false) }
func BenchmarkReleaseDenseFullTwins(b *testing.B)  { benchRelease(b, true, true) }

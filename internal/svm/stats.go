package svm

// ProtoStats aggregates protocol event counts across the cluster. The
// paper's diff analysis (§5.3.1) reasons about exactly these quantities —
// in particular the fraction of diffed pages that are *home* pages, which
// the base protocol never diffs but the extended protocol ships twice.
type ProtoStats struct {
	// Page movement.
	ReadFaults    int64 // faults entering the read-fault handler
	RemoteFetches int64 // pages fetched from a remote home
	LocalFetches  int64 // FT primary homes copying committed -> working
	WriteFaults   int64 // twin creations (pages entering an interval)
	// TwinBytesCopied counts bytes the simulator actually copied into
	// twins: with dirty-chunk tracking only first-dirtied chunks are
	// snapshotted, with FullTwins every write fault copies a whole page.
	// (Host-side work; the modeled twin-copy charge is unchanged.)
	TwinBytesCopied int64

	// Diff propagation.
	PagesDiffed     int64 // page-diffs captured at commits
	HomePagesDiffed int64 // of those, pages whose primary home is the committer
	DiffMsgs        int64 // diff messages posted (batches count once)
	DiffBytes       int64 // wire bytes of diff payloads

	// Consistency actions.
	Invalidations int64
	Intervals     int64 // committed intervals
	DeferredWords int64 // sibling mid-CS words deferred at commits (SMP)

	// Synchronization.
	RemoteAcquires    int64 // lock acquisitions that went to a home
	IntraNodeHandoffs int64 // lock exchanges satisfied inside one SMP
	BarrierEpisodes   int64 // completed global barrier episodes

	// Failure handling.
	Recoveries      int64
	MigratedThreads int64
}

// add accumulates o into s, field by field.
func (s *ProtoStats) add(o *ProtoStats) {
	s.ReadFaults += o.ReadFaults
	s.RemoteFetches += o.RemoteFetches
	s.LocalFetches += o.LocalFetches
	s.WriteFaults += o.WriteFaults
	s.TwinBytesCopied += o.TwinBytesCopied
	s.PagesDiffed += o.PagesDiffed
	s.HomePagesDiffed += o.HomePagesDiffed
	s.DiffMsgs += o.DiffMsgs
	s.DiffBytes += o.DiffBytes
	s.Invalidations += o.Invalidations
	s.Intervals += o.Intervals
	s.DeferredWords += o.DeferredWords
	s.RemoteAcquires += o.RemoteAcquires
	s.IntraNodeHandoffs += o.IntraNodeHandoffs
	s.BarrierEpisodes += o.BarrierEpisodes
	s.Recoveries += o.Recoveries
	s.MigratedThreads += o.MigratedThreads
}

// ProtoStats returns a snapshot of the cluster's protocol counters,
// summed over the per-node shards. Every increment happens on the node
// where the counted event occurred (lane-local under the parallel
// engine); sums commute, so the aggregate is exact and deterministic.
func (cl *Cluster) ProtoStats() ProtoStats {
	var sum ProtoStats
	for _, n := range cl.nodes {
		sum.add(&n.stats)
	}
	return sum
}

// HomeDiffFraction returns the fraction of diffed pages that were the
// committer's own primary-home pages (the paper reports >99% for
// Water-SpatialFL, ~25% for Water-Nsquared, ~12% for RadixLocal).
func (s ProtoStats) HomeDiffFraction() float64 {
	if s.PagesDiffed == 0 {
		return 0
	}
	return float64(s.HomePagesDiffed) / float64(s.PagesDiffed)
}

package svm

import (
	"ftsvm/internal/model"
	"ftsvm/internal/obs"
)

// Availability-phase hooks: the cluster stamps the virtual times of its
// failure-lifecycle milestones at the same trace points the flight
// recorder observes (kill, recovery.start, recovery.done), plus the
// probe detector's suspicion-streak start from vmmc. The open-loop
// serving layer (internal/serve) turns these into the per-phase
// availability timeline: healthy → undetected failure → probe
// detection → recovery → re-warm.

// phaseTrace is the raw milestone record, written by Cluster.trace.
type phaseTrace struct {
	killNs    int64
	victim    int
	detectNs  int64 // recovery.start: the failure was reported cluster-wide
	recoverNs int64 // recovery.done: the recovery actions completed
}

// note records the first occurrence of each milestone. It runs on the
// trace hot path: three equality tests for every non-milestone event.
func (pc *phaseTrace) note(kind obs.Kind, nodeID int, now int64) {
	switch kind {
	case obs.KKill:
		if pc.killNs == 0 {
			pc.killNs = now
			pc.victim = nodeID
		}
	case obs.KRecoveryStart:
		if pc.detectNs == 0 {
			pc.detectNs = now
		}
	case obs.KRecoveryDone:
		if pc.recoverNs == 0 {
			pc.recoverNs = now
		}
	}
}

// PhaseTimes are the virtual times of the failure-lifecycle milestones
// of a run's first (and under the single-failure model, only) failure.
// A zero field means the milestone never happened.
type PhaseTimes struct {
	// KillNs is when the node fail-stopped (KillNode).
	KillNs int64
	// Victim is the failed node id (meaningful when KillNs > 0).
	Victim int
	// SuspectNs is when the probe detector's confirming miss streak
	// against the victim began — the earliest evidence of the failure.
	// Zero in oracle mode (the oracle has no suspicion window) and when
	// the failure was confirmed through a send error instead of probes.
	SuspectNs int64
	// DetectNs is when the failure was reported and the recovery barrier
	// opened (recovery.start).
	DetectNs int64
	// RecoverNs is when the recovery actions completed (recovery.done).
	RecoverNs int64
}

// PhaseTimes returns the recorded failure-lifecycle milestones. Call
// after Run; all times are virtual.
func (cl *Cluster) PhaseTimes() PhaseTimes {
	pt := PhaseTimes{
		KillNs:    cl.phase.killNs,
		Victim:    cl.phase.victim,
		DetectNs:  cl.phase.detectNs,
		RecoverNs: cl.phase.recoverNs,
	}
	if pt.KillNs > 0 && cl.cfg.Detection == model.DetectProbe {
		pt.SuspectNs = cl.net.SuspicionNs(pt.Victim)
	}
	return pt
}

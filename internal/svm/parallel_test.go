package svm

import (
	"fmt"
	"testing"

	"ftsvm/internal/model"
)

// TestParallelPoolLaneSafety is the pooled-object lane audit, meant to
// run under -race: a write-heavy multi-writer workload on the parallel
// engine drives every pooled path concurrently across lanes — DiffBuf
// through the release diff scans (mem's sync.Pool is goroutine-safe and
// buffers never outlive the release that got them), wireEvt and
// Delivery through vmmc's per-endpoint free lists (strictly lane-local:
// got and put only on the owning endpoint's lane; a reply's outcome
// event is created on the destination lane and handed to the source
// lane only through the commit-ordered op release). The workload's
// exactness checks make sure no pooled buffer was recycled while a
// concurrent lane still referenced it.
func TestParallelPoolLaneSafety(t *testing.T) {
	const pages, iters, nodes = 4, 8, 4
	for _, mode := range []Mode{ModeBase, ModeFT} {
		for _, workers := range []int{2, 4} {
			t.Run(fmt.Sprintf("%s/w%d", mode, workers), func(t *testing.T) {
				cfg := model.Default()
				cfg.Nodes = nodes
				cl, err := New(Options{
					Config: cfg, Mode: mode, Pages: pages, Locks: 1,
					Body:    multiWriterBody(pages, iters, cfg.PageSize),
					Workers: workers,
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := cl.Run(); err != nil {
					t.Fatal(err)
				}
				if !cl.Finished() {
					t.Fatal("threads did not finish")
				}
				if r := cl.SerialFallbackReason(); r != "" {
					t.Fatalf("fell back to serial (%s) — pools not exercised across lanes", r)
				}
				for p := 0; p < pages; p++ {
					if got := cl.PeekU64(p * cfg.PageSize); got != nodes*iters {
						t.Fatalf("page %d shared word = %d, want %d", p, got, nodes*iters)
					}
					for id := 0; id < nodes; id++ {
						slot := p*cfg.PageSize + 64 + id*8
						if got := cl.PeekU64(slot); got != iters {
							t.Fatalf("page %d slot for t%d = %d, want %d", p, id, got, iters)
						}
					}
				}
				if mode == ModeFT {
					verifyReplicaInvariants(t, cl)
				}
			})
		}
	}
}

// TestParallelMatchesSerialCluster pins cluster-level bit-identity on
// the lock-heavy counter workload: virtual execution time, protocol
// counters, and the metrics snapshot must not depend on the worker
// count. (internal/harness's FuzzParallelDeterminism covers the full
// app suite; this is the fast in-package regression.)
func TestParallelMatchesSerialCluster(t *testing.T) {
	run := func(workers int) (int64, string, string) {
		cfg := model.Default()
		cfg.Nodes = 4
		cl, err := New(Options{
			Config: cfg, Mode: ModeFT, Pages: 8, Locks: 1,
			Body: counterBody(10), Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Run(); err != nil {
			t.Fatal(err)
		}
		checkCounter(t, cl, 4*10)
		var metrics string
		for _, c := range cl.Metrics().Sorted() {
			metrics += fmt.Sprintf("%s=%d\n", c.Name, c.Value)
		}
		return cl.ExecTime(), fmt.Sprintf("%+v", cl.ProtoStats()), metrics
	}
	execS, protoS, metS := run(1)
	for _, workers := range []int{2, 4} {
		execP, protoP, metP := run(workers)
		if execP != execS {
			t.Errorf("workers=%d: ExecTime %d != serial %d", workers, execP, execS)
		}
		if protoP != protoS {
			t.Errorf("workers=%d: proto stats diverge:\n%s\n%s", workers, protoP, protoS)
		}
		if metP != metS {
			t.Errorf("workers=%d: metrics diverge", workers)
		}
	}
}

// TestSerialFallbackReasons pins the serial-only feature matrix: every
// feature that observes or mutates global event order must refuse the
// parallel engine with a stated reason, and a plain run must not.
func TestSerialFallbackReasons(t *testing.T) {
	build := func(mut func(*Options), cfgMut func(*model.Config)) *Cluster {
		cfg := model.Default()
		cfg.Nodes = 2
		if cfgMut != nil {
			cfgMut(&cfg)
		}
		opt := Options{
			Config: cfg, Mode: ModeFT, Pages: 2, Locks: 1,
			Body: counterBody(1), Workers: 2,
		}
		if mut != nil {
			mut(&opt)
		}
		cl, err := New(opt)
		if err != nil {
			t.Fatal(err)
		}
		return cl
	}
	cl := build(nil, nil)
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if r := cl.SerialFallbackReason(); r != "" {
		t.Fatalf("plain run fell back: %s", r)
	}
	cases := []struct {
		name string
		mut  func(*Options)
		cfg  func(*model.Config)
	}{
		{"tracer", func(o *Options) { o.Tracer = &killTracer{kind: "none", node: -1, seq: -1} }, nil},
		{"probe detection", nil, func(c *model.Config) { c.Detection = model.DetectProbe }},
		{"chaos", nil, func(c *model.Config) {
			c.Chaos.Enabled = true
			c.Chaos.JitterNs = 500
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cl := build(tc.mut, tc.cfg)
			if tc.name == "tracer" {
				cl.opt.Tracer.(*killTracer).cl = cl
			}
			if err := cl.Run(); err != nil {
				t.Fatal(err)
			}
			if r := cl.SerialFallbackReason(); r == "" {
				t.Fatalf("%s: expected serial fallback, got parallel run", tc.name)
			}
			if got := cl.EngineWorkers(); got != 1 {
				t.Fatalf("%s: EngineWorkers = %d after fallback, want 1", tc.name, got)
			}
		})
	}
}

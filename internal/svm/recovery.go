package svm

import (
	"errors"
	"fmt"
	"sort"

	"ftsvm/internal/obs"
	"ftsvm/internal/proto"
	"ftsvm/internal/sim"
	"ftsvm/internal/vmmc"
)

// recoveryState coordinates the global recovery phase of §4.5. Recovery is
// a cluster-wide barrier: every live thread must reach it (the paper's
// precondition that no releases are pending when recovery starts), then
// one thread — the coordinator — executes the recovery actions.
type recoveryState struct {
	pending bool
	deads   []int // report-order queue of this episode's unrecovered failures
	epoch   int
	arrived int
	gate    sim.Gate
	claimed bool    // a coordinator has been chosen for this episode
	coord   *Thread // the chosen coordinator, nil before the claim
}

// KillNode fail-stops a node at the current virtual time: its network
// interface dies (queued messages lost, in-flight ones deliver) and its
// threads stop at their next scheduling point, exactly like a crashed
// machine whose packets on the wire still arrive.
func (cl *Cluster) KillNode(id int) {
	if cl.eng.IsParallel() {
		// Failure injection reaches across nodes (kill the victim's
		// endpoint, its threads, every future reply) at one global
		// instant — an inherently serial operation. Injection harnesses
		// must run with Workers <= 1; they all attach a tracer or
		// recorder anyway, which already forces the serial fallback.
		panic("svm: KillNode requires the serial engine (Workers <= 1)")
	}
	cl.everKilled = true
	n := cl.nodes[id]
	if n.dead {
		return
	}
	cl.net.Kill(id)
	n.dead = true
	for _, t := range n.threads {
		if !t.finished {
			t.dead = true
			t.proc.Kill()
		}
	}
	cl.trace(obs.KKill, id, -1, 0)
}

// reportFailure is called when any thread detects that a node died (a
// communication error or a liveness probe after a heartbeat timeout). The
// first report opens a recovery episode; subsequent reports of the same
// node are no-ops. With k replicas, up to k-1 overlapping failures are
// tolerated inside one episode (each item keeps a surviving copy); the
// k-th is a simultaneous failure the protocol does not tolerate — the
// generalization of §4.1's rule, which at the paper's k=2 refuses the
// second.
func (cl *Cluster) reportFailure(id int) {
	n := cl.nodes[id]
	if n.excluded {
		return
	}
	rec := &cl.rec
	if rec.pending {
		for _, d := range rec.deads {
			if d == id {
				return
			}
		}
		if len(rec.deads)+1 >= cl.Degree() || cl.LiveNodes() < cl.Degree() {
			panic(fmt.Sprintf("svm: simultaneous failures of nodes %v and %d exceed replication degree %d", rec.deads, id, cl.Degree()))
		}
		if !n.dead {
			return // false alarm
		}
		rec.deads = append(rec.deads, id)
		cl.trace(obs.KRecoveryStart, id, -1, int64(rec.epoch))
		cl.wakeForRecovery()
		return
	}
	if !n.dead {
		return // false alarm
	}
	rec.pending = true
	rec.deads = append(rec.deads[:0], id)
	rec.arrived = 0
	rec.claimed = false
	cl.trace(obs.KRecoveryStart, id, -1, int64(rec.epoch))
	cl.wakeForRecovery()
}

// wakeForRecovery broadcasts every gate a thread might be parked on so all
// threads promptly observe the pending recovery. (In the real system this
// is the failure notification broadcast.)
func (cl *Cluster) wakeForRecovery() {
	for _, n := range cl.nodes {
		if n.dead {
			continue
		}
		n.barGate.Broadcast()
		n.releaseGate.Broadcast()
		n.idleGate.Broadcast()
		for _, ol := range n.owned {
			ol.gate.Broadcast()
		}
		for _, pg := range n.pt.pages {
			if pg.locked {
				pg.lockGate.Broadcast()
			}
			pg.verGate.Broadcast()
		}
	}
}

// liveThreadCount counts threads that must reach the recovery barrier.
func (cl *Cluster) liveThreadCount() int {
	c := 0
	for _, t := range cl.threads {
		if !t.dead && !t.finished {
			c++
		}
	}
	return c
}

// joinRecovery is the error-path entry to recovery: a communication
// failure was observed but the failed node may not have been reported yet,
// so probe liveness first, then enter the recovery barrier.
func (t *Thread) joinRecovery() {
	t.probeCluster()
	t.participateRecovery()
}

// joinRecoveryErr enters recovery from a communication error that names
// the failed peers. A fence joins one error per dead destination
// (vmmc.DeadNodes recovers the set): every one of them is reported, not
// just the first — with two distinct dead peers in one fence the second
// report is the simultaneous failure the single-failure model must
// refuse (§4.1), and inspecting only the first error would mask it until
// a later probe sweep happened to find the other. The confirmation is
// also fed to the probe-mode membership state, saving the probe rounds a
// full liveness sweep would spend re-discovering what the fence already
// proved. Errors naming no node (ErrAborted, a recovery-yield) fall back
// to the probing sweep.
func (t *Thread) joinRecoveryErr(err error) {
	dead := vmmc.DeadNodes(err)
	if len(dead) == 0 {
		t.probeCluster()
	} else {
		for _, id := range dead {
			t.cl.net.ConfirmDead(id)
			t.cl.reportFailure(id)
		}
	}
	t.participateRecovery()
}

// participateRecovery is the recovery barrier. Every live thread lands
// here (from safe points, aborted waits, or communication errors); the
// last arriver becomes the coordinator and performs the recovery actions
// of §4.5, after which everyone resumes.
func (t *Thread) participateRecovery() {
	cl := t.cl
	rec := &cl.rec
	if !rec.pending || t.dead || t.inRecovery {
		return
	}
	t.inRecovery = true
	defer func() { t.inRecovery = false }()
	epoch := rec.epoch
	rec.arrived++
	for rec.pending && rec.epoch == epoch {
		if rec.claimed && rec.coord != nil && rec.coord.dead {
			// The coordinator itself died mid-recovery (only reachable
			// with k > 2: at degree 2 a second overlapping failure is
			// refused). Queue its node into the episode and release the
			// claim so another arriver re-drives the actions from the
			// top — they are idempotent over whatever the dead
			// coordinator completed.
			coordNode := rec.coord.node.id
			rec.coord = nil
			rec.claimed = false
			cl.reportFailure(coordNode)
		}
		if rec.arrived >= cl.liveThreadCount() && !rec.claimed {
			rec.claimed = true
			rec.coord = t
			t.runRecovery()
			return
		}
		t0 := t.beginWait()
		rec.gate.WaitTimeout(t.proc, 4*cl.cfg.HeartbeatTimeoutNs)
		t.endWait(CompProtocol, t0)
	}
}

// noteThreadExit re-evaluates the recovery barrier when a thread finishes
// its body while a recovery is pending (it will never arrive). In a run
// that never killed a node the cross-node wakeups are spurious — barrier
// progress on a foreign node depends only on that node's own arrival
// counts — so healthy runs broadcast only the exiting thread's own node
// gate, keeping exits lane-local for the parallel engine. Failure runs
// (always serial) keep the full broadcast: a migrated thread replaying a
// shortened barrier sequence exits on its backup node, and the recovery
// barrier must re-evaluate everywhere.
func (cl *Cluster) noteThreadExit(n *node) {
	if cl.rec.pending {
		cl.rec.gate.Broadcast()
	}
	if !cl.everKilled {
		n.barGate.Broadcast()
		return
	}
	for _, m := range cl.nodes {
		m.barGate.Broadcast()
	}
	// A finished thread may have been the last arrival a pending episode
	// was waiting on (a migrated thread's replayed post-loop barrier call
	// can park at an episode beyond everyone else's final one, released
	// only once the rest of the cluster drains). Ascending order: releasing
	// an episode advances masterDone, which makes later pending ones
	// eligible and stale-drops nothing below it.
	master := cl.nodes[cl.masterNode()]
	if len(master.masterArrivals) > 0 {
		epochs := make([]int, 0, len(master.masterArrivals))
		for e := range master.masterArrivals {
			epochs = append(epochs, e)
		}
		sort.Ints(epochs)
		for _, e := range epochs {
			master.masterTryRelease(e)
		}
	}
}

// runRecovery executes the recovery actions on the coordinator thread:
//
//  1. retrieve the dead node's saved timestamp, update lists, and diff
//     stash from its backup node;
//  2. reconcile every page's two home replicas, rolling the dead node's
//     interrupted release forward or backward according to the saved
//     timestamp (§4.5.2);
//  3. reassign homes for all pages and locks the dead node held, and
//     rebuild the missing replicas from the surviving copies (§4.5.1);
//  4. rebuild lock state at the new homes from the live holders, clearing
//     the dead node's lock-vector entries;
//  5. globally synchronize memory: distribute the update lists (including
//     the dead node's replicated ones) so every node invalidates what it
//     has not seen;
//  6. resume the dead node's threads on the backup node from their last
//     checkpoints (§4.5.3).
func (t *Thread) runRecovery() {
	cl := t.cl
	rec := &cl.rec
	cfg := cl.cfg

	if cl.Degree() > 2 {
		// Membership agreement round (§4.5 step 1): a failure that
		// predates this episode but was never detected — the node went
		// silent without any survivor communicating with it — must join
		// the episode now. Rebuilding replicas while an unreported
		// failure's unsaved tentative intervals still sit in surviving
		// copies would launder them into committed state, where no later
		// recovery can cancel them (the laundered entry is
		// indistinguishable from a committed one). At degree 2 an
		// overlapping second failure is refused outright, so the seed
		// path needs no round.
		t.probeCluster()
	}
	// Process every queued death. The fetch loop re-reads len(rec.deads)
	// each pass: at k > 2 a further failure detected while the
	// coordinator's own fetch traffic fences (a backup dying
	// mid-recovery) is appended by reportFailure and fetched too. The
	// reconcile runs ONCE over the whole death set, all roll-backs
	// before all roll-forwards, and strictly before any rehoming:
	// rebuilding a replica from a copy that still awaits another dead
	// node's roll decision would freeze the pre-roll state into the
	// fresh copy. A single-dead episode runs the seed's sequence
	// verbatim.
	var saveds []*savedState
	for i := 0; i < len(rec.deads); i++ {
		saveds = append(saveds, t.fetchSavedState(rec.deads[i]))
	}
	deads := append([]int(nil), rec.deads...)
	tsOf := make([]int32, len(deads))
	for i, dead := range deads {
		tsOf[i] = saveds[i].ts[dead]
	}
	t.reconcilePages(deads, saveds)
	for i, dead := range deads {
		t.rehomeAndReplicate(dead, deads, tsOf)
		t.rebuildLocks(dead)
		t.globalSync(dead, saveds[i])
		t.migrateThreads(dead, saveds[i])
	}

	cl.resetBarrierPlumbing()

	for _, dead := range deads {
		cl.nodes[dead].excluded = true
		t.node.stats.Recoveries++
		t.charge(CompProtocol, int64(len(cl.nodes))*cfg.ProtoOpNs)
	}

	// Failures reported after the death set was snapshotted (a node dying
	// while the actions above ran) were queued into rec.deads too late to
	// be processed this episode. Carry them across the reset and re-report
	// them so they open the next episode immediately — wiping them with
	// the queue would lose the death until some later communication error
	// happened to rediscover it (or never, if no one talks to the corpse).
	leftover := append([]int(nil), rec.deads[len(deads):]...)
	done := deads
	rec.pending = false
	rec.epoch++
	rec.arrived = 0
	rec.claimed = false
	rec.coord = nil
	rec.deads = rec.deads[:0]
	rec.gate.Broadcast()
	// Wake everything once more: fetch waits, barrier waits, and lock
	// spins re-evaluate against the new configuration.
	cl.wakeForRecovery()
	for _, n := range cl.nodes {
		if n.dead {
			continue
		}
		for _, pg := range n.pt.pages {
			if len(pg.waiters) > 0 && pg.committed != nil {
				pg.serveWaiters(pg.commitVer, pg.committed, cfg.PageSize+64)
			}
		}
	}
	for _, dead := range done {
		cl.trace(obs.KRecoveryDone, dead, t.id, int64(rec.epoch))
	}
	for _, id := range leftover {
		cl.reportFailure(id)
	}
}

// resetBarrierPlumbing rebuilds the cluster's barrier state against the
// post-recovery membership: in-flight arrivals may be stale (dead master
// or dead member), so everything is resent against the new membership.
func (cl *Cluster) resetBarrierPlumbing() {
	for _, n := range cl.nodes {
		if n.dead {
			continue
		}
		n.masterArrivals = make(map[int]map[int]*barArrive)
		n.barSentEpoch = 0
	}
	// Nodes stuck one episode behind a completed one roll forward: the
	// global sync already delivered the consistency information.
	maxDone := 0
	for _, n := range cl.nodes {
		if !n.dead && n.barEpoch > maxDone {
			maxDone = n.barEpoch
		}
	}
	for _, n := range cl.nodes {
		if !n.dead && n.barEpoch < maxDone && n.barCount[int64(n.barEpoch+1)] > 0 {
			n.barEpoch = maxDone
		}
	}
	for _, n := range cl.nodes {
		if n.dead {
			continue
		}
		// Drop arrival counts for episodes at or below the roll-forward
		// horizon. The old code deleted only barCount[maxDone] on the node
		// being rolled forward; every skipped intermediate epoch leaked a
		// map entry forever — invisible at the paper's 8 nodes, unbounded
		// at 64+ where recoveries skip more episodes.
		for e := range n.barCount {
			if e <= int64(maxDone) {
				delete(n.barCount, e)
			}
		}
		// A release the dead master broadcast but no thread here applied yet
		// is stale: applying it after the reset would advance this node past
		// an episode the new master still expects an arrival for (barSentEpoch
		// was just cleared), deadlocking the barrier — the master waits on an
		// arrival this node will never resend. Clear it; the episode is
		// re-merged from the resent arrivals. Releases at or below maxDone
		// completed cluster-wide and stay consumable.
		if rel := n.barRelease; rel != nil && int64(rel.Epoch) > int64(maxDone) {
			n.barRelease = nil
		}
		// Under tree fan-out the re-broadcast of an episode this node already
		// relayed once must be relayed again on the post-recovery tree, or
		// its new subtree never hears the release.
		if n.barForwarded > int64(maxDone) {
			n.barForwarded = int64(maxDone)
		}
	}
}

// savedState is the dead node's replicated protocol state.
type savedState struct {
	ts    proto.VectorTime
	lists []proto.UpdateList
}

// fetchSavedState retrieves the dead node's saved timestamp and lists from
// its backup. With k > 2 replicas the deposit was replicated to the dead
// node's first k-1 live ring successors, so a backup dying mid-fetch is
// tolerated: the new failure is reported (joining the open episode) and
// the fetch walks on to the next surviving deposit holder. At k = 2 the
// single deposit holder dying is unrecoverable, exactly the seed rule.
func (t *Thread) fetchSavedState(dead int) *savedState {
	cl := t.cl
	for {
		backup := cl.backupOf(dead)
		bn := cl.nodes[backup]
		out := &savedState{ts: proto.NewVector(cl.cfg.Nodes)}
		if backup == t.node.id {
			if ts, ok := bn.savedTS[dead]; ok {
				out.ts = ts.Clone()
				out.lists = bn.savedLists[dead]
			}
			t.charge(CompProtocol, cl.cfg.ProtoOpNs)
			return out
		}
		req := &savedReq{Dead: dead}
		t0 := t.beginWait()
		v, err := t.node.ep.Request(t.proc, backup, req.wireBytes(), req)
		t.endWait(CompProtocol, t0)
		if err != nil {
			if errors.Is(err, vmmc.ErrNodeDead) {
				if cl.Degree() > 2 {
					for _, id := range vmmc.DeadNodes(err) {
						cl.net.ConfirmDead(id)
						cl.reportFailure(id)
					}
					continue
				}
				panic("svm: backup node died during recovery (simultaneous failure)")
			}
			panic(fmt.Sprintf("svm: fetch saved state: %v", err))
		}
		rep := v.(*savedReply)
		if rep.Have {
			out.ts = rep.TS.Clone()
			out.lists = rep.Lists
		}
		return out
	}
}

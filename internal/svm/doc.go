// Package svm implements the shared virtual memory runtime this
// repository reproduces: GeNIMA, a home-based lazy-release-consistency
// (HLRC) protocol for SMP clusters (ModeBase), and the paper's
// fault-tolerant extension (ModeFT) that dynamically replicates all
// application shared data and protocol state so single fail-stop node
// failures are survived without stable storage.
//
// The runtime executes on the deterministic discrete-event cluster in
// internal/sim + internal/vmmc: protocol actions move real bytes (pages,
// twins, diffs, checkpoints) while every action advances virtual time
// according to internal/model, and each thread's time is attributed to
// the paper's execution-time breakdown components.
//
// # Protocol walkthrough
//
// The runtime implements two shared-virtual-memory protocols over the
// simulated cluster, selected by Options.Mode.
//
// # ModeBase: GeNIMA (home-based lazy release consistency)
//
// Every shared page has one home node whose working copy is
// authoritative. Application threads read and write through the Thread
// API; the software page table raises faults:
//
//   - read fault (page invalid): fetch the page from its home, waiting
//     until the home's copy carries every update the faulting node was
//     notified of (per-page version vectors), plus the node's own last
//     committed interval for the page — its own diffs propagate
//     asynchronously and must not be lost by a re-fetch;
//   - write fault (page read-only): snapshot the page into a twin and
//     record it in the node's current interval.
//
// At a lock release the node ends its interval: it captures word-level
// diffs of every dirty page against the twins, appends the update list,
// hands the lock over, and eagerly posts the diffs to the pages' homes
// (no diffs for its own home pages — the working copy already has the
// updates). At an acquire, the incoming lock timestamp tells the acquirer
// which intervals it has not performed; it fetches those update lists
// from their origins and invalidates the named pages. Barriers do the
// same all-to-all through a master node. Two multiple-writer subtleties:
// concurrent writers of one page merge through disjoint word diffs, and a
// page invalidated while locally dirty stashes its twin/working pair so
// the next access can merge the local modifications over the fetched
// copy.
//
// # ModeFT: the paper's fault-tolerant extension
//
// Each page gets a second home: the primary home keeps a committed copy
// (what fetches read), the secondary a tentative copy. A release becomes
// the pipeline described in the README: commit + page-lock, sibling
// checkpoints (point A; siblings inside a critical section are skipped
// and their words deferred to their own release, keeping SMP replay
// exactly-once), phase-1 diffs (with undo pre-images) to the
// tentative copies, one atomic backup deposit (vector time + update list
// + self-secondary diff stash + the releaser's point-B checkpoint), lock
// handover, phase-2 diffs to the committed copies, unlock. If a recovery
// episode completes mid-pipeline, the releaser re-runs both phases
// against the post-recovery homes. The invariant
// bought by this ordering: at every instant, for every interval, either
// no copy outside the releaser has it (roll back, undoing tentative
// partials with the pre-images) or the tentative copies and the backup
// record have all of it (roll forward). Locks use the stateless
// centralized polling algorithm with the vector and release timestamp
// replicated at two homes (Options.LockAlgo selects the queue-lock
// baseline or the NIC test-and-set variant instead).
//
// # Failure handling
//
// Failures are fail-stop (Cluster.KillNode): the node's NIC dies with its
// queued messages; packets already on the wire still land. Detection is
// by communication error or by liveness probes after heartbeat timeouts
// in every long wait (barrier, lock spin, fetch). The first detection
// opens a recovery episode; every live thread lands in the recovery
// barrier (all in-flight releases by live nodes first run to completion
// or retry after re-homing), and the last arriver coordinates §4.5:
// fetch the dead node's backup record; reconcile every page's replicas
// (roll its interrupted release forward or backward); re-home pages and
// locks with the survivors and rebuild the missing replicas; reconstruct
// lock state from the live holders; globally synchronize write notices
// (including the dead node's replicated lists); and respawn the dead
// node's threads on its backup node from their checkpoints. Barrier
// bookkeeping is rebuilt from scratch against the new membership.
//
// # Simulation contract
//
// Protocol code runs in process context (thread goroutines, one at a
// time, deterministic); message handlers run in engine context and never
// block — replies that must wait (version-pending fetches) are parked on
// the page and served when the missing diff arrives. Cost accounting
// accumulates into per-thread Breakdown buckets; CPU charges batch into a
// time debt flushed at scheduling points, so one shared-memory access
// does not cost one simulator event. Three rules keep the cooperative
// model sound, learned the hard way (regression-tested):
//
//  1. mutate-then-charge: a page validated by writable()/readable() must
//     be mutated before any cost is charged, because charging may yield
//     and a sibling's commit can downgrade the page during the yield;
//  2. check-act atomicity: writeFault's twin clone and state transition
//     happen with no yield after the state check, or a concurrent fault
//     re-clones the twin over a sibling's writes;
//  3. capture-before-park: helpers that block on another thread's future
//     must capture it before the flush inside beginWait yields.
package svm

package svm

import (
	"errors"
	"fmt"

	"ftsvm/internal/mem"
	"ftsvm/internal/obs"
	"ftsvm/internal/proto"
	"ftsvm/internal/vmmc"
)

// capturedDiff is one page's modifications captured at interval commit.
// The extended protocol keeps captured diffs locally between the two
// propagation phases so they are not recomputed (§5.2, Diffs).
type capturedDiff struct {
	pid  int
	diff *mem.Diff
	// undo is the pre-image of the diffed words, captured for pages whose
	// primary home is the releasing node (see diffMsg.Undo).
	undo *mem.Diff
}

// commitInterval ends the node's current time interval: it atomically
// captures diffs for every page any local thread updated, transitions the
// pages back to read-only (so subsequent writes open the next interval),
// locks the pages in the extended protocol, appends the update list, and
// advances the node's own vector entry. Returns 0 and nil if no updates
// were made.
func (t *Thread) commitInterval() (int32, []capturedDiff) {
	n := t.node
	cfg := t.cl.cfg
	ft := t.cl.opt.Mode == ModeFT

	maskChunks := (cfg.PageSize + mem.ChunkBytes - 1) >> mem.ChunkShift
	var caps []capturedDiff
	var pages []int
	var retained []int     // pages with deferred sibling words: stay dirty
	var logged []*mem.Diff // every committed diff, for the commit sink
	diffBytes := 0
	n.commitSeq++
	for _, pid := range n.dirty {
		pg := n.pt.pages[pid]
		if pg.seenCommit == n.commitSeq {
			continue // duplicate dirty-list entry (fetch-merge re-listing)
		}
		pg.seenCommit = n.commitSeq
		var twin, cur []byte
		var mask []uint64
		stash := false
		switch {
		case pg.dirtyWorking != nil:
			// Invalidated while dirty and not yet refetched: diff the
			// stashed copies; the stash is then propagated and dropped
			// (or retained, if sibling words are deferred).
			twin, cur, mask, stash = pg.dirtyTwin, pg.dirtyWorking, pg.stashMask, true
		case pg.twin != nil:
			// Writable, or a base-mode home page marked stale while dirty
			// (its state is pInvalid but working and twin stayed live).
			twin, cur, mask = pg.twin, pg.working, pg.dirtyMask
		default:
			continue // already handled (racing commit)
		}
		// Escaping storage on purpose: the captured diff may be shipped,
		// stashed at the backup, and retained across recovery epochs, so it
		// cannot come from a pooled DiffBuf. The scan is restricted to the
		// chunks the write path recorded as dirty (identical output; a nil
		// mask — FullTwins — falls back to the full scan).
		d := &mem.Diff{Page: pid, Runs: mem.ComputeTracked(twin, cur, cfg.WordSize, mask)}
		if mask != nil {
			// Re-learn the page's write density for the next interval's
			// twin strategy (see page.denseHint). The crossover sits low:
			// one page-sized copy plus a full scan beats per-write probes
			// and scattered chunk copies well before half the chunks are
			// dirty, so ≥1/4 dirty reads as dense.
			pg.denseHint = mem.MaskCount(mask)*4 >= maskChunks
		}
		// SMP replay exactness: words last written by a sibling that is
		// inside a critical section right now are NOT committed with this
		// interval — they stay twinned and commit with that sibling's own
		// release. Otherwise a roll-forward would apply the sibling's
		// partial critical section and its replayed thread (checkpointed
		// mid-CS at point A as a state struct, not a stack) would apply it
		// again. Single-thread-per-node runs never defer.
		deferred := t.splitDeferred(pg, d)
		diffBytes += cfg.PageSize // modeled cost: diff creation scans the whole page
		// Buffers dropped here are recycled at the end of the iteration:
		// the twin is still read below by preImage.
		var freeCur, freeTwin []byte
		if deferred {
			retained = append(retained, pid)
		} else {
			if stash {
				freeCur, freeTwin = pg.dirtyWorking, pg.dirtyTwin
				pg.dirtyWorking, pg.dirtyTwin, pg.stashMask = nil, nil, nil
			} else {
				freeTwin = pg.twin
				pg.twin, pg.dirtyMask = nil, nil
				pg.maskFull = false
				if pg.state == pWritable {
					pg.state = pReadOnly
				}
			}
			if pg.writers != nil {
				clearWriters(pg.writers, mask, cfg.WordSize, cfg.PageSize)
			}
			t.node.putMaskBuf(mask)
		}
		if d.Empty() {
			t.node.putPageBuf(freeCur)
			t.node.putPageBuf(freeTwin)
			continue
		}
		t.node.stats.PagesDiffed++
		if t.cl.pageHomes.Primary(pid) == n.id {
			t.node.stats.HomePagesDiffed++
		}
		pages = append(pages, pid)
		if t.cl.commitSink != nil {
			logged = append(logged, d)
		}
		if ft || t.cl.pageHomes.Primary(pid) != n.id {
			cd := capturedDiff{pid: pid, diff: d}
			if ft {
				// Every phase-1 diff carries its pre-image: recovery must
				// be able to undo exactly this node's tentative update
				// (a whole-page restore from the committed copy would
				// collaterally wipe other releasers' in-flight phase-1
				// data, and for pages primary-homed here the committed
				// copy dies with this node anyway).
				cd.undo = preImage(d, twin)
			}
			caps = append(caps, cd)
		}
		if deferred {
			// Fold the committed words into the retained twin (after the
			// pre-image was taken) so the sibling's commit re-captures
			// only its own deferred words.
			for _, r := range d.Runs {
				copy(twin[r.Off:r.Off+len(r.Data)], r.Data)
			}
		}
		if ft {
			pg.locked = true
		}
		t.node.putPageBuf(freeCur)
		t.node.putPageBuf(freeTwin)
	}
	n.dirty = append(n.dirty[:0], retained...)
	if len(pages) == 0 {
		return 0, nil
	}

	itv := int32(len(n.intervals)) + 1
	n.intervals = append(n.intervals, proto.UpdateList{Node: n.id, Interval: itv, Pages: pages})
	n.vt[n.id] = itv
	t.node.stats.Intervals++
	if sink := t.cl.commitSink; sink != nil {
		sink(n.id, itv, n.vt.Clone(), logged)
	}
	for _, pid := range pages {
		n.pt.pages[pid].lastLocalItv = itv
	}

	t.charge(CompDiff, cfg.DiffNs(diffBytes))
	t.charge(CompProtocol, int64(len(pages))*cfg.ProtoOpNs)

	if !ft {
		// Base protocol: the home's working copy already holds local
		// updates to home pages; expose their new version immediately.
		for _, pid := range pages {
			if t.cl.pageHomes.Primary(pid) == n.id {
				pg := n.pt.pages[pid]
				if pg.baseVer[n.id] < itv {
					pg.baseVer[n.id] = itv
				}
				pg.serveWaiters(pg.baseVer, pg.ensureWorking(), cfg.PageSize+64)
				pg.verGate.Broadcast()
			}
		}
	}
	return itv, caps
}

// performRelease runs the node-level release pipeline for the protocol
// mode in use. afterVisible is invoked at the point the release becomes
// visible to other nodes (base: right after commit, per GeNIMA's
// release-then-propagate order; extended: after phase 1 + checkpoint B,
// so a failure never exposes unsaved state); the caller hands the lock
// over inside it.
func (t *Thread) performRelease(afterVisible func()) {
	n := t.node
	serialize := t.cl.opt.Mode == ModeFT || t.cl.opt.SerialReleases
	if serialize {
		for n.releaseBusy {
			t0 := t.beginWait()
			n.releaseGate.WaitTimeout(t.proc, 4*t.cl.cfg.HeartbeatTimeoutNs)
			t.endWait(CompProtocol, t0)
			if t.cl.rec.pending && !t.inRecovery {
				t.participateRecovery()
			}
		}
		n.releaseBusy = true
		defer func() {
			n.releaseBusy = false
			n.releaseGate.Broadcast()
		}()
	}
	if t.cl.opt.Mode == ModeBase {
		t.releaseBase(afterVisible)
		return
	}
	t.releaseFT(afterVisible)
}

// releaseBase is GeNIMA's release: commit, hand over the lock, then
// eagerly push diffs of non-home pages to their homes.
func (t *Thread) releaseBase(afterVisible func()) {
	n := t.node
	itv, caps := t.commitInterval()
	if afterVisible != nil {
		afterVisible()
	}
	if itv == 0 {
		n.releaseSeq++
		return
	}
	cfg := t.cl.cfg
	if t.cl.opt.AggregateDiffs {
		batches := map[int]*diffBatch{}
		for _, c := range caps {
			home := t.cl.pageHomes.Primary(c.pid)
			b := batches[home]
			if b == nil {
				b = &diffBatch{}
				batches[home] = b
			}
			b.Items = append(b.Items, &diffMsg{Page: c.pid, Src: n.id, Interval: itv, Phase: 0, Diff: c.diff})
		}
		t.postBatches(batches)
	} else {
		for _, c := range caps {
			home := t.cl.pageHomes.Primary(c.pid)
			m := &diffMsg{Page: c.pid, Src: n.id, Interval: itv, Phase: 0, Diff: c.diff}
			t.node.stats.DiffMsgs++
			t.node.stats.DiffBytes += int64(m.wireBytes())
			t.charge(CompDiff, cfg.NICPostOverheadNs)
			t0 := t.beginWait()
			n.ep.Post(t.proc, home, m.wireBytes(), m)
			t.endWait(CompDiff, t0)
		}
	}
	t0 := t.beginWait()
	err := n.ep.Fence(t.proc)
	t.endWait(CompDiff, t0)
	if err != nil {
		// The base protocol is the failure-free baseline; a node failure
		// under it is fatal by design.
		panic(fmt.Sprintf("svm: base protocol diff propagation failed: %v", err))
	}
	n.releaseSeq++
	t.cl.trace(obs.KReleaseDone, n.id, t.id, n.releaseSeq)
}

// releaseFT is the extended protocol's release (§4.2, Fig. 2): suspend and
// checkpoint siblings at point A, commit and lock the updated pages,
// propagate diffs to the tentative copies at the secondary homes (phase 1),
// save the timestamp and update list at the backup node, checkpoint the
// releasing thread (point B), make the release visible, then propagate the
// same diffs to the committed copies at the primary homes (phase 2) and
// unlock.
func (t *Thread) releaseFT(afterVisible func()) {
	n := t.node

	t.suspendSiblings()
	itv, caps := t.commitInterval()
	t.cl.trace(obs.KReleaseCommit, n.id, t.id, n.releaseSeq+1)
	t.checkpointSiblings()
	t.resumeSiblings()

	// If a recovery episode completes while this release is in flight —
	// possible whenever the thread parks between commit and the final
	// phase (timestamp save, lock handover, post-queue waits) and the
	// failed node is a bystander home, so no send of ours errors — the
	// re-homing step rebuilt replicas from copies that may predate this
	// interval's propagation. The owner of an in-flight release is
	// responsible for its interval (§4.5): re-run the propagation against
	// the post-recovery homes until no recovery intervenes. Re-applying a
	// diff that already landed is idempotent (diffs carry absolute words).
	epoch := t.cl.rec.epoch

	if itv != 0 && t.cl.opt.UnsafeSinglePhase {
		// Ablation: both copies updated concurrently under one fence —
		// one round-trip cheaper, no roll-forward/roll-back guarantee.
		t.propagateSinglePhase(caps, itv)
		t.cl.trace(obs.KReleasePhase1, n.id, t.id, n.releaseSeq+1)
		t.saveTimestamp(itv, caps)
		t.cl.trace(obs.KReleaseSaveTS, n.id, t.id, n.releaseSeq+1)
		t.cl.trace(obs.KReleaseCkptB, n.id, t.id, n.releaseSeq+1)
		if afterVisible != nil {
			afterVisible()
		}
		for t.cl.rec.epoch != epoch {
			epoch = t.cl.rec.epoch
			t.propagateSinglePhase(caps, itv)
		}
		for _, c := range caps {
			pg := n.pt.pages[c.pid]
			pg.locked = false
			pg.lockGate.Broadcast()
		}
		n.releaseSeq++
		t.cl.trace(obs.KReleaseDone, n.id, t.id, n.releaseSeq)
		return
	}
	if itv != 0 {
		t.propagatePhase(caps, itv, 1)
		t.cl.trace(obs.KReleasePhase1, n.id, t.id, n.releaseSeq+1)
		t.saveTimestamp(itv, caps)
		t.cl.trace(obs.KReleaseSaveTS, n.id, t.id, n.releaseSeq+1)
	} else {
		// No updates: no timestamp to arbitrate, but the thread still
		// checkpoints at this release (point B).
		t.checkpointSelf()
	}
	t.cl.trace(obs.KReleaseCkptB, n.id, t.id, n.releaseSeq+1)

	if afterVisible != nil {
		afterVisible()
	}

	if itv != 0 {
		t.propagatePhase(caps, itv, 2)
		for t.cl.rec.epoch != epoch {
			// Recovery intervened since the pre-phase-1 snapshot: the
			// current homes may hold replicas built without this interval.
			epoch = t.cl.rec.epoch
			t.propagatePhase(caps, itv, 1)
			t.propagatePhase(caps, itv, 2)
		}
		t.cl.trace(obs.KReleasePhase2, n.id, t.id, n.releaseSeq+1)
		for _, c := range caps {
			pg := n.pt.pages[c.pid]
			pg.locked = false
			pg.lockGate.Broadcast()
		}
	}
	n.releaseSeq++
	t.cl.trace(obs.KReleaseDone, n.id, t.id, n.releaseSeq)
}

// postBatches ships aggregated diff batches, one message per destination
// home.
func (t *Thread) postBatches(batches map[int]*diffBatch) {
	n := t.node
	cfg := t.cl.cfg
	// Deterministic destination order.
	for dst := 0; dst < cfg.Nodes; dst++ {
		b := batches[dst]
		if b == nil {
			continue
		}
		t.node.stats.DiffMsgs++
		t.node.stats.DiffBytes += int64(b.wireBytes())
		t.charge(CompDiff, cfg.NICPostOverheadNs)
		t0 := t.beginWait()
		n.ep.Post(t.proc, dst, b.wireBytes(), b)
		t.endWait(CompDiff, t0)
	}
}

// clearWriters resets last-writer marks after a commit. With a dirty
// mask, only words inside dirty chunks can carry marks (a mark is set at
// each write, which also dirties the chunk), so the reset skips the rest
// of the page instead of clearing ~PageSize/WordSize words wholesale.
func clearWriters(writers []int16, mask []uint64, wordSize, pageSize int) {
	if mask == nil {
		for i := range writers {
			writers[i] = -1
		}
		return
	}
	mem.MaskRuns(mask, pageSize, func(lo, hi int) {
		for w := lo / wordSize; w < (hi+wordSize-1)/wordSize && w < len(writers); w++ {
			writers[w] = -1
		}
	})
}

// preImage builds the undo diff: the same modified regions with the
// twin's (pre-write) contents — one arena allocation for the whole
// pre-image, mirroring mem.Compute. The regions are exactly d's runs,
// which lie inside dirty chunks, so a partial twin is valid everywhere
// this reads.
func preImage(d *mem.Diff, twin []byte) *mem.Diff {
	u := &mem.Diff{Page: d.Page, Runs: make([]mem.Run, len(d.Runs))}
	total := 0
	for _, r := range d.Runs {
		total += len(r.Data)
	}
	arena := make([]byte, 0, total)
	for i, r := range d.Runs {
		p := len(arena)
		arena = append(arena, twin[r.Off:r.Off+len(r.Data)]...)
		u.Runs[i] = mem.Run{Off: r.Off, Data: arena[p:len(arena):len(arena)]}
	}
	return u
}

// splitDeferred removes from d every word whose last local writer is a
// sibling thread currently holding an application lock: those words
// belong to an open critical section and must commit with the sibling's
// own interval (see commitInterval). Writer marks of the words that stay
// in d are cleared. Reports whether anything was deferred.
func (t *Thread) splitDeferred(pg *page, d *mem.Diff) bool {
	if !t.cl.trackWriters || pg.writers == nil || d.Empty() {
		return false
	}
	// Fast path: no other thread on this node is inside a critical section
	// right now, so no word can qualify for deferral — skip the per-word
	// writer scan entirely (the caller's post-commit mark reset handles the
	// bookkeeping). A stale Thread object in node.threads can only cause a
	// harmless trip into the slow path, never a missed deferral: current
	// thread objects are always listed on their node.
	inCS := false
	for _, sib := range t.node.threads {
		if sib != t && sib.locksHeld > 0 {
			inCS = true
			break
		}
	}
	if !inCS {
		return false
	}
	ws := t.cl.cfg.WordSize
	// A run may split into several kept runs, so build into a fresh slice
	// (appending into d.Runs[:0] could overwrite runs not yet visited).
	var kept []mem.Run
	deferred := false
	for _, r := range d.Runs {
		start := -1
		for i := 0; i <= len(r.Data); i += ws {
			deferWord := false
			if i < len(r.Data) {
				if wt := pg.writers[(r.Off+i)/ws]; wt >= 0 && int(wt) != t.id {
					sib := t.cl.threads[wt]
					deferWord = sib != nil && sib.node == t.node && sib.locksHeld > 0
				}
			}
			switch {
			case i < len(r.Data) && !deferWord:
				if start < 0 {
					start = i
				}
				pg.writers[(r.Off+i)/ws] = -1
			default:
				if start >= 0 {
					kept = append(kept, mem.Run{Off: r.Off + start, Data: r.Data[start:i]})
					start = -1
				}
				if i < len(r.Data) {
					deferred = true
					t.node.stats.DeferredWords++
				}
			}
		}
	}
	d.Runs = kept
	return deferred
}

// propagateSinglePhase ships every captured diff to both homes at once
// (the UnsafeSinglePhase ablation): one fence instead of two ordered ones.
func (t *Thread) propagateSinglePhase(caps []capturedDiff, itv int32) {
	n := t.node
	cfg := t.cl.cfg
	deg := t.cl.pageHomes.Degree()
	for {
		for _, c := range caps {
			// Phase-1 targets are every secondary slot (tentative copies),
			// phase 2 the primary (committed copy) — at degree 2 exactly
			// the secondary/primary pair.
			for s := 1; s <= deg; s++ {
				phase, dst := 1, 0
				if s == deg {
					phase, dst = 2, t.cl.pageHomes.Primary(c.pid)
				} else {
					dst = t.cl.pageHomes.Replica(c.pid, s)
				}
				if dst == n.id {
					t.applyLocalDiff(c, itv, phase)
					continue
				}
				m := &diffMsg{Page: c.pid, Src: n.id, Interval: itv, Phase: phase, Diff: c.diff}
				if phase == 1 {
					m.Undo = c.undo
				}
				t.node.stats.DiffMsgs++
				t.node.stats.DiffBytes += int64(m.wireBytes())
				t.charge(CompDiff, cfg.NICPostOverheadNs)
				t0 := t.beginWait()
				n.ep.Post(t.proc, dst, m.wireBytes(), m)
				t.endWait(CompDiff, t0)
			}
		}
		t0 := t.beginWait()
		err := n.ep.Fence(t.proc)
		t.endWait(CompDiff, t0)
		if err == nil {
			return
		}
		if errors.Is(err, vmmc.ErrNodeDead) {
			t.joinRecoveryErr(err)
			continue
		}
		panic(fmt.Sprintf("svm: single-phase propagation: %v", err))
	}
}

// propagatePhase ships the captured diffs to the phase's home set
// (1 = secondary/tentative, 2 = primary/committed). Diffs to this node's
// own home copies are applied locally. If a destination home died, the
// thread participates in recovery and retries against the re-homed
// assignment; re-applying a diff that already arrived is idempotent.
func (t *Thread) propagatePhase(caps []capturedDiff, itv int32, phase int) {
	n := t.node
	cfg := t.cl.cfg
	// Phase 1 fans out to every secondary slot (1..k-1); phase 2 goes to
	// the primary alone. At degree 2 the slot loop visits exactly the
	// seed's single secondary, keeping the event stream bit-identical.
	lo, hi := 0, 1
	if phase == 1 {
		lo, hi = 1, t.cl.pageHomes.Degree()
	}
	for {
		batches := map[int]*diffBatch{}
		for _, c := range caps {
			for s := lo; s < hi; s++ {
				dst := t.cl.pageHomes.Replica(c.pid, s)
				if dst == n.id {
					t.applyLocalDiff(c, itv, phase)
					continue
				}
				m := &diffMsg{Page: c.pid, Src: n.id, Interval: itv, Phase: phase, Diff: c.diff}
				if phase == 1 {
					m.Undo = c.undo
				}
				if t.cl.opt.AggregateDiffs {
					b := batches[dst]
					if b == nil {
						b = &diffBatch{}
						batches[dst] = b
					}
					b.Items = append(b.Items, m)
					continue
				}
				t.node.stats.DiffMsgs++
				t.node.stats.DiffBytes += int64(m.wireBytes())
				t.charge(CompDiff, cfg.NICPostOverheadNs)
				t0 := t.beginWait()
				n.ep.Post(t.proc, dst, m.wireBytes(), m)
				t.endWait(CompDiff, t0)
			}
		}
		if t.cl.opt.AggregateDiffs {
			t.postBatches(batches)
		}
		t0 := t.beginWait()
		err := n.ep.Fence(t.proc)
		t.endWait(CompDiff, t0)
		if err == nil {
			return
		}
		if errors.Is(err, vmmc.ErrNodeDead) {
			t.joinRecoveryErr(err)
			continue // homes were reassigned; resend the phase
		}
		panic(fmt.Sprintf("svm: phase %d propagation: %v", phase, err))
	}
}

// applyLocalDiff applies one of this node's own diffs to its local home
// copy (primary homes hold committed copies, secondary homes tentative).
func (t *Thread) applyLocalDiff(c capturedDiff, itv int32, phase int) {
	n := t.node
	pg := n.pt.pages[c.pid]
	cfg := t.cl.cfg
	t.charge(CompDiff, cfg.CopyNs(c.diff.DataBytes()))
	if phase == 1 {
		if pg.tentative == nil {
			pg.tentative = t.node.getPageBufZero()
			pg.tentVer = proto.NewVector(cfg.Nodes)
		}
		pg.applyDiff(pg.tentative, pg.tentVer, n.id, itv, c.diff)
	} else {
		if pg.committed == nil {
			pg.committed = t.node.getPageBufZero()
			pg.commitVer = proto.NewVector(cfg.Nodes)
		}
		pg.applyDiff(pg.committed, pg.commitVer, n.id, itv, c.diff)
		pg.serveWaiters(pg.commitVer, pg.committed, cfg.PageSize+64)
	}
	pg.verGate.Broadcast()
}

// saveTimestamp replicates the node's new vector time, the interval's
// update list, the self-secondary diff stash, and the releasing thread's
// point-B checkpoint at the backup node (end of phase 1, Fig. 2) — one
// atomic deposit, so the roll-forward/roll-back decision and the thread
// state it implies can never diverge. Recovery uses it to arbitrate the
// interrupted release, re-serve write notices, and rebuild committed
// copies whose only tentative replica died with this node.
func (t *Thread) saveTimestamp(itv int32, caps []capturedDiff) {
	n := t.node
	deg := t.cl.Degree()
	var stash []*mem.Diff
	for _, c := range caps {
		for s := 1; s < deg; s++ {
			if t.cl.pageHomes.Replica(c.pid, s) == n.id {
				stash = append(stash, c.diff)
				break
			}
		}
	}
	snap, sz := t.encodeSnapshot()
	t.node.ckptCount++
	t.charge(CompCheckpoint, t.cl.cfg.CheckpointNs(sz))
	if deg == 2 {
		// Single-backup fast path: the seed's exact sequence.
		for {
			backup := t.cl.backupOf(n.id)
			m := &saveTSMsg{
				Node: n.id, TS: n.vt.Clone(), List: n.intervals[itv-1], Stash: stash,
				CkptThread: t.id, CkptHome: n.id, Snap: snap,
			}
			t.charge(CompCheckpoint, t.cl.cfg.NICPostOverheadNs)
			t0 := t.beginWait()
			n.ep.Post(t.proc, backup, n.msgWire(backup, m), m)
			err := n.ep.Fence(t.proc)
			// The deposit's bulk is the point-B thread state; the paper counts
			// remote state saving under checkpointing.
			t.endWait(CompCheckpoint, t0)
			if err == nil {
				return
			}
			if errors.Is(err, vmmc.ErrNodeDead) {
				t.joinRecoveryErr(err)
				continue // backup reassigned; save again
			}
			panic(fmt.Sprintf("svm: timestamp save: %v", err))
		}
	}
	// Degree k: the deposit is replicated at the first k-1 live ring
	// successors, so any k-1 overlapping failures leave at least one
	// surviving copy of the arbitration state. One fence covers the
	// whole replicated deposit — it is atomic with respect to failures
	// the same way the single deposit is: recovery reads any survivor.
	for {
		backups := t.cl.backupsOf(n.id, deg-1)
		t.charge(CompCheckpoint, int64(len(backups))*t.cl.cfg.NICPostOverheadNs)
		t0 := t.beginWait()
		for _, backup := range backups {
			m := &saveTSMsg{
				Node: n.id, TS: n.vt.Clone(), List: n.intervals[itv-1], Stash: stash,
				CkptThread: t.id, CkptHome: n.id, Snap: snap,
			}
			n.ep.Post(t.proc, backup, n.msgWire(backup, m), m)
		}
		err := n.ep.Fence(t.proc)
		t.endWait(CompCheckpoint, t0)
		if err == nil {
			return
		}
		if errors.Is(err, vmmc.ErrNodeDead) {
			t.joinRecoveryErr(err)
			continue // backup set reassigned; save again
		}
		panic(fmt.Sprintf("svm: timestamp save: %v", err))
	}
}

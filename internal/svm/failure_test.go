package svm

import (
	"fmt"
	"testing"

	"ftsvm/internal/model"
)

// killTracer kills a node when a specific trace event fires. A non-nil
// kill hook replaces the immediate KillNode (e.g. to schedule the kill a
// beat later, mid-broadcast).
type killTracer struct {
	cl   *Cluster
	kind string
	node int
	seq  int64 // 0 = any
	done bool
	kill func()
}

func (k *killTracer) Event(e TraceEvent) {
	if k.done || e.Kind != k.kind || e.Node != k.node {
		return
	}
	if k.seq != 0 && e.Seq != k.seq {
		return
	}
	k.done = true
	if k.kill != nil {
		k.kill()
		return
	}
	k.cl.KillNode(k.node)
}

// runWithKill runs the counter workload in FT mode and kills victim at the
// given protocol milestone (or at a virtual time if kind == "time").
func runWithKill(t *testing.T, kind string, victim int, seq int64, tpn int) *Cluster {
	t.Helper()
	cfg := model.Default()
	cfg.Nodes = 4
	cfg.ThreadsPerNode = tpn
	const iters = 8
	tracer := &killTracer{kind: kind, node: victim, seq: seq}
	opt := Options{
		Config: cfg,
		Mode:   ModeFT,
		Pages:  8,
		Locks:  1,
		Body:   counterBody(iters),
		Tracer: tracer,
	}
	cl, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	cl.EnableFlightRecorder(64)
	cl.EnableAuditor(1)
	tracer.cl = cl
	if kind == "time" {
		cl.Engine().At(seq, func() { cl.KillNode(victim) })
	}
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if kind != "time" && !tracer.done {
		t.Fatalf("trace event %q seq %d never fired for node %d", kind, seq, victim)
	}
	if !cl.Finished() {
		t.Fatal("not all threads finished after recovery")
	}
	checkCounter(t, cl, uint64(4*tpn*iters))
	verifyReplicaInvariants(t, cl)
	return cl
}

// verifyReplicaInvariants checks the paper's post-recovery guarantees:
// every page's two home replicas live on distinct live nodes and hold
// identical contents and versions.
func verifyReplicaInvariants(t *testing.T, cl *Cluster) {
	t.Helper()
	if err := cl.VerifyReplicas(); err != nil {
		t.Fatal(err)
	}
}

// Each failure window of §4.5.2/§4.5.3, single-threaded nodes (the
// configuration for which replay is exact under the state-struct
// checkpoint substitution).

func TestFailDuringCompute(t *testing.T) {
	// Mid-run kill at a fixed virtual time, between synchronization points.
	runWithKill(t, "time", 2, 3_000_000, 1)
}

func TestFailAtCommit(t *testing.T) {
	// After interval commit, before phase 1: roll back.
	runWithKill(t, "release.commit", 1, 3, 1)
}

func TestFailAfterPhase1(t *testing.T) {
	// Phase 1 propagated, timestamp not yet saved: roll back.
	runWithKill(t, "release.phase1", 1, 3, 1)
}

func TestFailAfterTimestampSave(t *testing.T) {
	// Timestamp + point-B checkpoint saved: roll forward, resume after
	// the release.
	runWithKill(t, "release.savets", 1, 3, 1)
}

func TestFailDuringPhase2(t *testing.T) {
	// Between the visibility point and phase-2 completion: roll forward.
	runWithKill(t, "release.ckptB", 1, 3, 1)
}

func TestFailAfterRelease(t *testing.T) {
	runWithKill(t, "release.done", 1, 3, 1)
}

func TestFailEveryNode(t *testing.T) {
	// The failed node's role matters: node 0 is the initial barrier master
	// and a lock home; others hold different home sets.
	for victim := 0; victim < 4; victim++ {
		victim := victim
		t.Run(fmt.Sprintf("victim%d", victim), func(t *testing.T) {
			runWithKill(t, "release.phase1", victim, 2, 1)
		})
	}
}

// TestFailWithNICLock kills a lock holder under the NIC-assisted lock:
// recovery must rebuild the owner word at the new homes and let the
// migrated thread re-acquire.
func TestFailWithNICLock(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 4
	const iters = 8
	opt := Options{Config: cfg, Mode: ModeFT, LockAlgo: LockNIC, Pages: 8, Locks: 1, Body: counterBody(iters)}
	cl, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	cl.EnableFlightRecorder(64)
	cl.EnableAuditor(1)
	cl.Engine().At(3_000_000, func() { cl.KillNode(2) })
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	checkCounter(t, cl, 4*iters)
	verifyReplicaInvariants(t, cl)
}

func TestFailDuringCheckpointA(t *testing.T) {
	// SMP node: killed while checkpointing siblings at point A.
	runWithKill(t, "ckpt.A", 1, 0, 2)
}

func TestFailSMPCompute(t *testing.T) {
	runWithKill(t, "time", 2, 3_000_000, 2)
}

// TestFailAtBarrier kills a node once it is waiting inside a barrier: the
// remaining nodes must detect the silence, recover, and complete the
// barrier with the migrated threads.
func TestFailAtBarrier(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 4
	var cl *Cluster
	phases := 3
	body := func(th *Thread) {
		st := &barrierState{}
		th.Setup(st)
		for st.Phase < phases {
			th.WriteU64(th.ID()*8+int(st.Phase)*64, uint64(th.ID()+st.Phase))
			st.Phase++
			th.Barrier()
		}
	}
	tracer := &killTracer{kind: "barrier.none"} // unused; kill by time below
	opt := Options{Config: cfg, Mode: ModeFT, Pages: 8, Locks: 1, Body: body, Tracer: tracer}
	var err error
	cl, err = New(opt)
	if err != nil {
		t.Fatal(err)
	}
	cl.EnableFlightRecorder(64)
	cl.EnableAuditor(1)
	tracer.cl = cl
	// Kill node 3 shortly after start: it will likely be inside or near a
	// barrier when the others wait for it.
	cl.Engine().At(400_000, func() { cl.KillNode(3) })
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if !cl.Finished() {
		t.Fatal("threads did not finish after barrier-time failure")
	}
	verifyReplicaInvariants(t, cl)
}

// TestFailBarrierMaster kills node 0 (the barrier master and recovery
// coordinator candidate).
func TestFailBarrierMaster(t *testing.T) {
	runWithKill(t, "time", 0, 2_000_000, 1)
}

// TestSuccessiveFailuresKillTwo exercises multiple, non-simultaneous
// failures: a second node dies well after the first recovery completed.
func TestSuccessiveFailuresKillTwo(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 5
	const iters = 10
	opt := Options{Config: cfg, Mode: ModeFT, Pages: 8, Locks: 1, Body: counterBody(iters)}
	cl, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	cl.EnableFlightRecorder(64)
	cl.EnableAuditor(1)
	cl.Engine().At(2_000_000, func() { cl.KillNode(1) })
	// Second, non-simultaneous failure: node 3 dies at one of its later
	// releases, but only once the first recovery has fully completed.
	second := false
	cl.opt.Tracer = tracerFunc(func(e TraceEvent) {
		if second || e.Kind != "release.done" || e.Node != 3 || e.Seq < 6 {
			return
		}
		if cl.nodes[1].excluded && !cl.rec.pending {
			second = true
			cl.KillNode(3)
		}
	})
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if !cl.Finished() {
		t.Fatal("threads did not finish after successive failures")
	}
	checkCounter(t, cl, uint64(5*iters))
	verifyReplicaInvariants(t, cl)
}

// TestNoPostCheckpointLeakage verifies the paper's third guarantee: no
// write executed by the failed node after its last synchronization point
// is visible anywhere after recovery. The victim writes a poison value and
// is killed before its release can propagate it.
func TestNoPostCheckpointLeakage(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 3
	type st struct{ Done bool }
	poisonAddr := 512
	opt := Options{
		Config: cfg, Mode: ModeFT, Pages: 4, Locks: 1,
		Body: func(th *Thread) {
			s := &st{}
			th.Setup(s)
			if th.NodeID() == 2 && !th.Resumed() && !s.Done {
				// Victim: write poison, then stall without releasing.
				th.Acquire(0)
				th.WriteU64(poisonAddr, 0xDEAD)
				// Die before any release propagates the write: the kill is
				// scheduled below, mid-stall.
				th.Compute(50_000_000)
				return
			}
			if !s.Done {
				th.Compute(1_000_000)
				s.Done = true
			}
			th.Barrier()
		},
	}
	cl, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	cl.Engine().At(5_000_000, func() { cl.KillNode(2) })
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	// After recovery, no live node's copies may contain the poison.
	for _, n := range cl.nodes {
		if n.dead {
			continue
		}
		for _, pg := range n.pt.pages {
			for _, buf := range [][]byte{pg.committed, pg.tentative} {
				if buf == nil {
					continue
				}
				v := uint64(buf[512]) | uint64(buf[513])<<8
				if v == 0xDEAD {
					t.Fatalf("poison write leaked to node %d", n.id)
				}
			}
		}
	}
}

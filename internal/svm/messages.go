package svm

import (
	"ftsvm/internal/checkpoint"
	"ftsvm/internal/mem"
	"ftsvm/internal/proto"
)

// Wire message payloads. Sizes on the wire are modeled by each message's
// wireBytes; the vmmc layer adds a fixed header.

const vecBytes = 4 // modeled bytes per vector element

func vecWire(n int) int { return 4 + vecBytes*n }

// diffMsg carries one page diff to a home node. Phase selects the target
// copy in the extended protocol: 1 = tentative at the secondary home,
// 2 = committed at the primary home. Base-protocol diffs use phase 0 and
// are applied to the home's working copy.
type diffMsg struct {
	Page     int
	Src      int
	Interval int32
	Phase    int
	Diff     *mem.Diff
	// Undo carries the pre-image of the modified words (from the twin) on
	// phase-1 diffs: if the sender dies after this diff lands but before
	// its timestamp save, recovery rolls the tentative copy back by
	// applying exactly this pre-image — a whole-page restore from the
	// committed copy would collaterally wipe other releasers' in-flight
	// phase-1 updates (and for pages primary-homed at the sender the
	// committed copy dies with it).
	Undo *mem.Diff
}

func (m *diffMsg) wireBytes() int {
	n := m.Diff.WireBytes() + 12
	if m.Undo != nil {
		n += m.Undo.WireBytes()
	}
	return n
}

// diffBatch aggregates all of a release's diffs bound for one home into a
// single message — the paper's §6 future-work optimization ("decreasing
// contention at the network interface by sending fewer and larger
// messages"). Enabled by Options.AggregateDiffs.
type diffBatch struct {
	Items []*diffMsg
}

func (m *diffBatch) wireBytes() int {
	n := 8
	for _, it := range m.Items {
		n += it.wireBytes()
	}
	return n
}

// fetchReq asks a home for a page copy at or beyond version Need.
type fetchReq struct {
	Page int
	Need proto.VectorTime
}

func (m *fetchReq) wireBytes() int { return 8 + vecWire(len(m.Need)) }

// fetchReply returns the page contents and the version they carry.
type fetchReply struct {
	Page int
	Data []byte
	Ver  proto.VectorTime
}

func (m *fetchReply) wireBytes() int { return 8 + len(m.Data) + vecWire(len(m.Ver)) }

// updatesReq asks a node for its update lists for intervals [From, To].
type updatesReq struct {
	From, To int32
}

func (m *updatesReq) wireBytes() int { return 16 }

// updatesReply returns the requested update lists.
type updatesReply struct {
	Lists []proto.UpdateList
}

func updatesWire(lists []proto.UpdateList) int {
	n := 8
	for i := range lists {
		n += lists[i].WireBytes()
	}
	return n
}

// saveTSMsg is the extended protocol's end-of-phase-1 save: the releaser's
// new vector time and the update list of the interval just propagated,
// replicated at the backup node so recovery can arbitrate roll-forward vs
// roll-back and re-serve the dead node's write notices.
type saveTSMsg struct {
	Node int
	TS   proto.VectorTime
	List proto.UpdateList
	// Stash replicates the diffs of pages whose secondary home is the
	// releaser itself (their phase-1 application was local, so without the
	// stash those updates would exist on no other node until phase 2 —
	// a roll-forward after the releaser's death could not rebuild them).
	Stash []*mem.Diff
	// The releasing thread's point-B checkpoint rides in the same deposit:
	// the timestamp (which decides roll-forward vs roll-back for this
	// interval) and the thread state that matches that decision must land
	// atomically, or a failure between them would replay the interval
	// twice (forward + stale state) or lose it (backward + fresh state).
	CkptThread int
	CkptHome   int
	Snap       checkpoint.Snapshot
}

func (m *saveTSMsg) wireBytes() int {
	n := 8 + vecWire(len(m.TS)) + m.List.WireBytes()
	for _, d := range m.Stash {
		n += d.WireBytes()
	}
	n += 16 + len(m.Snap.Blob) + vecWire(len(m.Snap.VT))
	return n
}

// ckptMsg deposits one thread checkpoint at the backup node.
type ckptMsg struct {
	ThreadID int
	HomeNode int
	Snap     checkpoint.Snapshot
}

func (m *ckptMsg) wireBytes() int { return 16 + vecWire(len(m.Snap.VT)) + len(m.Snap.Blob) }

// Lock algorithm messages (central polling lock, §4.3).

// lockSet writes a node's element in the lock vector at a lock home.
type lockSet struct {
	Lock int
	Node int
}

func (m *lockSet) wireBytes() int { return 12 } // lock id + node + op tag

// lockClear resets a node's element (failed acquire attempt).
type lockClear struct {
	Lock int
	Node int
}

func (m *lockClear) wireBytes() int { return 12 }

// lockRead fetches the whole lock vector plus the stored release timestamp
// from the lock's primary home.
type lockRead struct {
	Lock int
}

func (m *lockRead) wireBytes() int { return 8 }

type lockReadReply struct {
	Holders []int // node ids with a non-zero element
	VT      proto.VectorTime
}

func (m *lockReadReply) wireBytes() int { return 8 + 4*len(m.Holders) + vecWire(len(m.VT)) }

// lockRelease clears the releaser's element and stores its vector time, as
// one atomic deposit.
type lockRelease struct {
	Lock int
	Node int
	VT   proto.VectorTime
}

func (m *lockRelease) wireBytes() int { return 8 + vecWire(len(m.VT)) }

// nicTestSet is the NIC-assisted lock's atomic acquire attempt (§6 future
// work): the home's network interface tests and sets the owner word in one
// operation and replies with the grant decision and the stored release
// timestamp.
type nicTestSet struct {
	Lock int
	Node int
}

func (m *nicTestSet) wireBytes() int { return 12 }

type nicTestSetReply struct {
	Granted bool
	VT      proto.VectorTime
}

func (m *nicTestSetReply) wireBytes() int { return 8 + vecWire(len(m.VT)) }

// Queue lock messages (GeNIMA's original algorithm, kept as an ablation).

// qlAcquire asks the lock's home to enqueue the requester.
type qlAcquire struct {
	Lock      int
	Requester int
}

func (m *qlAcquire) wireBytes() int { return 12 }

// qlForward is sent by the home to the current tail: pass the lock to
// Requester when you release.
type qlForward struct {
	Lock      int
	Requester int
}

func (m *qlForward) wireBytes() int { return 12 }

// qlGrant hands the lock (and the release timestamp) to the next holder.
type qlGrant struct {
	Lock int
	VT   proto.VectorTime
}

func (m *qlGrant) wireBytes() int { return 8 + vecWire(len(m.VT)) }

// Barrier messages.

// barArrive announces a node's arrival at barrier episode Epoch, carrying
// its vector time and the update lists other nodes may not have seen.
type barArrive struct {
	Epoch int
	Node  int
	VT    proto.VectorTime
	Lists []proto.UpdateList
}

func (m *barArrive) wireBytes() int { return 16 + vecWire(len(m.VT)) + updatesWire(m.Lists) }

// barRelease is the master's broadcast completing a barrier episode.
type barRelease struct {
	Epoch int
	VT    proto.VectorTime
	Lists []proto.UpdateList
}

func (m *barRelease) wireBytes() int { return 16 + vecWire(len(m.VT)) + updatesWire(m.Lists) }

// Recovery messages.

// savedReq asks a backup node for everything it holds about a dead node:
// the last saved timestamp, the replicated update lists, and the thread
// checkpoints.
type savedReq struct {
	Dead int
}

func (m *savedReq) wireBytes() int { return 8 }

// savedReply returns the backup's replicated state for the dead node.
type savedReply struct {
	Have  bool
	TS    proto.VectorTime
	Lists []proto.UpdateList
}

func (m *savedReply) wireBytes() int { return 8 + vecWire(len(m.TS)) + updatesWire(m.Lists) }

// lockRebuild carries a lock's reconstructed state to its new homes
// during recovery (installed by the coordinator via direct call; the
// transfer cost is charged in bulk by rebuildLocks).
type lockRebuild struct {
	Lock    int
	Holders []int
	VT      proto.VectorTime
}

package svm

import (
	"encoding/binary"
	"fmt"
	"math"

	"ftsvm/internal/checkpoint"
	"ftsvm/internal/mem"
	"ftsvm/internal/sim"
)

// Thread is one compute thread of the application. All shared-memory and
// synchronization operations go through its methods; every operation is a
// protocol safe point (where sibling suspension, recovery participation,
// and checkpointing may occur) and advances the thread's virtual clock.
type Thread struct {
	id   int
	cl   *Cluster
	node *node
	proc *sim.Proc

	bd        Breakdown
	debt      int64
	inBarrier bool
	locksHeld int // application locks currently held (in a critical section)

	state        any
	restoredBlob []byte
	resumed      bool
	ckptSeq      int64
	barSeq       int64 // completed global barriers

	dead       bool
	finished   bool
	migrated   bool
	inRecovery bool
	blocked    bool // inside a blocking protocol wait (suspendable in place)
	endTime    int64
}

// ID returns the thread's global id.
func (t *Thread) ID() int { return t.id }

// NodeID returns the node the thread currently runs on (it changes if the
// thread is migrated after a failure).
func (t *Thread) NodeID() int { return t.node.id }

// NThreads returns the total number of compute threads.
func (t *Thread) NThreads() int { return len(t.cl.threads) }

// Resumed reports whether this execution of the body is a post-failure
// replay from a checkpoint.
func (t *Thread) Resumed() bool { return t.resumed }

// Now returns the thread's current virtual time (including unflushed local
// work).
func (t *Thread) Now() int64 { return t.proc.Now() + t.debt }

// Breakdown returns the thread's accumulated time breakdown.
func (t *Thread) Breakdown() Breakdown { return t.bd }

// Setup registers the thread's resumable state: a pointer to a
// gob-serializable struct holding everything needed to continue from a
// synchronization point (phase counters, loop indices, private scratch).
// On a post-failure replay the last checkpoint is decoded into state and
// Setup returns true. It must be the first Thread call in the body.
func (t *Thread) Setup(state any) (resumed bool) {
	t.state = state
	if t.restoredBlob != nil {
		if err := checkpoint.Decode(t.restoredBlob, state); err != nil {
			panic(fmt.Sprintf("svm: thread %d restore: %v", t.id, err))
		}
		t.restoredBlob = nil
		t.resumed = true
		return true
	}
	return false
}

// Compute charges ns nanoseconds of application CPU time (scaled by SMP
// contention).
func (t *Thread) Compute(ns int64) {
	t.safePoint()
	t.charge(CompCompute, ns)
}

// IdleUntil parks the thread until virtual time ns without charging
// processor cost — the open-loop serving driver's inter-arrival wait,
// where a thread sits idle until its next request's arrival time. The
// wait counts as CompIdle and frees the node's SMP contention slot
// (an idle server core does not contend for the memory bus). It is
// recovery-interruptible: the failure-notification broadcast wakes the
// thread so it joins the recovery barrier promptly, then the wait
// resumes until the target time. A target in the past returns
// immediately, so replayed (post-migration) requests drain back-to-back.
func (t *Thread) IdleUntil(ns int64) {
	t.safePoint()
	t.flush()
	for t.proc.Now() < ns {
		d := ns - t.proc.Now()
		t0 := t.beginWait()
		t.node.idleGate.WaitTimeout(t.proc, d)
		t.endWait(CompIdle, t0)
		t.safePoint()
	}
}

// charge accrues CPU cost into component c and the thread's time debt,
// flushing the debt into virtual time when it exceeds the slice.
func (t *Thread) charge(c Component, ns int64) {
	ns = t.cl.cfg.Contention(ns, t.node.busy)
	t.bd.Comp[c] += ns
	if t.inBarrier {
		t.bd.AtBarrier[c] += ns
	}
	t.debt += ns
	if t.debt >= t.cl.sliceNs {
		t.flush()
	}
}

// flush converts accumulated time debt into virtual-time progress.
func (t *Thread) flush() {
	if t.debt > 0 {
		d := t.debt
		t.debt = 0
		t.proc.Advance(d)
	}
}

// beginWait flushes pending work and returns the wait start time.
func (t *Thread) beginWait() int64 {
	t.flush()
	t.node.busy--
	t.blocked = true
	return t.proc.Now()
}

// endWait attributes the elapsed wait to component c.
func (t *Thread) endWait(c Component, t0 int64) {
	t.blocked = false
	t.node.busy++
	dt := t.proc.Now() - t0
	t.bd.Comp[c] += dt
	if t.inBarrier {
		t.bd.AtBarrier[c] += dt
	}
}

// safePoint is the per-operation protocol hook: a detected failure pulls
// the thread into the recovery barrier here.
func (t *Thread) safePoint() {
	if t.cl.rec.pending && !t.inRecovery && !t.dead {
		t.participateRecovery()
	}
}

// --- Shared memory access API ---
//
// The shared address space is Pages*PageSize bytes, addressed by byte
// offset. Multi-byte accesses must not straddle a page (natural alignment
// guarantees this for power-of-two page sizes).

func (t *Thread) pageOf(addr int) (*page, int) {
	var pid, off int
	if s := t.cl.pageShift; s != 0 {
		pid, off = addr>>s, addr&t.cl.pageLow
	} else {
		psz := t.cl.cfg.PageSize
		pid, off = addr/psz, addr%psz
	}
	if pid < 0 || pid >= len(t.node.pt.pages) {
		panic(fmt.Sprintf("svm: address %d out of shared space", addr))
	}
	return t.node.pt.pages[pid], off
}

// readable ensures the page may be read locally, faulting if needed.
func (t *Thread) readable(pg *page) {
	for pg.state == pInvalid {
		t.readFault(pg)
	}
}

// writable ensures the page may be written locally, faulting and creating
// a twin if needed.
func (t *Thread) writable(pg *page) {
	for pg.state != pWritable {
		if pg.state == pInvalid {
			t.readFault(pg)
			continue
		}
		// pReadOnly -> pWritable: write fault.
		t.writeFault(pg)
	}
}

// track snapshots the chunks about to be dirtied by an n-byte write at
// off into pg's partial twin (lazy, chunk-granular twinning). Call after
// writable(pg) and before mutating pg.working. No-op on the steady-state
// path (chunks already dirty) and when tracking is off (nil mask: the
// write fault took a full-page twin).
func (t *Thread) track(pg *page, off, n int) {
	mask := pg.dirtyMask
	if mask == nil || pg.maskFull {
		return
	}
	// Steady-state fast path: a write confined to one already-dirty chunk
	// (the overwhelmingly common case — word writes into hot chunks) needs
	// only the bit probe, not MarkAndSnapshot's loop.
	first := off >> mem.ChunkShift
	if (off+n-1)>>mem.ChunkShift == first &&
		mask[first>>6]&(uint64(1)<<(uint(first)&63)) != 0 {
		return
	}
	if c := mem.MarkAndSnapshot(mask, pg.twin, pg.working, off, n); c != 0 {
		t.node.stats.TwinBytesCopied += int64(c)
	}
}

// markWriter records t as the last writer of the words covering
// [off, off+n) of pg. Tracking is active only for extended-protocol SMP
// runs, where commitInterval uses it to defer a sibling's
// mid-critical-section words to that sibling's own interval: a replayed
// sibling then re-executes its critical section against state that never
// absorbed the partial writes, keeping lock-protected read-modify-writes
// exactly-once (see DESIGN.md, substitution contracts).
func (t *Thread) markWriter(pg *page, off, n int) {
	if !t.cl.trackWriters {
		return
	}
	ws := t.cl.cfg.WordSize
	if pg.writers == nil {
		pg.writers = make([]int16, t.cl.cfg.PageSize/ws)
		for i := range pg.writers {
			pg.writers[i] = -1
		}
	}
	for w := off / ws; w <= (off+n-1)/ws; w++ {
		pg.writers[w] = int16(t.id)
	}
}

// ReadU64 reads the 8-byte word at addr.
func (t *Thread) ReadU64(addr int) uint64 {
	t.safePoint()
	pg, off := t.pageOf(addr)
	t.readable(pg)
	t.charge(CompCompute, t.cl.cfg.ReadAccessNs)
	return binary.LittleEndian.Uint64(pg.working[off : off+8])
}

// WriteU64 writes the 8-byte word at addr.
func (t *Thread) WriteU64(addr int, v uint64) {
	t.safePoint()
	pg, off := t.pageOf(addr)
	t.writable(pg)
	// Mutate before charging: charge may yield, and a sibling's interval
	// commit during the yield would downgrade the page and lose a write
	// performed after it.
	t.track(pg, off, 8)
	binary.LittleEndian.PutUint64(pg.working[off:off+8], v)
	t.markWriter(pg, off, 8)
	t.charge(CompCompute, t.cl.cfg.WriteAccessNs)
}

// ReadF64 reads the float64 at addr.
func (t *Thread) ReadF64(addr int) float64 {
	return f64frombits(t.ReadU64(addr))
}

// WriteF64 writes the float64 at addr.
func (t *Thread) WriteF64(addr int, v float64) {
	t.WriteU64(addr, f64bits(v))
}

// ReadU32 reads the 4-byte word at addr.
func (t *Thread) ReadU32(addr int) uint32 {
	t.safePoint()
	pg, off := t.pageOf(addr)
	t.readable(pg)
	t.charge(CompCompute, t.cl.cfg.ReadAccessNs)
	return binary.LittleEndian.Uint32(pg.working[off : off+4])
}

// WriteU32 writes the 4-byte word at addr.
func (t *Thread) WriteU32(addr int, v uint32) {
	t.safePoint()
	pg, off := t.pageOf(addr)
	t.writable(pg)
	t.track(pg, off, 4)
	binary.LittleEndian.PutUint32(pg.working[off:off+4], v)
	t.markWriter(pg, off, 4)
	t.charge(CompCompute, t.cl.cfg.WriteAccessNs)
}

// ReadF64s reads len(dst) float64s starting at addr, batching fault checks
// and cost accounting per page.
func (t *Thread) ReadF64s(addr int, dst []float64) {
	t.safePoint()
	cfg := t.cl.cfg
	i := 0
	for i < len(dst) {
		pg, off := t.pageOf(addr + 8*i)
		t.readable(pg)
		n := (cfg.PageSize - off) / 8
		if n > len(dst)-i {
			n = len(dst) - i
		}
		for k := 0; k < n; k++ {
			dst[i+k] = f64frombits(binary.LittleEndian.Uint64(pg.working[off+8*k:]))
		}
		t.charge(CompCompute, int64(n)*cfg.ReadAccessNs)
		i += n
	}
}

// WriteF64s writes src starting at addr, batching per page.
func (t *Thread) WriteF64s(addr int, src []float64) {
	t.safePoint()
	cfg := t.cl.cfg
	i := 0
	for i < len(src) {
		pg, off := t.pageOf(addr + 8*i)
		t.writable(pg)
		n := (cfg.PageSize - off) / 8
		if n > len(src)-i {
			n = len(src) - i
		}
		t.track(pg, off, 8*n)
		for k := 0; k < n; k++ {
			binary.LittleEndian.PutUint64(pg.working[off+8*k:], f64bits(src[i+k]))
		}
		t.markWriter(pg, off, 8*n)
		t.charge(CompCompute, int64(n)*cfg.WriteAccessNs)
		i += n
	}
}

// ReadU32s reads len(dst) uint32s starting at addr.
func (t *Thread) ReadU32s(addr int, dst []uint32) {
	t.safePoint()
	cfg := t.cl.cfg
	i := 0
	for i < len(dst) {
		pg, off := t.pageOf(addr + 4*i)
		t.readable(pg)
		n := (cfg.PageSize - off) / 4
		if n > len(dst)-i {
			n = len(dst) - i
		}
		for k := 0; k < n; k++ {
			dst[i+k] = binary.LittleEndian.Uint32(pg.working[off+4*k:])
		}
		t.charge(CompCompute, int64(n)*cfg.ReadAccessNs)
		i += n
	}
}

// WriteU32s writes src starting at addr.
func (t *Thread) WriteU32s(addr int, src []uint32) {
	t.safePoint()
	cfg := t.cl.cfg
	i := 0
	for i < len(src) {
		pg, off := t.pageOf(addr + 4*i)
		t.writable(pg)
		n := (cfg.PageSize - off) / 4
		if n > len(src)-i {
			n = len(src) - i
		}
		t.track(pg, off, 4*n)
		for k := 0; k < n; k++ {
			binary.LittleEndian.PutUint32(pg.working[off+4*k:], src[i+k])
		}
		t.markWriter(pg, off, 4*n)
		t.charge(CompCompute, int64(n)*cfg.WriteAccessNs)
		i += n
	}
}

func f64bits(f float64) uint64 { return math.Float64bits(f) }

func f64frombits(b uint64) float64 { return math.Float64frombits(b) }

package svm

import (
	"ftsvm/internal/mem"
	"ftsvm/internal/model"
	"ftsvm/internal/proto"
	"ftsvm/internal/sim"
	"ftsvm/internal/vmmc"
)

// pageState is the node-local access state of a shared page.
type pageState uint8

const (
	// pInvalid: the local working copy is stale; access faults and fetches
	// from the page's (primary) home.
	pInvalid pageState = iota
	// pReadOnly: the working copy is valid for reads; the first write
	// creates a twin and starts recording the page in the current interval.
	pReadOnly
	// pWritable: the page is dirty in the current interval and has a twin.
	pWritable
)

// undoRec is a stored pre-image for rolling back one interval's phase-1
// update.
type undoRec struct {
	interval int32
	undo     *mem.Diff
}

// fetchWaiter is a deferred reply to a remote fetch: the home's copy has
// not yet reached the version the fault needs (its diffs are still in
// flight), so the reply is held until the missing diffs are applied.
type fetchWaiter struct {
	d    *vmmc.Delivery
	need proto.VectorTime
}

// page is one shared page as seen by one node: the working copy all local
// threads read and write, plus the home-side copies this node maintains for
// its home pages.
type page struct {
	id    int
	pt    *pageTable
	state pageState

	working []byte // local copy; nil until first touched
	twin    []byte // pre-write snapshot while pWritable

	// dirtyMask records which ChunkBytes-granular chunks were written
	// since the twin was created (one bit per chunk; see internal/mem
	// tracking). When tracking is on, the twin is partial: it holds valid
	// pre-write data only inside dirty chunks, snapshotted lazily at the
	// first write to each chunk. nil when tracking is off (FullTwins),
	// in which case the twin is a complete page copy and diffs full-scan.
	dirtyMask []uint64

	// maskFull means every chunk of dirtyMask is marked: the write fault
	// took a complete upfront twin (dense-writer path), so per-write chunk
	// snapshotting is a no-op for this interval.
	maskFull bool

	// denseHint records that this page's previous commit had dirtied nearly
	// every chunk. The next write fault then snapshots the whole page at
	// once instead of chunk-by-chunk: one page-sized copy is cheaper than
	// dozens of chunk copies plus per-write mask probes, and pre-marking
	// clean chunks cannot change the diff (their contents equal the twin).
	denseHint bool

	// dirtyTwin preserves a dirty page's twin across an invalidation
	// (false sharing: a concurrent remote writer updated the page while we
	// hold uncommitted local writes). The next access fetches the home
	// copy and replays our local diff over it. stashMask is the dirty
	// mask that travels with the stashed pair.
	dirtyTwin    []byte
	dirtyWorking []byte
	stashMask    []uint64

	// seenCommit dedups this page within one commitInterval pass (the
	// dirty list may hold duplicates from fetch-merge re-listing).
	seenCommit int64

	// reqVer is the version this node must observe on its next fetch,
	// accumulated from write notices at acquires and barriers.
	reqVer proto.VectorTime

	// homeStale marks a base-mode home page whose notified remote diffs
	// have not all arrived yet; the home's own next access waits.
	homeStale bool

	// writers tracks the local thread that last wrote each word since the
	// twin was taken (extended-protocol SMP runs only; nil otherwise).
	writers []int16

	// lastLocalItv is the most recent local interval that committed
	// updates to this page. A fetch must wait until the home has applied
	// it, or a node that re-fetches a page loses its *own* in-flight
	// updates (write notices never cover one's own intervals).
	lastLocalItv int32

	// Home-side state. In base mode the working copy doubles as the home
	// copy and baseVer tracks its version. In FT mode the primary home
	// keeps committed (+commitVer) and the secondary home keeps tentative
	// (+tentVer); remote diffs are never applied to working copies.
	baseVer   proto.VectorTime
	committed []byte
	commitVer proto.VectorTime
	tentative []byte
	tentVer   proto.VectorTime

	// locked marks a page committed by an outstanding release (extended
	// protocol): local faults stall until the release completes.
	locked   bool
	lockGate sim.Gate

	// verGate is broadcast whenever a home copy's version advances, waking
	// local fetches waiting for in-flight diffs.
	verGate sim.Gate

	// waiters are deferred remote fetch replies (home side).
	waiters []fetchWaiter

	// undoFrom holds, per source node, the pre-image of the latest
	// phase-1 diff that arrived from a releaser that is also the page's
	// primary home; recovery uses it to roll the tentative copy back when
	// that releaser dies before saving its timestamp.
	undoFrom map[int]undoRec

	// fetching de-duplicates concurrent local faults on the same page.
	fetching *sim.Future
}

// pageTable is a node's software page table, shared by all threads on the
// node (SMP semantics: one address space per node).
type pageTable struct {
	node  *node
	pages []*page
}

func newPageTable(n *node, npages, nnodes int) *pageTable {
	pt := &pageTable{node: n, pages: make([]*page, npages)}
	for i := range pt.pages {
		pt.pages[i] = &page{
			id:     i,
			pt:     pt,
			reqVer: proto.NewVector(nnodes),
		}
	}
	return pt
}

// --- Page-buffer pool ---
//
// Twins, working copies, and fetch-reply payloads are all PageSize bytes
// and churn at every write fault, fetch, and interval commit; recycling
// them keeps the steady-state fault and commit paths allocation-free.
// Each node owns its own stacks, so every pool access is lane-local under
// the parallel engine (buffers may migrate between node pools over their
// lifetime — invisible to the protocol, since contents are always
// (re)initialized on get), and concurrent RunGrid simulations never
// contend.

// getPageBuf returns a page-size buffer with arbitrary contents.
func (n *node) getPageBuf() []byte {
	if k := len(n.pageFree); k > 0 {
		b := n.pageFree[k-1]
		n.pageFree[k-1] = nil
		n.pageFree = n.pageFree[:k-1]
		return b
	}
	return make([]byte, n.cl.cfg.PageSize)
}

// getPageBufZero returns a zeroed page buffer: fresh working copies must
// read as zero-initialized shared memory.
func (n *node) getPageBufZero() []byte {
	b := n.getPageBuf()
	clear(b)
	return b
}

// clonePageBuf returns a pooled copy of src (which must be page-size).
func (n *node) clonePageBuf(src []byte) []byte {
	b := n.getPageBuf()
	copy(b, src)
	return b
}

// putPageBuf recycles a page buffer. The caller must guarantee no other
// reference survives. nil and wrong-size buffers are dropped.
func (n *node) putPageBuf(b []byte) {
	if len(b) != n.cl.cfg.PageSize {
		return
	}
	n.pageFree = append(n.pageFree, b)
}

// getMaskBuf returns a zeroed dirty-chunk mask sized for one page.
func (n *node) getMaskBuf() []uint64 {
	if k := len(n.maskFree); k > 0 {
		m := n.maskFree[k-1]
		n.maskFree[k-1] = nil
		n.maskFree = n.maskFree[:k-1]
		clear(m)
		return m
	}
	return make([]uint64, mem.MaskWords(n.cl.cfg.PageSize))
}

// putMaskBuf recycles a dirty-chunk mask.
func (n *node) putMaskBuf(m []uint64) {
	if m == nil {
		return
	}
	n.maskFree = append(n.maskFree, m)
}

// fetchNeed returns the version a fetch by node me must observe: the
// accumulated write notices plus this node's own last committed interval
// for the page.
func (pg *page) fetchNeed(me int) proto.VectorTime {
	need := pg.reqVer.Clone()
	if need[me] < pg.lastLocalItv {
		need[me] = pg.lastLocalItv
	}
	return need
}

// ensureWorking lazily allocates the working copy from the cluster pool.
func (pg *page) ensureWorking() []byte {
	if pg.working == nil {
		pg.working = pg.pt.node.getPageBufZero()
	}
	return pg.working
}

// initHome sets up home-side storage for this node's home pages.
func (pt *pageTable) initHome(pid int, role proto.Role, ft bool, size, nnodes int) {
	pg := pt.pages[pid]
	if !ft {
		if pg.baseVer == nil {
			pg.baseVer = proto.NewVector(nnodes)
		}
		// Base-mode home pages are always valid at their home.
		pg.ensureWorking()
		if pg.state == pInvalid {
			pg.state = pReadOnly
		}
		return
	}
	switch role {
	case proto.Primary:
		if pg.committed == nil {
			pg.committed = pt.node.getPageBufZero()
			pg.commitVer = proto.NewVector(nnodes)
		}
	case proto.Secondary:
		if pg.tentative == nil {
			pg.tentative = pt.node.getPageBufZero()
			pg.tentVer = proto.NewVector(nnodes)
		}
	}
}

// applyDiffToCopy applies a remote diff to one of the home copies and
// advances that copy's version. It wakes any fetch waiter whose required
// version is now covered. Runs in engine context (NI-applied, no host CPU).
func (pg *page) applyDiff(copyBuf []byte, ver proto.VectorTime, src int, interval int32, d *mem.Diff) {
	d.Apply(copyBuf)
	if ver[src] < interval {
		ver[src] = interval
	}
}

// serveWaiters replies to deferred fetches now satisfied by ver over buf.
// Reply payloads come from the page pool; the requester installs them as
// its working copy (or recycles them on a stale reply).
func (pg *page) serveWaiters(ver proto.VectorTime, buf []byte, replySize int) {
	kept := pg.waiters[:0]
	n := pg.pt.node
	for _, w := range pg.waiters {
		if ver.Covers(w.need) {
			rep := &fetchReply{Page: pg.id, Data: n.clonePageBuf(buf), Ver: ver.Clone()}
			sz := replySize
			if n.cl.cfg.VTCodec == model.VTDelta {
				// The legacy replySize is a flat approximation; the delta
				// codec must cost (and advance) the real link context.
				sz = n.msgWire(w.d.Src, rep)
			}
			w.d.Reply(rep, sz)
		} else {
			kept = append(kept, w)
		}
	}
	pg.waiters = kept
}

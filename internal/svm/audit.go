package svm

import (
	"fmt"

	"ftsvm/internal/proto"
)

// auditor is the online invariant checker: an opt-in hook at the
// engine's event boundaries that asserts, after every simulated event,
// the protocol invariants the paper's fault tolerance rests on. A
// violation stops the engine at the faulting event and surfaces from
// Cluster.Run — instead of a replica divergence being discovered by a
// post-run VerifyReplicas three barriers after the bug.
//
// Invariants checked:
//
//   - single-holder: at most one live node owns any application lock,
//     under all three lock algorithms;
//   - lock-replication (ModeFT): when a node transitions to holding a
//     lock it acquired remotely, its owner element has already reached
//     the secondary home's vector. Both the polling and the NIC lock
//     satisfy this through the per-sender FIFO of the network (the
//     replication is enqueued before the message whose delivery grants
//     the lock), so recovery from either home replica never resurrects
//     a grant-in-flight as a free lock;
//   - page-state structure: a writable page has a twin and a working
//     copy, a read-only page has a working copy, and stashed dirty
//     copies (false sharing) come in pairs on invalid pages;
//   - page-version monotonicity (stride 1 only): a page's required
//     version vector never regresses outside recovery (the only legal
//     decrease is recovery's roll-back of the dead node's element).
//     Several page-state transitions can coalesce inside one event —
//     a fault and the following write promotion run in a single
//     process slice — so per-state transition edges are not observable
//     at event boundaries, but a version regression always is;
//   - two-live-replicas (ModeFT, outside recovery): every page's and
//     every lock's two homes are distinct live nodes and the lock
//     replicas exist at both.
type auditor struct {
	cl     *Cluster
	stride int // page sweeps every stride events (locks every event)
	tick   int

	prevHeld [][]bool // [node][lock]: node owned lock at last boundary
	// prevReq ([node][page]: reqVer at last sweep) backs the
	// version-monotonicity invariant, which only runs at stride 1 — so
	// the outer structure exists only then, and the per-page vectors are
	// allocated on first touch. Eager allocation was one NewVector(N)
	// per node per page: O(N² x pages) setup memory that a 512-node
	// strided sweep paid without ever reading it. A nil entry means "no
	// sweep has seen this page yet", equivalent to the zero vector it
	// lazily becomes (reqVer starts at zero and never goes below).
	prevReq [][]proto.VectorTime
	// wasCalm is the calm flag at the previous page sweep, so the sweep
	// can recognize the boundary that completes a recovery (see
	// checkPages: legal roll-backs may first surface exactly there).
	wasCalm bool
}

// EnableAuditor attaches the online invariant auditor. stride controls
// how often the sweeps run: 1 checks after every event and additionally
// enables the version-monotonicity invariant; larger strides sample
// both the lock sweep (O(locks x N) per check) and the page sweep
// (O(pages x N)), which long svmcheck schedules and the 512-node smoke
// use to bound cost. Call before Run.
func (cl *Cluster) EnableAuditor(stride int) {
	if stride < 1 {
		stride = 1
	}
	a := &auditor{cl: cl, stride: stride, wasCalm: true}
	a.prevHeld = make([][]bool, cl.cfg.Nodes)
	for i := range a.prevHeld {
		a.prevHeld[i] = make([]bool, cl.lockHomes.Items())
	}
	if stride == 1 {
		a.prevReq = make([][]proto.VectorTime, cl.cfg.Nodes)
		for i := range a.prevReq {
			a.prevReq[i] = make([]proto.VectorTime, cl.pageHomes.Items())
		}
	}
	cl.aud = a
	cl.eng.SetAfterEvent(a.afterEvent)
}

// afterEvent runs in engine context after every executed event. It
// performs no scheduling and charges no virtual time; on the first
// violation it records the error and stops the engine.
func (a *auditor) afterEvent() {
	if a.cl.auditErr != nil {
		return
	}
	a.tick++
	if a.tick%a.stride != 0 {
		return
	}
	err := a.checkLocks()
	if err == nil {
		err = a.checkPages()
	}
	if err != nil {
		a.fail(err)
	}
}

func (a *auditor) fail(err error) {
	a.cl.auditErr = fmt.Errorf("svm: invariant violation at t=%dns: %w", a.cl.eng.Now(), err)
	a.cl.eng.Stop()
}

// limbo reports whether a node is dead but not yet excluded: the window
// between a kill and the completed recovery, during which home maps
// still reference the dead node and replica invariants are legitimately
// broken (that is what recovery repairs).
func (a *auditor) limbo() bool {
	for _, n := range a.cl.nodes {
		if n.dead && !n.excluded {
			return true
		}
	}
	return false
}

func (a *auditor) checkLocks() error {
	cl := a.cl
	ft := cl.opt.Mode == ModeFT
	steady := ft && !cl.rec.pending && !a.limbo()
	for l := 0; l < cl.lockHomes.Items(); l++ {
		holder := -1
		for _, n := range cl.nodes {
			if n.dead {
				a.prevHeld[n.id][l] = false
				continue
			}
			ol := n.owned[l]
			held := ol != nil && ol.held
			if held {
				if holder >= 0 {
					return fmt.Errorf("single-holder: lock %d held by nodes %d and %d", l, holder, n.id)
				}
				holder = n.id
				if steady && !a.prevHeld[n.id][l] && cl.lockHomes.Primary(l) != n.id {
					// Newly granted from a remote primary home: the
					// owner element must already sit in every secondary
					// replica (see the package comment above).
					for s := 1; s < cl.lockHomes.Degree(); s++ {
						sec := cl.lockHomes.Replica(l, s)
						lh := cl.nodes[sec].lockHomesState[l]
						if lh == nil || !lh.vec[n.id] {
							return fmt.Errorf("lock-replication: lock %d granted to node %d before its owner element reached secondary home %d", l, n.id, sec)
						}
					}
				}
			}
			a.prevHeld[n.id][l] = held
		}
		if steady {
			rs := cl.lockHomes.Replicas(l)
			for a := range rs {
				for b := a + 1; b < len(rs); b++ {
					if rs[a] == rs[b] {
						return fmt.Errorf("two-live-replicas: lock %d has two homes on node %d", l, rs[a])
					}
				}
			}
			for _, h := range rs {
				if cl.nodes[h].dead {
					return fmt.Errorf("two-live-replicas: lock %d homed on dead node %d", l, h)
				}
				if cl.nodes[h].lockHomesState[l] == nil {
					return fmt.Errorf("two-live-replicas: lock %d has no replica state at home %d", l, h)
				}
			}
		}
	}
	return nil
}

func (a *auditor) checkPages() error {
	cl := a.cl
	calm := !cl.rec.pending && !a.limbo() // no recovery in flight
	// The event slice that completes a recovery can also contain the
	// §4.5.2 roll-back clamp of the dead node's reqVer element
	// (globalSync mutates state without yielding, and migrateThreads
	// waits on nothing when the victim's threads all finished), so the
	// first boundary at which the clamp is observable may already be
	// calm. Forgive a regression of an excluded node's element at the
	// not-calm -> calm edge only; every other element, and every later
	// calm boundary, stays armed.
	edge := calm && !a.wasCalm
	a.wasCalm = calm
	steady := cl.opt.Mode == ModeFT && calm
	for _, n := range cl.nodes {
		if n.dead {
			continue
		}
		for pid, pg := range n.pt.pages {
			switch pg.state {
			case pWritable:
				if pg.twin == nil || pg.working == nil {
					return fmt.Errorf("page-state: node %d page %d writable without twin/working", n.id, pid)
				}
			case pReadOnly:
				if pg.working == nil {
					return fmt.Errorf("page-state: node %d page %d read-only without working copy", n.id, pid)
				}
			}
			if pg.dirtyWorking != nil && (pg.dirtyTwin == nil || pg.state != pInvalid) {
				return fmt.Errorf("page-state: node %d page %d has an inconsistent dirty stash (state=%d)", n.id, pid, pg.state)
			}
			// Tracking structure: a twin and its dirty mask travel
			// together (partial twins are meaningless without the mask
			// saying which chunks are valid), and vice versa.
			if cl.tracked {
				if (pg.twin != nil) != (pg.dirtyMask != nil) {
					return fmt.Errorf("page-state: node %d page %d twin/dirty-mask mismatch (twin=%v mask=%v)",
						n.id, pid, pg.twin != nil, pg.dirtyMask != nil)
				}
				if (pg.dirtyTwin != nil) != (pg.stashMask != nil) {
					return fmt.Errorf("page-state: node %d page %d stashed twin/mask mismatch (twin=%v mask=%v)",
						n.id, pid, pg.dirtyTwin != nil, pg.stashMask != nil)
				}
			} else if pg.dirtyMask != nil || pg.stashMask != nil {
				return fmt.Errorf("page-state: node %d page %d carries a dirty mask with tracking off", n.id, pid)
			}
			if a.stride == 1 {
				prev := a.prevReq[n.id][pid]
				if prev == nil {
					prev = proto.NewVector(cl.cfg.Nodes)
					a.prevReq[n.id][pid] = prev
				}
				for src, v := range pg.reqVer {
					// Regressions are legal only inside recovery (the
					// roll-back of the dead node's element, §4.5.2) —
					// first observable, at the event granularity the
					// auditor runs at, as late as the completion edge.
					if v < prev[src] && calm && !(edge && cl.nodes[src].excluded) {
						return fmt.Errorf("page-transition: node %d page %d required version regressed (node %d element %d -> %d)",
							n.id, pid, src, prev[src], v)
					}
					prev[src] = v
				}
			}
		}
	}
	if steady {
		for p := 0; p < cl.pageHomes.Items(); p++ {
			rs := cl.pageHomes.Replicas(p)
			for a := range rs {
				if cl.nodes[rs[a]].dead {
					return fmt.Errorf("two-live-replicas: page %d homed on a dead node (%v)", p, rs)
				}
				for b := a + 1; b < len(rs); b++ {
					if rs[a] == rs[b] {
						return fmt.Errorf("two-live-replicas: page %d has two homes on node %d", p, rs[a])
					}
				}
			}
		}
	}
	return nil
}

// auditHolders returns the live nodes currently owning lock l — test
// and debugging support for the single-holder invariant.
func (cl *Cluster) auditHolders(l int) []int {
	var out []int
	for _, n := range cl.nodes {
		if n.dead {
			continue
		}
		if ol := n.owned[l]; ol != nil && ol.held {
			out = append(out, n.id)
		}
	}
	return out
}

package svm

import (
	"testing"

	"ftsvm/internal/model"
)

// Chaos regressions: deterministic network degradation aimed at the
// protocol windows where lost or late messages historically hid bugs.
// Every run uses honest probe-based failure detection, the online
// invariant auditor at stride 1, and ends with the application's own
// result check plus a byte-level replica audit.

// phaseClock records the virtual times of one node's release phase-1 and
// phase-2 milestones for a given release sequence number.
type phaseClock struct {
	cl             *Cluster
	node           int
	seq            int64
	phase1, phase2 int64
}

func (pc *phaseClock) Event(e TraceEvent) {
	if e.Node != pc.node || e.Seq != pc.seq {
		return
	}
	switch e.Kind {
	case "release.phase1":
		if pc.phase1 == 0 {
			pc.phase1 = pc.cl.Engine().Now()
		}
	case "release.phase2":
		if pc.phase2 == 0 {
			pc.phase2 = pc.cl.Engine().Now()
		}
	}
}

// chaosCluster builds the 4-node counter workload in FT mode with honest
// detection, full-stride auditing, and the given chaos configuration.
func chaosCluster(t *testing.T, chaos model.Chaos, algo LockAlgo, body func(*Thread), tracer Tracer) *Cluster {
	t.Helper()
	cfg := model.Default()
	cfg.Nodes = 4
	cfg.Detection = model.DetectProbe
	cfg.Chaos = chaos
	cl, err := New(Options{
		Config: cfg, Mode: ModeFT, LockAlgo: algo,
		Pages: 8, Locks: 1, Body: body, Tracer: tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.EnableFlightRecorder(64)
	cl.EnableAuditor(1)
	return cl
}

func finishChaosRun(t *testing.T, cl *Cluster, iters int) {
	t.Helper()
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if !cl.Finished() {
		t.Fatal("not all threads finished under chaos")
	}
	checkCounter(t, cl, uint64(4*iters))
	verifyReplicaInvariants(t, cl)
	for i := 0; i < 4; i++ {
		if cl.Network().ConfirmedDead(i) {
			t.Fatalf("chaos (not a failure) got node %d confirmed dead", i)
		}
	}
}

// TestChaosBurstAcrossReleasePhases: a total-loss burst window placed to
// span one release's phase-1 / phase-2 boundary. Every diff and ack in
// that window is dropped and must be recovered by retransmission; the
// two-phase commit must neither lose the interval nor apply it twice.
// Pass one records where the boundary falls; pass two drops packets
// across it.
func TestChaosBurstAcrossReleasePhases(t *testing.T) {
	const iters = 8
	clock := &phaseClock{node: 1, seq: 3}
	clean := chaosCluster(t, model.Chaos{BurstSrc: -1, BurstDst: -1},
		LockPolling, counterBody(iters), clock)
	clock.cl = clean
	finishChaosRun(t, clean, iters)
	if clock.phase1 == 0 || clock.phase2 <= clock.phase1 {
		t.Fatalf("did not observe the phase boundary: phase1=%d phase2=%d", clock.phase1, clock.phase2)
	}

	const margin = 5_000 // ns on each side of the boundary window
	chaos := model.Chaos{
		Enabled:      true,
		Seed:         31,
		BurstStartNs: clock.phase1 - margin,
		BurstLenNs:   clock.phase2 - clock.phase1 + 2*margin,
		BurstSrc:     -1, BurstDst: -1, // one-shot, all links
	}
	cl := chaosCluster(t, chaos, LockPolling, counterBody(iters), nil)
	finishChaosRun(t, cl, iters)
	if cl.Network().Retransmits == 0 {
		t.Fatal("burst window dropped nothing — boundary not exercised")
	}
}

// TestChaosGrayLockHomeDuringHandoff: the primary home of the NIC-level
// lock runs on a gray (slow) NIC while every thread hammers the lock.
// Grant and handoff messages crawl but must not be mistaken for a failure
// (no false confirmation) and must not corrupt lock state.
func TestChaosGrayLockHomeDuringHandoff(t *testing.T) {
	const iters = 8
	// Learn the lock's primary home from an identically-shaped cluster.
	probe := chaosCluster(t, model.Chaos{BurstSrc: -1, BurstDst: -1},
		LockNIC, counterBody(iters), nil)
	home := probe.lockHomes.Primary(0)

	chaos := model.Chaos{
		Enabled:   true,
		Seed:      32,
		GrayNodes: []int{home},
		GrayFactor: 6,
		BurstSrc:  -1, BurstDst: -1,
	}
	cl := chaosCluster(t, chaos, LockNIC, counterBody(iters), nil)
	finishChaosRun(t, cl, iters)
	if cl.Network().FalseSuspicions > 0 && cl.Network().ConfirmedDead(home) {
		t.Fatal("gray lock home was confirmed dead")
	}
}

// barrierCounterBody interleaves every lock-protected increment with a
// full barrier, so each iteration crosses a master release broadcast.
func barrierCounterBody(iters int) func(*Thread) {
	return func(t *Thread) {
		st := &counterState{}
		t.Setup(st)
		for st.Iter < iters {
			t.Acquire(0)
			v := t.ReadU64(0)
			t.WriteU64(0, v+1)
			st.Iter++
			t.Release(0)
			t.Barrier()
		}
	}
}

// TestChaosJitterAcrossBarrierBroadcast: heavy per-link latency jitter
// while the workload barriers every iteration. The barrier master's
// release broadcast arrives at wildly different times per node; epochs
// must stay aligned and per-sender FIFO must hold (the auditor aborts on
// any ordering violation).
func TestChaosJitterAcrossBarrierBroadcast(t *testing.T) {
	const iters = 6
	chaos := model.Chaos{
		Enabled:  true,
		Seed:     33,
		JitterNs: 150_000, // ~30x the link latency
		BurstSrc: -1, BurstDst: -1,
	}
	cl := chaosCluster(t, chaos, LockPolling, barrierCounterBody(iters), nil)
	finishChaosRun(t, cl, iters)
}

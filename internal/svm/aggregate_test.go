package svm

import (
	"testing"

	"ftsvm/internal/model"
)

// runAggregate builds a cluster with batched diff propagation enabled.
func runAggregate(t *testing.T, mode Mode, body func(*Thread)) *Cluster {
	t.Helper()
	cfg := model.Default()
	cfg.Nodes = 4
	cl, err := New(Options{
		Config: cfg, Mode: mode, Pages: 8, Locks: 1,
		Body: body, AggregateDiffs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if !cl.Finished() {
		t.Fatal("threads did not finish")
	}
	return cl
}

func TestAggregateDiffsCounter(t *testing.T) {
	for _, mode := range []Mode{ModeBase, ModeFT} {
		t.Run(mode.String(), func(t *testing.T) {
			cl := runAggregate(t, mode, counterBody(10))
			checkCounter(t, cl, 40)
		})
	}
}

// TestAggregateDiffsMultiPage exercises batching proper: each critical
// section touches several pages homed at different nodes, so a release
// produces one batch per home instead of one message per page.
func TestAggregateDiffsMultiPage(t *testing.T) {
	body := func(th *Thread) {
		st := &counterState{}
		th.Setup(st)
		for st.Iter < 6 {
			th.Acquire(0)
			for p := 0; p < 6; p++ {
				addr := p*4096 + th.ID()*8
				th.WriteU64(addr, th.ReadU64(addr)+1)
			}
			st.Iter++
			th.Release(0)
		}
		th.Barrier()
	}
	cl := runAggregate(t, ModeFT, body)
	for p := 0; p < 6; p++ {
		for tid := 0; tid < 4; tid++ {
			if got := cl.PeekU64(p*4096 + tid*8); got != 6 {
				t.Fatalf("page %d slot %d = %d, want 6", p, tid, got)
			}
		}
	}
}

// TestAggregateReducesMessages compares message counts with and without
// batching on the multi-page workload.
func TestAggregateReducesMessages(t *testing.T) {
	count := func(agg bool) int64 {
		cfg := model.Default()
		cfg.Nodes = 4
		cl, err := New(Options{
			Config: cfg, Mode: ModeFT, Pages: 8, Locks: 1,
			AggregateDiffs: agg,
			// Barrier-only body: the message count is then dominated by
			// the deterministic diff traffic, not by timing-sensitive
			// lock-polling retries.
			Body: func(th *Thread) {
				st := &counterState{}
				th.Setup(st)
				for st.Iter < 6 {
					for p := 0; p < 6; p++ {
						addr := p*4096 + th.ID()*8
						th.WriteU64(addr, uint64(st.Iter+1))
					}
					st.Iter++
					th.Barrier()
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Run(); err != nil {
			t.Fatal(err)
		}
		var msgs int64
		for i := 0; i < cfg.Nodes; i++ {
			msgs += cl.Network().Endpoint(i).Stats().MsgsSent
		}
		return msgs
	}
	plain, agg := count(false), count(true)
	if agg >= plain {
		t.Fatalf("aggregation did not reduce messages: %d vs %d", agg, plain)
	}
}

// TestAggregateDiffsSurviveFailure injects a failure during phase 1 with
// batching on: the batched undo pre-images must still roll back correctly.
func TestAggregateDiffsSurviveFailure(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 4
	const iters = 8
	cl, err := New(Options{
		Config: cfg, Mode: ModeFT, Pages: 8, Locks: 1,
		AggregateDiffs: true,
		Body:           counterBody(iters),
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := &killTracer{cl: cl, kind: "release.phase1", node: 1, seq: 3}
	cl.opt.Tracer = tr
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if !tr.done {
		t.Skip("kill point never reached")
	}
	checkCounter(t, cl, 4*iters)
	verifyReplicaInvariants(t, cl)
}

// TestUnsafeSinglePhaseFailureFree: the ablation mode must be exact in
// failure-free runs and cheaper than the two-phase pipeline.
func TestUnsafeSinglePhaseFailureFree(t *testing.T) {
	run := func(unsafe bool) *Cluster {
		cfg := model.Default()
		cfg.Nodes = 4
		cl, err := New(Options{
			Config: cfg, Mode: ModeFT, Pages: 8, Locks: 1,
			Body: counterBody(10), UnsafeSinglePhase: unsafe,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Run(); err != nil {
			t.Fatal(err)
		}
		checkCounter(t, cl, 40)
		return cl
	}
	two := run(false).ExecTime()
	one := run(true).ExecTime()
	if one >= two {
		t.Fatalf("single-phase (%d) not cheaper than two-phase (%d)", one, two)
	}
}

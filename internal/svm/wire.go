package svm

import (
	"ftsvm/internal/model"
	"ftsvm/internal/proto"
)

// Per-link delta wire accounting for vector timestamps (model.VTDelta).
//
// The payloads on the simulated wire are Go pointers — sizes are modeled,
// not marshaled — so the codec here is pure accounting: msgWire re-costs
// each vector a message carries against the sender's per-destination link
// context, exactly mirroring what proto.AppendDelta would emit (the real
// codec is exercised by the proto fuzz harness). Soundness rests on two
// vmmc properties: per-sender FIFO delivery (arrival times are clamped
// monotone per sender) and NIC retransmission masking losses — together
// they guarantee the receiver decodes every message on a link in send
// order, so "last vector shipped on this link" is shared context. A
// sender's death simply truncates its links; survivors never decode
// another message from it.

// wireMsg is any protocol message with a modeled flat wire size.
type wireMsg interface{ wireBytes() int }

// vtCarrier is a message whose flat size includes vecWire-encoded vector
// timestamps that the delta codec can re-cost per link.
type vtCarrier interface {
	wireMsg
	// vectorTimes returns the vectors the flat encoding charges vecWire
	// for, in a fixed order (both link ends advance identically).
	vectorTimes() []proto.VectorTime
}

func (m *fetchReq) vectorTimes() []proto.VectorTime        { return []proto.VectorTime{m.Need} }
func (m *fetchReply) vectorTimes() []proto.VectorTime      { return []proto.VectorTime{m.Ver} }
func (m *saveTSMsg) vectorTimes() []proto.VectorTime       { return []proto.VectorTime{m.TS, m.Snap.VT} }
func (m *ckptMsg) vectorTimes() []proto.VectorTime         { return []proto.VectorTime{m.Snap.VT} }
func (m *lockReadReply) vectorTimes() []proto.VectorTime   { return []proto.VectorTime{m.VT} }
func (m *lockRelease) vectorTimes() []proto.VectorTime     { return []proto.VectorTime{m.VT} }
func (m *nicTestSetReply) vectorTimes() []proto.VectorTime { return []proto.VectorTime{m.VT} }
func (m *qlGrant) vectorTimes() []proto.VectorTime         { return []proto.VectorTime{m.VT} }
func (m *barArrive) vectorTimes() []proto.VectorTime       { return []proto.VectorTime{m.VT} }
func (m *barRelease) vectorTimes() []proto.VectorTime      { return []proto.VectorTime{m.VT} }
func (m *savedReply) vectorTimes() []proto.VectorTime      { return []proto.VectorTime{m.TS} }

// msgWire returns the modeled wire size of m as sent from this node to
// dst. Under the full codec (the default) it is exactly m.wireBytes().
// Under the delta codec every vector the message carries is re-costed
// against the (this node, dst) link context, which advances to the sent
// values — so the caller must invoke msgWire exactly once per message
// actually handed to the NIC.
func (n *node) msgWire(dst int, m wireMsg) int {
	sz := m.wireBytes()
	if n.cl.cfg.VTCodec != model.VTDelta || dst == n.id {
		return sz
	}
	vc, ok := m.(vtCarrier)
	if !ok {
		return sz
	}
	for _, vt := range vc.vectorTimes() {
		if vt == nil {
			continue
		}
		sz += n.deltaWire(dst, vt) - vecWire(len(vt))
	}
	return sz
}

// deltaWire costs one vector against the link context to dst and advances
// the context. The context starts at the zero vector — the shared initial
// state of every node.
func (n *node) deltaWire(dst int, vt proto.VectorTime) int {
	if n.vtLink == nil {
		n.vtLink = make([]proto.VectorTime, len(n.cl.nodes))
	}
	last := n.vtLink[dst]
	if last == nil {
		last = proto.NewVector(len(vt))
		n.vtLink[dst] = last
	}
	sz := proto.DeltaWireBytes(last, vt)
	copy(last, vt)
	return sz
}

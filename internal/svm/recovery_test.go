package svm

import (
	"testing"

	"ftsvm/internal/model"
)

// killAfterNthRelease kills node victim right after its n-th release
// completes milestone kind.
func killAfterNthRelease(cl *Cluster, kind string, victim int, n int64) *killTracer {
	tr := &killTracer{cl: cl, kind: kind, node: victim, seq: n}
	cl.opt.Tracer = tr
	return tr
}

// homedCounterBody increments the word at addr under lock 0.
func homedCounterBody(addr, iters int) func(*Thread) {
	return func(t *Thread) {
		st := &counterState{}
		t.Setup(st)
		for st.Iter < iters {
			t.Acquire(0)
			v := t.ReadU64(addr)
			t.WriteU64(addr, v+1)
			st.Iter++
			t.Release(0)
		}
		t.Barrier()
	}
}

// TestRollForwardSelfSecondaryStash targets the stash path: the counter
// page's *secondary* home is the victim, so the victim's phase-1 updates
// apply locally and their only off-node copy is the diff stash in the
// saveTS deposit. Killing right after the timestamp save forces a
// roll-forward that must rebuild the committed copy from the stash.
func TestRollForwardSelfSecondaryStash(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 3
	const iters = 6
	cl, err := New(Options{
		Config: cfg, Mode: ModeFT, Pages: 2, Locks: 1,
		// Page 0: primary home 0, secondary home 1 (the initial secondary
		// is primary+1). Victim below is node 1.
		HomeAssign: func(p int) int { return 0 },
		Body:       homedCounterBody(0, iters),
	})
	if err != nil {
		t.Fatal(err)
	}
	if cl.pageHomes.Secondary(0) != 1 {
		t.Fatalf("layout assumption broken: secondary = %d", cl.pageHomes.Secondary(0))
	}
	tr := killAfterNthRelease(cl, "release.savets", 1, 3)
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if !tr.done {
		t.Skip("victim never reached the target release")
	}
	if got := cl.PeekU64(0); got != 3*iters {
		t.Fatalf("counter = %d, want %d (stash roll-forward lost updates)", got, 3*iters)
	}
	verifyReplicaInvariants(t, cl)
}

// TestRollBackPrimaryHomeUndo targets the undo path: the counter page's
// *primary* home is the victim, so its committed copy (the roll-back
// source the paper assumes) dies with it. Killing after phase 1 but
// before the timestamp save forces a roll-back of the tentative copy via
// the shipped pre-image.
func TestRollBackPrimaryHomeUndo(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 3
	const iters = 6
	cl, err := New(Options{
		Config: cfg, Mode: ModeFT, Pages: 2, Locks: 1,
		// Page 0: primary home 1 — the victim.
		HomeAssign: func(p int) int { return 1 },
		Body:       homedCounterBody(0, iters),
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := killAfterNthRelease(cl, "release.phase1", 1, 3)
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if !tr.done {
		t.Skip("victim never reached the target release")
	}
	if got := cl.PeekU64(0); got != 3*iters {
		t.Fatalf("counter = %d, want %d (undo roll-back corrupted the page)", got, 3*iters)
	}
	verifyReplicaInvariants(t, cl)
}

// TestLiveHolderKeepsLockThroughRecovery: a live node is inside a critical
// section when an unrelated node dies; after recovery the rebuilt lock
// state must still show the live holder, and its eventual release must
// work against the (possibly re-homed) lock.
func TestLiveHolderKeepsLockThroughRecovery(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 4
	type st struct{ Done bool }
	holderEntered := false
	cl, err := New(Options{
		Config: cfg, Mode: ModeFT, Pages: 2, Locks: 4,
		Body: func(th *Thread) {
			s := &st{}
			th.Setup(s)
			if th.ID() == 0 && !s.Done {
				// Hold lock 1 across the failure window.
				th.Acquire(1)
				holderEntered = true
				th.Compute(20_000_000) // 20 ms inside the critical section
				v := th.ReadU64(0)
				th.WriteU64(0, v+1)
				s.Done = true
				th.Release(1)
			} else if !s.Done {
				th.Compute(1_000_000)
				s.Done = true
			}
			th.Barrier()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Lock 1's homes are nodes 1 (primary) and 2 (secondary); kill the
	// primary while thread 0 (node 0) holds the lock.
	cl.Engine().At(5_000_000, func() { cl.KillNode(1) })
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if !holderEntered {
		t.Fatal("holder never entered the critical section")
	}
	if !cl.Finished() {
		t.Fatal("threads did not finish")
	}
	if got := cl.PeekU64(0); got != 1 {
		t.Fatalf("critical-section write lost: %d", got)
	}
	// The rebuilt lock must be free after the release.
	l := cl.nodes[cl.lockHomes.Primary(1)].lockHomesState[1]
	for i, set := range l.vec {
		if set {
			t.Fatalf("lock 1 still shows holder %d after completion", i)
		}
	}
}

// TestRecoveryRestoreTrace: the migrated thread resumes from the newest
// checkpoint (sequence equals the victim's completed releases).
func TestRecoveryRestoreTrace(t *testing.T) {
	cfg := model.Default()
	cfg.Nodes = 4
	var restored int64 = -1
	var victimReleases int64
	cl, err := New(Options{Config: cfg, Mode: ModeFT, Pages: 8, Locks: 1, Body: counterBody(8)})
	if err != nil {
		t.Fatal(err)
	}
	cl.opt.Tracer = tracerFunc(func(e TraceEvent) {
		switch e.Kind {
		case "release.done":
			if e.Node == 2 {
				victimReleases = e.Seq
			}
		case "recovery.restore":
			restored = e.Seq
		}
	})
	cl.Engine().At(4_000_000, func() { cl.KillNode(2) })
	if err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if restored < 0 {
		t.Skip("no checkpoint existed at kill time")
	}
	if restored != victimReleases {
		t.Fatalf("restored snapshot seq %d, victim completed %d releases", restored, victimReleases)
	}
	checkCounter(t, cl, 32)
}

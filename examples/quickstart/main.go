// Quickstart: a shared counter on a fault-tolerant SVM cluster.
//
// Four simulated nodes increment one shared counter under a lock, using
// the paper's extended (fault-tolerant) protocol. Halfway through, one
// node is killed; the cluster detects the failure, recovers (re-homes
// pages and locks, reconciles the replicas, migrates the dead node's
// thread to its backup node), and the final count is still exact.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ftsvm/internal/model"
	"ftsvm/internal/svm"
)

const (
	iters       = 25
	counterAddr = 0 // first word of page 0
	lockID      = 0
)

// state is the thread's resumable checkpoint state: everything needed to
// continue from a synchronization point lives here. The contract: advance
// Iter *before* Release, so the checkpoint taken inside the release
// reflects the completed iteration and a post-failure replay never
// double-increments.
type state struct {
	Iter int
}

func main() {
	cfg := model.Default()
	cfg.Nodes = 4
	cfg.ThreadsPerNode = 1

	opt := svm.Options{
		Config: cfg,
		Mode:   svm.ModeFT, // the paper's extended protocol
		Pages:  4,
		Locks:  1,
		Body: func(t *svm.Thread) {
			st := &state{}
			if t.Setup(st) {
				fmt.Printf("  thread %d resumed on node %d from iteration %d\n",
					t.ID(), t.NodeID(), st.Iter)
			}
			for st.Iter < iters {
				t.Acquire(lockID)
				v := t.ReadU64(counterAddr)
				t.WriteU64(counterAddr, v+1)
				st.Iter++
				t.Release(lockID)
			}
			t.Barrier()
		},
	}

	cl, err := svm.New(opt)
	if err != nil {
		log.Fatal(err)
	}

	// Fail node 2 at 5 ms of virtual time — mid-computation.
	cl.Engine().At(5_000_000, func() {
		fmt.Println("  !! node 2 fails")
		cl.KillNode(2)
	})

	fmt.Println("running 4 nodes x 25 increments with a mid-run failure...")
	if err := cl.Run(); err != nil {
		log.Fatal(err)
	}

	got := cl.PeekU64(counterAddr)
	want := uint64(cfg.Nodes * iters)
	fmt.Printf("final counter: %d (want %d)\n", got, want)
	if got != want {
		log.Fatal("COUNT WRONG — recovery failed")
	}
	fmt.Printf("virtual execution time: %.2f ms\n", float64(cl.ExecTime())/1e6)
	fmt.Println("OK: single-node failure tolerated, not one increment lost or duplicated")
}

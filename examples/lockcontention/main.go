// lockcontention: compare GeNIMA's distributed queue lock against the
// paper's centralized polling lock (§4.3) under increasing contention.
//
// N threads hammer a handful of locks protecting shared counters. For
// each lock algorithm the run reports total execution time and the lock
// wait share — reproducing the paper's observation that the stateless
// polling lock, chosen for its trivial failure recovery, performs at
// least as well as the queuing lock it replaced.
//
// Run: go run ./examples/lockcontention
package main

import (
	"fmt"
	"log"

	"ftsvm/internal/model"
	"ftsvm/internal/svm"
)

const (
	nLocks = 4
	iters  = 40
)

type state struct {
	Iter int
}

func body(t *svm.Thread) {
	st := &state{}
	t.Setup(st)
	for st.Iter < iters {
		l := (t.ID() + st.Iter) % nLocks
		t.Acquire(l)
		addr := l * 8
		t.WriteU64(addr, t.ReadU64(addr)+1)
		t.Compute(2_000) // short critical section
		st.Iter++
		t.Release(l)
	}
	t.Barrier()
}

func run(algo svm.LockAlgo) (*svm.Cluster, error) {
	cfg := model.Default()
	cfg.Nodes = 8
	cl, err := svm.New(svm.Options{
		Config:   cfg,
		Mode:     svm.ModeBase,
		LockAlgo: algo,
		Pages:    4,
		Locks:    nLocks,
		Body:     body,
	})
	if err != nil {
		return nil, err
	}
	if err := cl.Run(); err != nil {
		return nil, err
	}
	return cl, nil
}

func main() {
	fmt.Printf("8 nodes, %d locks, %d lock-protected increments per thread\n\n", nLocks, iters)
	fmt.Printf("%-22s %12s %12s\n", "algorithm", "total ms", "lock-wait ms")
	for _, algo := range []svm.LockAlgo{svm.LockQueue, svm.LockPolling, svm.LockNIC} {
		cl, err := run(algo)
		if err != nil {
			log.Fatal(err)
		}
		// Sanity: every increment must have landed.
		var sum uint64
		for l := 0; l < nLocks; l++ {
			sum += cl.PeekU64(l * 8)
		}
		if want := uint64(8 * iters); sum != want {
			log.Fatalf("%s: counters sum %d, want %d", algo, sum, want)
		}
		bd := cl.AvgBreakdown()
		fmt.Printf("%-22s %12.2f %12.2f\n", algo.String(),
			float64(cl.ExecTime())/1e6, float64(bd.Comp[svm.CompLock])/1e6)
	}
	fmt.Println("\nAll algorithms produce exact counts; the paper adopts the polling")
	fmt.Println("lock because its statelessness makes failure recovery trivial (§4.3);")
	fmt.Println("the NIC test-and-set lock is its §6 future-work refinement.")
}

// smpexactlyonce: demonstrate exactly-once lock-protected updates on SMP
// nodes surviving a failure inside a critical-section window.
//
// Four 2-way SMP nodes run eight threads that each add their thread id
// (+1) into rotating shared accumulators under per-accumulator locks —
// the same read-modify-write pattern as Water-Nsquared's force flush. A
// node is killed right after it saves a release timestamp: the window
// where its releasing thread rolls *forward* while its sibling sits
// mid-critical-section. Without the write-tracking machinery (word
// deferral + the mid-CS point-A skip + roll-aware snapshot selection;
// see DESIGN.md), the sibling's half-done update would either be applied
// twice or lost. The run recovers, finishes, and the final sums are
// checked against the closed form.
//
// Run: go run ./examples/smpexactlyonce
package main

import (
	"fmt"
	"log"

	"ftsvm/internal/model"
	"ftsvm/internal/svm"
)

const (
	nodes = 4
	tpn   = 2
	accs  = 6 // shared accumulators, one lock each
	iters = 12
)

type state struct {
	Iter int
}

type killer struct {
	cl     *svm.Cluster
	killed bool
}

func (k *killer) Event(e svm.TraceEvent) {
	switch e.Kind {
	case "release.savets":
		if !k.killed && e.Node == 2 && e.Seq == 5 {
			k.killed = true
			fmt.Printf("  t=%.2fms  node 2 saved release #%d's timestamp — killing it "+
				"(roll-forward window, sibling mid-critical-section)\n",
				float64(k.cl.Engine().Now())/1e6, e.Seq)
			k.cl.KillNode(2)
		}
	case "recovery.done":
		fmt.Printf("  t=%.2fms  recovery complete; node %d's threads resumed on the backup\n",
			float64(k.cl.Engine().Now())/1e6, e.Node)
	}
}

func main() {
	cfg := model.Default()
	cfg.Nodes = nodes
	cfg.ThreadsPerNode = tpn

	k := &killer{}
	cl, err := svm.New(svm.Options{
		Config: cfg,
		Mode:   svm.ModeFT,
		Pages:  accs + 1,
		Locks:  accs,
		Tracer: k,
		Body: func(t *svm.Thread) {
			st := &state{}
			t.Setup(st)
			for st.Iter < iters {
				a := (st.Iter + t.ID()) % accs
				t.Acquire(a)
				v := t.ReadU64(a * 256)
				t.Compute(500)
				t.WriteU64(a*256, v+uint64(t.ID()+1))
				st.Iter++ // advanced before Release: the exactly-once contract
				t.Release(a)
			}
			t.Barrier()
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	k.cl = cl

	fmt.Printf("%d nodes x %d threads, %d locked accumulators, %d updates/thread:\n",
		nodes, tpn, accs, iters)
	if err := cl.Run(); err != nil {
		log.Fatal(err)
	}
	if !cl.Finished() {
		log.Fatal("threads did not finish")
	}

	// Every thread adds (id+1) once per iteration, so the accumulators
	// must sum to iters * sum(id+1) — any duplicated or lost critical
	// section breaks this.
	var got, want uint64
	for a := 0; a < accs; a++ {
		got += cl.PeekU64(a * 256)
	}
	for id := 0; id < nodes*tpn; id++ {
		want += uint64(iters * (id + 1))
	}
	fmt.Printf("  accumulator sum: %d (expected %d)\n", got, want)
	if got != want {
		log.Fatal("exactly-once violated")
	}
	if err := cl.VerifyReplicas(); err != nil {
		log.Fatalf("replica audit: %v", err)
	}
	st := cl.ProtoStats()
	fmt.Printf("  deferred mid-CS words: %d, recoveries: %d, migrated threads: %d\n",
		st.DeferredWords, st.Recoveries, st.MigratedThreads)
	fmt.Println("  exactly-once held; replicas byte-identical. ✓")
}

// fftfailover: kill a node in the middle of a parallel FFT and watch the
// extended protocol recover.
//
// The run executes the SPLASH-2-style six-step FFT on 8 simulated nodes
// under the fault-tolerant protocol, killing node 3 during one of its
// releases (after phase-1 diff propagation — the roll-back window). A
// tracer narrates the protocol milestones around the failure: detection,
// the global recovery phase, and the migrated thread resuming on the
// backup node. The FFT's spectrum check verifies the result is exact.
//
// Run: go run ./examples/fftfailover
package main

import (
	"fmt"
	"log"

	"ftsvm/internal/apps"
	"ftsvm/internal/model"
	"ftsvm/internal/svm"
)

type narrator struct {
	cl     *svm.Cluster
	killed bool
}

func (n *narrator) Event(e svm.TraceEvent) {
	switch e.Kind {
	case "release.phase1":
		if !n.killed && e.Node == 3 && e.Seq >= 2 {
			n.killed = true
			fmt.Printf("  t=%.2fms  node 3 completed phase 1 of release #%d — killing it now\n",
				float64(n.cl.Engine().Now())/1e6, e.Seq)
			n.cl.KillNode(3)
		}
	case "recovery.start":
		fmt.Printf("  t=%.2fms  failure of node %d detected; global recovery begins\n",
			float64(n.cl.Engine().Now())/1e6, e.Node)
	case "recovery.rehome":
		fmt.Printf("  t=%.2fms  pages and locks re-homed; %d bytes of replicas rebuilt\n",
			float64(n.cl.Engine().Now())/1e6, e.Seq)
	case "recovery.migrate":
		fmt.Printf("  t=%.2fms  %d thread(s) migrated to the backup node\n",
			float64(n.cl.Engine().Now())/1e6, e.Seq)
	case "recovery.done":
		fmt.Printf("  t=%.2fms  recovery complete; execution continues on 7 nodes\n",
			float64(n.cl.Engine().Now())/1e6)
	}
}

func main() {
	cfg := model.Default()
	cfg.Nodes = 8
	cfg.ThreadsPerNode = 1

	shape := apps.Shape{Nodes: cfg.Nodes, ThreadsPerNode: cfg.ThreadsPerNode, PageSize: cfg.PageSize}
	w := apps.FFT(shape, 1<<16) // 64K complex points

	nar := &narrator{}
	cl, err := svm.New(svm.Options{
		Config:     cfg,
		Mode:       svm.ModeFT,
		Pages:      w.Pages,
		Locks:      w.Locks,
		HomeAssign: w.HomeAssign,
		Body:       w.Body,
		Tracer:     nar,
	})
	if err != nil {
		log.Fatal(err)
	}
	nar.cl = cl

	fmt.Println("running 64K-point FFT on 8 nodes, extended protocol, with failure injection...")
	if err := cl.Run(); err != nil {
		log.Fatal(err)
	}
	if err := w.Err(); err != nil {
		log.Fatal("spectrum verification FAILED: ", err)
	}
	fmt.Printf("FFT complete and verified in %.2f ms of virtual time\n", float64(cl.ExecTime())/1e6)
}

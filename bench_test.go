// Package ftsvm's root benchmark harness regenerates every evaluation
// artifact of the paper as a testing.B benchmark:
//
//   - BenchmarkFigure7And8: the six applications under both protocols on
//     8 nodes x 1 thread (Figures 7 and 8 are two renderings of the same
//     runs: 4-component and 6-component breakdowns).
//   - BenchmarkFigure9And10: the same on 8 nodes x 2 threads.
//   - BenchmarkLockAlgorithm: §4.3's queue-vs-polling comparison.
//   - BenchmarkPostQueueDepth: §5.3.2's critical NIC parameter.
//   - BenchmarkCheckpointStack: §5.2's checkpoint cost factors.
//   - BenchmarkRecovery: a failure + recovery cycle per application.
//
// Each op runs one full deterministic simulation (the figure grids run
// their independent cells concurrently across cores via harness.RunGrid);
// wall time measures the simulator, while the reported custom metrics
// carry the paper's numbers:
// virtual execution milliseconds (vms/op) and extended-over-base overhead
// (reported by the svmbench command). Run with -benchtime=1x for a single
// deterministic rendition, e.g.:
//
//	go test -bench=Figure7 -benchtime=1x .
package ftsvm

import (
	"fmt"
	"testing"

	"ftsvm/internal/apps"
	"ftsvm/internal/harness"
	"ftsvm/internal/model"
	"ftsvm/internal/svm"
)

// benchSize keeps the default bench runtime moderate; the svmbench command
// runs the full paper sizes.
const benchSize = harness.SizeMedium

func benchFigure(b *testing.B, tpn int) {
	var cells []harness.Config
	for _, app := range harness.AppNames {
		for _, mode := range []svm.Mode{svm.ModeBase, svm.ModeFT} {
			cells = append(cells, harness.Config{
				App: app, Size: benchSize, Mode: mode,
				Nodes: 8, ThreadsPerNode: tpn,
			})
		}
	}
	// The whole app x mode grid runs here under the parent benchmark (a
	// benchmark that calls b.Run executes once with N=1), spread across
	// cores by RunGrid; the per-cell sub-benchmarks below only attach each
	// deterministic result's metrics to the familiar names.
	var results []harness.Result
	for i := 0; i < b.N; i++ {
		results = harness.RunGrid(cells)
	}
	for i, r := range results {
		r := r
		b.Run(fmt.Sprintf("%s/%s", cells[i].App, cells[i].Mode), func(b *testing.B) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
			b.ReportMetric(float64(r.ExecNs)/1e6, "vms/op")
			b.ReportMetric(float64(r.MsgsSent), "msgs/op")
		})
	}
}

// BenchmarkFigure7And8 regenerates the runs behind Figures 7 and 8:
// 8 nodes, 1 compute thread per node, base vs extended.
func BenchmarkFigure7And8(b *testing.B) { benchFigure(b, 1) }

// BenchmarkFigure9And10 regenerates the runs behind Figures 9 and 10:
// 8 nodes, 2 compute threads per node, base vs extended.
func BenchmarkFigure9And10(b *testing.B) { benchFigure(b, 2) }

// BenchmarkLockAlgorithm compares the distributed queuing lock with the
// stateless centralized polling lock (§4.3) on the lock-heavy workloads.
func BenchmarkLockAlgorithm(b *testing.B) {
	for _, app := range []string{"waternsq", "watersp", "volrend"} {
		for _, algo := range []svm.LockAlgo{svm.LockQueue, svm.LockPolling, svm.LockNIC} {
			app, algo := app, algo
			b.Run(fmt.Sprintf("%s/%s", app, algo), func(b *testing.B) {
				var last harness.Result
				for i := 0; i < b.N; i++ {
					last = harness.Run(harness.Config{
						App: app, Size: benchSize, Mode: svm.ModeBase,
						Nodes: 8, ThreadsPerNode: 1, LockAlgo: algo,
					})
					if last.Err != nil {
						b.Fatal(last.Err)
					}
				}
				_, _, lock, _ := last.Breakdown.FourWay()
				b.ReportMetric(float64(last.ExecNs)/1e6, "vms/op")
				b.ReportMetric(float64(lock)/1e6, "lockms/op")
			})
		}
	}
}

// BenchmarkPostQueueDepth sweeps the NIC post-queue depth under the
// extended protocol's diff bursts (§5.3.2).
func BenchmarkPostQueueDepth(b *testing.B) {
	for _, depth := range []int{8, 32, 128} {
		depth := depth
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			var last harness.Result
			for i := 0; i < b.N; i++ {
				last = harness.Run(harness.Config{
					App: "fft", Size: benchSize, Mode: svm.ModeFT,
					Nodes: 8, ThreadsPerNode: 2,
					Overrides: func(c *model.Config) { c.PostQueueDepth = depth },
				})
				if last.Err != nil {
					b.Fatal(last.Err)
				}
			}
			b.ReportMetric(float64(last.ExecNs)/1e6, "vms/op")
			b.ReportMetric(float64(last.PostStallNs)/1e6, "stallms/op")
		})
	}
}

// BenchmarkCheckpointStack sweeps the thread-state size (the paper's
// stacks were 2-2.8 KB; checkpoint cost is proportional to size and to
// the number of releases).
func BenchmarkCheckpointStack(b *testing.B) {
	for _, stack := range []int{1024, 4096, 16384} {
		stack := stack
		b.Run(fmt.Sprintf("stack%d", stack), func(b *testing.B) {
			var last harness.Result
			for i := 0; i < b.N; i++ {
				last = harness.Run(harness.Config{
					App: "waternsq", Size: benchSize, Mode: svm.ModeFT,
					Nodes: 8, ThreadsPerNode: 1,
					Overrides: func(c *model.Config) { c.MinCheckpointBytes = stack },
				})
				if last.Err != nil {
					b.Fatal(last.Err)
				}
			}
			b.ReportMetric(float64(last.ExecNs)/1e6, "vms/op")
			b.ReportMetric(float64(last.Breakdown.Comp[svm.CompCheckpoint])/1e6, "ckptms/op")
		})
	}
}

// BenchmarkRecovery runs each application with a mid-run node failure and
// reports the verified end-to-end virtual time (recovery is not a paper
// figure; the paper evaluates the failure-free case and argues recovery
// is cheap — this bench substantiates that claim).
func BenchmarkRecovery(b *testing.B) {
	for _, app := range harness.AppNames {
		app := app
		b.Run(app, func(b *testing.B) {
			var execNs int64
			for i := 0; i < b.N; i++ {
				cfg := model.Default()
				cfg.Nodes = 8
				s := apps.Shape{Nodes: 8, ThreadsPerNode: 1, PageSize: cfg.PageSize}
				w, err := harness.Build(app, benchSize, s)
				if err != nil {
					b.Fatal(err)
				}
				cl, err := svm.New(svm.Options{
					Config: cfg, Mode: svm.ModeFT, Pages: w.Pages, Locks: w.Locks,
					HomeAssign: w.HomeAssign, Body: w.Body,
				})
				if err != nil {
					b.Fatal(err)
				}
				cl.Engine().At(10_000_000, func() { cl.KillNode(3) })
				if err := cl.Run(); err != nil {
					b.Fatal(err)
				}
				if err := w.Err(); err != nil {
					b.Fatalf("verification after recovery: %v", err)
				}
				execNs = cl.ExecTime()
			}
			b.ReportMetric(float64(execNs)/1e6, "vms/op")
		})
	}
}

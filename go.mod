module ftsvm

go 1.24
